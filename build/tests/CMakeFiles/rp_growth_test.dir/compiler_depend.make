# Empty compiler generated dependencies file for rp_growth_test.
# This may be replaced when dependencies are built.
