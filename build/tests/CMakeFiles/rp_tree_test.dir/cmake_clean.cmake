file(REMOVE_RECURSE
  "CMakeFiles/rp_tree_test.dir/rp_tree_test.cc.o"
  "CMakeFiles/rp_tree_test.dir/rp_tree_test.cc.o.d"
  "CMakeFiles/rp_tree_test.dir/test_util.cc.o"
  "CMakeFiles/rp_tree_test.dir/test_util.cc.o.d"
  "rp_tree_test"
  "rp_tree_test.pdb"
  "rp_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
