file(REMOVE_RECURSE
  "CMakeFiles/mining_params_test.dir/mining_params_test.cc.o"
  "CMakeFiles/mining_params_test.dir/mining_params_test.cc.o.d"
  "CMakeFiles/mining_params_test.dir/test_util.cc.o"
  "CMakeFiles/mining_params_test.dir/test_util.cc.o.d"
  "mining_params_test"
  "mining_params_test.pdb"
  "mining_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
