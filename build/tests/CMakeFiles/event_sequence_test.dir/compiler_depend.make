# Empty compiler generated dependencies file for event_sequence_test.
# This may be replaced when dependencies are built.
