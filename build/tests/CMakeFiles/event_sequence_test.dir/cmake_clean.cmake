file(REMOVE_RECURSE
  "CMakeFiles/event_sequence_test.dir/event_sequence_test.cc.o"
  "CMakeFiles/event_sequence_test.dir/event_sequence_test.cc.o.d"
  "CMakeFiles/event_sequence_test.dir/test_util.cc.o"
  "CMakeFiles/event_sequence_test.dir/test_util.cc.o.d"
  "event_sequence_test"
  "event_sequence_test.pdb"
  "event_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
