file(REMOVE_RECURSE
  "CMakeFiles/streaming_batch_equivalence_test.dir/streaming_batch_equivalence_test.cc.o"
  "CMakeFiles/streaming_batch_equivalence_test.dir/streaming_batch_equivalence_test.cc.o.d"
  "CMakeFiles/streaming_batch_equivalence_test.dir/test_util.cc.o"
  "CMakeFiles/streaming_batch_equivalence_test.dir/test_util.cc.o.d"
  "streaming_batch_equivalence_test"
  "streaming_batch_equivalence_test.pdb"
  "streaming_batch_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_batch_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
