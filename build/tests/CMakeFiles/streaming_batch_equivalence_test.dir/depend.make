# Empty dependencies file for streaming_batch_equivalence_test.
# This may be replaced when dependencies are built.
