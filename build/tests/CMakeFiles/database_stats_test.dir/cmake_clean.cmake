file(REMOVE_RECURSE
  "CMakeFiles/database_stats_test.dir/database_stats_test.cc.o"
  "CMakeFiles/database_stats_test.dir/database_stats_test.cc.o.d"
  "CMakeFiles/database_stats_test.dir/test_util.cc.o"
  "CMakeFiles/database_stats_test.dir/test_util.cc.o.d"
  "database_stats_test"
  "database_stats_test.pdb"
  "database_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
