file(REMOVE_RECURSE
  "CMakeFiles/paper_datasets_test.dir/paper_datasets_test.cc.o"
  "CMakeFiles/paper_datasets_test.dir/paper_datasets_test.cc.o.d"
  "CMakeFiles/paper_datasets_test.dir/test_util.cc.o"
  "CMakeFiles/paper_datasets_test.dir/test_util.cc.o.d"
  "paper_datasets_test"
  "paper_datasets_test.pdb"
  "paper_datasets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_datasets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
