# Empty compiler generated dependencies file for paper_datasets_test.
# This may be replaced when dependencies are built.
