# Empty dependencies file for civil_time_test.
# This may be replaced when dependencies are built.
