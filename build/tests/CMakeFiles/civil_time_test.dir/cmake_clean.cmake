file(REMOVE_RECURSE
  "CMakeFiles/civil_time_test.dir/civil_time_test.cc.o"
  "CMakeFiles/civil_time_test.dir/civil_time_test.cc.o.d"
  "CMakeFiles/civil_time_test.dir/test_util.cc.o"
  "CMakeFiles/civil_time_test.dir/test_util.cc.o.d"
  "civil_time_test"
  "civil_time_test.pdb"
  "civil_time_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/civil_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
