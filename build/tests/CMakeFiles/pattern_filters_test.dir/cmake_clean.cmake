file(REMOVE_RECURSE
  "CMakeFiles/pattern_filters_test.dir/pattern_filters_test.cc.o"
  "CMakeFiles/pattern_filters_test.dir/pattern_filters_test.cc.o.d"
  "CMakeFiles/pattern_filters_test.dir/test_util.cc.o"
  "CMakeFiles/pattern_filters_test.dir/test_util.cc.o.d"
  "pattern_filters_test"
  "pattern_filters_test.pdb"
  "pattern_filters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_filters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
