# Empty compiler generated dependencies file for pattern_filters_test.
# This may be replaced when dependencies are built.
