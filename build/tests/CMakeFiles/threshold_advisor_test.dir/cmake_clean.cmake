file(REMOVE_RECURSE
  "CMakeFiles/threshold_advisor_test.dir/test_util.cc.o"
  "CMakeFiles/threshold_advisor_test.dir/test_util.cc.o.d"
  "CMakeFiles/threshold_advisor_test.dir/threshold_advisor_test.cc.o"
  "CMakeFiles/threshold_advisor_test.dir/threshold_advisor_test.cc.o.d"
  "threshold_advisor_test"
  "threshold_advisor_test.pdb"
  "threshold_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
