# Empty compiler generated dependencies file for threshold_advisor_test.
# This may be replaced when dependencies are built.
