file(REMOVE_RECURSE
  "CMakeFiles/hashtag_generator_test.dir/hashtag_generator_test.cc.o"
  "CMakeFiles/hashtag_generator_test.dir/hashtag_generator_test.cc.o.d"
  "CMakeFiles/hashtag_generator_test.dir/test_util.cc.o"
  "CMakeFiles/hashtag_generator_test.dir/test_util.cc.o.d"
  "hashtag_generator_test"
  "hashtag_generator_test.pdb"
  "hashtag_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtag_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
