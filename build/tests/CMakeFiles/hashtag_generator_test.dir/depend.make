# Empty dependencies file for hashtag_generator_test.
# This may be replaced when dependencies are built.
