# Empty compiler generated dependencies file for interval_metrics_test.
# This may be replaced when dependencies are built.
