file(REMOVE_RECURSE
  "CMakeFiles/interval_metrics_test.dir/interval_metrics_test.cc.o"
  "CMakeFiles/interval_metrics_test.dir/interval_metrics_test.cc.o.d"
  "CMakeFiles/interval_metrics_test.dir/test_util.cc.o"
  "CMakeFiles/interval_metrics_test.dir/test_util.cc.o.d"
  "interval_metrics_test"
  "interval_metrics_test.pdb"
  "interval_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
