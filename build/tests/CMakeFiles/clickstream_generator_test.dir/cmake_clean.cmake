file(REMOVE_RECURSE
  "CMakeFiles/clickstream_generator_test.dir/clickstream_generator_test.cc.o"
  "CMakeFiles/clickstream_generator_test.dir/clickstream_generator_test.cc.o.d"
  "CMakeFiles/clickstream_generator_test.dir/test_util.cc.o"
  "CMakeFiles/clickstream_generator_test.dir/test_util.cc.o.d"
  "clickstream_generator_test"
  "clickstream_generator_test.pdb"
  "clickstream_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
