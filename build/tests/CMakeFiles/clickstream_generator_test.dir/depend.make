# Empty dependencies file for clickstream_generator_test.
# This may be replaced when dependencies are built.
