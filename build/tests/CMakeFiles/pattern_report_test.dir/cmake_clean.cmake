file(REMOVE_RECURSE
  "CMakeFiles/pattern_report_test.dir/pattern_report_test.cc.o"
  "CMakeFiles/pattern_report_test.dir/pattern_report_test.cc.o.d"
  "CMakeFiles/pattern_report_test.dir/test_util.cc.o"
  "CMakeFiles/pattern_report_test.dir/test_util.cc.o.d"
  "pattern_report_test"
  "pattern_report_test.pdb"
  "pattern_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
