# Empty compiler generated dependencies file for pattern_report_test.
# This may be replaced when dependencies are built.
