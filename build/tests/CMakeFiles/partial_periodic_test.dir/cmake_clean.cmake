file(REMOVE_RECURSE
  "CMakeFiles/partial_periodic_test.dir/partial_periodic_test.cc.o"
  "CMakeFiles/partial_periodic_test.dir/partial_periodic_test.cc.o.d"
  "CMakeFiles/partial_periodic_test.dir/test_util.cc.o"
  "CMakeFiles/partial_periodic_test.dir/test_util.cc.o.d"
  "partial_periodic_test"
  "partial_periodic_test.pdb"
  "partial_periodic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_periodic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
