# Empty compiler generated dependencies file for partial_periodic_test.
# This may be replaced when dependencies are built.
