# Empty dependencies file for paper_grid_test.
# This may be replaced when dependencies are built.
