file(REMOVE_RECURSE
  "CMakeFiles/paper_grid_test.dir/paper_grid_test.cc.o"
  "CMakeFiles/paper_grid_test.dir/paper_grid_test.cc.o.d"
  "CMakeFiles/paper_grid_test.dir/test_util.cc.o"
  "CMakeFiles/paper_grid_test.dir/test_util.cc.o.d"
  "paper_grid_test"
  "paper_grid_test.pdb"
  "paper_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
