file(REMOVE_RECURSE
  "CMakeFiles/frequency_series_test.dir/frequency_series_test.cc.o"
  "CMakeFiles/frequency_series_test.dir/frequency_series_test.cc.o.d"
  "CMakeFiles/frequency_series_test.dir/test_util.cc.o"
  "CMakeFiles/frequency_series_test.dir/test_util.cc.o.d"
  "frequency_series_test"
  "frequency_series_test.pdb"
  "frequency_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequency_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
