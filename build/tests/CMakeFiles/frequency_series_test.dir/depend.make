# Empty dependencies file for frequency_series_test.
# This may be replaced when dependencies are built.
