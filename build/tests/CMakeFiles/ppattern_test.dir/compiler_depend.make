# Empty compiler generated dependencies file for ppattern_test.
# This may be replaced when dependencies are built.
