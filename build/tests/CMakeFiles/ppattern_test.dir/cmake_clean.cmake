file(REMOVE_RECURSE
  "CMakeFiles/ppattern_test.dir/ppattern_test.cc.o"
  "CMakeFiles/ppattern_test.dir/ppattern_test.cc.o.d"
  "CMakeFiles/ppattern_test.dir/test_util.cc.o"
  "CMakeFiles/ppattern_test.dir/test_util.cc.o.d"
  "ppattern_test"
  "ppattern_test.pdb"
  "ppattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
