file(REMOVE_RECURSE
  "CMakeFiles/transaction_database_test.dir/test_util.cc.o"
  "CMakeFiles/transaction_database_test.dir/test_util.cc.o.d"
  "CMakeFiles/transaction_database_test.dir/transaction_database_test.cc.o"
  "CMakeFiles/transaction_database_test.dir/transaction_database_test.cc.o.d"
  "transaction_database_test"
  "transaction_database_test.pdb"
  "transaction_database_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
