file(REMOVE_RECURSE
  "CMakeFiles/rp_growth_sink_test.dir/rp_growth_sink_test.cc.o"
  "CMakeFiles/rp_growth_sink_test.dir/rp_growth_sink_test.cc.o.d"
  "CMakeFiles/rp_growth_sink_test.dir/test_util.cc.o"
  "CMakeFiles/rp_growth_sink_test.dir/test_util.cc.o.d"
  "rp_growth_sink_test"
  "rp_growth_sink_test.pdb"
  "rp_growth_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_growth_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
