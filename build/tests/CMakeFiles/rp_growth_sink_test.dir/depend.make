# Empty dependencies file for rp_growth_sink_test.
# This may be replaced when dependencies are built.
