file(REMOVE_RECURSE
  "CMakeFiles/pattern_stats_test.dir/pattern_stats_test.cc.o"
  "CMakeFiles/pattern_stats_test.dir/pattern_stats_test.cc.o.d"
  "CMakeFiles/pattern_stats_test.dir/test_util.cc.o"
  "CMakeFiles/pattern_stats_test.dir/test_util.cc.o.d"
  "pattern_stats_test"
  "pattern_stats_test.pdb"
  "pattern_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
