file(REMOVE_RECURSE
  "CMakeFiles/pf_growth_test.dir/pf_growth_test.cc.o"
  "CMakeFiles/pf_growth_test.dir/pf_growth_test.cc.o.d"
  "CMakeFiles/pf_growth_test.dir/test_util.cc.o"
  "CMakeFiles/pf_growth_test.dir/test_util.cc.o.d"
  "pf_growth_test"
  "pf_growth_test.pdb"
  "pf_growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pf_growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
