# Empty dependencies file for tdb_builder_test.
# This may be replaced when dependencies are built.
