# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tdb_builder_test.
