file(REMOVE_RECURSE
  "CMakeFiles/tdb_builder_test.dir/tdb_builder_test.cc.o"
  "CMakeFiles/tdb_builder_test.dir/tdb_builder_test.cc.o.d"
  "CMakeFiles/tdb_builder_test.dir/test_util.cc.o"
  "CMakeFiles/tdb_builder_test.dir/test_util.cc.o.d"
  "tdb_builder_test"
  "tdb_builder_test.pdb"
  "tdb_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdb_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
