# Empty dependencies file for async_periodic_test.
# This may be replaced when dependencies are built.
