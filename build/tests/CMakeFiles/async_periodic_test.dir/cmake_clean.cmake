file(REMOVE_RECURSE
  "CMakeFiles/async_periodic_test.dir/async_periodic_test.cc.o"
  "CMakeFiles/async_periodic_test.dir/async_periodic_test.cc.o.d"
  "CMakeFiles/async_periodic_test.dir/test_util.cc.o"
  "CMakeFiles/async_periodic_test.dir/test_util.cc.o.d"
  "async_periodic_test"
  "async_periodic_test.pdb"
  "async_periodic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_periodic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
