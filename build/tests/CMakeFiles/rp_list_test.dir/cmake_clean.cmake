file(REMOVE_RECURSE
  "CMakeFiles/rp_list_test.dir/rp_list_test.cc.o"
  "CMakeFiles/rp_list_test.dir/rp_list_test.cc.o.d"
  "CMakeFiles/rp_list_test.dir/test_util.cc.o"
  "CMakeFiles/rp_list_test.dir/test_util.cc.o.d"
  "rp_list_test"
  "rp_list_test.pdb"
  "rp_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
