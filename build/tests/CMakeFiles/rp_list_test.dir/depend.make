# Empty dependencies file for rp_list_test.
# This may be replaced when dependencies are built.
