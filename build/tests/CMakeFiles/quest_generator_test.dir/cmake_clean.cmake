file(REMOVE_RECURSE
  "CMakeFiles/quest_generator_test.dir/quest_generator_test.cc.o"
  "CMakeFiles/quest_generator_test.dir/quest_generator_test.cc.o.d"
  "CMakeFiles/quest_generator_test.dir/test_util.cc.o"
  "CMakeFiles/quest_generator_test.dir/test_util.cc.o.d"
  "quest_generator_test"
  "quest_generator_test.pdb"
  "quest_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quest_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
