# Empty compiler generated dependencies file for quest_generator_test.
# This may be replaced when dependencies are built.
