file(REMOVE_RECURSE
  "CMakeFiles/streaming_rp_list_test.dir/streaming_rp_list_test.cc.o"
  "CMakeFiles/streaming_rp_list_test.dir/streaming_rp_list_test.cc.o.d"
  "CMakeFiles/streaming_rp_list_test.dir/test_util.cc.o"
  "CMakeFiles/streaming_rp_list_test.dir/test_util.cc.o.d"
  "streaming_rp_list_test"
  "streaming_rp_list_test.pdb"
  "streaming_rp_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_rp_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
