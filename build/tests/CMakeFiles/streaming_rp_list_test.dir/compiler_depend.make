# Empty compiler generated dependencies file for streaming_rp_list_test.
# This may be replaced when dependencies are built.
