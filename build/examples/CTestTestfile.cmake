# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_retail_seasonality "/root/repo/build/examples/retail_seasonality")
set_tests_properties(example_retail_seasonality PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hashtag_bursts "/root/repo/build/examples/hashtag_bursts")
set_tests_properties(example_hashtag_bursts PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_monitoring "/root/repo/build/examples/network_monitoring")
set_tests_properties(example_network_monitoring PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_monitor "/root/repo/build/examples/streaming_monitor")
set_tests_properties(example_streaming_monitor PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
