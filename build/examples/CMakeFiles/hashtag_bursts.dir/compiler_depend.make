# Empty compiler generated dependencies file for hashtag_bursts.
# This may be replaced when dependencies are built.
