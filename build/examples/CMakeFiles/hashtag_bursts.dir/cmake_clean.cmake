file(REMOVE_RECURSE
  "CMakeFiles/hashtag_bursts.dir/hashtag_bursts.cc.o"
  "CMakeFiles/hashtag_bursts.dir/hashtag_bursts.cc.o.d"
  "hashtag_bursts"
  "hashtag_bursts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtag_bursts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
