# Empty dependencies file for retail_seasonality.
# This may be replaced when dependencies are built.
