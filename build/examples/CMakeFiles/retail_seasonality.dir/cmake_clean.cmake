file(REMOVE_RECURSE
  "CMakeFiles/retail_seasonality.dir/retail_seasonality.cc.o"
  "CMakeFiles/retail_seasonality.dir/retail_seasonality.cc.o.d"
  "retail_seasonality"
  "retail_seasonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retail_seasonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
