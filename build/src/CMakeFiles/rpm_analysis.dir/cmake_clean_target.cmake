file(REMOVE_RECURSE
  "librpm_analysis.a"
)
