file(REMOVE_RECURSE
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/export.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/export.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/frequency_series.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/frequency_series.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/interval_metrics.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/interval_metrics.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_report.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_report.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_set.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_set.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_stats.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_stats.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/table_printer.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/table_printer.cc.o.d"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/threshold_advisor.cc.o"
  "CMakeFiles/rpm_analysis.dir/rpm/analysis/threshold_advisor.cc.o.d"
  "librpm_analysis.a"
  "librpm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
