# Empty compiler generated dependencies file for rpm_analysis.
# This may be replaced when dependencies are built.
