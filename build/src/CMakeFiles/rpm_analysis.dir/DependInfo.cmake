
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/analysis/export.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/export.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/export.cc.o.d"
  "/root/repo/src/rpm/analysis/frequency_series.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/frequency_series.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/frequency_series.cc.o.d"
  "/root/repo/src/rpm/analysis/interval_metrics.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/interval_metrics.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/interval_metrics.cc.o.d"
  "/root/repo/src/rpm/analysis/pattern_report.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_report.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_report.cc.o.d"
  "/root/repo/src/rpm/analysis/pattern_set.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_set.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_set.cc.o.d"
  "/root/repo/src/rpm/analysis/pattern_stats.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_stats.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/pattern_stats.cc.o.d"
  "/root/repo/src/rpm/analysis/table_printer.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/table_printer.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/table_printer.cc.o.d"
  "/root/repo/src/rpm/analysis/threshold_advisor.cc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/threshold_advisor.cc.o" "gcc" "src/CMakeFiles/rpm_analysis.dir/rpm/analysis/threshold_advisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
