file(REMOVE_RECURSE
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/async_periodic.cc.o"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/async_periodic.cc.o.d"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/partial_periodic.cc.o"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/partial_periodic.cc.o.d"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/pf_growth.cc.o"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/pf_growth.cc.o.d"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/ppattern.cc.o"
  "CMakeFiles/rpm_baselines.dir/rpm/baselines/ppattern.cc.o.d"
  "librpm_baselines.a"
  "librpm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
