file(REMOVE_RECURSE
  "librpm_baselines.a"
)
