# Empty dependencies file for rpm_baselines.
# This may be replaced when dependencies are built.
