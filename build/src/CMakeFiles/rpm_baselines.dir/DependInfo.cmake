
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/baselines/async_periodic.cc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/async_periodic.cc.o" "gcc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/async_periodic.cc.o.d"
  "/root/repo/src/rpm/baselines/partial_periodic.cc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/partial_periodic.cc.o" "gcc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/partial_periodic.cc.o.d"
  "/root/repo/src/rpm/baselines/pf_growth.cc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/pf_growth.cc.o" "gcc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/pf_growth.cc.o.d"
  "/root/repo/src/rpm/baselines/ppattern.cc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/ppattern.cc.o" "gcc" "src/CMakeFiles/rpm_baselines.dir/rpm/baselines/ppattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
