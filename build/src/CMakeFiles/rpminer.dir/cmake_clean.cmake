file(REMOVE_RECURSE
  "CMakeFiles/rpminer.dir/rpm/tools/rpminer_main.cc.o"
  "CMakeFiles/rpminer.dir/rpm/tools/rpminer_main.cc.o.d"
  "rpminer"
  "rpminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpminer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
