# Empty compiler generated dependencies file for rpminer.
# This may be replaced when dependencies are built.
