file(REMOVE_RECURSE
  "CMakeFiles/rpm_core.dir/rpm/core/brute_force.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/brute_force.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/measures.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/measures.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/mining_params.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/mining_params.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/pattern.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/pattern.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/pattern_filters.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/pattern_filters.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/rp_growth.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/rp_growth.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/rp_list.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/rp_list.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/rp_tree.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/rp_tree.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/streaming_rp_list.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/streaming_rp_list.cc.o.d"
  "CMakeFiles/rpm_core.dir/rpm/core/top_k.cc.o"
  "CMakeFiles/rpm_core.dir/rpm/core/top_k.cc.o.d"
  "librpm_core.a"
  "librpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
