
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/core/brute_force.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/brute_force.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/brute_force.cc.o.d"
  "/root/repo/src/rpm/core/measures.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/measures.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/measures.cc.o.d"
  "/root/repo/src/rpm/core/mining_params.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/mining_params.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/mining_params.cc.o.d"
  "/root/repo/src/rpm/core/pattern.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/pattern.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/pattern.cc.o.d"
  "/root/repo/src/rpm/core/pattern_filters.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/pattern_filters.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/pattern_filters.cc.o.d"
  "/root/repo/src/rpm/core/rp_growth.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/rp_growth.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/rp_growth.cc.o.d"
  "/root/repo/src/rpm/core/rp_list.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/rp_list.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/rp_list.cc.o.d"
  "/root/repo/src/rpm/core/rp_tree.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/rp_tree.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/rp_tree.cc.o.d"
  "/root/repo/src/rpm/core/streaming_rp_list.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/streaming_rp_list.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/streaming_rp_list.cc.o.d"
  "/root/repo/src/rpm/core/top_k.cc" "src/CMakeFiles/rpm_core.dir/rpm/core/top_k.cc.o" "gcc" "src/CMakeFiles/rpm_core.dir/rpm/core/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rpm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
