
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/timeseries/database_stats.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/database_stats.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/database_stats.cc.o.d"
  "/root/repo/src/rpm/timeseries/event_sequence.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/event_sequence.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/event_sequence.cc.o.d"
  "/root/repo/src/rpm/timeseries/io/spmf_io.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/spmf_io.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/spmf_io.cc.o.d"
  "/root/repo/src/rpm/timeseries/io/timestamped_csv_io.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/timestamped_csv_io.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/timestamped_csv_io.cc.o.d"
  "/root/repo/src/rpm/timeseries/item_dictionary.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/item_dictionary.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/item_dictionary.cc.o.d"
  "/root/repo/src/rpm/timeseries/tdb_builder.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/tdb_builder.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/tdb_builder.cc.o.d"
  "/root/repo/src/rpm/timeseries/transaction_database.cc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/transaction_database.cc.o" "gcc" "src/CMakeFiles/rpm_timeseries.dir/rpm/timeseries/transaction_database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
