file(REMOVE_RECURSE
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/database_stats.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/database_stats.cc.o.d"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/event_sequence.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/event_sequence.cc.o.d"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/spmf_io.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/spmf_io.cc.o.d"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/timestamped_csv_io.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/io/timestamped_csv_io.cc.o.d"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/item_dictionary.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/item_dictionary.cc.o.d"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/tdb_builder.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/tdb_builder.cc.o.d"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/transaction_database.cc.o"
  "CMakeFiles/rpm_timeseries.dir/rpm/timeseries/transaction_database.cc.o.d"
  "librpm_timeseries.a"
  "librpm_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
