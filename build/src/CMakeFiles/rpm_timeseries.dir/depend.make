# Empty dependencies file for rpm_timeseries.
# This may be replaced when dependencies are built.
