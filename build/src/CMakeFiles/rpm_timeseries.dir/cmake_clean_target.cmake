file(REMOVE_RECURSE
  "librpm_timeseries.a"
)
