file(REMOVE_RECURSE
  "CMakeFiles/rpm_gen.dir/rpm/gen/clickstream_generator.cc.o"
  "CMakeFiles/rpm_gen.dir/rpm/gen/clickstream_generator.cc.o.d"
  "CMakeFiles/rpm_gen.dir/rpm/gen/hashtag_generator.cc.o"
  "CMakeFiles/rpm_gen.dir/rpm/gen/hashtag_generator.cc.o.d"
  "CMakeFiles/rpm_gen.dir/rpm/gen/paper_datasets.cc.o"
  "CMakeFiles/rpm_gen.dir/rpm/gen/paper_datasets.cc.o.d"
  "CMakeFiles/rpm_gen.dir/rpm/gen/quest_generator.cc.o"
  "CMakeFiles/rpm_gen.dir/rpm/gen/quest_generator.cc.o.d"
  "librpm_gen.a"
  "librpm_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
