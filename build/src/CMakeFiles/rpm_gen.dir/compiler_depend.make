# Empty compiler generated dependencies file for rpm_gen.
# This may be replaced when dependencies are built.
