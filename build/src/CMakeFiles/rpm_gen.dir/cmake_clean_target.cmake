file(REMOVE_RECURSE
  "librpm_gen.a"
)
