
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/gen/clickstream_generator.cc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/clickstream_generator.cc.o" "gcc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/clickstream_generator.cc.o.d"
  "/root/repo/src/rpm/gen/hashtag_generator.cc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/hashtag_generator.cc.o" "gcc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/hashtag_generator.cc.o.d"
  "/root/repo/src/rpm/gen/paper_datasets.cc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/paper_datasets.cc.o" "gcc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/paper_datasets.cc.o.d"
  "/root/repo/src/rpm/gen/quest_generator.cc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/quest_generator.cc.o" "gcc" "src/CMakeFiles/rpm_gen.dir/rpm/gen/quest_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rpm_timeseries.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rpm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
