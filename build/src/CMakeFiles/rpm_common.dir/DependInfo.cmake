
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/common/civil_time.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/civil_time.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/civil_time.cc.o.d"
  "/root/repo/src/rpm/common/csv.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/csv.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/csv.cc.o.d"
  "/root/repo/src/rpm/common/flags.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/flags.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/flags.cc.o.d"
  "/root/repo/src/rpm/common/logging.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/logging.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/logging.cc.o.d"
  "/root/repo/src/rpm/common/random.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/random.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/random.cc.o.d"
  "/root/repo/src/rpm/common/status.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/status.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/status.cc.o.d"
  "/root/repo/src/rpm/common/stopwatch.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/stopwatch.cc.o.d"
  "/root/repo/src/rpm/common/string_util.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/string_util.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/string_util.cc.o.d"
  "/root/repo/src/rpm/common/zipf.cc" "src/CMakeFiles/rpm_common.dir/rpm/common/zipf.cc.o" "gcc" "src/CMakeFiles/rpm_common.dir/rpm/common/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
