file(REMOVE_RECURSE
  "CMakeFiles/rpm_common.dir/rpm/common/civil_time.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/civil_time.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/csv.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/csv.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/flags.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/flags.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/logging.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/logging.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/random.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/random.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/status.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/status.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/stopwatch.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/stopwatch.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/string_util.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/string_util.cc.o.d"
  "CMakeFiles/rpm_common.dir/rpm/common/zipf.cc.o"
  "CMakeFiles/rpm_common.dir/rpm/common/zipf.cc.o.d"
  "librpm_common.a"
  "librpm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
