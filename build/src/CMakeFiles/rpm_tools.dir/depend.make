# Empty dependencies file for rpm_tools.
# This may be replaced when dependencies are built.
