file(REMOVE_RECURSE
  "CMakeFiles/rpm_tools.dir/rpm/tools/commands.cc.o"
  "CMakeFiles/rpm_tools.dir/rpm/tools/commands.cc.o.d"
  "librpm_tools.a"
  "librpm_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpm_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
