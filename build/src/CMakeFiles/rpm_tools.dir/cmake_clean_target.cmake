file(REMOVE_RECURSE
  "librpm_tools.a"
)
