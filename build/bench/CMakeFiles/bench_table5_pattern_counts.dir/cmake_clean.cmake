file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_pattern_counts.dir/bench_table5_pattern_counts.cc.o"
  "CMakeFiles/bench_table5_pattern_counts.dir/bench_table5_pattern_counts.cc.o.d"
  "bench_table5_pattern_counts"
  "bench_table5_pattern_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_pattern_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
