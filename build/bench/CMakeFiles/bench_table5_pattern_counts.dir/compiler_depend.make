# Empty compiler generated dependencies file for bench_table5_pattern_counts.
# This may be replaced when dependencies are built.
