# Empty compiler generated dependencies file for bench_table6_example_patterns.
# This may be replaced when dependencies are built.
