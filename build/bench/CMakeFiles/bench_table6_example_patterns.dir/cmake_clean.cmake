file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_example_patterns.dir/bench_table6_example_patterns.cc.o"
  "CMakeFiles/bench_table6_example_patterns.dir/bench_table6_example_patterns.cc.o.d"
  "bench_table6_example_patterns"
  "bench_table6_example_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_example_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
