file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hashtag_frequency.dir/bench_fig8_hashtag_frequency.cc.o"
  "CMakeFiles/bench_fig8_hashtag_frequency.dir/bench_fig8_hashtag_frequency.cc.o.d"
  "bench_fig8_hashtag_frequency"
  "bench_fig8_hashtag_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hashtag_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
