# Empty dependencies file for bench_fig8_hashtag_frequency.
# This may be replaced when dependencies are built.
