# Empty dependencies file for bench_table8_model_comparison.
# This may be replaced when dependencies are built.
