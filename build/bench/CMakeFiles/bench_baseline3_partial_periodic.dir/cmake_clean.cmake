file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline3_partial_periodic.dir/bench_baseline3_partial_periodic.cc.o"
  "CMakeFiles/bench_baseline3_partial_periodic.dir/bench_baseline3_partial_periodic.cc.o.d"
  "bench_baseline3_partial_periodic"
  "bench_baseline3_partial_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline3_partial_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
