# Empty dependencies file for bench_baseline3_partial_periodic.
# This may be replaced when dependencies are built.
