# Empty dependencies file for bench_fig7_twitter_patterns.
# This may be replaced when dependencies are built.
