file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_twitter_patterns.dir/bench_fig7_twitter_patterns.cc.o"
  "CMakeFiles/bench_fig7_twitter_patterns.dir/bench_fig7_twitter_patterns.cc.o.d"
  "bench_fig7_twitter_patterns"
  "bench_fig7_twitter_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_twitter_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
