#!/usr/bin/env python3
"""Compare two bench JSON snapshots (bench_util.h JsonRecords documents).

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json
        [--threshold=0.10] [--min-seconds=0.02] [--fail-on-regression]
    scripts/bench_compare.py --selftest

Matches records by their parameter key (dataset, threads, per, minPS
fraction, minRec, and the windowed-bench window/delta sizes), then:

  * flags every per-stage time field (list/tree/mine/wall, the
    partial-trie fold, and the windowed per-delta / re-mine costs) that
    regressed by more than --threshold (default 10%), ignoring stages
    under --min-seconds in BOTH snapshots (pure timer noise);
  * flags any schedule-invariant counter (patterns, merge / gate-scan
    counters, and the windowed maintenance counters) that changed at
    all — those are correctness drift, not noise, and are always
    treated as regressions;
  * reports stage or counter fields present on only one side as
    informational "new field" / "removed field" rows — a bench gaining
    or losing instrumentation is an expected schema change, not a
    mismatch (it becomes one only when the shared fields disagree);
  * refuses to compare times across snapshots taken at different scales,
    hardware_concurrency or SIMD dispatch levels (counter checks still
    run — they are machine-independent).

Exit status: 0 unless --fail-on-regression is given and a regression was
found (then 1); 2 on malformed input. scripts/verify.sh runs this as a
non-fatal stage against the committed bench_runs/ smoke snapshots, and
runs --selftest (synthetic documents exercising the three row classes)
as a fatal one.
"""

import argparse
import json
import sys

TIME_FIELDS = [
    "wall_seconds",
    "list_seconds",
    "tree_seconds",
    "mine_seconds",
    "tree_merge_seconds",
    "per_delta_seconds",
    "batch_remine_seconds",
]

# Schedule-invariant counters: identical inputs must produce identical
# values regardless of machine, threads or SIMD level. The windowed
# maintenance counters qualify because the record key pins the delta
# schedule (window_txns, delta_txns) alongside the thresholds.
COUNTER_FIELDS = [
    "patterns_emitted",
    "merge_invocations",
    "runs_merged",
    "timestamps_merged",
    "gate_lists_scanned",
    "gate_gaps_scanned",
    "patterns_final",
    "timestamps_appended",
    "timestamps_retired",
    "transactions_expired",
    "nodes_retired",
    "compactions",
]

KEY_FIELDS = ["dataset", "threads", "per", "min_ps_frac", "min_rec",
              "window_txns", "delta_txns"]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot load {path}: {e}")
    if "records" not in doc:
        sys.exit(f"bench_compare: {path} is not a bench report (no records)")
    return doc


def record_key(rec):
    return tuple(rec.get(k) for k in KEY_FIELDS)


def fmt_key(key):
    parts = [f"{name}={val}" for name, val in zip(KEY_FIELDS, key)
             if val is not None]
    return " ".join(parts)


class Comparison:
    """Outcome buckets of one snapshot comparison."""

    def __init__(self):
        self.matched = 0
        self.regressions = []    # Counter drift + time regressions.
        self.improvements = []   # Times past the threshold the good way.
        self.infos = []          # One-sided records and fields.


def compare(base, cur, threshold, min_seconds, compare_times):
    """Pure comparison of two loaded documents; printing is the caller's."""
    out = Comparison()
    base_by_key = {record_key(r): r for r in base["records"]}
    for rec in cur["records"]:
        key = record_key(rec)
        old = base_by_key.get(key)
        if old is None:
            out.infos.append(f"new record (no baseline): {fmt_key(key)}")
            continue
        out.matched += 1
        for field in COUNTER_FIELDS + TIME_FIELDS:
            in_old, in_cur = field in old, field in rec
            if in_old and not in_cur:
                out.infos.append(
                    f"{fmt_key(key)}: removed field (baseline only): {field}")
            elif in_cur and not in_old:
                out.infos.append(
                    f"{fmt_key(key)}: new field (current only): {field}")
        for field in COUNTER_FIELDS:
            if field in old and field in rec and old[field] != rec[field]:
                out.regressions.append(
                    f"{fmt_key(key)}: COUNTER {field} changed "
                    f"{old[field]} -> {rec[field]}")
        if not compare_times:
            continue
        for field in TIME_FIELDS:
            if field not in old or field not in rec:
                continue
            b, c = float(old[field]), float(rec[field])
            if b < min_seconds and c < min_seconds:
                continue
            if b <= 0.0:
                continue
            delta = (c - b) / b
            line = (f"{fmt_key(key)}: {field} "
                    f"{b:.3f}s -> {c:.3f}s ({delta:+.1%})")
            if delta > threshold:
                out.regressions.append(line)
            elif delta < -threshold:
                out.improvements.append(line)

    dropped = set(base_by_key) - {record_key(r) for r in cur["records"]}
    for key in sorted(dropped, key=str):
        out.infos.append(f"dropped record (baseline only): {fmt_key(key)}")
    return out


def selftest():
    """Synthetic documents exercising each row class; exits nonzero on
    any deviation from the contract pinned here."""
    def doc(records):
        return {"bench": "selftest", "records": records}

    base = doc([
        {"dataset": "a", "threads": 1, "patterns_emitted": 10,
         "nodes_retired": 3, "mine_seconds": 1.0, "tree_seconds": 0.5},
        {"dataset": "gone", "threads": 1, "patterns_emitted": 1},
    ])
    cur = doc([
        # Counter drift (hard), time regression (hard), one removed and
        # one new field (informational).
        {"dataset": "a", "threads": 1, "patterns_emitted": 10,
         "nodes_retired": 4, "mine_seconds": 1.5,
         "compactions": 2},
        {"dataset": "fresh", "threads": 1, "patterns_emitted": 2},
    ])
    out = compare(base, cur, threshold=0.10, min_seconds=0.02,
                  compare_times=True)
    failures = []
    if out.matched != 1:
        failures.append(f"matched {out.matched}, want 1")
    if not any("COUNTER nodes_retired changed 3 -> 4" in r
               for r in out.regressions):
        failures.append("counter drift not flagged")
    if not any("mine_seconds" in r and "+50.0%" in r
               for r in out.regressions):
        failures.append("time regression not flagged")
    if len(out.regressions) != 2:
        failures.append(f"regressions {out.regressions}, want exactly 2")
    if not any("removed field (baseline only): tree_seconds" in i
               for i in out.infos):
        failures.append("one-sided baseline field not informational")
    if not any("new field (current only): compactions" in i
               for i in out.infos):
        failures.append("one-sided current field not informational")
    if not any("new record" in i and "dataset=fresh" in i
               for i in out.infos):
        failures.append("unmatched current record not informational")
    if not any("dropped record" in i and "dataset=gone" in i
               for i in out.infos):
        failures.append("unmatched baseline record not informational")

    # Identical docs: nothing flagged; time improvements land in their
    # own bucket, never in regressions.
    clean = compare(base, base, 0.10, 0.02, True)
    if clean.regressions or clean.improvements:
        failures.append("self-comparison not clean")
    faster = doc([{"dataset": "a", "threads": 1, "patterns_emitted": 10,
                   "nodes_retired": 3, "mine_seconds": 0.5,
                   "tree_seconds": 0.5}])
    sped = compare(base, faster, 0.10, 0.02, True)
    if sped.regressions or not any("mine_seconds" in i
                                   for i in sped.improvements):
        failures.append("improvement misclassified")

    for f in failures:
        print(f"selftest: FAIL: {f}")
    if failures:
        return 1
    print("bench_compare: selftest OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative time regression to flag (0.10 = 10%%)")
    parser.add_argument("--min-seconds", type=float, default=0.02,
                        help="ignore time stages below this in both runs")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any regression is flagged")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in contract checks and exit")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required (or --selftest)")

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("bench") != cur.get("bench"):
        sys.exit(f"bench_compare: different benches: "
                 f"{base.get('bench')!r} vs {cur.get('bench')!r}")

    compare_times = True
    for field in ["scale", "hardware_concurrency", "simd_level"]:
        b, c = base.get(field), cur.get(field)
        if b is not None and c is not None and b != c:
            print(f"bench_compare: WARNING: {field} differs "
                  f"({b} vs {c}) — skipping time comparison, "
                  f"checking counters only")
            compare_times = False

    out = compare(base, cur, args.threshold, args.min_seconds, compare_times)

    print(f"bench_compare: {base.get('bench')} — {out.matched} record(s) "
          f"matched, threshold {args.threshold:.0%}")
    for line in out.infos:
        print(f"  note:      {line}")
    for line in out.improvements:
        print(f"  improved:  {line}")
    for line in out.regressions:
        print(f"  REGRESSED: {line}")
    if not out.regressions:
        print("bench_compare: no per-stage regression")
        return 0
    print(f"bench_compare: {len(out.regressions)} regression(s) flagged")
    return 1 if args.fail_on_regression else 0


if __name__ == "__main__":
    sys.exit(main())
