#!/usr/bin/env python3
"""Compare two bench JSON snapshots (bench_util.h JsonRecords documents).

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json
        [--threshold=0.10] [--min-seconds=0.02] [--fail-on-regression]

Matches records by their parameter key (dataset, threads, per, minPS
fraction, minRec), then:

  * flags every per-stage time field (list/tree/mine/wall and the
    partial-trie fold) that regressed by more than --threshold (default
    10%), ignoring stages under --min-seconds in BOTH snapshots (pure
    timer noise);
  * flags any schedule-invariant counter (patterns, merge and gate-scan
    counters) that changed at all — those are correctness drift, not
    noise, and are always treated as regressions;
  * refuses to compare times across snapshots taken at different scales,
    hardware_concurrency or SIMD dispatch levels (counter checks still
    run — they are machine-independent).

Exit status: 0 unless --fail-on-regression is given and a regression was
found (then 1); 2 on malformed input. scripts/verify.sh runs this as a
non-fatal stage against the committed bench_runs/ smoke snapshots.
"""

import argparse
import json
import sys

TIME_FIELDS = [
    "wall_seconds",
    "list_seconds",
    "tree_seconds",
    "mine_seconds",
    "tree_merge_seconds",
]

# Schedule-invariant counters: identical inputs must produce identical
# values regardless of machine, threads or SIMD level.
COUNTER_FIELDS = [
    "patterns_emitted",
    "merge_invocations",
    "runs_merged",
    "timestamps_merged",
    "gate_lists_scanned",
    "gate_gaps_scanned",
]

KEY_FIELDS = ["dataset", "threads", "per", "min_ps_frac", "min_rec"]


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot load {path}: {e}")
    if "records" not in doc:
        sys.exit(f"bench_compare: {path} is not a bench report (no records)")
    return doc


def record_key(rec):
    return tuple(rec.get(k) for k in KEY_FIELDS)


def fmt_key(key):
    parts = [f"{name}={val}" for name, val in zip(KEY_FIELDS, key)
             if val is not None]
    return " ".join(parts)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative time regression to flag (0.10 = 10%%)")
    parser.add_argument("--min-seconds", type=float, default=0.02,
                        help="ignore time stages below this in both runs")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any regression is flagged")
    args = parser.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    if base.get("bench") != cur.get("bench"):
        sys.exit(f"bench_compare: different benches: "
                 f"{base.get('bench')!r} vs {cur.get('bench')!r}")

    compare_times = True
    for field, label in [("scale", "scale"),
                         ("hardware_concurrency", "hardware_concurrency"),
                         ("simd_level", "simd_level")]:
        b, c = base.get(field), cur.get(field)
        if b is not None and c is not None and b != c:
            print(f"bench_compare: WARNING: {label} differs "
                  f"({b} vs {c}) — skipping time comparison, "
                  f"checking counters only")
            compare_times = False

    base_by_key = {record_key(r): r for r in base["records"]}
    regressions = []
    improvements = []
    matched = 0
    for rec in cur["records"]:
        key = record_key(rec)
        old = base_by_key.get(key)
        if old is None:
            print(f"  new record (no baseline): {fmt_key(key)}")
            continue
        matched += 1
        for field in COUNTER_FIELDS:
            if field in old and field in rec and old[field] != rec[field]:
                regressions.append(
                    f"{fmt_key(key)}: COUNTER {field} changed "
                    f"{old[field]} -> {rec[field]}")
        if not compare_times:
            continue
        for field in TIME_FIELDS:
            if field not in old or field not in rec:
                continue
            b, c = float(old[field]), float(rec[field])
            if b < args.min_seconds and c < args.min_seconds:
                continue
            if b <= 0.0:
                continue
            delta = (c - b) / b
            line = (f"{fmt_key(key)}: {field} "
                    f"{b:.3f}s -> {c:.3f}s ({delta:+.1%})")
            if delta > args.threshold:
                regressions.append(line)
            elif delta < -args.threshold:
                improvements.append(line)

    dropped = set(base_by_key) - {record_key(r) for r in cur["records"]}
    for key in sorted(dropped, key=str):
        print(f"  dropped record (baseline only): {fmt_key(key)}")

    print(f"bench_compare: {base.get('bench')} — {matched} record(s) "
          f"matched, threshold {args.threshold:.0%}")
    for line in improvements:
        print(f"  improved:  {line}")
    for line in regressions:
        print(f"  REGRESSED: {line}")
    if not regressions:
        print("bench_compare: no per-stage regression")
        return 0
    print(f"bench_compare: {len(regressions)} regression(s) flagged")
    return 1 if args.fail_on_regression else 0


if __name__ == "__main__":
    sys.exit(main())
