#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the parallel miner.
#
#   scripts/verify.sh          # full: build, ctest, harness, TSan, UBSan
#   scripts/verify.sh --fast   # skip the sanitizer builds
#
# The TSan stage uses a separate build tree (build-tsan/) configured with
# -DRPM_SANITIZE=thread so instrumented objects never mix with the
# release build, and runs only the parallel-miner test there (the rest of
# the suite is single-threaded and already covered by stage 1).
#
# The bench-smoke stage runs the hot-path benchmark at a tiny scale
# (RPM_BENCH_SCALE set via the ctest "perf" label's environment) and
# validates the JSON report it writes — catching both perf-pipeline rot
# and cross-thread determinism violations, which the bench exits 1 on.
# Stage 3b then diffs the hot-path and incremental reports against the
# committed smoke-scale snapshots with scripts/bench_compare.py (>10%
# per-stage regressions and any schedule-invariant counter drift are
# reported; non-fatal) after running the comparer's fatal --selftest.
#
# The harness stages run the differential correctness harness
# (`rpminer verify`, DESIGN.md §5b): a bounded smoke pass on the release
# build, then the same pass under UBSan (build-ubsan/) so the
# extreme-timestamp regimes double as an undefined-behavior probe of the
# gap arithmetic.
#
# The engine stage runs the query-engine suite (`ctest -L engine`,
# DESIGN.md §6) on its own so planner/executor regressions are named in
# the output, and the TSan stage additionally builds and runs engine_test
# (concurrent sessions over one shared snapshot).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== stage 1: release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}" -LE perf)

echo "== stage 2: query-engine suite (engine label) =="
(cd build && ctest --output-on-failure -L engine -LE perf)

echo "== stage 2b: incremental windowed suite (incremental label) =="
# The windowed-miner unit tests plus the windowed ts-list coverage, named
# in the output so sliding-window regressions don't hide in stage 1.
(cd build && ctest --output-on-failure -L incremental -LE perf)

echo "== stage 2c: serve suite (serve label) =="
# The query-server stack (DESIGN.md §10): wire parser, admission control,
# single-flight cache, service semantics, the socket server with its
# failpoints, and the planner-cache stress tests.
(cd build && ctest --output-on-failure -L serve -LE perf)

echo "== stage 3: bench smoke (hot-path kernel + engine reuse, perf label) =="
(cd build && ctest --output-on-failure -L perf)
for report in BENCH_hotpath.json BENCH_engine_reuse.json \
              BENCH_incremental.json; do
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "build/${report}" >/dev/null \
      && echo "${report}: valid JSON"
  else
    grep -q '"bench": ' "build/${report}" \
      && echo "${report}: present (python3 unavailable, grep check)"
  fi
done

echo "== stage 3b: bench regression gate (non-fatal, >10% per-stage) =="
# Diffs the smoke run's JSON against the committed smoke-scale snapshot
# (bench_runs/smoke/, same RPM_BENCH_SCALE as the perf label). Counter
# drift is correctness; time regressions on a shared CI box are mostly
# noise, so this stage reports without failing the build. Re-run with
# --fail-on-regression locally when chasing a perf change.
if command -v python3 >/dev/null 2>&1; then
  # The comparer's own contract checks are cheap and fatal.
  python3 scripts/bench_compare.py --selftest
  for report in BENCH_hotpath.json BENCH_incremental.json; do
    if [[ -f "bench_runs/smoke/${report}" ]]; then
      python3 scripts/bench_compare.py \
        "bench_runs/smoke/${report}" "build/${report}" \
        || echo "bench_compare: regression reported (non-fatal)"
    else
      echo "bench_compare: ${report} skipped (smoke snapshot missing)"
    fi
  done
else
  echo "bench_compare: skipped (python3 missing)"
fi

echo "== stage 4: differential harness smoke =="
./build/src/rpminer verify --cases=200 --seed=7
# Same harness with SIMD dispatch forced off: the masked scalar fallback
# and the plain scalar loops must also agree everywhere.
RPM_FORCE_SCALAR=1 ./build/src/rpminer verify --cases=200 --seed=7

echo "== stage 5: fault-injection campaign smoke (faults label) =="
# Seeded fault campaign (DESIGN.md §7.4): every injected fault must
# surface as a clean Status or governed truncation, never a crash or a
# poisoned planner cache.
./build/src/rpminer verify --faults=200 --seed=7

echo "== stage 5b: multi-tenant server soak =="
# Drives a real `rpminer serve` process past saturation: a hot tenant
# must see OVERLOADED with retry hints while seven cold tenants get
# byte-identical answers to standalone mine, then SIGTERM must drain
# cleanly with exit 0 (scripts/server_soak.py, DESIGN.md §10).
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/server_soak.py ./build/src/rpminer
else
  echo "server_soak: skipped (python3 missing)"
fi

if [[ "${1:-}" == "--fast" ]]; then
  echo "verify: OK (TSan, UBSan and ASan stages skipped)"
  exit 0
fi

echo "== stage 6: ThreadSanitizer on the parallel miner + query engine =="
cmake -B build-tsan -S . -DRPM_SANITIZE=thread \
      -DRPM_BUILD_BENCHMARKS=OFF -DRPM_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"${JOBS}" --target rp_growth_parallel_test \
      engine_test governance_test windowed_miner_test \
      serve_server_test planner_stress_test rpminer
./build-tsan/tests/rp_growth_parallel_test
# Concurrent QuerySession::Run over one shared snapshot/planner.
./build-tsan/tests/engine_test
# Budget checkpoints and prefix-commit truncation under TSan.
./build-tsan/tests/governance_test
# Windowed maintenance (single-threaded by contract, but its budget
# cancellation test crosses threads through the token).
./build-tsan/tests/windowed_miner_test
# The socket server: concurrent sessions, admission, drain, failpoints.
./build-tsan/tests/serve_server_test
# Planner cache under eviction churn + epoch swaps with pinned readers.
./build-tsan/tests/planner_stress_test
# Fault campaign under TSan: injected faults fire from worker threads.
./build-tsan/src/rpminer verify --faults=200 --seed=7

echo "== stage 7: UBSan over the differential harness + fault campaign =="
cmake -B build-ubsan -S . -DRPM_SANITIZE=undefined \
      -DRPM_BUILD_BENCHMARKS=OFF -DRPM_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-ubsan -j"${JOBS}" --target rpminer
UBSAN_OPTIONS=halt_on_error=1 \
  ./build-ubsan/src/rpminer verify --cases=200 --seed=7
UBSAN_OPTIONS=halt_on_error=1 \
  ./build-ubsan/src/rpminer verify --faults=200 --seed=7

echo "== stage 8: AddressSanitizer over the fault campaign =="
# ASan is the natural probe for the injected-bad_alloc recovery paths:
# a leaked node arena or a use-after-rollback in the prefix-commit walk
# surfaces here even when behavior looks clean.
cmake -B build-asan -S . -DRPM_SANITIZE=address \
      -DRPM_BUILD_BENCHMARKS=OFF -DRPM_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j"${JOBS}" --target rpminer
ASAN_OPTIONS=detect_leaks=1 \
  ./build-asan/src/rpminer verify --cases=200 --seed=7
ASAN_OPTIONS=detect_leaks=1 \
  ./build-asan/src/rpminer verify --faults=200 --seed=7

echo "verify: OK"
