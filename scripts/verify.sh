#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the parallel miner.
#
#   scripts/verify.sh          # full: build, ctest, TSan parallel test
#   scripts/verify.sh --fast   # skip the TSan build
#
# The TSan stage uses a separate build tree (build-tsan/) configured with
# -DRPM_SANITIZE=thread so instrumented objects never mix with the
# release build, and runs only the parallel-miner test there (the rest of
# the suite is single-threaded and already covered by stage 1).
#
# The bench-smoke stage runs the hot-path benchmark at a tiny scale
# (RPM_BENCH_SCALE set via the ctest "perf" label's environment) and
# validates the JSON report it writes — catching both perf-pipeline rot
# and cross-thread determinism violations, which the bench exits 1 on.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== stage 1: release build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}" -LE perf)

echo "== stage 2: bench smoke (hot-path kernel, perf label) =="
(cd build && ctest --output-on-failure -L perf)
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool build/BENCH_hotpath.json >/dev/null \
    && echo "BENCH_hotpath.json: valid JSON"
else
  grep -q '"bench": "hotpath"' build/BENCH_hotpath.json \
    && echo "BENCH_hotpath.json: present (python3 unavailable, grep check)"
fi

if [[ "${1:-}" == "--fast" ]]; then
  echo "verify: OK (TSan stage skipped)"
  exit 0
fi

echo "== stage 2: ThreadSanitizer on the parallel miner =="
cmake -B build-tsan -S . -DRPM_SANITIZE=thread \
      -DRPM_BUILD_BENCHMARKS=OFF -DRPM_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j"${JOBS}" --target rp_growth_parallel_test
./build-tsan/tests/rp_growth_parallel_test

echo "verify: OK"
