#!/usr/bin/env python3
"""Multi-tenant soak of `rpminer serve` (DESIGN.md §10).

Drives a real server process past saturation and asserts the four serve
contracts end to end:

  1. Admission: a hot tenant configured with max_concurrent=1/max_queued=0
     and hammered from several parallel connections sees OVERLOADED
     rejections carrying a positive retry_after_ms — while seven other
     tenants are never starved.
  2. Correctness under load: every completed canonical query returns a
     patterns_json whose unescaped bytes are identical to a standalone
     `rpminer mine --output-format=json` run on the same dataset.
  3. Wire discipline: every request gets exactly one well-formed JSON
     response line that echoes its id — nothing dropped, nothing mangled.
  4. Lifecycle: SIGTERM drains cleanly (no force-closed sessions) and the
     process exits 0.

Usage: scripts/server_soak.py [path/to/rpminer]   (default ./build/src/rpminer)
Exit 0 on success; nonzero with a diagnostic on any contract violation.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading

HOT_CONNECTIONS = 6
HOT_QUERIES_PER_CONNECTION = 30
COLD_TENANTS = 7
COLD_QUERIES_PER_TENANT = 5

CANONICAL_QUERY = {"per": 2, "min_ps": 3, "min_rec": 2}

failures = []
failures_lock = threading.Lock()


def fail(message):
    with failures_lock:
        failures.append(message)


def write_dataset(path):
    """Deterministic tspmf dataset with planted periodic structure plus
    LCG noise — big enough that queries take real time (so the hot
    tenant's parallel connections actually overlap)."""
    state = 0x9E3779B97F4A7C15
    noise_items = [chr(ord("e") + i) for i in range(8)]
    with open(path, "w", encoding="ascii") as out:
        for t in range(1, 4001):
            items = []
            if t % 2 == 0:
                items += ["a", "b"]
            if t % 3 == 0:
                items += ["c", "d"]
            for item in noise_items:
                state = (state * 6364136223846793005 + 1442695040888963407) % (
                    1 << 64
                )
                if (state >> 33) % 100 < 30:
                    items.append(item)
            if items:
                out.write("%d|%s\n" % (t, " ".join(sorted(set(items)))))


class LineClient:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.sock.settimeout(30)
        self.buffer = b""

    def call(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode("utf-8")

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def check_response(line, request_id, worker):
    """Contract 3: one parseable JSON object echoing the request id."""
    try:
        response = json.loads(line)
    except json.JSONDecodeError:
        fail("%s: unparseable response line: %r" % (worker, line[:200]))
        return None
    if not isinstance(response, dict) or response.get("id") != request_id:
        fail("%s: response does not echo id %r: %r"
             % (worker, request_id, line[:200]))
        return None
    if "status" not in response:
        fail("%s: response missing status: %r" % (worker, line[:200]))
        return None
    return response


def cold_tenant_worker(port, tenant, expected_json, stats):
    """A well-behaved tenant: canonical queries, all must complete and
    match the standalone miner byte for byte."""
    try:
        client = LineClient(port)
    except OSError as e:
        fail("%s: connect failed: %s" % (tenant, e))
        return
    try:
        for i in range(COLD_QUERIES_PER_TENANT):
            request_id = "%s-%d" % (tenant, i)
            request = dict(
                CANONICAL_QUERY,
                op="query",
                id=request_id,
                tenant=tenant,
                dataset="data",
                meta=False,
            )
            response = check_response(client.call(request), request_id, tenant)
            if response is None:
                continue
            if response["status"] != "OK":
                fail("%s: canonical query not OK: %s" % (tenant, response))
                continue
            if response.get("truncated"):
                fail("%s: canonical query truncated" % tenant)
            if response.get("patterns_json") != expected_json:
                fail("%s: patterns_json differs from standalone mine "
                     "(lengths %d vs %d)"
                     % (tenant, len(response.get("patterns_json") or ""),
                        len(expected_json)))
            stats["cold_ok"] += 1
    except (OSError, ConnectionError) as e:
        fail("%s: connection error mid-soak: %s" % (tenant, e))
    finally:
        client.close()


def hot_tenant_worker(port, index, stats):
    """One of the hot tenant's parallel connections: distinct query shapes
    (cache-busting) against a 1-slot/0-queue quota. Every response must be
    OK or OVERLOADED-with-retry-hint."""
    worker = "hot-%d" % index
    try:
        client = LineClient(port)
    except OSError as e:
        fail("%s: connect failed: %s" % (worker, e))
        return
    try:
        for i in range(HOT_QUERIES_PER_CONNECTION):
            shape = index * HOT_QUERIES_PER_CONNECTION + i
            request_id = "%s-%d" % (worker, i)
            request = {
                "op": "query",
                "id": request_id,
                "tenant": "hot",
                "dataset": "data",
                "per": 2 + shape % 4,
                "min_ps": 1 + shape % 3,
                "min_rec": 2 + shape % 5,
                "tolerance": shape % 2,
                "meta": False,
            }
            response = check_response(client.call(request), request_id, worker)
            if response is None:
                continue
            status = response["status"]
            if status == "OK":
                stats["hot_ok"] += 1
            elif status == "OVERLOADED":
                if response.get("retry_after_ms", 0) <= 0:
                    fail("%s: OVERLOADED without a positive retry_after_ms: %s"
                         % (worker, response))
                if not response.get("rejected_by"):
                    fail("%s: OVERLOADED without rejected_by" % worker)
                stats["hot_overloaded"] += 1
            else:
                fail("%s: unexpected status %s: %s"
                     % (worker, status, response))
    except (OSError, ConnectionError) as e:
        fail("%s: connection error mid-soak: %s" % (worker, e))
    finally:
        client.close()


def main():
    rpminer = sys.argv[1] if len(sys.argv) > 1 else "./build/src/rpminer"
    if not os.path.exists(rpminer):
        print("server_soak: rpminer binary not found at %s" % rpminer)
        return 2

    with tempfile.TemporaryDirectory(prefix="rpm_soak_") as tmp:
        dataset = os.path.join(tmp, "soak.tspmf")
        write_dataset(dataset)

        # Ground truth: the standalone miner's exact JSON bytes.
        mine = subprocess.run(
            [rpminer, "mine", "--input=%s" % dataset, "--per=2",
             "--min-ps=3", "--min-rec=2", "--output-format=json"],
            capture_output=True, text=True, timeout=120)
        if mine.returncode != 0:
            print("server_soak: standalone mine failed:\n%s" % mine.stderr)
            return 2
        expected_json = mine.stdout

        config = os.path.join(tmp, "tenants.jsonl")
        with open(config, "w", encoding="ascii") as out:
            out.write('{"tenant":"hot","max_concurrent":1,"max_queued":0}\n')

        server = subprocess.Popen(
            [rpminer, "serve", "data=%s" % dataset, "--port=0",
             "--config=%s" % config],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            # The CLI announces the resolved ephemeral port on stderr,
            # after a line per loaded dataset.
            port = None
            for _ in range(16):
                banner = server.stderr.readline()
                if "listening on 127.0.0.1:" in banner:
                    port = int(banner.rsplit(":", 1)[1])
                    break
            if port is None:
                print("server_soak: no listening banner on stderr")
                return 2

            stats = {"cold_ok": 0, "hot_ok": 0, "hot_overloaded": 0}
            threads = [
                threading.Thread(
                    target=cold_tenant_worker,
                    args=(port, "tenant-%d" % i, expected_json, stats))
                for i in range(1, COLD_TENANTS + 1)
            ] + [
                threading.Thread(target=hot_tenant_worker,
                                 args=(port, i, stats))
                for i in range(HOT_CONNECTIONS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # Contract 1: the hot tenant actually hit its quota, and the
            # cold tenants all completed in spite of it.
            if stats["hot_overloaded"] == 0:
                fail("hot tenant never saw OVERLOADED "
                     "(%d OK)" % stats["hot_ok"])
            if stats["hot_ok"] == 0:
                fail("hot tenant never completed a query")
            if stats["cold_ok"] != COLD_TENANTS * COLD_QUERIES_PER_TENANT:
                fail("cold tenants completed %d/%d queries"
                     % (stats["cold_ok"],
                        COLD_TENANTS * COLD_QUERIES_PER_TENANT))

            # Contract 4: SIGTERM -> clean drain -> exit 0.
            server.send_signal(signal.SIGTERM)
            try:
                _, stderr_rest = server.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                fail("server did not exit within 30s of SIGTERM")
                stderr_rest = ""
            else:
                if server.returncode != 0:
                    fail("server exited %d after SIGTERM" % server.returncode)
                if "drain: complete" not in stderr_rest:
                    fail("drain completion not reported:\n%s"
                         % stderr_rest[-2000:])
                elif "(0 session(s) force-closed)" not in stderr_rest:
                    fail("drain force-closed sessions:\n%s"
                         % stderr_rest[-2000:])

            print("server_soak: %d cold OK, hot %d OK / %d OVERLOADED"
                  % (stats["cold_ok"], stats["hot_ok"],
                     stats["hot_overloaded"]))
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    if failures:
        print("server_soak: FAIL (%d violation(s))" % len(failures))
        for message in failures[:20]:
            print("  - " + message)
        return 1
    print("server_soak: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
