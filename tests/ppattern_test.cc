#include "rpm/baselines/ppattern.h"

#include <gtest/gtest.h>

#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm::baselines {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::RandomDbSpec;

TEST(CountOnPeriodGapsTest, CountsGapsWithinBound) {
  // IAT^{ab} = {2,1,3,4,1,2}; with per=2, w=1 the on-period gaps are
  // {2,1,1,2} -> 4 (Example 4's periodic occurrences).
  EXPECT_EQ(CountOnPeriodGaps({1, 3, 4, 7, 11, 12, 14}, 2, 1), 4u);
}

TEST(CountOnPeriodGapsTest, WindowWidensTheBound) {
  // w=2 accepts iat <= 3: adds the gap of 3 -> 5.
  EXPECT_EQ(CountOnPeriodGaps({1, 3, 4, 7, 11, 12, 14}, 2, 2), 5u);
}

TEST(CountOnPeriodGapsTest, ShortLists) {
  EXPECT_EQ(CountOnPeriodGaps({}, 2, 1), 0u);
  EXPECT_EQ(CountOnPeriodGaps({9}, 2, 1), 0u);
}

/// Definitional p-pattern oracle over all subsets.
std::vector<PPattern> PPatternOracle(const TransactionDatabase& db,
                                     const PPatternParams& params) {
  std::vector<PPattern> out;
  const uint32_t n = db.ItemUniverseSize();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    Itemset pattern;
    for (uint32_t bit = 0; bit < n; ++bit) {
      if (mask & (1u << bit)) pattern.push_back(bit);
    }
    TimestampList ts = db.TimestampsOf(pattern);
    uint64_t pc = CountOnPeriodGaps(ts, params.period, params.window);
    if (pc >= params.min_sup) out.push_back({pattern, ts.size(), pc});
  }
  std::sort(out.begin(), out.end(),
            [](const PPattern& a, const PPattern& b) {
              return a.items < b.items;
            });
  return out;
}

TEST(PPatternTest, MatchesOracleOnPaperExample) {
  PPatternParams params;
  params.period = 2;
  params.window = 1;
  params.min_sup = 4;
  PPatternResult result = MinePPatterns(PaperExampleDb(), params);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.patterns, PPatternOracle(PaperExampleDb(), params));
  EXPECT_EQ(result.total_found, result.patterns.size());
}

TEST(PPatternTest, MatchesOracleAcrossThresholds) {
  TransactionDatabase db = PaperExampleDb();
  for (Timestamp per : {1, 2, 4}) {
    for (uint64_t min_sup : {2u, 4u, 6u}) {
      PPatternParams params;
      params.period = per;
      params.min_sup = min_sup;
      EXPECT_EQ(MinePPatterns(db, params).patterns,
                PPatternOracle(db, params))
          << "per=" << per << " minSup=" << min_sup;
    }
  }
}

TEST(PPatternTest, MatchesOracleOnRandomDbs) {
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 50;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    PPatternParams params;
    params.period = 3;
    params.min_sup = 10;
    EXPECT_EQ(MinePPatterns(db, params).patterns, PPatternOracle(db, params))
        << "seed " << seed;
  }
}

TEST(PPatternTest, RecurringPatternsAreAmongPPatterns) {
  // Sec. 5.4: every recurring pattern is discovered as a p-pattern at a
  // suitably low minSup — RP(per, minPS, minRec) needs at least
  // minRec*(minPS-1) on-period gaps.
  for (uint64_t seed = 31; seed <= 34; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 60;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    RpParams rp;
    rp.period = 3;
    rp.min_ps = 4;
    rp.min_rec = 2;
    PPatternParams pp;
    pp.period = rp.period;
    pp.min_sup = rp.min_rec * (rp.min_ps - 1);
    auto rp_sets =
        rpm::analysis::ItemsetsOf(MineRecurringPatterns(db, rp).patterns);
    auto pp_sets =
        rpm::analysis::ItemsetsOf(MinePPatterns(db, pp).patterns);
    EXPECT_TRUE(rpm::analysis::IsSubsetOf(rp_sets, pp_sets))
        << "seed " << seed;
  }
}

TEST(PPatternTest, LowMinSupProducesMorePatternsThanRpModel) {
  // The combinatorial-explosion contrast of Table 8.
  RandomDbSpec spec;
  spec.num_items = 8;
  spec.num_timestamps = 80;
  spec.item_base_prob = 0.4;
  TransactionDatabase db = MakeRandomDb(spec, 55);
  PPatternParams pp;
  pp.period = 4;
  pp.min_sup = 5;
  RpParams rp;
  rp.period = 4;
  rp.min_ps = 5;
  rp.min_rec = 2;
  EXPECT_GT(MinePPatterns(db, pp).total_found,
            MineRecurringPatterns(db, rp).patterns.size());
}

TEST(PPatternTest, StoredCapKeepsCounting) {
  TransactionDatabase db = PaperExampleDb();
  PPatternParams params;
  params.period = 2;
  params.min_sup = 2;
  PPatternOptions options;
  options.max_stored_patterns = 3;
  PPatternResult result = MinePPatterns(db, params, options);
  EXPECT_EQ(result.patterns.size(), 3u);
  EXPECT_GT(result.total_found, 3u);
  EXPECT_FALSE(result.truncated);
}

TEST(PPatternTest, TotalCapTruncatesEnumeration) {
  TransactionDatabase db = PaperExampleDb();
  PPatternParams params;
  params.period = 2;
  params.min_sup = 2;
  PPatternOptions options;
  options.max_total_patterns = 5;
  PPatternResult result = MinePPatterns(db, params, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.total_found, 5u);
}

TEST(PPatternTest, MaxLengthBoundsPatterns) {
  PPatternParams params;
  params.period = 2;
  params.min_sup = 2;
  PPatternOptions options;
  options.max_pattern_length = 1;
  PPatternResult result = MinePPatterns(PaperExampleDb(), params, options);
  for (const PPattern& p : result.patterns) EXPECT_EQ(p.items.size(), 1u);
}

TEST(PPatternTest, MaxLengthTracked) {
  PPatternParams params;
  params.period = 2;
  params.min_sup = 2;
  PPatternResult result = MinePPatterns(PaperExampleDb(), params);
  size_t longest = 0;
  for (const PPattern& p : result.patterns) {
    longest = std::max(longest, p.items.size());
  }
  EXPECT_EQ(result.max_length, longest);
}

TEST(PPatternTest, EmptyDatabase) {
  PPatternParams params;
  params.period = 2;
  params.min_sup = 1;
  PPatternResult result = MinePPatterns(TransactionDatabase{}, params);
  EXPECT_EQ(result.total_found, 0u);
  EXPECT_EQ(result.candidate_items, 0u);
}

TEST(PPatternDeathTest, InvalidParams) {
  PPatternParams bad;
  bad.period = 0;
  EXPECT_DEATH(MinePPatterns(PaperExampleDb(), bad), "Check failed");
}

}  // namespace
}  // namespace rpm::baselines
