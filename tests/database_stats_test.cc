#include "rpm/timeseries/database_stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::G;
using ::rpm::testing::PaperExampleDb;

TEST(DatabaseStatsTest, PaperExampleShape) {
  DatabaseStats stats = ComputeStats(PaperExampleDb());
  EXPECT_EQ(stats.num_transactions, 12u);
  EXPECT_EQ(stats.num_distinct_items, 7u);
  EXPECT_EQ(stats.total_item_occurrences, 46u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_length, 46.0 / 12.0);
  EXPECT_EQ(stats.max_transaction_length, 7u);
  EXPECT_EQ(stats.start_ts, 1);
  EXPECT_EQ(stats.end_ts, 14);
}

TEST(DatabaseStatsTest, ItemSupports) {
  DatabaseStats stats = ComputeStats(PaperExampleDb());
  ASSERT_EQ(stats.item_supports.size(), 7u);
  EXPECT_EQ(stats.item_supports[A], 8u);  // Sup(a)=8 per Table 2.
  EXPECT_EQ(stats.item_supports[G], 6u);  // Example 11: S(g)=6.
}

TEST(DatabaseStatsTest, EmptyDatabase) {
  DatabaseStats stats = ComputeStats(TransactionDatabase{});
  EXPECT_EQ(stats.num_transactions, 0u);
  EXPECT_EQ(stats.num_distinct_items, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_transaction_length, 0.0);
}

TEST(DatabaseStatsTest, ToStringMentionsKeyNumbers) {
  DatabaseStats stats = ComputeStats(PaperExampleDb());
  std::string s = stats.ToString();
  EXPECT_NE(s.find("12 transactions"), std::string::npos);
  EXPECT_NE(s.find("7 distinct items"), std::string::npos);
}

}  // namespace
}  // namespace rpm
