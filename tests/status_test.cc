#include "rpm/common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad per");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad per");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad per");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unknown("x").code(), StatusCode::kUnknown);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("item x");
  EXPECT_EQ(os.str(), "NotFound: item x");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ConstructingFromOkStatusDegradesToUnknown) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnknown);
}

Status Fails() { return Status::IOError("disk"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnNotOk(bool fail, int* reached) {
  RPM_RETURN_NOT_OK(fail ? Fails() : Succeeds());
  *reached = 1;
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  int reached = 0;
  EXPECT_TRUE(UseReturnNotOk(true, &reached).IsIOError());
  EXPECT_EQ(reached, 0);
  EXPECT_TRUE(UseReturnNotOk(false, &reached).ok());
  EXPECT_EQ(reached, 1);
}

Result<int> MakeInt(bool fail) {
  if (fail) return Status::OutOfRange("too big");
  return 7;
}

Status UseAssignOrReturn(bool fail, int* out) {
  RPM_ASSIGN_OR_RETURN(int v, MakeInt(fail));
  *out = v;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(true, &out).IsOutOfRange());
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(UseAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 7);
}

}  // namespace
}  // namespace rpm
