// QueryPlanner concurrency stress — written to run under TSan (the serve
// arm of scripts/verify.sh builds it with -fsanitize=thread). Hammers one
// shared planner from several threads with enough distinct shapes to churn
// the bounded cache, races epoch swaps against in-flight readers, and
// checks the results stay bit-identical to a single-threaded reference:
// cache eviction and loose->strict reuse must never change an answer.

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "rpm/analysis/export.h"
#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/executor.h"
#include "rpm/engine/query_planner.h"
#include "rpm/engine/snapshot_registry.h"
#include "test_util.h"

namespace rpm::engine {
namespace {

/// The mining shapes the stress cycles through — more than
/// QueryPlanner::kMaxCacheEntries so the FIFO evicts while threads plan.
std::vector<RpParams> StressShapes() {
  std::vector<RpParams> shapes;
  for (int64_t period : {2, 3, 4}) {
    for (uint64_t min_ps : {1u, 2u, 3u, 4u}) {
      RpParams params;
      params.period = period;
      params.min_ps = min_ps;
      params.min_rec = 2;
      shapes.push_back(params);
    }
  }
  return shapes;
}

/// Canonical bytes of a result (the serve payload uses the same encoder),
/// so "bit-identical" is a string compare.
std::string Encode(const QueryResult& result, const ItemDictionary& dict) {
  std::ostringstream out;
  Status s = analysis::WritePatternsJson(result.patterns, dict, &out);
  return s.ok() ? out.str() : "<encode error: " + s.ToString() + ">";
}

QueryResult MustRun(QueryPlanner& planner, const RpParams& params) {
  Query query;
  query.params = params;
  ExecOptions exec;
  exec.threads = 1;
  Result<QueryResult> result =
      GetExecutor(BackendKind::kSequential).Execute(planner, query, exec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(*result) : QueryResult{};
}

TEST(PlannerStress, ConcurrentPlansUnderEvictionStayDeterministic) {
  auto snapshot = DatasetSnapshot::Create(
      rpm::testing::MakeRandomDb(rpm::testing::RandomDbSpec{}, 17));
  const std::vector<RpParams> shapes = StressShapes();
  ASSERT_GT(shapes.size(), QueryPlanner::kMaxCacheEntries);

  // Single-threaded reference answers, one fresh planner per shape.
  std::vector<std::string> expected;
  for (const RpParams& params : shapes) {
    QueryPlanner reference(snapshot);
    expected.push_back(
        Encode(MustRun(reference, params), snapshot->dictionary()));
  }

  QueryPlanner shared(snapshot);
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < 3 * shapes.size(); ++i) {
        // Offset start per thread so threads contend on different shapes
        // and the cache keeps churning.
        const size_t shape = (i + t * 5) % shapes.size();
        QueryResult result = MustRun(shared, shapes[shape]);
        if (Encode(result, snapshot->dictionary()) != expected[shape]) {
          mismatch.store(true);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_LE(shared.cache_size(), QueryPlanner::kMaxCacheEntries);
  EXPECT_GT(shared.tree_builds(), 0u);
}

TEST(PlannerStress, PinnedPlanSurvivesEviction) {
  auto snapshot =
      DatasetSnapshot::Create(rpm::testing::PaperExampleDb());
  QueryPlanner planner(snapshot);
  const RpParams pinned_params = rpm::testing::PaperExampleParams();
  QueryPlanner::Plan pinned = planner.PlanFor(pinned_params);
  ASSERT_NE(pinned.prepared, nullptr);

  // Push kMaxCacheEntries+ fresh shapes through: the pinned build is
  // evicted from the cache but must stay valid for its holder.
  for (const RpParams& params : StressShapes()) planner.PlanFor(params);
  EXPECT_LE(planner.cache_size(), QueryPlanner::kMaxCacheEntries);
  EXPECT_NE(pinned.prepared, nullptr);

  // And re-planning the evicted shape still yields the same answer.
  QueryResult after = MustRun(planner, pinned_params);
  EXPECT_EQ(after.patterns.size(),
            rpm::testing::PaperExamplePatterns().size());
}

TEST(PlannerStress, EpochSwapsNeverDisturbInFlightReaders) {
  SnapshotRegistry registry;
  auto db_even = DatasetSnapshot::Create(
      rpm::testing::MakeRandomDb(rpm::testing::RandomDbSpec{}, 1));
  auto db_odd = DatasetSnapshot::Create(
      rpm::testing::MakeRandomDb(rpm::testing::RandomDbSpec{}, 2));
  ASSERT_TRUE(registry.Register("ds", db_even).ok());

  RpParams params;
  params.period = 2;
  params.min_ps = 2;
  params.min_rec = 2;
  // Expected answers keyed by epoch parity (odd epochs carry db_even:
  // epoch 1 is the registration).
  std::string expected_even_db, expected_odd_db;
  {
    QueryPlanner planner_a(db_even);
    expected_even_db =
        Encode(MustRun(planner_a, params), db_even->dictionary());
    QueryPlanner planner_b(db_odd);
    expected_odd_db =
        Encode(MustRun(planner_b, params), db_odd->dictionary());
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        Result<RegisteredDataset> entry = registry.Get("ds");
        if (!entry.ok()) {
          mismatch.store(true);
          return;
        }
        // The pinned entry must answer for ITS snapshot even if a swap
        // lands mid-query.
        QueryResult result = MustRun(*entry->planner, params);
        const std::string& expected =
            entry->epoch % 2 == 1 ? expected_even_db : expected_odd_db;
        if (Encode(result, entry->snapshot->dictionary()) != expected) {
          mismatch.store(true);
        }
      }
    });
  }

  for (int swap = 0; swap < 20; ++swap) {
    Result<RegisteredDataset> entry =
        registry.Swap("ds", swap % 2 == 0 ? db_odd : db_even);
    ASSERT_TRUE(entry.ok());
    EXPECT_EQ(entry->epoch, static_cast<uint64_t>(swap + 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(registry.size(), 1u);
}

}  // namespace
}  // namespace rpm::engine
