#include "rpm/baselines/async_periodic.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "rpm/timeseries/tdb_builder.h"
#include "test_util.h"

namespace rpm::baselines {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;

/// Item A at the given sequence positions (timestamps = positions, filler
/// item B everywhere so every position exists as a transaction).
TransactionDatabase DbWithAAt(const std::vector<size_t>& a_positions,
                              size_t length) {
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (size_t i = 0; i < length; ++i) {
    Itemset items = {B};
    if (std::find(a_positions.begin(), a_positions.end(), i) !=
        a_positions.end()) {
      items.push_back(A);
    }
    rows.push_back({static_cast<Timestamp>(i), items});
  }
  return MakeDatabase(rows);
}

const AsyncPeriodicPattern* FindPattern(
    const std::vector<AsyncPeriodicPattern>& ps, ItemId item,
    size_t period) {
  for (const auto& p : ps) {
    if (p.item == item && p.period == period) return &p;
  }
  return nullptr;
}

TEST(AsyncPeriodicTest, PerfectPeriodicSingleSegment) {
  // A at 0,3,6,9,12: one segment of 5 repetitions at period 3.
  TransactionDatabase db = DbWithAAt({0, 3, 6, 9, 12}, 15);
  AsyncPeriodicParams params;
  params.min_rep = 3;
  params.max_dis = 2;
  params.max_period = 5;
  auto result = MineAsyncPeriodicPatterns(db, params);
  const AsyncPeriodicPattern* p = FindPattern(result, A, 3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->total_repetitions, 5u);
  ASSERT_EQ(p->segments.size(), 1u);
  EXPECT_EQ(p->segments[0], (ValidSegment{0, 5}));
  EXPECT_EQ(p->start_pos(), 0u);
  EXPECT_EQ(p->end_pos(), 13u);
}

TEST(AsyncPeriodicTest, PhaseShiftBridgedByDisturbance) {
  // Period 3 with a phase shift: 0,3,6 then (shift by +1) 10,13,16.
  // Gap between segment end (6) and next start (10) is 4.
  TransactionDatabase db = DbWithAAt({0, 3, 6, 10, 13, 16}, 20);
  AsyncPeriodicParams params;
  params.min_rep = 3;
  params.max_period = 5;

  params.max_dis = 4;  // Bridges the shift.
  auto bridged = MineAsyncPeriodicPatterns(db, params);
  const AsyncPeriodicPattern* p = FindPattern(bridged, A, 3);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->total_repetitions, 6u);
  EXPECT_EQ(p->segments.size(), 2u);

  params.max_dis = 3;  // Too strict: best chain is one segment.
  auto split = MineAsyncPeriodicPatterns(db, params);
  const AsyncPeriodicPattern* q = FindPattern(split, A, 3);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->total_repetitions, 3u);
  EXPECT_EQ(q->segments.size(), 1u);
}

TEST(AsyncPeriodicTest, MinRepFiltersShortRuns) {
  // Runs of 2 at period 2: 0,2 and 7,9.
  TransactionDatabase db = DbWithAAt({0, 2, 7, 9}, 12);
  AsyncPeriodicParams params;
  params.min_rep = 3;
  params.max_period = 4;
  auto result = MineAsyncPeriodicPatterns(db, params);
  EXPECT_EQ(FindPattern(result, A, 2), nullptr);
  params.min_rep = 2;
  result = MineAsyncPeriodicPatterns(db, params);
  ASSERT_NE(FindPattern(result, A, 2), nullptr);
}

TEST(AsyncPeriodicTest, ChoosesBestChainNotFirst) {
  // Period 2: segments {0,2} (2 reps), far gap, {10,12,14,16} (4 reps).
  TransactionDatabase db = DbWithAAt({0, 2, 10, 12, 14, 16}, 20);
  AsyncPeriodicParams params;
  params.min_rep = 2;
  params.max_dis = 3;  // Gap 10-2=8 > 3: chains cannot join.
  params.max_period = 3;
  auto result = MineAsyncPeriodicPatterns(db, params);
  const AsyncPeriodicPattern* p = FindPattern(result, A, 2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->total_repetitions, 4u);
  EXPECT_EQ(p->segments[0].start_pos, 10u);
}

TEST(AsyncPeriodicTest, FillerItemIsPeriodOnePattern) {
  TransactionDatabase db = DbWithAAt({0}, 10);
  AsyncPeriodicParams params;
  params.min_rep = 5;
  params.max_period = 2;
  auto result = MineAsyncPeriodicPatterns(db, params);
  const AsyncPeriodicPattern* b = FindPattern(result, B, 1);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->total_repetitions, 10u);
}

TEST(AsyncPeriodicTest, PositionBlindnessVsRecurringModel) {
  // The paper's Sec. 2 point in reverse: an item periodic in TIME (every
  // 10 minutes) recorded in a database where OTHER transactions appear
  // irregularly — its POSITION period is erratic, so the asynchronous
  // model (max_period bounded) misses it while RP-growth sees it.
  TdbBuilder builder;
  Rng rng(7);
  Timestamp ts = 0;
  for (int k = 0; k < 40; ++k) {
    ts += 10;
    builder.AddTransaction(ts, {A});
    // 0-6 noise transactions between every pair of A's.
    Timestamp noise_ts = ts;
    const uint64_t noise = rng.NextUint64(7);
    for (uint64_t n = 0; n < noise; ++n) {
      noise_ts += 1;
      builder.AddTransaction(noise_ts, {B});
    }
  }
  TransactionDatabase db = builder.Build();

  RpParams rp;
  rp.period = 10;
  rp.min_ps = 40;
  rp.min_rec = 1;
  RpGrowthResult mined = MineRecurringPatterns(db, rp);
  bool a_found = false;
  for (const auto& p : mined.patterns) a_found |= p.items == Itemset{A};
  EXPECT_TRUE(a_found);

  AsyncPeriodicParams ap;
  ap.min_rep = 10;  // A sustained positional period...
  ap.max_dis = 3;
  ap.max_period = 8;
  auto async_result = MineAsyncPeriodicPatterns(db, ap);
  for (const auto& p : async_result) {
    if (p.item == A) {
      EXPECT_LT(p.total_repetitions, 40u)
          << "position-based model should not see the full time-periodic "
             "behaviour";
    }
  }
}

TEST(AsyncPeriodicTest, EmptyDatabase) {
  AsyncPeriodicParams params;
  EXPECT_TRUE(
      MineAsyncPeriodicPatterns(TransactionDatabase{}, params).empty());
}

TEST(AsyncPeriodicTest, ResultsOrderedByItemThenPeriod) {
  TransactionDatabase db = DbWithAAt({0, 2, 4, 6, 8}, 10);
  AsyncPeriodicParams params;
  params.min_rep = 2;
  params.max_period = 4;
  auto result = MineAsyncPeriodicPatterns(db, params);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_TRUE(result[i - 1].item < result[i].item ||
                (result[i - 1].item == result[i].item &&
                 result[i - 1].period < result[i].period));
  }
}

TEST(AsyncPeriodicDeathTest, InvalidParams) {
  AsyncPeriodicParams bad;
  bad.min_rep = 1;
  EXPECT_DEATH(
      MineAsyncPeriodicPatterns(rpm::testing::PaperExampleDb(), bad),
      "Check failed");
}

}  // namespace
}  // namespace rpm::baselines
