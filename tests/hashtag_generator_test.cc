#include "rpm/gen/hashtag_generator.h"

#include <gtest/gtest.h>

#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"
#include "rpm/timeseries/database_stats.h"

namespace rpm::gen {
namespace {

HashtagParams SmallParams() {
  HashtagParams params;
  params.num_minutes = 5 * 1440;
  params.num_hashtags = 60;
  params.num_random_events = 4;
  params.min_event_minutes = 1440;
  params.max_event_minutes = 2 * 1440;
  params.seed = 33;
  return params;
}

TEST(HashtagGeneratorTest, Deterministic) {
  GeneratedHashtagStream a = GenerateHashtagStream(SmallParams());
  GeneratedHashtagStream b = GenerateHashtagStream(SmallParams());
  ASSERT_EQ(a.db.size(), b.db.size());
  for (size_t i = 0; i < a.db.size(); ++i) {
    EXPECT_EQ(a.db.transaction(i).items, b.db.transaction(i).items);
  }
}

TEST(HashtagGeneratorTest, DatabaseValidates) {
  GeneratedHashtagStream g = GenerateHashtagStream(SmallParams());
  EXPECT_TRUE(g.db.Validate().ok());
  EXPECT_GT(g.db.size(), 1000u);
}

TEST(HashtagGeneratorTest, PlantedSpecsComeFirstInEvents) {
  BurstEventSpec spec;
  spec.label = "custom";
  spec.tag_indices = {10, 20};
  spec.windows = {{100, 2000}};
  spec.fire_prob = 0.9;
  GeneratedHashtagStream g = GenerateHashtagStream(SmallParams(), {spec});
  ASSERT_EQ(g.events.size(), 1u + SmallParams().num_random_events);
  EXPECT_EQ(g.events[0].label, "custom");
  EXPECT_EQ(g.events[0].tags, (Itemset{10, 20}));
}

TEST(HashtagGeneratorTest, NameOverridesApply) {
  GeneratedHashtagStream g =
      GenerateHashtagStream(SmallParams(), {}, {{7, "earthquake"}});
  EXPECT_EQ(g.db.dictionary().NameOf(7), "earthquake");
  EXPECT_EQ(g.db.dictionary().NameOf(8), "tag0008");
}

TEST(HashtagGeneratorTest, ZipfBackgroundSkew) {
  DatabaseStats stats = ComputeStats(GenerateHashtagStream(SmallParams()).db);
  // Rank 0 must dominate a deep-tail tag that is in no event.
  ASSERT_GT(stats.item_supports.size(), 5u);
  EXPECT_GT(stats.item_supports[0], stats.item_supports[5] * 2);
}

TEST(HashtagGeneratorTest, BurstsOnlyFireInsideWindows) {
  // A planted event over rare tags: co-occurrences of the pair outside the
  // window should be (near) absent.
  HashtagParams params = SmallParams();
  params.num_random_events = 0;
  params.zipf_exponent = 2.0;  // Make the tail genuinely rare.
  BurstEventSpec spec;
  spec.label = "isolated";
  spec.tag_indices = {55, 58};  // Deep tail: background is negligible.
  spec.windows = {{2000, 4000}};
  spec.fire_prob = 0.9;
  GeneratedHashtagStream g = GenerateHashtagStream(params, {spec});

  TimestampList joint = g.db.TimestampsOf({55, 58});
  ASSERT_GT(joint.size(), 100u);  // The burst fired.
  size_t outside = 0;
  for (Timestamp ts : joint) {
    if (ts < 2000 || ts >= 4000) ++outside;
  }
  EXPECT_LT(outside, 3u);
}

TEST(HashtagGeneratorTest, MinerRecoversPlantedEvent) {
  HashtagParams params = SmallParams();
  params.num_random_events = 0;
  BurstEventSpec spec;
  spec.label = "flood";
  spec.tag_indices = {50, 57};
  spec.windows = {{1000, 3500}};
  spec.fire_prob = 0.85;
  GeneratedHashtagStream g = GenerateHashtagStream(params, {spec});

  RpParams mine;
  mine.period = 30;
  mine.min_ps = 40;
  mine.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(g.db, mine);
  EXPECT_TRUE(rpm::analysis::RecoversPlantedEvent(
      result.patterns, g.events[0].tags, 1000, 3500));
}

TEST(HashtagGeneratorDeathTest, RejectsOutOfRangeTagIndex) {
  BurstEventSpec spec;
  spec.label = "bad";
  spec.tag_indices = {10000};
  spec.windows = {{0, 100}};
  EXPECT_DEATH(GenerateHashtagStream(SmallParams(), {spec}), "Check failed");
}

}  // namespace
}  // namespace rpm::gen
