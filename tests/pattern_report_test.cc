#include "rpm/analysis/pattern_report.h"

#include <gtest/gtest.h>

#include "rpm/common/civil_time.h"
#include "test_util.h"

namespace rpm::analysis {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;

ItemDictionary AbDict() {
  ItemDictionary dict;
  dict.GetOrAdd("jackets");
  dict.GetOrAdd("gloves");
  return dict;
}

TEST(FormatItemsetTest, WithNames) {
  EXPECT_EQ(FormatItemset({A, B}, AbDict()), "{jackets, gloves}");
}

TEST(FormatItemsetTest, EmptyDictionaryFallsBackToIds) {
  EXPECT_EQ(FormatItemset({3, 9}, ItemDictionary{}), "{3, 9}");
}

TEST(FormatPatternReportTest, NumericEndpointsByDefault) {
  std::vector<RecurringPattern> ps = {
      {{A, B}, 7, {{1, 4, 3}, {11, 14, 3}}}};
  auto lines = FormatPatternReport(ps, AbDict());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0],
            "{jackets, gloves}  sup=7 rec=2  [1 .. 4]:ps=3"
            " [11 .. 14]:ps=3");
}

TEST(FormatPatternReportTest, DateEndpointsWithEpoch) {
  const int64_t epoch = MinutesFromCivil({2013, 5, 1, 0, 0});
  std::vector<RecurringPattern> ps = {{{A}, 3, {{0, 1440, 3}}}};
  ReportOptions options;
  options.epoch_minutes = epoch;
  auto lines = FormatPatternReport(ps, AbDict(), options);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("2013-05-01 00:00"), std::string::npos);
  EXPECT_NE(lines[0].find("2013-05-02 00:00"), std::string::npos);
}

TEST(FormatPatternReportTest, SortBySupportDescending) {
  std::vector<RecurringPattern> ps = {{{A}, 3, {{0, 1, 2}}},
                                      {{B}, 9, {{0, 1, 2}}}};
  auto lines = FormatPatternReport(ps, AbDict());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("gloves"), std::string::npos);
}

TEST(FormatPatternReportTest, SortByDuration) {
  std::vector<RecurringPattern> ps = {
      {{A}, 9, {{0, 5, 2}}},          // Duration 5, higher support.
      {{B}, 3, {{0, 100, 2}}}};       // Duration 100.
  ReportOptions options;
  options.sort_by_support = false;
  auto lines = FormatPatternReport(ps, AbDict(), options);
  EXPECT_NE(lines[0].find("gloves"), std::string::npos);
}

TEST(FormatPatternReportTest, TopKTruncates) {
  std::vector<RecurringPattern> ps;
  for (uint64_t s = 1; s <= 5; ++s) ps.push_back({{A}, s, {{0, 1, 1}}});
  ReportOptions options;
  options.top_k = 2;
  EXPECT_EQ(FormatPatternReport(ps, AbDict(), options).size(), 2u);
}

TEST(FormatPatternReportTest, MinLengthFilters) {
  std::vector<RecurringPattern> ps = {{{A}, 1, {}}, {{A, B}, 1, {}}};
  ReportOptions options;
  options.min_pattern_length = 2;
  auto lines = FormatPatternReport(ps, AbDict(), options);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("{jackets, gloves}"), std::string::npos);
}

TEST(FormatPatternReportTest, EmptyInput) {
  EXPECT_TRUE(FormatPatternReport({}, AbDict()).empty());
}

}  // namespace
}  // namespace rpm::analysis
