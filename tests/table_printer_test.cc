#include "rpm/analysis/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rpm::analysis {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "count"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "12345"});
  std::ostringstream out;
  table.Print(&out);
  std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Numeric column right-aligned: "    1" has leading spaces.
  EXPECT_NE(text.find("    1\n"), std::string::npos);
}

TEST(TablePrinterTest, HeaderRuleIsPresent) {
  TablePrinter table({"x"});
  table.AddRow({"1"});
  std::ostringstream out;
  table.Print(&out);
  EXPECT_NE(out.str().find("-"), std::string::npos);
}

TEST(TablePrinterTest, RuleInsertsSeparator) {
  TablePrinter table({"x"});
  table.AddRow({"1"});
  table.AddRule();
  table.AddRow({"2"});
  std::ostringstream out;
  table.Print(&out);
  std::string text = out.str();
  size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u);  // Header + rule + row + rule + row.
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(&out);  // Must not crash; trailing cells empty.
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TablePrinterTest, TextColumnLeftAligned) {
  TablePrinter table({"name", "v"});
  table.AddRow({"longtext", "1"});
  table.AddRow({"s", "2"});
  std::ostringstream out;
  table.Print(&out);
  EXPECT_NE(out.str().find("s       "), std::string::npos);
}

}  // namespace
}  // namespace rpm::analysis
