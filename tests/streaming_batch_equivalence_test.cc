// Differential testing: the incremental RP-list must agree with the batch
// Algorithm 1 on the scaled paper datasets, and its candidate sets must
// make a subsequent RP-growth run complete (no pattern's item missing).

#include <algorithm>

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/streaming_rp_list.h"
#include "rpm/gen/paper_datasets.h"

namespace rpm {
namespace {

void ExpectStreamingMatchesBatch(const TransactionDatabase& db,
                                 const RpParams& params) {
  StreamingRpList streaming(params.period, params.min_ps);
  for (const Transaction& tr : db.transactions()) {
    ASSERT_TRUE(streaming.ObserveTransaction(tr.ts, tr.items).ok());
  }
  RpList batch = BuildRpList(db, params);
  for (const RpListEntry& e : batch.entries()) {
    EXPECT_EQ(streaming.SupportOf(e.item), e.support) << "item " << e.item;
    EXPECT_EQ(streaming.ErecOf(e.item), e.erec) << "item " << e.item;
  }
  std::vector<ItemId> batch_candidates;
  for (const RpListEntry& e : batch.candidates()) {
    batch_candidates.push_back(e.item);
  }
  std::sort(batch_candidates.begin(), batch_candidates.end());
  EXPECT_EQ(streaming.CandidateItems(params.min_rec), batch_candidates);
}

TEST(StreamingBatchEquivalenceTest, QuestMini) {
  TransactionDatabase db = gen::MakeT10I4D100K(0.02, 3);
  RpParams params;
  params.period = 40;
  params.min_ps = 5;
  params.min_rec = 2;
  ExpectStreamingMatchesBatch(db, params);
}

TEST(StreamingBatchEquivalenceTest, Shop14Mini) {
  gen::GeneratedClickstream shop = gen::MakeShop14(0.03, 4);
  RpParams params;
  params.period = 90;
  params.min_ps = 15;
  params.min_rec = 1;
  ExpectStreamingMatchesBatch(shop.db, params);
}

TEST(StreamingBatchEquivalenceTest, TwitterMini) {
  gen::GeneratedHashtagStream tw = gen::MakeTwitter(0.02, 5);
  RpParams params;
  params.period = 60;
  params.min_ps = 30;
  params.min_rec = 1;
  ExpectStreamingMatchesBatch(tw.db, params);
}

TEST(StreamingBatchEquivalenceTest, CandidatesCoverEveryMinedPattern) {
  gen::GeneratedHashtagStream tw = gen::MakeTwitter(0.02, 6);
  RpParams params;
  params.period = 60;
  params.min_ps = 25;
  params.min_rec = 1;
  StreamingRpList streaming(params.period, params.min_ps);
  for (const Transaction& tr : tw.db.transactions()) {
    ASSERT_TRUE(streaming.ObserveTransaction(tr.ts, tr.items).ok());
  }
  std::vector<ItemId> candidates = streaming.CandidateItems(params.min_rec);
  RpGrowthResult mined = MineRecurringPatterns(tw.db, params);
  for (const RecurringPattern& p : mined.patterns) {
    for (ItemId item : p.items) {
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(),
                                     item))
          << "item " << item << " missing from streaming candidates";
    }
  }
}

}  // namespace
}  // namespace rpm
