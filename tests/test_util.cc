#include "test_util.h"

#include <algorithm>

namespace rpm::testing {

std::vector<RecurringPattern> PaperExamplePatterns() {
  // Table 2, written out literally.
  std::vector<RecurringPattern> expected = {
      {{A}, 8, {{1, 4, 4}, {11, 14, 3}}},
      {{B}, 7, {{1, 4, 3}, {11, 14, 3}}},
      {{D}, 6, {{2, 5, 3}, {9, 12, 3}}},
      {{E}, 6, {{3, 6, 3}, {10, 12, 3}}},
      {{F}, 6, {{3, 6, 3}, {10, 12, 3}}},
      {{A, B}, 7, {{1, 4, 3}, {11, 14, 3}}},
      {{C, D}, 6, {{2, 5, 3}, {9, 12, 3}}},
      {{E, F}, 6, {{3, 6, 3}, {10, 12, 3}}},
  };
  SortPatternsCanonically(&expected);
  return expected;
}

TransactionDatabase MakeRandomDb(const RandomDbSpec& spec, uint64_t seed) {
  Rng rng(seed);

  // Timestamps with random gaps in [1, max_gap].
  std::vector<Timestamp> timestamps(spec.num_timestamps);
  Timestamp ts = 0;
  for (Timestamp& slot : timestamps) {
    ts += 1 + static_cast<Timestamp>(
                  rng.NextUint64(static_cast<uint64_t>(spec.max_gap)));
    slot = ts;
  }

  // Planted bursts: an item pair fires with high probability inside a
  // window of consecutive timestamps.
  struct Burst {
    ItemId first, second;
    size_t begin_idx, end_idx;
  };
  std::vector<Burst> bursts;
  for (size_t b = 0; b < spec.num_bursts; ++b) {
    Burst burst;
    burst.first = static_cast<ItemId>(rng.NextUint64(spec.num_items));
    burst.second = static_cast<ItemId>(rng.NextUint64(spec.num_items));
    const size_t len = 5 + rng.NextUint64(spec.num_timestamps / 3 + 1);
    burst.begin_idx = rng.NextUint64(spec.num_timestamps);
    burst.end_idx = std::min(burst.begin_idx + len, spec.num_timestamps);
    bursts.push_back(burst);
  }

  TdbBuilder builder;
  Itemset txn;
  for (size_t idx = 0; idx < timestamps.size(); ++idx) {
    txn.clear();
    for (ItemId item = 0; item < spec.num_items; ++item) {
      if (rng.NextBernoulli(spec.item_base_prob)) txn.push_back(item);
    }
    for (const Burst& b : bursts) {
      if (idx >= b.begin_idx && idx < b.end_idx &&
          rng.NextBernoulli(spec.burst_prob)) {
        txn.push_back(b.first);
        txn.push_back(b.second);
      }
    }
    if (!txn.empty()) builder.AddTransaction(timestamps[idx], txn);
  }
  return builder.Build();
}

std::string VerifyPatternAgainstDb(const TransactionDatabase& db,
                                   const RpParams& params,
                                   const RecurringPattern& pattern) {
  const TimestampList ts = db.TimestampsOf(pattern.items);
  if (ts.size() != pattern.support) {
    return "support mismatch: reported " + std::to_string(pattern.support) +
           ", actual " + std::to_string(ts.size());
  }
  const std::vector<PeriodicInterval> expected =
      FindInterestingIntervals(ts, params);
  if (expected.size() < params.min_rec) {
    return "pattern is not recurring: rec=" +
           std::to_string(expected.size());
  }
  if (expected != pattern.intervals) {
    return "interval list mismatch";
  }
  return "";
}

}  // namespace rpm::testing
