#include "rpm/core/brute_force.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::PaperExamplePatterns;

TEST(MineByDefinitionTest, ReproducesTable2) {
  std::vector<RecurringPattern> mined =
      MineByDefinition(PaperExampleDb(), PaperExampleParams());
  EXPECT_TRUE(SamePatternSets(mined, PaperExamplePatterns()));
}

TEST(MineByDefinitionTest, EmptyDatabase) {
  EXPECT_TRUE(
      MineByDefinition(TransactionDatabase{}, PaperExampleParams()).empty());
}

TEST(MineByDefinitionTest, MinRecOneIncludesC) {
  RpParams params = PaperExampleParams();
  params.min_rec = 1;
  std::vector<RecurringPattern> mined =
      MineByDefinition(PaperExampleDb(), params);
  bool has_c = false;
  for (const RecurringPattern& p : mined) {
    if (p.items == Itemset{rpm::testing::C}) has_c = true;
  }
  EXPECT_TRUE(has_c);
}

TEST(MineVerticalTest, MatchesDefinitionalOnPaperExample) {
  VerticalMinerResult vertical =
      MineVertical(PaperExampleDb(), PaperExampleParams());
  EXPECT_TRUE(SamePatternSets(
      vertical.patterns,
      MineByDefinition(PaperExampleDb(), PaperExampleParams())));
}

TEST(MineVerticalTest, PruningOnAndOffAgree) {
  VerticalMinerOptions no_prune;
  no_prune.use_candidate_pruning = false;
  VerticalMinerResult pruned =
      MineVertical(PaperExampleDb(), PaperExampleParams());
  VerticalMinerResult unpruned =
      MineVertical(PaperExampleDb(), PaperExampleParams(), no_prune);
  EXPECT_TRUE(SamePatternSets(pruned.patterns, unpruned.patterns));
  // The Erec prune must explore no more of the lattice.
  EXPECT_LE(pruned.nodes_explored, unpruned.nodes_explored);
}

TEST(MineVerticalTest, MaxLengthCapsExploration) {
  VerticalMinerOptions options;
  options.max_pattern_length = 1;
  VerticalMinerResult result =
      MineVertical(PaperExampleDb(), PaperExampleParams(), options);
  for (const RecurringPattern& p : result.patterns) {
    EXPECT_EQ(p.items.size(), 1u);
  }
}

TEST(MineVerticalTest, AgreesWithRpGrowthOnPaperExample) {
  VerticalMinerResult vertical =
      MineVertical(PaperExampleDb(), PaperExampleParams());
  RpGrowthResult growth =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  EXPECT_TRUE(SamePatternSets(vertical.patterns, growth.patterns));
}

TEST(MineVerticalTest, ParallelMatchesSequential) {
  for (uint64_t seed = 91; seed <= 94; ++seed) {
    rpm::testing::RandomDbSpec spec;
    spec.num_items = 8;
    spec.num_timestamps = 80;
    TransactionDatabase db = rpm::testing::MakeRandomDb(spec, seed);
    RpParams params;
    params.period = 3;
    params.min_ps = 2;
    params.min_rec = 1;
    VerticalMinerOptions sequential;
    VerticalMinerOptions parallel;
    parallel.num_threads = 4;
    VerticalMinerResult seq = MineVertical(db, params, sequential);
    VerticalMinerResult par = MineVertical(db, params, parallel);
    EXPECT_EQ(seq.patterns, par.patterns) << "seed " << seed;
    EXPECT_EQ(seq.nodes_explored, par.nodes_explored) << "seed " << seed;
  }
}

TEST(MineVerticalTest, MoreThreadsThanBranchesIsFine) {
  TransactionDatabase db = PaperExampleDb();
  VerticalMinerOptions options;
  options.num_threads = 64;
  VerticalMinerResult result =
      MineVertical(db, PaperExampleParams(), options);
  EXPECT_TRUE(SamePatternSets(
      result.patterns, MineByDefinition(db, PaperExampleParams())));
}

TEST(MineByDefinitionDeathTest, RejectsLargeUniverses) {
  // 21 distinct items exceeds kMaxDefinitionalItems.
  std::vector<std::pair<Timestamp, Itemset>> rows;
  Itemset wide;
  for (ItemId i = 0; i < 21; ++i) wide.push_back(i);
  rows.push_back({1, wide});
  TransactionDatabase db = MakeDatabase(rows);
  EXPECT_DEATH(MineByDefinition(db, PaperExampleParams()), "Check failed");
}

}  // namespace
}  // namespace rpm
