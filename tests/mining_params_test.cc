#include "rpm/core/mining_params.h"

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(RpParamsTest, DefaultsValidate) {
  EXPECT_TRUE(RpParams{}.Validate().ok());
}

TEST(RpParamsTest, RejectsNonPositivePeriod) {
  RpParams p;
  p.period = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
  p.period = -5;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(RpParamsTest, RejectsZeroMinPs) {
  RpParams p;
  p.min_ps = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(RpParamsTest, RejectsZeroMinRec) {
  RpParams p;
  p.min_rec = 0;
  EXPECT_TRUE(p.Validate().IsInvalidArgument());
}

TEST(RpParamsTest, ToStringListsThresholds) {
  RpParams p;
  p.period = 360;
  p.min_ps = 100;
  p.min_rec = 2;
  EXPECT_EQ(p.ToString(), "per=360, minPS=100, minRec=2");
  p.max_gap_violations = 3;
  EXPECT_EQ(p.ToString(), "per=360, minPS=100, minRec=2, maxViolations=3");
}

TEST(MakeParamsWithMinPsFractionTest, PaperTable4Values) {
  // minPS = 0.1% of |TDB| = 100,000 -> 100 (the T10I4D100K row).
  Result<RpParams> p = MakeParamsWithMinPsFraction(360, 0.001, 2, 100000);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->min_ps, 100u);
  EXPECT_EQ(p->period, 360);
  EXPECT_EQ(p->min_rec, 2u);
}

TEST(MakeParamsWithMinPsFractionTest, TwitterTwoPercent) {
  // 2% of 177,120 = 3542.4 -> ceil 3543.
  Result<RpParams> p = MakeParamsWithMinPsFraction(1440, 0.02, 1, 177120);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->min_ps, 3543u);
}

TEST(MakeParamsWithMinPsFractionTest, ClampsToAtLeastOne) {
  Result<RpParams> p = MakeParamsWithMinPsFraction(10, 0.0, 1, 100);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->min_ps, 1u);
}

TEST(MakeParamsWithMinPsFractionTest, RejectsOutOfRangeFraction) {
  EXPECT_FALSE(MakeParamsWithMinPsFraction(10, -0.1, 1, 100).ok());
  EXPECT_FALSE(MakeParamsWithMinPsFraction(10, 1.5, 1, 100).ok());
}

TEST(MakeParamsWithMinPsFractionTest, PropagatesValidation) {
  EXPECT_FALSE(MakeParamsWithMinPsFraction(0, 0.1, 1, 100).ok());
  EXPECT_FALSE(MakeParamsWithMinPsFraction(10, 0.1, 0, 100).ok());
}

}  // namespace
}  // namespace rpm
