#include "rpm/verify/harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "rpm/core/rp_growth.h"
#include "rpm/timeseries/tdb_builder.h"
#include "rpm/verify/case_generator.h"
#include "rpm/verify/cross_check.h"
#include "rpm/verify/shrinker.h"
#include "test_util.h"

namespace rpm::verify {
namespace {

using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;

bool SameDatabase(const TransactionDatabase& a, const TransactionDatabase& b) {
  return a.transactions() == b.transactions();
}

// --- Case generator --------------------------------------------------------

TEST(CaseGeneratorTest, DeterministicInSeedAndIndex) {
  for (uint64_t index = 0; index < 12; ++index) {
    VerifyCase a = MakeVerifyCase(/*seed=*/99, index);
    VerifyCase b = MakeVerifyCase(/*seed=*/99, index);
    EXPECT_EQ(a.regime, b.regime) << "index " << index;
    EXPECT_TRUE(SameDatabase(a.db, b.db)) << "index " << index;
    EXPECT_EQ(a.params.period, b.params.period) << "index " << index;
    EXPECT_EQ(a.params.min_ps, b.params.min_ps) << "index " << index;
    EXPECT_EQ(a.params.min_rec, b.params.min_rec) << "index " << index;
  }
}

TEST(CaseGeneratorTest, SeedsProduceDifferentStreams) {
  VerifyCase a = MakeVerifyCase(1, 0);
  VerifyCase b = MakeVerifyCase(2, 0);
  EXPECT_FALSE(SameDatabase(a.db, b.db));
}

TEST(CaseGeneratorTest, CoversEveryRegimeAndGeneratesValidCases) {
  std::set<std::string> seen;
  for (uint64_t index = 0; index < 24; ++index) {
    VerifyCase c = MakeVerifyCase(/*seed=*/5, index);
    seen.insert(c.regime);
    EXPECT_TRUE(c.db.Validate().ok())
        << "index " << index << " regime " << c.regime;
    EXPECT_TRUE(c.params.Validate().ok())
        << "index " << index << " regime " << c.regime;
    // The definitional oracle must be applicable to every generated case.
    EXPECT_LE(c.db.ItemUniverseSize(), 20u);
  }
  for (const char* regime : kRegimes) {
    EXPECT_TRUE(seen.count(regime)) << "regime " << regime << " never hit";
  }
}

TEST(CaseGeneratorTest, ExtremeRegimeReachesInt64Boundaries) {
  constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
  constexpr Timestamp kMin = std::numeric_limits<Timestamp>::min();
  bool near_min = false, near_max = false;
  for (uint64_t index = 4; index < 300; index += 6) {  // int64_extreme slots.
    VerifyCase c = MakeVerifyCase(/*seed=*/11, index);
    ASSERT_EQ(c.regime, "int64_extreme");
    if (c.db.empty()) continue;
    if (c.db.start_ts() <= kMin + 200) near_min = true;
    if (c.db.end_ts() >= kMax - 200) near_max = true;
  }
  EXPECT_TRUE(near_min);
  EXPECT_TRUE(near_max);
}

// --- Cross-checks ----------------------------------------------------------

TEST(CrossCheckTest, PaperExampleHasNoDivergences) {
  EXPECT_TRUE(
      CrossCheckCase(PaperExampleDb(), PaperExampleParams()).empty());
}

/// The planted bug of the acceptance scenario: every emitted interval end
/// is off by one (saturating, so extreme-timestamp cases stay defined).
std::vector<RecurringPattern> OffByOneMiner(const TransactionDatabase& db,
                                            const RpParams& params) {
  RpGrowthOptions options;
  options.num_threads = 1;
  std::vector<RecurringPattern> patterns =
      MineRecurringPatterns(db, params, options).patterns;
  for (RecurringPattern& p : patterns) {
    for (PeriodicInterval& iv : p.intervals) {
      if (iv.end < std::numeric_limits<Timestamp>::max()) iv.end += 1;
    }
  }
  return patterns;
}

TEST(CrossCheckTest, DetectsInjectedOffByOne) {
  CrossCheckOptions options;
  options.sequential_miner = OffByOneMiner;
  std::vector<Divergence> divergences =
      CrossCheckCase(PaperExampleDb(), PaperExampleParams(), options);
  ASSERT_FALSE(divergences.empty());
  bool oracle_caught = false;
  for (const Divergence& d : divergences) {
    if (d.check == "oracle") oracle_caught = true;
  }
  EXPECT_TRUE(oracle_caught);
}

TEST(CrossCheckTest, CapsReportedDivergencesPerCheck) {
  CrossCheckOptions options;
  options.sequential_miner = OffByOneMiner;
  options.max_divergences_per_check = 1;
  options.check_parallel = false;
  options.check_streaming = false;
  std::vector<Divergence> divergences =
      CrossCheckCase(PaperExampleDb(), PaperExampleParams(), options);
  // One reported divergence plus the elision summary.
  ASSERT_EQ(divergences.size(), 2u);
  EXPECT_NE(divergences[1].detail.find("elided"), std::string::npos);
}

// --- Shrinker --------------------------------------------------------------

TEST(ShrinkerTest, MinimizesToThePredicateCore) {
  // Failure = "some transaction contains item C and some transaction
  // contains item G". 1-minimal: two single-item transactions (or one
  // transaction if C and G ever co-occur — they do at ts 5 and 12, so the
  // true minimum is one two-item transaction).
  const TransactionDatabase db = PaperExampleDb();
  auto predicate = [](const TransactionDatabase& d, const RpParams&) {
    bool has_c = false, has_g = false;
    for (const Transaction& tr : d.transactions()) {
      for (ItemId item : tr.items) {
        if (item == rpm::testing::C) has_c = true;
        if (item == rpm::testing::G) has_g = true;
      }
    }
    return has_c && has_g;
  };
  ShrinkResult result =
      ShrinkFailingCase(db, PaperExampleParams(), predicate);
  EXPECT_EQ(result.original_transactions, 12u);
  EXPECT_EQ(result.shrunk_transactions, 1u);
  ASSERT_EQ(result.db.size(), 1u);
  EXPECT_EQ(result.db.transaction(0).items,
            (Itemset{rpm::testing::C, rpm::testing::G}));
  EXPECT_TRUE(predicate(result.db, result.params));
  EXPECT_GT(result.predicate_evaluations, 0u);
}

TEST(ShrinkerTest, NonFailingInputReturnsUnchanged) {
  const TransactionDatabase db = PaperExampleDb();
  ShrinkResult result = ShrinkFailingCase(
      db, PaperExampleParams(),
      [](const TransactionDatabase&, const RpParams&) { return false; });
  EXPECT_EQ(result.shrunk_transactions, result.original_transactions);
  EXPECT_EQ(result.db.size(), db.size());
}

TEST(ShrinkerTest, RenderFixtureIsPasteable) {
  RpParams params;
  params.period = 2;
  params.min_ps = 3;
  params.min_rec = 2;
  TransactionDatabase db = MakeDatabase({{1, {0, 2}}, {3, {0}}});
  std::string fixture = RenderFixture(db, params);
  EXPECT_EQ(fixture,
            "RpParams params;\n"
            "params.period = 2;\n"
            "params.min_ps = 3;\n"
            "params.min_rec = 2;\n"
            "TransactionDatabase db = MakeDatabase({\n"
            "    {1, {0, 2}},\n"
            "    {3, {0}},\n"
            "});\n");
}

// --- Harness ---------------------------------------------------------------

TEST(VerifyHarnessTest, CleanRunReportsOk) {
  VerifyOptions options;
  options.cases = 60;
  options.seed = 7;
  VerifyReport report = RunVerification(options);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases_run, 60u);
  EXPECT_EQ(report.oracle_checks, 60u);
  EXPECT_EQ(report.parallel_checks, 60u);
  EXPECT_GT(report.streaming_checks, 0u);   // Most cases are exact-model.
  EXPECT_LT(report.streaming_checks, 61u);  // Tolerant cases skip it.
  std::string text = FormatReport(report, options);
  EXPECT_NE(text.find("result: OK"), std::string::npos);
}

TEST(VerifyHarnessTest, InjectedOffByOneIsCaughtAndShrunkSmall) {
  VerifyOptions options;
  options.cases = 24;
  options.seed = 7;
  options.max_failures = 1;
  options.cross_check.sequential_miner = OffByOneMiner;
  // The oracle alone pins the bug; skipping the other checks keeps the
  // shrinker's predicate re-evaluations cheap.
  options.cross_check.check_parallel = false;
  options.cross_check.check_streaming = false;
  VerifyReport report = RunVerification(options);
  ASSERT_FALSE(report.ok());
  const CaseFailure& failure = report.failures.front();
  EXPECT_FALSE(failure.divergences.empty());
  // Acceptance bar: the planted off-by-one minimizes to a handful of
  // transactions (any database emitting one pattern reproduces it).
  EXPECT_LE(failure.shrunk_transactions, 6u);
  EXPECT_LT(failure.shrunk_transactions, failure.original_transactions);
  EXPECT_NE(failure.fixture.find("MakeDatabase"), std::string::npos);
  std::string text = FormatReport(report, options);
  EXPECT_NE(text.find("divergent case"), std::string::npos);
  EXPECT_NE(text.find("reproduce: MakeVerifyCase(7,"), std::string::npos);
}

TEST(VerifyHarnessTest, ReportIsDeterministic) {
  VerifyOptions options;
  options.cases = 30;
  options.seed = 1234;
  VerifyReport a = RunVerification(options);
  VerifyReport b = RunVerification(options);
  EXPECT_EQ(FormatReport(a, options), FormatReport(b, options));
}

}  // namespace
}  // namespace rpm::verify
