#include "rpm/common/zipf.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(ZipfWeightsTest, FirstRankIsOne) {
  std::vector<double> w = ZipfWeights(5, 1.0);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[4], 0.2);
}

TEST(ZipfWeightsTest, ExponentZeroIsUniform) {
  std::vector<double> w = ZipfWeights(4, 0.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(ZipfWeightsTest, WeightsDecreaseMonotonically) {
  std::vector<double> w = ZipfWeights(100, 1.3);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler sampler(50, 1.1);
  double total = 0.0;
  for (size_t r = 0; r < 50; ++r) total += sampler.ProbabilityOf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSamplerTest, SampleFrequenciesMatchPmf) {
  ZipfSampler sampler(10, 1.0);
  Rng rng(77);
  std::vector<int> counts(10, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.Sample(&rng)];
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kN),
                sampler.ProbabilityOf(r), 0.01)
        << "rank " << r;
  }
}

TEST(ZipfSamplerTest, HeavySkewConcentratesOnHead) {
  ZipfSampler sampler(1000, 2.0);
  Rng rng(78);
  int head = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) head += sampler.Sample(&rng) < 10 ? 1 : 0;
  EXPECT_GT(head, kN * 8 / 10);
}

TEST(ZipfSamplerTest, SizeReported) {
  ZipfSampler sampler(17, 1.0);
  EXPECT_EQ(sampler.size(), 17u);
}

TEST(ZipfSamplerDeathTest, RejectsZeroItems) {
  EXPECT_DEATH(ZipfWeights(0, 1.0), "Check failed");
}

TEST(ZipfSamplerDeathTest, RejectsNegativeExponent) {
  EXPECT_DEATH(ZipfWeights(5, -0.5), "Check failed");
}

}  // namespace
}  // namespace rpm
