// Resource-governance semantics across all three backends (DESIGN.md §7):
// deadlines, cooperative cancellation, memory budgets and the max-patterns
// cap must stop a query within one checkpoint interval, report the right
// status, and — for the soft cap — produce the IDENTICAL deterministic
// committed prefix on every backend and every run.

#include <chrono>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "rpm/core/cancellation.h"
#include "rpm/engine/session.h"
#include "rpm/verify/fault_injection.h"
#include "test_util.h"

namespace rpm {
namespace {

using engine::BackendKind;
using engine::DatasetSnapshot;
using engine::ExecOptions;
using engine::Query;
using engine::QueryResult;
using engine::QuerySession;

constexpr BackendKind kAllBackends[] = {
    BackendKind::kSequential, BackendKind::kParallel,
    BackendKind::kStreaming};

ExecOptions ExecFor(BackendKind backend) {
  ExecOptions exec;
  if (backend == BackendKind::kParallel) exec.threads = 4;
  return exec;
}

/// A database big enough that governed runs have checkpoints to hit, small
/// enough that ungoverned runs are instant.
TransactionDatabase GovernanceDb() {
  testing::RandomDbSpec spec;
  spec.num_items = 10;
  spec.num_timestamps = 400;
  spec.item_base_prob = 0.4;
  spec.num_bursts = 6;
  return testing::MakeRandomDb(spec, /*seed=*/17);
}

RpParams GovernanceParams() {
  RpParams params;
  params.period = 3;
  params.min_ps = 2;
  params.min_rec = 2;
  return params;
}

QueryResult RunOrDie(QuerySession& session, const Query& query,
                     BackendKind backend) {
  Result<QueryResult> run = session.Run(query, backend, ExecFor(backend));
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).ValueOrDie();
}

bool ContainsPattern(const std::vector<RecurringPattern>& set,
                     const RecurringPattern& pattern) {
  for (const RecurringPattern& candidate : set) {
    if (candidate == pattern) return true;
  }
  return false;
}

TEST(GovernanceTest, UnlimitedQueryReportsOkAndNoTruncation) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  QuerySession session(snapshot);
  Query query;
  query.params = GovernanceParams();
  for (BackendKind backend : kAllBackends) {
    QueryResult result = RunOrDie(session, query, backend);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.truncated);
    // No budget was created, so the accounting stays zero.
    EXPECT_EQ(result.resource_usage.checkpoints, 0u);
    EXPECT_EQ(result.resource_usage.nodes_built, 0u);
  }
}

TEST(GovernanceTest, PreCancelledTokenStopsEveryBackend) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  CancellationToken token;
  token.Cancel();
  Query query;
  query.params = GovernanceParams();
  query.cancel = &token;
  for (BackendKind backend : kAllBackends) {
    QuerySession session(snapshot);
    QueryResult result = RunOrDie(session, query, backend);
    EXPECT_TRUE(result.status.IsCancelled())
        << engine::BackendName(backend) << ": " << result.status.ToString();
    EXPECT_TRUE(result.truncated);
    EXPECT_TRUE(result.patterns.empty());
  }
}

TEST(GovernanceTest, CancellationAfterCompletionLeavesResultIntact) {
  // Cancelling the token after Run returns must not affect the result —
  // the budget's lifetime is the query execution.
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  QuerySession session(snapshot);
  CancellationToken token;
  Query query;
  query.params = GovernanceParams();
  query.cancel = &token;
  QueryResult result = RunOrDie(session, query, BackendKind::kSequential);
  token.Cancel();
  EXPECT_TRUE(result.status.ok());
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.patterns.size(), 0u);
  // The governed run kept accounting even though nothing tripped.
  EXPECT_GT(result.resource_usage.nodes_built, 0u);
  EXPECT_GT(result.resource_usage.tracked_bytes_peak, 0u);
}

TEST(GovernanceTest, DeadlineViaClockFaultStopsEveryBackend) {
  // The clock.skip failpoint makes the FIRST deadline probe behave as if
  // the wall clock jumped past the deadline — a deterministic stand-in
  // for a real timeout (the 60s limit is never reached naturally).
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  Query ungoverned;
  ungoverned.params = GovernanceParams();
  QuerySession reference_session(snapshot);
  const QueryResult full =
      RunOrDie(reference_session, ungoverned, BackendKind::kSequential);

  Query query = ungoverned;
  query.limits.timeout_ms = 60 * 1000;
  for (BackendKind backend : kAllBackends) {
    QuerySession session(snapshot);
    FaultInjectionOptions inject;
    inject.site_filter = "clock.skip";
    inject.fire_on_nth = 1;
    ScopedFaultInjection armed(inject);
    QueryResult result = RunOrDie(session, query, backend);
    EXPECT_TRUE(result.status.IsDeadlineExceeded())
        << engine::BackendName(backend) << ": " << result.status.ToString();
    EXPECT_TRUE(result.truncated);
    // Graceful degradation: whatever was committed is real — a subset of
    // the complete result, never fabricated patterns.
    for (const RecurringPattern& p : result.patterns) {
      EXPECT_TRUE(ContainsPattern(full.patterns, p)) << p.ToString();
    }
  }
}

TEST(GovernanceTest, WallClockDeadlineStopsPromptly) {
  // Real-clock variant on a heavier database: a 30ms budget must stop the
  // query far below the ungoverned runtime. The assertion bound is
  // deliberately loose (one checkpoint interval plus scheduling noise)
  // to stay robust on slow CI machines.
  testing::RandomDbSpec spec;
  spec.num_items = 14;
  spec.num_timestamps = 3000;
  spec.item_base_prob = 0.45;
  spec.num_bursts = 12;
  auto snapshot =
      DatasetSnapshot::Create(testing::MakeRandomDb(spec, /*seed=*/23));
  Query query;
  query.params = GovernanceParams();
  query.limits.timeout_ms = 30;
  QuerySession session(snapshot);
  const auto start = std::chrono::steady_clock::now();
  QueryResult result = RunOrDie(session, query, BackendKind::kSequential);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  if (result.status.ok()) {
    // The machine finished the whole mine inside the budget; nothing to
    // assert about truncation.
    EXPECT_FALSE(result.truncated);
  } else {
    EXPECT_TRUE(result.status.IsDeadlineExceeded())
        << result.status.ToString();
    EXPECT_TRUE(result.truncated);
    EXPECT_LT(elapsed.count(), 5000) << "query ran far past its deadline";
  }
}

TEST(GovernanceTest, MemoryBudgetTripsResourceExhausted) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  Query ungoverned;
  ungoverned.params = GovernanceParams();
  QuerySession reference_session(snapshot);
  const QueryResult full =
      RunOrDie(reference_session, ungoverned, BackendKind::kSequential);

  Query query = ungoverned;
  query.limits.memory_budget_bytes = 1;  // Trips on the first tree bytes.
  for (BackendKind backend : kAllBackends) {
    QuerySession session(snapshot);
    QueryResult result = RunOrDie(session, query, backend);
    EXPECT_TRUE(result.status.IsResourceExhausted())
        << engine::BackendName(backend) << ": " << result.status.ToString();
    EXPECT_TRUE(result.truncated);
    for (const RecurringPattern& p : result.patterns) {
      EXPECT_TRUE(ContainsPattern(full.patterns, p)) << p.ToString();
    }
    EXPECT_GT(result.resource_usage.tracked_bytes_peak, 0u);
  }
}

TEST(GovernanceTest, MaxPatternsPrefixIsIdenticalAcrossBackendsAndRuns) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  Query ungoverned;
  ungoverned.params = GovernanceParams();
  QuerySession reference_session(snapshot);
  const QueryResult full =
      RunOrDie(reference_session, ungoverned, BackendKind::kSequential);
  ASSERT_GT(full.patterns.size(), 8u)
      << "fixture too small to exercise the cap";

  const std::vector<uint64_t> caps = {1, 3, full.patterns.size() / 2,
                                      full.patterns.size() - 1};
  for (uint64_t cap : caps) {
    Query query = ungoverned;
    query.limits.max_patterns = cap;
    std::vector<RecurringPattern> reference;
    bool have_reference = false;
    for (BackendKind backend : kAllBackends) {
      QuerySession session(snapshot);
      QueryResult result = RunOrDie(session, query, backend);
      // Soft cap: OK status, truncated result, committed count <= cap.
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_TRUE(result.truncated);
      EXPECT_LE(result.patterns.size(), cap);
      EXPECT_EQ(result.resource_usage.patterns_emitted,
                result.patterns.size());
      for (const RecurringPattern& p : result.patterns) {
        EXPECT_TRUE(ContainsPattern(full.patterns, p)) << p.ToString();
      }
      if (!have_reference) {
        reference = result.patterns;
        have_reference = true;
      } else {
        EXPECT_EQ(result.patterns, reference)
            << engine::BackendName(backend)
            << " committed a different prefix at cap " << cap;
      }
      // Re-run on a fresh session: the cut is arithmetic, not racy.
      QuerySession repeat_session(snapshot);
      QueryResult repeat = RunOrDie(repeat_session, query, backend);
      EXPECT_EQ(repeat.patterns, result.patterns)
          << engine::BackendName(backend) << " is nondeterministic at cap "
          << cap;
    }
  }
}

TEST(GovernanceTest, MaxPatternsAboveTotalDoesNotTruncate) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  Query ungoverned;
  ungoverned.params = GovernanceParams();
  QuerySession reference_session(snapshot);
  const QueryResult full =
      RunOrDie(reference_session, ungoverned, BackendKind::kSequential);

  Query query = ungoverned;
  query.limits.max_patterns = full.patterns.size() + 100;
  for (BackendKind backend : kAllBackends) {
    QuerySession session(snapshot);
    QueryResult result = RunOrDie(session, query, backend);
    EXPECT_TRUE(result.status.ok());
    EXPECT_FALSE(result.truncated);
    EXPECT_EQ(result.patterns, full.patterns);
  }
}

TEST(GovernanceTest, AbortedBuildIsNeverCachedByThePlanner) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  QuerySession session(snapshot);
  Query strangled;
  strangled.params = GovernanceParams();
  strangled.limits.memory_budget_bytes = 1;
  QueryResult failed = RunOrDie(session, strangled, BackendKind::kSequential);
  ASSERT_TRUE(failed.status.IsResourceExhausted());
  // The aborted build must not count as a session tree build...
  EXPECT_EQ(session.tree_builds(), 0u);

  // ...and the SAME session must then serve the full result from a fresh,
  // complete build — not the poisoned partial one.
  Query plain;
  plain.params = GovernanceParams();
  QueryResult ok = RunOrDie(session, plain, BackendKind::kSequential);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_FALSE(ok.truncated);
  EXPECT_EQ(session.tree_builds(), 1u);

  QuerySession fresh_session(snapshot);
  QueryResult fresh = RunOrDie(fresh_session, plain, BackendKind::kSequential);
  EXPECT_EQ(ok.patterns, fresh.patterns);
}

TEST(GovernanceTest, MaxPatternsIncompatibleWithTopK) {
  Query query;
  query.params = GovernanceParams();
  query.top_k = 5;
  query.limits.max_patterns = 10;
  EXPECT_FALSE(query.Validate().ok());
}

TEST(GovernanceTest, GovernedRunPopulatesUsageCounters) {
  auto snapshot = DatasetSnapshot::Create(GovernanceDb());
  QuerySession session(snapshot);
  Query query;
  query.params = GovernanceParams();
  query.limits.timeout_ms = 60 * 1000;  // Generous: completes well within.
  QueryResult result = RunOrDie(session, query, BackendKind::kSequential);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.resource_usage.nodes_built, 0u);
  EXPECT_GT(result.resource_usage.tracked_bytes_peak, 0u);
  EXPECT_GT(result.resource_usage.checkpoints, 0u);
  EXPECT_EQ(result.resource_usage.patterns_emitted, result.patterns.size());
}

}  // namespace
}  // namespace rpm
