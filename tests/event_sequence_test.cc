#include "rpm/timeseries/event_sequence.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;

/// The raw event stream of Figure 1 for items 'a' and 'b'.
EventSequence PaperSequenceAB() {
  EventSequence seq;
  for (Timestamp ts : {1, 2, 3, 4, 7, 11, 12, 14}) seq.Add(A, ts);
  for (Timestamp ts : {1, 3, 4, 7, 11, 12, 14}) seq.Add(B, ts);
  seq.Normalize();
  return seq;
}

TEST(EventSequenceTest, Example1PointSequenceOfA) {
  EventSequence seq = PaperSequenceAB();
  // Example 1: point sequence of 'a' is {1,2,3,4,7,11,12,14}.
  EXPECT_EQ(seq.PointSequenceOf(A),
            (TimestampList{1, 2, 3, 4, 7, 11, 12, 14}));
}

TEST(EventSequenceTest, Example1PointSequenceOfB) {
  EventSequence seq = PaperSequenceAB();
  // Example 1: point sequence of 'b' is {1,3,4,7,11,12,14}.
  EXPECT_EQ(seq.PointSequenceOf(B), (TimestampList{1, 3, 4, 7, 11, 12, 14}));
}

TEST(EventSequenceTest, PointSequenceOfAbsentItemIsEmpty) {
  EventSequence seq = PaperSequenceAB();
  EXPECT_TRUE(seq.PointSequenceOf(99).empty());
}

TEST(EventSequenceTest, PointSequenceDeduplicatesSameTimestamp) {
  EventSequence seq;
  seq.Add(A, 5);
  seq.Add(A, 5);
  seq.Add(A, 6);
  seq.Normalize();
  EXPECT_EQ(seq.PointSequenceOf(A), (TimestampList{5, 6}));
}

TEST(EventSequenceTest, ConstructorSortsEvents) {
  EventSequence seq({{A, 9}, {B, 2}, {A, 5}});
  ASSERT_TRUE(seq.Validate().ok());
  EXPECT_EQ(seq.events()[0].ts, 2);
  EXPECT_EQ(seq.events()[2].ts, 9);
}

TEST(EventSequenceTest, ValidateDetectsDisorder) {
  EventSequence seq;
  seq.Add(A, 9);
  seq.Add(B, 2);
  // No Normalize().
  EXPECT_TRUE(seq.Validate().IsCorruption());
  seq.Normalize();
  EXPECT_TRUE(seq.Validate().ok());
}

TEST(EventSequenceTest, ValidateDetectsInvalidItem) {
  EventSequence seq;
  seq.Add(kInvalidItem, 1);
  EXPECT_TRUE(seq.Validate().IsCorruption());
}

TEST(EventSequenceTest, ItemUniverseSize) {
  EventSequence empty;
  EXPECT_EQ(empty.ItemUniverseSize(), 0u);
  EventSequence seq({{3, 1}, {7, 2}});
  EXPECT_EQ(seq.ItemUniverseSize(), 8u);
}

TEST(EventSequenceTest, SizeAndEmpty) {
  EventSequence seq;
  EXPECT_TRUE(seq.empty());
  seq.Add(A, 1);
  EXPECT_EQ(seq.size(), 1u);
  EXPECT_FALSE(seq.empty());
}

}  // namespace
}  // namespace rpm
