// Randomized equivalence and invariant tests: RP-growth against the
// definitional oracle and the vertical miner, over a grid of seeds and
// thresholds (parameterised gtest).

#include <ostream>
#include <sstream>

#include <gtest/gtest.h>

#include "rpm/core/brute_force.h"
#include "rpm/core/measures.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_list.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::RandomDbSpec;

struct PropertyCase {
  uint64_t seed;
  Timestamp per;
  uint64_t min_ps;
  uint64_t min_rec;

  friend std::ostream& operator<<(std::ostream& os, const PropertyCase& c) {
    return os << "seed" << c.seed << "_per" << c.per << "_ps" << c.min_ps
              << "_rec" << c.min_rec;
  }
};

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  const struct {
    Timestamp per;
    uint64_t ps;
    uint64_t rec;
  } grids[] = {
      {2, 2, 2}, {3, 3, 1}, {1, 2, 3}, {5, 4, 2}, {2, 1, 1}, {4, 5, 2},
  };
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (const auto& g : grids) {
      cases.push_back({seed, g.per, g.ps, g.rec});
    }
  }
  return cases;
}

class MinerEquivalenceTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  TransactionDatabase MakeDb() const {
    RandomDbSpec spec;
    spec.num_items = 7;
    spec.num_timestamps = 70;
    spec.max_gap = 3;
    return MakeRandomDb(spec, GetParam().seed);
  }

  RpParams Params() const {
    RpParams p;
    p.period = GetParam().per;
    p.min_ps = GetParam().min_ps;
    p.min_rec = GetParam().min_rec;
    return p;
  }
};

TEST_P(MinerEquivalenceTest, RpGrowthMatchesDefinitionalOracle) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  std::vector<RecurringPattern> oracle = MineByDefinition(db, params);
  RpGrowthResult growth = MineRecurringPatterns(db, params);
  EXPECT_TRUE(SamePatternSets(growth.patterns, oracle))
      << "oracle " << oracle.size() << " patterns, rp-growth "
      << growth.patterns.size();
}

TEST_P(MinerEquivalenceTest, VerticalMinerMatchesOracle) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  EXPECT_TRUE(SamePatternSets(MineVertical(db, params).patterns,
                              MineByDefinition(db, params)));
}

TEST_P(MinerEquivalenceTest, ErecPruningLosesNothing) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  RpGrowthOptions naive;
  naive.pruning = PruningMode::kSupportOnly;
  EXPECT_TRUE(SamePatternSets(
      MineRecurringPatterns(db, params).patterns,
      MineRecurringPatterns(db, params, naive).patterns));
}

TEST_P(MinerEquivalenceTest, EveryEmittedPatternReverifies) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  for (const RecurringPattern& p :
       MineRecurringPatterns(db, params).patterns) {
    EXPECT_EQ(rpm::testing::VerifyPatternAgainstDb(db, params, p), "")
        << p.ToString();
  }
}

TEST_P(MinerEquivalenceTest, MinedItemsAreCandidates) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  RpList list = BuildRpList(db, params);
  for (const RecurringPattern& p :
       MineRecurringPatterns(db, params).patterns) {
    for (ItemId item : p.items) {
      EXPECT_TRUE(list.IsCandidate(item)) << "item " << item;
    }
  }
}

TEST_P(MinerEquivalenceTest, ErecBoundsRecurrenceForAllPairs) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  const uint32_t n = db.ItemUniverseSize();
  for (ItemId i = 0; i < n; ++i) {
    TimestampList ts_i = db.TimestampsOf({i});
    EXPECT_GE(ComputeErec(ts_i, params.period, params.min_ps),
              ComputeRecurrence(ts_i, params.period, params.min_ps));
    for (ItemId j = i + 1; j < n; ++j) {
      TimestampList ts_ij = db.TimestampsOf({i, j});
      // Property 2 (anti-monotone bound) and Property 1 together.
      EXPECT_GE(ComputeErec(ts_i, params.period, params.min_ps),
                ComputeErec(ts_ij, params.period, params.min_ps));
      EXPECT_GE(ComputeErec(ts_ij, params.period, params.min_ps),
                ComputeRecurrence(ts_ij, params.period, params.min_ps));
    }
  }
}

TEST_P(MinerEquivalenceTest, TolerantPatternsReverify) {
  TransactionDatabase db = MakeDb();
  RpParams params = Params();
  params.max_gap_violations = 1;
  for (const RecurringPattern& p :
       MineRecurringPatterns(db, params).patterns) {
    TimestampList ts = db.TimestampsOf(p.items);
    EXPECT_EQ(ts.size(), p.support);
    EXPECT_EQ(FindInterestingIntervals(ts, params), p.intervals)
        << p.ToString();
  }
}

TEST_P(MinerEquivalenceTest, TolerantMiningIsCompleteOverLattice) {
  // Oracle for the noise-tolerant extension: exhaustive subsets checked
  // with the tolerant interval finder, across violation budgets.
  TransactionDatabase db = MakeDb();
  for (uint32_t budget : {1u, 2u, 3u}) {
    RpParams params = Params();
    params.max_gap_violations = budget;

    std::vector<RecurringPattern> oracle;
    const uint32_t n = db.ItemUniverseSize();
    ASSERT_LE(n, 16u);
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      Itemset pattern;
      for (uint32_t bit = 0; bit < n; ++bit) {
        if (mask & (1u << bit)) pattern.push_back(bit);
      }
      TimestampList ts = db.TimestampsOf(pattern);
      if (ts.empty()) continue;
      auto ipi = FindInterestingIntervals(ts, params);
      if (ipi.size() >= params.min_rec) {
        oracle.push_back({pattern, ts.size(), std::move(ipi)});
      }
    }
    SortPatternsCanonically(&oracle);
    RpGrowthResult growth = MineRecurringPatterns(db, params);
    EXPECT_TRUE(SamePatternSets(growth.patterns, oracle))
        << "budget " << budget << ": oracle " << oracle.size()
        << ", mined " << growth.patterns.size();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, MinerEquivalenceTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

// Sparser databases (more empty timestamps, longer gaps) — a different
// regime for interval splitting.
class SparseDbTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseDbTest, RpGrowthMatchesOracleOnSparseData) {
  RandomDbSpec spec;
  spec.num_items = 5;
  spec.num_timestamps = 40;
  spec.max_gap = 9;
  spec.item_base_prob = 0.12;
  spec.num_bursts = 2;
  TransactionDatabase db = MakeRandomDb(spec, GetParam());
  for (Timestamp per : {2, 6, 12}) {
    RpParams params;
    params.period = per;
    params.min_ps = 2;
    params.min_rec = 2;
    EXPECT_TRUE(SamePatternSets(MineRecurringPatterns(db, params).patterns,
                                MineByDefinition(db, params)))
        << "per=" << per;
  }
}

TEST_P(SparseDbTest, DenseBurstyDbMatchesOracle) {
  RandomDbSpec spec;
  spec.num_items = 6;
  spec.num_timestamps = 90;
  spec.max_gap = 2;
  spec.item_base_prob = 0.45;
  spec.num_bursts = 4;
  TransactionDatabase db = MakeRandomDb(spec, GetParam() + 1000);
  RpParams params;
  params.period = 3;
  params.min_ps = 4;
  params.min_rec = 2;
  EXPECT_TRUE(SamePatternSets(MineRecurringPatterns(db, params).patterns,
                              MineByDefinition(db, params)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDbTest,
                         ::testing::Range<uint64_t>(100, 112));

}  // namespace
}  // namespace rpm
