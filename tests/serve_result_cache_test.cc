// serve/result_cache.h single-flight semantics: one leader per key,
// followers coalesce onto the leader's flight, failed/uncacheable flights
// never poison the completed cache, and the FIFO bound holds.

#include "rpm/serve/result_cache.h"

#include <memory>
#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace rpm::serve {
namespace {

std::shared_ptr<const std::string> Payload(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(ResultCache, LeaderPublishesFollowersAndCacheSee) {
  ResultCache cache(/*max_entries=*/8);

  ResultCache::JoinOutcome leader = cache.Join("k");
  ASSERT_TRUE(leader.leader);
  ASSERT_EQ(leader.cached, nullptr);

  // A concurrent arrival for the same key coalesces instead of leading.
  ResultCache::JoinOutcome follower = cache.Join("k");
  EXPECT_FALSE(follower.leader);
  EXPECT_EQ(follower.cached, nullptr);
  ASSERT_NE(follower.flight, nullptr);

  std::shared_ptr<const std::string> seen;
  std::thread waiter([&] { seen = cache.Wait(follower.flight); });
  cache.Publish("k", leader.flight, Payload("result"), /*cacheable=*/true);
  waiter.join();
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(*seen, "result");

  // Later arrivals hit the completed cache directly.
  ResultCache::JoinOutcome hit = cache.Join("k");
  ASSERT_NE(hit.cached, nullptr);
  EXPECT_EQ(*hit.cached, "result");
  EXPECT_FALSE(hit.leader);

  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
}

TEST(ResultCache, FailedLeaderReleasesFollowersWithNull) {
  ResultCache cache(/*max_entries=*/8);
  ResultCache::JoinOutcome leader = cache.Join("k");
  ASSERT_TRUE(leader.leader);
  ResultCache::JoinOutcome follower = cache.Join("k");
  ASSERT_FALSE(follower.leader);

  std::shared_ptr<const std::string> seen = Payload("sentinel");
  std::thread waiter([&] { seen = cache.Wait(follower.flight); });
  // Leader failed: publish "no result". Followers must wake with null
  // (compute independently) — an error is never fanned out as a result.
  cache.Publish("k", leader.flight, nullptr, /*cacheable=*/false);
  waiter.join();
  EXPECT_EQ(seen, nullptr);
  EXPECT_EQ(cache.size(), 0u);

  // The key is joinable again; the failure left no residue.
  ResultCache::JoinOutcome retry = cache.Join("k");
  EXPECT_TRUE(retry.leader);
  cache.Publish("k", retry.flight, Payload("ok"), /*cacheable=*/true);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, UncacheableResultCompletesFlightWithoutCaching) {
  ResultCache cache(/*max_entries=*/8);
  ResultCache::JoinOutcome leader = cache.Join("k");
  ASSERT_TRUE(leader.leader);
  // A truncated result reflects the leader's clamped limits, not the
  // key's answer: the flight completes with null so followers recompute
  // under their OWN limits, and nothing is stored.
  cache.Publish("k", leader.flight, Payload("partial"),
                /*cacheable=*/false);
  EXPECT_EQ(cache.Wait(leader.flight), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.Join("k").leader);
}

TEST(ResultCache, FlightLeasePublishesOnEveryExitPath) {
  ResultCache cache(/*max_entries=*/8);
  ResultCache::JoinOutcome leader = cache.Join("k");
  ASSERT_TRUE(leader.leader);
  {
    // Early return / exception path: the lease dies unpublished and must
    // complete the flight with "no result" so followers are not stranded.
    FlightLease lease(&cache, "k", leader.flight);
  }
  EXPECT_EQ(cache.Wait(leader.flight), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, FifoEvictionHonorsBound) {
  ResultCache cache(/*max_entries=*/2);
  for (const char* key : {"a", "b", "c"}) {
    ResultCache::JoinOutcome j = cache.Join(key);
    ASSERT_TRUE(j.leader);
    cache.Publish(key, j.flight, Payload(key), /*cacheable=*/true);
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  // Oldest key evicted; newest two still resident.
  EXPECT_TRUE(cache.Join("a").leader);
  EXPECT_NE(cache.Join("b").cached, nullptr);
  EXPECT_NE(cache.Join("c").cached, nullptr);
}

TEST(ResultCache, PublishIsIdempotent) {
  ResultCache cache(/*max_entries=*/8);
  ResultCache::JoinOutcome leader = cache.Join("k");
  ASSERT_TRUE(leader.leader);
  cache.Publish("k", leader.flight, Payload("first"), /*cacheable=*/true);
  // A second publish (e.g. explicit publish followed by lease destructor)
  // must not overwrite the completed value or double-count.
  cache.Publish("k", leader.flight, nullptr, /*cacheable=*/false);
  ResultCache::JoinOutcome hit = cache.Join("k");
  ASSERT_NE(hit.cached, nullptr);
  EXPECT_EQ(*hit.cached, "first");
}

}  // namespace
}  // namespace rpm::serve
