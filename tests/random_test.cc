#include "rpm/common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
  }
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t s = 0;
  uint64_t a = SplitMix64(&s);
  uint64_t b = SplitMix64(&s);
  EXPECT_NE(a, b);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedUint64StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedUint64CoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInt64RespectsInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextInt64DegenerateRange) {
  Rng rng(3);
  EXPECT_EQ(rng.NextInt64(42, 42), 42);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsAboutHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(5);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(9);
  EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, PoissonSmallMeanMatches) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextPoisson(3.5);
  EXPECT_NEAR(sum / kN, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextPoisson(200.0);
  EXPECT_NEAR(sum / kN, 200.0, 2.0);
}

TEST(RngTest, ExponentialMeanIsOneOverLambda) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.1);
}

TEST(RngTest, GeometricMean) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.NextGeometric(0.25));
  // Mean failures before success = (1-p)/p = 3.
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(RngTest, GeometricPOneIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.NextGeometric(1.0), 0u);
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.NextWeighted(w), 1u);
}

TEST(RngTest, WeightedProportions) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0};
  int second = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) second += rng.NextWeighted(w) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(second) / kN, 0.75, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // Astronomically unlikely to be identity.
}

TEST(RngTest, SampleWithoutReplacementBasics) {
  Rng rng(31);
  std::vector<size_t> s = rng.SampleWithoutReplacement(10, 4);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (size_t x : s) EXPECT_LT(x, 10u);
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  std::vector<size_t> s = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(s, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(DiscreteSamplerTest, SingleBucket) {
  Rng rng(37);
  DiscreteSampler sampler({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(37);
  DiscreteSampler sampler({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.Sample(&rng), 1u);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  Rng rng(41);
  DiscreteSampler sampler({1.0, 2.0, 7.0});
  std::vector<int> counts(3, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.01);
}

TEST(DiscreteSamplerDeathTest, RejectsEmptyAndNegative) {
  EXPECT_DEATH(DiscreteSampler({}), "Check failed");
  EXPECT_DEATH(DiscreteSampler({-1.0, 2.0}), "Check failed");
  EXPECT_DEATH(DiscreteSampler({0.0, 0.0}), "Check failed");
}

}  // namespace
}  // namespace rpm
