#include "rpm/common/flags.h"

#include <gtest/gtest.h>

namespace rpm {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(FlagParserTest, DefaultsAppliedImmediately) {
  FlagParser parser("p", "d");
  std::string s;
  int64_t i = 0;
  parser.AddString("name", "fallback", "h", &s);
  parser.AddInt64("num", 7, "h", &i);
  EXPECT_EQ(s, "fallback");
  EXPECT_EQ(i, 7);
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser("p", "d");
  std::string s;
  parser.AddString("name", "", "h", &s);
  auto argv = Argv({"prog", "--name=value"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(s, "value");
}

TEST(FlagParserTest, SpaceSyntax) {
  FlagParser parser("p", "d");
  int64_t n = 0;
  parser.AddInt64("per", 0, "h", &n);
  auto argv = Argv({"prog", "--per", "360"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(n, 360);
}

TEST(FlagParserTest, BoolVariants) {
  FlagParser parser("p", "d");
  bool a = false, b = true, c = false;
  parser.AddBool("a", false, "h", &a);
  parser.AddBool("b", true, "h", &b);
  parser.AddBool("c", false, "h", &c);
  auto argv = Argv({"prog", "--a", "--b=false", "--c=1"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(FlagParserTest, BoolRejectsJunk) {
  FlagParser parser("p", "d");
  bool a = false;
  parser.AddBool("a", false, "h", &a);
  auto argv = Argv({"prog", "--a=maybe"});
  EXPECT_FALSE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser("p", "d");
  auto argv = Argv({"prog", "--mystery=1"});
  Status s = parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown flag"), std::string::npos);
}

TEST(FlagParserTest, MissingValueIsError) {
  FlagParser parser("p", "d");
  int64_t n = 0;
  parser.AddInt64("per", 0, "h", &n);
  auto argv = Argv({"prog", "--per"});
  EXPECT_FALSE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, MalformedNumberIsError) {
  FlagParser parser("p", "d");
  int64_t n = 0;
  parser.AddInt64("per", 0, "h", &n);
  auto argv = Argv({"prog", "--per=abc"});
  EXPECT_FALSE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, Uint64RejectsNegative) {
  FlagParser parser("p", "d");
  uint64_t n = 0;
  parser.AddUint64("k", 0, "h", &n);
  auto argv = Argv({"prog", "--k=-3"});
  EXPECT_FALSE(
      parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, DoubleParsing) {
  FlagParser parser("p", "d");
  double d = 0.0;
  parser.AddDouble("scale", 1.0, "h", &d);
  auto argv = Argv({"prog", "--scale=0.25"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_DOUBLE_EQ(d, 0.25);
}

TEST(FlagParserTest, PositionalArguments) {
  FlagParser parser("p", "d");
  std::string s;
  parser.AddString("x", "", "h", &s);
  auto argv = Argv({"prog", "first", "--x=1", "second"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, DoubleDashStopsFlagParsing) {
  FlagParser parser("p", "d");
  std::string s;
  parser.AddString("x", "", "h", &s);
  auto argv = Argv({"prog", "--", "--x=1"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(s, "");
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"--x=1"}));
}

TEST(FlagParserTest, HelpListsFlags) {
  FlagParser parser("rpminer mine", "mines stuff");
  int64_t per = 360;
  parser.AddInt64("per", 360, "period threshold", &per);
  std::string help = parser.Help();
  EXPECT_NE(help.find("rpminer mine"), std::string::npos);
  EXPECT_NE(help.find("--per"), std::string::npos);
  EXPECT_NE(help.find("period threshold"), std::string::npos);
  EXPECT_NE(help.find("default 360"), std::string::npos);
}

}  // namespace
}  // namespace rpm
