// Regression tests for the shared mining-threshold flag set. Every
// subcommand (mine, verify --fixed-params, compare, the --queries lines)
// parses thresholds through MiningQueryFlags, so the defaults and the
// minPS resolution rule pinned here are THE CLI contract — change them
// and every entry point changes together.

#include "rpm/tools/mining_flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rpm/common/flags.h"
#include "rpm/engine/executor.h"

namespace rpm::tools {
namespace {

Status ParseTokens(FlagParser* parser,
                   const std::vector<std::string>& flag_tokens) {
  std::vector<const char*> argv = {"test"};
  for (const std::string& token : flag_tokens) argv.push_back(token.c_str());
  return parser->Parse(static_cast<int>(argv.size()), argv.data());
}

engine::Query ParseOrDie(const std::vector<std::string>& flag_tokens,
                         size_t db_size) {
  MiningQueryFlags flags;
  FlagParser parser("test", "mining flag test");
  flags.Register(&parser);
  Status parsed = ParseTokens(&parser, flag_tokens);
  EXPECT_TRUE(parsed.ok()) << parsed.ToString();
  Result<engine::Query> query = flags.ToQuery(db_size);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return *query;
}

TEST(MiningFlagsTest, PinnedDefaults) {
  MiningQueryFlags flags;
  EXPECT_EQ(flags.per, 1);
  EXPECT_EQ(flags.min_ps, 0u);
  EXPECT_EQ(flags.min_ps_pct, -1.0);
  EXPECT_EQ(flags.min_rec, 1u);
  EXPECT_EQ(flags.tolerance, 0u);
  EXPECT_EQ(flags.top_k, 0u);
  EXPECT_EQ(flags.max_len, 0u);
  EXPECT_FALSE(flags.closed);
  EXPECT_FALSE(flags.maximal);
  EXPECT_EQ(flags.timeout_ms, 0u);
  EXPECT_EQ(flags.max_memory_mb, 0u);
  EXPECT_EQ(flags.max_patterns, 0u);
  EXPECT_EQ(flags.window, 0);
  EXPECT_EQ(flags.delta, 0u);
}

TEST(MiningFlagsTest, DefaultQueryIsPerOneMinPsOneMinRecOne) {
  engine::Query q = ParseOrDie({}, /*db_size=*/100);
  EXPECT_EQ(q.params.period, 1);
  // minPS=0 resolves to 1 — "any pattern at all" rather than an error.
  EXPECT_EQ(q.params.min_ps, 1u);
  EXPECT_EQ(q.params.min_rec, 1u);
  EXPECT_EQ(q.params.max_gap_violations, 0u);
  EXPECT_EQ(q.top_k, 0u);
  EXPECT_EQ(q.max_pattern_length, 0u);
  EXPECT_FALSE(q.closed);
  EXPECT_FALSE(q.maximal);
  EXPECT_TRUE(q.store_patterns);
  EXPECT_TRUE(q.limits.unlimited());
  EXPECT_EQ(q.cancel, nullptr);
}

TEST(MiningFlagsTest, GovernanceFlagsFlowIntoQueryLimits) {
  engine::Query q = ParseOrDie(
      {"--per=2", "--timeout-ms=1500", "--max-memory-mb=64",
       "--max-patterns=1000"},
      /*db_size=*/100);
  EXPECT_EQ(q.limits.timeout_ms, 1500);
  EXPECT_EQ(q.limits.memory_budget_bytes, 64ull * 1024 * 1024);
  EXPECT_EQ(q.limits.max_patterns, 1000u);
  EXPECT_FALSE(q.limits.unlimited());
}

TEST(MiningFlagsTest, WindowAndDeltaFlowIntoQuery) {
  engine::Query q = ParseOrDie({"--per=2", "--window=500", "--delta=100"},
                               /*db_size=*/100);
  EXPECT_EQ(q.window, 500);
  EXPECT_EQ(q.delta, 100u);
}

TEST(MiningFlagsTest, DeltaWithoutWindowRejected) {
  MiningQueryFlags flags;
  flags.delta = 10;
  EXPECT_FALSE(flags.ToQuery(100).ok());
  flags.window = 500;
  EXPECT_TRUE(flags.ToQuery(100).ok());
}

TEST(MiningFlagsTest, NegativeWindowRejected) {
  MiningQueryFlags flags;
  flags.window = -1;
  EXPECT_FALSE(flags.ToQuery(100).ok());
}

TEST(MiningFlagsTest, MaxPatternsRejectedWithTopK) {
  MiningQueryFlags flags;
  flags.per = 2;
  flags.top_k = 5;
  flags.max_patterns = 10;
  EXPECT_FALSE(flags.ToQuery(100).ok());
}

TEST(MiningFlagsTest, ExplicitThresholdsFlowThrough) {
  engine::Query q = ParseOrDie(
      {"--per=3", "--min-ps=4", "--min-rec=2", "--tolerance=1",
       "--max-length=5", "--closed"},
      /*db_size=*/100);
  EXPECT_EQ(q.params.period, 3);
  EXPECT_EQ(q.params.min_ps, 4u);
  EXPECT_EQ(q.params.min_rec, 2u);
  EXPECT_EQ(q.params.max_gap_violations, 1u);
  EXPECT_EQ(q.max_pattern_length, 5u);
  EXPECT_TRUE(q.closed);
}

TEST(MiningFlagsTest, MinPsPctResolvesAgainstDatabaseSizeCeil) {
  // ceil(2% of 3541) = ceil(70.82) = 71 — the compare-subcommand default
  // resolution on the scaled twitter set.
  engine::Query q = ParseOrDie({"--min-ps-pct=2"}, /*db_size=*/3541);
  EXPECT_EQ(q.params.min_ps, 71u);
  // Exact multiples don't round up.
  EXPECT_EQ(ParseOrDie({"--min-ps-pct=10"}, 50).params.min_ps, 5u);
  // --min-ps-pct overrides --min-ps when both are given.
  EXPECT_EQ(ParseOrDie({"--min-ps=9", "--min-ps-pct=10"}, 50).params.min_ps,
            5u);
  // Tiny fractions still resolve to at least 1.
  EXPECT_EQ(ParseOrDie({"--min-ps-pct=0.001"}, 50).params.min_ps, 1u);
}

TEST(MiningFlagsTest, ToQueryValidates) {
  MiningQueryFlags flags;
  flags.per = 0;  // Invalid period.
  EXPECT_FALSE(flags.ToQuery(10).ok());
}

TEST(MiningFlagsTest, MutatedDefaultsAreAdvertised) {
  // The compare subcommand presents dataset-scale defaults by mutating
  // fields before Register(); parsing nothing must then yield them.
  MiningQueryFlags flags;
  flags.per = 1440;
  flags.min_ps_pct = 2.0;
  FlagParser parser("test", "mining flag test");
  flags.Register(&parser);
  ASSERT_TRUE(ParseTokens(&parser, {}).ok());
  Result<engine::Query> q = flags.ToQuery(/*db_size=*/1000);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->params.period, 1440);
  EXPECT_EQ(q->params.min_ps, 20u);
}

// --- ParseMiningQuery (one --queries file line) -----------------------------

TEST(ParseMiningQueryTest, ParsesThresholdsBackendAndThreads) {
  Result<ParsedQueryLine> line = ParseMiningQuery(
      "--per=2 --min-ps=4 --min-rec=2 --backend=parallel --threads=4",
      /*db_size=*/100);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->query.params.period, 2);
  EXPECT_EQ(line->query.params.min_ps, 4u);
  EXPECT_EQ(line->query.params.min_rec, 2u);
  EXPECT_EQ(line->backend, engine::BackendKind::kParallel);
  EXPECT_EQ(line->threads, 4u);
}

TEST(ParseMiningQueryTest, DefaultsMatchTheMineSubcommand) {
  Result<ParsedQueryLine> line = ParseMiningQuery("--per=2", 100);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->query.params.min_ps, 1u);
  EXPECT_EQ(line->query.params.min_rec, 1u);
  EXPECT_EQ(line->backend, engine::BackendKind::kSequential);
  EXPECT_EQ(line->threads, 0u);
}

TEST(ParseMiningQueryTest, SharesTheMinPsPctResolution) {
  Result<ParsedQueryLine> line =
      ParseMiningQuery("--per=2 --min-ps-pct=10", /*db_size=*/50);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->query.params.min_ps, 5u);
}

TEST(ParseMiningQueryTest, WindowedBackendLine) {
  Result<ParsedQueryLine> line = ParseMiningQuery(
      "--per=2 --min-ps=3 --min-rec=2 --backend=windowed --window=500 "
      "--delta=50",
      /*db_size=*/100);
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->backend, engine::BackendKind::kWindowed);
  EXPECT_EQ(line->query.window, 500);
  EXPECT_EQ(line->query.delta, 50u);
}

TEST(ParseMiningQueryTest, RejectsUnknownFlagsAndPositionals) {
  EXPECT_FALSE(ParseMiningQuery("--per=2 --bogus=1", 100).ok());
  EXPECT_FALSE(ParseMiningQuery("--per=2 sneaky", 100).ok());
  EXPECT_FALSE(ParseMiningQuery("--per=2 --backend=warp", 100).ok());
}

TEST(ParseMiningQueryTest, TopKLine) {
  Result<ParsedQueryLine> line =
      ParseMiningQuery("--per=2 --min-ps=3 --top-k=5", 100);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(line->query.top_k, 5u);
}

}  // namespace
}  // namespace rpm::tools
