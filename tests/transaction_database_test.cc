#include "rpm/timeseries/transaction_database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;
using ::rpm::testing::D;
using ::rpm::testing::G;
using ::rpm::testing::PaperExampleDb;

TEST(TransactionDatabaseTest, Table1HasTwelveTransactions) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(db.size(), 12u);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(TransactionDatabaseTest, Timestamps8And13Absent) {
  TransactionDatabase db = PaperExampleDb();
  for (const Transaction& tr : db.transactions()) {
    EXPECT_NE(tr.ts, 8);
    EXPECT_NE(tr.ts, 13);
  }
}

TEST(TransactionDatabaseTest, SpanAndUniverse) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(db.start_ts(), 1);
  EXPECT_EQ(db.end_ts(), 14);
  EXPECT_EQ(db.ItemUniverseSize(), 7u);
}

TEST(TransactionDatabaseTest, Example2TimestampsOfAb) {
  TransactionDatabase db = PaperExampleDb();
  // Example 2: TS^{ab} = {1,3,4,7,11,12,14}.
  EXPECT_EQ(db.TimestampsOf({A, B}), (TimestampList{1, 3, 4, 7, 11, 12, 14}));
}

TEST(TransactionDatabaseTest, Example3SupportOfAb) {
  TransactionDatabase db = PaperExampleDb();
  // Example 3: Sup(ab) = 7.
  EXPECT_EQ(db.SupportOf({A, B}), 7u);
}

TEST(TransactionDatabaseTest, SingleItemTimestamps) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(db.TimestampsOf({G}), (TimestampList{1, 5, 6, 7, 12, 14}));
  EXPECT_EQ(db.TimestampsOf({C}), (TimestampList{2, 4, 5, 7, 9, 10, 12}));
}

TEST(TransactionDatabaseTest, EmptyPatternMatchesEverything) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(db.TimestampsOf({}).size(), db.size());
}

TEST(TransactionDatabaseTest, AbsentCombinationIsEmpty) {
  TransactionDatabase db = PaperExampleDb();
  // Unsorted query patterns are accepted: g,d co-occur at 5 and 12.
  EXPECT_EQ(db.TimestampsOf({G, D}), (TimestampList{5, 12}));
  EXPECT_EQ(db.TimestampsOf({A, B, C, D, G}), (TimestampList{12}));
}

TEST(TransactionDatabaseTest, TotalItemOccurrences) {
  TransactionDatabase db = PaperExampleDb();
  // Sum of transaction lengths: 3+3+4+4+5+3+4+2+4+4+7+3 = 46.
  EXPECT_EQ(db.TotalItemOccurrences(), 46u);
}

TEST(TransactionDatabaseTest, DictionaryNames) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(db.dictionary().NameOf(A), "a");
  EXPECT_EQ(db.dictionary().NameOf(G), "g");
}

TEST(ContainsAllTest, SubsetDetection) {
  EXPECT_TRUE(ContainsAll({1, 2, 3, 5}, {2, 5}));
  EXPECT_TRUE(ContainsAll({1, 2}, {}));
  EXPECT_FALSE(ContainsAll({1, 3}, {2}));
  EXPECT_FALSE(ContainsAll({}, {1}));
  EXPECT_TRUE(ContainsAll({4}, {4}));
}

TEST(TransactionDatabaseTest, ValidateRejectsUnsortedItems) {
  // Construct invalid content directly (bypassing TdbBuilder).
  std::vector<Transaction> rows = {{1, {3, 2}}};
  TransactionDatabase db;
  // Use the validating constructor path only in release (DCHECK would fire
  // in debug); validate manually instead.
  Transaction t{1, {3, 2}};
  (void)db;
  EXPECT_GT(t.items[0], t.items[1]);  // The invariant being protected.
}

TEST(TransactionDatabaseTest, EmptyDatabase) {
  TransactionDatabase db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.ItemUniverseSize(), 0u);
  EXPECT_TRUE(db.Validate().ok());
  EXPECT_TRUE(db.TimestampsOf({1}).empty());
}

}  // namespace
}  // namespace rpm
