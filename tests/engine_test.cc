// Query-engine tests: snapshot immutability/indexes, planner cache-reuse
// soundness (loose->strict bit-identity), executor backends vs fresh core
// runs, top-k integration and concurrent session use.
//
// The load-bearing property throughout: running a query through a session
// — whatever the backend, whatever was cached — is observationally pure.
// Patterns, supports and interval lists must be bit-identical to a fresh
// MineRecurringPatterns call on the same (db, params).

#include "rpm/engine/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "rpm/core/pattern_filters.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/top_k.h"
#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/executor.h"
#include "rpm/engine/query.h"
#include "rpm/engine/query_planner.h"
#include "test_util.h"

namespace rpm::engine {
namespace {

using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::PaperExamplePatterns;
using ::rpm::testing::RandomDbSpec;

Query MakeQuery(const RpParams& params) {
  Query q;
  q.params = params;
  return q;
}

/// The schedule-invariant stats counters (DESIGN.md §4a) as a tuple-ish
/// vector so tests can assert all nine at once.
std::vector<size_t> InvariantCounters(const RpGrowthStats& s) {
  return {s.num_items,         s.num_candidate_items, s.initial_tree_nodes,
          s.conditional_trees, s.patterns_examined,   s.patterns_emitted,
          s.merge_invocations, s.runs_merged,         s.timestamps_merged};
}

// --- DatasetSnapshot --------------------------------------------------------

TEST(DatasetSnapshotTest, WrapsDatabaseAndPrecomputesItemIndexes) {
  TransactionDatabase db = PaperExampleDb();
  auto snapshot = DatasetSnapshot::Create(db);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->size(), db.size());
  EXPECT_EQ(snapshot->start_ts(), db.start_ts());
  EXPECT_EQ(snapshot->end_ts(), db.end_ts());
  EXPECT_EQ(snapshot->ItemUniverseSize(), db.ItemUniverseSize());

  uint64_t total = 0;
  for (ItemId item = 0; item < db.ItemUniverseSize(); ++item) {
    TimestampList want = db.TimestampsOf(Itemset{item});
    EXPECT_EQ(snapshot->ItemTimestamps(item), want) << "item " << item;
    EXPECT_EQ(snapshot->ItemSupport(item), want.size()) << "item " << item;
    total += snapshot->ItemSupport(item);
  }
  EXPECT_EQ(snapshot->TotalItemOccurrences(), total);
  // Out-of-universe items are empty, not UB.
  EXPECT_TRUE(snapshot->ItemTimestamps(10'000).empty());
  EXPECT_EQ(snapshot->ItemSupport(10'000), 0u);
}

TEST(DatasetSnapshotTest, EmptyDatabaseSnapshot) {
  auto snapshot = DatasetSnapshot::Create(TransactionDatabase{});
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->empty());
  EXPECT_EQ(snapshot->TotalItemOccurrences(), 0u);
}

// --- QueryPlanner cache semantics ------------------------------------------

TEST(QueryPlannerTest, ExactRepeatHitsCache) {
  QueryPlanner planner(DatasetSnapshot::Create(PaperExampleDb()));
  RpParams params = PaperExampleParams();

  QueryPlanner::Plan first = planner.PlanFor(params);
  EXPECT_FALSE(first.reused);
  QueryPlanner::Plan second = planner.PlanFor(params);
  EXPECT_TRUE(second.reused);
  EXPECT_EQ(planner.tree_builds(), 1u);
  // Same underlying build, not a copy.
  EXPECT_EQ(first.prepared.get(), second.prepared.get());
}

TEST(QueryPlannerTest, LooserBuildServesStricterQuery) {
  QueryPlanner planner(DatasetSnapshot::Create(PaperExampleDb()));
  RpParams loose = PaperExampleParams();
  RpParams strict = loose;
  strict.min_ps += 1;
  strict.min_rec += 1;

  EXPECT_FALSE(planner.PlanFor(loose).reused);
  QueryPlanner::Plan plan = planner.PlanFor(strict);
  EXPECT_TRUE(plan.reused);
  EXPECT_EQ(plan.prepared->params.min_ps, loose.min_ps);
  EXPECT_EQ(planner.tree_builds(), 1u);
}

TEST(QueryPlannerTest, StricterBuildCannotServeLooserQuery) {
  QueryPlanner planner(DatasetSnapshot::Create(PaperExampleDb()));
  RpParams strict = PaperExampleParams();
  RpParams loose = strict;
  loose.min_ps -= 1;

  EXPECT_FALSE(planner.PlanFor(strict).reused);
  EXPECT_FALSE(planner.PlanFor(loose).reused);
  EXPECT_EQ(planner.tree_builds(), 2u);
  // The looser build now serves both parameter points.
  EXPECT_TRUE(planner.PlanFor(strict).reused);
  EXPECT_TRUE(planner.PlanFor(loose).reused);
  EXPECT_EQ(planner.tree_builds(), 2u);
}

TEST(QueryPlannerTest, DifferentPeriodOrToleranceNeverReuses) {
  QueryPlanner planner(DatasetSnapshot::Create(PaperExampleDb()));
  RpParams base = PaperExampleParams();
  EXPECT_FALSE(planner.PlanFor(base).reused);

  RpParams other_period = base;
  other_period.period = base.period + 1;
  EXPECT_FALSE(planner.PlanFor(other_period).reused);

  RpParams tolerant = base;
  tolerant.max_gap_violations = 1;
  EXPECT_FALSE(planner.PlanFor(tolerant).reused);
  EXPECT_EQ(planner.tree_builds(), 3u);
}

TEST(QueryPlannerTest, EvictionKeepsPlannerCorrect) {
  QueryPlanner planner(DatasetSnapshot::Create(PaperExampleDb()));
  RpParams params = PaperExampleParams();
  // Overflow the cache with distinct periods; entries are evicted FIFO
  // but pinned shared_ptrs stay valid and correctness is unaffected.
  QueryPlanner::Plan pinned = planner.PlanFor(params);
  for (int64_t per = 3; per < 3 + 2 * (int64_t)QueryPlanner::kMaxCacheEntries;
       ++per) {
    RpParams p = params;
    p.period = per;
    EXPECT_FALSE(planner.PlanFor(p).reused);
  }
  EXPECT_LE(planner.cache_size(), QueryPlanner::kMaxCacheEntries);
  // The original entry was evicted, so this rebuilds — and still mines
  // the exact Table 2 result set.
  QueryPlanner::Plan replan = planner.PlanFor(params);
  EXPECT_FALSE(replan.reused);
  RpGrowthResult mined = MineFromPrepared(
      *replan.prepared, replan.prepared->tree.Clone(), params);
  EXPECT_EQ(mined.patterns, PaperExamplePatterns());
  // The pinned pre-eviction build still mines correctly too.
  RpGrowthResult pinned_mined = MineFromPrepared(
      *pinned.prepared, pinned.prepared->tree.Clone(), params);
  EXPECT_EQ(pinned_mined.patterns, PaperExamplePatterns());
}

// --- Executor backends vs fresh core runs ----------------------------------

TEST(ExecutorTest, SequentialBackendIsBitIdenticalToFreshRun) {
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    TransactionDatabase db = MakeRandomDb(RandomDbSpec{}, seed);
    RpParams params = PaperExampleParams();
    RpGrowthResult fresh = MineRecurringPatterns(db, params);

    QuerySession session(DatasetSnapshot::Create(db));
    Result<QueryResult> got = session.Run(MakeQuery(params));
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->patterns, fresh.patterns) << "seed " << seed;
    EXPECT_EQ(InvariantCounters(got->stats), InvariantCounters(fresh.stats))
        << "seed " << seed;
    EXPECT_EQ(got->backend, "sequential");
    EXPECT_FALSE(got->tree_reused);
    EXPECT_EQ(got->session_tree_builds, 1u);
  }
}

TEST(ExecutorTest, ParallelBackendMatchesSequentialAndReusesTree) {
  TransactionDatabase db = MakeRandomDb(RandomDbSpec{}, 33);
  RpParams params = PaperExampleParams();
  QuerySession session(DatasetSnapshot::Create(db));

  Result<QueryResult> seq = session.Run(MakeQuery(params));
  ASSERT_TRUE(seq.ok());
  ExecOptions exec;
  exec.threads = 4;
  Result<QueryResult> par =
      session.Run(MakeQuery(params), BackendKind::kParallel, exec);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->patterns, seq->patterns);
  EXPECT_EQ(InvariantCounters(par->stats), InvariantCounters(seq->stats));
  EXPECT_EQ(par->backend, "parallel");
  EXPECT_TRUE(par->tree_reused);
  EXPECT_EQ(par->session_tree_builds, 1u);
  EXPECT_GE(par->stats.threads_used, 2u);
}

TEST(ExecutorTest, StreamingBackendMatchesBatchInExactModel) {
  for (uint64_t seed = 51; seed <= 53; ++seed) {
    TransactionDatabase db = MakeRandomDb(RandomDbSpec{}, seed);
    RpParams params = PaperExampleParams();
    RpGrowthResult fresh = MineRecurringPatterns(db, params);

    QuerySession session(DatasetSnapshot::Create(db));
    Result<QueryResult> got =
        session.Run(MakeQuery(params), BackendKind::kStreaming);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->patterns, fresh.patterns) << "seed " << seed;
    EXPECT_EQ(got->backend, "streaming");
    // Streaming builds its own list/tree; it never touches the planner
    // cache.
    EXPECT_FALSE(got->tree_reused);
  }
}

TEST(ExecutorTest, StreamingRejectsToleranceAndTopK) {
  QuerySession session(DatasetSnapshot::Create(PaperExampleDb()));
  Query tolerant = MakeQuery(PaperExampleParams());
  tolerant.params.max_gap_violations = 1;
  EXPECT_FALSE(session.Run(tolerant, BackendKind::kStreaming).ok());

  Query topk = MakeQuery(PaperExampleParams());
  topk.top_k = 3;
  EXPECT_FALSE(session.Run(topk, BackendKind::kStreaming).ok());
}

TEST(ExecutorTest, WindowedBackendMatchesSequentialWithCoveringWindow) {
  // A window wider than the whole snapshot never expires anything, so the
  // final committed set must equal the sequential result, for any delta.
  for (uint64_t seed = 51; seed <= 53; ++seed) {
    TransactionDatabase db = MakeRandomDb(RandomDbSpec{}, seed);
    RpParams params = PaperExampleParams();
    RpGrowthResult fresh = MineRecurringPatterns(db, params);

    QuerySession session(DatasetSnapshot::Create(db));
    for (uint64_t delta : {uint64_t{0}, uint64_t{1}, uint64_t{7}}) {
      Query q = MakeQuery(params);
      q.window = std::numeric_limits<Timestamp>::max();
      q.delta = delta;
      Result<QueryResult> got = session.Run(q, BackendKind::kWindowed);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->patterns, fresh.patterns)
          << "seed " << seed << " delta " << delta;
      EXPECT_EQ(got->backend, "windowed");
      EXPECT_FALSE(got->tree_reused);
      const uint64_t expected_deltas =
          delta == 0 ? 1 : (db.size() + delta - 1) / delta;
      EXPECT_EQ(got->windowed.deltas_applied, expected_deltas);
      EXPECT_EQ(got->windowed.transactions_expired, 0u);
    }
  }
}

TEST(ExecutorTest, WindowedSinkReceivesPerDeltaAdditions) {
  // With a covering window nothing is ever removed, so the union of the
  // per-delta added sets is exactly the final pattern set.
  QuerySession session(DatasetSnapshot::Create(PaperExampleDb()));
  Query q = MakeQuery(PaperExampleParams());
  q.window = 1000;
  q.delta = 3;
  std::vector<RecurringPattern> sunk;
  q.sink = [&](const RecurringPattern& p) { sunk.push_back(p); };
  Result<QueryResult> got = session.Run(q, BackendKind::kWindowed);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  SortPatternsCanonically(&sunk);
  EXPECT_EQ(sunk, got->patterns);
  EXPECT_EQ(got->patterns, PaperExamplePatterns());
}

TEST(ExecutorTest, WindowedRejectsOutOfModelQueries) {
  QuerySession session(DatasetSnapshot::Create(PaperExampleDb()));

  // No window at all.
  EXPECT_FALSE(
      session.Run(MakeQuery(PaperExampleParams()), BackendKind::kWindowed)
          .ok());

  Query tolerant = MakeQuery(PaperExampleParams());
  tolerant.window = 1000;
  tolerant.params.max_gap_violations = 1;
  EXPECT_FALSE(session.Run(tolerant, BackendKind::kWindowed).ok());

  Query topk = MakeQuery(PaperExampleParams());
  topk.window = 1000;
  topk.top_k = 3;
  EXPECT_FALSE(session.Run(topk, BackendKind::kWindowed).ok());

  Query capped = MakeQuery(PaperExampleParams());
  capped.window = 1000;
  capped.limits.max_patterns = 5;
  EXPECT_FALSE(session.Run(capped, BackendKind::kWindowed).ok());

  // Other backends ignore window/delta; a windowed query on them is fine.
  Query windowed = MakeQuery(PaperExampleParams());
  windowed.window = 1000;
  windowed.delta = 2;
  EXPECT_TRUE(session.Run(windowed, BackendKind::kSequential).ok());
}

TEST(ExecutorTest, ParseBackendRoundTripsWindowed) {
  Result<BackendKind> parsed = ParseBackend("windowed");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, BackendKind::kWindowed);
  EXPECT_STREQ(BackendName(BackendKind::kWindowed), "windowed");
  EXPECT_FALSE(ParseBackend("windows").ok());
}

TEST(ExecutorTest, WindowedCancellationYieldsCommittedPrefix) {
  // Cancel before the run: the windowed executor must surface the
  // cancellation with zero committed deltas, deterministically.
  QuerySession session(DatasetSnapshot::Create(PaperExampleDb()));
  Query q = MakeQuery(PaperExampleParams());
  q.window = 1000;
  q.delta = 4;
  CancellationToken cancel;
  cancel.Cancel();
  q.cancel = &cancel;
  Result<QueryResult> got = session.Run(q, BackendKind::kWindowed);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->status.IsCancelled()) << got->status.ToString();
  EXPECT_TRUE(got->truncated);
  EXPECT_TRUE(got->patterns.empty());
  EXPECT_EQ(got->windowed.deltas_applied, 0u);
}

TEST(ExecutorTest, PaperExampleThroughEveryBackend) {
  QuerySession session(DatasetSnapshot::Create(PaperExampleDb()));
  Query q = MakeQuery(PaperExampleParams());
  for (BackendKind kind : {BackendKind::kSequential, BackendKind::kParallel,
                           BackendKind::kStreaming}) {
    Result<QueryResult> got = session.Run(q, kind);
    ASSERT_TRUE(got.ok()) << BackendName(kind);
    EXPECT_EQ(got->patterns, PaperExamplePatterns()) << BackendName(kind);
  }
  // One snapshot, one tree build for the sequential+parallel pair.
  EXPECT_EQ(session.tree_builds(), 1u);
}

// --- Loose->strict reuse purity --------------------------------------------

TEST(EngineReuseTest, LooseToStrictReuseIsBitIdenticalToFreshRuns) {
  for (uint64_t seed = 61; seed <= 64; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 8;
    spec.num_timestamps = 120;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    RpParams loose = PaperExampleParams();

    QuerySession session(DatasetSnapshot::Create(db));
    ASSERT_TRUE(session.Run(MakeQuery(loose)).ok());

    // A grid of strictly-tighter parameter points, all served by the one
    // loose build. Each must match a fresh standalone run bit-for-bit.
    for (uint64_t dps : {0u, 1u, 2u}) {
      for (uint64_t drec : {0u, 1u, 2u}) {
        RpParams strict = loose;
        strict.min_ps += dps;
        strict.min_rec += drec;
        Result<QueryResult> got = session.Run(MakeQuery(strict));
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->tree_reused)
            << "seed " << seed << " +ps " << dps << " +rec " << drec;
        EXPECT_EQ(got->session_tree_builds, 1u);
        RpGrowthResult fresh = MineRecurringPatterns(db, strict);
        EXPECT_EQ(got->patterns, fresh.patterns)
            << "seed " << seed << " +ps " << dps << " +rec " << drec;
      }
    }
    EXPECT_EQ(session.tree_builds(), 1u);
  }
}

TEST(EngineReuseTest, ReuseUnderToleranceIsBitIdentical) {
  RandomDbSpec spec;
  spec.num_timestamps = 90;
  TransactionDatabase db = MakeRandomDb(spec, 77);
  RpParams loose = PaperExampleParams();
  loose.max_gap_violations = 1;

  QuerySession session(DatasetSnapshot::Create(db));
  ASSERT_TRUE(session.Run(MakeQuery(loose)).ok());
  RpParams strict = loose;
  strict.min_rec += 1;
  Result<QueryResult> got = session.Run(MakeQuery(strict));
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->tree_reused);
  EXPECT_EQ(got->patterns, MineRecurringPatterns(db, strict).patterns);
}

TEST(EngineReuseTest, ClosedAndMaximalFiltersApplyAfterReuse) {
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  QuerySession session(DatasetSnapshot::Create(db));
  ASSERT_TRUE(session.Run(MakeQuery(params)).ok());

  Query closed = MakeQuery(params);
  closed.closed = true;
  Result<QueryResult> got = session.Run(closed);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->tree_reused);
  EXPECT_EQ(got->patterns,
            FilterClosed(db, MineRecurringPatterns(db, params).patterns));

  Query maximal = MakeQuery(params);
  maximal.maximal = true;
  Result<QueryResult> got_max = session.Run(maximal);
  ASSERT_TRUE(got_max.ok());
  EXPECT_EQ(got_max->patterns,
            FilterMaximal(MineRecurringPatterns(db, params).patterns));
}

// --- Top-k through the engine ----------------------------------------------

TEST(EngineTopKTest, MatchesCoreTopKAndReusesFloorTree) {
  for (uint64_t seed = 81; seed <= 83; ++seed) {
    TransactionDatabase db = MakeRandomDb(RandomDbSpec{}, seed);
    TopKResult core = MineTopKByRecurrence(db, /*period=*/2, /*min_ps=*/3,
                                           /*k=*/5);

    QuerySession session(DatasetSnapshot::Create(db));
    Query q;
    q.params.period = 2;
    q.params.min_ps = 3;
    q.top_k = 5;
    Result<QueryResult> got = session.Run(q);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->patterns, core.patterns) << "seed " << seed;
    EXPECT_EQ(got->top_k_final_min_rec, core.final_min_rec) << "seed " << seed;
    // Every descent round mined a clone of the single floor-threshold
    // build — one build regardless of round count.
    EXPECT_EQ(session.tree_builds(), 1u);

    // A second top-k query reuses the floor tree outright.
    Result<QueryResult> again = session.Run(q);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->tree_reused);
    EXPECT_EQ(again->patterns, core.patterns);
    EXPECT_EQ(session.tree_builds(), 1u);
  }
}

TEST(EngineTopKTest, FloorTreeAlsoServesPlainQueries) {
  TransactionDatabase db = PaperExampleDb();
  QuerySession session(DatasetSnapshot::Create(db));
  Query topk;
  topk.params.period = 2;
  topk.params.min_ps = 3;
  topk.top_k = 4;
  ASSERT_TRUE(session.Run(topk).ok());

  // The top-k floor build (minRec=1) is the loosest possible for this
  // (per, minPS), so any plain query at these params reuses it.
  Result<QueryResult> plain = session.Run(MakeQuery(PaperExampleParams()));
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->tree_reused);
  EXPECT_EQ(plain->patterns, PaperExamplePatterns());
  EXPECT_EQ(session.tree_builds(), 1u);
}

TEST(EngineTopKTest, EmptyDatabaseShortCircuits) {
  QuerySession session(DatasetSnapshot::Create(TransactionDatabase{}));
  Query q;
  q.params.period = 2;
  q.params.min_ps = 3;
  q.top_k = 5;
  Result<QueryResult> got = session.Run(q);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->patterns.empty());
  EXPECT_EQ(got->top_k_rounds, 0u);
  EXPECT_EQ(got->top_k_final_min_rec, 0u);
  EXPECT_EQ(session.tree_builds(), 0u);
}

// --- Query validation and sinks --------------------------------------------

TEST(EngineQueryTest, ValidateRejectsIncoherentCombinations) {
  Query q = MakeQuery(PaperExampleParams());
  EXPECT_TRUE(q.Validate().ok());
  q.store_patterns = false;
  EXPECT_TRUE(q.Validate().ok());
  q.closed = true;
  EXPECT_FALSE(q.Validate().ok());
  q.closed = false;
  q.top_k = 3;
  EXPECT_FALSE(q.Validate().ok());

  Query bad_params;
  bad_params.params.period = 0;
  EXPECT_FALSE(bad_params.Validate().ok());
}

TEST(EngineQueryTest, SinkReceivesEveryPatternWithoutStorage) {
  TransactionDatabase db = PaperExampleDb();
  QuerySession session(DatasetSnapshot::Create(db));
  std::vector<RecurringPattern> streamed;
  Query q = MakeQuery(PaperExampleParams());
  q.store_patterns = false;
  q.sink = [&streamed](const RecurringPattern& p) { streamed.push_back(p); };

  Result<QueryResult> got = session.Run(q);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->patterns.empty());
  // Discovery order differs from canonical order; compare as sets.
  EXPECT_TRUE(SamePatternSets(streamed, PaperExamplePatterns()));
}

TEST(EngineQueryTest, ResultsCarryIntervalsForDownstreamAnalysis) {
  QuerySession session(DatasetSnapshot::Create(PaperExampleDb()));
  Result<QueryResult> got = session.Run(MakeQuery(PaperExampleParams()));
  ASSERT_TRUE(got.ok());
  ASSERT_FALSE(got->patterns.empty());
  for (const RecurringPattern& p : got->patterns) {
    EXPECT_FALSE(p.intervals.empty()) << p.ToString(nullptr);
    EXPECT_EQ(p.intervals.size(), p.recurrence());
  }
}

// --- Concurrency (the TSan target) -----------------------------------------

TEST(EngineConcurrencyTest, ConcurrentSessionsShareOneSnapshotSafely) {
  TransactionDatabase db = MakeRandomDb(RandomDbSpec{}, 91);
  auto snapshot = DatasetSnapshot::Create(db);
  QuerySession session(snapshot);

  // Fresh expectations per parameter point, computed up front.
  std::vector<RpParams> points;
  for (uint64_t dps : {0u, 1u}) {
    for (uint64_t drec : {0u, 1u}) {
      RpParams p = PaperExampleParams();
      p.min_ps += dps;
      p.min_rec += drec;
      points.push_back(p);
    }
  }
  std::vector<std::vector<RecurringPattern>> want;
  want.reserve(points.size());
  for (const RpParams& p : points) {
    want.push_back(MineRecurringPatterns(db, p).patterns);
  }

  // 8 threads hammer the one session with interleaved parameter points
  // and backends; every result must match its fresh baseline.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int round = 0; round < 6; ++round) {
        size_t i = (t + round) % points.size();
        BackendKind kind =
            (t % 2 == 0) ? BackendKind::kSequential : BackendKind::kParallel;
        ExecOptions exec;
        exec.threads = 2;
        Result<QueryResult> got =
            session.Run(MakeQuery(points[i]), kind, exec);
        if (!got.ok() || got->patterns != want[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Racing builds may duplicate work but never exceed one build per
  // distinct parameter point.
  EXPECT_GE(session.tree_builds(), 1u);
  EXPECT_LE(session.tree_builds(), points.size());
}

}  // namespace
}  // namespace rpm::engine
