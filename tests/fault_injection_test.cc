// Tests for the seeded fault-injection framework (DESIGN.md §7.4): the
// injector's fire decisions must be a pure function of (seed, site, hit
// index) so any failing campaign trial replays exactly, and the campaign
// driver itself must hold the library to its fault contract.

#include "rpm/verify/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "rpm/common/failpoint.h"

namespace rpm {
namespace {

/// Records the fire pattern of `hits` consecutive hits on `site`.
std::vector<bool> FirePattern(const FaultInjectionOptions& options,
                              const char* site, size_t hits) {
  ScopedFaultInjection scope(options);
  std::vector<bool> fired;
  fired.reserve(hits);
  for (size_t i = 0; i < hits; ++i) {
    fired.push_back(FailpointTriggered(site));
  }
  return fired;
}

TEST(FaultInjectorTest, DisarmedSitesNeverFire) {
  ASSERT_FALSE(FaultInjector::Instance().armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(FailpointTriggered("rptree.alloc"));
  }
}

TEST(FaultInjectorTest, SameSeedSameFirePattern) {
  FaultInjectionOptions options;
  options.seed = 42;
  options.probability_ppm = 100000;  // 10% — dense enough to compare.
  const std::vector<bool> first = FirePattern(options, "io.read", 400);
  const std::vector<bool> second = FirePattern(options, "io.read", 400);
  EXPECT_EQ(first, second);
  // And the pattern is not degenerate: some hits fire, some don't.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjectionOptions a;
  a.seed = 1;
  a.probability_ppm = 100000;
  FaultInjectionOptions b = a;
  b.seed = 2;
  EXPECT_NE(FirePattern(a, "io.read", 400), FirePattern(b, "io.read", 400));
}

TEST(FaultInjectorTest, SitesAreIndependentStreams) {
  FaultInjectionOptions options;
  options.seed = 42;
  options.probability_ppm = 100000;
  EXPECT_NE(FirePattern(options, "io.read", 400),
            FirePattern(options, "rptree.alloc", 400));
}

TEST(FaultInjectorTest, FireOnNthFiresExactlyOnThatHit) {
  FaultInjectionOptions options;
  options.fire_on_nth = 7;
  const std::vector<bool> fired = FirePattern(options, "clock.skip", 20);
  for (size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], i + 1 == 7) << "hit " << i + 1;
  }
}

TEST(FaultInjectorTest, SiteFilterBlocksOtherSites) {
  FaultInjectionOptions options;
  options.site_filter = "io.read";
  options.fire_on_nth = 1;
  ScopedFaultInjection scope(options);
  EXPECT_FALSE(FailpointTriggered("rptree.alloc"));
  EXPECT_FALSE(FailpointTriggered("threadpool.spawn"));
  EXPECT_TRUE(FailpointTriggered("io.read"));
}

TEST(FaultInjectorTest, CountersTrackHitsAndFires) {
  FaultInjectionOptions options;
  options.fire_on_nth = 3;
  ScopedFaultInjection scope(options);
  FaultInjector& injector = FaultInjector::Instance();
  EXPECT_EQ(injector.hits(), 0u);  // Arm resets counters.
  EXPECT_EQ(injector.fires(), 0u);
  for (int i = 0; i < 5; ++i) FailpointTriggered("io.read");
  for (int i = 0; i < 3; ++i) FailpointTriggered("rptree.alloc");
  EXPECT_EQ(injector.hits(), 8u);
  EXPECT_EQ(injector.fires(), 2u);  // 3rd hit of each site fired.
  const auto counts = injector.SiteCounts();
  ASSERT_EQ(counts.count("io.read"), 1u);
  EXPECT_EQ(counts.at("io.read").first, 5u);
  EXPECT_EQ(counts.at("io.read").second, 1u);
  EXPECT_EQ(counts.at("rptree.alloc").first, 3u);
  EXPECT_EQ(counts.at("rptree.alloc").second, 1u);
}

TEST(FaultInjectorTest, DisarmStopsFiringButKeepsCounters) {
  FaultInjectionOptions options;
  options.fire_on_nth = 1;
  FaultInjector& injector = FaultInjector::Instance();
  {
    ScopedFaultInjection scope(options);
    EXPECT_TRUE(FailpointTriggered("io.read"));
  }
  EXPECT_FALSE(injector.armed());
  EXPECT_FALSE(FailpointTriggered("io.read"));
  EXPECT_EQ(injector.fires(), 1u);  // Survives until the next Arm.
}

// --- Campaign smoke ---------------------------------------------------------

TEST(FaultCampaignTest, SmallCampaignPassesAndInjectsFaults) {
  FaultCampaignOptions options;
  options.trials = 25;
  options.seed = 7;
  FaultCampaignReport report = RunFaultCampaign(options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.trials_run, 25u);
  EXPECT_GT(report.faulted_operations, 0u);
  // With the default 2% per-hit rate, 25 trials reliably fire at least one
  // fault; a campaign that injects nothing is testing nothing.
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_NE(report.ToString().find("[PASS]"), std::string::npos);
}

TEST(FaultCampaignTest, CampaignIsDeterministicForASeed) {
  FaultCampaignOptions options;
  options.trials = 10;
  options.seed = 99;
  FaultCampaignReport a = RunFaultCampaign(options);
  FaultCampaignReport b = RunFaultCampaign(options);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.faulted_operations, b.faulted_operations);
  EXPECT_EQ(a.clean_recoveries, b.clean_recoveries);
  EXPECT_EQ(a.failures, b.failures);
}

}  // namespace
}  // namespace rpm
