#include "rpm/core/rp_tree.h"

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;
using ::rpm::testing::D;
using ::rpm::testing::E;
using ::rpm::testing::F;

/// Builds the paper's RP-tree (Figure 5(b)): candidate order a,b,c,d,e,f
/// (ranks 0..5), inserting the Table 1 transactions' candidate projections.
TsPrefixTree BuildPaperTree() {
  TsPrefixTree tree({A, B, C, D, E, F});
  const std::vector<std::pair<Timestamp, std::vector<uint32_t>>> rows = {
      {1, {0, 1}},           {2, {0, 2, 3}},    {3, {0, 1, 4, 5}},
      {4, {0, 1, 2, 3}},     {5, {2, 3, 4, 5}}, {6, {4, 5}},
      {7, {0, 1, 2}},        {9, {2, 3}},       {10, {2, 3, 4, 5}},
      {11, {0, 1, 4, 5}},    {12, {0, 1, 2, 3, 4, 5}},
      {14, {0, 1}},
  };
  for (const auto& [ts, ranks] : rows) tree.InsertTransaction(ranks, ts);
  return tree;
}

TEST(TsPrefixTreeTest, Figure5bNodeCount) {
  TsPrefixTree tree = BuildPaperTree();
  // Distinct candidate-projection prefixes of Table 1: 16 nodes.
  EXPECT_EQ(tree.NodeCount(), 16u);
}

TEST(TsPrefixTreeTest, Lemma2SizeBound) {
  TsPrefixTree tree = BuildPaperTree();
  // Sum of |CI(t)| over Table 1 = 46 total occurrences - 6 of pruned 'g'.
  EXPECT_LE(tree.NodeCount(), 40u);
}

TEST(TsPrefixTreeTest, TailTsListsMatchFigure5b) {
  TsPrefixTree tree = BuildPaperTree();
  // Collect (path+rank -> ts_list) for every rank.
  std::map<std::vector<uint32_t>, TimestampList> tails;
  for (size_t rank = 0; rank < tree.num_ranks(); ++rank) {
    tree.ForEachNodeOfRank(
        rank,
        [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ts.empty()) return;
          std::vector<uint32_t> key = path;
          key.push_back(static_cast<uint32_t>(rank));
          tails[key] = ts;
        });
  }
  const std::map<std::vector<uint32_t>, TimestampList> expected = {
      {{0, 1}, {1, 14}},
      {{0, 2, 3}, {2}},
      {{0, 1, 4, 5}, {3, 11}},
      {{0, 1, 2, 3}, {4}},
      {{2, 3, 4, 5}, {5, 10}},
      {{4, 5}, {6}},
      {{0, 1, 2}, {7}},
      {{2, 3}, {9}},
      {{0, 1, 2, 3, 4, 5}, {12}},
  };
  EXPECT_EQ(tails, expected);
}

TEST(TsPrefixTreeTest, PrefixTreeForItemFMatchesFigure6a) {
  TsPrefixTree tree = BuildPaperTree();
  // Rank 5 = item 'f'. Its prefix paths and ts-lists are Figure 6(a).
  std::map<std::vector<uint32_t>, TimestampList> collected;
  tree.ForEachNodeOfRank(
      5, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
        collected[path] = ts;
      });
  const std::map<std::vector<uint32_t>, TimestampList> expected = {
      {{0, 1, 4}, {3, 11}},
      {{2, 3, 4}, {5, 10}},
      {{4}, {6}},
      {{0, 1, 2, 3, 4}, {12}},
  };
  EXPECT_EQ(collected, expected);
}

TEST(TsPrefixTreeTest, PushUpMovesListsToParents) {
  TsPrefixTree tree = BuildPaperTree();
  tree.PushUpAndRemove(5);
  EXPECT_EQ(tree.HeadOfRank(5), nullptr);
  EXPECT_EQ(tree.NodeCount(), 12u);  // Four 'f' nodes removed.

  // Figure 6(c): the 'e' nodes now hold the ts-lists f carried.
  std::multiset<TimestampList> e_lists;
  std::multiset<TimestampList> expected = {{3, 11}, {5, 10}, {6}, {12}};
  tree.ForEachNodeOfRank(
      4, [&](const std::vector<uint32_t>&, const TimestampList& ts) {
        TimestampList sorted = ts;
        std::sort(sorted.begin(), sorted.end());
        e_lists.insert(sorted);
      });
  EXPECT_EQ(e_lists, expected);
}

TEST(TsPrefixTreeTest, FullBottomUpConsumesTree) {
  TsPrefixTree tree = BuildPaperTree();
  for (size_t rank = tree.num_ranks(); rank-- > 0;) {
    tree.PushUpAndRemove(rank);
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.NodeCount(), 0u);
}

TEST(TsPrefixTreeTest, CollectedTimestampsCoverEachTransactionOnce) {
  // Property 3: each transaction's projection appears exactly once. The
  // total of all ts-list lengths collected at each rank, bottom-up, must
  // be the number of transactions containing that rank's item.
  TsPrefixTree tree = BuildPaperTree();
  const size_t expected_support[6] = {8, 7, 7, 6, 6, 6};
  for (size_t rank = tree.num_ranks(); rank-- > 0;) {
    size_t total = 0;
    tree.ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>&, const TimestampList& ts) {
          total += ts.size();
        });
    EXPECT_EQ(total, expected_support[rank]) << "rank " << rank;
    tree.PushUpAndRemove(rank);
  }
}

TEST(TsPrefixTreeTest, InsertPathMergesIdenticalPaths) {
  TsPrefixTree tree({10, 20});
  tree.InsertPath({0, 1}, {5, 7});
  tree.InsertPath({0, 1}, {9});
  EXPECT_EQ(tree.NodeCount(), 2u);
  size_t calls = 0;
  tree.ForEachNodeOfRank(
      1, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
        ++calls;
        EXPECT_EQ(path, (std::vector<uint32_t>{0}));
        EXPECT_EQ(ts, (TimestampList{5, 7, 9}));
      });
  EXPECT_EQ(calls, 1u);
}

TEST(TsPrefixTreeTest, EmptyInsertIsNoOp) {
  TsPrefixTree tree({10});
  tree.InsertTransaction({}, 1);
  tree.InsertPath({}, {1, 2});
  EXPECT_TRUE(tree.empty());
}

TEST(TsPrefixTreeTest, ItemAtRankMapsBack) {
  TsPrefixTree tree({42, 17, 5});
  EXPECT_EQ(tree.num_ranks(), 3u);
  EXPECT_EQ(tree.ItemAtRank(0), 42u);
  EXPECT_EQ(tree.ItemAtRank(2), 5u);
}

TEST(TsPrefixTreeTest, SharedPrefixesCompress) {
  TsPrefixTree tree({1, 2, 3});
  tree.InsertTransaction({0, 1, 2}, 1);
  tree.InsertTransaction({0, 1, 2}, 2);
  tree.InsertTransaction({0, 1}, 3);
  EXPECT_EQ(tree.NodeCount(), 3u);  // One path, shared.
}

// --- Clone (the query engine's build-once/mine-many primitive) --------------

/// Per-rank (path, ts-list) pairs in node-link *chain order* — the order
/// mining visits conditional pattern bases, so equality here implies
/// bit-identical mining behaviour, counters included.
std::vector<std::pair<std::vector<uint32_t>, TimestampList>> ChainOfRank(
    const TsPrefixTree& tree, size_t rank) {
  std::vector<std::pair<std::vector<uint32_t>, TimestampList>> chain;
  tree.ForEachNodeOfRank(
      rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
        chain.emplace_back(path, ts);
      });
  return chain;
}

TEST(TsPrefixTreeTest, ClonePreservesStructureAndChainOrder) {
  TsPrefixTree tree = BuildPaperTree();
  TsPrefixTree clone = tree.Clone();
  EXPECT_EQ(clone.NodeCount(), tree.NodeCount());
  EXPECT_EQ(clone.items_by_rank(), tree.items_by_rank());
  for (size_t rank = 0; rank < tree.num_ranks(); ++rank) {
    EXPECT_EQ(ChainOfRank(clone, rank), ChainOfRank(tree, rank))
        << "rank " << rank;
  }
}

TEST(TsPrefixTreeTest, CloneIsIndependentOfTheOriginal) {
  TsPrefixTree tree = BuildPaperTree();
  TsPrefixTree clone = tree.Clone();
  // Consume the clone bottom-up (what mining does); the master is
  // untouched and can produce further identical clones.
  for (size_t rank = clone.num_ranks(); rank-- > 0;) {
    clone.PushUpAndRemove(rank);
  }
  EXPECT_TRUE(clone.empty());
  EXPECT_EQ(tree.NodeCount(), 16u);
  TsPrefixTree again = tree.Clone();
  for (size_t rank = 0; rank < tree.num_ranks(); ++rank) {
    EXPECT_EQ(ChainOfRank(again, rank), ChainOfRank(tree, rank));
  }
}

TEST(TsPrefixTreeTest, CloneOfEmptyTree) {
  TsPrefixTree tree({1, 2, 3});
  TsPrefixTree clone = tree.Clone();
  EXPECT_EQ(clone.NodeCount(), 0u);
  EXPECT_EQ(clone.num_ranks(), 3u);
  clone.InsertTransaction({0, 2}, 4);  // Still a usable tree.
  EXPECT_EQ(clone.NodeCount(), 2u);
  EXPECT_EQ(tree.NodeCount(), 0u);
}

// --- RetireBefore: the windowed miner's lazy expiry sweep.

/// Sum of every ts-list entry below `rank_count` ranks via the public walk.
size_t CountTimestamps(const TsPrefixTree& tree) {
  size_t n = 0;
  for (size_t rank = 0; rank < tree.num_ranks(); ++rank) {
    tree.ForEachNodeOfRank(rank, [&](const std::vector<uint32_t>&,
                                     const TimestampList& ts) {
      n += ts.size();
    });
  }
  return n;
}

TEST(TsPrefixTreeTest, RetireBeforeDropsOldTimestampsOnly) {
  TsPrefixTree tree = BuildPaperTree();
  const size_t nodes_before = tree.NodeCount();
  const size_t ts_before = tree.TimestampCount();
  TsPrefixTree::RetireStats stats = tree.RetireBefore(5);
  // Table 1 has 4 transactions below ts 5; each contributes one tail
  // timestamp.
  EXPECT_EQ(stats.timestamps_retired, 4u);
  EXPECT_EQ(tree.TimestampCount(), ts_before - 4);
  EXPECT_EQ(CountTimestamps(tree), ts_before - 4);
  // Every node with an emptied ts-list in Figure 5(b) still has a live
  // descendant or sibling-path timestamps... except the pure prefix
  // {a,b} (ts 1,14): ts 14 survives, so no node dies here.
  EXPECT_EQ(stats.nodes_retired, nodes_before - tree.NodeCount());
  // No surviving timestamp is below the cutoff.
  for (size_t rank = 0; rank < tree.num_ranks(); ++rank) {
    tree.ForEachNodeOfRank(rank, [&](const std::vector<uint32_t>&,
                                     const TimestampList& ts) {
      for (Timestamp t : ts) EXPECT_GE(t, 5);
    });
  }
}

TEST(TsPrefixTreeTest, RetireBeforeDetachesEmptyChildlessNodes) {
  // Two leaf paths: {0,1} live only at ts 2, {0} at ts 10. Retiring past
  // 2 must drop the {0,1} leaf (empty + childless) but keep its parent
  // {0}, which still holds ts 10.
  TsPrefixTree tree({A, B});
  tree.InsertTransaction({0, 1}, 2);
  tree.InsertTransaction({0}, 10);
  ASSERT_EQ(tree.NodeCount(), 2u);
  TsPrefixTree::RetireStats stats = tree.RetireBefore(5);
  EXPECT_EQ(stats.timestamps_retired, 1u);
  EXPECT_EQ(stats.nodes_retired, 1u);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_EQ(tree.HeadOfRank(1), nullptr);
  ASSERT_NE(tree.HeadOfRank(0), nullptr);
  // The chain of rank 0 is intact and walkable.
  size_t visits = 0;
  tree.ForEachNodeOfRank(0, [&](const std::vector<uint32_t>& path,
                                const TimestampList& ts) {
    ++visits;
    EXPECT_TRUE(path.empty());
    EXPECT_EQ(ts, (TimestampList{10}));
  });
  EXPECT_EQ(visits, 1u);
}

TEST(TsPrefixTreeTest, RetireBeforeCascadesUpEmptyPrefixes) {
  // A single deep path whose only timestamp expires: every node on the
  // path empties bottom-up and the whole path is detached.
  TsPrefixTree tree({A, B, C});
  tree.InsertTransaction({0, 1, 2}, 3);
  ASSERT_EQ(tree.NodeCount(), 3u);
  TsPrefixTree::RetireStats stats = tree.RetireBefore(100);
  EXPECT_EQ(stats.timestamps_retired, 1u);
  EXPECT_EQ(stats.nodes_retired, 3u);
  EXPECT_EQ(tree.NodeCount(), 0u);
  EXPECT_TRUE(tree.empty());
  for (size_t rank = 0; rank < 3; ++rank) {
    EXPECT_EQ(tree.HeadOfRank(rank), nullptr);
  }
  // The tree stays usable after a full retire.
  tree.InsertTransaction({0, 2}, 200);
  EXPECT_EQ(tree.NodeCount(), 2u);
  EXPECT_EQ(tree.TimestampCount(), 1u);
}

TEST(TsPrefixTreeTest, RetireBeforeNoOpCutoff) {
  TsPrefixTree tree = BuildPaperTree();
  const size_t nodes = tree.NodeCount();
  const size_t ts = tree.TimestampCount();
  TsPrefixTree::RetireStats stats = tree.RetireBefore(0);
  EXPECT_EQ(stats.timestamps_retired, 0u);
  EXPECT_EQ(stats.nodes_retired, 0u);
  EXPECT_EQ(tree.NodeCount(), nodes);
  EXPECT_EQ(tree.TimestampCount(), ts);
}

TEST(TsPrefixTreeTest, RetireBeforePreservesChainOrderAndRuns) {
  // Node-link chain order and the sorted-runs property of ts-lists are
  // the determinism contract the miners rely on: after retiring, each
  // surviving list must still be the original subsequence (order kept).
  TsPrefixTree tree({A, B});
  tree.InsertTransaction({0, 1}, 1);
  tree.InsertTransaction({0}, 2);
  tree.InsertTransaction({0, 1}, 3);
  tree.InsertTransaction({0}, 4);
  tree.InsertTransaction({0, 1}, 5);
  tree.RetireBefore(3);
  std::vector<TimestampList> lists;
  tree.ForEachNodeOfRank(1, [&](const std::vector<uint32_t>&,
                                const TimestampList& ts) {
    lists.push_back(ts);
  });
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_EQ(lists[0], (TimestampList{3, 5}));
  tree.ForEachNodeOfRank(0, [&](const std::vector<uint32_t>&,
                                const TimestampList& ts) {
    EXPECT_EQ(ts, (TimestampList{4}));
  });
}

}  // namespace
}  // namespace rpm
