#include "rpm/core/pattern.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;

TEST(PeriodicIntervalTest, Duration) {
  PeriodicInterval pi{3, 17, 5};
  EXPECT_EQ(pi.Duration(), 14);
  EXPECT_EQ((PeriodicInterval{7, 7, 1}).Duration(), 0);
}

TEST(RecurringPatternTest, RecurrenceIsIntervalCount) {
  RecurringPattern p{{A}, 8, {{1, 4, 4}, {11, 14, 3}}};
  EXPECT_EQ(p.recurrence(), 2u);
}

TEST(RecurringPatternTest, ToStringMatchesEquation1) {
  // Example 9's rendering of 'ab'.
  RecurringPattern p{{A, B}, 7, {{1, 4, 3}, {11, 14, 3}}};
  ItemDictionary dict;
  dict.GetOrAdd("a");
  dict.GetOrAdd("b");
  EXPECT_EQ(p.ToString(&dict),
            "a b [support=7, recurrence=2, {{[1,4]:3}, {[11,14]:3}}]");
}

TEST(RecurringPatternTest, ToStringWithoutDictionaryUsesIds) {
  RecurringPattern p{{3, 5}, 2, {{1, 2, 2}}};
  EXPECT_EQ(p.ToString(), "3 5 [support=2, recurrence=1, {{[1,2]:2}}]");
}

TEST(SortPatternsCanonicallyTest, LexicographicByItems) {
  std::vector<RecurringPattern> ps = {
      {{2}, 1, {}}, {{0, 1}, 1, {}}, {{0}, 1, {}}, {{1, 2}, 1, {}}};
  SortPatternsCanonically(&ps);
  EXPECT_EQ(ps[0].items, (Itemset{0}));
  EXPECT_EQ(ps[1].items, (Itemset{0, 1}));
  EXPECT_EQ(ps[2].items, (Itemset{1, 2}));
  EXPECT_EQ(ps[3].items, (Itemset{2}));
}

TEST(SamePatternSetsTest, OrderInsensitive) {
  std::vector<RecurringPattern> a = {{{0}, 1, {{1, 1, 1}}},
                                     {{1}, 2, {{2, 3, 2}}}};
  std::vector<RecurringPattern> b = {a[1], a[0]};
  EXPECT_TRUE(SamePatternSets(a, b));
}

TEST(SamePatternSetsTest, DetectsDifferences) {
  std::vector<RecurringPattern> a = {{{0}, 1, {{1, 1, 1}}}};
  std::vector<RecurringPattern> b = {{{0}, 2, {{1, 1, 1}}}};
  EXPECT_FALSE(SamePatternSets(a, b));
  EXPECT_FALSE(SamePatternSets(a, {}));
  std::vector<RecurringPattern> c = {{{0}, 1, {{1, 2, 1}}}};
  EXPECT_FALSE(SamePatternSets(a, c));
}

TEST(MaxPatternLengthTest, FindsLongest) {
  std::vector<RecurringPattern> ps = {{{0}, 1, {}},
                                      {{0, 1, 2}, 1, {}},
                                      {{4, 5}, 1, {}}};
  EXPECT_EQ(MaxPatternLength(ps), 3u);
  EXPECT_EQ(MaxPatternLength({}), 0u);
}

}  // namespace
}  // namespace rpm
