#include "rpm/core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rpm {
namespace {

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  constexpr size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  ParallelFor(kItems, 4, [&](size_t, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // No lock needed: guaranteed same-thread.
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  constexpr size_t kWorkers = 3;
  std::atomic<bool> out_of_range{false};
  ParallelFor(200, kWorkers, [&](size_t worker, size_t) {
    if (worker >= kWorkers) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

// Regression: an exception escaping a task used to unwind through a worker
// thread and std::terminate the process mid-join. It must now be rethrown
// on the calling thread after all workers are joined.
TEST(ThreadPoolTest, TaskExceptionIsRethrownOnCaller) {
  constexpr size_t kItems = 500;
  std::atomic<size_t> executed{0};
  EXPECT_THROW(
      ParallelFor(kItems, 4,
                  [&](size_t, size_t i) {
                    if (i == 7) throw std::runtime_error("task 7 failed");
                    executed.fetch_add(1, std::memory_order_relaxed);
                  }),
      std::runtime_error);
  // The throw stops dispatch: not every remaining item ran.
  EXPECT_LT(executed.load(), kItems);
}

TEST(ThreadPoolTest, ExceptionCarriesOriginalMessage) {
  try {
    ParallelFor(64, 3, [](size_t, size_t i) {
      if (i == 0) throw std::runtime_error("projection 0 corrupt");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "projection 0 corrupt");
  }
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptionsToo) {
  EXPECT_THROW(ParallelFor(3, 1,
                           [](size_t, size_t) {
                             throw std::logic_error("inline failure");
                           }),
               std::logic_error);
}

}  // namespace
}  // namespace rpm
