#include "rpm/core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "rpm/common/failpoint.h"

namespace rpm {
namespace {

TEST(ThreadPoolTest, RunsEveryItemExactlyOnce) {
  constexpr size_t kItems = 1000;
  std::vector<std::atomic<int>> hits(kItems);
  ParallelFor(kItems, 4, [&](size_t, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // No lock needed: guaranteed same-thread.
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  constexpr size_t kWorkers = 3;
  std::atomic<bool> out_of_range{false};
  ParallelFor(200, kWorkers, [&](size_t worker, size_t) {
    if (worker >= kWorkers) out_of_range.store(true);
  });
  EXPECT_FALSE(out_of_range.load());
}

// Regression: an exception escaping a task used to unwind through a worker
// thread and std::terminate the process mid-join. It must now be rethrown
// on the calling thread after all workers are joined.
TEST(ThreadPoolTest, TaskExceptionIsRethrownOnCaller) {
  constexpr size_t kItems = 500;
  std::atomic<size_t> executed{0};
  EXPECT_THROW(
      ParallelFor(kItems, 4,
                  [&](size_t, size_t i) {
                    if (i == 7) throw std::runtime_error("task 7 failed");
                    executed.fetch_add(1, std::memory_order_relaxed);
                  }),
      std::runtime_error);
  // The throw stops dispatch: not every remaining item ran.
  EXPECT_LT(executed.load(), kItems);
}

TEST(ThreadPoolTest, ExceptionCarriesOriginalMessage) {
  try {
    ParallelFor(64, 3, [](size_t, size_t i) {
      if (i == 0) throw std::runtime_error("projection 0 corrupt");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "projection 0 corrupt");
  }
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptionsToo) {
  EXPECT_THROW(ParallelFor(3, 1,
                           [](size_t, size_t) {
                             throw std::logic_error("inline failure");
                           }),
               std::logic_error);
}

// --- Cancellation (should_stop) and degradation ------------------------------

TEST(ThreadPoolTest, StopBeforeStartRunsNothing) {
  std::atomic<size_t> executed{0};
  const size_t participants = ParallelFor(
      500, 4,
      [&](size_t, size_t) {
        executed.fetch_add(1, std::memory_order_relaxed);
      },
      /*should_stop=*/[] { return true; });
  EXPECT_EQ(executed.load(), 0u);
  EXPECT_GE(participants, 1u);
}

TEST(ThreadPoolTest, StopMidLoopParksRemainingItems) {
  constexpr size_t kItems = 10000;
  std::atomic<size_t> executed{0};
  std::atomic<bool> stop{false};
  ParallelFor(
      kItems, 4,
      [&](size_t, size_t) {
        if (executed.fetch_add(1, std::memory_order_relaxed) == 50) {
          stop.store(true, std::memory_order_release);
        }
      },
      [&] { return stop.load(std::memory_order_acquire); });
  // Cancellation is checked per item on every worker: once the flag rises,
  // at most the in-flight items finish. Generous bound — the point is that
  // nowhere near all 10000 ran.
  EXPECT_LT(executed.load(), kItems / 2);
}

TEST(ThreadPoolTest, StopOnInlinePathParksImmediately) {
  std::atomic<size_t> executed{0};
  std::atomic<bool> stop{false};
  const size_t participants = ParallelFor(
      100, 1,
      [&](size_t, size_t) {
        if (executed.fetch_add(1, std::memory_order_relaxed) == 4) {
          stop.store(true);
        }
      },
      [&] { return stop.load(); });
  EXPECT_EQ(participants, 1u);
  EXPECT_EQ(executed.load(), 5u);  // Items 0..4, then the flag parks item 5.
}

TEST(ThreadPoolTest, CancelledRunStillReturnsNormally) {
  // Cancellation is caller state, not an error: no exception, and the
  // caller can keep using the pool afterwards.
  std::atomic<size_t> executed{0};
  ParallelFor(
      1000, 4,
      [&](size_t, size_t) {
        executed.fetch_add(1, std::memory_order_relaxed);
      },
      [] { return true; });
  ParallelFor(10, 2, [&](size_t, size_t) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_GE(executed.load(), 10u);
}

TEST(ThreadPoolTest, ExceptionWinsOverLateCancellation) {
  // A task exception must surface even when a stop request races it.
  std::atomic<bool> stop{false};
  EXPECT_THROW(
      ParallelFor(
          5000, 4,
          [&](size_t, size_t i) {
            if (i == 3) {
              stop.store(true, std::memory_order_release);
              throw std::runtime_error("task 3 failed");
            }
          },
          [&] { return stop.load(std::memory_order_acquire); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SpawnFailureDegradesToCallingThread) {
  // The threadpool.spawn failpoint simulates std::thread construction
  // failing; ParallelFor must degrade to fewer workers (floor: the
  // calling thread) and still run EVERY item exactly once.
  SetFailpointHandler(
      +[](const char* site) {
        return std::string_view(site) == "threadpool.spawn";
      });
  constexpr size_t kItems = 300;
  std::vector<std::atomic<int>> hits(kItems);
  const size_t participants = ParallelFor(kItems, 8, [&](size_t, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  SetFailpointHandler(nullptr);
  EXPECT_EQ(participants, 1u) << "every spawn was failed; only the calling "
                                 "thread should have participated";
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace rpm
