// End-to-end flows: raw event CSV -> TDB -> RP-growth -> report; generated
// dataset -> SPMF round trip -> identical mining results; the three models
// compared on one bursty stream.

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "rpm/analysis/pattern_report.h"
#include "rpm/analysis/pattern_set.h"
#include "rpm/baselines/pf_growth.h"
#include "rpm/baselines/ppattern.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/hashtag_generator.h"
#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/timeseries/io/timestamped_csv_io.h"
#include "rpm/timeseries/tdb_builder.h"
#include "test_util.h"

namespace rpm {
namespace {

/// Id-independent pattern rendering: sorted item names + support +
/// interval list. Lets results be compared across re-interned databases.
std::multiset<std::string> CanonicalPatternStrings(
    const std::vector<RecurringPattern>& patterns,
    const ItemDictionary& dict) {
  std::multiset<std::string> out;
  for (const RecurringPattern& p : patterns) {
    std::vector<std::string> names = dict.NamesOf(p.items);
    std::sort(names.begin(), names.end());
    std::string s;
    for (const std::string& n : names) s += n + ",";
    s += "|sup=" + std::to_string(p.support);
    for (const PeriodicInterval& pi : p.intervals) {
      s += "|[" + std::to_string(pi.begin) + "," + std::to_string(pi.end) +
           "]:" + std::to_string(pi.periodic_support);
    }
    out.insert(std::move(s));
  }
  return out;
}

TEST(IntegrationTest, CsvToMinedReport) {
  // A retail-flavoured event log: jackets+gloves recur in two cold spells
  // (the paper's introduction scenario).
  std::ostringstream csv;
  csv << "timestamp,item\n";
  for (Timestamp ts : {1, 2, 3, 4}) {
    csv << ts << ",jackets\n" << ts << ",gloves\n";
  }
  csv << "5,sunscreen\n6,sunscreen\n7,sunscreen\n8,sunscreen\n";
  for (Timestamp ts : {20, 21, 22, 23}) {
    csv << ts << ",jackets\n" << ts << ",gloves\n";
  }

  std::istringstream in(csv.str());
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_TRUE(data.ok()) << data.status();
  TransactionDatabase db =
      BuildTdbFromSequence(data->sequence, data->dictionary);

  RpParams params;
  params.period = 1;
  params.min_ps = 3;
  params.min_rec = 2;
  RpGrowthResult result = MineRecurringPatterns(db, params);

  // {jackets, gloves} recurs twice; sunscreen has only one interval.
  const ItemId jackets = *db.dictionary().Lookup("jackets");
  const ItemId gloves = *db.dictionary().Lookup("gloves");
  Itemset target = {std::min(jackets, gloves), std::max(jackets, gloves)};
  bool found = false;
  for (const RecurringPattern& p : result.patterns) {
    if (p.items == target) {
      found = true;
      EXPECT_EQ(p.recurrence(), 2u);
    }
    for (ItemId item : p.items) {
      EXPECT_NE(db.dictionary().NameOf(item), "sunscreen");
    }
  }
  EXPECT_TRUE(found);

  auto lines =
      rpm::analysis::FormatPatternReport(result.patterns, db.dictionary());
  ASSERT_FALSE(lines.empty());
  bool mentions = false;
  for (const std::string& line : lines) {
    mentions = mentions || line.find("jackets") != std::string::npos;
  }
  EXPECT_TRUE(mentions);
}

TEST(IntegrationTest, SpmfRoundTripPreservesMiningResults) {
  gen::HashtagParams params;
  params.num_minutes = 2000;
  params.num_hashtags = 30;
  params.num_random_events = 3;
  params.min_event_minutes = 300;
  params.max_event_minutes = 600;
  params.seed = 4242;
  gen::GeneratedHashtagStream stream = gen::GenerateHashtagStream(params);

  std::ostringstream out;
  ASSERT_TRUE(WriteTimestampedSpmf(stream.db, &out).ok());
  std::istringstream in(out.str());
  Result<TransactionDatabase> reread = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(reread.ok()) << reread.status();

  RpParams mine;
  mine.period = 20;
  mine.min_ps = 10;
  mine.min_rec = 1;
  RpGrowthResult direct = MineRecurringPatterns(stream.db, mine);
  RpGrowthResult roundtripped = MineRecurringPatterns(*reread, mine);
  // Item ids may be permuted by re-interning; compare name-canonically.
  ASSERT_EQ(direct.patterns.size(), roundtripped.patterns.size());
  EXPECT_EQ(CanonicalPatternStrings(direct.patterns, stream.db.dictionary()),
            CanonicalPatternStrings(roundtripped.patterns,
                                    reread->dictionary()));
}

TEST(IntegrationTest, ThreeModelsOrderedByStrictness) {
  // One bursty stream; thresholds chosen compatibly (Sec. 5.4):
  // PF (complete cycles) <= RP (bounded intervals) <= p-patterns (anywhere).
  gen::HashtagParams params;
  params.num_minutes = 3000;
  params.num_hashtags = 25;
  params.num_random_events = 5;
  params.min_event_minutes = 400;
  params.max_event_minutes = 900;
  params.event_fire_prob = 0.7;
  params.seed = 777;
  TransactionDatabase db = gen::GenerateHashtagStream(params).db;

  RpParams rp;
  rp.period = 30;
  rp.min_ps = 8;
  rp.min_rec = 1;
  baselines::PfParams pf;
  pf.min_sup = rp.min_ps;
  pf.max_per = rp.period;
  baselines::PPatternParams pp;
  pp.period = rp.period;
  pp.min_sup = rp.min_ps - 1;

  auto rp_sets =
      rpm::analysis::ItemsetsOf(MineRecurringPatterns(db, rp).patterns);
  auto pf_sets = rpm::analysis::ItemsetsOf(
      baselines::MinePeriodicFrequentPatterns(db, pf).patterns);
  auto pp_result = baselines::MinePPatterns(db, pp);
  auto pp_sets = rpm::analysis::ItemsetsOf(pp_result.patterns);

  EXPECT_TRUE(rpm::analysis::IsSubsetOf(pf_sets, rp_sets));
  EXPECT_TRUE(rpm::analysis::IsSubsetOf(rp_sets, pp_sets));
  EXPECT_LE(pf_sets.size(), rp_sets.size());
  EXPECT_LE(rp_sets.size(), pp_sets.size());
}

TEST(IntegrationTest, PaperExampleThroughSpmfText) {
  // The running example expressed as the on-disk format.
  const char* text =
      "1|a b g\n2|a c d\n3|a b e f\n4|a b c d\n5|c d e f g\n6|e f g\n"
      "7|a b c g\n9|c d\n10|c d e f\n11|a b e f\n12|a b c d e f g\n"
      "14|a b g\n";
  std::istringstream in(text);
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(db.ok());
  RpGrowthResult result =
      MineRecurringPatterns(*db, rpm::testing::PaperExampleParams());
  // The text interns 'g' before 'c'/'d', permuting ids relative to
  // PaperExampleDb — compare name-canonically.
  EXPECT_EQ(
      CanonicalPatternStrings(result.patterns, db->dictionary()),
      CanonicalPatternStrings(rpm::testing::PaperExamplePatterns(),
                              rpm::testing::PaperExampleDb().dictionary()));
}

}  // namespace
}  // namespace rpm
