#include "rpm/core/rp_growth.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;
using ::rpm::testing::D;
using ::rpm::testing::G;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::PaperExamplePatterns;

TEST(RpGrowthTest, ReproducesTable2Exactly) {
  RpGrowthResult result =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  std::vector<RecurringPattern> expected = PaperExamplePatterns();
  ASSERT_EQ(result.patterns.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.patterns[i], expected[i])
        << "mined: " << result.patterns[i].ToString()
        << "\nexpected: " << expected[i].ToString();
  }
}

TEST(RpGrowthTest, Example10CNotRecurringButCdIs) {
  RpGrowthResult result =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  bool has_c = false, has_cd = false;
  for (const RecurringPattern& p : result.patterns) {
    if (p.items == Itemset{C}) has_c = true;
    if (p.items == Itemset{C, D}) has_cd = true;
  }
  EXPECT_FALSE(has_c);  // Anti-monotonicity violation the paper highlights.
  EXPECT_TRUE(has_cd);
}

TEST(RpGrowthTest, PrunedItemGAppearsInNoPattern) {
  RpGrowthResult result =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  for (const RecurringPattern& p : result.patterns) {
    for (ItemId item : p.items) EXPECT_NE(item, G);
  }
}

TEST(RpGrowthTest, StatsReflectRun) {
  RpGrowthResult result =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  EXPECT_EQ(result.stats.num_items, 7u);
  EXPECT_EQ(result.stats.num_candidate_items, 6u);
  EXPECT_EQ(result.stats.initial_tree_nodes, 16u);  // Figure 5(b).
  EXPECT_EQ(result.stats.patterns_emitted, 8u);
  EXPECT_GE(result.stats.patterns_examined, 8u);
  EXPECT_GE(result.stats.total_seconds, 0.0);
  // The merge kernel ran: every examined candidate assembles its ts_beta
  // through MergeSortedRuns, and the run/timestamp tallies cover at least
  // the per-item lists the example's tree holds.
  EXPECT_GT(result.stats.merge_invocations, 0u);
  EXPECT_GT(result.stats.runs_merged, 0u);
  EXPECT_GT(result.stats.timestamps_merged, 0u);
  EXPECT_GE(result.stats.timestamps_merged, result.stats.runs_merged);
  EXPECT_GT(result.stats.scratch_bytes_peak, 0u);
}

TEST(RpGrowthTest, SupportOnlyPruningGivesSameAnswer) {
  RpGrowthOptions naive;
  naive.pruning = PruningMode::kSupportOnly;
  RpGrowthResult with_erec =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  RpGrowthResult without =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams(), naive);
  EXPECT_TRUE(SamePatternSets(with_erec.patterns, without.patterns));
}

TEST(RpGrowthTest, MaxPatternLengthOneYieldsOnlyItems) {
  RpGrowthOptions options;
  options.max_pattern_length = 1;
  RpGrowthResult result = MineRecurringPatterns(
      PaperExampleDb(), PaperExampleParams(), options);
  ASSERT_EQ(result.patterns.size(), 5u);  // a, b, d, e, f.
  for (const RecurringPattern& p : result.patterns) {
    EXPECT_EQ(p.items.size(), 1u);
  }
}

TEST(RpGrowthTest, MaxPatternLengthTwoMatchesFullRunHere) {
  // Table 2's longest pattern is length 2, so capping at 2 changes nothing.
  RpGrowthOptions options;
  options.max_pattern_length = 2;
  RpGrowthResult capped = MineRecurringPatterns(
      PaperExampleDb(), PaperExampleParams(), options);
  EXPECT_TRUE(SamePatternSets(capped.patterns, PaperExamplePatterns()));
}

TEST(RpGrowthTest, EmptyDatabaseYieldsNothing) {
  RpGrowthResult result =
      MineRecurringPatterns(TransactionDatabase{}, PaperExampleParams());
  EXPECT_TRUE(result.patterns.empty());
}

TEST(RpGrowthTest, SingleTransactionMinPsOne) {
  TransactionDatabase db = MakeDatabase({{5, {A, B}}});
  RpParams params;
  params.period = 1;
  params.min_ps = 1;
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(db, params);
  // {a}, {b}, {ab} each have one interval [5,5] with ps=1.
  ASSERT_EQ(result.patterns.size(), 3u);
  for (const RecurringPattern& p : result.patterns) {
    EXPECT_EQ(p.support, 1u);
    ASSERT_EQ(p.intervals.size(), 1u);
    EXPECT_EQ(p.intervals[0], (PeriodicInterval{5, 5, 1}));
  }
}

TEST(RpGrowthTest, MinRecOneFindsCAsSingleInterval) {
  RpParams params = PaperExampleParams();
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(PaperExampleDb(), params);
  const RecurringPattern* c = nullptr;
  for (const RecurringPattern& p : result.patterns) {
    if (p.items == Itemset{C}) c = &p;
  }
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->support, 7u);
  ASSERT_EQ(c->intervals.size(), 1u);
  EXPECT_EQ(c->intervals[0], (PeriodicInterval{2, 12, 7}));
}

TEST(RpGrowthTest, LargePeriodMergesEverything) {
  RpParams params;
  params.period = 100;
  params.min_ps = 3;
  params.min_rec = 2;
  // With per covering the whole span, nothing can recur twice.
  RpGrowthResult result = MineRecurringPatterns(PaperExampleDb(), params);
  EXPECT_TRUE(result.patterns.empty());
}

TEST(RpGrowthTest, EveryEmittedPatternVerifiesAgainstDefinitions) {
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  RpGrowthResult result = MineRecurringPatterns(db, params);
  for (const RecurringPattern& p : result.patterns) {
    EXPECT_EQ(rpm::testing::VerifyPatternAgainstDb(db, params, p), "")
        << p.ToString();
  }
}

TEST(RpGrowthTest, ResultsAreInCanonicalOrder) {
  RpGrowthResult result =
      MineRecurringPatterns(PaperExampleDb(), PaperExampleParams());
  for (size_t i = 1; i < result.patterns.size(); ++i) {
    EXPECT_LT(result.patterns[i - 1].items, result.patterns[i].items);
  }
}

TEST(RpGrowthTest, NoiseTolerantModeBridgesPlantedGap) {
  // Item X fires every timestamp 1..6 and 9..14 with a single hole; with
  // per=1 and one allowed violation the two runs merge.
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (Timestamp ts : {1, 2, 3, 4, 5, 6, 9, 10, 11, 12, 13, 14}) {
    rows.push_back({ts, {A}});
  }
  TransactionDatabase db = MakeDatabase(rows);
  RpParams strict;
  strict.period = 1;
  strict.min_ps = 10;
  strict.min_rec = 1;
  EXPECT_TRUE(MineRecurringPatterns(db, strict).patterns.empty());

  RpParams tolerant = strict;
  tolerant.max_gap_violations = 1;
  RpGrowthResult result = MineRecurringPatterns(db, tolerant);
  ASSERT_EQ(result.patterns.size(), 1u);
  EXPECT_EQ(result.patterns[0].intervals.size(), 1u);
  EXPECT_EQ(result.patterns[0].intervals[0], (PeriodicInterval{1, 14, 12}));
}

TEST(RpGrowthDeathTest, InvalidParamsAbort) {
  RpParams bad;
  bad.min_ps = 0;
  EXPECT_DEATH(MineRecurringPatterns(PaperExampleDb(), bad), "Check failed");
}

}  // namespace
}  // namespace rpm
