#include "rpm/analysis/frequency_series.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm::analysis {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::PaperExampleDb;

TEST(BucketedFrequencyTest, BucketOfOneGivesPerTimestampCounts) {
  TransactionDatabase db = PaperExampleDb();
  std::vector<size_t> series = BucketedFrequency(db, A, 1);
  // Buckets 1..14 -> indices 0..13; 'a' at 1,2,3,4,7,11,12,14.
  ASSERT_EQ(series.size(), 14u);
  EXPECT_EQ(series[0], 1u);
  EXPECT_EQ(series[3], 1u);
  EXPECT_EQ(series[4], 0u);   // ts 5.
  EXPECT_EQ(series[7], 0u);   // ts 8 absent entirely.
  EXPECT_EQ(series[13], 1u);  // ts 14.
}

TEST(BucketedFrequencyTest, WiderBucketsAggregate) {
  TransactionDatabase db = PaperExampleDb();
  std::vector<size_t> series = BucketedFrequency(db, A, 7);
  // Buckets: ts 1..6 -> bucket 0, 7..13 -> 1, 14 -> 2.
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0], 4u);  // a at 1,2,3,4.
  EXPECT_EQ(series[1], 3u);  // a at 7,11,12.
  EXPECT_EQ(series[2], 1u);  // a at 14.
}

TEST(BucketedFrequencyTest, SeriesTotalEqualsSupport) {
  TransactionDatabase db = PaperExampleDb();
  for (ItemId item = 0; item < 7; ++item) {
    for (Timestamp bucket : {1, 2, 5}) {
      std::vector<size_t> series = BucketedFrequency(db, item, bucket);
      size_t total = 0;
      for (size_t v : series) total += v;
      EXPECT_EQ(total, db.SupportOf({item}));
    }
  }
}

TEST(BucketedPatternFrequencyTest, JointOccurrences) {
  TransactionDatabase db = PaperExampleDb();
  std::vector<size_t> series = BucketedPatternFrequency(db, {A, B}, 14);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0] + series[1], 7u);  // Sup(ab) = 7.
}

TEST(BucketedFrequencyTest, EmptyDatabase) {
  EXPECT_TRUE(BucketedFrequency(TransactionDatabase{}, A, 5).empty());
}

TEST(RenderAsciiSeriesTest, EmptyAndZero) {
  EXPECT_EQ(RenderAsciiSeries({}), "");
  EXPECT_EQ(RenderAsciiSeries({0, 0, 0}), "   ");
}

TEST(RenderAsciiSeriesTest, PeaksGetDensestGlyph) {
  std::string art = RenderAsciiSeries({0, 1, 10});
  ASSERT_EQ(art.size(), 3u);
  EXPECT_EQ(art[0], ' ');
  EXPECT_EQ(art[2], '@');
  EXPECT_NE(art[1], ' ');
  EXPECT_NE(art[1], '@');
}

TEST(RenderAsciiSeriesTest, DownsamplesToMaxWidth) {
  std::vector<size_t> series(1000, 1);
  series[500] = 100;
  std::string art = RenderAsciiSeries(series, 50);
  EXPECT_EQ(art.size(), 50u);
  EXPECT_NE(art.find('@'), std::string::npos);
}

TEST(RenderAsciiSeriesTest, NonZeroNeverRendersBlank) {
  std::string art = RenderAsciiSeries({1, 1000});
  EXPECT_NE(art[0], ' ');
}

}  // namespace
}  // namespace rpm::analysis
