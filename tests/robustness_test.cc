// Robustness: parsers on adversarial input (no crashes, clean Status),
// miners on degenerate databases, and miner equivalence on the scaled
// paper datasets.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "rpm/analysis/pattern_set.h"
#include "rpm/common/random.h"
#include "rpm/core/brute_force.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/paper_datasets.h"
#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/timeseries/io/timestamped_csv_io.h"
#include "rpm/timeseries/tdb_builder.h"
#include "test_util.h"

namespace rpm {
namespace {

std::string RandomBytes(Rng* rng, size_t len) {
  std::string s(len, '\0');
  for (char& c : s) {
    c = static_cast<char>(rng->NextUint64(96) + 32);  // Printable-ish.
  }
  return s;
}

TEST(ParserRobustnessTest, TimestampedSpmfNeverCrashesOnGarbage) {
  Rng rng(12345);
  for (int round = 0; round < 200; ++round) {
    std::string text = RandomBytes(&rng, rng.NextUint64(200));
    // Sprinkle in newlines and bars so the parser's paths are exercised.
    for (size_t i = 0; i < text.size(); i += 7) text[i] = '\n';
    for (size_t i = 3; i < text.size(); i += 11) text[i] = '|';
    std::istringstream in(text);
    Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
    if (db.ok()) {
      EXPECT_TRUE(db->Validate().ok());
    }
  }
}

TEST(ParserRobustnessTest, PlainSpmfNeverCrashesOnGarbage) {
  Rng rng(999);
  for (int round = 0; round < 200; ++round) {
    std::string text = RandomBytes(&rng, rng.NextUint64(200));
    std::istringstream in(text);
    Result<TransactionDatabase> db = ReadSpmf(&in);
    if (db.ok()) {
      EXPECT_TRUE(db->Validate().ok());
    }
  }
}

TEST(ParserRobustnessTest, EventCsvNeverCrashesOnGarbage) {
  Rng rng(777);
  for (int round = 0; round < 200; ++round) {
    std::string text = RandomBytes(&rng, rng.NextUint64(200));
    for (size_t i = 0; i < text.size(); i += 5) text[i] = ',';
    for (size_t i = 2; i < text.size(); i += 9) text[i] = '\n';
    std::istringstream in(text);
    Result<EventCsvData> data = ReadEventCsv(&in);
    (void)data;  // Either outcome is fine; crashing is not.
  }
}

TEST(ParserRobustnessTest, RandomDbRoundTripsThroughSpmf) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    rpm::testing::RandomDbSpec spec;
    spec.num_items = 10;
    spec.num_timestamps = 40;
    TransactionDatabase original = rpm::testing::MakeRandomDb(spec, seed);
    std::ostringstream out;
    ASSERT_TRUE(WriteTimestampedSpmf(original, &out).ok());
    std::istringstream in(out.str());
    SpmfParseOptions options;
    options.items_are_ids = true;  // No dictionary: ids written verbatim.
    Result<TransactionDatabase> reread =
        ReadTimestampedSpmf(&in, options);
    ASSERT_TRUE(reread.ok()) << reread.status();
    ASSERT_EQ(reread->size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(reread->transaction(i), original.transaction(i));
    }
  }
}

TEST(MinerRobustnessTest, SingleItemRepeatedEverywhere) {
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (Timestamp ts = 0; ts < 1000; ++ts) rows.push_back({ts, {0}});
  TransactionDatabase db = MakeDatabase(rows);
  RpParams params;
  params.period = 1;
  params.min_ps = 1000;
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(db, params);
  ASSERT_EQ(result.patterns.size(), 1u);
  EXPECT_EQ(result.patterns[0].intervals[0], (PeriodicInterval{0, 999, 1000}));
}

TEST(MinerRobustnessTest, WideTransactionWithLengthCap) {
  // One 40-item transaction: 2^40 subsets qualify at minPS=1; the length
  // cap keeps exploration bounded.
  Itemset wide;
  for (ItemId i = 0; i < 40; ++i) wide.push_back(i);
  TransactionDatabase db = MakeDatabase({{1, wide}, {2, wide}});
  RpParams params;
  params.period = 1;
  params.min_ps = 2;
  params.min_rec = 1;
  RpGrowthOptions options;
  options.max_pattern_length = 2;
  RpGrowthResult result = MineRecurringPatterns(db, params, options);
  // 40 singletons + C(40,2) pairs.
  EXPECT_EQ(result.patterns.size(), 40u + 40u * 39u / 2u);
}

TEST(MinerRobustnessTest, NegativeTimestampsMineCorrectly) {
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (Timestamp ts = -10; ts <= -1; ++ts) rows.push_back({ts, {0}});
  TransactionDatabase db = MakeDatabase(rows);
  RpParams params;
  params.period = 1;
  params.min_ps = 10;
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(db, params);
  ASSERT_EQ(result.patterns.size(), 1u);
  EXPECT_EQ(result.patterns[0].intervals[0], (PeriodicInterval{-10, -1, 10}));
}

TEST(MinerRobustnessTest, HugeTimestampsNoOverflow) {
  const Timestamp base = INT64_MAX / 2;
  TransactionDatabase db = MakeDatabase(
      {{base, {0}}, {base + 5, {0}}, {base + 10, {0}}});
  RpParams params;
  params.period = 5;
  params.min_ps = 3;
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(db, params);
  ASSERT_EQ(result.patterns.size(), 1u);
  EXPECT_EQ(result.patterns[0].support, 3u);
}

TEST(PaperDatasetEquivalenceTest, Shop14MiniAllMinersAgree) {
  gen::GeneratedClickstream shop = gen::MakeShop14(0.01, 77);
  RpParams params;
  params.period = 120;
  params.min_ps = 20;
  params.min_rec = 1;
  RpGrowthResult growth = MineRecurringPatterns(shop.db, params);
  VerticalMinerResult vertical = MineVertical(shop.db, params);
  EXPECT_TRUE(SamePatternSets(growth.patterns, vertical.patterns))
      << growth.patterns.size() << " vs " << vertical.patterns.size();
}

TEST(PaperDatasetEquivalenceTest, TwitterMiniAllMinersAgree) {
  gen::GeneratedHashtagStream tw = gen::MakeTwitter(0.01, 88);
  RpParams params;
  params.period = 60;
  params.min_ps = 25;
  params.min_rec = 1;
  RpGrowthResult growth = MineRecurringPatterns(tw.db, params);
  VerticalMinerResult vertical = MineVertical(tw.db, params);
  EXPECT_TRUE(SamePatternSets(growth.patterns, vertical.patterns));
}

TEST(PaperDatasetEquivalenceTest, QuestMiniAllMinersAgree) {
  TransactionDatabase quest = gen::MakeT10I4D100K(0.01, 99);
  RpParams params;
  params.period = 30;
  params.min_ps = 5;
  params.min_rec = 2;
  RpGrowthResult growth = MineRecurringPatterns(quest, params);
  VerticalMinerResult vertical = MineVertical(quest, params);
  EXPECT_TRUE(SamePatternSets(growth.patterns, vertical.patterns));
}

}  // namespace
}  // namespace rpm
