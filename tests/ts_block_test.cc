// Property tests for the columnar ts-list kernels (core/ts_block.h) and
// the masked measures overloads (core/measures.h): every compiled kernel
// variant and the masked fused gate must be bit-identical to the scalar
// reference on randomized and adversarial inputs.

#include "rpm/core/ts_block.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "rpm/common/cpu_features.h"
#include "rpm/common/random.h"
#include "rpm/core/measures.h"
#include "rpm/core/time_gap.h"

namespace rpm {
namespace {

constexpr Timestamp kMin = std::numeric_limits<Timestamp>::min();
constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();

/// Sorted ascending list of `n` timestamps with gaps drawn around
/// `period` so break bits are a real mix (not all-zero / all-one).
/// Duplicates allowed when `dupes` is set (a zero gap is never a break).
TimestampList RandomSortedList(Rng* rng, size_t n, uint64_t period,
                               bool dupes) {
  TimestampList ts;
  ts.reserve(n);
  Timestamp cur = static_cast<Timestamp>(rng->NextInt64(-1000000, 1000000));
  for (size_t i = 0; i < n; ++i) {
    ts.push_back(cur);
    uint64_t gap = rng->NextUint64(2 * period + 2);
    if (!dupes && gap == 0) gap = 1;
    cur = static_cast<Timestamp>(static_cast<uint64_t>(cur) + gap);
  }
  return ts;
}

/// Bit-for-bit expectation straight from the scalar gap helpers.
std::vector<uint64_t> ReferenceMasks(const TimestampList& ts,
                                     uint64_t period) {
  std::vector<uint64_t> masks(TsBlockWords(ts.size()), 0);
  for (size_t g = 0; g + 1 < ts.size(); ++g) {
    if (TimestampGap(ts[g], ts[g + 1]) > period) {
      masks[g >> 6] |= uint64_t{1} << (g & 63);
    }
  }
  return masks;
}

/// Runs every compiled variant the hardware admits (plus the dispatched
/// entry point) against the reference, with poisoned output buffers so
/// unwritten words and stale trailing bits get caught.
void ExpectAllVariantsMatch(const TimestampList& ts, uint64_t period) {
  ASSERT_GE(ts.size(), 2u);
  const std::vector<uint64_t> want = ReferenceMasks(ts, period);
  const SimdLevel hw = HardwareSimdLevel();
  struct Variant {
    const char* name;
    SimdLevel level;
    void (*fn)(const Timestamp*, size_t, uint64_t, uint64_t*);
  };
  const Variant variants[] = {
      {"scalar", SimdLevel::kScalar, ComputeBreakMasksScalar},
      {"sse2", SimdLevel::kSse2, ComputeBreakMasksSse2},
      {"avx2", SimdLevel::kAvx2, ComputeBreakMasksAvx2},
      {"dispatched", SimdLevel::kScalar, ComputeBreakMasks},
  };
  for (const Variant& v : variants) {
    if (hw < v.level) continue;
    std::vector<uint64_t> got(want.size(), ~uint64_t{0});
    v.fn(ts.data(), ts.size(), period, got.data());
    EXPECT_EQ(got, want) << v.name << " kernel, n=" << ts.size()
                         << " period=" << period;
  }
}

TEST(TsBlockTest, WordArithmetic) {
  EXPECT_EQ(TsBlockWords(0), 0u);
  EXPECT_EQ(TsBlockWords(1), 0u);
  EXPECT_EQ(TsBlockWords(2), 1u);
  EXPECT_EQ(TsBlockWords(65), 1u);   // 64 gaps.
  EXPECT_EQ(TsBlockWords(66), 2u);   // 65 gaps.
  EXPECT_EQ(TsBlockWords(129), 2u);  // 128 gaps.
  EXPECT_EQ(TsBlockWords(130), 3u);
}

TEST(TsBlockTest, BreakMasksMatchScalarOnRandomLists) {
  Rng rng(20260808);
  // Lengths straddle every boundary the kernels care about: vector-lane
  // tails (±1 around multiples of 2 and 4) and mask-word edges (64/65).
  const size_t lengths[] = {2,  3,  4,  5,  7,  8,   9,   31,  32, 33,
                            63, 64, 65, 66, 96, 127, 128, 129, 257};
  const uint64_t periods[] = {1, 2, 3, 7, 100};
  for (size_t n : lengths) {
    for (uint64_t period : periods) {
      for (bool dupes : {false, true}) {
        ExpectAllVariantsMatch(RandomSortedList(&rng, n, period, dupes),
                               period);
      }
    }
  }
}

TEST(TsBlockTest, BreakMasksAdversarialExtremes) {
  // Timestamps straddling most of the int64 range: the gaps overflow
  // int64 (the PR 3 UB class) and must still compare correctly as u64.
  const TimestampList straddle = {kMin, kMin + 1, -2, 0, 1,
                                  kMax - 3, kMax - 1, kMax};
  for (uint64_t period :
       {uint64_t{1}, uint64_t{1000}, static_cast<uint64_t>(kMax)}) {
    ExpectAllVariantsMatch(straddle, period);
  }
  // All gaps equal the period exactly: <= is not <, so no breaks.
  TimestampList exact;
  for (int i = 0; i < 130; ++i) exact.push_back(static_cast<Timestamp>(7 * i));
  ExpectAllVariantsMatch(exact, 7);
  std::vector<uint64_t> masks(TsBlockWords(exact.size()), ~uint64_t{0});
  ComputeBreakMasks(exact.data(), exact.size(), 7, masks.data());
  for (uint64_t word : masks) EXPECT_EQ(word, 0u);
  // Gaps of period + 1 everywhere: every gap breaks, and the bits past
  // the last gap must still be zero.
  TimestampList broken;
  for (int i = 0; i < 100; ++i) broken.push_back(static_cast<Timestamp>(8 * i));
  ComputeBreakMasks(broken.data(), broken.size(), 7, masks.data());
  ASSERT_EQ(TsBlockWords(broken.size()), 2u);
  EXPECT_EQ(masks[0], ~uint64_t{0});
  EXPECT_EQ(masks[1], (uint64_t{1} << 35) - 1);  // 99 gaps: bits 64..98.
}

TEST(TsBlockTest, DeltasMatchScalar) {
  Rng rng(77);
  const SimdLevel hw = HardwareSimdLevel();
  for (size_t n : {2u, 5u, 64u, 65u, 200u}) {
    const TimestampList ts = RandomSortedList(&rng, n, 10, true);
    std::vector<uint64_t> want(n - 1);
    for (size_t g = 0; g + 1 < n; ++g) want[g] = TimestampGap(ts[g], ts[g + 1]);
    std::vector<uint64_t> got(n - 1, ~uint64_t{0});
    ComputeDeltasScalar(ts.data(), n, got.data());
    EXPECT_EQ(got, want);
    if (hw >= SimdLevel::kSse2) {
      got.assign(n - 1, ~uint64_t{0});
      ComputeDeltasSse2(ts.data(), n, got.data());
      EXPECT_EQ(got, want);
    }
    if (hw >= SimdLevel::kAvx2) {
      got.assign(n - 1, ~uint64_t{0});
      ComputeDeltasAvx2(ts.data(), n, got.data());
      EXPECT_EQ(got, want);
    }
    got.assign(n - 1, ~uint64_t{0});
    ComputeDeltas(ts.data(), n, got.data());
    EXPECT_EQ(got, want);
  }
}

/// The masked fused gate against the scalar one, exact and tolerant
/// models, across the crossover threshold in both directions.
TEST(TsBlockTest, MaskedGateMatchesScalarGate) {
  Rng rng(424242);
  TsBlockScratch scratch;
  std::vector<PeriodicInterval> masked;
  std::vector<PeriodicInterval> scalar;
  for (size_t n : {1u, 2u, 16u, 31u, 32u, 33u, 64u, 65u, 127u, 300u}) {
    for (uint64_t period : {uint64_t{1}, uint64_t{3}, uint64_t{9}}) {
      for (uint32_t tolerance : {0u, 1u, 3u}) {
        for (int rep = 0; rep < 8; ++rep) {
          TimestampList ts = RandomSortedList(&rng, n, period, false);
          RpParams params;
          params.period = static_cast<Timestamp>(period);
          params.min_ps = 1 + rng.NextUint64(4);
          params.min_rec = 1 + rng.NextUint64(3);
          params.max_gap_violations = tolerance;
          const GateOutcome m =
              ComputeGateAndIntervals(ts, params, &masked, &scratch, nullptr);
          const GateOutcome s = ComputeGateAndIntervals(ts, params, &scalar);
          EXPECT_EQ(m.passes, s.passes);
          EXPECT_EQ(m.recurrence_upper_bound, s.recurrence_upper_bound);
          EXPECT_EQ(masked, scalar)
              << "n=" << n << " per=" << period << " tol=" << tolerance
              << " minPS=" << params.min_ps << " minRec=" << params.min_rec;
          EXPECT_EQ(ComputeRecurrenceUpperBound(ts, params, &scratch, nullptr),
                    ComputeRecurrenceUpperBound(ts, params));
        }
      }
    }
  }
}

TEST(TsBlockTest, MaskedGateAdversarialExtremes) {
  TsBlockScratch scratch;
  std::vector<PeriodicInterval> masked;
  std::vector<PeriodicInterval> scalar;
  // Long straddling list: alternating tight runs and int64-overflowing
  // gaps, crossing the masked-path threshold so the kernels really run.
  TimestampList ts;
  Timestamp cur = kMin;
  for (int run = 0; run < 10; ++run) {
    for (int i = 0; i < 7; ++i) {
      ts.push_back(cur);
      cur += 2;
    }
    // Jump across a tenth of the u64 span (cannot be <= any valid period).
    cur = static_cast<Timestamp>(static_cast<uint64_t>(cur) +
                                 (~uint64_t{0} / 12));
  }
  for (uint64_t min_ps : {uint64_t{1}, uint64_t{7}, uint64_t{8}}) {
    for (uint32_t tolerance : {0u, 2u}) {
      RpParams params;
      params.period = 2;
      params.min_ps = min_ps;
      params.min_rec = 1;
      params.max_gap_violations = tolerance;
      const GateOutcome m =
          ComputeGateAndIntervals(ts, params, &masked, &scratch, nullptr);
      const GateOutcome s = ComputeGateAndIntervals(ts, params, &scalar);
      EXPECT_EQ(m.passes, s.passes);
      EXPECT_EQ(m.recurrence_upper_bound, s.recurrence_upper_bound);
      EXPECT_EQ(masked, scalar) << "minPS=" << min_ps << " tol=" << tolerance;
    }
  }
}

TEST(TsBlockTest, GateCountersAccountScans) {
  TsBlockScratch scratch;
  GateCounters counters;
  std::vector<PeriodicInterval> intervals;
  RpParams params;
  params.period = 3;
  params.min_ps = 2;
  params.min_rec = 1;
  Rng rng(5);
  const TimestampList long_list = RandomSortedList(&rng, 201, 3, false);
  ComputeGateAndIntervals(long_list, params, &intervals, &scratch, &counters);
  EXPECT_EQ(counters.lists_scanned, 1u);
  EXPECT_EQ(counters.gaps_scanned, 200u);
  const size_t lanes = static_cast<size_t>(SimdGapLanes(ActiveSimdLevel()));
  EXPECT_EQ(counters.gaps_simd, lanes <= 1 ? 0u : 200 / lanes * lanes);
  // Short lists fall back to the scalar loop but still count the volume.
  const TimestampList short_list = RandomSortedList(&rng, 10, 3, false);
  ComputeGateAndIntervals(short_list, params, &intervals, &scratch, &counters);
  EXPECT_EQ(counters.lists_scanned, 2u);
  EXPECT_EQ(counters.gaps_scanned, 209u);
  EXPECT_EQ(counters.gaps_simd, lanes <= 1 ? 0u : 200 / lanes * lanes);
}

TEST(TsBlockTest, ScratchFootprintTracksCapacity) {
  TsBlockScratch scratch;
  EXPECT_EQ(scratch.ByteFootprint(), 0u);
  scratch.break_masks.resize(16);
  EXPECT_GE(scratch.ByteFootprint(), 16 * sizeof(uint64_t));
}

}  // namespace
}  // namespace rpm
