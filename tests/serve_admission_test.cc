// serve/admission.h invariants A1-A4 (documented in the header): caps are
// never exceeded even under concurrent admits, full queues reject
// immediately with load-scaled retry hints, Shutdown() wakes every parked
// waiter, and RAII tickets cannot leak slots.

#include "rpm/serve/admission.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "rpm/serve/tenant_registry.h"

namespace rpm::serve {
namespace {

using Outcome = AdmissionController::Outcome;

TenantRegistry RegistryWith(uint64_t max_concurrent, uint64_t max_queued) {
  TenantQuotas quotas;
  quotas.max_concurrent = max_concurrent;
  quotas.max_queued = max_queued;
  return TenantRegistry(quotas);
}

/// Polls until `predicate` holds (bounded); keeps tests free of sleeps
/// calibrated to scheduler luck.
template <typename Pred>
bool EventuallyTrue(Pred predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(Admission, TenantCapRejectsImmediatelyWhenQueueFull) {
  TenantRegistry tenants = RegistryWith(/*max_concurrent=*/1,
                                        /*max_queued=*/0);
  AdmissionController::Options options;
  options.retry_after_base_ms = 50;
  AdmissionController controller(options, &tenants);

  AdmissionController::Decision first = controller.Admit("a");
  ASSERT_EQ(first.outcome, Outcome::kAdmitted);
  EXPECT_TRUE(first.ticket.held());
  EXPECT_EQ(controller.running(), 1u);

  // A2: tenant queue full (depth 0) => immediate rejection, no blocking.
  AdmissionController::Decision second = controller.Admit("a");
  EXPECT_EQ(second.outcome, Outcome::kRejected);
  EXPECT_FALSE(second.ticket.held());
  EXPECT_EQ(second.rejected_by, "tenant");
  // hint = base * (1 + running + queued) of the rejecting scope.
  EXPECT_EQ(second.retry_after_ms, 50 * (1 + 1 + 0));

  // Isolation: another tenant still gets a slot.
  AdmissionController::Decision other = controller.Admit("b");
  EXPECT_EQ(other.outcome, Outcome::kAdmitted);

  first.ticket.Release();
  AdmissionController::Decision again = controller.Admit("a");
  EXPECT_EQ(again.outcome, Outcome::kAdmitted);
}

TEST(Admission, GlobalCapRejectsAcrossTenants) {
  TenantRegistry tenants = RegistryWith(/*max_concurrent=*/4,
                                        /*max_queued=*/4);
  AdmissionController::Options options;
  options.global_max_concurrent = 1;
  options.global_max_queued = 0;
  options.retry_after_base_ms = 10;
  AdmissionController controller(options, &tenants);

  AdmissionController::Decision first = controller.Admit("a");
  ASSERT_EQ(first.outcome, Outcome::kAdmitted);

  AdmissionController::Decision second = controller.Admit("b");
  EXPECT_EQ(second.outcome, Outcome::kRejected);
  EXPECT_EQ(second.rejected_by, "global");
  EXPECT_EQ(second.retry_after_ms, 10 * (1 + 1 + 0));

  AdmissionController::Stats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.rejected_global, 1u);
  EXPECT_EQ(stats.rejected_tenant, 0u);
}

TEST(Admission, QueuedWaiterWakesOnRelease) {
  TenantRegistry tenants = RegistryWith(/*max_concurrent=*/1,
                                        /*max_queued=*/1);
  AdmissionController controller(AdmissionController::Options{}, &tenants);

  AdmissionController::Decision first = controller.Admit("a");
  ASSERT_EQ(first.outcome, Outcome::kAdmitted);

  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&] {
    AdmissionController::Decision queued = controller.Admit("a");
    if (queued.outcome == Outcome::kAdmitted) {
      waiter_admitted.store(true);
      queued.ticket.Release();
    }
  });

  // The waiter parks in the queue (both bounds have room), then takes the
  // slot the release frees.
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.stats().queued_total >= 1; }));
  first.ticket.Release();
  waiter.join();
  EXPECT_TRUE(waiter_admitted.load());
  EXPECT_EQ(controller.running(), 0u);
}

TEST(Admission, ShutdownWakesQueuedWaiters) {
  TenantRegistry tenants = RegistryWith(/*max_concurrent=*/1,
                                        /*max_queued=*/2);
  AdmissionController controller(AdmissionController::Options{}, &tenants);

  AdmissionController::Decision holder = controller.Admit("a");
  ASSERT_EQ(holder.outcome, Outcome::kAdmitted);

  std::atomic<int> shutdown_seen{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&] {
      AdmissionController::Decision d = controller.Admit("a");
      if (d.outcome == Outcome::kShutdown) shutdown_seen.fetch_add(1);
    });
  }
  ASSERT_TRUE(EventuallyTrue(
      [&] { return controller.stats().queued_total >= 2; }));

  // A3: both parked waiters wake with kShutdown; none is left behind.
  controller.Shutdown();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(shutdown_seen.load(), 2);

  // Post-shutdown admits return kShutdown without touching the queue.
  AdmissionController::Decision late = controller.Admit("b");
  EXPECT_EQ(late.outcome, Outcome::kShutdown);
  EXPECT_FALSE(late.ticket.held());
}

TEST(Admission, TicketMoveAndDoubleReleaseAreSafe) {
  TenantRegistry tenants = RegistryWith(/*max_concurrent=*/2,
                                        /*max_queued=*/0);
  AdmissionController controller(AdmissionController::Options{}, &tenants);

  AdmissionController::Decision d = controller.Admit("a");
  ASSERT_EQ(d.outcome, Outcome::kAdmitted);

  // A4: moving transfers the obligation; the moved-from ticket is inert
  // and double-release is a no-op.
  AdmissionController::Ticket moved = std::move(d.ticket);
  EXPECT_FALSE(d.ticket.held());
  EXPECT_TRUE(moved.held());
  EXPECT_EQ(controller.running(), 1u);

  moved.Release();
  EXPECT_EQ(controller.running(), 0u);
  moved.Release();
  d.ticket.Release();
  EXPECT_EQ(controller.running(), 0u);

  {
    AdmissionController::Decision scoped = controller.Admit("a");
    ASSERT_EQ(scoped.outcome, Outcome::kAdmitted);
    EXPECT_EQ(controller.running(), 1u);
  }  // Destructor releases.
  EXPECT_EQ(controller.running(), 0u);
}

TEST(Admission, CapsHoldUnderConcurrency) {
  constexpr uint64_t kTenantCap = 2;
  constexpr uint64_t kGlobalCap = 3;
  TenantRegistry tenants = RegistryWith(kTenantCap, /*max_queued=*/8);
  AdmissionController::Options options;
  options.global_max_concurrent = kGlobalCap;
  options.global_max_queued = 32;
  AdmissionController controller(options, &tenants);

  // A1 under contention: instantaneous per-tenant and global occupancy
  // never exceed the caps, measured by the admitted threads themselves.
  std::atomic<uint64_t> global_now{0};
  std::atomic<uint64_t> tenant_now[2] = {{0}, {0}};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      const int tenant_index = t % 2;
      const std::string tenant = tenant_index == 0 ? "even" : "odd";
      for (int i = 0; i < 40; ++i) {
        AdmissionController::Decision d = controller.Admit(tenant);
        if (d.outcome != Outcome::kAdmitted) continue;
        const uint64_t g = global_now.fetch_add(1) + 1;
        const uint64_t p = tenant_now[tenant_index].fetch_add(1) + 1;
        if (g > kGlobalCap || p > kTenantCap) violated.store(true);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        tenant_now[tenant_index].fetch_sub(1);
        global_now.fetch_sub(1);
        d.ticket.Release();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(controller.running(), 0u);
  EXPECT_GT(controller.stats().admitted, 0u);
}

}  // namespace
}  // namespace rpm::serve
