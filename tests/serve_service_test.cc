// QueryService end-to-end, no sockets: one request line in, one
// structured response line out. Covers the full op surface, the cache /
// coalescing / epoch interplay, tenant quota clamping, byte-determinism
// of meta-free replies, and drain semantics.

#include "rpm/serve/service.h"

#include <fstream>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/snapshot_registry.h"
#include "rpm/serve/protocol.h"
#include "rpm/serve/tenant_registry.h"
#include "rpm/serve/wire.h"
#include "test_util.h"

namespace rpm::serve {
namespace {

/// Parses a response line (every response must parse) and returns it.
JsonValue MustParse(const std::string& line) {
  Result<JsonValue> v = ParseJson(line);
  EXPECT_TRUE(v.ok()) << "unparseable response: " << line;
  return v.ok() ? std::move(*v) : JsonValue{};
}

std::string StatusOf(const JsonValue& response) {
  const JsonValue* status = response.Find("status");
  return status != nullptr ? status->string_value : "<missing>";
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .Register("paper", engine::DatasetSnapshot::Create(
                                           rpm::testing::PaperExampleDb()))
                    .ok());
  }

  QueryService MakeService(TenantQuotas quotas = {},
                           QueryService::Options options = {}) {
    return QueryService(&registry_, TenantRegistry(quotas), options);
  }

  /// The paper's running-example query (Table 2: 6 patterns).
  static std::string PaperQuery(const std::string& id,
                                const std::string& extra = "") {
    return "{\"op\":\"query\",\"id\":\"" + id +
           "\",\"dataset\":\"paper\",\"per\":2,\"min_ps\":3,"
           "\"min_rec\":2" + extra + "}";
  }

  engine::SnapshotRegistry registry_;
};

TEST_F(ServiceTest, PingEchoesIdWithOk) {
  QueryService service = MakeService();
  JsonValue r =
      MustParse(service.HandleLine("{\"op\":\"ping\",\"id\":\"p1\"}"));
  EXPECT_EQ(StatusOf(r), "OK");
  EXPECT_EQ(r.Find("id")->string_value, "p1");
}

TEST_F(ServiceTest, MalformedAndUnknownInputsAreStructuredErrors) {
  QueryService service = MakeService();
  EXPECT_EQ(StatusOf(MustParse(service.HandleLine("{broken"))),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusOf(MustParse(service.HandleLine("{\"op\":\"nope\"}"))),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusOf(MustParse(service.HandleLine(PaperQuery("q").replace(
                PaperQuery("q").find("paper"), 5, "ghost")))),
            "NOT_FOUND");
  // Oversized line: rejected before parsing, still one response line.
  std::string huge(kMaxJsonBytes + 1, 'x');
  EXPECT_EQ(StatusOf(MustParse(service.HandleLine(huge))),
            "INVALID_ARGUMENT");
}

TEST_F(ServiceTest, QueryMatchesPaperExampleAndCaches) {
  QueryService service = MakeService();
  JsonValue first = MustParse(service.HandleLine(PaperQuery("q1")));
  ASSERT_EQ(StatusOf(first), "OK");
  EXPECT_EQ(first.Find("pattern_count")->integer,
            static_cast<int64_t>(rpm::testing::PaperExamplePatterns().size()));
  EXPECT_FALSE(first.Find("truncated")->bool_value);
  const JsonValue* meta = first.Find("meta");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->Find("cache")->string_value, "miss");
  EXPECT_EQ(meta->Find("epoch")->integer, 1);
  EXPECT_EQ(meta->Find("backend")->string_value, "sequential");

  // The patterns_json field unescapes to non-empty JSON (the exact bytes
  // `rpminer mine --output-format=json` writes; pinned in the soak).
  EXPECT_NE(first.Find("patterns_json")->string_value.find("\"items\""),
            std::string::npos);

  JsonValue second = MustParse(service.HandleLine(PaperQuery("q2")));
  EXPECT_EQ(second.Find("meta")->Find("cache")->string_value, "hit");
  EXPECT_EQ(service.cache_stats().hits, 1u);
  EXPECT_EQ(service.cache_stats().misses, 1u);
}

TEST_F(ServiceTest, MetaFreeRepliesAreByteIdenticalAcrossCacheStates) {
  QueryService service = MakeService();
  const std::string request = PaperQuery("q", ",\"meta\":false");
  const std::string computed = service.HandleLine(request);
  const std::string cached = service.HandleLine(request);
  // The determinism contract the fault campaign byte-compares on: the
  // reply must not betray whether it was computed or served from cache.
  EXPECT_EQ(computed, cached);
  EXPECT_EQ(MustParse(computed).Find("meta"), nullptr);
}

TEST_F(ServiceTest, BackendsAgreeOnTheWire) {
  QueryService service = MakeService();
  const std::string sequential =
      service.HandleLine(PaperQuery("q", ",\"meta\":false"));
  // Different backend => same cache key => served as a hit; flush the
  // comparison through a fresh service to force both to compute.
  QueryService fresh = MakeService();
  const std::string parallel = fresh.HandleLine(PaperQuery(
      "q", ",\"meta\":false,\"backend\":\"parallel\",\"threads\":2"));
  EXPECT_EQ(sequential, parallel);
}

TEST_F(ServiceTest, TruncatedResultsAreNeverCached) {
  TenantQuotas quotas;
  quotas.max_patterns = 1;  // Every query is clamped to one pattern.
  QueryService service = MakeService(quotas);
  JsonValue first = MustParse(service.HandleLine(PaperQuery("q1")));
  ASSERT_EQ(StatusOf(first), "OK");
  EXPECT_TRUE(first.Find("truncated")->bool_value);
  // Prefix-commit semantics: the cap keeps strictly fewer patterns than
  // the full answer (Table 2 has 6).
  EXPECT_LT(first.Find("pattern_count")->integer,
            static_cast<int64_t>(rpm::testing::PaperExamplePatterns().size()));
  // The truncated payload reflects this tenant's budget, so the repeat
  // must recompute, not hit.
  JsonValue second = MustParse(service.HandleLine(PaperQuery("q2")));
  EXPECT_EQ(second.Find("meta")->Find("cache")->string_value, "miss");
  EXPECT_EQ(service.cache_stats().hits, 0u);
}

TEST_F(ServiceTest, SwapBumpsEpochAndInvalidatesCache) {
  QueryService service = MakeService();
  ASSERT_EQ(StatusOf(MustParse(service.HandleLine(PaperQuery("q1")))),
            "OK");

  // Hot-swap "paper" for a 3-transaction dataset written on the fly.
  const std::string path = ::testing::TempDir() + "/serve_swap.tspmf";
  {
    std::ofstream out(path);
    out << "1|a b\n3|a b\n5|a b\n";
  }
  JsonValue swap = MustParse(service.HandleLine(
      "{\"op\":\"swap\",\"id\":\"s1\",\"dataset\":\"paper\",\"path\":\"" +
      path + "\"}"));
  ASSERT_EQ(StatusOf(swap), "OK");
  EXPECT_EQ(swap.Find("epoch")->integer, 2);
  EXPECT_EQ(swap.Find("transactions")->integer, 3);

  // Same query shape, new epoch: the old cache entry can never match.
  JsonValue requery = MustParse(service.HandleLine(PaperQuery("q2")));
  ASSERT_EQ(StatusOf(requery), "OK");
  EXPECT_EQ(requery.Find("meta")->Find("cache")->string_value, "miss");
  EXPECT_EQ(requery.Find("meta")->Find("epoch")->integer, 2);

  // Swapping a fresh name registers it (register-or-swap).
  JsonValue add = MustParse(service.HandleLine(
      "{\"op\":\"swap\",\"id\":\"s2\",\"dataset\":\"tiny\",\"path\":\"" +
      path + "\"}"));
  ASSERT_EQ(StatusOf(add), "OK");
  EXPECT_EQ(add.Find("epoch")->integer, 1);
  JsonValue list =
      MustParse(service.HandleLine("{\"op\":\"list\",\"id\":\"l1\"}"));
  EXPECT_EQ(list.Find("datasets")->array.size(), 2u);

  // Bad path: structured error, catalog untouched.
  JsonValue bad = MustParse(service.HandleLine(
      "{\"op\":\"swap\",\"id\":\"s3\",\"dataset\":\"paper\","
      "\"path\":\"/nonexistent/x.tspmf\"}"));
  EXPECT_NE(StatusOf(bad), "OK");
  EXPECT_EQ(registry_.size(), 2u);
}

TEST_F(ServiceTest, StatsReportsCountersAndDrainState) {
  QueryService service = MakeService();
  service.HandleLine(PaperQuery("q1"));
  JsonValue stats =
      MustParse(service.HandleLine("{\"op\":\"stats\",\"id\":\"st\"}"));
  ASSERT_EQ(StatusOf(stats), "OK");
  EXPECT_EQ(stats.Find("admission")->Find("admitted")->integer, 1);
  EXPECT_EQ(stats.Find("cache")->Find("misses")->integer, 1);
  EXPECT_EQ(stats.Find("datasets")->integer, 1);
  EXPECT_FALSE(stats.Find("draining")->bool_value);
}

TEST_F(ServiceTest, DrainRejectsNewWorkButStaysStructured) {
  QueryService service = MakeService();
  service.BeginDrain();
  EXPECT_TRUE(service.draining());

  // Queries and swaps get UNAVAILABLE; ping and stats stay live so
  // operators can watch the drain finish.
  EXPECT_EQ(StatusOf(MustParse(service.HandleLine(PaperQuery("q")))),
            "UNAVAILABLE");
  EXPECT_EQ(StatusOf(MustParse(service.HandleLine(
                "{\"op\":\"swap\",\"dataset\":\"paper\",\"path\":\"x\"}"))),
            "UNAVAILABLE");
  EXPECT_EQ(StatusOf(MustParse(
                service.HandleLine("{\"op\":\"ping\",\"id\":\"p\"}"))),
            "OK");
  JsonValue stats =
      MustParse(service.HandleLine("{\"op\":\"stats\",\"id\":\"st\"}"));
  EXPECT_TRUE(stats.Find("draining")->bool_value);
  EXPECT_EQ(service.in_flight(), 0u);

  // Idempotent.
  service.BeginDrain();
  EXPECT_TRUE(service.draining());
}

TEST_F(ServiceTest, WindowedBackendServesOnTheWire) {
  QueryService service = MakeService();
  const std::string line = service.HandleLine(PaperQuery(
      "w1", ",\"backend\":\"windowed\",\"window\":20,\"delta\":4"));
  JsonValue r = MustParse(line);
  ASSERT_EQ(StatusOf(r), "OK") << line;
  EXPECT_EQ(r.Find("pattern_count")->integer,
            static_cast<int64_t>(rpm::testing::PaperExamplePatterns().size()));
  // Window/delta are part of the cache key: a different delta re-mines.
  JsonValue other = MustParse(service.HandleLine(PaperQuery(
      "w2", ",\"backend\":\"windowed\",\"window\":20,\"delta\":2")));
  EXPECT_EQ(other.Find("meta")->Find("cache")->string_value, "miss");
}

}  // namespace
}  // namespace rpm::serve
