#include "rpm/gen/quest_generator.h"

#include <gtest/gtest.h>

#include "rpm/timeseries/database_stats.h"

namespace rpm::gen {
namespace {

QuestParams SmallParams() {
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 120;
  params.num_patterns = 80;
  params.seed = 5;
  return params;
}

TEST(QuestGeneratorTest, DeterministicForSameSeed) {
  TransactionDatabase a = GenerateQuest(SmallParams());
  TransactionDatabase b = GenerateQuest(SmallParams());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.transaction(i).ts, b.transaction(i).ts);
    EXPECT_EQ(a.transaction(i).items, b.transaction(i).items);
  }
}

TEST(QuestGeneratorTest, DifferentSeedsDiffer) {
  QuestParams p1 = SmallParams();
  QuestParams p2 = SmallParams();
  p2.seed = 6;
  TransactionDatabase a = GenerateQuest(p1);
  TransactionDatabase b = GenerateQuest(p2);
  bool any_diff = a.size() != b.size();
  for (size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a.transaction(i).items != b.transaction(i).items;
  }
  EXPECT_TRUE(any_diff);
}

TEST(QuestGeneratorTest, ProducesRequestedTransactionCount) {
  TransactionDatabase db = GenerateQuest(SmallParams());
  EXPECT_EQ(db.size(), 2000u);
}

TEST(QuestGeneratorTest, TimestampsAreUnitSpacedFromOne) {
  TransactionDatabase db = GenerateQuest(SmallParams());
  EXPECT_EQ(db.start_ts(), 1);
  EXPECT_EQ(db.end_ts(), 2000);
}

TEST(QuestGeneratorTest, AverageLengthNearT) {
  QuestParams params = SmallParams();
  params.num_transactions = 5000;
  DatabaseStats stats = ComputeStats(GenerateQuest(params));
  // Dedup within transactions pulls the mean a bit under T=10.
  EXPECT_GT(stats.avg_transaction_length, 6.0);
  EXPECT_LT(stats.avg_transaction_length, 14.0);
}

TEST(QuestGeneratorTest, UsesMostOfTheItemUniverse) {
  DatabaseStats stats = ComputeStats(GenerateQuest(SmallParams()));
  EXPECT_GT(stats.num_distinct_items, 60u);
  EXPECT_LE(stats.num_distinct_items, 120u);
}

TEST(QuestGeneratorTest, ItemPopularityIsSkewed) {
  DatabaseStats stats = ComputeStats(GenerateQuest(SmallParams()));
  size_t max_sup = 0, nonzero = 0;
  size_t total = 0;
  for (size_t s : stats.item_supports) {
    max_sup = std::max(max_sup, s);
    total += s;
    nonzero += s > 0 ? 1 : 0;
  }
  const double mean = static_cast<double>(total) / nonzero;
  EXPECT_GT(static_cast<double>(max_sup), 3.0 * mean);
}

TEST(QuestGeneratorTest, DatabaseValidates) {
  EXPECT_TRUE(GenerateQuest(SmallParams()).Validate().ok());
}

TEST(QuestGeneratorDeathTest, RejectsDegenerateParams) {
  QuestParams params = SmallParams();
  params.num_transactions = 0;
  EXPECT_DEATH(GenerateQuest(params), "Check failed");
}

}  // namespace
}  // namespace rpm::gen
