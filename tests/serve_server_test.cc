// TCP layer of the query server: real loopback sockets through LineClient.
// Covers session concurrency, the session cap, clean drain, saturation
// (every response is still one well-formed line), and the four serve.*
// failpoints — each fault closes ONE connection while the listener and
// every other session keep serving.

#include "rpm/serve/server.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "rpm/engine/dataset_snapshot.h"
#include "rpm/engine/snapshot_registry.h"
#include "rpm/serve/client.h"
#include "rpm/serve/service.h"
#include "rpm/serve/wire.h"
#include "rpm/verify/fault_injection.h"
#include "test_util.h"

namespace rpm::serve {
namespace {

constexpr const char* kPing = "{\"op\":\"ping\",\"id\":\"p\"}";
constexpr const char* kQuery =
    "{\"op\":\"query\",\"id\":\"q\",\"dataset\":\"paper\",\"per\":2,"
    "\"min_ps\":3,\"min_rec\":2,\"meta\":false}";

std::string StatusOf(const std::string& line) {
  Result<JsonValue> v = ParseJson(line);
  if (!v.ok()) return "<unparseable: " + line + ">";
  const JsonValue* status = v->Find("status");
  return status != nullptr ? status->string_value : "<missing status>";
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(QueryService::Options service_options = {},
                   Server::Options server_options = {},
                   TenantQuotas quotas = {}) {
    ASSERT_TRUE(registry_
                    .Register("paper", engine::DatasetSnapshot::Create(
                                           rpm::testing::PaperExampleDb()))
                    .ok());
    service_ = std::make_unique<QueryService>(
        &registry_, TenantRegistry(quotas), service_options);
    server_ = std::make_unique<Server>(service_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  LineClient MustConnect() {
    Result<LineClient> client = LineClient::Connect(server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : LineClient();
  }

  engine::SnapshotRegistry registry_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingAndQueryRoundTrip) {
  StartServer();
  LineClient client = MustConnect();
  Result<std::string> pong = client.Call(kPing);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(StatusOf(*pong), "OK");

  Result<std::string> result = client.Call(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(StatusOf(*result), "OK");

  // Several requests ride one connection (line protocol, no re-connect).
  Result<std::string> again = client.Call(kQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *result) << "meta-free replies must be byte-stable";

  client.Close();
  EXPECT_EQ(server_->Drain(), 0u);
}

TEST_F(ServerTest, ConcurrentSessionsAllGetIdenticalAnswers) {
  StartServer();
  constexpr int kClients = 4;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &replies] {
      Result<LineClient> client = LineClient::Connect(server_->port());
      if (!client.ok()) return;
      Result<std::string> reply = client->Call(kQuery, /*timeout_ms=*/30000);
      if (reply.ok()) replies[i] = *reply;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(replies[i].empty()) << "client " << i << " got no reply";
    EXPECT_EQ(replies[i], replies[0]);
    EXPECT_EQ(StatusOf(replies[i]), "OK");
  }
  EXPECT_EQ(server_->Drain(), 0u);
}

TEST_F(ServerTest, SessionCapSendsStructuredUnavailable) {
  Server::Options options;
  options.max_sessions = 1;
  StartServer({}, options);
  LineClient first = MustConnect();
  ASSERT_TRUE(first.Call(kPing).ok());  // Session 1 is established.

  LineClient second = MustConnect();
  Result<std::string> line = second.ReadLine();
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(StatusOf(*line), "UNAVAILABLE");
  // ...and then the connection closes (EOF, not a hang).
  EXPECT_EQ(second.ReadLine().status().code(), StatusCode::kIOError);

  // The established session is unaffected.
  Result<std::string> pong = first.Call(kPing);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(StatusOf(*pong), "OK");
  server_->Drain();
}

TEST_F(ServerTest, SaturationYieldsOnlyWellFormedResponses) {
  QueryService::Options service_options;
  service_options.admission.global_max_concurrent = 1;
  service_options.admission.global_max_queued = 0;
  TenantQuotas quotas;
  quotas.max_concurrent = 1;
  quotas.max_queued = 0;
  StartServer(service_options, {}, quotas);

  constexpr int kClients = 4;
  std::atomic<int> ok_count{0};
  std::atomic<int> overloaded_count{0};
  std::atomic<int> other_count{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Result<LineClient> client = LineClient::Connect(server_->port());
      if (!client.ok()) return;
      for (int r = 0; r < 8; ++r) {
        Result<std::string> reply =
            client->Call(kQuery, /*timeout_ms=*/30000);
        if (!reply.ok()) {
          other_count.fetch_add(1);
          continue;
        }
        const std::string status = StatusOf(*reply);
        if (status == "OK") {
          ok_count.fetch_add(1);
        } else if (status == "OVERLOADED") {
          // The rejection carries an actionable backoff hint.
          Result<JsonValue> v = ParseJson(*reply);
          if (!v.ok() || v->Find("retry_after_ms") == nullptr ||
              v->Find("retry_after_ms")->integer <= 0) {
            other_count.fetch_add(1);
          } else {
            overloaded_count.fetch_add(1);
          }
        } else {
          other_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Past saturation the contract is: every request gets exactly one
  // well-formed OK or OVERLOADED line — nothing dropped, nothing mangled.
  EXPECT_EQ(other_count.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_EQ(ok_count.load() + overloaded_count.load(), kClients * 8);
  server_->Drain();
}

TEST_F(ServerTest, DrainStopsAcceptingAndClosesIdleSessions) {
  StartServer();
  LineClient idle = MustConnect();
  ASSERT_TRUE(idle.Call(kPing).ok());

  const uint16_t port = server_->port();
  EXPECT_EQ(server_->Drain(), 0u);
  EXPECT_EQ(server_->active_sessions(), 0u);

  // The listener is gone: new connections are refused.
  EXPECT_FALSE(LineClient::Connect(port).ok());
  // The idle session was closed by the drain, not left hanging.
  EXPECT_EQ(idle.ReadLine(/*timeout_ms=*/2000).status().code(),
            StatusCode::kIOError);
  // Idempotent.
  EXPECT_EQ(server_->Drain(), 0u);
}

// --- serve.* failpoints: one connection dies, the server does not --------

TEST_F(ServerTest, AcceptFaultDropsOneConnectionOnly) {
  StartServer();
  {
    FaultInjectionOptions fault;
    fault.site_filter = "serve.accept";
    fault.fire_on_nth = 1;
    ScopedFaultInjection armed(fault);
    LineClient doomed = MustConnect();
    // Accepted, then dropped: EOF, never a response, never a hang.
    EXPECT_EQ(doomed.Call(kPing).status().code(), StatusCode::kIOError);
  }
  LineClient healthy = MustConnect();
  Result<std::string> pong = healthy.Call(kPing);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(StatusOf(*pong), "OK");
  server_->Drain();
}

TEST_F(ServerTest, SessionAllocFaultSendsUnavailableThenCloses) {
  StartServer();
  {
    FaultInjectionOptions fault;
    fault.site_filter = "serve.session.alloc";
    fault.fire_on_nth = 1;
    ScopedFaultInjection armed(fault);
    LineClient doomed = MustConnect();
    Result<std::string> line = doomed.ReadLine();
    ASSERT_TRUE(line.ok()) << line.status().ToString();
    EXPECT_EQ(StatusOf(*line), "UNAVAILABLE");
    EXPECT_EQ(doomed.ReadLine().status().code(), StatusCode::kIOError);
  }
  LineClient healthy = MustConnect();
  ASSERT_TRUE(healthy.Call(kQuery).ok());
  server_->Drain();
}

TEST_F(ServerTest, ReadAndWriteFaultsCloseOnlyTheFaultedSession) {
  StartServer();
  for (const char* site : {"serve.read", "serve.write"}) {
    {
      FaultInjectionOptions fault;
      fault.site_filter = site;
      fault.fire_on_nth = 1;
      ScopedFaultInjection armed(fault);
      LineClient doomed = MustConnect();
      EXPECT_EQ(doomed.Call(kPing).status().code(), StatusCode::kIOError)
          << site;
    }
    // Disarmed: the next session serves normally (no poisoned state).
    LineClient healthy = MustConnect();
    Result<std::string> reply = healthy.Call(kQuery);
    ASSERT_TRUE(reply.ok()) << site << ": " << reply.status().ToString();
    EXPECT_EQ(StatusOf(*reply), "OK") << site;
  }
  server_->Drain();
}

}  // namespace
}  // namespace rpm::serve
