#include "rpm/common/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace rpm {
namespace {

std::vector<CsvRow> MustReadAll(const std::string& text) {
  std::istringstream in(text);
  Result<std::vector<CsvRow>> rows = ReadAllCsv(&in);
  EXPECT_TRUE(rows.ok()) << rows.status();
  return std::move(rows).ValueOrDie();
}

TEST(CsvReaderTest, SimpleRows) {
  auto rows = MustReadAll("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvReaderTest, MissingTrailingNewline) {
  auto rows = MustReadAll("x,y");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"x", "y"}));
}

TEST(CsvReaderTest, CrLfLineEndings) {
  auto rows = MustReadAll("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvReaderTest, QuotedFieldWithComma) {
  auto rows = MustReadAll("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(CsvReaderTest, EscapedQuote) {
  auto rows = MustReadAll("\"say \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvReaderTest, QuotedNewline) {
  auto rows = MustReadAll("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvReaderTest, EmptyFields) {
  auto rows = MustReadAll(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"", "", ""}));
}

TEST(CsvReaderTest, UnterminatedQuoteIsCorruption) {
  std::istringstream in("\"oops\n");
  Result<std::vector<CsvRow>> rows = ReadAllCsv(&in);
  ASSERT_FALSE(rows.ok());
  EXPECT_TRUE(rows.status().IsCorruption());
}

TEST(CsvReaderTest, EmptyStreamIsDone) {
  std::istringstream in("");
  CsvReader reader(&in);
  CsvRow row;
  bool done = false;
  ASSERT_TRUE(reader.Next(&row, &done).ok());
  EXPECT_TRUE(done);
}

TEST(CsvReaderTest, CustomDelimiter) {
  std::istringstream in("a|b|c\n");
  CsvReader reader(&in, '|');
  CsvRow row;
  bool done = false;
  ASSERT_TRUE(reader.Next(&row, &done).ok());
  EXPECT_EQ(row, (CsvRow{"a", "b", "c"}));
}

TEST(CsvWriterTest, QuotesOnlyWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRow({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvRoundTripTest, WriteThenReadIsIdentity) {
  std::vector<CsvRow> original = {
      {"ts", "item"},
      {"1", "jackets, gloves"},
      {"2", "he said \"buy\""},
      {"3", ""},
  };
  std::ostringstream out;
  CsvWriter writer(&out);
  for (const CsvRow& row : original) writer.WriteRow(row);
  auto parsed = MustReadAll(out.str());
  EXPECT_EQ(parsed, original);
}

}  // namespace
}  // namespace rpm
