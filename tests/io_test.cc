#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/timeseries/io/timestamped_csv_io.h"
#include "rpm/timeseries/tdb_builder.h"
#include "test_util.h"

namespace rpm {
namespace {

TEST(SpmfPlainTest, ReadsLineNumberTimestamps) {
  std::istringstream in("a b g\na c d\n");
  Result<TransactionDatabase> db = ReadSpmf(&in);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(db->size(), 2u);
  EXPECT_EQ(db->transaction(0).ts, 1);
  EXPECT_EQ(db->transaction(1).ts, 2);
  EXPECT_EQ(db->transaction(0).items.size(), 3u);
  EXPECT_EQ(db->dictionary().NameOf(0), "a");
}

TEST(SpmfPlainTest, SkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\n% note\n@meta\na b\n");
  Result<TransactionDatabase> db = ReadSpmf(&in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 1u);
}

TEST(SpmfPlainTest, NumericIdsMode) {
  std::istringstream in("5 3 9\n1 5\n");
  SpmfParseOptions options;
  options.items_are_ids = true;
  Result<TransactionDatabase> db = ReadSpmf(&in, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->transaction(0).items, (Itemset{3, 5, 9}));
  EXPECT_TRUE(db->dictionary().empty());
}

TEST(SpmfPlainTest, RejectsNonNumericInIdsMode) {
  std::istringstream in("5 x\n");
  SpmfParseOptions options;
  options.items_are_ids = true;
  Result<TransactionDatabase> db = ReadSpmf(&in, options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(SpmfTimestampedTest, ParsesExplicitTimestamps) {
  std::istringstream in("1|a b g\n2|a c d\n14|a b g\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(db->size(), 3u);
  EXPECT_EQ(db->transaction(2).ts, 14);
}

TEST(SpmfTimestampedTest, GapsInTimestampsPreserved) {
  std::istringstream in("1|a\n9|a\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->TimestampsOf({0}), (TimestampList{1, 9}));
}

TEST(SpmfTimestampedTest, MissingBarIsCorruption) {
  std::istringstream in("1 a b\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(SpmfTimestampedTest, BadTimestampIsCorruption) {
  std::istringstream in("xx|a b\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(SpmfTimestampedTest, EmptyTransactionIsCorruption) {
  std::istringstream in("3|\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
}

TEST(SpmfRoundTripTest, PaperExampleSurvives) {
  // Re-interning may permute ids ('g' appears in line 1, before 'c'), so
  // the round-trip is compared by item *names* per transaction.
  TransactionDatabase original = rpm::testing::PaperExampleDb();
  std::ostringstream out;
  ASSERT_TRUE(WriteTimestampedSpmf(original, &out).ok());
  std::istringstream in(out.str());
  Result<TransactionDatabase> parsed = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed->transaction(i).ts, original.transaction(i).ts);
    std::vector<std::string> want =
        original.dictionary().NamesOf(original.transaction(i).items);
    std::vector<std::string> got =
        parsed->dictionary().NamesOf(parsed->transaction(i).items);
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want) << "ts " << original.transaction(i).ts;
  }
}

TEST(SpmfFileTest, MissingFileIsIOError) {
  Result<TransactionDatabase> db = ReadSpmfFile("/nonexistent/path.txt");
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsIOError());
}

TEST(EventCsvTest, ParsesLongFormat) {
  std::istringstream in("timestamp,item\n1,jackets\n1,gloves\n2,jackets\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->sequence.size(), 3u);
  TransactionDatabase db =
      BuildTdbFromSequence(data->sequence, data->dictionary);
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.transaction(0).items.size(), 2u);
  EXPECT_EQ(db.dictionary().NameOf(0), "jackets");
}

TEST(EventCsvTest, NoHeaderOption) {
  std::istringstream in("5,x\n");
  EventCsvOptions options;
  options.has_header = false;
  Result<EventCsvData> data = ReadEventCsv(&in, options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->sequence.size(), 1u);
  EXPECT_EQ(data->sequence.events()[0].ts, 5);
}

TEST(EventCsvTest, BadTimestampIsCorruption) {
  std::istringstream in("ts,item\nabc,x\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(data.status().IsCorruption());
}

TEST(EventCsvTest, MissingColumnIsCorruption) {
  std::istringstream in("ts,item\n42\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(data.status().IsCorruption());
}

TEST(EventCsvTest, EmptyItemIsCorruption) {
  std::istringstream in("ts,item\n42,\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(data.status().IsCorruption());
}

TEST(EventCsvTest, RoundTrip) {
  EventSequence seq;
  ItemDictionary dict;
  seq.Add(dict.GetOrAdd("x"), 1);
  seq.Add(dict.GetOrAdd("y"), 2);
  seq.Add(dict.GetOrAdd("x"), 3);
  seq.Normalize();

  std::ostringstream out;
  ASSERT_TRUE(WriteEventCsv(seq, dict, &out).ok());
  std::istringstream in(out.str());
  Result<EventCsvData> parsed = ReadEventCsv(&in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->sequence.size(), 3u);
  EXPECT_EQ(parsed->sequence.PointSequenceOf(0), (TimestampList{1, 3}));
}

// --- Reader-boundary invariant enforcement ---------------------------------

TEST(SpmfBoundaryTest, ToleratesCrlfLineEndings) {
  std::istringstream in("1|a b\r\n2|c\r\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_EQ(db->size(), 2u);
  // The '\r' must not leak into the last item name.
  EXPECT_EQ(db->dictionary().NameOf(db->transaction(0).items.back()), "b");
  EXPECT_EQ(db->dictionary().NameOf(db->transaction(1).items.front()), "c");
}

TEST(SpmfBoundaryTest, ToleratesTrailingWhitespace) {
  std::istringstream in("1|a b  \t \n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->transaction(0).items.size(), 2u);
}

TEST(SpmfBoundaryTest, DuplicateTokensCollapseByDefault) {
  std::istringstream in("1|a a b a\n");
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in);
  ASSERT_TRUE(db.ok()) << db.status();
  // The transaction invariant (sorted, duplicate-free) holds at the
  // boundary — not just after a downstream builder pass.
  EXPECT_EQ(db->transaction(0).items, (Itemset{0, 1}));
  EXPECT_TRUE(db->Validate().ok());
}

TEST(SpmfBoundaryTest, DuplicateTokensRejectedUnderStrict) {
  std::istringstream in("1|a a b\n");
  SpmfParseOptions options;
  options.strict = true;
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in, options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
  EXPECT_NE(db.status().message().find("duplicate"), std::string::npos);
}

TEST(SpmfBoundaryTest, UnsortedIdsAreSortedAtTheBoundary) {
  std::istringstream in("9 5 3\n");
  SpmfParseOptions options;
  options.items_are_ids = true;
  Result<TransactionDatabase> db = ReadSpmf(&in, options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->transaction(0).items, (Itemset{3, 5, 9}));
}

TEST(SpmfBoundaryTest, RejectsReservedInvalidItemId) {
  // 4294967295 == kInvalidItem. Accepting it verbatim used to wrap the
  // item-universe computation (max_id + 1 == 0) and index dense per-item
  // arrays out of bounds in the miners.
  std::istringstream in("1|4294967295\n");
  SpmfParseOptions options;
  options.items_are_ids = true;
  Result<TransactionDatabase> db = ReadTimestampedSpmf(&in, options);
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsCorruption());
  EXPECT_NE(db.status().message().find("reserved"), std::string::npos);
}

TEST(EventCsvBoundaryTest, ToleratesCrlfLineEndings) {
  std::istringstream in("timestamp,item\r\n1,a\r\n2,b\r\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data->sequence.size(), 2u);
  EXPECT_EQ(data->dictionary.NameOf(data->sequence.events()[1].item), "b");
}

TEST(EventCsvBoundaryTest, DuplicateEventsCollapseByDefault) {
  std::istringstream in("ts,item\n1,a\n1,a\n2,a\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data->sequence.size(), 2u);
  EXPECT_EQ(data->sequence.PointSequenceOf(0), (TimestampList{1, 2}));
}

TEST(EventCsvBoundaryTest, DuplicateEventsRejectedUnderStrict) {
  std::istringstream in("ts,item\n1,a\n1,a\n");
  EventCsvOptions options;
  options.strict = true;
  Result<EventCsvData> data = ReadEventCsv(&in, options);
  ASSERT_FALSE(data.ok());
  EXPECT_TRUE(data.status().IsCorruption());
  EXPECT_NE(data.status().message().find("duplicate event"),
            std::string::npos);
  EXPECT_NE(data.status().message().find("'a'"), std::string::npos);
}

TEST(EventCsvBoundaryTest, OutOfOrderRowsAreNormalized) {
  std::istringstream in("ts,item\n5,b\n1,a\n3,a\n");
  Result<EventCsvData> data = ReadEventCsv(&in);
  ASSERT_TRUE(data.ok()) << data.status();
  Result<ItemId> a = data->dictionary.Lookup("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(data->sequence.PointSequenceOf(*a), (TimestampList{1, 3}));
  EXPECT_EQ(data->sequence.events().front().ts, 1);
  EXPECT_EQ(data->sequence.events().back().ts, 5);
}

}  // namespace
}  // namespace rpm
