#include "rpm/timeseries/tdb_builder.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;

TEST(TdbBuilderTest, GroupsEventsByTimestamp) {
  TdbBuilder builder;
  builder.AddEvent(B, 5);
  builder.AddEvent(A, 5);
  builder.AddEvent(C, 7);
  TransactionDatabase db = builder.Build();
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.transaction(0).ts, 5);
  EXPECT_EQ(db.transaction(0).items, (Itemset{A, B}));
  EXPECT_EQ(db.transaction(1).items, (Itemset{C}));
}

TEST(TdbBuilderTest, DeduplicatesItemsWithinTimestamp) {
  TdbBuilder builder;
  builder.AddEvent(A, 1);
  builder.AddEvent(A, 1);
  TransactionDatabase db = builder.Build();
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.transaction(0).items, (Itemset{A}));
}

TEST(TdbBuilderTest, OutOfOrderTimestampsAreSorted) {
  TdbBuilder builder;
  builder.AddEvent(A, 100);
  builder.AddEvent(B, 2);
  builder.AddEvent(C, 50);
  TransactionDatabase db = builder.Build();
  ASSERT_EQ(db.size(), 3u);
  EXPECT_EQ(db.transaction(0).ts, 2);
  EXPECT_EQ(db.transaction(1).ts, 50);
  EXPECT_EQ(db.transaction(2).ts, 100);
  EXPECT_TRUE(db.Validate().ok());
}

TEST(TdbBuilderTest, AddTransactionMergesIntoExistingTimestamp) {
  TdbBuilder builder;
  builder.AddTransaction(3, {A});
  builder.AddTransaction(3, {B, C});
  TransactionDatabase db = builder.Build();
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.transaction(0).items, (Itemset{A, B, C}));
}

TEST(TdbBuilderTest, BuildResetsBuilder) {
  TdbBuilder builder;
  builder.AddEvent(A, 1);
  EXPECT_EQ(builder.PendingTransactions(), 1u);
  (void)builder.Build();
  EXPECT_EQ(builder.PendingTransactions(), 0u);
  TransactionDatabase second = builder.Build();
  EXPECT_TRUE(second.empty());
}

TEST(TdbBuilderTest, NegativeTimestampsSupported) {
  TdbBuilder builder;
  builder.AddEvent(A, -5);
  builder.AddEvent(B, 0);
  TransactionDatabase db = builder.Build();
  ASSERT_EQ(db.size(), 2u);
  EXPECT_EQ(db.start_ts(), -5);
}

TEST(BuildTdbFromSequenceTest, LosslessConversion) {
  // Definition 2's losslessness: TS^X in the TDB equals the point sequence
  // of X in the TSD.
  EventSequence seq;
  for (Timestamp ts : {1, 2, 3, 4, 7, 11, 12, 14}) seq.Add(A, ts);
  for (Timestamp ts : {1, 3, 4, 7, 11, 12, 14}) seq.Add(B, ts);
  seq.Normalize();
  TransactionDatabase db = BuildTdbFromSequence(seq);
  EXPECT_EQ(db.TimestampsOf({A}), seq.PointSequenceOf(A));
  EXPECT_EQ(db.TimestampsOf({B}), seq.PointSequenceOf(B));
  // And the joint pattern's point sequence matches Example 1's S_ab.
  EXPECT_EQ(db.TimestampsOf({A, B}), (TimestampList{1, 3, 4, 7, 11, 12, 14}));
}

TEST(MakeDatabaseTest, BuildsPaperTable1) {
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  ASSERT_EQ(db.size(), 12u);
  // Spot-check the ts=12 transaction: all seven items.
  const Transaction* t12 = nullptr;
  for (const Transaction& tr : db.transactions()) {
    if (tr.ts == 12) t12 = &tr;
  }
  ASSERT_NE(t12, nullptr);
  EXPECT_EQ(t12->items.size(), 7u);
}

TEST(MakeDatabaseTest, EmptyRowsProduceEmptyDb) {
  TransactionDatabase db = MakeDatabase({});
  EXPECT_TRUE(db.empty());
}

}  // namespace
}  // namespace rpm
