#include "rpm/core/measures.h"

#include <gtest/gtest.h>

#include <limits>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::G;
using ::rpm::testing::PaperExampleDb;

// TS^{ab} from Example 2.
const TimestampList kTsAb = {1, 3, 4, 7, 11, 12, 14};

TEST(InterArrivalTimesTest, Example4) {
  // IAT^{ab} = {2, 1, 3, 4, 1, 2}.
  EXPECT_EQ(InterArrivalTimes(kTsAb),
            (std::vector<Timestamp>{2, 1, 3, 4, 1, 2}));
}

TEST(InterArrivalTimesTest, ShortLists) {
  EXPECT_TRUE(InterArrivalTimes({}).empty());
  EXPECT_TRUE(InterArrivalTimes({5}).empty());
  EXPECT_EQ(InterArrivalTimes({5, 9}), (std::vector<Timestamp>{4}));
}

TEST(DecomposeTest, Example5AllMaximalIntervals) {
  // per=2: TS^{ab}_1={1,3,4}, TS^{ab}_2={7}, TS^{ab}_3={11,12,14};
  // periodic-intervals [1,4], [7,7], [11,14].
  auto pis = DecomposePeriodicIntervals(kTsAb, 2);
  ASSERT_EQ(pis.size(), 3u);
  EXPECT_EQ(pis[0], (PeriodicInterval{1, 4, 3}));
  EXPECT_EQ(pis[1], (PeriodicInterval{7, 7, 1}));
  EXPECT_EQ(pis[2], (PeriodicInterval{11, 14, 3}));
}

TEST(DecomposeTest, Example6PeriodicSupports) {
  auto pis = DecomposePeriodicIntervals(kTsAb, 2);
  // ps^{ab}_1 = 3, ps^{ab}_2 = 1, ps^{ab}_3 = 3.
  EXPECT_EQ(pis[0].periodic_support, 3u);
  EXPECT_EQ(pis[1].periodic_support, 1u);
  EXPECT_EQ(pis[2].periodic_support, 3u);
}

TEST(DecomposeTest, SingleTimestamp) {
  auto pis = DecomposePeriodicIntervals({42}, 5);
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0], (PeriodicInterval{42, 42, 1}));
}

TEST(DecomposeTest, EmptyList) {
  EXPECT_TRUE(DecomposePeriodicIntervals({}, 3).empty());
}

TEST(DecomposeTest, AllOneRunWhenPeriodLarge) {
  auto pis = DecomposePeriodicIntervals(kTsAb, 100);
  ASSERT_EQ(pis.size(), 1u);
  EXPECT_EQ(pis[0], (PeriodicInterval{1, 14, 7}));
}

TEST(DecomposeTest, AllSingletonsWhenPeriodTiny) {
  auto pis = DecomposePeriodicIntervals({10, 20, 30}, 1);
  ASSERT_EQ(pis.size(), 3u);
  for (const auto& pi : pis) EXPECT_EQ(pi.periodic_support, 1u);
}

TEST(DecomposeTest, SupportsAreConserved) {
  auto pis = DecomposePeriodicIntervals(kTsAb, 2);
  uint64_t total = 0;
  for (const auto& pi : pis) total += pi.periodic_support;
  EXPECT_EQ(total, kTsAb.size());
}

TEST(SelectInterestingTest, Example7) {
  // minPS=3 keeps [1,4] and [11,14], drops [7,7].
  auto interesting =
      SelectInterestingIntervals(DecomposePeriodicIntervals(kTsAb, 2), 3);
  ASSERT_EQ(interesting.size(), 2u);
  EXPECT_EQ(interesting[0], (PeriodicInterval{1, 4, 3}));
  EXPECT_EQ(interesting[1], (PeriodicInterval{11, 14, 3}));
}

TEST(FindInterestingTest, MatchesDecomposePlusSelect) {
  for (Timestamp per : {1, 2, 3, 5, 10}) {
    for (uint64_t min_ps : {1u, 2u, 3u, 4u}) {
      EXPECT_EQ(FindInterestingIntervals(kTsAb, per, min_ps),
                SelectInterestingIntervals(
                    DecomposePeriodicIntervals(kTsAb, per), min_ps))
          << "per=" << per << " minPS=" << min_ps;
    }
  }
}

TEST(RecurrenceTest, Example8) {
  // Rec(ab) = |{[1,4], [11,14]}| = 2.
  EXPECT_EQ(ComputeRecurrence(kTsAb, 2, 3), 2u);
}

TEST(RecurrenceTest, PatternCNotRecurring) {
  // Example 10: TS^c has one long interval [2,12] at per=2 -> Rec=1.
  TimestampList ts_c = PaperExampleDb().TimestampsOf({rpm::testing::C});
  auto ipi = FindInterestingIntervals(ts_c, 2, 3);
  ASSERT_EQ(ipi.size(), 1u);
  EXPECT_EQ(ipi[0], (PeriodicInterval{2, 12, 7}));
}

TEST(ErecTest, Example11ItemG) {
  // TS^g={1,5,6,7,12,14}; per=2, minPS=3:
  // runs {1}, {5,6,7}, {12,14} -> floor(1/3)+floor(3/3)+floor(2/3) = 1.
  TimestampList ts_g = PaperExampleDb().TimestampsOf({G});
  EXPECT_EQ(ts_g, (TimestampList{1, 5, 6, 7, 12, 14}));
  EXPECT_EQ(ComputeErec(ts_g, 2, 3), 1u);
}

TEST(ErecTest, AbHasErecTwo) {
  EXPECT_EQ(ComputeErec(kTsAb, 2, 3), 2u);
}

TEST(ErecTest, EmptyAndSingle) {
  EXPECT_EQ(ComputeErec({}, 2, 3), 0u);
  EXPECT_EQ(ComputeErec({7}, 2, 3), 0u);
  EXPECT_EQ(ComputeErec({7}, 2, 1), 1u);
}

TEST(ErecTest, MatchesDecompositionSum) {
  for (Timestamp per : {1, 2, 4}) {
    for (uint64_t min_ps : {1u, 2u, 3u}) {
      uint64_t expected = 0;
      for (const auto& pi : DecomposePeriodicIntervals(kTsAb, per)) {
        expected += pi.periodic_support / min_ps;
      }
      EXPECT_EQ(ComputeErec(kTsAb, per, min_ps), expected);
    }
  }
}

// Property 1: Erec(X) >= Rec(X), on every pattern of the running example.
TEST(ErecTest, Property1ErecUpperBoundsRecurrence) {
  TransactionDatabase db = PaperExampleDb();
  for (ItemId i = 0; i < 7; ++i) {
    for (ItemId j = i; j < 7; ++j) {
      Itemset pattern = i == j ? Itemset{i} : Itemset{i, j};
      TimestampList ts = db.TimestampsOf(pattern);
      for (Timestamp per : {1, 2, 3}) {
        for (uint64_t min_ps : {1u, 2u, 3u}) {
          EXPECT_GE(ComputeErec(ts, per, min_ps),
                    ComputeRecurrence(ts, per, min_ps));
        }
      }
    }
  }
}

// Property 2: X subset of Y implies Erec(X) >= Erec(Y).
TEST(ErecTest, Property2AntiMonotone) {
  TransactionDatabase db = PaperExampleDb();
  for (ItemId i = 0; i < 7; ++i) {
    TimestampList ts_i = db.TimestampsOf({i});
    for (ItemId j = 0; j < 7; ++j) {
      if (i == j) continue;
      Itemset pair = {std::min(i, j), std::max(i, j)};
      TimestampList ts_ij = db.TimestampsOf(pair);
      for (Timestamp per : {1, 2, 3}) {
        for (uint64_t min_ps : {1u, 2u, 3u}) {
          EXPECT_GE(ComputeErec(ts_i, per, min_ps),
                    ComputeErec(ts_ij, per, min_ps))
              << "i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST(TolerantTest, ZeroViolationsMatchesExactModel) {
  EXPECT_EQ(FindInterestingIntervalsTolerant(kTsAb, 2, 3, 0),
            FindInterestingIntervals(kTsAb, 2, 3));
}

TEST(TolerantTest, OneViolationBridgesGaps) {
  // ts {1,2,3, 10, 11,12}: per=2 splits at gap 7. With one violation the
  // whole list is a single interval of ps 6.
  TimestampList ts = {1, 2, 3, 10, 11, 12};
  auto strict = FindInterestingIntervalsTolerant(ts, 2, 3, 0);
  ASSERT_EQ(strict.size(), 2u);
  auto tolerant = FindInterestingIntervalsTolerant(ts, 2, 3, 1);
  ASSERT_EQ(tolerant.size(), 1u);
  EXPECT_EQ(tolerant[0], (PeriodicInterval{1, 12, 6}));
}

TEST(TolerantTest, ViolationBudgetResetsPerInterval) {
  // Two over-period gaps: with budget 1 the second one splits.
  TimestampList ts = {1, 2, 10, 11, 20, 21};
  auto tolerant = FindInterestingIntervalsTolerant(ts, 2, 2, 1);
  // First interval absorbs gap 8 ({1,2,10,11}, ps=4), then gap 9 splits.
  ASSERT_EQ(tolerant.size(), 2u);
  EXPECT_EQ(tolerant[0], (PeriodicInterval{1, 11, 4}));
  EXPECT_EQ(tolerant[1], (PeriodicInterval{20, 21, 2}));
}

TEST(TolerantTest, SupportBoundIsValid) {
  // floor(sup/minPS) >= tolerant recurrence, for assorted budgets.
  for (uint32_t budget : {0u, 1u, 2u, 5u}) {
    for (uint64_t min_ps : {1u, 2u, 3u}) {
      auto ipi = FindInterestingIntervalsTolerant(kTsAb, 2, min_ps, budget);
      EXPECT_GE(ComputeTolerantRecurrenceBound(kTsAb.size(), min_ps),
                ipi.size());
    }
  }
}

TEST(FusedGateTest, MatchesSeparateGateAndScanOnPaperExample) {
  // For every item list of the running example and a threshold grid, the
  // fused single pass must agree with the two-pass formulation it fused:
  // bound == ComputeRecurrenceUpperBound, and the intervals equal
  // FindInterestingIntervals exactly when the gate passes.
  TransactionDatabase db = PaperExampleDb();
  std::vector<PeriodicInterval> fused;
  for (ItemId item = 0; item < db.ItemUniverseSize(); ++item) {
    TimestampList ts = db.TimestampsOf({item});
    for (Timestamp per : {1, 2, 3, 5, 20}) {
      for (uint64_t min_ps : {1u, 2u, 3u, 6u}) {
        for (uint64_t min_rec : {1u, 2u, 3u}) {
          RpParams params;
          params.period = per;
          params.min_ps = min_ps;
          params.min_rec = min_rec;
          GateOutcome outcome = ComputeGateAndIntervals(ts, params, &fused);
          EXPECT_EQ(outcome.recurrence_upper_bound,
                    ComputeRecurrenceUpperBound(ts, params));
          EXPECT_EQ(outcome.passes,
                    outcome.recurrence_upper_bound >= min_rec);
          if (outcome.passes) {
            EXPECT_EQ(fused, FindInterestingIntervals(ts, params));
          } else {
            EXPECT_TRUE(fused.empty());
          }
        }
      }
    }
  }
}

TEST(FusedGateTest, MatchesSeparateGateAndScanUnderTolerance) {
  TimestampList ts = {1, 2, 3, 10, 11, 12, 30, 31, 40};
  std::vector<PeriodicInterval> fused;
  for (uint32_t budget : {0u, 1u, 3u}) {
    for (uint64_t min_rec : {1u, 2u, 5u}) {
      RpParams params;
      params.period = 2;
      params.min_ps = 3;
      params.min_rec = min_rec;
      params.max_gap_violations = budget;
      GateOutcome outcome = ComputeGateAndIntervals(ts, params, &fused);
      // budget == 0 dispatches to the exact Erec model; otherwise the
      // O(1) tolerant support quotient applies.
      EXPECT_EQ(outcome.recurrence_upper_bound,
                ComputeRecurrenceUpperBound(ts, params));
      if (budget > 0) {
        EXPECT_EQ(outcome.recurrence_upper_bound,
                  ComputeTolerantRecurrenceBound(ts.size(), params.min_ps));
      }
      if (outcome.passes) {
        EXPECT_EQ(fused, FindInterestingIntervals(ts, params));
      } else {
        EXPECT_TRUE(fused.empty());
      }
    }
  }
}

TEST(FusedGateTest, EmptyAndSingletonLists) {
  RpParams params;
  params.period = 2;
  params.min_ps = 1;
  params.min_rec = 1;
  std::vector<PeriodicInterval> fused = {{1, 2, 3}};  // Must be cleared.
  GateOutcome outcome = ComputeGateAndIntervals({}, params, &fused);
  EXPECT_EQ(outcome.recurrence_upper_bound, 0u);
  EXPECT_FALSE(outcome.passes);
  EXPECT_TRUE(fused.empty());

  outcome = ComputeGateAndIntervals({5}, params, &fused);
  EXPECT_EQ(outcome.recurrence_upper_bound, 1u);
  EXPECT_TRUE(outcome.passes);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0], (PeriodicInterval{5, 5, 1}));
}

TEST(ParamsDispatchTest, UsesTolerantPathWhenConfigured) {
  RpParams params;
  params.period = 2;
  params.min_ps = 3;
  params.min_rec = 1;
  params.max_gap_violations = 1;
  TimestampList ts = {1, 2, 3, 10, 11, 12};
  EXPECT_EQ(FindInterestingIntervals(ts, params).size(), 1u);
  EXPECT_EQ(ComputeRecurrenceUpperBound(ts, params), 2u);  // floor(6/3).
  params.max_gap_violations = 0;
  EXPECT_EQ(FindInterestingIntervals(ts, params).size(), 2u);
  EXPECT_EQ(ComputeRecurrenceUpperBound(ts, params), 2u);  // Erec.
}

// --- Overflow safety at the int64 boundaries -------------------------------
//
// Regression tests for the gap arithmetic `cur - prev`: with timestamps
// straddling the int64 range the signed subtraction overflowed (UB; in
// practice it wrapped negative, fusing runs that are astronomically far
// apart). All gap comparisons now go through the unsigned helpers in
// time_gap.h, which are exact for any ordered timestamp pair.

constexpr Timestamp kTsMax = std::numeric_limits<Timestamp>::max();
constexpr Timestamp kTsMin = std::numeric_limits<Timestamp>::min();

TEST(OverflowSafetyTest, StraddlingGapSplitsRuns) {
  // The true gap kTsMin -> kTsMax is 2^64 - 1, far above any period; the
  // wrapped signed difference is -1, which compared <= period.
  TimestampList ts = {kTsMin, kTsMax};
  std::vector<PeriodicInterval> intervals =
      DecomposePeriodicIntervals(ts, /*period=*/10);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (PeriodicInterval{kTsMin, kTsMin, 1}));
  EXPECT_EQ(intervals[1], (PeriodicInterval{kTsMax, kTsMax, 1}));
  EXPECT_EQ(ComputeErec(ts, 10, 1), 2u);
  EXPECT_EQ(ComputeRecurrence(ts, 10, 1), 2u);
}

TEST(OverflowSafetyTest, RunsAdjacentToBothBoundaries) {
  TimestampList ts = {kTsMin,     kTsMin + 1, kTsMin + 2,
                      kTsMax - 2, kTsMax - 1, kTsMax};
  std::vector<PeriodicInterval> intervals =
      FindInterestingIntervals(ts, /*period=*/1, /*min_ps=*/3);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (PeriodicInterval{kTsMin, kTsMin + 2, 3}));
  EXPECT_EQ(intervals[1], (PeriodicInterval{kTsMax - 2, kTsMax, 3}));
  EXPECT_EQ(ComputeErec(ts, 1, 3), 2u);
}

TEST(OverflowSafetyTest, HugePeriodStillRejectsStraddlingGap) {
  // period = INT64_MAX admits the gap 0 -> kTsMax (2^63 - 1) but not the
  // gap kTsMin -> 0 (2^63).
  TimestampList ts = {kTsMin, 0, kTsMax};
  std::vector<PeriodicInterval> intervals =
      DecomposePeriodicIntervals(ts, kTsMax);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0], (PeriodicInterval{kTsMin, kTsMin, 1}));
  EXPECT_EQ(intervals[1], (PeriodicInterval{0, kTsMax, 2}));
}

TEST(OverflowSafetyTest, InterArrivalTimesSaturateInsteadOfWrapping) {
  // IAT entries are reported as int64 Timestamps; a gap wider than the
  // type saturates to INT64_MAX rather than wrapping negative.
  std::vector<Timestamp> iat = InterArrivalTimes({kTsMin, kTsMax});
  ASSERT_EQ(iat.size(), 1u);
  EXPECT_EQ(iat[0], kTsMax);
  // A representable extreme gap stays exact.
  EXPECT_EQ(InterArrivalTimes({-2, kTsMax - 2}),
            (std::vector<Timestamp>{kTsMax}));
}

TEST(OverflowSafetyTest, FusedGateMatchesAtBoundaries) {
  RpParams params;
  params.period = 2;
  params.min_ps = 2;
  params.min_rec = 2;
  TimestampList ts = {kTsMin, kTsMin + 2, kTsMax - 1, kTsMax};
  std::vector<PeriodicInterval> fused;
  GateOutcome outcome = ComputeGateAndIntervals(ts, params, &fused);
  EXPECT_EQ(outcome.recurrence_upper_bound, 2u);
  EXPECT_TRUE(outcome.passes);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_EQ(fused[0], (PeriodicInterval{kTsMin, kTsMin + 2, 2}));
  EXPECT_EQ(fused[1], (PeriodicInterval{kTsMax - 1, kTsMax, 2}));
}

TEST(OverflowSafetyTest, TolerantModeAbsorbsStraddlingGap) {
  // With one violation allowed the 2^64-wide gap is absorbed like any
  // other over-period gap — it must count as exactly one violation, not
  // sneak in as a compliant (wrapped-negative) gap.
  TimestampList ts = {kTsMin, kTsMin + 1, kTsMax - 1, kTsMax};
  std::vector<PeriodicInterval> exact =
      FindInterestingIntervalsTolerant(ts, /*period=*/1, /*min_ps=*/2,
                                       /*max_violations=*/0);
  ASSERT_EQ(exact.size(), 2u);
  std::vector<PeriodicInterval> tolerant =
      FindInterestingIntervalsTolerant(ts, /*period=*/1, /*min_ps=*/2,
                                       /*max_violations=*/1);
  ASSERT_EQ(tolerant.size(), 1u);
  EXPECT_EQ(tolerant[0], (PeriodicInterval{kTsMin, kTsMax, 4}));
}

}  // namespace
}  // namespace rpm
