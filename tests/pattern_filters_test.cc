#include "rpm/core/pattern_filters.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;
using ::rpm::testing::D;
using ::rpm::testing::E;
using ::rpm::testing::F;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;

TEST(ClosureTest, ClosureOfAIsA) {
  // 'a' occurs in transactions whose intersection is exactly {a,b} minus..
  // ts2 = {a,c,d} so closure(a) = {a}.
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(ClosureOf(db, {A}), (Itemset{A}));
}

TEST(ClosureTest, BIsClosedWithA) {
  // 'b' always co-occurs with 'a' (every b-transaction contains a).
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(ClosureOf(db, {B}), (Itemset{A, B}));
}

TEST(ClosureTest, EAlwaysWithF) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(ClosureOf(db, {E}), (Itemset{E, F}));
  EXPECT_EQ(ClosureOf(db, {F}), (Itemset{E, F}));
  EXPECT_EQ(ClosureOf(db, {E, F}), (Itemset{E, F}));
}

TEST(ClosureTest, AbsentPatternReturnsItself) {
  TransactionDatabase db = PaperExampleDb();
  EXPECT_EQ(ClosureOf(db, {99}), (Itemset{99}));
}

TEST(FilterClosedTest, PaperExampleClosedSet) {
  TransactionDatabase db = PaperExampleDb();
  RpGrowthResult mined =
      MineRecurringPatterns(db, PaperExampleParams());
  std::vector<RecurringPattern> closed =
      FilterClosed(db, mined.patterns);
  // From Table 2: b -> ab (closure), e -> ef, f -> ef, d -> cd are
  // non-closed; a, ab, cd, ef remain.
  ASSERT_EQ(closed.size(), 4u);
  std::vector<Itemset> sets;
  for (const auto& p : closed) sets.push_back(p.items);
  EXPECT_EQ(sets, (std::vector<Itemset>{{A}, {A, B}, {C, D}, {E, F}}));
}

TEST(FilterClosedTest, ClosedKeepsMeasuresIntact) {
  TransactionDatabase db = PaperExampleDb();
  RpGrowthResult mined = MineRecurringPatterns(db, PaperExampleParams());
  for (const RecurringPattern& p : FilterClosed(db, mined.patterns)) {
    EXPECT_EQ(rpm::testing::VerifyPatternAgainstDb(db, PaperExampleParams(),
                                                   p),
              "");
  }
}

TEST(FilterMaximalTest, PaperExampleMaximalSet) {
  TransactionDatabase db = PaperExampleDb();
  RpGrowthResult mined = MineRecurringPatterns(db, PaperExampleParams());
  std::vector<RecurringPattern> maximal = FilterMaximal(mined.patterns);
  // Maximal mined patterns: ab, cd, ef (singletons a,b,d,e,f are covered).
  ASSERT_EQ(maximal.size(), 3u);
  std::vector<Itemset> sets;
  for (const auto& p : maximal) sets.push_back(p.items);
  EXPECT_EQ(sets, (std::vector<Itemset>{{A, B}, {C, D}, {E, F}}));
}

TEST(FilterMaximalTest, MaximalIsSubsetOfClosed) {
  // Standard containment: maximal ⊆ closed ⊆ all.
  TransactionDatabase db = PaperExampleDb();
  RpGrowthResult mined = MineRecurringPatterns(db, PaperExampleParams());
  auto closed = FilterClosed(db, mined.patterns);
  auto maximal = FilterMaximal(mined.patterns);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), mined.patterns.size());
}

TEST(FilterMaximalTest, IncomparableSetsAllSurvive) {
  std::vector<RecurringPattern> ps = {{{0, 1}, 1, {}},
                                      {{1, 2}, 1, {}},
                                      {{2, 3}, 1, {}}};
  EXPECT_EQ(FilterMaximal(ps).size(), 3u);
}

TEST(FilterMaximalTest, EmptyInput) {
  EXPECT_TRUE(FilterMaximal({}).empty());
}

TEST(FilterClosedTest, RandomDbClosedPatternsVerify) {
  for (uint64_t seed = 61; seed <= 64; ++seed) {
    rpm::testing::RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 50;
    TransactionDatabase db = rpm::testing::MakeRandomDb(spec, seed);
    RpParams params;
    params.period = 3;
    params.min_ps = 3;
    params.min_rec = 1;
    RpGrowthResult mined = MineRecurringPatterns(db, params);
    std::vector<RecurringPattern> closed = FilterClosed(db, mined.patterns);
    // Every closed pattern's closure is itself.
    for (const RecurringPattern& p : closed) {
      EXPECT_EQ(ClosureOf(db, p.items), p.items);
    }
    // Every dropped pattern has a closed superset with the same support.
    for (const RecurringPattern& p : mined.patterns) {
      Itemset closure = ClosureOf(db, p.items);
      if (closure == p.items) continue;
      EXPECT_EQ(db.SupportOf(closure), p.support) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rpm
