// Shared fixtures: the paper's running example (Figure 1 / Table 1), a
// structured random database generator for property tests, and
// re-verification of mined patterns against the raw definitions.

#ifndef RPM_TESTS_TEST_UTIL_H_
#define RPM_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "rpm/common/random.h"
#include "rpm/core/measures.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/tdb_builder.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm::testing {

// Item ids of the running example; names 'a'..'g'.
inline constexpr ItemId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5, G = 6;

/// The database of Figure 1 / Table 1 (timestamps 8 and 13 absent).
inline TransactionDatabase PaperExampleDb() {
  ItemDictionary dict;
  for (const char* name : {"a", "b", "c", "d", "e", "f", "g"}) {
    dict.GetOrAdd(name);
  }
  return MakeDatabase(
      {
          {1, {A, B, G}},
          {2, {A, C, D}},
          {3, {A, B, E, F}},
          {4, {A, B, C, D}},
          {5, {C, D, E, F, G}},
          {6, {E, F, G}},
          {7, {A, B, C, G}},
          {9, {C, D}},
          {10, {C, D, E, F}},
          {11, {A, B, E, F}},
          {12, {A, B, C, D, E, F, G}},
          {14, {A, B, G}},
      },
      std::move(dict));
}

/// The paper's running-example thresholds: per=2, minPS=3, minRec=2.
inline RpParams PaperExampleParams() {
  RpParams params;
  params.period = 2;
  params.min_ps = 3;
  params.min_rec = 2;
  return params;
}

/// The expected Table 2 result set for PaperExampleDb at
/// PaperExampleParams, canonical order.
std::vector<RecurringPattern> PaperExamplePatterns();

struct RandomDbSpec {
  uint32_t num_items = 6;
  size_t num_timestamps = 60;
  Timestamp max_gap = 3;          ///< Random gap between timestamps.
  double item_base_prob = 0.25;   ///< Background item probability.
  size_t num_bursts = 3;          ///< Windows where an item pair is boosted.
  double burst_prob = 0.9;
};

/// Structured random database: background noise plus planted bursts, so
/// random instances actually contain recurring patterns. Deterministic in
/// `seed`.
TransactionDatabase MakeRandomDb(const RandomDbSpec& spec, uint64_t seed);

/// Re-derives TS^X from the database and checks the pattern's support and
/// interval list against the definitional measures. Returns an empty
/// string when the pattern verifies, else a description of the mismatch.
std::string VerifyPatternAgainstDb(const TransactionDatabase& db,
                                   const RpParams& params,
                                   const RecurringPattern& pattern);

}  // namespace rpm::testing

#endif  // RPM_TESTS_TEST_UTIL_H_
