#include "rpm/analysis/export.h"

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "rpm/common/civil_time.h"
#include "rpm/common/csv.h"

namespace rpm::analysis {
namespace {

std::vector<RecurringPattern> SamplePatterns() {
  return {{{0, 1}, 7, {{1, 4, 3}, {11, 14, 3}}},
          {{2}, 6, {{2, 5, 3}}}};
}

ItemDictionary SampleDict() {
  ItemDictionary dict;
  dict.GetOrAdd("jackets");
  dict.GetOrAdd("gloves");
  dict.GetOrAdd("scarves");
  return dict;
}

TEST(ExportCsvTest, OneRowPerInterval) {
  std::ostringstream out;
  ASSERT_TRUE(WritePatternsCsv(SamplePatterns(), SampleDict(), &out).ok());
  std::istringstream in(out.str());
  auto rows = ReadAllCsv(&in);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);  // Header + 2 + 1.
  EXPECT_EQ((*rows)[0][0], "pattern");
  EXPECT_EQ((*rows)[1][0], "jackets gloves");
  EXPECT_EQ((*rows)[1][1], "7");
  EXPECT_EQ((*rows)[1][4], "1");   // begin.
  EXPECT_EQ((*rows)[2][3], "1");   // interval_index.
  EXPECT_EQ((*rows)[3][0], "scarves");
}

TEST(ExportCsvTest, EpochAddsDateColumns) {
  std::ostringstream out;
  ExportOptions options;
  options.epoch_minutes = MinutesFromCivil({2013, 5, 1, 0, 0});
  ASSERT_TRUE(
      WritePatternsCsv(SamplePatterns(), SampleDict(), &out, options).ok());
  std::istringstream in(out.str());
  auto rows = ReadAllCsv(&in);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0].back(), "end_date");
  EXPECT_EQ((*rows)[1][7], "2013-05-01 00:01");
}

TEST(ExportCsvTest, IdsWhenNoDictionary) {
  std::ostringstream out;
  ASSERT_TRUE(
      WritePatternsCsv(SamplePatterns(), ItemDictionary{}, &out).ok());
  EXPECT_NE(out.str().find("0 1"), std::string::npos);
}

TEST(ExportJsonTest, WellFormedStructure) {
  std::ostringstream out;
  ASSERT_TRUE(WritePatternsJson(SamplePatterns(), SampleDict(), &out).ok());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"items\": [\"jackets\", \"gloves\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"support\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"recurrence\": 2"), std::string::npos);
  EXPECT_NE(json.find("{\"begin\": 1, \"end\": 4, \"ps\": 3}"),
            std::string::npos);
  // Balanced brackets (cheap sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ExportJsonTest, NumericItemsWithoutDictionary) {
  std::ostringstream out;
  ASSERT_TRUE(
      WritePatternsJson(SamplePatterns(), ItemDictionary{}, &out).ok());
  EXPECT_NE(out.str().find("\"items\": [0, 1]"), std::string::npos);
}

TEST(ExportJsonTest, EpochAddsDates) {
  std::ostringstream out;
  ExportOptions options;
  options.epoch_minutes = MinutesFromCivil({2013, 5, 1, 0, 0});
  ASSERT_TRUE(
      WritePatternsJson(SamplePatterns(), SampleDict(), &out, options).ok());
  EXPECT_NE(out.str().find("\"begin_date\": \"2013-05-01 00:01\""),
            std::string::npos);
}

TEST(ExportJsonTest, EmptyPatternListIsEmptyArray) {
  std::ostringstream out;
  ASSERT_TRUE(WritePatternsJson({}, SampleDict(), &out).ok());
  EXPECT_EQ(out.str(), "[\n]\n");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace rpm::analysis
