// Regression-pins the `rpminer serve` flag surface: names, defaults, the
// translation into serve option structs, and the tenant-quota defaults.
// A default drifting here is a silent behavior change for every
// deployment that relies on it — this test makes the drift loud.

#include "rpm/tools/serve_flags.h"

#include <sstream>
#include <vector>

#include "gtest/gtest.h"
#include "rpm/common/flags.h"
#include "rpm/serve/tenant_registry.h"

namespace rpm::tools {
namespace {

TEST(ServeFlags, DefaultsArePinned) {
  ServeFlags flags;
  EXPECT_EQ(flags.port, 0u);
  EXPECT_EQ(flags.config, "");
  EXPECT_EQ(flags.max_sessions, 64u);
  EXPECT_EQ(flags.global_max_concurrent, 8u);
  EXPECT_EQ(flags.global_max_queued, 32u);
  EXPECT_EQ(flags.drain_deadline_ms, 5000u);
  EXPECT_EQ(flags.retry_after_base_ms, 50u);
  EXPECT_EQ(flags.cache_entries, 64u);
}

TEST(ServeFlags, TenantQuotaDefaultsArePinned) {
  serve::TenantQuotas quotas;
  EXPECT_EQ(quotas.max_concurrent, 2u);
  EXPECT_EQ(quotas.max_queued, 8u);
  EXPECT_EQ(quotas.deadline_ceiling_ms, 30000u);
  EXPECT_EQ(quotas.memory_ceiling_mb, 256u);
  EXPECT_EQ(quotas.max_patterns, 0u);
}

TEST(ServeFlags, EveryFlagParsesByItsDocumentedName) {
  ServeFlags flags;
  FlagParser parser("rpminer serve", "test");
  flags.Register(&parser);
  const char* argv[] = {"serve",
                        "--port=9000",
                        "--config=/tmp/tenants.jsonl",
                        "--max-sessions=16",
                        "--global-max-concurrent=4",
                        "--global-max-queued=10",
                        "--drain-deadline-ms=1000",
                        "--retry-after-base-ms=25",
                        "--cache-entries=8",
                        "paper=/tmp/p.tspmf"};
  ASSERT_TRUE(parser.Parse(static_cast<int>(std::size(argv)), argv).ok());
  EXPECT_EQ(flags.port, 9000u);
  EXPECT_EQ(flags.config, "/tmp/tenants.jsonl");
  EXPECT_EQ(flags.max_sessions, 16u);
  EXPECT_EQ(flags.global_max_concurrent, 4u);
  EXPECT_EQ(flags.global_max_queued, 10u);
  EXPECT_EQ(flags.drain_deadline_ms, 1000u);
  EXPECT_EQ(flags.retry_after_base_ms, 25u);
  EXPECT_EQ(flags.cache_entries, 8u);
  ASSERT_EQ(parser.positional().size(), 1u);
  EXPECT_EQ(parser.positional()[0], "paper=/tmp/p.tspmf");
}

TEST(ServeFlags, TranslatesIntoServeOptionStructs) {
  ServeFlags flags;
  flags.port = 7777;
  flags.max_sessions = 3;
  flags.global_max_concurrent = 2;
  flags.global_max_queued = 5;
  flags.drain_deadline_ms = 250;
  flags.retry_after_base_ms = 10;
  flags.cache_entries = 4;

  Result<serve::QueryService::Options> service = flags.ToServiceOptions();
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->admission.global_max_concurrent, 2u);
  EXPECT_EQ(service->admission.global_max_queued, 5u);
  EXPECT_EQ(service->admission.retry_after_base_ms, 10);
  EXPECT_EQ(service->cache_entries, 4u);

  Result<serve::Server::Options> server = flags.ToServerOptions();
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(server->port, 7777);
  EXPECT_EQ(server->max_sessions, 3u);
  EXPECT_EQ(server->drain_deadline_ms, 250);
}

TEST(ServeFlags, RejectsOutOfRangeValues) {
  ServeFlags flags;
  flags.port = 70000;  // Does not fit uint16.
  EXPECT_FALSE(flags.ToServerOptions().ok());

  ServeFlags zero_conc;
  zero_conc.global_max_concurrent = 0;
  EXPECT_FALSE(zero_conc.ToServiceOptions().ok());

  ServeFlags zero_sessions;
  zero_sessions.max_sessions = 0;
  EXPECT_FALSE(zero_sessions.ToServerOptions().ok());
}

TEST(ServeFlags, TenantConfigOverridesAndClamps) {
  serve::TenantRegistry registry;
  std::istringstream config(
      "# comment line\n"
      "\n"
      "{\"tenant\":\"default\",\"max_queued\":4}\n"
      "{\"tenant\":\"alice\",\"max_concurrent\":5,"
      "\"deadline_ceiling_ms\":2000}\n");
  ASSERT_TRUE(registry.LoadConfig(config).ok());

  // "default" rewrote the fallback quotas for unconfigured tenants...
  EXPECT_EQ(registry.QuotasFor("stranger").max_queued, 4u);
  EXPECT_EQ(registry.QuotasFor("stranger").max_concurrent, 2u);
  // ...and tenants configured on later lines inherit them.
  EXPECT_EQ(registry.QuotasFor("alice").max_concurrent, 5u);
  EXPECT_EQ(registry.QuotasFor("alice").max_queued, 4u);
  EXPECT_EQ(registry.QuotasFor("alice").deadline_ceiling_ms, 2000u);

  // Quota ceilings clamp requested limits: less is allowed, more is not,
  // and "unlimited" (0) requests take the ceiling.
  ResourceLimits requested;
  requested.timeout_ms = 10000;
  ResourceLimits clamped =
      registry.QuotasFor("alice").ClampLimits(requested);
  EXPECT_EQ(clamped.timeout_ms, 2000);
  requested.timeout_ms = 500;
  EXPECT_EQ(registry.QuotasFor("alice").ClampLimits(requested).timeout_ms,
            500);
  requested.timeout_ms = 0;
  EXPECT_EQ(registry.QuotasFor("alice").ClampLimits(requested).timeout_ms,
            2000);

  // Unknown fields and duplicate tenants are config errors.
  serve::TenantRegistry bad;
  std::istringstream unknown("{\"tenant\":\"x\",\"bogus\":1}\n");
  EXPECT_FALSE(bad.LoadConfig(unknown).ok());
  serve::TenantRegistry dup;
  std::istringstream twice(
      "{\"tenant\":\"x\",\"max_queued\":1}\n"
      "{\"tenant\":\"x\",\"max_queued\":2}\n");
  EXPECT_FALSE(dup.LoadConfig(twice).ok());
}

}  // namespace
}  // namespace rpm::tools
