// End-to-end tests of the rpminer CLI command layer (RunRpminer against
// in-memory streams and temp files).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "rpm/timeseries/io/spmf_io.h"
#include "rpm/tools/commands.h"
#include "test_util.h"

namespace rpm::tools {
namespace {

/// Writes the paper's running example to a temp file; returns the path.
std::string WritePaperExampleFile() {
  std::string path =
      ::testing::TempDir() + "/rpminer_cli_example.tspmf";
  std::ofstream out(path);
  WriteTimestampedSpmf(rpm::testing::PaperExampleDb(), &out);
  return path;
}

int RunCli(std::initializer_list<const char*> args, std::string* out_text,
        std::string* err_text) {
  std::vector<const char*> argv(args);
  std::ostringstream out, err;
  int code =
      RunRpminer(static_cast<int>(argv.size()), argv.data(), out, err);
  *out_text = out.str();
  *err_text = err.str();
  return code;
}

TEST(CliTest, NoArgsPrintsUsage) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer"}, &out, &err), 1);
  EXPECT_NE(err.find("usage: rpminer"), std::string::npos);
}

TEST(CliTest, UnknownCommand) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "frobnicate"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliTest, MineRequiresInput) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "mine", "--per=2"}, &out, &err), 1);
  EXPECT_NE(err.find("--input is required"), std::string::npos);
}

TEST(CliTest, MineUnknownFlag) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "mine", "--bogus=1"}, &out, &err), 1);
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
}

TEST(CliTest, MineMissingFileIsRuntimeError) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "mine", "--input=/no/such/file", "--per=2",
                 "--min-ps=3", "--min-rec=2"},
                &out, &err),
            2);
  EXPECT_NE(err.find("error:"), std::string::npos);
}

TEST(CliTest, MinePaperExampleFindsTable2) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps=3", "--min-rec=2"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(err.find("8 recurring patterns"), std::string::npos);
  EXPECT_NE(out.find("{a, b}"), std::string::npos);
  EXPECT_NE(out.find("{e, f}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineJsonOutput) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps=3", "--min-rec=2", "--output-format=json"},
                &out, &err),
            0);
  EXPECT_NE(out.find("\"support\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"items\": [\"a\", \"b\"]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineCsvOutputWithPercentThreshold) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  // 25% of 12 transactions = 3 = the paper's minPS.
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps-pct=25", "--min-rec=2", "--output-format=csv"},
                &out, &err),
            0);
  EXPECT_NE(out.find("pattern,support"), std::string::npos);
  EXPECT_NE(out.find("a b,7,2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineClosedFiltersSubPatterns) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps=3", "--min-rec=2", "--closed"},
                &out, &err),
            0);
  // 'b' alone is not closed (always with 'a'), so "{b}" must not appear.
  EXPECT_EQ(out.find("{b}"), std::string::npos);
  EXPECT_NE(out.find("{a, b}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineTopK) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps=3", "--top-k=3"},
                &out, &err),
            0);
  EXPECT_NE(err.find("top-k: 3 patterns"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineWithStatsPrintsCoverage) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                    "--min-ps=3", "--min-rec=2", "--stats"},
                   &out, &err),
            0);
  EXPECT_NE(out.find("coverage="), std::string::npos);
  EXPECT_NE(out.find("concentration="), std::string::npos);
  EXPECT_NE(out.find("{a, b}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineWithEpochRendersDates) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps=3", "--min-rec=2", "--epoch=2013-05-01"},
                &out, &err),
            0);
  EXPECT_NE(out.find("2013-05-01 00:01"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, MineRejectsBadEpoch) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                 "--min-ps=3", "--epoch=yesterday"},
                &out, &err),
            2);
  std::remove(path.c_str());
}

TEST(CliTest, MineWithToleranceBridgesGaps) {
  // One item at ts 1..6 and 9..14 (hole at 7-8): strict mining at
  // minPS=10 finds nothing; tolerance 1 bridges the gap.
  std::string path = ::testing::TempDir() + "/rpminer_cli_tolerant.tspmf";
  {
    std::ofstream f(path);
    for (Timestamp ts : {1, 2, 3, 4, 5, 6, 9, 10, 11, 12, 13, 14}) {
      f << ts << "|x\n";
    }
  }
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=1",
                    "--min-ps=10", "--min-rec=1"},
                   &out, &err),
            0);
  EXPECT_NE(err.find("0 recurring patterns"), std::string::npos);
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=1",
                    "--min-ps=10", "--min-rec=1", "--tolerance=1"},
                   &out, &err),
            0);
  EXPECT_NE(err.find("1 recurring patterns"), std::string::npos);
  EXPECT_NE(out.find("{x}"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, StatsSummarisesDataset) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "stats", "--input", path.c_str()}, &out, &err),
            0);
  EXPECT_NE(out.find("12 transactions"), std::string::npos);
  EXPECT_NE(out.find("7 distinct items"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, AdviseSuggestsUsableThresholds) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "advise", "--input", path.c_str(),
                    "--min-item-support=5"},
                   &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("suggested: --per "), std::string::npos);
  EXPECT_NE(out.find("rationale:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, PfMineFindsRegularPatterns) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "pf-mine", "--input", path.c_str(),
                 "--min-sup=6", "--max-per=3"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("sup="), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, PpMineCountsPatterns) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "pp-mine", "--input", path.c_str(), "--per=2",
                 "--min-sup=4"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(err.find("p-patterns"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, CompareRunsAllThreeModels) {
  std::string path = WritePaperExampleFile();
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "compare", "--input", path.c_str(),
                    "--per=2", "--min-sup-pct=30", "--min-ps-pct=25"},
                   &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("pf-patterns"), std::string::npos);
  EXPECT_NE(out.find("recurring-patterns"), std::string::npos);
  EXPECT_NE(out.find("p-patterns"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliTest, GenerateToStdout) {
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "generate", "--dataset=shop14", "--scale=0.02",
                 "--seed=3"},
                &out, &err),
            0);
  EXPECT_NE(err.find("generated:"), std::string::npos);
  EXPECT_NE(out.find("|"), std::string::npos);  // tspmf lines.
}

TEST(CliTest, GenerateRejectsBadDataset) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "generate", "--dataset=imaginary"}, &out, &err),
            1);
}

TEST(CliTest, GenerateRejectsBadScale) {
  std::string out, err;
  EXPECT_EQ(
      RunCli({"rpminer", "generate", "--dataset=quest", "--scale=7"}, &out,
          &err),
      1);
}

TEST(CliTest, ConvertCsvToSpmf) {
  std::string csv_path = ::testing::TempDir() + "/rpminer_cli_events.csv";
  {
    std::ofstream f(csv_path);
    f << "timestamp,item\n1,x\n1,y\n3,x\n";
  }
  std::string out, err;
  ASSERT_EQ(
      RunCli({"rpminer", "convert", "--input", csv_path.c_str()}, &out, &err),
      0)
      << err;
  EXPECT_NE(out.find("1|x y"), std::string::npos);
  EXPECT_NE(out.find("3|x"), std::string::npos);
  EXPECT_NE(err.find("converted 2 transactions"), std::string::npos);
  std::remove(csv_path.c_str());
}

// --- mine --queries=FILE (multi-query sessions) -----------------------------

/// Writes a --queries file; returns the path.
std::string WriteQueriesFile(const std::string& contents) {
  std::string path = ::testing::TempDir() + "/rpminer_cli_queries.txt";
  std::ofstream out(path);
  out << contents;
  return path;
}

TEST(CliTest, MineQueriesSharesOneTreeBuildAcrossBackends) {
  std::string path = WritePaperExampleFile();
  // First line is the loosest (per, tolerance) point, so the planner's
  // one build serves the stricter re-queries on every backend.
  std::string queries = WriteQueriesFile(
      "# paper example sweep\n"
      "--per=2 --min-ps=3 --min-rec=2\n"
      "\n"
      "--per=2 --min-ps=4 --min-rec=2 --backend=parallel --threads=2\n"
      "--per=2 --min-ps=3 --min-rec=3 --backend=streaming\n");
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--queries",
                 queries.c_str()},
                &out, &err),
            0)
      << err;
  // One snapshot, one build; the streaming backend builds its own
  // structures outside the planner so it neither reuses nor adds builds.
  EXPECT_NE(err.find("3 queries against one snapshot, 1 tree build(s)"),
            std::string::npos)
      << err;
  EXPECT_NE(out.find("\"tree_builds\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"tree_reused\": true"), std::string::npos);
  EXPECT_NE(out.find("\"backend\": \"parallel\""), std::string::npos);
  EXPECT_NE(out.find("\"backend\": \"streaming\""), std::string::npos);
  std::remove(path.c_str());
  std::remove(queries.c_str());
}

TEST(CliTest, MineQueriesEmbedsPatternsByteIdenticalToStandaloneRuns) {
  std::string path = WritePaperExampleFile();
  std::string queries = WriteQueriesFile(
      "--per=2 --min-ps=3 --min-rec=2\n"
      "--per=2 --min-ps=4 --min-rec=2\n"
      "--per=2 --min-ps=3 --top-k=3\n");
  std::string multi_out, err;
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--queries",
                 queries.c_str()},
                &multi_out, &err),
            0)
      << err;
  // Each query's embedded "patterns" array must be byte-identical to the
  // standalone single-query JSON output (reused trees included).
  auto expect_embedded = [&](std::initializer_list<const char*> args) {
    std::string solo_out, solo_err;
    ASSERT_EQ(RunCli(args, &solo_out, &solo_err), 0) << solo_err;
    ASSERT_FALSE(solo_out.empty());
    EXPECT_NE(multi_out.find(solo_out), std::string::npos)
        << "standalone JSON not embedded verbatim:\n"
        << solo_out;
  };
  expect_embedded({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                   "--min-ps=3", "--min-rec=2", "--output-format=json"});
  expect_embedded({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                   "--min-ps=4", "--min-rec=2", "--output-format=json"});
  expect_embedded({"rpminer", "mine", "--input", path.c_str(), "--per=2",
                   "--min-ps=3", "--top-k=3", "--output-format=json"});
  std::remove(path.c_str());
  std::remove(queries.c_str());
}

TEST(CliTest, MineQueriesReportsFailingLineNumber) {
  std::string path = WritePaperExampleFile();
  std::string queries = WriteQueriesFile(
      "# comment\n"
      "--per=2 --min-ps=3 --min-rec=2\n"
      "--per=2 --bogus=1\n");
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--queries",
                 queries.c_str()},
                &out, &err),
            2);
  EXPECT_NE(err.find("--queries line 3"), std::string::npos) << err;
  std::remove(path.c_str());
  std::remove(queries.c_str());
}

TEST(CliTest, MineQueriesRejectsEmptyFileAndBadBackendModel) {
  std::string path = WritePaperExampleFile();
  std::string empty = WriteQueriesFile("# only comments\n\n");
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--queries",
                 empty.c_str()},
                &out, &err),
            2);
  EXPECT_NE(err.find("no query lines"), std::string::npos);

  // Streaming is exact-model only; the error carries the line number.
  std::string tolerant = WriteQueriesFile(
      "--per=2 --min-ps=3 --min-rec=2 --tolerance=1 --backend=streaming\n");
  EXPECT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--queries",
                 tolerant.c_str()},
                &out, &err),
            2);
  EXPECT_NE(err.find("--queries line 1"), std::string::npos) << err;
  std::remove(path.c_str());
  std::remove(empty.c_str());
  std::remove(tolerant.c_str());
}

TEST(CliTest, VerifyFixedParamsPinsEveryCase) {
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "verify", "--cases=6", "--seed=3",
                 "--fixed-params", "--per=2", "--min-ps=2"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("result: OK"), std::string::npos);
  EXPECT_NE(out.find("engine 6"), std::string::npos);
  // Streaming runs on every case too: fixed params are exact-model.
  EXPECT_NE(out.find("streaming 6"), std::string::npos);
}

TEST(CliTest, VerifyFixedParamsRejectsPercentAndFilterFlags) {
  std::string out, err;
  EXPECT_EQ(RunCli({"rpminer", "verify", "--cases=2", "--fixed-params",
                 "--per=2", "--min-ps-pct=10"},
                &out, &err),
            1);
  EXPECT_EQ(RunCli({"rpminer", "verify", "--cases=2", "--fixed-params",
                 "--per=2", "--top-k=3"},
                &out, &err),
            1);
}

TEST(CliTest, MineRoundTripThroughGenerate) {
  std::string path = ::testing::TempDir() + "/rpminer_cli_gen.tspmf";
  std::string out, err;
  ASSERT_EQ(RunCli({"rpminer", "generate", "--dataset=twitter", "--scale=0.01",
                 "--output", path.c_str()},
                &out, &err),
            0);
  ASSERT_EQ(RunCli({"rpminer", "mine", "--input", path.c_str(), "--per=60",
                 "--min-ps-pct=2", "--min-rec=1"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(err.find("recurring patterns"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rpm::tools
