// Parallel RP-tree build vs the sequential reference: the partitioned
// build + partial-trie fold (BuildRankedTree with num_threads > 1) must
// produce a tree that is *observably identical* to the sequential one —
// same node-link chain order, same root paths, same per-node ts-lists —
// and mining either tree must yield bit-identical results and counters.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rpm/core/cancellation.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_tree.h"
#include "rpm/timeseries/transaction_database.h"
#include "test_util.h"

namespace rpm {
namespace {

/// Flattened observable state of a tree: for every rank, the chain-order
/// sequence of (root path, ts-list). Equality of this snapshot is
/// equality of everything mining can see.
struct TreeSnapshot {
  struct NodeView {
    std::vector<uint32_t> path;
    TimestampList ts_list;
    bool operator==(const NodeView&) const = default;
  };
  std::vector<std::vector<NodeView>> by_rank;
  size_t node_count = 0;
  size_t timestamp_count = 0;
  bool operator==(const TreeSnapshot&) const = default;
};

TreeSnapshot Snapshot(const TsPrefixTree& tree) {
  TreeSnapshot snap;
  snap.by_rank.resize(tree.num_ranks());
  snap.node_count = tree.NodeCount();
  snap.timestamp_count = tree.TimestampCount();
  for (size_t rank = 0; rank < tree.num_ranks(); ++rank) {
    tree.ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          snap.by_rank[rank].push_back({path, ts});
        });
  }
  return snap;
}

/// A database big enough to clear kMinTransactionsPerBuildPartition for
/// several workers (the parallel path stays dormant on toy inputs).
TransactionDatabase BigRandomDb(uint64_t seed) {
  testing::RandomDbSpec spec;
  spec.num_items = 12;
  spec.num_timestamps = 1600;
  spec.max_gap = 3;
  spec.num_bursts = 8;
  return testing::MakeRandomDb(spec, seed);
}

RpParams BigDbParams() {
  RpParams params;
  params.period = 4;
  params.min_ps = 3;
  params.min_rec = 2;
  return params;
}

TEST(TreeBuildParallelTest, StructurallyIdenticalAcrossThreadCounts) {
  for (uint64_t seed : {1u, 7u, 99u}) {
    const TransactionDatabase db = BigRandomDb(seed);
    const PreparedMining prepared = PrepareMining(db, BigDbParams());
    const TreeSnapshot want = Snapshot(prepared.tree);
    for (size_t threads : {2u, 3u, 4u, 7u}) {
      TreeBuildStats stats;
      const TsPrefixTree tree = BuildRankedTree(db, prepared.items_by_rank,
                                                nullptr, threads, &stats);
      EXPECT_EQ(Snapshot(tree), want) << "seed=" << seed << " threads="
                                      << threads;
      EXPECT_GE(stats.threads_used, 1u);
      EXPECT_LE(stats.threads_used, threads);
      if (stats.threads_used > 1) {
        EXPECT_EQ(stats.partials_merged, stats.threads_used - 1);
        EXPECT_GT(stats.merged_nodes, 0u);
      }
    }
  }
}

TEST(TreeBuildParallelTest, SmallDatabasesStaySequential) {
  const TransactionDatabase db = testing::PaperExampleDb();
  const PreparedMining prepared = PrepareMining(db, testing::PaperExampleParams());
  TreeBuildStats stats;
  const TsPrefixTree tree =
      BuildRankedTree(db, prepared.items_by_rank, nullptr, 8, &stats);
  // 12 transactions cannot fill even one 256-transaction partition per
  // extra worker, so the build must take the sequential path.
  EXPECT_EQ(stats.threads_used, 1u);
  EXPECT_EQ(stats.partials_merged, 0u);
  EXPECT_EQ(stats.merge_seconds, 0.0);
  EXPECT_EQ(Snapshot(tree), Snapshot(prepared.tree));
}

TEST(TreeBuildParallelTest, PreparedMiningThreadsPropagate) {
  const TransactionDatabase db = BigRandomDb(3);
  const RpParams params = BigDbParams();
  const PreparedMining seq = PrepareMining(db, params);
  const PreparedMining par =
      PrepareMining(db, params, PruningMode::kErec, nullptr, 4);
  EXPECT_EQ(seq.tree_build.threads_used, 1u);
  EXPECT_GT(par.tree_build.threads_used, 1u);
  EXPECT_EQ(par.tree_build.partials_merged, par.tree_build.threads_used - 1);
  EXPECT_EQ(Snapshot(par.tree), Snapshot(seq.tree));
  EXPECT_EQ(par.initial_tree_nodes, seq.initial_tree_nodes);
  EXPECT_EQ(par.items_by_rank, seq.items_by_rank);
}

TEST(TreeBuildParallelTest, MiningEqualAcrossTreeBuildBackends) {
  const TransactionDatabase db = BigRandomDb(11);
  const RpParams params = BigDbParams();
  const PreparedMining seq = PrepareMining(db, params);
  const PreparedMining par =
      PrepareMining(db, params, PruningMode::kErec, nullptr, 4);
  const RpGrowthResult a = MineFromPrepared(seq, seq.tree.Clone(), params);
  const RpGrowthResult b = MineFromPrepared(par, par.tree.Clone(), params);
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  EXPECT_EQ(a.patterns, b.patterns);
  // Schedule-invariant counters must agree bit-for-bit.
  EXPECT_EQ(a.stats.patterns_examined, b.stats.patterns_examined);
  EXPECT_EQ(a.stats.conditional_trees, b.stats.conditional_trees);
  EXPECT_EQ(a.stats.merge_invocations, b.stats.merge_invocations);
  EXPECT_EQ(a.stats.runs_merged, b.stats.runs_merged);
  EXPECT_EQ(a.stats.timestamps_merged, b.stats.timestamps_merged);
  EXPECT_EQ(a.stats.gate_lists_scanned, b.stats.gate_lists_scanned);
  EXPECT_EQ(a.stats.gate_gaps_scanned, b.stats.gate_gaps_scanned);
  EXPECT_EQ(a.stats.gate_gaps_simd, b.stats.gate_gaps_simd);
  // And the build provenance must be visible on the folded stats.
  EXPECT_EQ(a.stats.tree_build_threads, 1u);
  EXPECT_GT(b.stats.tree_build_threads, 1u);
  EXPECT_EQ(b.stats.tree_partials_merged, b.stats.tree_build_threads - 1);
  for (const RecurringPattern& p : a.patterns) {
    EXPECT_EQ(testing::VerifyPatternAgainstDb(db, params, p), "");
  }
}

TEST(TreeBuildParallelTest, EndToEndMiningUsesParallelBuild) {
  const TransactionDatabase db = BigRandomDb(21);
  const RpParams params = BigDbParams();
  RpGrowthOptions seq_options;
  RpGrowthOptions par_options;
  par_options.num_threads = 4;
  const RpGrowthResult a = MineRecurringPatterns(db, params, seq_options);
  const RpGrowthResult b = MineRecurringPatterns(db, params, par_options);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.stats.tree_build_threads, 1u);
  EXPECT_GT(b.stats.tree_build_threads, 1u);
}

TEST(TreeBuildParallelTest, CancelledBudgetStopsParallelBuild) {
  const TransactionDatabase db = BigRandomDb(5);
  const PreparedMining prepared = PrepareMining(db, BigDbParams());
  CancellationToken cancel;
  cancel.Cancel();
  ResourceLimits limits;
  QueryBudget budget(limits, &cancel);
  budget.Probe();  // Latch the cancellation before the build starts.
  const TsPrefixTree tree =
      BuildRankedTree(db, prepared.items_by_rank, &budget, 4);
  EXPECT_TRUE(budget.hard_stopped());
  // The partial result carries fewer timestamps than a full build (the
  // workers observed the stop within one checkpoint interval).
  EXPECT_LE(tree.TimestampCount(), prepared.tree.TimestampCount());
}

TEST(TreeBuildParallelTest, MemoryBudgetTripsParallelBuild) {
  const TransactionDatabase db = BigRandomDb(13);
  const PreparedMining prepared = PrepareMining(db, BigDbParams());
  ResourceLimits limits;
  limits.memory_budget_bytes = 1;  // Any tracked growth trips it.
  QueryBudget budget(limits, nullptr);
  const TsPrefixTree tree =
      BuildRankedTree(db, prepared.items_by_rank, &budget, 4);
  EXPECT_TRUE(budget.hard_stopped());
  EXPECT_EQ(budget.stop_reason(), StopReason::kMemory);
  EXPECT_LT(tree.TimestampCount(), prepared.tree.TimestampCount());
}

TEST(TreeBuildParallelTest, MergeAppendFromFoldsDisjointAndOverlapping) {
  const std::vector<ItemId> items = {0, 1, 2};
  // Sequential reference over the concatenated inserts.
  TsPrefixTree want(items);
  TsPrefixTree left(items);
  TsPrefixTree right(items);
  const std::vector<std::vector<uint32_t>> first = {{0, 1}, {0, 2}, {1, 2}};
  const std::vector<std::vector<uint32_t>> second = {{0, 1}, {2}, {0, 1, 2}};
  Timestamp ts = 0;
  for (const auto& ranks : first) {
    want.InsertTransaction(ranks, ts);
    left.InsertTransaction(ranks, ts);
    ++ts;
  }
  for (const auto& ranks : second) {
    want.InsertTransaction(ranks, ts);
    right.InsertTransaction(ranks, ts);
    ++ts;
  }
  left.MergeAppendFrom(std::move(right));
  EXPECT_EQ(Snapshot(left), Snapshot(want));
}

}  // namespace
}  // namespace rpm
