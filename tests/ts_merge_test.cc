// The merge kernel's only contract: MergeSortedRuns(runs) is
// element-for-element identical to concatenating the runs and std::sort-ing
// (duplicates kept), for every run count / length / interleaving — the
// miners rely on that equivalence for bit-identical pattern output. The
// property tests drive the kernel through all of its internal regimes
// (copy, adaptive two-run, fragmented introsort fallback, natural
// mergesort rounds) against the concat+sort oracle.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "rpm/common/random.h"
#include "rpm/core/ts_merge.h"

namespace rpm {
namespace {

/// Oracle: the exact computation the kernel replaces.
TimestampList ConcatAndSort(const std::vector<TimestampList>& lists) {
  TimestampList all;
  for (const TimestampList& list : lists) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

/// Splits every list into runs and merges them through a fresh scratch.
TimestampList MergeLists(const std::vector<TimestampList>& lists,
                         MergeCounters* counters = nullptr) {
  std::vector<TsRun> runs;
  for (const TimestampList& list : lists) {
    AppendSortedRuns(list, &runs);
  }
  MergeScratch scratch;
  MergeCounters local;
  TimestampList out;
  MergeSortedRuns(runs.data(), runs.size(), &out, &scratch,
                  counters != nullptr ? counters : &local);
  return out;
}

TEST(AppendSortedRunsTest, EmptyListContributesNothing) {
  std::vector<TsRun> runs;
  AppendSortedRuns({}, &runs);
  EXPECT_TRUE(runs.empty());
}

TEST(AppendSortedRunsTest, SortedListIsOneRun) {
  TimestampList ts = {1, 2, 2, 5, 9};
  std::vector<TsRun> runs;
  AppendSortedRuns(ts, &runs);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].data, ts.data());
  EXPECT_EQ(runs[0].size, ts.size());
}

TEST(AppendSortedRunsTest, SplitsAtEveryDescent) {
  TimestampList ts = {3, 7, 1, 1, 4, 2};  // Runs: [3,7] [1,1,4] [2].
  std::vector<TsRun> runs;
  AppendSortedRuns(ts, &runs);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].size, 2u);
  EXPECT_EQ(runs[1].size, 3u);
  EXPECT_EQ(runs[2].size, 1u);
  EXPECT_EQ(runs[1].data, ts.data() + 2);
}

TEST(AppendSortedRunsTest, StrictlyDecreasingIsAllSingletons) {
  TimestampList ts = {9, 7, 5, 3};
  std::vector<TsRun> runs;
  AppendSortedRuns(ts, &runs);
  ASSERT_EQ(runs.size(), 4u);
  for (const TsRun& run : runs) EXPECT_EQ(run.size, 1u);
}

TEST(MergeSortedRunsTest, NoRunsYieldsEmpty) {
  MergeScratch scratch;
  MergeCounters counters;
  TimestampList out = {42};  // Must be replaced, not appended to.
  MergeSortedRuns(nullptr, 0, &out, &scratch, &counters);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(counters.merge_invocations, 1u);
  EXPECT_EQ(counters.runs_merged, 0u);
  EXPECT_EQ(counters.timestamps_merged, 0u);
}

TEST(MergeSortedRunsTest, AllEmptyRunsAreSkipped) {
  std::vector<TsRun> runs(5);  // All {nullptr, 0}.
  MergeScratch scratch;
  MergeCounters counters;
  TimestampList out;
  MergeSortedRuns(runs.data(), runs.size(), &out, &scratch, &counters);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(counters.runs_merged, 0u);
}

TEST(MergeSortedRunsTest, SingleRunIsCopied) {
  EXPECT_EQ(MergeLists({{1, 4, 4, 9}}), (TimestampList{1, 4, 4, 9}));
}

TEST(MergeSortedRunsTest, TwoInterleavedRuns) {
  EXPECT_EQ(MergeLists({{1, 3, 5}, {2, 4, 6}}),
            (TimestampList{1, 2, 3, 4, 5, 6}));
}

TEST(MergeSortedRunsTest, TwoDisjointRunsGallop) {
  TimestampList a;
  TimestampList b;
  for (Timestamp t = 0; t < 100; ++t) a.push_back(t);
  for (Timestamp t = 100; t < 200; ++t) b.push_back(t);
  EXPECT_EQ(MergeLists({b, a}), ConcatAndSort({a, b}));
}

TEST(MergeSortedRunsTest, DuplicatesAcrossRunsAreKept) {
  EXPECT_EQ(MergeLists({{2, 2, 5}, {2, 5, 5}, {2}}),
            (TimestampList{2, 2, 2, 2, 5, 5, 5}));
}

TEST(MergeSortedRunsTest, CountersTallyRunsAndTimestamps) {
  MergeCounters counters;
  // {3,7,1,4} splits into [3,7] and [1,4]; plus one sorted list and one
  // empty list: 3 non-empty runs, 7 timestamps.
  TimestampList out = MergeLists({{3, 7, 1, 4}, {2, 5, 9}, {}}, &counters);
  EXPECT_EQ(out.size(), 7u);
  EXPECT_EQ(counters.merge_invocations, 1u);
  EXPECT_EQ(counters.runs_merged, 3u);
  EXPECT_EQ(counters.timestamps_merged, 7u);
}

TEST(MergeSortedRunsTest, ScratchIsReusableAcrossCalls) {
  MergeScratch scratch;
  MergeCounters counters;
  std::vector<TimestampList> lists = {{5, 1, 3}, {2, 2, 8}, {7}};
  std::vector<TsRun> runs;
  for (const TimestampList& list : lists) AppendSortedRuns(list, &runs);
  TimestampList out;
  for (int round = 0; round < 3; ++round) {
    MergeSortedRuns(runs.data(), runs.size(), &out, &scratch, &counters);
    EXPECT_EQ(out, ConcatAndSort(lists)) << "round=" << round;
  }
  EXPECT_EQ(counters.merge_invocations, 3u);
  EXPECT_GT(scratch.ByteFootprint(), 0u);
}

// --- Property tests against the oracle ------------------------------------

/// One random instance: `num_lists` lists, each a concatenation of sorted
/// runs whose lengths are geometric-ish with the given mean. Small value
/// ranges force duplicates; empty lists appear regularly.
std::vector<TimestampList> RandomLists(Rng* rng, size_t num_lists,
                                       size_t mean_run_len,
                                       Timestamp value_range) {
  std::vector<TimestampList> lists(num_lists);
  for (TimestampList& list : lists) {
    if (rng->NextBernoulli(0.15)) continue;  // Stay empty.
    const size_t num_runs = 1 + rng->NextUint64(4);
    for (size_t r = 0; r < num_runs; ++r) {
      size_t len = 1 + rng->NextUint64(2 * mean_run_len);
      Timestamp t = static_cast<Timestamp>(rng->NextUint64(value_range));
      for (size_t i = 0; i < len; ++i) {
        list.push_back(t);
        t += static_cast<Timestamp>(rng->NextUint64(4));  // 0 keeps dups.
      }
    }
  }
  return lists;
}

TEST(MergeSortedRunsPropertyTest, FragmentedTinyRunsMatchOracle) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t num_lists = 1 + rng.NextUint64(40);
    std::vector<TimestampList> lists =
        RandomLists(&rng, num_lists, /*mean_run_len=*/2, /*value_range=*/50);
    EXPECT_EQ(MergeLists(lists), ConcatAndSort(lists)) << "trial=" << trial;
  }
}

TEST(MergeSortedRunsPropertyTest, LongStructuredRunsMatchOracle) {
  Rng rng(4711);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t num_lists = 1 + rng.NextUint64(16);
    std::vector<TimestampList> lists = RandomLists(
        &rng, num_lists, /*mean_run_len=*/60, /*value_range=*/5000);
    EXPECT_EQ(MergeLists(lists), ConcatAndSort(lists)) << "trial=" << trial;
  }
}

TEST(MergeSortedRunsPropertyTest, SkewedRunLengthsMatchOracle) {
  // One huge run against many tiny ones: the galloping / carry-over paths.
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<TimestampList> lists;
    TimestampList big;
    Timestamp t = 0;
    const size_t big_len = 500 + rng.NextUint64(500);
    for (size_t i = 0; i < big_len; ++i) {
      big.push_back(t += static_cast<Timestamp>(rng.NextUint64(3)));
    }
    lists.push_back(std::move(big));
    const size_t num_tiny = rng.NextUint64(12);
    for (size_t i = 0; i < num_tiny; ++i) {
      TimestampList tiny;
      tiny.push_back(static_cast<Timestamp>(rng.NextUint64(1500)));
      if (rng.NextBernoulli(0.5)) {
        tiny.push_back(tiny.back() + static_cast<Timestamp>(
                                         rng.NextUint64(10)));
      }
      lists.push_back(std::move(tiny));
    }
    EXPECT_EQ(MergeLists(lists), ConcatAndSort(lists)) << "trial=" << trial;
  }
}

TEST(MergeSortedRunsPropertyTest, EveryRunCountUpToSixtyFour) {
  // Pins the round structure: every k hits a different pairing/carry
  // pattern in the natural-mergesort rounds (odd k exercises carry-over).
  Rng rng(7);
  for (size_t k = 1; k <= 64; ++k) {
    std::vector<TimestampList> lists;
    for (size_t i = 0; i < k; ++i) {
      TimestampList list;
      const size_t len = 1 + rng.NextUint64(30);
      Timestamp t = static_cast<Timestamp>(rng.NextUint64(100));
      for (size_t j = 0; j < len; ++j) {
        list.push_back(t += static_cast<Timestamp>(rng.NextUint64(5)));
      }
      lists.push_back(std::move(list));
    }
    EXPECT_EQ(MergeLists(lists), ConcatAndSort(lists)) << "k=" << k;
  }
}

}  // namespace
}  // namespace rpm
