#include "rpm/common/logging.h"

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, InfoBelowThresholdDoesNotCrash) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  RPM_LOG(Info) << "suppressed " << 42;
  RPM_LOG(Warning) << "also suppressed";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesSilently) {
  RPM_CHECK(1 + 1 == 2) << "never evaluated";
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ RPM_CHECK(false) << "boom " << 7; }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ RPM_LOG(Fatal) << "fatal path"; }, "fatal path");
}

TEST(LoggingTest, DcheckPassesSilently) {
  RPM_DCHECK(true) << "fine";
}

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckFailsInDebugBuilds) {
  EXPECT_DEATH({ RPM_DCHECK(false) << "debug only"; }, "Check failed");
}
#else
TEST(LoggingTest, DcheckCompiledOutInReleaseBuilds) {
  RPM_DCHECK(false) << "must not abort in NDEBUG";
}
#endif

TEST(LoggingTest, CheckConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  auto bump = [&calls]() {
    ++calls;
    return true;
  };
  RPM_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace rpm
