#include "rpm/core/top_k.h"

#include <gtest/gtest.h>

#include "rpm/core/brute_force.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::RandomDbSpec;

TEST(TopKTest, KOneReturnsAMostRecurringPattern) {
  TransactionDatabase db = PaperExampleDb();
  TopKResult result = MineTopKByRecurrence(db, 2, 3, 1);
  ASSERT_EQ(result.patterns.size(), 1u);
  // Every Table 2 pattern has recurrence 2; the top-1 must too.
  EXPECT_EQ(result.patterns[0].recurrence(), 2u);
}

TEST(TopKTest, ReturnsKPatternsWhenAvailable) {
  TransactionDatabase db = PaperExampleDb();
  TopKResult result = MineTopKByRecurrence(db, 2, 3, 5);
  EXPECT_EQ(result.patterns.size(), 5u);
}

TEST(TopKTest, FewerThanKWhenDatabaseIsSmall) {
  TransactionDatabase db = PaperExampleDb();
  // Only 8 recurring patterns exist even at minRec=1... actually more at
  // minRec=1; ask for far more than can exist.
  TopKResult result = MineTopKByRecurrence(db, 2, 3, 1000);
  EXPECT_LT(result.patterns.size(), 1000u);
  EXPECT_EQ(result.final_min_rec, 1u);
}

TEST(TopKTest, ResultsSortedByRecurrenceThenSupport) {
  RandomDbSpec spec;
  spec.num_items = 7;
  spec.num_timestamps = 90;
  TransactionDatabase db = MakeRandomDb(spec, 5);
  TopKResult result = MineTopKByRecurrence(db, 2, 2, 10);
  for (size_t i = 1; i < result.patterns.size(); ++i) {
    const auto& prev = result.patterns[i - 1];
    const auto& cur = result.patterns[i];
    EXPECT_TRUE(prev.recurrence() > cur.recurrence() ||
                (prev.recurrence() == cur.recurrence() &&
                 prev.support >= cur.support));
  }
}

TEST(TopKTest, AgreesWithExhaustiveSelection) {
  // The top-k patterns must be exactly the k best from a full minRec=1
  // mining run (under the same ordering).
  for (uint64_t seed = 41; seed <= 44; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 60;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    const size_t k = 7;
    TopKResult top = MineTopKByRecurrence(db, 3, 2, k);

    RpParams params;
    params.period = 3;
    params.min_ps = 2;
    params.min_rec = 1;
    std::vector<RecurringPattern> all = MineByDefinition(db, params);
    std::sort(all.begin(), all.end(),
              [](const RecurringPattern& a, const RecurringPattern& b) {
                if (a.recurrence() != b.recurrence()) {
                  return a.recurrence() > b.recurrence();
                }
                if (a.support != b.support) return a.support > b.support;
                return a.items < b.items;
              });
    if (all.size() > k) all.resize(k);
    ASSERT_EQ(top.patterns.size(), all.size()) << "seed " << seed;
    for (size_t i = 0; i < all.size(); ++i) {
      EXPECT_EQ(top.patterns[i], all[i]) << "seed " << seed << " i " << i;
    }
  }
}

TEST(TopKTest, EmptyDatabase) {
  TopKResult result = MineTopKByRecurrence(TransactionDatabase{}, 2, 3, 5);
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(result.rounds, 0u);
}

TEST(TopKTest, FloorMinRecIsRespected) {
  TransactionDatabase db = PaperExampleDb();
  TopKOptions options;
  options.floor_min_rec = 2;
  TopKResult result = MineTopKByRecurrence(db, 2, 3, 1000, options);
  EXPECT_EQ(result.final_min_rec, 2u);
  EXPECT_EQ(result.patterns.size(), 8u);  // The Table 2 set.
  for (const RecurringPattern& p : result.patterns) {
    EXPECT_GE(p.recurrence(), 2u);
  }
}

TEST(TopKTest, MaxLengthForwarded) {
  TransactionDatabase db = PaperExampleDb();
  TopKOptions options;
  options.max_pattern_length = 1;
  TopKResult result = MineTopKByRecurrence(db, 2, 3, 20, options);
  for (const RecurringPattern& p : result.patterns) {
    EXPECT_EQ(p.items.size(), 1u);
  }
}

TEST(TopKDeathTest, KZeroIsABug) {
  EXPECT_DEATH(MineTopKByRecurrence(PaperExampleDb(), 2, 3, 0),
               "Check failed");
}

}  // namespace
}  // namespace rpm
