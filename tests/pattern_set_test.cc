#include "rpm/analysis/pattern_set.h"

#include <gtest/gtest.h>

namespace rpm::analysis {
namespace {

TEST(ItemsetsOfTest, ExtractsAndCanonicalizes) {
  std::vector<RecurringPattern> ps = {{{2}, 1, {}},
                                      {{0, 1}, 1, {}},
                                      {{2}, 5, {}}};  // Duplicate itemset.
  std::vector<Itemset> sets = ItemsetsOf(ps);
  EXPECT_EQ(sets, (std::vector<Itemset>{{0, 1}, {2}}));
}

TEST(ItemsetsOfTest, WorksForBaselineTypes) {
  std::vector<rpm::baselines::PeriodicFrequentPattern> pf = {
      {{1}, 3, 2}, {{0, 2}, 4, 1}};
  EXPECT_EQ(ItemsetsOf(pf), (std::vector<Itemset>{{0, 2}, {1}}));

  std::vector<rpm::baselines::PPattern> pp = {{{5}, 3, 2}};
  EXPECT_EQ(ItemsetsOf(pp), (std::vector<Itemset>{{5}}));
}

TEST(IsSubsetOfTest, Basics) {
  std::vector<Itemset> small = {{0}, {1, 2}};
  std::vector<Itemset> big = {{0}, {1}, {1, 2}, {3}};
  EXPECT_TRUE(IsSubsetOf(small, big));
  EXPECT_FALSE(IsSubsetOf(big, small));
  EXPECT_TRUE(IsSubsetOf({}, small));
  EXPECT_TRUE(IsSubsetOf(small, small));
}

TEST(LengthHistogramTest, CountsByLength) {
  std::vector<Itemset> sets = {{0}, {1}, {0, 1}, {0, 1, 2}};
  std::vector<size_t> hist = LengthHistogram(sets);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(LengthHistogramTest, EmptyInput) {
  std::vector<size_t> hist = LengthHistogram({});
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0], 0u);
}

TEST(RecoversPlantedEventTest, MatchesOverlappingInterval) {
  std::vector<RecurringPattern> mined = {
      {{3, 4}, 10, {{100, 200, 50}, {500, 600, 40}}}};
  EXPECT_TRUE(RecoversPlantedEvent(mined, {3, 4}, 150, 400));
  EXPECT_TRUE(RecoversPlantedEvent(mined, {3, 4}, 0, 101));
  EXPECT_FALSE(RecoversPlantedEvent(mined, {3, 4}, 201, 499));
  EXPECT_FALSE(RecoversPlantedEvent(mined, {3, 5}, 150, 400));
  EXPECT_FALSE(RecoversPlantedEvent({}, {3, 4}, 0, 1000));
}

}  // namespace
}  // namespace rpm::analysis
