#include "rpm/analysis/pattern_stats.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm::analysis {
namespace {

RecurringPattern SamplePattern() {
  // sup=10, intervals [0,30]:4 and [60,90]:6.
  return {{1, 2}, 10, {{0, 30, 4}, {60, 90, 6}}};
}

TEST(PatternStatsTest, Durations) {
  PatternStats stats = ComputePatternStats(SamplePattern(), 0, 100);
  EXPECT_EQ(stats.total_interesting_duration, 60);
  EXPECT_EQ(stats.max_interval_duration, 30);
}

TEST(PatternStatsTest, Coverage) {
  PatternStats stats = ComputePatternStats(SamplePattern(), 0, 100);
  EXPECT_DOUBLE_EQ(stats.series_coverage, 0.6);
}

TEST(PatternStatsTest, PeriodicSupportAggregates) {
  PatternStats stats = ComputePatternStats(SamplePattern(), 0, 100);
  EXPECT_DOUBLE_EQ(stats.mean_periodic_support, 5.0);
  EXPECT_EQ(stats.max_periodic_support, 6u);
  EXPECT_DOUBLE_EQ(stats.periodic_concentration, 1.0);  // 10 of sup 10.
}

TEST(PatternStatsTest, ConcentrationBelowOneWithStrayAppearances) {
  RecurringPattern p = {{1}, 20, {{0, 30, 4}, {60, 90, 6}}};
  PatternStats stats = ComputePatternStats(p, 0, 100);
  EXPECT_DOUBLE_EQ(stats.periodic_concentration, 0.5);
}

TEST(PatternStatsTest, NoIntervals) {
  RecurringPattern p = {{1}, 5, {}};
  PatternStats stats = ComputePatternStats(p, 0, 100);
  EXPECT_EQ(stats.total_interesting_duration, 0);
  EXPECT_DOUBLE_EQ(stats.mean_periodic_support, 0.0);
  EXPECT_DOUBLE_EQ(stats.series_coverage, 0.0);
}

TEST(PatternStatsTest, ZeroSpanSeries) {
  PatternStats stats = ComputePatternStats(SamplePattern(), 50, 50);
  EXPECT_DOUBLE_EQ(stats.series_coverage, 0.0);
}

TEST(PatternStatsTest, DbOverloadUsesCarriedIntervalsWhenPresent) {
  // Engine results carry interval lists; the db overload must not
  // recompute them (it would mask a miner bug) — it delegates straight
  // to the span overload.
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  RpParams params = rpm::testing::PaperExampleParams();
  for (const RecurringPattern& p : MineRecurringPatterns(db, params).patterns) {
    PatternStats from_db = ComputePatternStats(p, db, params);
    PatternStats from_span = ComputePatternStats(p, db.start_ts(), db.end_ts());
    EXPECT_EQ(from_db.total_interesting_duration,
              from_span.total_interesting_duration);
    EXPECT_DOUBLE_EQ(from_db.series_coverage, from_span.series_coverage);
    EXPECT_DOUBLE_EQ(from_db.mean_periodic_support,
                     from_span.mean_periodic_support);
  }
}

TEST(PatternStatsTest, DbOverloadRecomputesMissingIntervals) {
  // A pattern arriving WITHOUT intervals (external source, store_patterns
  // pipelines) gets them re-derived from TS^X — stats must match the
  // fully-populated original exactly.
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  RpParams params = rpm::testing::PaperExampleParams();
  for (const RecurringPattern& p : MineRecurringPatterns(db, params).patterns) {
    RecurringPattern stripped = p;
    stripped.intervals.clear();
    PatternStats recomputed = ComputePatternStats(stripped, db, params);
    PatternStats original = ComputePatternStats(p, db, params);
    EXPECT_EQ(recomputed.total_interesting_duration,
              original.total_interesting_duration);
    EXPECT_EQ(recomputed.max_periodic_support, original.max_periodic_support);
    EXPECT_DOUBLE_EQ(recomputed.series_coverage, original.series_coverage);
    EXPECT_DOUBLE_EQ(recomputed.periodic_concentration,
                     original.periodic_concentration);
  }
}

TEST(PatternStatsTest, FormatMentionsEverything) {
  std::string s = FormatPatternStats(ComputePatternStats(SamplePattern(),
                                                         0, 100));
  EXPECT_NE(s.find("coverage=60.0%"), std::string::npos);
  EXPECT_NE(s.find("total_dur=60"), std::string::npos);
  EXPECT_NE(s.find("max_ps=6"), std::string::npos);
  EXPECT_NE(s.find("concentration=100.0%"), std::string::npos);
}

}  // namespace
}  // namespace rpm::analysis
