#include "rpm/core/streaming_rp_list.h"

#include <gtest/gtest.h>

#include <limits>

#include "rpm/core/rp_list.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::G;
using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::RandomDbSpec;

StreamingRpList FeedPaperExample() {
  StreamingRpList list(/*period=*/2, /*min_ps=*/3);
  const TransactionDatabase db = PaperExampleDb();
  for (const Transaction& tr : db.transactions()) {
    EXPECT_TRUE(list.ObserveTransaction(tr.ts, tr.items).ok());
  }
  return list;
}

TEST(StreamingRpListTest, MatchesBatchRpListOnPaperExample) {
  StreamingRpList streaming = FeedPaperExample();
  RpList batch = BuildRpList(PaperExampleDb(), PaperExampleParams());
  for (const RpListEntry& e : batch.entries()) {
    EXPECT_EQ(streaming.SupportOf(e.item), e.support) << "item " << e.item;
    EXPECT_EQ(streaming.ErecOf(e.item), e.erec) << "item " << e.item;
  }
}

TEST(StreamingRpListTest, CandidatesMatchBatch) {
  StreamingRpList streaming = FeedPaperExample();
  RpList batch = BuildRpList(PaperExampleDb(), PaperExampleParams());
  std::vector<ItemId> expected;
  for (const RpListEntry& e : batch.candidates()) expected.push_back(e.item);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(streaming.CandidateItems(2), expected);
}

TEST(StreamingRpListTest, ClosedIntervalsOfItemG) {
  // TS^g = {1,5,6,7,12,14}: runs {1}, {5,6,7}, {12,14}. The first two are
  // closed by later gaps; only {5,6,7} is interesting at minPS=3. The run
  // {12,14} is still open at stream end.
  StreamingRpList list = FeedPaperExample();
  const auto& closed = list.ClosedIntervalsOf(G);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], (PeriodicInterval{5, 7, 3}));
  EXPECT_EQ(list.OpenRunOf(G), (PeriodicInterval{12, 14, 2}));
  EXPECT_EQ(list.RecurrenceOf(G), 1u);
}

TEST(StreamingRpListTest, OpenRunCountsTowardRecurrenceWhenQualifying) {
  StreamingRpList list(2, 2);
  for (Timestamp ts : {1, 2, 10, 11, 12}) {
    ASSERT_TRUE(list.Observe(0, ts).ok());
  }
  // Closed run {1,2} (ps 2, interesting) + open run {10,11,12} (ps 3).
  EXPECT_EQ(list.RecurrenceOf(0), 2u);
  EXPECT_EQ(list.ErecOf(0), 2u);
}

TEST(StreamingRpListTest, RejectsOutOfOrderEvents) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.Observe(0, 10).ok());
  Status s = list.Observe(0, 9);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  // Equal timestamps are fine (same transaction, different items).
  EXPECT_TRUE(list.Observe(1, 10).ok());
}

TEST(StreamingRpListTest, DuplicateItemInSameTimestampIgnored) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.Observe(0, 5).ok());
  ASSERT_TRUE(list.Observe(0, 5).ok());
  EXPECT_EQ(list.SupportOf(0), 1u);
}

TEST(StreamingRpListTest, UnseenItemIsZeroEverything) {
  StreamingRpList list(2, 2);
  EXPECT_EQ(list.SupportOf(42), 0u);
  EXPECT_EQ(list.ErecOf(42), 0u);
  EXPECT_EQ(list.RecurrenceOf(42), 0u);
  EXPECT_TRUE(list.ClosedIntervalsOf(42).empty());
  EXPECT_EQ(list.OpenRunOf(42).periodic_support, 0u);
}

TEST(StreamingRpListTest, EventCountersAdvance) {
  StreamingRpList list = FeedPaperExample();
  EXPECT_EQ(list.events_observed(), 46u);
  EXPECT_EQ(list.last_timestamp(), 14);
  EXPECT_EQ(list.ItemUniverseSize(), 7u);
}

TEST(StreamingRpListTest, MatchesBatchOnRandomStreams) {
  for (uint64_t seed = 71; seed <= 76; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 8;
    spec.num_timestamps = 80;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    RpParams params;
    params.period = 3;
    params.min_ps = 2;
    params.min_rec = 1;
    StreamingRpList streaming(params.period, params.min_ps);
    for (const Transaction& tr : db.transactions()) {
      ASSERT_TRUE(streaming.ObserveTransaction(tr.ts, tr.items).ok());
    }
    RpList batch = BuildRpList(db, params);
    for (const RpListEntry& e : batch.entries()) {
      EXPECT_EQ(streaming.SupportOf(e.item), e.support)
          << "seed " << seed << " item " << e.item;
      EXPECT_EQ(streaming.ErecOf(e.item), e.erec)
          << "seed " << seed << " item " << e.item;
    }
  }
}

TEST(StreamingRpListTest, Figure4IntermediateStates) {
  // Algorithm 1's trace (Figure 4(a)-(c)), checkable because the
  // streaming list exposes state after every transaction.
  using rpm::testing::A;
  using rpm::testing::B;
  using rpm::testing::C;
  using rpm::testing::D;
  using rpm::testing::E;
  using rpm::testing::F;
  StreamingRpList list(2, 3);
  const TransactionDatabase db = PaperExampleDb();

  // (a) After the first transaction {1: a,b,g}.
  ASSERT_TRUE(list.ObserveTransaction(1, db.transaction(0).items).ok());
  for (ItemId item : {A, B, G}) {
    EXPECT_EQ(list.SupportOf(item), 1u);
    EXPECT_EQ(list.OpenRunOf(item), (PeriodicInterval{1, 1, 1}));
  }

  // (b) After the second transaction {2: a,c,d}.
  ASSERT_TRUE(list.ObserveTransaction(2, db.transaction(1).items).ok());
  EXPECT_EQ(list.SupportOf(A), 2u);
  EXPECT_EQ(list.OpenRunOf(A).periodic_support, 2u);
  EXPECT_EQ(list.SupportOf(C), 1u);
  EXPECT_EQ(list.SupportOf(D), 1u);

  // (c) After the seventh transaction {7: a,b,c,g}: the text notes erec of
  // 'a' and 'b' ticked from 0 to 1 and their run restarted.
  for (size_t i = 2; i < 7; ++i) {
    ASSERT_TRUE(
        list.ObserveTransaction(db.transaction(i).ts, db.transaction(i).items)
            .ok());
  }
  EXPECT_EQ(list.SupportOf(A), 5u);
  EXPECT_EQ(list.ErecOf(A), 1u);  // Closed run {1,2,3,4} gave floor(4/3).
  EXPECT_EQ(list.OpenRunOf(A), (PeriodicInterval{7, 7, 1}));
  EXPECT_EQ(list.SupportOf(B), 4u);
  EXPECT_EQ(list.ErecOf(B), 1u);  // Closed run {1,3,4}.
  EXPECT_EQ(list.OpenRunOf(B), (PeriodicInterval{7, 7, 1}));
  EXPECT_EQ(list.SupportOf(G), 4u);
  EXPECT_EQ(list.OpenRunOf(G), (PeriodicInterval{5, 7, 3}));
  EXPECT_EQ(list.SupportOf(C), 4u);
  EXPECT_EQ(list.OpenRunOf(C), (PeriodicInterval{2, 7, 4}));
  EXPECT_EQ(list.SupportOf(E), 3u);
  EXPECT_EQ(list.OpenRunOf(E), (PeriodicInterval{3, 6, 3}));
}

TEST(StreamingRpListTest, RejectsInvalidItemSentinel) {
  // kInvalidItem is uint32 max: accepting it would make the per-item state
  // resize compute item + 1 == 0 and then index out of bounds.
  StreamingRpList list(2, 2);
  Status s = list.Observe(kInvalidItem, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(list.ItemUniverseSize(), 0u);
  EXPECT_EQ(list.events_observed(), 0u);
}

TEST(StreamingRpListTest, ObserveTransactionAtomicOnInvalidItem) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.ObserveTransaction(1, {0}).ok());
  // A bad transaction must not be half-ingested: item 1 precedes the
  // sentinel in the list but still must not be counted.
  Status s = list.ObserveTransaction(2, {1, kInvalidItem});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(list.SupportOf(1), 0u);
  EXPECT_EQ(list.last_timestamp(), 1);
  EXPECT_EQ(list.events_observed(), 1u);
  // The stream stays usable at the rejected timestamp.
  EXPECT_TRUE(list.ObserveTransaction(2, {1}).ok());
  EXPECT_EQ(list.SupportOf(1), 1u);
}

TEST(StreamingRpListTest, ObserveTransactionAtomicOnRegressingTimestamp) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.ObserveTransaction(5, {0}).ok());
  Status s = list.ObserveTransaction(4, {1, 2});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(list.SupportOf(1), 0u);
  EXPECT_EQ(list.SupportOf(2), 0u);
  EXPECT_EQ(list.events_observed(), 1u);
}

TEST(StreamingRpListTest, DuplicateItemsInTransactionCountOnce) {
  // Matches what batch Algorithm 1 sees after TdbBuilder deduplication.
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.ObserveTransaction(1, {3, 3, 3}).ok());
  EXPECT_EQ(list.SupportOf(3), 1u);
  ASSERT_TRUE(list.ObserveTransaction(2, {3, 3}).ok());
  EXPECT_EQ(list.SupportOf(3), 2u);
  EXPECT_EQ(list.OpenRunOf(3), (PeriodicInterval{1, 2, 2}));
  EXPECT_EQ(list.ErecOf(3), 1u);
}

TEST(StreamingRpListTest, ExtremeTimestampGapClosesRun) {
  // The gap INT64_MIN -> INT64_MAX is 2^64 - 1 > period: two singleton
  // runs. A wrapped signed subtraction would fuse them.
  constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
  constexpr Timestamp kMin = std::numeric_limits<Timestamp>::min();
  StreamingRpList list(/*period=*/10, /*min_ps=*/1);
  ASSERT_TRUE(list.Observe(0, kMin).ok());
  ASSERT_TRUE(list.Observe(0, kMax).ok());
  EXPECT_EQ(list.ErecOf(0), 2u);
  ASSERT_EQ(list.ClosedIntervalsOf(0).size(), 1u);
  EXPECT_EQ(list.ClosedIntervalsOf(0)[0], (PeriodicInterval{kMin, kMin, 1}));
  EXPECT_EQ(list.OpenRunOf(0), (PeriodicInterval{kMax, kMax, 1}));
}

TEST(StreamingRpListDeathTest, InvalidConstruction) {
  EXPECT_DEATH(StreamingRpList(0, 1), "Check failed");
  EXPECT_DEATH(StreamingRpList(1, 0), "Check failed");
}

}  // namespace
}  // namespace rpm
