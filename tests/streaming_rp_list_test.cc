#include "rpm/core/streaming_rp_list.h"

#include <gtest/gtest.h>

#include <limits>

#include "rpm/core/measures.h"
#include "rpm/core/rp_list.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::G;
using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::RandomDbSpec;

StreamingRpList FeedPaperExample() {
  StreamingRpList list(/*period=*/2, /*min_ps=*/3);
  const TransactionDatabase db = PaperExampleDb();
  for (const Transaction& tr : db.transactions()) {
    EXPECT_TRUE(list.ObserveTransaction(tr.ts, tr.items).ok());
  }
  return list;
}

TEST(StreamingRpListTest, MatchesBatchRpListOnPaperExample) {
  StreamingRpList streaming = FeedPaperExample();
  RpList batch = BuildRpList(PaperExampleDb(), PaperExampleParams());
  for (const RpListEntry& e : batch.entries()) {
    EXPECT_EQ(streaming.SupportOf(e.item), e.support) << "item " << e.item;
    EXPECT_EQ(streaming.ErecOf(e.item), e.erec) << "item " << e.item;
  }
}

TEST(StreamingRpListTest, CandidatesMatchBatch) {
  StreamingRpList streaming = FeedPaperExample();
  RpList batch = BuildRpList(PaperExampleDb(), PaperExampleParams());
  std::vector<ItemId> expected;
  for (const RpListEntry& e : batch.candidates()) expected.push_back(e.item);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(streaming.CandidateItems(2), expected);
}

TEST(StreamingRpListTest, ClosedIntervalsOfItemG) {
  // TS^g = {1,5,6,7,12,14}: runs {1}, {5,6,7}, {12,14}. The first two are
  // closed by later gaps; only {5,6,7} is interesting at minPS=3. The run
  // {12,14} is still open at stream end.
  StreamingRpList list = FeedPaperExample();
  const auto& closed = list.ClosedIntervalsOf(G);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], (PeriodicInterval{5, 7, 3}));
  EXPECT_EQ(list.OpenRunOf(G), (PeriodicInterval{12, 14, 2}));
  EXPECT_EQ(list.RecurrenceOf(G), 1u);
}

TEST(StreamingRpListTest, OpenRunCountsTowardRecurrenceWhenQualifying) {
  StreamingRpList list(2, 2);
  for (Timestamp ts : {1, 2, 10, 11, 12}) {
    ASSERT_TRUE(list.Observe(0, ts).ok());
  }
  // Closed run {1,2} (ps 2, interesting) + open run {10,11,12} (ps 3).
  EXPECT_EQ(list.RecurrenceOf(0), 2u);
  EXPECT_EQ(list.ErecOf(0), 2u);
}

TEST(StreamingRpListTest, RejectsOutOfOrderEvents) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.Observe(0, 10).ok());
  Status s = list.Observe(0, 9);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  // Equal timestamps are fine (same transaction, different items).
  EXPECT_TRUE(list.Observe(1, 10).ok());
}

TEST(StreamingRpListTest, DuplicateItemInSameTimestampIgnored) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.Observe(0, 5).ok());
  ASSERT_TRUE(list.Observe(0, 5).ok());
  EXPECT_EQ(list.SupportOf(0), 1u);
}

TEST(StreamingRpListTest, UnseenItemIsZeroEverything) {
  StreamingRpList list(2, 2);
  EXPECT_EQ(list.SupportOf(42), 0u);
  EXPECT_EQ(list.ErecOf(42), 0u);
  EXPECT_EQ(list.RecurrenceOf(42), 0u);
  EXPECT_TRUE(list.ClosedIntervalsOf(42).empty());
  EXPECT_EQ(list.OpenRunOf(42).periodic_support, 0u);
}

TEST(StreamingRpListTest, EventCountersAdvance) {
  StreamingRpList list = FeedPaperExample();
  EXPECT_EQ(list.events_observed(), 46u);
  EXPECT_EQ(list.last_timestamp(), 14);
  EXPECT_EQ(list.ItemUniverseSize(), 7u);
}

TEST(StreamingRpListTest, MatchesBatchOnRandomStreams) {
  for (uint64_t seed = 71; seed <= 76; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 8;
    spec.num_timestamps = 80;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    RpParams params;
    params.period = 3;
    params.min_ps = 2;
    params.min_rec = 1;
    StreamingRpList streaming(params.period, params.min_ps);
    for (const Transaction& tr : db.transactions()) {
      ASSERT_TRUE(streaming.ObserveTransaction(tr.ts, tr.items).ok());
    }
    RpList batch = BuildRpList(db, params);
    for (const RpListEntry& e : batch.entries()) {
      EXPECT_EQ(streaming.SupportOf(e.item), e.support)
          << "seed " << seed << " item " << e.item;
      EXPECT_EQ(streaming.ErecOf(e.item), e.erec)
          << "seed " << seed << " item " << e.item;
    }
  }
}

TEST(StreamingRpListTest, Figure4IntermediateStates) {
  // Algorithm 1's trace (Figure 4(a)-(c)), checkable because the
  // streaming list exposes state after every transaction.
  using rpm::testing::A;
  using rpm::testing::B;
  using rpm::testing::C;
  using rpm::testing::D;
  using rpm::testing::E;
  using rpm::testing::F;
  StreamingRpList list(2, 3);
  const TransactionDatabase db = PaperExampleDb();

  // (a) After the first transaction {1: a,b,g}.
  ASSERT_TRUE(list.ObserveTransaction(1, db.transaction(0).items).ok());
  for (ItemId item : {A, B, G}) {
    EXPECT_EQ(list.SupportOf(item), 1u);
    EXPECT_EQ(list.OpenRunOf(item), (PeriodicInterval{1, 1, 1}));
  }

  // (b) After the second transaction {2: a,c,d}.
  ASSERT_TRUE(list.ObserveTransaction(2, db.transaction(1).items).ok());
  EXPECT_EQ(list.SupportOf(A), 2u);
  EXPECT_EQ(list.OpenRunOf(A).periodic_support, 2u);
  EXPECT_EQ(list.SupportOf(C), 1u);
  EXPECT_EQ(list.SupportOf(D), 1u);

  // (c) After the seventh transaction {7: a,b,c,g}: the text notes erec of
  // 'a' and 'b' ticked from 0 to 1 and their run restarted.
  for (size_t i = 2; i < 7; ++i) {
    ASSERT_TRUE(
        list.ObserveTransaction(db.transaction(i).ts, db.transaction(i).items)
            .ok());
  }
  EXPECT_EQ(list.SupportOf(A), 5u);
  EXPECT_EQ(list.ErecOf(A), 1u);  // Closed run {1,2,3,4} gave floor(4/3).
  EXPECT_EQ(list.OpenRunOf(A), (PeriodicInterval{7, 7, 1}));
  EXPECT_EQ(list.SupportOf(B), 4u);
  EXPECT_EQ(list.ErecOf(B), 1u);  // Closed run {1,3,4}.
  EXPECT_EQ(list.OpenRunOf(B), (PeriodicInterval{7, 7, 1}));
  EXPECT_EQ(list.SupportOf(G), 4u);
  EXPECT_EQ(list.OpenRunOf(G), (PeriodicInterval{5, 7, 3}));
  EXPECT_EQ(list.SupportOf(C), 4u);
  EXPECT_EQ(list.OpenRunOf(C), (PeriodicInterval{2, 7, 4}));
  EXPECT_EQ(list.SupportOf(E), 3u);
  EXPECT_EQ(list.OpenRunOf(E), (PeriodicInterval{3, 6, 3}));
}

TEST(StreamingRpListTest, RejectsInvalidItemSentinel) {
  // kInvalidItem is uint32 max: accepting it would make the per-item state
  // resize compute item + 1 == 0 and then index out of bounds.
  StreamingRpList list(2, 2);
  Status s = list.Observe(kInvalidItem, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(list.ItemUniverseSize(), 0u);
  EXPECT_EQ(list.events_observed(), 0u);
}

TEST(StreamingRpListTest, ObserveTransactionAtomicOnInvalidItem) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.ObserveTransaction(1, {0}).ok());
  // A bad transaction must not be half-ingested: item 1 precedes the
  // sentinel in the list but still must not be counted.
  Status s = list.ObserveTransaction(2, {1, kInvalidItem});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(list.SupportOf(1), 0u);
  EXPECT_EQ(list.last_timestamp(), 1);
  EXPECT_EQ(list.events_observed(), 1u);
  // The stream stays usable at the rejected timestamp.
  EXPECT_TRUE(list.ObserveTransaction(2, {1}).ok());
  EXPECT_EQ(list.SupportOf(1), 1u);
}

TEST(StreamingRpListTest, ObserveTransactionAtomicOnRegressingTimestamp) {
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.ObserveTransaction(5, {0}).ok());
  Status s = list.ObserveTransaction(4, {1, 2});
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(list.SupportOf(1), 0u);
  EXPECT_EQ(list.SupportOf(2), 0u);
  EXPECT_EQ(list.events_observed(), 1u);
}

TEST(StreamingRpListTest, DuplicateItemsInTransactionCountOnce) {
  // Matches what batch Algorithm 1 sees after TdbBuilder deduplication.
  StreamingRpList list(2, 2);
  ASSERT_TRUE(list.ObserveTransaction(1, {3, 3, 3}).ok());
  EXPECT_EQ(list.SupportOf(3), 1u);
  ASSERT_TRUE(list.ObserveTransaction(2, {3, 3}).ok());
  EXPECT_EQ(list.SupportOf(3), 2u);
  EXPECT_EQ(list.OpenRunOf(3), (PeriodicInterval{1, 2, 2}));
  EXPECT_EQ(list.ErecOf(3), 1u);
}

TEST(StreamingRpListTest, ExtremeTimestampGapClosesRun) {
  // The gap INT64_MIN -> INT64_MAX is 2^64 - 1 > period: two singleton
  // runs. A wrapped signed subtraction would fuse them.
  constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
  constexpr Timestamp kMin = std::numeric_limits<Timestamp>::min();
  StreamingRpList list(/*period=*/10, /*min_ps=*/1);
  ASSERT_TRUE(list.Observe(0, kMin).ok());
  ASSERT_TRUE(list.Observe(0, kMax).ok());
  EXPECT_EQ(list.ErecOf(0), 2u);
  ASSERT_EQ(list.ClosedIntervalsOf(0).size(), 1u);
  EXPECT_EQ(list.ClosedIntervalsOf(0)[0], (PeriodicInterval{kMin, kMin, 1}));
  EXPECT_EQ(list.OpenRunOf(0), (PeriodicInterval{kMax, kMax, 1}));
}

TEST(StreamingRpListDeathTest, InvalidConstruction) {
  EXPECT_DEATH(StreamingRpList(0, 1), "Check failed");
  EXPECT_DEATH(StreamingRpList(1, 0), "Check failed");
}

// --- WindowedRpList: the sliding-window counterpart. The invariant under
// test everywhere: after any Append/ExpireBefore/Compact sequence the
// aggregates equal what a batch Algorithm 1 scan over the live window
// contents would report.

/// Feeds the paper example, expires everything below `cutoff`, and
/// compares every aggregate against a batch RP-list over the filtered
/// database.
void ExpectWindowMatchesBatch(const WindowedRpList& window,
                              const TransactionDatabase& db,
                              Timestamp cutoff) {
  std::vector<Transaction> live;
  for (const Transaction& tr : db.transactions()) {
    if (tr.ts >= cutoff) live.push_back(tr);
  }
  const TransactionDatabase live_db(live);
  RpParams params;
  params.period = window.period();
  params.min_ps = window.min_ps();
  params.min_rec = 1;
  const RpList batch = BuildRpList(live_db, params);
  for (ItemId item = 0; item < db.ItemUniverseSize(); ++item) {
    uint64_t support = 0, erec = 0;
    for (const RpListEntry& e : batch.entries()) {
      if (e.item != item) continue;
      support = e.support;
      erec = e.erec;
    }
    EXPECT_EQ(window.SupportOf(item), support) << "item " << item;
    EXPECT_EQ(window.ErecOf(item), erec) << "item " << item;
    const std::vector<PeriodicInterval> intervals = FindInterestingIntervals(
        live_db.TimestampsOf({item}), params.period, params.min_ps);
    EXPECT_EQ(window.InterestingIntervalsOf(item), intervals)
        << "item " << item;
    EXPECT_EQ(window.RecurrenceOf(item), intervals.size()) << "item " << item;
  }
}

WindowedRpList FeedWindowedPaperExample() {
  WindowedRpList window(/*period=*/2, /*min_ps=*/3);
  const TransactionDatabase db = PaperExampleDb();
  for (const Transaction& tr : db.transactions()) {
    for (ItemId item : tr.items) {
      EXPECT_TRUE(window.Append(item, tr.ts).ok());
    }
  }
  return window;
}

TEST(WindowedRpListTest, MatchesBatchBeforeAnyExpiry) {
  WindowedRpList window = FeedWindowedPaperExample();
  ExpectWindowMatchesBatch(window, PaperExampleDb(),
                           std::numeric_limits<Timestamp>::min());
}

TEST(WindowedRpListTest, MatchesBatchAfterEveryCutoff) {
  // Slide the cutoff across the whole example one timestamp at a time;
  // after each ExpireBefore the live aggregates must equal a batch scan
  // of the suffix. This covers cutoffs inside runs, at run starts and
  // past entire runs.
  const TransactionDatabase db = PaperExampleDb();
  WindowedRpList window = FeedWindowedPaperExample();
  for (Timestamp cutoff = 1; cutoff <= 15; ++cutoff) {
    window.ExpireBefore(cutoff);
    ExpectWindowMatchesBatch(window, db, cutoff);
  }
  EXPECT_EQ(window.live_timestamp_count(), 0u);
}

TEST(WindowedRpListTest, ExpiryExactlyOnPeriodBoundary) {
  // Item with one run {10, 12, 14} at period 2. A cutoff AT an element
  // keeps it (expiry is strictly-below); the surviving suffix is still
  // one run with the shortened ps.
  WindowedRpList window(/*period=*/2, /*min_ps=*/2);
  for (Timestamp ts : {10, 12, 14}) {
    ASSERT_TRUE(window.Append(0, ts).ok());
  }
  ASSERT_EQ(window.ErecOf(0), 1u);
  window.ExpireBefore(12);
  EXPECT_EQ(window.SupportOf(0), 2u);  // {12, 14} survive.
  EXPECT_EQ(window.ErecOf(0), 1u);     // ps=2 still >= min_ps.
  ASSERT_EQ(window.InterestingIntervalsOf(0).size(), 1u);
  EXPECT_EQ(window.InterestingIntervalsOf(0)[0],
            (PeriodicInterval{12, 14, 2}));
  window.ExpireBefore(13);
  EXPECT_EQ(window.SupportOf(0), 1u);  // {14}: ps=1 < min_ps.
  EXPECT_EQ(window.ErecOf(0), 0u);
  EXPECT_TRUE(window.InterestingIntervalsOf(0).empty());
}

TEST(WindowedRpListTest, DuplicateAppendAtTheExpiryCut) {
  // An item appended twice at one timestamp dedupes to one event; when
  // the cutoff lands exactly there the single survivor must not be
  // double-counted by expiry either.
  WindowedRpList window(/*period=*/2, /*min_ps=*/1);
  ASSERT_TRUE(window.Append(0, 5).ok());
  ASSERT_TRUE(window.Append(0, 7).ok());
  ASSERT_TRUE(window.Append(0, 7).ok());  // Dedup no-op.
  EXPECT_EQ(window.SupportOf(0), 2u);
  EXPECT_EQ(window.counters().timestamps_appended, 2u);
  window.ExpireBefore(7);
  EXPECT_EQ(window.SupportOf(0), 1u);
  EXPECT_EQ(window.counters().timestamps_retired, 1u);
  // Appending again at the cut timestamp is legal (ts == cutoff) and
  // dedupes against the live survivor.
  EXPECT_TRUE(window.Append(0, 7).ok());
  EXPECT_EQ(window.SupportOf(0), 1u);
}

TEST(WindowedRpListTest, RejectsAppendBelowCutoffOrOutOfOrder) {
  WindowedRpList window(/*period=*/2, /*min_ps=*/1);
  ASSERT_TRUE(window.Append(0, 10).ok());
  Status out_of_order = window.Append(0, 9);
  EXPECT_TRUE(out_of_order.IsInvalidArgument()) << out_of_order.ToString();
  window.ExpireBefore(12);
  Status below = window.Append(0, 11);
  EXPECT_FALSE(below.ok());
  EXPECT_TRUE(window.Append(0, 12).ok());
}

TEST(WindowedRpListTest, Int64ExtremeExpiry) {
  constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
  constexpr Timestamp kMin = std::numeric_limits<Timestamp>::min();
  WindowedRpList window(/*period=*/10, /*min_ps=*/1);
  ASSERT_TRUE(window.Append(0, kMin).ok());
  ASSERT_TRUE(window.Append(0, kMin + 5).ok());
  ASSERT_TRUE(window.Append(0, kMax).ok());
  // One run {kMin, kMin+5} (gap 5 <= 10) + singleton {kMax}: the 2^64-1
  // wide gap must not wrap into "within period".
  EXPECT_EQ(window.ErecOf(0), 3u);
  window.ExpireBefore(kMin + 1);
  EXPECT_EQ(window.SupportOf(0), 2u);
  EXPECT_EQ(window.ErecOf(0), 2u);
  window.ExpireBefore(kMax);
  EXPECT_EQ(window.SupportOf(0), 1u);
  EXPECT_EQ(window.InterestingIntervalsOf(0)[0],
            (PeriodicInterval{kMax, kMax, 1}));
}

TEST(WindowedRpListTest, CompactPreservesAggregatesAndCountsOnce) {
  const TransactionDatabase db = PaperExampleDb();
  WindowedRpList window = FeedWindowedPaperExample();
  window.ExpireBefore(7);
  const size_t live = window.live_timestamp_count();
  ASSERT_LT(live, window.stored_timestamp_count());
  window.Compact();
  EXPECT_EQ(window.stored_timestamp_count(), live);
  EXPECT_EQ(window.live_timestamp_count(), live);
  EXPECT_EQ(window.counters().compactions, 1u);
  ExpectWindowMatchesBatch(window, db, 7);
  // A second Compact with nothing to reclaim is not counted.
  window.Compact();
  EXPECT_EQ(window.counters().compactions, 1u);
  // The structure keeps working after compaction: item a had {7,11,12,14}
  // live, the append makes it five.
  EXPECT_TRUE(window.Append(0, 20).ok());
  EXPECT_EQ(window.SupportOf(0), 5u);
}

TEST(WindowedRpListTest, StaleCutoffIsANoOp) {
  WindowedRpList window(/*period=*/2, /*min_ps=*/1);
  ASSERT_TRUE(window.Append(0, 5).ok());
  ASSERT_TRUE(window.Append(0, 6).ok());
  window.ExpireBefore(6);
  const uint64_t retired = window.counters().timestamps_retired;
  window.ExpireBefore(4);  // Regressing cutoff: must change nothing.
  window.ExpireBefore(6);  // Same cutoff: idempotent.
  EXPECT_EQ(window.counters().timestamps_retired, retired);
  EXPECT_EQ(window.SupportOf(0), 1u);
  EXPECT_EQ(window.cutoff(), Timestamp{6});
}

TEST(WindowedRpListDeathTest, InvalidConstruction) {
  EXPECT_DEATH(WindowedRpList(0, 1), "Check failed");
  EXPECT_DEATH(WindowedRpList(1, 0), "Check failed");
}

}  // namespace
}  // namespace rpm
