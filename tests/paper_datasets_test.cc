#include "rpm/gen/paper_datasets.h"

#include <gtest/gtest.h>

#include "rpm/common/civil_time.h"
#include "rpm/timeseries/database_stats.h"

namespace rpm::gen {
namespace {

TEST(PaperDatasetsTest, TwitterEpochIs2013May1) {
  EXPECT_EQ(CivilFromMinutes(TwitterEpochMinutes()),
            (CivilMinute{2013, 5, 1, 0, 0}));
}

TEST(PaperDatasetsTest, QuestScaleControlsSize) {
  TransactionDatabase db = MakeT10I4D100K(0.02);
  EXPECT_EQ(db.size(), 2000u);
}

TEST(PaperDatasetsTest, Shop14MiniShape) {
  GeneratedClickstream g = MakeShop14(0.05);
  DatabaseStats stats = ComputeStats(g.db);
  EXPECT_GT(stats.num_transactions, 1000u);
  EXPECT_LE(stats.num_distinct_items, 138u);
  EXPECT_GT(stats.num_distinct_items, 80u);
}

TEST(PaperDatasetsTest, TwitterMiniContainsPaperEvents) {
  GeneratedHashtagStream g = MakeTwitter(0.05);
  ASSERT_GE(g.events.size(), 4u);
  EXPECT_EQ(g.events[0].label, "uttarakhand-alberta-floods");
  EXPECT_EQ(g.events[1].label, "nuclear-hibaku");
  EXPECT_EQ(g.events[2].label, "pakistan-elections");
  EXPECT_EQ(g.events[3].label, "oklahoma-tornado");
  // The hibaku event recurs (two windows) — that is its whole point.
  EXPECT_EQ(g.events[1].windows.size(), 2u);
}

TEST(PaperDatasetsTest, TwitterNamedTagsPresent) {
  GeneratedHashtagStream g = MakeTwitter(0.02);
  const ItemDictionary& dict = g.db.dictionary();
  for (const char* name : {"yyc", "uttarakhand", "nuclear", "hibaku",
                           "pakvotes", "nayapakistan", "oklahoma", "tornado",
                           "prayforoklahoma"}) {
    EXPECT_TRUE(dict.Lookup(name).ok()) << name;
  }
}

TEST(PaperDatasetsTest, RareTagsAreActuallyRare) {
  GeneratedHashtagStream g = MakeTwitter(0.05);
  DatabaseStats stats = ComputeStats(g.db);
  const ItemDictionary& dict = g.db.dictionary();
  const ItemId uttarakhand = *dict.Lookup("uttarakhand");
  const ItemId nuclear = *dict.Lookup("nuclear");
  // #uttarakhand (rank 950) must be far less frequent than #nuclear
  // (rank 80) — the paper's Figure 8(a) observation.
  EXPECT_LT(stats.item_supports[uttarakhand],
            stats.item_supports[nuclear] / 2);
}

TEST(PaperDatasetsTest, FullScaleWindowsMatchPaperDates) {
  // Window offsets at scale 1.0 must land on the paper's reported dates.
  GeneratedHashtagStream g = MakeTwitter(0.01);  // Windows scaled by 0.01.
  // Instead of generating the full stream, recompute the unscaled offset:
  const int64_t epoch = TwitterEpochMinutes();
  const int64_t start = MinutesFromCivil({2013, 6, 21, 1, 8}) - epoch;
  EXPECT_EQ(start, 51 * 1440 + 68);
  (void)g;
}

TEST(PaperDatasetsDeathTest, RejectsBadScale) {
  EXPECT_DEATH(MakeT10I4D100K(0.0), "Check failed");
  EXPECT_DEATH(MakeTwitter(1.5), "Check failed");
}

}  // namespace
}  // namespace rpm::gen
