#include "rpm/baselines/pf_growth.h"

#include <gtest/gtest.h>

#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm::baselines {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::RandomDbSpec;

TEST(ComputePeriodicityTest, IncludesBoundaryGaps) {
  // db span [0, 20], ts {5, 10}: gaps 5 (lead-in), 5, 10 (tail).
  EXPECT_EQ(ComputePeriodicity({5, 10}, 0, 20), 10);
  EXPECT_EQ(ComputePeriodicity({5, 18}, 0, 20), 13);
  EXPECT_EQ(ComputePeriodicity({0, 10, 20}, 0, 20), 10);
}

TEST(ComputePeriodicityTest, EmptyListIsWholeSpan) {
  EXPECT_EQ(ComputePeriodicity({}, 3, 17), 14);
}

TEST(ComputePeriodicityTest, SingleTimestamp) {
  EXPECT_EQ(ComputePeriodicity({4}, 0, 10), 6);
}

/// Definitional PF miner over all subsets (test oracle).
std::vector<PeriodicFrequentPattern> PfOracle(const TransactionDatabase& db,
                                              const PfParams& params) {
  std::vector<PeriodicFrequentPattern> out;
  const uint32_t n = db.ItemUniverseSize();
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    Itemset pattern;
    for (uint32_t bit = 0; bit < n; ++bit) {
      if (mask & (1u << bit)) pattern.push_back(bit);
    }
    TimestampList ts = db.TimestampsOf(pattern);
    if (ts.size() < params.min_sup) continue;
    Timestamp per = ComputePeriodicity(ts, db.start_ts(), db.end_ts());
    if (per <= params.max_per) {
      out.push_back({pattern, ts.size(), per});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.items < b.items; });
  return out;
}

TEST(PfGrowthTest, MatchesOracleOnPaperExample) {
  PfParams params;
  params.min_sup = 4;
  params.max_per = 3;
  PfGrowthResult result =
      MinePeriodicFrequentPatterns(PaperExampleDb(), params);
  EXPECT_EQ(result.patterns, PfOracle(PaperExampleDb(), params));
}

TEST(PfGrowthTest, MatchesOracleAcrossThresholds) {
  TransactionDatabase db = PaperExampleDb();
  for (uint64_t min_sup : {1u, 3u, 6u, 8u}) {
    for (Timestamp max_per : {1, 2, 3, 5}) {
      PfParams params;
      params.min_sup = min_sup;
      params.max_per = max_per;
      EXPECT_EQ(MinePeriodicFrequentPatterns(db, params).patterns,
                PfOracle(db, params))
          << "minSup=" << min_sup << " maxPer=" << max_per;
    }
  }
}

TEST(PfGrowthTest, MatchesOracleOnRandomDbs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 50;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    PfParams params;
    params.min_sup = 8;
    params.max_per = 6;
    EXPECT_EQ(MinePeriodicFrequentPatterns(db, params).patterns,
              PfOracle(db, params))
        << "seed " << seed;
  }
}

TEST(PfGrowthTest, PeriodicFrequentPatternsAreRecurringPatterns) {
  // The paper: recurring patterns generalise periodic-frequent patterns.
  // PF(minSup, maxPer) is contained in RP(per=maxPer, minPS=minSup,
  // minRec=1): a PF pattern's timestamps have all gaps <= maxPer, so they
  // form one interval with ps = Sup >= minSup.
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 50;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    PfParams pf;
    pf.min_sup = 6;
    pf.max_per = 5;
    RpParams rp;
    rp.period = pf.max_per;
    rp.min_ps = pf.min_sup;
    rp.min_rec = 1;
    auto pf_sets =
        rpm::analysis::ItemsetsOf(MinePeriodicFrequentPatterns(db, pf).patterns);
    auto rp_sets =
        rpm::analysis::ItemsetsOf(MineRecurringPatterns(db, rp).patterns);
    EXPECT_TRUE(rpm::analysis::IsSubsetOf(pf_sets, rp_sets))
        << "seed " << seed << ": PF " << pf_sets.size() << " sets, RP "
        << rp_sets.size();
  }
}

TEST(PfGrowthTest, StrictConstraintYieldsFewPatterns) {
  // Table 8's qualitative point: the complete-cyclic constraint admits far
  // fewer patterns than the recurring model on bursty data.
  RandomDbSpec spec;
  spec.num_items = 8;
  spec.num_timestamps = 80;
  TransactionDatabase db = MakeRandomDb(spec, 99);
  PfParams pf;
  pf.min_sup = 10;
  pf.max_per = 3;
  RpParams rp;
  rp.period = 3;
  rp.min_ps = 5;
  rp.min_rec = 1;
  auto pf_result = MinePeriodicFrequentPatterns(db, pf);
  auto rp_result = MineRecurringPatterns(db, rp);
  EXPECT_LE(pf_result.patterns.size(), rp_result.patterns.size());
}

TEST(PfGrowthTest, EmptyDatabase) {
  PfParams params;
  params.min_sup = 1;
  params.max_per = 10;
  EXPECT_TRUE(
      MinePeriodicFrequentPatterns(TransactionDatabase{}, params)
          .patterns.empty());
}

TEST(PfGrowthTest, ItemAppearingEveryTimestampIsFound) {
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (Timestamp ts = 1; ts <= 10; ++ts) rows.push_back({ts, {A, B}});
  TransactionDatabase db = MakeDatabase(rows);
  PfParams params;
  params.min_sup = 10;
  params.max_per = 1;
  auto result = MinePeriodicFrequentPatterns(db, params);
  ASSERT_EQ(result.patterns.size(), 3u);  // a, b, ab.
  for (const auto& p : result.patterns) {
    EXPECT_EQ(p.support, 10u);
    EXPECT_EQ(p.periodicity, 1);
  }
}

TEST(PfGrowthDeathTest, InvalidParams) {
  PfParams bad;
  bad.min_sup = 0;
  EXPECT_DEATH(MinePeriodicFrequentPatterns(PaperExampleDb(), bad),
               "Check failed");
}

}  // namespace
}  // namespace rpm::baselines
