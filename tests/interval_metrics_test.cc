#include "rpm/analysis/interval_metrics.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm::analysis {
namespace {

TEST(NormalizeSpansTest, SortsAndMerges) {
  std::vector<TimeSpan> spans = {{10, 20}, {0, 5}, {4, 8}, {19, 25}};
  EXPECT_EQ(NormalizeSpans(spans),
            (std::vector<TimeSpan>{{0, 8}, {10, 25}}));
}

TEST(NormalizeSpansTest, DropsEmptyAndInverted) {
  std::vector<TimeSpan> spans = {{5, 5}, {9, 3}, {1, 2}};
  EXPECT_EQ(NormalizeSpans(spans), (std::vector<TimeSpan>{{1, 2}}));
}

TEST(NormalizeSpansTest, AdjacentSpansMerge) {
  std::vector<TimeSpan> spans = {{0, 5}, {5, 9}};
  EXPECT_EQ(NormalizeSpans(spans), (std::vector<TimeSpan>{{0, 9}}));
}

TEST(TotalSpanLengthTest, Sums) {
  EXPECT_EQ(TotalSpanLength({{0, 5}, {10, 12}}), 7);
  EXPECT_EQ(TotalSpanLength({}), 0);
}

TEST(IntersectionLengthTest, PartialOverlaps) {
  EXPECT_EQ(IntersectionLength({{0, 10}}, {{5, 15}}), 5);
  EXPECT_EQ(IntersectionLength({{0, 10}, {20, 30}}, {{5, 25}}), 10);
  EXPECT_EQ(IntersectionLength({{0, 10}}, {{10, 20}}), 0);
  EXPECT_EQ(IntersectionLength({}, {{0, 5}}), 0);
}

TEST(IntersectionLengthTest, UnsortedInputHandled) {
  EXPECT_EQ(IntersectionLength({{20, 30}, {0, 10}}, {{25, 26}, {5, 6}}), 2);
}

TEST(SpansOfIntervalsTest, ClosedToHalfOpen) {
  std::vector<PeriodicInterval> intervals = {{1, 4, 3}, {7, 7, 1}};
  EXPECT_EQ(SpansOfIntervals(intervals),
            (std::vector<TimeSpan>{{1, 5}, {7, 8}}));
}

TEST(WindowRecallTest, FullCoverage) {
  std::vector<PeriodicInterval> intervals = {{0, 99, 50}};
  EXPECT_DOUBLE_EQ(WindowRecall(intervals, {{10, 20}}), 1.0);
}

TEST(WindowRecallTest, HalfCoverage) {
  std::vector<PeriodicInterval> intervals = {{0, 9, 5}};  // Covers [0,10).
  EXPECT_DOUBLE_EQ(WindowRecall(intervals, {{0, 20}}), 0.5);
}

TEST(WindowRecallTest, EmptyWindowsIsOne) {
  EXPECT_DOUBLE_EQ(WindowRecall({}, {}), 1.0);
}

TEST(IntervalPrecisionTest, AllInside) {
  std::vector<PeriodicInterval> intervals = {{10, 14, 3}};  // [10,15).
  EXPECT_DOUBLE_EQ(IntervalPrecision(intervals, {{0, 100}}), 1.0);
}

TEST(IntervalPrecisionTest, HalfInside) {
  std::vector<PeriodicInterval> intervals = {{0, 9, 5}};  // [0,10).
  EXPECT_DOUBLE_EQ(IntervalPrecision(intervals, {{5, 50}}), 0.5);
}

TEST(IntervalPrecisionTest, EmptyIntervalsIsOne) {
  EXPECT_DOUBLE_EQ(IntervalPrecision({}, {{0, 5}}), 1.0);
}

TEST(SpanJaccardTest, IdenticalIsOne) {
  std::vector<PeriodicInterval> intervals = {{0, 9, 5}};
  EXPECT_DOUBLE_EQ(SpanJaccard(intervals, {{0, 10}}), 1.0);
}

TEST(SpanJaccardTest, DisjointIsZero) {
  std::vector<PeriodicInterval> intervals = {{0, 9, 5}};
  EXPECT_DOUBLE_EQ(SpanJaccard(intervals, {{50, 60}}), 0.0);
}

TEST(SpanJaccardTest, PartialOverlap) {
  std::vector<PeriodicInterval> intervals = {{0, 9, 5}};   // [0,10).
  // Window [5,15): intersection 5, union 15.
  EXPECT_DOUBLE_EQ(SpanJaccard(intervals, {{5, 15}}), 5.0 / 15.0);
}

TEST(PatternIntervalsOrComputeTest, CarriedIntervalsTakePrecedence) {
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  RpParams params = rpm::testing::PaperExampleParams();
  // A deliberately wrong interval list must be returned untouched — the
  // helper is a fallback, not a verifier.
  RecurringPattern p = {{rpm::testing::A}, 7, {{100, 200, 42}}};
  EXPECT_EQ(PatternIntervalsOrCompute(p, db, params), p.intervals);
}

TEST(PatternIntervalsOrComputeTest, MissingIntervalsComeFromTsList) {
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  RpParams params = rpm::testing::PaperExampleParams();
  for (const RecurringPattern& mined :
       MineRecurringPatterns(db, params).patterns) {
    RecurringPattern stripped = mined;
    stripped.intervals.clear();
    EXPECT_EQ(PatternIntervalsOrCompute(stripped, db, params), mined.intervals)
        << mined.ToString(nullptr);
  }
}

TEST(SpanJaccardTest, BothEmptyIsOne) {
  EXPECT_DOUBLE_EQ(SpanJaccard({}, {}), 1.0);
}

}  // namespace
}  // namespace rpm::analysis
