// serve/wire.h: the strict line-JSON parser the server feeds with
// attacker-shaped bytes, plus the escaper the serializers rely on. The
// contract under test: malformed input is always a clean InvalidArgument
// (never a throw, never UB), valid input round-trips exactly.

#include "rpm/serve/wire.h"

#include <string>

#include "gtest/gtest.h"

namespace rpm::serve {
namespace {

TEST(WireParse, ScalarsAndTypes) {
  Result<JsonValue> v = ParseJson("42");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kNumber);
  EXPECT_TRUE(v->is_integer);
  EXPECT_EQ(v->integer, 42);

  v = ParseJson("-3.5");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->is_integer);
  EXPECT_DOUBLE_EQ(v->number, -3.5);

  v = ParseJson("true");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(v->bool_value);

  v = ParseJson("null");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->kind, JsonValue::Kind::kNull);

  v = ParseJson("\"hi\\n\\\"there\\\"\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "hi\n\"there\"");
}

TEST(WireParse, ObjectPreservesOrderAndFinds) {
  Result<JsonValue> v =
      ParseJson("{\"op\":\"query\",\"per\":2,\"nested\":{\"x\":[1,2]}}");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->kind, JsonValue::Kind::kObject);
  ASSERT_EQ(v->members.size(), 3u);
  EXPECT_EQ(v->members[0].first, "op");
  const JsonValue* per = v->Find("per");
  ASSERT_NE(per, nullptr);
  EXPECT_EQ(per->GetInt64("per").ValueOrDie(), 2);
  EXPECT_EQ(v->Find("absent"), nullptr);
  const JsonValue* nested = v->Find("nested");
  ASSERT_NE(nested, nullptr);
  ASSERT_NE(nested->Find("x"), nullptr);
  EXPECT_EQ(nested->Find("x")->array.size(), 2u);
}

TEST(WireParse, UnicodeEscapes) {
  Result<JsonValue> v = ParseJson("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, "A\xc3\xa9");  // 'A' + e-acute in UTF-8.
  // Surrogates are rejected, not mangled.
  EXPECT_FALSE(ParseJson("\"\\ud83d\\ude00\"").ok());
}

TEST(WireParse, MalformedInputsAreCleanErrors) {
  const char* cases[] = {
      "",           "{",           "}",          "{\"a\":}",
      "{\"a\" 1}",  "[1,]",        "{,}",        "\"unterminated",
      "tru",        "nul",         "1e999",      "--1",
      "{\"a\":1}x", "[1 2]",       "\"bad\\qescape\"",
      "{\"a\":1,}", "\x01",
  };
  for (const char* input : cases) {
    Result<JsonValue> v = ParseJson(input);
    EXPECT_FALSE(v.ok()) << "input accepted: " << input;
    EXPECT_TRUE(v.status().IsInvalidArgument()) << input;
  }
}

TEST(WireParse, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 1; ++i) deep += '[';
  for (int i = 0; i < kMaxJsonDepth + 1; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());

  std::string shallow;
  for (int i = 0; i < kMaxJsonDepth - 1; ++i) shallow += '[';
  for (int i = 0; i < kMaxJsonDepth - 1; ++i) shallow += ']';
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(WireParse, SizeLimitEnforced) {
  std::string big = "\"";
  big.append(kMaxJsonBytes, 'x');
  big += '"';
  EXPECT_FALSE(ParseJson(big).ok());
}

TEST(WireAccessors, WrongKindNamesField) {
  Result<JsonValue> v = ParseJson("{\"tenant\":7}");
  ASSERT_TRUE(v.ok());
  Result<std::string> s = v->Find("tenant")->GetString("tenant");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("tenant"), std::string::npos);
}

TEST(WireAccessors, Uint64RejectsNegativeAndFractional) {
  Result<JsonValue> v = ParseJson("[-1, 1.5, 3]");
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->array[0].GetUint64("f").ok());
  EXPECT_FALSE(v->array[1].GetUint64("f").ok());
  EXPECT_EQ(v->array[2].GetUint64("f").ValueOrDie(), 3u);
}

TEST(WireEscape, RoundTripsThroughParser) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  std::string wrapped = "\"";
  wrapped += JsonEscape(nasty);
  wrapped += '"';
  Result<JsonValue> v = ParseJson(wrapped);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value, nasty);
}

}  // namespace
}  // namespace rpm::serve
