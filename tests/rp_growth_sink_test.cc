// Tests of the streaming sink / store_patterns options of RP-growth.

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::PaperExamplePatterns;
using ::rpm::testing::RandomDbSpec;

TEST(RpGrowthSinkTest, SinkReceivesExactlyTheStoredPatterns) {
  std::vector<RecurringPattern> sunk;
  RpGrowthOptions options;
  options.sink = [&sunk](const RecurringPattern& p) { sunk.push_back(p); };
  RpGrowthResult result = MineRecurringPatterns(
      PaperExampleDb(), PaperExampleParams(), options);
  EXPECT_TRUE(SamePatternSets(sunk, result.patterns));
  EXPECT_TRUE(SamePatternSets(sunk, PaperExamplePatterns()));
}

TEST(RpGrowthSinkTest, CountOnlyModeKeepsStatsButNoStorage) {
  size_t count = 0;
  RpGrowthOptions options;
  options.store_patterns = false;
  options.sink = [&count](const RecurringPattern&) { ++count; };
  RpGrowthResult result = MineRecurringPatterns(
      PaperExampleDb(), PaperExampleParams(), options);
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(count, 8u);
  EXPECT_EQ(result.stats.patterns_emitted, 8u);
}

TEST(RpGrowthSinkTest, StorePatternsFalseWithoutSinkStillCounts) {
  RpGrowthOptions options;
  options.store_patterns = false;
  RpGrowthResult result = MineRecurringPatterns(
      PaperExampleDb(), PaperExampleParams(), options);
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(result.stats.patterns_emitted, 8u);
}

TEST(RpGrowthSinkTest, SinkSeesVerifiablePatterns) {
  RandomDbSpec spec;
  spec.num_items = 7;
  spec.num_timestamps = 70;
  TransactionDatabase db = MakeRandomDb(spec, 17);
  RpParams params;
  params.period = 3;
  params.min_ps = 3;
  params.min_rec = 1;
  RpGrowthOptions options;
  options.store_patterns = false;
  size_t checked = 0;
  options.sink = [&](const RecurringPattern& p) {
    EXPECT_EQ(rpm::testing::VerifyPatternAgainstDb(db, params, p), "")
        << p.ToString();
    ++checked;
  };
  RpGrowthResult result = MineRecurringPatterns(db, params, options);
  EXPECT_EQ(checked, result.stats.patterns_emitted);
  EXPECT_GT(checked, 0u);
}

TEST(RpGrowthSinkTest, SinkCountsMatchAcrossModes) {
  for (uint64_t seed = 81; seed <= 84; ++seed) {
    RandomDbSpec spec;
    spec.num_items = 6;
    spec.num_timestamps = 60;
    TransactionDatabase db = MakeRandomDb(spec, seed);
    RpParams params;
    params.period = 2;
    params.min_ps = 2;
    params.min_rec = 2;
    RpGrowthResult stored = MineRecurringPatterns(db, params);
    RpGrowthOptions options;
    options.store_patterns = false;
    RpGrowthResult counted = MineRecurringPatterns(db, params, options);
    EXPECT_EQ(counted.stats.patterns_emitted, stored.patterns.size());
  }
}

}  // namespace
}  // namespace rpm
