#include "rpm/gen/clickstream_generator.h"

#include <gtest/gtest.h>

#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"
#include "rpm/timeseries/database_stats.h"

namespace rpm::gen {
namespace {

ClickstreamParams SmallParams() {
  ClickstreamParams params;
  params.num_minutes = 6 * 1440;  // Six days.
  params.num_categories = 40;
  params.num_seasonal_groups = 3;
  params.min_window_minutes = 1440;
  params.max_window_minutes = 2 * 1440;
  params.seed = 21;
  return params;
}

TEST(ClickstreamGeneratorTest, Deterministic) {
  GeneratedClickstream a = GenerateClickstream(SmallParams());
  GeneratedClickstream b = GenerateClickstream(SmallParams());
  ASSERT_EQ(a.db.size(), b.db.size());
  for (size_t i = 0; i < a.db.size(); ++i) {
    EXPECT_EQ(a.db.transaction(i).items, b.db.transaction(i).items);
  }
  ASSERT_EQ(a.ground_truth.size(), b.ground_truth.size());
  for (size_t g = 0; g < a.ground_truth.size(); ++g) {
    EXPECT_EQ(a.ground_truth[g].categories, b.ground_truth[g].categories);
    EXPECT_EQ(a.ground_truth[g].windows, b.ground_truth[g].windows);
  }
}

TEST(ClickstreamGeneratorTest, DatabaseValidates) {
  GeneratedClickstream g = GenerateClickstream(SmallParams());
  EXPECT_TRUE(g.db.Validate().ok());
  EXPECT_GT(g.db.size(), 1000u);
  EXPECT_LE(g.db.size(), SmallParams().num_minutes);
}

TEST(ClickstreamGeneratorTest, PlantsRequestedGroups) {
  GeneratedClickstream g = GenerateClickstream(SmallParams());
  ASSERT_EQ(g.ground_truth.size(), 3u);
  for (const SeasonalGroup& group : g.ground_truth) {
    EXPECT_GE(group.categories.size(), SmallParams().min_group_size);
    EXPECT_LE(group.categories.size(), SmallParams().max_group_size);
    EXPECT_FALSE(group.windows.empty());
    for (const auto& [begin, end] : group.windows) {
      EXPECT_LT(begin, end);
      EXPECT_LE(end, static_cast<Timestamp>(2 * SmallParams().num_minutes));
    }
  }
}

TEST(ClickstreamGeneratorTest, ActivityCurveIsBounded) {
  ClickstreamParams params = SmallParams();
  for (Timestamp ts = 0; ts < 3 * 1440; ts += 17) {
    const double a = ClickstreamActivity(params, ts);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(ClickstreamGeneratorTest, NightIsQuieterThanAfternoon) {
  ClickstreamParams params = SmallParams();
  // 04:00 trough vs 16:00 peak on a weekday (day 0).
  EXPECT_LT(ClickstreamActivity(params, 4 * 60),
            ClickstreamActivity(params, 16 * 60));
}

TEST(ClickstreamGeneratorTest, WeekendIsDamped) {
  ClickstreamParams params = SmallParams();
  const Timestamp weekday_4pm = 16 * 60;              // Day 0.
  const Timestamp weekend_4pm = 5 * 1440 + 16 * 60;   // Day 5.
  EXPECT_LT(ClickstreamActivity(params, weekend_4pm),
            ClickstreamActivity(params, weekday_4pm));
}

TEST(ClickstreamGeneratorTest, MinerRecoversPlantedGroups) {
  // End-to-end: every planted group must surface as a recurring pattern
  // whose interesting interval overlaps a planted window.
  ClickstreamParams params = SmallParams();
  params.group_fire_prob = 0.7;  // Strong signal for a compact test.
  GeneratedClickstream g = GenerateClickstream(params);

  RpParams mine;
  mine.period = 60;   // One hour.
  mine.min_ps = 30;
  mine.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(g.db, mine);

  for (const SeasonalGroup& group : g.ground_truth) {
    bool recovered = false;
    for (const auto& [begin, end] : group.windows) {
      recovered = recovered || rpm::analysis::RecoversPlantedEvent(
                                   result.patterns, group.categories, begin,
                                   end);
    }
    EXPECT_TRUE(recovered) << "group of " << group.categories.size()
                           << " categories not recovered";
  }
}

}  // namespace
}  // namespace rpm::gen
