// serve/protocol.h: request parsing mirrors the mine flag vocabulary
// (unknown fields rejected), the cache key covers exactly the fields that
// change a completed payload (and nothing history-dependent), and every
// response constructor emits one parseable JSON line.

#include "rpm/serve/protocol.h"

#include <string>

#include "gtest/gtest.h"
#include "rpm/engine/executor.h"
#include "rpm/engine/query.h"
#include "rpm/serve/wire.h"

namespace rpm::serve {
namespace {

TEST(WireStatus, NamesAreStable) {
  EXPECT_STREQ(WireStatusName(StatusCode::kOk), "OK");
  EXPECT_STREQ(WireStatusName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(WireStatusName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(WireStatusName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(WireStatusName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(WireStatusName(StatusCode::kCancelled), "CANCELLED");
}

TEST(ParseRequest, QueryDefaultsMatchServeContract) {
  Result<Request> r = ParseRequest(
      "{\"op\":\"query\",\"dataset\":\"d\",\"per\":2,\"min_ps\":3,"
      "\"min_rec\":2}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tenant, "anonymous");
  EXPECT_EQ(r->threads, 1u);
  EXPECT_TRUE(r->want_meta);
  EXPECT_EQ(r->backend, engine::BackendKind::kSequential);
  EXPECT_EQ(r->query.params.period, 2);
  EXPECT_EQ(r->query.params.min_ps, 3u);
  EXPECT_EQ(r->query.params.min_rec, 2u);
}

TEST(ParseRequest, FullVocabularyRoundTrips) {
  Result<Request> r = ParseRequest(
      "{\"op\":\"query\",\"id\":\"q7\",\"tenant\":\"alice\","
      "\"dataset\":\"d\",\"per\":3,\"min_ps\":2,\"min_rec\":4,"
      "\"tolerance\":1,\"top_k\":0,\"max_length\":5,\"closed\":true,"
      "\"timeout_ms\":1000,\"max_memory_mb\":64,\"max_patterns\":100,"
      "\"backend\":\"parallel\",\"threads\":2,\"meta\":false}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->id, "q7");
  EXPECT_EQ(r->tenant, "alice");
  EXPECT_EQ(r->query.params.max_gap_violations, 1u);
  EXPECT_EQ(r->query.max_pattern_length, 5u);
  EXPECT_TRUE(r->query.closed);
  EXPECT_EQ(r->query.limits.timeout_ms, 1000);
  EXPECT_EQ(r->query.limits.memory_budget_bytes, 64ull * 1024 * 1024);
  EXPECT_EQ(r->query.limits.max_patterns, 100u);
  EXPECT_EQ(r->backend, engine::BackendKind::kParallel);
  EXPECT_EQ(r->threads, 2u);
  EXPECT_FALSE(r->want_meta);
}

TEST(ParseRequest, RejectsUnknownFieldsLikeUnknownFlags) {
  Result<Request> r = ParseRequest(
      "{\"op\":\"query\",\"dataset\":\"d\",\"per\":2,\"min_ps\":3,"
      "\"min_rec\":2,\"bogus\":1}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("bogus"), std::string::npos);
}

TEST(ParseRequest, RejectsIncoherentRequests) {
  // Missing op, unknown op, missing dataset, empty tenant, invalid params.
  EXPECT_FALSE(ParseRequest("{\"id\":\"x\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"op\":\"frobnicate\"}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"op\":\"query\",\"per\":2,\"min_rec\":2}").ok());
  EXPECT_FALSE(
      ParseRequest("{\"op\":\"query\",\"dataset\":\"d\",\"tenant\":\"\","
                   "\"per\":2,\"min_rec\":2}")
          .ok());
  EXPECT_FALSE(ParseRequest("{\"op\":\"query\",\"dataset\":\"d\","
                            "\"per\":0,\"min_rec\":2}")
                   .ok());
  EXPECT_FALSE(ParseRequest("{\"op\":\"swap\",\"dataset\":\"d\"}").ok());
  EXPECT_FALSE(ParseRequest("not json").ok());
}

TEST(ParseRequest, MinPsZeroResolvesToOneLikeTheCli) {
  Result<Request> r = ParseRequest(
      "{\"op\":\"query\",\"dataset\":\"d\",\"per\":2,\"min_rec\":2}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->query.params.min_ps, 1u);
}

TEST(CacheKey, CoversShapeNotLimitsOrBackend) {
  engine::Query base;
  base.params.period = 2;
  base.params.min_ps = 3;
  base.params.min_rec = 2;
  const std::string key = CacheKey("d", 1, base);

  // Limits are excluded by design: a completed, untruncated result is the
  // full deterministic answer under any sufficient budget.
  engine::Query limited = base;
  limited.limits.timeout_ms = 5;
  limited.limits.memory_budget_bytes = 1 << 20;
  EXPECT_EQ(CacheKey("d", 1, limited), key);

  // Everything that changes the payload must change the key.
  engine::Query stricter = base;
  stricter.params.min_rec = 3;
  EXPECT_NE(CacheKey("d", 1, stricter), key);
  engine::Query closed = base;
  closed.closed = true;
  EXPECT_NE(CacheKey("d", 1, closed), key);
  EXPECT_NE(CacheKey("d", 2, base), key);   // epoch (hot swap)
  EXPECT_NE(CacheKey("d2", 1, base), key);  // dataset name
}

TEST(Responses, AreParseableJsonLines) {
  Result<JsonValue> error =
      ParseJson(ErrorResponse("id-1", "NOT_FOUND", "no dataset \"x\"\n"));
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->Find("status")->string_value, "NOT_FOUND");
  EXPECT_EQ(error->Find("id")->string_value, "id-1");
  EXPECT_NE(error->Find("error"), nullptr);

  Result<JsonValue> overloaded =
      ParseJson(OverloadedResponse("id-2", 120, "tenant"));
  ASSERT_TRUE(overloaded.ok());
  EXPECT_EQ(overloaded->Find("status")->string_value, "OVERLOADED");
  EXPECT_EQ(overloaded->Find("retry_after_ms")->integer, 120);
  EXPECT_EQ(overloaded->Find("rejected_by")->string_value, "tenant");

  Result<JsonValue> wrapped = ParseJson(
      WrapResponse("id-3", "\"status\":\"OK\"", "\"cache\":\"hit\""));
  ASSERT_TRUE(wrapped.ok());
  ASSERT_NE(wrapped->Find("meta"), nullptr);
  EXPECT_EQ(wrapped->Find("meta")->Find("cache")->string_value, "hit");

  // Empty meta is omitted entirely, keeping meta-free replies canonical.
  Result<JsonValue> bare =
      ParseJson(WrapResponse("id-4", "\"status\":\"OK\"", ""));
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->Find("meta"), nullptr);
}

}  // namespace
}  // namespace rpm::serve
