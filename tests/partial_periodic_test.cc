#include "rpm/baselines/partial_periodic.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm::baselines {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;

/// A strictly alternating symbolic sequence: a, b, a, b, ... at unit
/// timestamps. With p=2 the pattern {a}* holds in every segment.
TransactionDatabase AlternatingDb(size_t n) {
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({static_cast<Timestamp>(i + 1),
                    Itemset{i % 2 == 0 ? A : B}});
  }
  return MakeDatabase(rows);
}

TEST(PartialPeriodicTest, AlternatingSequenceFullSupport) {
  TransactionDatabase db = AlternatingDb(20);
  PartialPeriodicParams params;
  params.period_length = 2;
  params.min_sup = 10;
  PartialPeriodicResult result = MinePartialPeriodicPatterns(db, params);
  ASSERT_EQ(result.num_segments, 10u);
  // Patterns with support 10: a@0, b@1, and {a@0, b@1}.
  ASSERT_EQ(result.patterns.size(), 3u);
  EXPECT_EQ(result.patterns[0].elements,
            (std::vector<PositionedItem>{{0, A}}));
  EXPECT_EQ(result.patterns[1].elements,
            (std::vector<PositionedItem>{{0, A}, {1, B}}));
  EXPECT_EQ(result.patterns[2].elements,
            (std::vector<PositionedItem>{{1, B}}));
  for (const auto& p : result.patterns) EXPECT_EQ(p.support, 10u);
}

TEST(PartialPeriodicTest, TrailingPartialSegmentDropped) {
  TransactionDatabase db = AlternatingDb(21);  // One extra transaction.
  PartialPeriodicParams params;
  params.period_length = 2;
  params.min_sup = 1;
  PartialPeriodicResult result = MinePartialPeriodicPatterns(db, params);
  EXPECT_EQ(result.num_segments, 10u);
}

TEST(PartialPeriodicTest, SupportCountsMatchDefinition) {
  // p=3 over 4 segments with 'c' at offset 2 in segments 0, 2, 3 only.
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (size_t i = 0; i < 12; ++i) {
    Itemset items = {A};
    if (i % 3 == 2 && i / 3 != 1) items.push_back(C);
    rows.push_back({static_cast<Timestamp>(i + 1), items});
  }
  TransactionDatabase db = MakeDatabase(rows);
  PartialPeriodicParams params;
  params.period_length = 3;
  params.min_sup = 3;
  PartialPeriodicResult result = MinePartialPeriodicPatterns(db, params);
  bool found = false;
  for (const auto& p : result.patterns) {
    if (p.elements == std::vector<PositionedItem>{{2, C}}) {
      found = true;
      EXPECT_EQ(p.support, 3u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(PartialPeriodicTest, PositionBlindnessToRealTime) {
  // The model's defining weakness (the paper's Sec. 2 critique): items
  // periodic in *time* but with a missing transaction shift position and
  // lose segment support.  'a' fires at every even timestamp, but one
  // empty timestamp (no transaction at ts 10) compresses the sequence.
  std::vector<std::pair<Timestamp, Itemset>> rows;
  for (Timestamp ts = 1; ts <= 20; ++ts) {
    if (ts == 10) continue;  // Nothing happened at ts 10.
    Itemset items = {(ts % 2 == 0) ? A : B};
    rows.push_back({ts, items});
  }
  TransactionDatabase db = MakeDatabase(rows);

  // Time-aware recurring mining sees 'a' with per=2: two interesting
  // intervals {2..8} (ps 4) and {12..20} (ps 5) around the silent ts 10.
  RpParams rp;
  rp.period = 2;
  rp.min_ps = 4;
  rp.min_rec = 2;
  RpGrowthResult rp_result = MineRecurringPatterns(db, rp);
  bool a_recurring = false;
  for (const auto& p : rp_result.patterns) {
    a_recurring = a_recurring || p.items == Itemset{A};
  }
  EXPECT_TRUE(a_recurring);

  // Position-based mining: after the gap 'a' flips from offset 1 to
  // offset 0, so neither offset reaches support 9 at p=2.
  PartialPeriodicParams pp;
  pp.period_length = 2;
  pp.min_sup = 9;
  PartialPeriodicResult pp_result = MinePartialPeriodicPatterns(db, pp);
  for (const auto& p : pp_result.patterns) {
    for (const PositionedItem& e : p.elements) {
      EXPECT_NE(e.item, A) << "position-based model should lose 'a'";
    }
  }
}

TEST(PartialPeriodicTest, MaxElementsCap) {
  TransactionDatabase db = AlternatingDb(20);
  PartialPeriodicParams params;
  params.period_length = 2;
  params.min_sup = 5;
  PartialPeriodicOptions options;
  options.max_pattern_elements = 1;
  PartialPeriodicResult result =
      MinePartialPeriodicPatterns(db, params, options);
  for (const auto& p : result.patterns) {
    EXPECT_EQ(p.elements.size(), 1u);
  }
}

TEST(PartialPeriodicTest, TotalCapTruncates) {
  TransactionDatabase db = AlternatingDb(20);
  PartialPeriodicParams params;
  params.period_length = 2;
  params.min_sup = 1;
  PartialPeriodicOptions options;
  options.max_total_patterns = 2;
  PartialPeriodicResult result =
      MinePartialPeriodicPatterns(db, params, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.patterns.size(), 2u);
}

TEST(PartialPeriodicTest, PeriodOneIsPlainFrequentItemsets) {
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  PartialPeriodicParams params;
  params.period_length = 1;
  params.min_sup = 7;
  PartialPeriodicResult result = MinePartialPeriodicPatterns(db, params);
  // Segments == transactions; support == plain itemset support.
  // Sup >= 7: a(8), b(7), c(7), ab(7).
  ASSERT_EQ(result.patterns.size(), 4u);
  for (const auto& p : result.patterns) {
    Itemset items;
    for (const PositionedItem& e : p.elements) items.push_back(e.item);
    EXPECT_EQ(p.support, db.SupportOf(items));
  }
}

TEST(PartialPeriodicTest, FormatRendering) {
  ItemDictionary dict;
  dict.GetOrAdd("a");
  dict.GetOrAdd("b");
  PartialPeriodicPattern p;
  p.elements = {{0, 0}, {2, 1}};
  EXPECT_EQ(FormatPartialPeriodicPattern(p, 3, dict), "{a}*{b}");
  PartialPeriodicPattern multi;
  multi.elements = {{1, 0}, {1, 1}};
  EXPECT_EQ(FormatPartialPeriodicPattern(multi, 2, dict), "*{a,b}");
  EXPECT_EQ(FormatPartialPeriodicPattern(multi, 2, ItemDictionary{}),
            "*{0,1}");
}

TEST(PartialPeriodicTest, EmptyDatabase) {
  PartialPeriodicParams params;
  params.period_length = 3;
  params.min_sup = 1;
  PartialPeriodicResult result =
      MinePartialPeriodicPatterns(TransactionDatabase{}, params);
  EXPECT_EQ(result.num_segments, 0u);
  EXPECT_TRUE(result.patterns.empty());
}

TEST(PartialPeriodicDeathTest, InvalidParams) {
  PartialPeriodicParams bad;
  bad.period_length = 0;
  EXPECT_DEATH(
      MinePartialPeriodicPatterns(rpm::testing::PaperExampleDb(), bad),
      "Check failed");
}

}  // namespace
}  // namespace rpm::baselines
