#include "rpm/core/rp_list.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;
using ::rpm::testing::C;
using ::rpm::testing::D;
using ::rpm::testing::E;
using ::rpm::testing::F;
using ::rpm::testing::G;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;

const RpListEntry* FindEntry(const RpList& list, ItemId item) {
  for (const RpListEntry& e : list.entries()) {
    if (e.item == item) return &e;
  }
  return nullptr;
}

TEST(RpListTest, Figure4eSupports) {
  RpList list = BuildRpList(PaperExampleDb(), PaperExampleParams());
  // Figure 4(e): a:8, b:7, c:7, d:6, e:6, f:6, g:6.
  const uint64_t expected_support[7] = {8, 7, 7, 6, 6, 6, 6};
  for (ItemId i = 0; i < 7; ++i) {
    const RpListEntry* e = FindEntry(list, i);
    ASSERT_NE(e, nullptr) << "item " << i;
    EXPECT_EQ(e->support, expected_support[i]) << "item " << i;
  }
}

TEST(RpListTest, Figure4eErecValues) {
  RpList list = BuildRpList(PaperExampleDb(), PaperExampleParams());
  // Figure 4(e): erec a:2, b:2, c:2, d:2, e:2, f:2, g:1.
  const uint64_t expected_erec[7] = {2, 2, 2, 2, 2, 2, 1};
  for (ItemId i = 0; i < 7; ++i) {
    const RpListEntry* e = FindEntry(list, i);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->erec, expected_erec[i]) << "item " << i;
  }
}

TEST(RpListTest, Figure4fPrunesGAndSortsBySupport) {
  RpList list = BuildRpList(PaperExampleDb(), PaperExampleParams());
  // g has erec=1 < minRec=2: pruned. Candidate order (support desc):
  // a(8), b(7), c(7), d(6), e(6), f(6).
  ASSERT_EQ(list.num_candidates(), 6u);
  EXPECT_EQ(list.candidates()[0].item, A);
  EXPECT_EQ(list.candidates()[1].item, B);
  EXPECT_EQ(list.candidates()[2].item, C);
  EXPECT_EQ(list.candidates()[3].item, D);
  EXPECT_EQ(list.candidates()[4].item, E);
  EXPECT_EQ(list.candidates()[5].item, F);
  EXPECT_FALSE(list.IsCandidate(G));
}

TEST(RpListTest, RanksAreConsistent) {
  RpList list = BuildRpList(PaperExampleDb(), PaperExampleParams());
  for (uint32_t rank = 0; rank < list.num_candidates(); ++rank) {
    EXPECT_EQ(list.RankOf(list.candidates()[rank].item), rank);
  }
  EXPECT_EQ(list.RankOf(G), kNotCandidate);
  EXPECT_EQ(list.RankOf(999), kNotCandidate);
}

TEST(RpListTest, ErecMatchesMeasureOnPointSequences) {
  // The streaming per-item erec must equal ComputeErec on the item's
  // extracted point sequence.
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  RpList list = BuildRpList(db, params);
  for (const RpListEntry& e : list.entries()) {
    TimestampList ts = db.TimestampsOf({e.item});
    EXPECT_EQ(e.erec, ComputeErec(ts, params.period, params.min_ps))
        << "item " << e.item;
    EXPECT_EQ(e.support, ts.size());
  }
}

TEST(RpListTest, MinRecOneKeepsEverything) {
  RpParams params = PaperExampleParams();
  params.min_rec = 1;
  RpList list = BuildRpList(PaperExampleDb(), params);
  EXPECT_EQ(list.num_candidates(), 7u);  // Even g (erec=1) survives.
}

TEST(RpListTest, HugeMinPsPrunesAll) {
  RpParams params = PaperExampleParams();
  params.min_ps = 100;
  RpList list = BuildRpList(PaperExampleDb(), params);
  EXPECT_EQ(list.num_candidates(), 0u);
}

TEST(RpListTest, EmptyDatabase) {
  RpList list = BuildRpList(TransactionDatabase{}, PaperExampleParams());
  EXPECT_TRUE(list.entries().empty());
  EXPECT_EQ(list.num_candidates(), 0u);
}

TEST(RpListTest, TolerantModeUsesSupportBound) {
  RpParams params = PaperExampleParams();
  params.max_gap_violations = 1;
  RpList list = BuildRpList(PaperExampleDb(), params);
  // Bound = floor(support / minPS): g has floor(6/3) = 2 >= minRec.
  EXPECT_TRUE(list.IsCandidate(G));
  const RpListEntry* g = FindEntry(list, G);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->erec, 2u);
}

TEST(RpListTest, ToStringListsCandidates) {
  RpList list = BuildRpList(PaperExampleDb(), PaperExampleParams());
  std::string s = list.ToString();
  EXPECT_NE(s.find("RP-list["), std::string::npos);
  EXPECT_NE(s.find("s=8"), std::string::npos);
}

TEST(RpListDeathTest, InvalidParamsAreABug) {
  RpParams bad;
  bad.period = 0;
  EXPECT_DEATH(BuildRpList(PaperExampleDb(), bad), "Check failed");
}

}  // namespace
}  // namespace rpm
