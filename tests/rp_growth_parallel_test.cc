// Parallel RP-growth must be indistinguishable from the sequential miner:
// identical pattern sets, identical canonical order, identical
// thread-invariant stats counters — for every thread count, on every
// dataset family. Also covers sink serialization and the projection
// decomposition itself.

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rpm/core/projection.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/thread_pool.h"
#include "rpm/gen/paper_datasets.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;

constexpr size_t kThreadCounts[] = {2, 4, 8};

/// Asserts the parallel run at `threads` equals `sequential` bit-for-bit:
/// patterns, order, and the counters that must not depend on scheduling.
void ExpectMatchesSequential(const TransactionDatabase& db,
                             const RpParams& params,
                             const RpGrowthResult& sequential,
                             size_t threads,
                             const RpGrowthOptions& base = {}) {
  RpGrowthOptions options = base;
  options.num_threads = threads;
  RpGrowthResult parallel = MineRecurringPatterns(db, params, options);
  ASSERT_EQ(parallel.patterns.size(), sequential.patterns.size())
      << "threads=" << threads;
  for (size_t i = 0; i < sequential.patterns.size(); ++i) {
    EXPECT_EQ(parallel.patterns[i], sequential.patterns[i])
        << "threads=" << threads << " index=" << i << "\nparallel: "
        << parallel.patterns[i].ToString()
        << "\nsequential: " << sequential.patterns[i].ToString();
  }
  EXPECT_EQ(parallel.stats.num_items, sequential.stats.num_items);
  EXPECT_EQ(parallel.stats.num_candidate_items,
            sequential.stats.num_candidate_items);
  EXPECT_EQ(parallel.stats.initial_tree_nodes,
            sequential.stats.initial_tree_nodes);
  EXPECT_EQ(parallel.stats.conditional_trees,
            sequential.stats.conditional_trees)
      << "threads=" << threads;
  EXPECT_EQ(parallel.stats.patterns_examined,
            sequential.stats.patterns_examined)
      << "threads=" << threads;
  EXPECT_EQ(parallel.stats.patterns_emitted,
            sequential.stats.patterns_emitted)
      << "threads=" << threads;
  // The merge-kernel counters are schedule-invariant: the parallel miner
  // performs exactly the sequential miner's merges, only distributed over
  // workers (the top-level ts_beta merges move into the projection pass,
  // and each projection's conditional recursion is identical). Only
  // scratch_bytes_peak may differ — it is a max over per-worker pools.
  EXPECT_EQ(parallel.stats.merge_invocations,
            sequential.stats.merge_invocations)
      << "threads=" << threads;
  EXPECT_EQ(parallel.stats.runs_merged, sequential.stats.runs_merged)
      << "threads=" << threads;
  EXPECT_EQ(parallel.stats.timestamps_merged,
            sequential.stats.timestamps_merged)
      << "threads=" << threads;
}

TEST(RpGrowthParallelTest, PaperExampleAllThreadCounts) {
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  RpGrowthResult sequential = MineRecurringPatterns(db, params);
  for (size_t threads : kThreadCounts) {
    ExpectMatchesSequential(db, params, sequential, threads);
  }
}

TEST(RpGrowthParallelTest, PaperExampleFullThresholdGrid) {
  // The same grid paper_grid_test checks against the oracle, here checked
  // parallel-vs-sequential.
  TransactionDatabase db = PaperExampleDb();
  for (Timestamp per : {1, 2, 3, 4, 5, 7, 13, 20}) {
    for (uint64_t min_ps : {1u, 2u, 3u, 4u, 6u, 12u}) {
      for (uint64_t min_rec : {1u, 2u, 3u, 4u}) {
        RpParams params;
        params.period = per;
        params.min_ps = min_ps;
        params.min_rec = min_rec;
        RpGrowthResult sequential = MineRecurringPatterns(db, params);
        for (size_t threads : kThreadCounts) {
          ExpectMatchesSequential(db, params, sequential, threads);
        }
      }
    }
  }
}

TEST(RpGrowthParallelTest, QuestMini) {
  TransactionDatabase db = gen::MakeT10I4D100K(0.01, 99);
  RpParams params;
  params.period = 30;
  params.min_ps = 5;
  params.min_rec = 2;
  RpGrowthResult sequential = MineRecurringPatterns(db, params);
  EXPECT_GT(sequential.patterns.size(), 0u);
  for (size_t threads : kThreadCounts) {
    ExpectMatchesSequential(db, params, sequential, threads);
  }
}

TEST(RpGrowthParallelTest, ClickstreamMini) {
  gen::GeneratedClickstream shop = gen::MakeShop14(0.01, 77);
  RpParams params;
  params.period = 120;
  params.min_ps = 20;
  params.min_rec = 1;
  RpGrowthResult sequential = MineRecurringPatterns(shop.db, params);
  EXPECT_GT(sequential.patterns.size(), 0u);
  for (size_t threads : kThreadCounts) {
    ExpectMatchesSequential(shop.db, params, sequential, threads);
  }
}

TEST(RpGrowthParallelTest, HashtagMini) {
  gen::GeneratedHashtagStream twitter = gen::MakeTwitter(0.01, 88);
  RpParams params;
  params.period = 60;
  params.min_ps = 25;
  params.min_rec = 1;
  RpGrowthResult sequential = MineRecurringPatterns(twitter.db, params);
  EXPECT_GT(sequential.patterns.size(), 0u);
  for (size_t threads : kThreadCounts) {
    ExpectMatchesSequential(twitter.db, params, sequential, threads);
  }
}

TEST(RpGrowthParallelTest, SupportOnlyPruningMatchesToo) {
  gen::GeneratedClickstream shop = gen::MakeShop14(0.01, 9);
  RpParams params;
  params.period = 120;
  params.min_ps = 20;
  params.min_rec = 1;
  RpGrowthOptions naive;
  naive.pruning = PruningMode::kSupportOnly;
  RpGrowthResult sequential = MineRecurringPatterns(shop.db, params, naive);
  for (size_t threads : kThreadCounts) {
    ExpectMatchesSequential(shop.db, params, sequential, threads, naive);
  }
}

TEST(RpGrowthParallelTest, MaxPatternLengthRespected) {
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  RpGrowthOptions capped;
  capped.max_pattern_length = 1;
  RpGrowthResult sequential = MineRecurringPatterns(db, params, capped);
  for (size_t threads : kThreadCounts) {
    ExpectMatchesSequential(db, params, sequential, threads, capped);
  }
}

TEST(RpGrowthParallelTest, ZeroMeansHardwareConcurrency) {
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  RpGrowthResult sequential = MineRecurringPatterns(db, params);
  ExpectMatchesSequential(db, params, sequential, /*threads=*/0);
}

TEST(RpGrowthParallelTest, SinkSeesEveryPatternExactlyOnce) {
  gen::GeneratedClickstream shop = gen::MakeShop14(0.01, 11);
  RpParams params;
  params.period = 120;
  params.min_ps = 20;
  params.min_rec = 1;
  RpGrowthResult sequential = MineRecurringPatterns(shop.db, params);

  RpGrowthOptions options;
  options.num_threads = 4;
  options.store_patterns = false;
  std::mutex mutex;  // The miner already serializes; guards the vector
                     // against future regressions without masking races in
                     // delivery itself being concurrent.
  std::vector<RecurringPattern> delivered;
  options.sink = [&](const RecurringPattern& p) {
    std::lock_guard<std::mutex> lock(mutex);
    delivered.push_back(p);
  };
  RpGrowthResult parallel = MineRecurringPatterns(shop.db, params, options);
  EXPECT_TRUE(parallel.patterns.empty());  // store_patterns=false.
  EXPECT_EQ(parallel.stats.patterns_emitted, delivered.size());
  SortPatternsCanonically(&delivered);
  ASSERT_EQ(delivered.size(), sequential.patterns.size());
  for (size_t i = 0; i < delivered.size(); ++i) {
    EXPECT_EQ(delivered[i], sequential.patterns[i]);
  }
}

TEST(RpGrowthParallelTest, StatsTimersConsistent) {
  gen::GeneratedClickstream shop = gen::MakeShop14(0.01, 12);
  RpParams params;
  params.period = 120;
  params.min_ps = 20;
  params.min_rec = 1;
  RpGrowthOptions options;
  options.num_threads = 4;
  RpGrowthResult result = MineRecurringPatterns(shop.db, params, options);
  EXPECT_GE(result.stats.threads_used, 1u);
  EXPECT_LE(result.stats.threads_used, 4u);
  EXPECT_GE(result.stats.mine_cpu_seconds, 0.0);
  EXPECT_GE(result.stats.total_seconds, 0.0);
  // total_seconds is wall clock, not a phase sum: it must cover the
  // mining phase's wall time but not necessarily the summed CPU time.
  EXPECT_GE(result.stats.total_seconds, result.stats.mine_seconds);

  RpGrowthResult sequential = MineRecurringPatterns(shop.db, params);
  EXPECT_EQ(sequential.stats.threads_used, 1u);
  EXPECT_DOUBLE_EQ(sequential.stats.mine_cpu_seconds,
                   sequential.stats.mine_seconds);
}

TEST(ProjectionTest, ProjectionsCoverEveryCandidateOnce) {
  // Decompose the paper example's tree by hand and check the projections
  // partition TS by item: TS^{item} of each projection equals the item's
  // full timestamp list.
  TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  RpGrowthResult reference = MineRecurringPatterns(db, params);

  RpList list = BuildRpList(db, params);
  std::vector<ItemId> items_by_rank;
  for (const RpListEntry& e : list.candidates()) {
    items_by_rank.push_back(e.item);
  }
  TsPrefixTree tree(items_by_rank);
  std::vector<uint32_t> ranks;
  for (const Transaction& tr : db.transactions()) {
    ranks.clear();
    for (ItemId item : tr.items) {
      if (list.RankOf(item) != kNotCandidate) {
        ranks.push_back(list.RankOf(item));
      }
    }
    std::sort(ranks.begin(), ranks.end());
    tree.InsertTransaction(ranks, tr.ts);
  }

  std::vector<SuffixProjection> projections = ProjectSuffixItems(&tree);
  ASSERT_EQ(projections.size(), items_by_rank.size());
  EXPECT_TRUE(tree.empty());  // Fully consumed.
  std::set<uint32_t> seen_ranks;
  for (const SuffixProjection& projection : projections) {
    EXPECT_TRUE(seen_ranks.insert(projection.rank).second);
    // TS^{item} must match the item's occurrences in the database.
    TimestampList expected;
    ItemId item = items_by_rank[projection.rank];
    for (const Transaction& tr : db.transactions()) {
      if (std::binary_search(tr.items.begin(), tr.items.end(), item)) {
        expected.push_back(tr.ts);
      }
    }
    EXPECT_EQ(projection.ts_beta, expected)
        << "item rank " << projection.rank;
    // Paths only reference strictly shallower ranks, ascending.
    for (const ProjectedPath& path : projection.paths) {
      EXPECT_TRUE(std::is_sorted(path.ranks.begin(), path.ranks.end()));
      for (uint32_t r : path.ranks) EXPECT_LT(r, projection.rank);
    }
  }
  // And the reference mining result was unaffected by us re-deriving it.
  EXPECT_EQ(reference.stats.num_candidate_items, projections.size());
}

TEST(ThreadPoolTest, ParallelForVisitsEachIndexOnce) {
  for (size_t workers : {0u, 1u, 2u, 4u, 8u}) {
    constexpr size_t kItems = 1000;
    std::vector<std::atomic<int>> visits(kItems);
    ParallelFor(kItems, workers, [&](size_t worker, size_t i) {
      (void)worker;
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  std::atomic<size_t> max_worker{0};
  ParallelFor(256, 4, [&](size_t worker, size_t i) {
    (void)i;
    size_t seen = max_worker.load();
    while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  EXPECT_LT(max_worker.load(), 4u);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // Hardware concurrency, >= 1.
}

}  // namespace
}  // namespace rpm
