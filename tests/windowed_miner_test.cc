// WindowedMiner: the incremental sliding-window miner against batch
// re-mining of the live window, delta-diff semantics, window-boundary
// edge cases, budget governance and compaction. The differential harness
// (cross_check.cc check (f)) hammers the same equivalence on generated
// cases; these tests pin the specific contracts and the corner cases a
// random stream rarely hits.

#include "rpm/core/windowed_miner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "rpm/core/rp_growth.h"
#include "rpm/core/time_gap.h"
#include "test_util.h"

namespace rpm {
namespace {

using ::rpm::testing::MakeRandomDb;
using ::rpm::testing::PaperExampleDb;
using ::rpm::testing::PaperExampleParams;
using ::rpm::testing::RandomDbSpec;

std::vector<RecurringPattern> BatchMine(const TransactionDatabase& db,
                                        const RpParams& params) {
  return MineRecurringPatterns(db, params).patterns;
}

/// (prev − removed − changed-old) ∪ changed-new ∪ added must equal the
/// committed set exactly — the documented PatternDelta identity.
void ExpectDiffReconstructs(const std::vector<RecurringPattern>& prev,
                            const PatternDelta& pd,
                            const std::vector<RecurringPattern>& committed) {
  std::vector<Itemset> dropped;
  for (const RecurringPattern& p : pd.removed) dropped.push_back(p.items);
  for (const RecurringPattern& p : pd.changed) dropped.push_back(p.items);
  std::sort(dropped.begin(), dropped.end());
  std::vector<RecurringPattern> rebuilt;
  for (const RecurringPattern& p : prev) {
    if (!std::binary_search(dropped.begin(), dropped.end(), p.items)) {
      rebuilt.push_back(p);
    }
  }
  rebuilt.insert(rebuilt.end(), pd.changed.begin(), pd.changed.end());
  rebuilt.insert(rebuilt.end(), pd.added.begin(), pd.added.end());
  SortPatternsCanonically(&rebuilt);
  EXPECT_EQ(rebuilt, committed);
}

/// Replays `db` through a miner in `delta`-sized batches, asserting the
/// windowed ≡ batch equivalence and the diff identity after every delta.
void ReplayAndCheck(const TransactionDatabase& db, const RpParams& params,
                    Timestamp window, size_t delta,
                    const WindowedMinerOptions& options = {}) {
  WindowedMiner miner(params, window, options);
  const std::vector<Transaction>& txns = db.transactions();
  std::vector<RecurringPattern> prev;
  for (size_t offset = 0; offset < txns.size(); offset += delta) {
    const size_t end = std::min(txns.size(), offset + delta);
    std::vector<Transaction> batch(txns.begin() + offset, txns.begin() + end);
    PatternDelta pd = miner.ApplyDelta(batch);
    ASSERT_TRUE(pd.applied) << pd.status.ToString() << " at offset " << offset;
    ExpectDiffReconstructs(prev, pd, miner.patterns());
    EXPECT_EQ(miner.patterns(), BatchMine(miner.WindowSnapshot(), params))
        << "window=" << window << " delta=" << delta << " offset=" << offset;
    prev = miner.patterns();
  }
}

TEST(WindowedMinerTest, SingleDeltaEqualsBatchOnPaperExample) {
  const TransactionDatabase db = PaperExampleDb();
  WindowedMiner miner(PaperExampleParams(), /*window=*/1000);
  PatternDelta pd = miner.ApplyDelta(db.transactions());
  ASSERT_TRUE(pd.applied) << pd.status.ToString();
  // Nothing expires: the whole database is the window, so the result is
  // the full Table 2 set and the diff is pure additions.
  EXPECT_EQ(miner.patterns(), BatchMine(db, PaperExampleParams()));
  EXPECT_EQ(pd.added, miner.patterns());
  EXPECT_TRUE(pd.removed.empty());
  EXPECT_TRUE(pd.changed.empty());
  EXPECT_EQ(miner.live_transactions(), db.size());
  EXPECT_EQ(miner.now(), Timestamp{14});
  EXPECT_EQ(miner.low_watermark(), Timestamp{14 - 1000});
}

TEST(WindowedMinerTest, PerTransactionDeltasMatchBatchOnPaperExample) {
  ReplayAndCheck(PaperExampleDb(), PaperExampleParams(), /*window=*/6,
                 /*delta=*/1);
}

TEST(WindowedMinerTest, SlidingWindowMatchesBatchAcrossSeeds) {
  RandomDbSpec spec;
  RpParams params;
  params.period = 3;
  params.min_ps = 2;
  params.min_rec = 2;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const TransactionDatabase db = MakeRandomDb(spec, seed);
    ASSERT_FALSE(db.empty());
    const Timestamp span = SaturatingGap(db.transactions().front().ts,
                                         db.transactions().back().ts);
    for (size_t delta : {size_t{1}, size_t{5}, size_t{17}}) {
      ReplayAndCheck(db, params, std::max<Timestamp>(1, span / 3), delta);
    }
  }
}

TEST(WindowedMinerTest, WindowStartIsInclusive) {
  // window=4, last ts 10 => cutoff 6; the transaction AT ts 6 stays live.
  RpParams params;
  params.period = 2;
  params.min_ps = 2;
  params.min_rec = 1;
  WindowedMiner miner(params, /*window=*/4);
  PatternDelta pd = miner.ApplyDelta(
      {{2, {0}}, {4, {0}}, {6, {0}}, {8, {0}}, {10, {0}}});
  ASSERT_TRUE(pd.applied);
  EXPECT_EQ(miner.low_watermark(), Timestamp{6});
  EXPECT_EQ(miner.live_transactions(), 3u);
  const TransactionDatabase window = miner.WindowSnapshot();
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window.transactions().front().ts, Timestamp{6});
  EXPECT_EQ(miner.patterns(), BatchMine(window, params));
}

TEST(WindowedMinerTest, BatchWiderThanWindowSelfExpires) {
  // The first transactions of one batch fall below the batch's own final
  // cutoff: they must count as appended AND expired, and the live window
  // holds only the tail.
  RpParams params;
  params.period = 1;
  params.min_ps = 2;
  params.min_rec = 1;
  WindowedMiner miner(params, /*window=*/2);
  PatternDelta pd =
      miner.ApplyDelta({{1, {0}}, {2, {0}}, {9, {0}}, {10, {0}}});
  ASSERT_TRUE(pd.applied);
  EXPECT_EQ(pd.appended_transactions, 4u);
  EXPECT_EQ(pd.expired_transactions, 2u);
  EXPECT_EQ(miner.live_transactions(), 2u);
  EXPECT_EQ(miner.low_watermark(), Timestamp{8});
  EXPECT_EQ(miner.patterns(), BatchMine(miner.WindowSnapshot(), params));
}

TEST(WindowedMinerTest, AdvanceToExpiresWithoutAppending) {
  RpParams params;
  params.period = 2;
  params.min_ps = 2;
  params.min_rec = 1;
  WindowedMiner miner(params, /*window=*/4);
  ASSERT_TRUE(miner.ApplyDelta({{2, {0}}, {4, {0}}, {6, {0}}}).applied);
  ASSERT_EQ(miner.live_transactions(), 3u);

  std::vector<RecurringPattern> before = miner.patterns();
  PatternDelta pd = miner.AdvanceTo(9);
  ASSERT_TRUE(pd.applied) << pd.status.ToString();
  EXPECT_EQ(pd.appended_transactions, 0u);
  EXPECT_EQ(pd.expired_transactions, 2u);
  EXPECT_EQ(miner.now(), Timestamp{9});
  EXPECT_EQ(miner.low_watermark(), Timestamp{5});
  EXPECT_EQ(miner.live_transactions(), 1u);
  ExpectDiffReconstructs(before, pd, miner.patterns());
  EXPECT_EQ(miner.patterns(), BatchMine(miner.WindowSnapshot(), params));

  // Time cannot flow backwards.
  PatternDelta back = miner.AdvanceTo(8);
  EXPECT_FALSE(back.applied);
  EXPECT_TRUE(back.status.IsInvalidArgument());
  EXPECT_EQ(miner.now(), Timestamp{9});
}

TEST(WindowedMinerTest, RejectsMalformedBatches) {
  RpParams params;
  params.period = 2;
  params.min_ps = 1;
  params.min_rec = 1;
  WindowedMiner miner(params, /*window=*/100);
  ASSERT_TRUE(miner.ApplyDelta({{5, {0, 1}}}).applied);
  const std::vector<RecurringPattern> committed = miner.patterns();
  const uint64_t deltas_before = miner.counters().deltas_applied;

  // Each refusal must leave the miner exactly at the committed state.
  const std::vector<std::vector<Transaction>> bad = {
      {{7, {0}}, {6, {0}}},     // Not strictly increasing within the batch.
      {{5, {0}}},               // Not greater than the last applied ts.
      {{8, {1, 0}}},            // Items out of order.
      {{8, {0, 0}}},            // Duplicate item.
      {{8, {kInvalidItem}}},    // Sentinel item.
  };
  for (const std::vector<Transaction>& batch : bad) {
    PatternDelta pd = miner.ApplyDelta(batch);
    EXPECT_FALSE(pd.applied);
    EXPECT_TRUE(pd.status.IsInvalidArgument()) << pd.status.ToString();
    EXPECT_EQ(miner.patterns(), committed);
    EXPECT_EQ(miner.counters().deltas_applied, deltas_before);
  }
  // The miner still accepts a well-formed delta afterwards.
  EXPECT_TRUE(miner.ApplyDelta({{8, {0}}}).applied);
}

TEST(WindowedMinerTest, PreCancelledBudgetRefusesAndPreservesState) {
  const TransactionDatabase db = PaperExampleDb();
  WindowedMiner miner(PaperExampleParams(), /*window=*/1000);
  std::vector<Transaction> first(db.transactions().begin(),
                                 db.transactions().begin() + 6);
  std::vector<Transaction> second(db.transactions().begin() + 6,
                                  db.transactions().end());
  ASSERT_TRUE(miner.ApplyDelta(first).applied);
  const std::vector<RecurringPattern> committed = miner.patterns();
  const Timestamp now = miner.now();

  CancellationToken cancel;
  cancel.Cancel();
  QueryBudget budget(ResourceLimits{}, &cancel);
  PatternDelta pd = miner.ApplyDelta(second, &budget);
  EXPECT_FALSE(pd.applied);
  EXPECT_TRUE(pd.status.IsCancelled()) << pd.status.ToString();
  EXPECT_TRUE(pd.added.empty());
  EXPECT_EQ(miner.patterns(), committed);
  EXPECT_EQ(miner.now(), now);

  // The refused batch is still appendable: nothing was staged.
  PatternDelta retry = miner.ApplyDelta(second);
  ASSERT_TRUE(retry.applied) << retry.status.ToString();
  EXPECT_EQ(miner.patterns(), BatchMine(db, PaperExampleParams()));
}

TEST(WindowedMinerTest, CompactionFiresAndPreservesEquivalence) {
  RpParams params;
  params.period = 2;
  params.min_ps = 1;
  params.min_rec = 1;
  WindowedMinerOptions options;
  options.compact_min_stored = 8;
  options.compact_live_fraction = 0.6;
  WindowedMiner miner(params, /*window=*/6, options);
  for (Timestamp ts = 0; ts < 120; ts += 2) {
    // Item 2 stops occurring at ts 30: once the window slides past its
    // last event, the per-delta tree's item-2 node loses every timestamp
    // and must be retired (items 0/1 always have live events, so their
    // nodes never empty).
    const Itemset items =
        ts < 30 ? Itemset{0, 1, 2} : Itemset{0, 1};
    PatternDelta pd = miner.ApplyDelta({{ts, items}});
    ASSERT_TRUE(pd.applied);
    EXPECT_EQ(miner.patterns(), BatchMine(miner.WindowSnapshot(), params));
  }
  EXPECT_GT(miner.counters().compactions, 0u);
  EXPECT_GT(miner.counters().transactions_expired, 0u);
  EXPECT_GT(miner.counters().nodes_retired, 0u);
}

TEST(WindowedMinerTest, Int64ExtremeTimestampsAreHandled) {
  constexpr Timestamp kMin = std::numeric_limits<Timestamp>::min();
  constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
  RpParams params;
  params.period = 1;
  params.min_ps = 2;
  params.min_rec = 1;

  // Unbounded window: nothing ever expires, even across the full range.
  WindowedMiner wide(params, /*window=*/kMax);
  ASSERT_TRUE(wide.ApplyDelta({{kMin, {0}}, {kMin + 1, {0}}}).applied);
  EXPECT_EQ(wide.low_watermark(), kMin);
  ASSERT_TRUE(wide.ApplyDelta({{-1, {0}}, {0, {0}}}).applied);
  // now=0, window=kMax: the inclusive window [now - kMax, 0] starts at
  // kMin + 1, so exactly the kMin transaction expires — the boundary
  // arithmetic must not wrap.
  EXPECT_EQ(wide.low_watermark(), kMin + 1);
  EXPECT_EQ(wide.live_transactions(), 3u);
  EXPECT_EQ(wide.patterns(), BatchMine(wide.WindowSnapshot(), params));

  // Tight window at the top of the range.
  WindowedMiner tight(params, /*window=*/2);
  ASSERT_TRUE(tight.ApplyDelta({{kMin, {0}}, {kMin + 1, {0}}}).applied);
  ASSERT_TRUE(tight.ApplyDelta({{kMax - 1, {0}}, {kMax, {0}}}).applied);
  EXPECT_EQ(tight.low_watermark(), kMax - 2);
  EXPECT_EQ(tight.live_transactions(), 2u);
  EXPECT_EQ(tight.patterns(), BatchMine(tight.WindowSnapshot(), params));
}

TEST(WindowedMinerTest, EmptyBatchIsNoOpBeforeAndAfterFirstDelta) {
  RpParams params;
  params.period = 2;
  params.min_ps = 1;
  params.min_rec = 1;
  WindowedMiner miner(params, /*window=*/10);
  PatternDelta pd = miner.ApplyDelta({});
  EXPECT_TRUE(pd.applied);
  EXPECT_TRUE(pd.added.empty());
  EXPECT_EQ(miner.counters().deltas_applied, 0u);

  ASSERT_TRUE(miner.ApplyDelta({{1, {0}}, {2, {0}}}).applied);
  const std::vector<RecurringPattern> committed = miner.patterns();
  pd = miner.ApplyDelta({});
  EXPECT_TRUE(pd.applied);
  EXPECT_TRUE(pd.added.empty() && pd.removed.empty() && pd.changed.empty());
  EXPECT_EQ(miner.patterns(), committed);
}

TEST(WindowedMinerTest, CountersAreScheduleInvariantAcrossDeltaSizes) {
  // The maintenance counters describe the stream and the window, not the
  // delta schedule... with the exception of deltas_applied and the
  // subproblem accounting, which by design depend on batching. Feed the
  // same stream in 1- and 3-transaction deltas and compare the
  // stream-describing subset.
  const TransactionDatabase db = PaperExampleDb();
  RpParams params = PaperExampleParams();
  auto replay = [&](size_t delta) {
    WindowedMiner miner(params, /*window=*/5);
    const std::vector<Transaction>& txns = db.transactions();
    for (size_t offset = 0; offset < txns.size(); offset += delta) {
      const size_t end = std::min(txns.size(), offset + delta);
      std::vector<Transaction> batch(txns.begin() + offset,
                                     txns.begin() + end);
      PatternDelta pd = miner.ApplyDelta(batch);
      EXPECT_TRUE(pd.applied);
    }
    return miner.counters();
  };
  const WindowedCounters by_one = replay(1);
  const WindowedCounters by_three = replay(3);
  EXPECT_EQ(by_one.timestamps_appended, by_three.timestamps_appended);
  EXPECT_EQ(by_one.timestamps_retired, by_three.timestamps_retired);
  EXPECT_EQ(by_one.transactions_expired, by_three.transactions_expired);
  EXPECT_EQ(by_one.deltas_applied, 12u);
  EXPECT_EQ(by_three.deltas_applied, 4u);
}

TEST(WindowedMinerTest, MaxPatternLengthIsForwardedToSubMines) {
  const TransactionDatabase db = PaperExampleDb();
  WindowedMinerOptions options;
  options.max_pattern_length = 1;
  WindowedMiner miner(PaperExampleParams(), /*window=*/1000, options);
  ASSERT_TRUE(miner.ApplyDelta(db.transactions()).applied);
  for (const RecurringPattern& p : miner.patterns()) {
    EXPECT_LE(p.items.size(), 1u);
  }
  RpGrowthOptions mopt;
  mopt.max_pattern_length = 1;
  EXPECT_EQ(miner.patterns(),
            MineRecurringPatterns(db, PaperExampleParams(), mopt).patterns);
}

}  // namespace
}  // namespace rpm
