#include "rpm/common/civil_time.h"

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(CivilTimeTest, EpochIsDayZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

TEST(CivilTimeTest, KnownDates) {
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(2013, 5, 1), 15826);
}

TEST(CivilTimeTest, LeapYearHandling) {
  // 2012 was a leap year; 2013 not.
  EXPECT_EQ(DaysFromCivil(2012, 3, 1) - DaysFromCivil(2012, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(2013, 3, 1) - DaysFromCivil(2013, 2, 28), 1);
  // Century rule: 2000 leap, 1900 not.
  EXPECT_EQ(DaysFromCivil(2000, 3, 1) - DaysFromCivil(2000, 2, 28), 2);
  EXPECT_EQ(DaysFromCivil(1900, 3, 1) - DaysFromCivil(1900, 2, 28), 1);
}

TEST(CivilTimeTest, MinutesFromCivil) {
  EXPECT_EQ(MinutesFromCivil({1970, 1, 1, 0, 0}), 0);
  EXPECT_EQ(MinutesFromCivil({1970, 1, 1, 1, 30}), 90);
  EXPECT_EQ(MinutesFromCivil({1970, 1, 2, 0, 0}), 1440);
}

TEST(CivilTimeTest, CivilFromMinutesRoundTrip) {
  for (int64_t m : {int64_t{0}, int64_t{1439}, int64_t{1440},
                    MinutesFromCivil({2013, 5, 1, 0, 0}),
                    MinutesFromCivil({2013, 8, 31, 23, 59}),
                    MinutesFromCivil({1969, 12, 31, 23, 59}),
                    MinutesFromCivil({2400, 2, 29, 12, 1})}) {
    EXPECT_EQ(MinutesFromCivil(CivilFromMinutes(m)), m) << "minutes " << m;
  }
}

TEST(CivilTimeTest, NegativeMinutesFloorCorrectly) {
  CivilMinute cm = CivilFromMinutes(-1);
  EXPECT_EQ(cm.year, 1969);
  EXPECT_EQ(cm.month, 12u);
  EXPECT_EQ(cm.day, 31u);
  EXPECT_EQ(cm.hour, 23u);
  EXPECT_EQ(cm.minute, 59u);
}

TEST(CivilTimeTest, FormatCivilMinute) {
  EXPECT_EQ(FormatCivilMinute({2013, 6, 21, 1, 8}), "2013-06-21 01:08");
  EXPECT_EQ(FormatCivilMinute({1970, 1, 1, 0, 0}), "1970-01-01 00:00");
}

TEST(CivilTimeTest, FormatMinuteOffsetAgainstPaperEpoch) {
  const int64_t epoch = MinutesFromCivil({2013, 5, 1, 0, 0});
  EXPECT_EQ(FormatMinuteOffset(0, epoch), "2013-05-01 00:00");
  // Paper Table 6 row 1 start: 2013-06-21 01:08.
  const int64_t offset =
      MinutesFromCivil({2013, 6, 21, 1, 8}) - epoch;
  EXPECT_EQ(offset, 51 * 1440 + 68);
  EXPECT_EQ(FormatMinuteOffset(offset, epoch), "2013-06-21 01:08");
}

TEST(ParseCivilMinuteTest, DateOnly) {
  Result<CivilMinute> cm = ParseCivilMinute("2013-05-01");
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(*cm, (CivilMinute{2013, 5, 1, 0, 0}));
}

TEST(ParseCivilMinuteTest, DateAndTime) {
  Result<CivilMinute> cm = ParseCivilMinute("2013-06-21 01:08");
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(*cm, (CivilMinute{2013, 6, 21, 1, 8}));
}

TEST(ParseCivilMinuteTest, RoundTripsWithFormat) {
  for (const char* text : {"1999-12-31 23:59", "2020-02-29 00:00"}) {
    Result<CivilMinute> cm = ParseCivilMinute(text);
    ASSERT_TRUE(cm.ok()) << text;
    EXPECT_EQ(FormatCivilMinute(*cm), text);
  }
}

TEST(ParseCivilMinuteTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCivilMinute("yesterday").ok());
  EXPECT_FALSE(ParseCivilMinute("2013/05/01").ok());
  EXPECT_FALSE(ParseCivilMinute("2013-13-01").ok());
  EXPECT_FALSE(ParseCivilMinute("2013-05-42").ok());
  EXPECT_FALSE(ParseCivilMinute("2013-05-01 25:00").ok());
  EXPECT_FALSE(ParseCivilMinute("2013-05-01 10:73").ok());
  EXPECT_FALSE(ParseCivilMinute("2013-05-01 10:30 extra").ok());
  EXPECT_FALSE(ParseCivilMinute("").ok());
}

TEST(CivilTimeTest, TwitterSpanIs123Days) {
  const int64_t begin = MinutesFromCivil({2013, 5, 1, 0, 0});
  const int64_t end = MinutesFromCivil({2013, 9, 1, 0, 0});
  EXPECT_EQ(end - begin, 123 * 1440);  // 177,120 minutes.
}

}  // namespace
}  // namespace rpm
