// Exhaustive threshold grid over the paper's running example: RP-growth
// must equal the definitional oracle for EVERY sensible (per, minPS,
// minRec) combination, not just the paper's (2, 3, 2).

#include <sstream>

#include <gtest/gtest.h>

#include "rpm/core/brute_force.h"
#include "rpm/core/rp_growth.h"
#include "test_util.h"

namespace rpm {
namespace {

struct GridCase {
  Timestamp per;
  uint64_t min_ps;
  uint64_t min_rec;
};

std::vector<GridCase> AllCases() {
  std::vector<GridCase> cases;
  for (Timestamp per : {1, 2, 3, 4, 5, 7, 13, 20}) {
    for (uint64_t min_ps : {1u, 2u, 3u, 4u, 6u, 12u}) {
      for (uint64_t min_rec : {1u, 2u, 3u, 4u}) {
        cases.push_back({per, min_ps, min_rec});
      }
    }
  }
  return cases;
}

class PaperGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(PaperGridTest, RpGrowthEqualsOracle) {
  const GridCase& c = GetParam();
  RpParams params;
  params.period = c.per;
  params.min_ps = c.min_ps;
  params.min_rec = c.min_rec;
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  std::vector<RecurringPattern> oracle = MineByDefinition(db, params);
  RpGrowthResult growth = MineRecurringPatterns(db, params);
  EXPECT_TRUE(SamePatternSets(growth.patterns, oracle))
      << "per=" << c.per << " minPS=" << c.min_ps
      << " minRec=" << c.min_rec << ": oracle " << oracle.size()
      << ", rp-growth " << growth.patterns.size();
}

TEST_P(PaperGridTest, VerticalEqualsOracle) {
  const GridCase& c = GetParam();
  RpParams params;
  params.period = c.per;
  params.min_ps = c.min_ps;
  params.min_rec = c.min_rec;
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  EXPECT_TRUE(SamePatternSets(MineVertical(db, params).patterns,
                              MineByDefinition(db, params)));
}

INSTANTIATE_TEST_SUITE_P(FullThresholdGrid, PaperGridTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << "per" << info.param.per << "_ps"
                              << info.param.min_ps << "_rec"
                              << info.param.min_rec;
                           return os.str();
                         });

}  // namespace
}  // namespace rpm
