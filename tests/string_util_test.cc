#include "rpm/common/string_util.h"

#include <gtest/gtest.h>

namespace rpm {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, AdjacentDelimitersYieldEmptyFields) {
  auto parts = Split("a,,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyInputIsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiter) {
  auto parts = Split("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitWhitespaceTest, AllWhitespaceIsEmpty) {
  EXPECT_TRUE(SplitWhitespace(" \t\n ").empty());
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(ParseInt64Test, ValidValues) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("-42"), -42);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), INT64_MAX);
}

TEST(ParseInt64Test, RejectsJunk) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());  // Overflow.
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(ParseUint32Test, ValidAndInvalid) {
  EXPECT_EQ(*ParseUint32("4294967295"), 4294967295u);
  EXPECT_FALSE(ParseUint32("4294967296").ok());
  EXPECT_FALSE(ParseUint32("-1").ok());
  EXPECT_FALSE(ParseUint32("").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5z").ok());
}

TEST(JoinTest, JoinsStrings) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(Join(v, ", "), "a, b, c");
}

TEST(JoinTest, JoinsNumbers) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(Join(v, "-"), "1-2-3");
}

TEST(JoinTest, EmptyContainer) {
  std::vector<std::string> v;
  EXPECT_EQ(Join(v, ","), "");
}

TEST(FormatWithThousandsTest, GroupsDigits) {
  EXPECT_EQ(FormatWithThousands(0), "0");
  EXPECT_EQ(FormatWithThousands(999), "999");
  EXPECT_EQ(FormatWithThousands(1000), "1,000");
  EXPECT_EQ(FormatWithThousands(1234567), "1,234,567");
  EXPECT_EQ(FormatWithThousands(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithThousands(100000), "100,000");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace rpm
