#include "rpm/analysis/threshold_advisor.h"

#include <gtest/gtest.h>

#include "rpm/core/rp_growth.h"
#include "rpm/timeseries/tdb_builder.h"
#include "test_util.h"

namespace rpm::analysis {
namespace {

using ::rpm::testing::A;
using ::rpm::testing::B;

TEST(IatStatsTest, KnownQuantiles) {
  // IATs of {0,1,3,6,10,15,21,28,36,45,55}: 1..10.
  TimestampList ts = {0, 1, 3, 6, 10, 15, 21, 28, 36, 45, 55};
  IatStats stats = ComputeIatStats(ts);
  EXPECT_EQ(stats.count, 10u);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.median, 6);  // Nearest-rank at index round(0.5*9)=5.
  EXPECT_EQ(stats.p90, 9);     // Index round(0.9*9)=8.
  EXPECT_EQ(stats.max, 10);
}

TEST(IatStatsTest, DegenerateInputs) {
  EXPECT_EQ(ComputeIatStats({}).count, 0u);
  EXPECT_EQ(ComputeIatStats({7}).count, 0u);
  IatStats pair = ComputeIatStats({3, 8});
  EXPECT_EQ(pair.count, 1u);
  EXPECT_EQ(pair.min, 5);
  EXPECT_EQ(pair.max, 5);
  EXPECT_EQ(pair.median, 5);
}

TEST(AdvisorTest, RegularItemYieldsItsGap) {
  // Item every 10 units, 50 times: suggested per should be 10.
  TdbBuilder builder;
  for (Timestamp ts = 0; ts < 500; ts += 10) builder.AddEvent(A, ts);
  TransactionDatabase db = builder.Build();
  ThresholdAdvice advice = AdviseThresholds(db);
  EXPECT_EQ(advice.items_considered, 1u);
  EXPECT_EQ(advice.suggested_period, 10);
  EXPECT_GE(advice.suggested_min_ps, 2u);
  EXPECT_NE(advice.rationale.find("1 items"), std::string::npos);
}

TEST(AdvisorTest, MinPsScalesWithSupport) {
  TdbBuilder builder;
  for (Timestamp ts = 0; ts < 1000; ++ts) builder.AddEvent(A, ts);
  TransactionDatabase db = builder.Build();
  AdvisorOptions options;
  options.min_ps_support_fraction = 0.10;
  ThresholdAdvice advice = AdviseThresholds(db, options);
  EXPECT_EQ(advice.suggested_min_ps, 100u);  // 10% of support 1000.
}

TEST(AdvisorTest, FallbackWhenNothingInformative) {
  TdbBuilder builder;
  builder.AddEvent(A, 0);
  builder.AddEvent(B, 10);
  builder.AddEvent(A, 20);
  TransactionDatabase db = builder.Build();
  ThresholdAdvice advice = AdviseThresholds(db);
  EXPECT_EQ(advice.items_considered, 0u);
  EXPECT_EQ(advice.suggested_period, 10);  // Median transaction gap.
  EXPECT_EQ(advice.suggested_min_ps, 2u);
  EXPECT_NE(advice.rationale.find("support floor"), std::string::npos);
}

TEST(AdvisorTest, EmptyDatabaseDefaults) {
  ThresholdAdvice advice = AdviseThresholds(TransactionDatabase{});
  EXPECT_EQ(advice.suggested_period, 1);
  EXPECT_EQ(advice.suggested_min_ps, 1u);
}

TEST(AdvisorTest, AdviceIsUsableOnPaperExample) {
  TransactionDatabase db = rpm::testing::PaperExampleDb();
  AdvisorOptions options;
  options.min_item_support = 5;
  ThresholdAdvice advice = AdviseThresholds(db, options);
  ASSERT_GT(advice.items_considered, 0u);
  // The advice must be valid params that mine without issues.
  RpParams params;
  params.period = advice.suggested_period;
  params.min_ps = advice.suggested_min_ps;
  params.min_rec = advice.suggested_min_rec;
  ASSERT_TRUE(params.Validate().ok());
  RpGrowthResult result = MineRecurringPatterns(db, params);
  EXPECT_GE(result.patterns.size(), 1u);
}

}  // namespace
}  // namespace rpm::analysis
