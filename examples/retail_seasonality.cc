// Retail seasonality: the paper's introduction scenario ("customers have
// often purchased Jackets and Gloves from 10-Oct to 26-Feb...").
//
// Simulates a per-minute clickstream of product-category visits with
// planted seasonal category groups, mines recurring patterns, and prints an
// inventory-planning report: which category combinations sell together, in
// which windows, and how strongly — then checks the planted ground truth
// was recovered.

#include <cstdio>

#include "rpm/analysis/pattern_report.h"
#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/clickstream_generator.h"
#include "rpm/timeseries/database_stats.h"

int main() {
  using namespace rpm;

  // A compact 10-day store stream: 50 categories, 4 seasonal groups.
  gen::ClickstreamParams gen_params;
  gen_params.num_minutes = 10 * 1440;
  gen_params.num_categories = 50;
  gen_params.num_seasonal_groups = 4;
  gen_params.min_window_minutes = 2 * 1440;
  gen_params.max_window_minutes = 4 * 1440;
  gen_params.group_fire_prob = 0.55;
  gen_params.seed = 2024;
  gen::GeneratedClickstream stream = gen::GenerateClickstream(gen_params);

  std::printf("Store stream: %s\n\n",
              ComputeStats(stream.db).ToString().c_str());

  // Seasonal co-purchases: periodic within an hour, sustained for at least
  // 200 co-visits, recurring in at least one window.
  RpParams params;
  params.period = 60;
  params.min_ps = 200;
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(stream.db, params);

  analysis::ReportOptions options;
  options.min_pattern_length = 2;   // Co-purchases only.
  options.sort_by_support = false;  // Longest seasonal windows first.
  options.top_k = 12;
  std::printf("Top seasonal category combinations (%s):\n",
              params.ToString().c_str());
  for (const std::string& line : analysis::FormatPatternReport(
           result.patterns, stream.db.dictionary(), options)) {
    std::printf("  %s\n", line.c_str());
  }

  std::printf("\nPlanted-season recovery check:\n");
  size_t recovered = 0;
  for (const gen::SeasonalGroup& group : stream.ground_truth) {
    bool hit = false;
    for (const auto& [begin, end] : group.windows) {
      hit = hit || analysis::RecoversPlantedEvent(result.patterns,
                                                  group.categories, begin,
                                                  end);
    }
    recovered += hit ? 1 : 0;
    std::printf("  %-40s %s\n",
                analysis::FormatItemset(group.categories,
                                        stream.db.dictionary())
                    .c_str(),
                hit ? "recovered" : "MISSED");
  }
  std::printf("%zu/%zu planted seasonal groups recovered\n", recovered,
              stream.ground_truth.size());
  return recovered == stream.ground_truth.size() ? 0 : 1;
}
