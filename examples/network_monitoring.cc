// Network monitoring: separating rare high-severity incidents from routine
// events (the paper's introduction: "cascading failure" vs "data backup",
// and the rare-item discussion of Sec. 2 / 5.2).
//
// Builds a synthetic event log where a nightly backup fires like clockwork
// throughout (a *regular* pattern, found by PF-growth), while a trio of
// failure events — link-flap, packet-loss, failover — storms only during
// two incident windows (a *recurring* pattern, invisible to the
// periodic-frequent model but found by RP-growth).

#include <cstdio>

#include "rpm/analysis/pattern_report.h"
#include "rpm/baselines/pf_growth.h"
#include "rpm/common/random.h"
#include "rpm/core/rp_growth.h"
#include "rpm/timeseries/tdb_builder.h"

int main() {
  using namespace rpm;

  ItemDictionary dict;
  const ItemId backup = dict.GetOrAdd("backup-job");
  const ItemId heartbeat = dict.GetOrAdd("heartbeat");
  const ItemId link_flap = dict.GetOrAdd("link-flap");
  const ItemId pkt_loss = dict.GetOrAdd("packet-loss");
  const ItemId failover = dict.GetOrAdd("failover");

  // 30 days at minute granularity.
  const Timestamp kMinutes = 30 * 1440;
  Rng rng(4711);
  TdbBuilder builder;
  for (Timestamp ts = 0; ts < kMinutes; ++ts) {
    Itemset events;
    if (rng.NextBernoulli(0.6)) events.push_back(heartbeat);
    if (ts % 1440 == 120) events.push_back(backup);  // 02:00 nightly.
    // Two incident windows: days 6-8 and days 21-24.
    const bool incident = (ts >= 6 * 1440 && ts < 8 * 1440) ||
                          (ts >= 21 * 1440 && ts < 24 * 1440);
    if (incident && rng.NextBernoulli(0.35)) {
      events.push_back(link_flap);
      events.push_back(pkt_loss);
      if (rng.NextBernoulli(0.8)) events.push_back(failover);
    }
    if (!events.empty()) builder.AddTransaction(ts, events);
  }
  TransactionDatabase db = builder.Build(std::move(dict));

  // Periodic-frequent view: only events cycling through the WHOLE month.
  baselines::PfParams pf;
  pf.min_sup = 25;      // At least ~daily.
  pf.max_per = 1500;    // A bit over a day.
  auto pf_result = baselines::MinePeriodicFrequentPatterns(db, pf);
  std::printf("Periodic-frequent (regular) patterns "
              "(minSup=%llu, maxPer=%lld):\n",
              static_cast<unsigned long long>(pf.min_sup),
              static_cast<long long>(pf.max_per));
  for (const auto& p : pf_result.patterns) {
    std::printf("  %s  sup=%llu per=%lld\n",
                analysis::FormatItemset(p.items, db.dictionary()).c_str(),
                static_cast<unsigned long long>(p.support),
                static_cast<long long>(p.periodicity));
  }

  // Recurring view: bounded incident windows qualify too.
  RpParams rp;
  rp.period = 15;    // Storming events re-fire within 15 minutes.
  rp.min_ps = 200;   // Sustained storm.
  rp.min_rec = 2;    // Seen in at least two distinct windows.
  RpGrowthResult rp_result = MineRecurringPatterns(db, rp);
  std::printf("\nRecurring patterns (%s):\n", rp.ToString().c_str());
  for (const RecurringPattern& p : rp_result.patterns) {
    std::printf("  %s\n", p.ToString(&db.dictionary()).c_str());
  }

  // The punchline: the failure trio recurs, the backup does not appear
  // there (its cadence is 1440 min >> per), and PF-growth cannot see the
  // incidents at all since they do not span the month.
  bool trio_found = false;
  for (const RecurringPattern& p : rp_result.patterns) {
    if (p.items == Itemset{link_flap, pkt_loss, failover} ||
        p.items == Itemset{2, 3, 4}) {
      trio_found = true;
    }
  }
  bool trio_in_pf = false;
  for (const auto& p : pf_result.patterns) {
    if (p.items.size() == 3) trio_in_pf = true;
  }
  std::printf("\nfailure trio {link-flap, packet-loss, failover}: "
              "recurring=%s, periodic-frequent=%s\n",
              trio_found ? "FOUND" : "missed",
              trio_in_pf ? "found" : "NOT FOUND (as expected)");
  return trio_found && !trio_in_pf ? 0 : 1;
}
