// Hashtag bursts: the paper's Twitter use case (Table 6 / Figure 8).
//
// Generates a scaled-down version of the paper's 123-day hashtag stream
// with the four Table 6 events planted at their real dates, mines recurring
// patterns, and prints the burst report with calendar dates plus ASCII
// daily-frequency sparklines for the headline events.

#include <cstdio>

#include "rpm/analysis/frequency_series.h"
#include "rpm/analysis/pattern_report.h"
#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/paper_datasets.h"
#include "rpm/timeseries/database_stats.h"

int main() {
  using namespace rpm;

  const double scale = 0.25;  // ~31 days of stream.
  gen::GeneratedHashtagStream stream = gen::MakeTwitter(scale);
  std::printf("Hashtag stream: %s\n\n",
              ComputeStats(stream.db).ToString().c_str());

  RpParams params;
  params.period = 360;  // Six hours, as in the paper's Table 6 run.
  params.min_ps = 150;
  params.min_rec = 1;
  RpGrowthResult result = MineRecurringPatterns(stream.db, params);
  std::printf("%zu recurring patterns in %.2f s\n\n",
              result.patterns.size(), result.stats.total_seconds);

  analysis::ReportOptions options;
  options.epoch_minutes = gen::TwitterEpochMinutes();
  options.min_pattern_length = 2;
  options.top_k = 10;
  options.sort_by_support = false;
  std::printf("Top multi-hashtag bursts (dates rendered like Table 6):\n");
  for (const std::string& line : analysis::FormatPatternReport(
           result.patterns, stream.db.dictionary(), options)) {
    std::printf("  %s\n", line.c_str());
  }

  // Figure 8-style daily frequency sparklines for the planted events.
  std::printf("\nDaily frequencies (one glyph per ~day):\n");
  for (size_t e = 0; e < 4 && e < stream.events.size(); ++e) {
    const gen::ResolvedBurstEvent& event = stream.events[e];
    std::printf("  %s:\n", event.label.c_str());
    for (ItemId tag : event.tags) {
      std::vector<size_t> daily =
          analysis::BucketedFrequency(stream.db, tag, 1440);
      std::printf("    %-16s |%s|\n",
                  stream.db.dictionary().NameOf(tag).c_str(),
                  analysis::RenderAsciiSeries(daily, 60).c_str());
    }
    bool recovered = false;
    for (const auto& [begin, end] : event.windows) {
      recovered = recovered || analysis::RecoversPlantedEvent(
                                   result.patterns, event.tags, begin, end);
    }
    std::printf("    -> %s\n", recovered ? "recovered as recurring pattern"
                                         : "not recovered");
  }
  return 0;
}
