// Streaming monitor: incremental recurrence tracking without re-scans.
//
// Simulates a live event feed (the paper's network-administrator use case)
// consumed by StreamingRpList. As events arrive, the monitor watches each
// item's Erec bound; when an item first becomes a recurrence candidate it
// raises an alert and, on demand, a full RP-growth run over the retained
// history explains *which combinations* recur and when.

#include <cstdio>

#include "rpm/core/rp_growth.h"
#include "rpm/core/streaming_rp_list.h"
#include "rpm/common/random.h"
#include "rpm/timeseries/tdb_builder.h"

int main() {
  using namespace rpm;

  ItemDictionary dict;
  const ItemId cpu_spike = dict.GetOrAdd("cpu-spike");
  const ItemId oom_kill = dict.GetOrAdd("oom-kill");
  const ItemId gc_pause = dict.GetOrAdd("gc-pause");
  const ItemId deploy = dict.GetOrAdd("deploy");

  // The live feed: gc pauses hum along; twice a day a deploy happens; in
  // two windows a leaky build makes cpu-spike + oom-kill storm together.
  const Timestamp kMinutes = 7 * 1440;
  Rng rng(2025);
  std::vector<Transaction> feed;
  for (Timestamp ts = 0; ts < kMinutes; ++ts) {
    Itemset events;
    if (rng.NextBernoulli(0.30)) events.push_back(gc_pause);
    if (ts % 720 == 300) events.push_back(deploy);
    const bool leaky = (ts >= 2 * 1440 && ts < 2 * 1440 + 360) ||
                       (ts >= 5 * 1440 && ts < 5 * 1440 + 420);
    if (leaky && rng.NextBernoulli(0.5)) {
      events.push_back(cpu_spike);
      events.push_back(oom_kill);
    }
    if (!events.empty()) feed.push_back({ts, events});
  }

  // Monitor parameters: storms re-fire within 10 minutes, an interesting
  // storm sustains >= 60 periodic appearances.
  StreamingRpList monitor(/*period=*/10, /*min_ps=*/60);
  TdbBuilder history;

  std::vector<bool> alerted(dict.size(), false);
  for (const Transaction& tr : feed) {
    Status s = monitor.ObserveTransaction(tr.ts, tr.items);
    if (!s.ok()) {
      std::fprintf(stderr, "feed error: %s\n", s.ToString().c_str());
      return 2;
    }
    history.AddTransaction(tr.ts, tr.items);
    for (ItemId item : tr.items) {
      if (!alerted[item] && monitor.RecurrenceOf(item) >= 1) {
        alerted[item] = true;
        PeriodicInterval run = monitor.OpenRunOf(item);
        std::printf("[t=%5lld] ALERT %-10s sustained periodic activity "
                    "(run since t=%lld, %llu appearances)\n",
                    static_cast<long long>(tr.ts),
                    dict.NameOf(item).c_str(),
                    static_cast<long long>(run.begin),
                    static_cast<unsigned long long>(run.periodic_support));
      }
    }
  }

  std::printf("\nfeed done: %llu events over %lld minutes\n",
              static_cast<unsigned long long>(monitor.events_observed()),
              static_cast<long long>(monitor.last_timestamp()));
  std::printf("candidate items at minRec=2: ");
  for (ItemId item : monitor.CandidateItems(2)) {
    std::printf("%s ", dict.NameOf(item).c_str());
  }
  std::printf("\n\n");

  // Drill-down: full RP-growth over retained history explains the combos.
  RpParams params;
  params.period = 10;
  params.min_ps = 60;
  params.min_rec = 2;
  TransactionDatabase db = history.Build(std::move(dict));
  RpGrowthResult result = MineRecurringPatterns(db, params);
  std::printf("recurring patterns over history (%s):\n",
              params.ToString().c_str());
  for (const RecurringPattern& p : result.patterns) {
    std::printf("  %s\n", p.ToString(&db.dictionary()).c_str());
  }

  // The punchline: the storm pair recurs across both leaky windows.
  for (const RecurringPattern& p : result.patterns) {
    if (p.items == Itemset{cpu_spike, oom_kill}) {
      std::printf("\n{cpu-spike, oom-kill} recovered with recurrence %llu "
                  "— incident windows identified without any rescan "
                  "during ingest.\n",
                  static_cast<unsigned long long>(p.recurrence()));
      return 0;
    }
  }
  std::printf("\nstorm pair not recovered (unexpected)\n");
  return 1;
}
