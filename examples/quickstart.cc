// Quickstart: the paper's running example end to end.
//
// Builds the 12-transaction database of Table 1, mines it with
// per=2, minPS=3, minRec=2, and prints the recurring patterns of Table 2 in
// the Eq. 1 output format. Also demonstrates the anti-monotonicity quirk
// ('c' is not recurring although 'cd' is) and the Erec candidate bound.

#include <cstdio>

#include "rpm/core/measures.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_list.h"
#include "rpm/timeseries/tdb_builder.h"

int main() {
  using namespace rpm;

  // 1. Build the time-based sequence of Figure 1 as a transactional
  //    database (timestamps 8 and 13 carry no events and produce no row).
  ItemDictionary dict;
  const ItemId a = dict.GetOrAdd("a"), b = dict.GetOrAdd("b"),
               c = dict.GetOrAdd("c"), d = dict.GetOrAdd("d"),
               e = dict.GetOrAdd("e"), f = dict.GetOrAdd("f"),
               g = dict.GetOrAdd("g");
  TransactionDatabase db = MakeDatabase(
      {
          {1, {a, b, g}},
          {2, {a, c, d}},
          {3, {a, b, e, f}},
          {4, {a, b, c, d}},
          {5, {c, d, e, f, g}},
          {6, {e, f, g}},
          {7, {a, b, c, g}},
          {9, {c, d}},
          {10, {c, d, e, f}},
          {11, {a, b, e, f}},
          {12, {a, b, c, d, e, f, g}},
          {14, {a, b, g}},
      },
      std::move(dict));

  // 2. Thresholds: an inter-arrival time <= per is periodic; an interval
  //    is interesting when it holds >= minPS consecutive periodic
  //    appearances; a pattern is recurring with >= minRec such intervals.
  RpParams params;
  params.period = 2;
  params.min_ps = 3;
  params.min_rec = 2;

  // 3. Mine.
  RpGrowthResult result = MineRecurringPatterns(db, params);

  std::printf("Recurring patterns (%s) — Table 2 of the paper:\n",
              params.ToString().c_str());
  for (const RecurringPattern& p : result.patterns) {
    std::printf("  %s\n", p.ToString(&db.dictionary()).c_str());
  }

  // 4. The model is not anti-monotone: 'c' is not recurring, its superset
  //    'cd' is (Example 10). The Erec bound is what keeps mining sound.
  TimestampList ts_c = db.TimestampsOf({c});
  std::printf("\n'c':  Rec=%llu (not recurring), Erec=%llu (candidate)\n",
              static_cast<unsigned long long>(
                  ComputeRecurrence(ts_c, params.period, params.min_ps)),
              static_cast<unsigned long long>(
                  ComputeErec(ts_c, params.period, params.min_ps)));
  TimestampList ts_g = db.TimestampsOf({g});
  std::printf("'g':  Erec=%llu < minRec=%llu -> pruned with all supersets "
              "(Example 11)\n",
              static_cast<unsigned long long>(
                  ComputeErec(ts_g, params.period, params.min_ps)),
              static_cast<unsigned long long>(params.min_rec));

  std::printf("\nStats: %zu items, %zu candidates, %zu tree nodes, "
              "%zu patterns, %.3f ms total\n",
              result.stats.num_items, result.stats.num_candidate_items,
              result.stats.initial_tree_nodes, result.patterns.size(),
              result.stats.total_seconds * 1e3);
  return 0;
}
