// Build-once/query-many benchmark for the query engine (DESIGN.md §6).
//
// Three session workloads on the scaled Twitter stream, each checked for
// bit-identity against standalone MineRecurringPatterns runs (exit 1 on
// any divergence — a speedup that changes results is worthless):
//
//   repeat  — the dashboard regime: the same query re-executed against a
//             warm session. Reuse replaces the RP-list scan + RP-tree
//             build with a flat-map tree clone, so the speedup is the
//             build fraction of the standalone run.
//   sweep   — the drill-down regime: a loosest-first minPS x minRec grid
//             through ONE session (one tree build serves the whole grid).
//             Strict re-queries save the build but mine the looser tree,
//             so per-query gains shrink as the gap to the build point
//             grows — the report makes that tradeoff visible rather than
//             hiding it.
//   top-k   — threshold descent: every round clones the session's one
//             floor build instead of re-scanning the database per round.
//
// Emits BENCH_engine_reuse.json (bench_util.h JsonRecords); EXPERIMENTS.md
// records the numbers.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/top_k.h"
#include "rpm/engine/session.h"
#include "rpm/gen/paper_datasets.h"

namespace {

constexpr rpm::Timestamp kPer = 1440;

struct Tally {
  double standalone = 0.0;
  double session = 0.0;
  int divergent = 0;
};

void Report(rpmbench::JsonRecords& json, Tally& tally, const char* scenario,
            const rpm::engine::Query& query, size_t patterns,
            double standalone_s, double session_s, bool reused,
            bool identical) {
  const double speedup = session_s > 0.0 ? standalone_s / session_s : 0.0;
  std::printf("%-8s %-24s %12.4f %12.4f %8.2fx %6s\n", scenario,
              query.ToString().c_str(), standalone_s, session_s, speedup,
              reused ? "yes" : "no");
  std::fflush(stdout);
  tally.standalone += standalone_s;
  tally.session += session_s;
  if (!identical) {
    std::fprintf(stderr, "DIVERGENCE [%s] %s\n", scenario,
                 query.ToString().c_str());
    ++tally.divergent;
  }
  json.BeginRecord();
  json.Add("scenario", scenario);
  json.Add("query", query.ToString());
  json.Add("patterns", patterns);
  json.Add("standalone_seconds", standalone_s);
  json.Add("session_seconds", session_s);
  json.Add("speedup", speedup);
  json.Add("tree_reused", reused ? "true" : "false");
  json.Add("identical", identical ? "true" : "false");
}

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Query-engine reuse: build-once/query-many on one snapshot",
              "engine session workloads (DESIGN.md §6); dataset of Fig. 7-9");
  std::printf("scale %.3f\n\n", scale);

  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("twitter", twitter.db);
  auto snapshot = rpm::engine::DatasetSnapshot::Create(twitter.db);

  std::vector<rpm::RpParams> grid;
  for (double frac : TwitterMinPsFractions()) {
    for (uint64_t min_rec : PaperMinRecs()) {
      grid.push_back(*rpm::MakeParamsWithMinPsFraction(
          kPer, frac, min_rec, twitter.db.size()));
    }
  }

  JsonRecords json("engine_reuse", scale);
  std::printf("\n%-8s %-24s %12s %12s %9s %6s\n", "scenario", "query",
              "standalone_s", "session_s", "speedup", "reuse");
  Tally tally;

  // --- repeat: warm re-execution of each grid point ----------------------
  for (const rpm::RpParams& params : grid) {
    rpm::RpGrowthResult standalone =
        rpm::MineRecurringPatterns(twitter.db, params);
    rpm::engine::QuerySession session(snapshot);
    rpm::engine::Query query;
    query.params = params;
    rpm::Result<rpm::engine::QueryResult> cold = session.Run(query);
    rpm::Result<rpm::engine::QueryResult> warm = session.Run(query);
    if (!cold.ok() || !warm.ok()) {
      std::fprintf(stderr, "engine run failed\n");
      return 1;
    }
    Report(json, tally, "repeat", query, standalone.patterns.size(),
           standalone.stats.total_seconds, warm->total_seconds,
           warm->tree_reused,
           cold->patterns == standalone.patterns &&
               warm->patterns == standalone.patterns);
  }

  // --- sweep: one session serves the whole grid from one build -----------
  {
    rpm::engine::QuerySession session(snapshot);
    for (const rpm::RpParams& params : grid) {
      rpm::RpGrowthResult standalone =
          rpm::MineRecurringPatterns(twitter.db, params);
      rpm::engine::Query query;
      query.params = params;
      rpm::Result<rpm::engine::QueryResult> result = session.Run(query);
      if (!result.ok()) {
        std::fprintf(stderr, "engine run failed\n");
        return 1;
      }
      Report(json, tally, "sweep", query, standalone.patterns.size(),
             standalone.stats.total_seconds, result->total_seconds,
             result->tree_reused, result->patterns == standalone.patterns);
    }
    std::printf("sweep session: %llu tree build(s) for %zu queries\n",
                static_cast<unsigned long long>(session.tree_builds()),
                grid.size());
  }

  // --- top-k: descent rounds against the session's floor build -----------
  {
    const rpm::RpParams& loosest = grid.front();
    double standalone_s = 0.0;
    rpm::TopKResult standalone;
    {
      rpm::Stopwatch watch;
      standalone =
          rpm::MineTopKByRecurrence(twitter.db, kPer, loosest.min_ps, 10);
      standalone_s = watch.ElapsedSeconds();
    }
    rpm::engine::QuerySession session(snapshot);
    rpm::engine::Query query;
    query.params = loosest;
    query.top_k = 10;
    rpm::Result<rpm::engine::QueryResult> result = session.Run(query);
    if (!result.ok()) {
      std::fprintf(stderr, "engine top-k failed\n");
      return 1;
    }
    Report(json, tally, "top-k", query, standalone.patterns.size(),
           standalone_s, result->total_seconds, result->tree_reused,
           result->patterns == standalone.patterns);
  }

  const double total_speedup =
      tally.session > 0.0 ? tally.standalone / tally.session : 0.0;
  std::printf("\ntotal: standalone %.4fs, session %.4fs (%.2fx)\n",
              tally.standalone, tally.session, total_speedup);
  json.BeginRecord();
  json.Add("scenario", "total");
  json.Add("query", "ALL");
  json.Add("patterns", static_cast<size_t>(0));
  json.Add("standalone_seconds", tally.standalone);
  json.Add("session_seconds", tally.session);
  json.Add("speedup", total_speedup);
  json.Add("tree_reused", "false");
  json.Add("identical", tally.divergent == 0 ? "true" : "false");
  json.WriteFile(JsonReportPath("BENCH_engine_reuse.json"));

  if (tally.divergent > 0) {
    std::fprintf(stderr, "%d divergent quer(ies) — reuse is NOT pure\n",
                 tally.divergent);
    return 1;
  }
  return 0;
}
