// Governance-overhead benchmark (DESIGN.md §7): the cost of mining WITH a
// budget attached (deadline + memory + pattern-cap checkpoints active but
// never tripping) versus the ungoverned baseline, on the scaled Twitter
// stream.
//
// The governed-mining contract is that checkpoints are cheap enough to
// leave on: a countdown-gated probe every kCheckpointStride subproblem
// steps, one relaxed atomic load on the fast path. This bench enforces
// that contract as a gate — if the aggregate mine-phase overhead exceeds
// 2% (and more than a millisecond, to keep tiny smoke scales from gating
// on noise), the bench exits nonzero. It also re-checks purity: a budget
// that never trips must not change a single pattern.
//
// Interleaved A/B repetitions, min-of-reps per variant (the min is the
// stablest location estimate for a cold-cache-free microbench). Emits
// BENCH_governance.json (bench_util.h JsonRecords).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpm/core/cancellation.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/paper_datasets.h"

namespace {

constexpr rpm::Timestamp kPer = 1440;
constexpr double kGatePct = 2.0;
constexpr double kGateAbsSeconds = 0.001;

size_t RepsFromEnv() {
  const char* env = std::getenv("RPM_BENCH_REPS");
  if (env == nullptr) return 5;
  long reps = std::atol(env);
  return reps < 1 ? 1 : static_cast<size_t>(reps);
}

/// Limits generous enough that nothing ever trips, but all three governors
/// are armed — the budget object exists, every checkpoint site probes.
rpm::ResourceLimits UnhitLimits() {
  rpm::ResourceLimits limits;
  limits.timeout_ms = 3600 * 1000;                       // One hour.
  limits.memory_budget_bytes = 1ull << 40;               // 1 TiB.
  limits.max_patterns = 1ull << 40;
  return limits;
}

struct Sample {
  double mine_seconds = 0.0;
  size_t patterns = 0;
  uint64_t checkpoints = 0;
  bool truncated = false;
};

Sample RunOnce(const rpm::TransactionDatabase& db, const rpm::RpParams& params,
               bool governed) {
  rpm::RpGrowthOptions options;
  rpm::QueryBudget budget(UnhitLimits(), /*cancel=*/nullptr);
  if (governed) options.budget = &budget;
  rpm::RpGrowthResult result = rpm::MineRecurringPatterns(db, params, options);
  Sample sample;
  sample.mine_seconds = result.stats.mine_seconds;
  sample.patterns = result.patterns.size();
  sample.checkpoints = governed ? budget.usage().checkpoints : 0;
  sample.truncated = result.truncated;
  return sample;
}

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  const size_t reps = RepsFromEnv();
  PrintHeader("Governance overhead: budget checkpoints armed vs ungoverned",
              "resource-governed mining (DESIGN.md §7); dataset of Fig. 7-9");
  std::printf("scale %.3f, %zu interleaved reps per variant, gate %.1f%%\n\n",
              scale, reps, kGatePct);

  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("twitter", twitter.db);

  std::vector<rpm::RpParams> grid;
  for (double frac : {0.02, 0.05}) {
    for (uint64_t min_rec : {uint64_t{1}, uint64_t{2}}) {
      grid.push_back(*rpm::MakeParamsWithMinPsFraction(
          kPer, frac, min_rec, twitter.db.size()));
    }
  }

  JsonRecords json("governance", scale);
  std::printf("\n%-28s %10s %14s %14s %9s %12s\n", "query", "patterns",
              "baseline_ms", "governed_ms", "overhead", "checkpoints");

  double baseline_total = 0.0;
  double governed_total = 0.0;
  bool pure = true;
  for (const rpm::RpParams& params : grid) {
    // Warm both paths once (first touch pays allocator/page-fault costs).
    const Sample cold_base = RunOnce(twitter.db, params, /*governed=*/false);
    const Sample cold_gov = RunOnce(twitter.db, params, /*governed=*/true);
    if (cold_gov.patterns != cold_base.patterns || cold_gov.truncated) {
      std::fprintf(stderr, "PURITY VIOLATION: unhit budget changed results\n");
      pure = false;
    }
    double base_min = cold_base.mine_seconds;
    double gov_min = cold_gov.mine_seconds;
    uint64_t checkpoints = cold_gov.checkpoints;
    for (size_t r = 0; r < reps; ++r) {
      const Sample b = RunOnce(twitter.db, params, false);
      const Sample g = RunOnce(twitter.db, params, true);
      base_min = std::min(base_min, b.mine_seconds);
      gov_min = std::min(gov_min, g.mine_seconds);
      checkpoints = g.checkpoints;
    }
    baseline_total += base_min;
    governed_total += gov_min;
    const double overhead_pct =
        base_min > 0.0 ? (gov_min - base_min) / base_min * 100.0 : 0.0;
    const std::string label =
        "minPS=" + std::to_string(params.min_ps) +
        " minRec=" + std::to_string(params.min_rec);
    std::printf("%-28s %10zu %14.4f %14.4f %8.2f%% %12llu\n", label.c_str(),
                cold_base.patterns, base_min * 1e3, gov_min * 1e3,
                overhead_pct, static_cast<unsigned long long>(checkpoints));
    std::fflush(stdout);
    json.BeginRecord();
    json.Add("query", label);
    json.Add("patterns", cold_base.patterns);
    json.Add("baseline_mine_seconds", base_min);
    json.Add("governed_mine_seconds", gov_min);
    json.Add("overhead_pct", overhead_pct);
    json.Add("checkpoints", checkpoints);
  }

  const double delta = governed_total - baseline_total;
  const double total_pct =
      baseline_total > 0.0 ? delta / baseline_total * 100.0 : 0.0;
  const bool gate_ok =
      pure && !(total_pct > kGatePct && delta > kGateAbsSeconds);
  std::printf("\ntotal mine phase: baseline %.4fs, governed %.4fs "
              "(%+.2f%%) — gate %s\n",
              baseline_total, governed_total, total_pct,
              gate_ok ? "PASS" : "FAIL");

  json.BeginRecord();
  json.Add("query", "TOTAL");
  json.Add("patterns", static_cast<size_t>(0));
  json.Add("baseline_mine_seconds", baseline_total);
  json.Add("governed_mine_seconds", governed_total);
  json.Add("overhead_pct", total_pct);
  json.Add("checkpoints", static_cast<uint64_t>(gate_ok ? 1 : 0));
  json.WriteFile(JsonReportPath("BENCH_governance.json"));

  if (!gate_ok) {
    std::fprintf(stderr,
                 "governance overhead gate FAILED: %+.2f%% > %.1f%% "
                 "(checkpoints must stay effectively free)\n",
                 total_pct, kGatePct);
    return 1;
  }
  return 0;
}
