// Shared plumbing for the benchmark harnesses: the Table 4 parameter grid,
// dataset construction at a configurable scale, and header boilerplate.
//
// Every bench accepts the RPM_BENCH_SCALE environment variable (a fraction
// of the paper's dataset sizes; default 1.0). Scaled-down runs keep the
// shape of every result while cutting wall-clock time — useful on laptops
// and in CI. EXPERIMENTS.md records the scale its numbers were taken at.

#ifndef RPM_BENCH_BENCH_UTIL_H_
#define RPM_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "rpm/common/cpu_features.h"
#include "rpm/common/string_util.h"
#include "rpm/gen/paper_datasets.h"
#include "rpm/timeseries/database_stats.h"

namespace rpmbench {

inline double ScaleFromEnv(double fallback = 1.0) {
  const char* env = std::getenv("RPM_BENCH_SCALE");
  if (env == nullptr) return fallback;
  double scale = std::atof(env);
  if (scale <= 0.0 || scale > 1.0) return fallback;
  return scale;
}

/// The per values of Table 4 (minutes for Shop-14/Twitter; transaction
/// indices for T10I4D100K).
inline const std::vector<rpm::Timestamp>& PaperPeriods() {
  static const std::vector<rpm::Timestamp> kPeriods = {360, 720, 1440};
  return kPeriods;
}

inline const std::vector<uint64_t>& PaperMinRecs() {
  static const std::vector<uint64_t> kMinRecs = {1, 2, 3};
  return kMinRecs;
}

/// Table 4's minPS grids (fractions of |TDB|).
inline const std::vector<double>& QuestShopMinPsFractions() {
  static const std::vector<double> kFracs = {0.001, 0.002, 0.003};
  return kFracs;
}
inline const std::vector<double>& TwitterMinPsFractions() {
  static const std::vector<double> kFracs = {0.02, 0.05, 0.10};
  return kFracs;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================="
              "=================\n");
}

inline void PrintDataset(const char* name,
                         const rpm::TransactionDatabase& db) {
  std::printf("dataset %-12s %s\n", name,
              rpm::ComputeStats(db).ToString().c_str());
}

/// "0.1%" / "2%" labels for minPS fractions.
inline std::string FracLabel(double frac) {
  char buf[32];
  if (frac < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  }
  return buf;
}

// --- Machine-readable reports ------------------------------------------
//
// Benches historically emit console tables only (snapshotted as
// bench_runs/*.txt); JsonRecords adds a structured twin (BENCH_*.json)
// that scripts can diff across runs without scraping the tables.

// The build stamps every bench binary with the git commit it was built
// from (bench/CMakeLists.txt passes -DRPM_GIT_COMMIT=<short-hash> at
// configure time); out-of-git builds fall back to "unknown".
#ifndef RPM_GIT_COMMIT
#define RPM_GIT_COMMIT "unknown"
#endif

/// UTC wall-clock in ISO 8601 ("2026-08-08T14:03:07Z"), for provenance
/// stamps in bench reports.
inline std::string IsoTimestampUtc() {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Flat array-of-records JSON document builder for bench reports:
/// {"bench": <name>, "scale": <s>, "hardware_concurrency": <hw>,
///  "simd_level": <active dispatch level>, "git_commit": <build commit>,
///  "generated_at": <ISO UTC>, "records": [{...}, ...]}.
/// The host fields make snapshots self-describing: a diff tool can
/// refuse to compare runs from machines with different core counts or a
/// forced-scalar run against a vectorized one, and the provenance pair
/// answers "which build produced this file, when" long after the run.
/// Values are rendered on Add, so records may mix field sets freely
/// (they shouldn't — keep them uniform for easy loading).
class JsonRecords {
 public:
  JsonRecords(std::string bench, double scale)
      : bench_(std::move(bench)), scale_(scale) {}

  void BeginRecord() { records_.emplace_back(); }
  void Add(const std::string& key, const std::string& value) {
    // Built with += (not chained operator+) to dodge GCC 12's spurious
    // -Werror=restrict on literal + std::string&& (PR 105651).
    std::string rendered = "\"";
    rendered += JsonEscape(value);
    rendered += '"';
    AddRaw(key, std::move(rendered));
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    AddRaw(key, rpm::FormatDouble(value, 6));
  }
  /// Any integer type (kept as one template so size_t / uint64_t /
  /// Timestamp never collide as overloads across platforms).
  template <typename Int>
    requires std::is_integral_v<Int>
  void Add(const std::string& key, Int value) {
    AddRaw(key, std::to_string(value));
  }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"";
    out += JsonEscape(bench_);
    out += "\",\n  \"scale\": ";
    out += rpm::FormatDouble(scale_, 4);
    out += ",\n  \"hardware_concurrency\": ";
    out += std::to_string(std::thread::hardware_concurrency());
    out += ",\n  \"simd_level\": \"";
    out += rpm::SimdLevelName(rpm::ActiveSimdLevel());
    out += "\",\n  \"git_commit\": \"";
    out += JsonEscape(RPM_GIT_COMMIT);
    out += "\",\n  \"generated_at\": \"";
    out += JsonEscape(IsoTimestampUtc());
    out += "\",\n  \"records\": [\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out += "    {";
      for (size_t f = 0; f < records_[r].size(); ++f) {
        if (f > 0) out += ", ";
        out += '"';
        out += JsonEscape(records_[r][f].first);
        out += "\": ";
        out += records_[r][f].second;
      }
      out += r + 1 < records_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the document; returns false (and prints to stderr) on failure.
  bool WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    out << ToJson();
    std::fprintf(stdout, "wrote %s (%zu records)\n", path.c_str(),
                 records_.size());
    return true;
  }

 private:
  void AddRaw(const std::string& key, std::string rendered) {
    records_.back().emplace_back(key, std::move(rendered));
  }

  std::string bench_;
  double scale_;
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

/// Output path for a bench's JSON twin: $RPM_BENCH_JSON_DIR/<name> when
/// the env var is set (e.g. bench_runs/), else <name> in the cwd.
inline std::string JsonReportPath(const std::string& name) {
  const char* dir = std::getenv("RPM_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return name;
  std::string path(dir);
  if (path.back() != '/') path += '/';
  return path + name;
}

}  // namespace rpmbench

#endif  // RPM_BENCH_BENCH_UTIL_H_
