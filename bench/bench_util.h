// Shared plumbing for the benchmark harnesses: the Table 4 parameter grid,
// dataset construction at a configurable scale, and header boilerplate.
//
// Every bench accepts the RPM_BENCH_SCALE environment variable (a fraction
// of the paper's dataset sizes; default 1.0). Scaled-down runs keep the
// shape of every result while cutting wall-clock time — useful on laptops
// and in CI. EXPERIMENTS.md records the scale its numbers were taken at.

#ifndef RPM_BENCH_BENCH_UTIL_H_
#define RPM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rpm/gen/paper_datasets.h"
#include "rpm/timeseries/database_stats.h"

namespace rpmbench {

inline double ScaleFromEnv(double fallback = 1.0) {
  const char* env = std::getenv("RPM_BENCH_SCALE");
  if (env == nullptr) return fallback;
  double scale = std::atof(env);
  if (scale <= 0.0 || scale > 1.0) return fallback;
  return scale;
}

/// The per values of Table 4 (minutes for Shop-14/Twitter; transaction
/// indices for T10I4D100K).
inline const std::vector<rpm::Timestamp>& PaperPeriods() {
  static const std::vector<rpm::Timestamp> kPeriods = {360, 720, 1440};
  return kPeriods;
}

inline const std::vector<uint64_t>& PaperMinRecs() {
  static const std::vector<uint64_t> kMinRecs = {1, 2, 3};
  return kMinRecs;
}

/// Table 4's minPS grids (fractions of |TDB|).
inline const std::vector<double>& QuestShopMinPsFractions() {
  static const std::vector<double> kFracs = {0.001, 0.002, 0.003};
  return kFracs;
}
inline const std::vector<double>& TwitterMinPsFractions() {
  static const std::vector<double> kFracs = {0.02, 0.05, 0.10};
  return kFracs;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==============================================================="
              "=================\n");
}

inline void PrintDataset(const char* name,
                         const rpm::TransactionDatabase& db) {
  std::printf("dataset %-12s %s\n", name,
              rpm::ComputeStats(db).ToString().c_str());
}

/// "0.1%" / "2%" labels for minPS fractions.
inline std::string FracLabel(double frac) {
  char buf[32];
  if (frac < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.1f%%", frac * 100.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  }
  return buf;
}

}  // namespace rpmbench

#endif  // RPM_BENCH_BENCH_UTIL_H_
