// Thread-scaling of parallel RP-growth on the Table-7 datasets: mines one
// mining-heavy Table-4 cell per dataset at 1/2/4/8 worker threads and
// reports wall seconds, per-phase split, and speedup vs the sequential
// run — now including the partitioned RP-tree build (tree_s plus the
// fold's partial/merge stats). Emits BENCH_parallel_scaling.json (see
// bench_util.h JsonRecords; the document header carries
// hardware_concurrency so readers can tell real scaling from a saturated
// host) next to the console table.
//
// Expected shape: patterns_emitted is bit-identical across thread counts
// (the bench aborts if not); mine-phase wall time falls with threads up to
// the hardware's parallelism, and tree construction now partitions as
// well (its Amdahl share shrinks to the partial-trie fold, which stays
// sequential). On a single-core container every thread count costs the
// same — the speedup column then just documents that the parallel path
// adds no overhead.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "rpm/core/rp_growth.h"

namespace {

struct Workload {
  const char* dataset;
  const rpm::TransactionDatabase* db;
  double min_ps_frac;
  rpm::Timestamp per;
  uint64_t min_rec;
};

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Parallel scaling — RP-growth mining phase vs threads",
              "this repo's parallel extension (not in the paper)");
  std::printf("scale=%.2f (set RPM_BENCH_SCALE to change)\n\n", scale);

  rpm::TransactionDatabase quest = rpm::gen::MakeT10I4D100K(scale);
  PrintDataset("T10I4D100K", quest);
  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  PrintDataset("Shop-14", shop.db);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);
  std::printf("\n");

  // The loosest Table-4 cell per dataset (per=1440, smallest minPS,
  // minRec=1): the most mining work, where parallelism matters most.
  const std::vector<Workload> workloads = {
      {"T10I4D100K", &quest, QuestShopMinPsFractions().front(), 1440, 1},
      {"Shop-14", &shop.db, QuestShopMinPsFractions().front(), 1440, 1},
      {"Twitter", &twitter.db, TwitterMinPsFractions().front(), 1440, 1},
  };
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  JsonRecords json("parallel_scaling", scale);
  int mismatches = 0;
  std::printf("hardware_concurrency=%u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-12s %-8s %8s %10s %10s %10s %10s %9s %10s %6s %8s\n",
              "dataset", "threads", "patterns", "wall_s", "tree_s", "mine_s",
              "cpu_s", "speedup", "mine_spdup", "build", "merge_ms");
  for (const Workload& w : workloads) {
    rpm::Result<rpm::RpParams> params = rpm::MakeParamsWithMinPsFraction(
        w.per, w.min_ps_frac, w.min_rec, w.db->size());
    double base_wall = 0.0, base_mine = 0.0;
    size_t base_patterns = 0;
    for (size_t threads : thread_counts) {
      rpm::RpGrowthOptions options;
      options.num_threads = threads;
      options.store_patterns = false;  // Time mining, not result storage.
      rpm::RpGrowthResult result =
          rpm::MineRecurringPatterns(*w.db, *params, options);
      const rpm::RpGrowthStats& s = result.stats;
      if (threads == 1) {
        base_wall = s.total_seconds;
        base_mine = s.mine_seconds;
        base_patterns = s.patterns_emitted;
      } else if (s.patterns_emitted != base_patterns) {
        ++mismatches;
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %zu threads emitted %zu "
                     "patterns vs %zu sequential\n",
                     w.dataset, threads, s.patterns_emitted, base_patterns);
      }
      const double speedup =
          s.total_seconds > 0.0 ? base_wall / s.total_seconds : 0.0;
      const double mine_speedup =
          s.mine_seconds > 0.0 ? base_mine / s.mine_seconds : 0.0;
      std::printf("%-12s %-8zu %8zu %10.3f %10.3f %10.3f %10.3f %8.2fx "
                  "%9.2fx %6zu %8.2f\n",
                  w.dataset, threads, s.patterns_emitted, s.total_seconds,
                  s.tree_seconds, s.mine_seconds, s.mine_cpu_seconds, speedup,
                  mine_speedup, s.tree_build_threads,
                  s.tree_merge_seconds * 1000.0);
      std::fflush(stdout);

      json.BeginRecord();
      json.Add("dataset", w.dataset);
      json.Add("per", static_cast<uint64_t>(w.per));
      json.Add("min_ps_frac", w.min_ps_frac);
      json.Add("min_rec", w.min_rec);
      json.Add("threads", threads);
      json.Add("threads_used", s.threads_used);
      json.Add("patterns_emitted", s.patterns_emitted);
      json.Add("wall_seconds", s.total_seconds);
      json.Add("list_seconds", s.list_seconds);
      json.Add("tree_seconds", s.tree_seconds);
      json.Add("mine_seconds", s.mine_seconds);
      json.Add("mine_cpu_seconds", s.mine_cpu_seconds);
      json.Add("speedup", speedup);
      json.Add("mine_speedup", mine_speedup);
      json.Add("tree_build_threads", s.tree_build_threads);
      json.Add("tree_partials_merged", s.tree_partials_merged);
      json.Add("tree_merge_seconds", s.tree_merge_seconds);
      json.Add("scratch_bytes_peak", s.scratch_bytes_peak);
      json.Add("scratch_bytes_total", s.scratch_bytes_total);
    }
    std::printf("\n");
  }

  json.WriteFile(JsonReportPath("BENCH_parallel_scaling.json"));
  if (mismatches != 0) {
    std::fprintf(stderr, "%d determinism violation(s)\n", mismatches);
    return 1;
  }
  return 0;
}
