// Table 5: number of recurring patterns generated at different per, minPS
// and minRec threshold values, on T10I4D100K, Shop-14 and Twitter.
//
// Expected shape (paper Sec. 5.2): counts fall as minPS rises, fall as
// minRec rises, and rise with per at minRec=1 (with mixed direction at
// minRec>1 because larger per merges adjacent interesting intervals).

#include <iostream>

#include "bench_util.h"
#include "grid_runner.h"

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Table 5 — number of recurring patterns",
              "Kiran et al., EDBT 2015, Table 5");
  std::printf("scale=%.2f (set RPM_BENCH_SCALE to change)\n\n", scale);

  rpm::TransactionDatabase quest = rpm::gen::MakeT10I4D100K(scale);
  PrintDataset("T10I4D100K", quest);
  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  PrintDataset("Shop-14", shop.db);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);
  std::printf("\n");

  std::vector<DatasetGrid> grids;
  grids.push_back(RunGrid("T10I4D100K", quest, QuestShopMinPsFractions()));
  grids.push_back(RunGrid("Shop-14", shop.db, QuestShopMinPsFractions()));
  grids.push_back(RunGrid("Twitter", twitter.db, TwitterMinPsFractions()));

  PrintGrid(grids,
            [](const GridCell& cell) {
              return std::to_string(cell.pattern_count);
            },
            &std::cout);

  // Shape assertions mirrored in EXPERIMENTS.md: counts monotone in minPS
  // and minRec (per fixed everything else).
  size_t violations = 0;
  for (const DatasetGrid& grid : grids) {
    for (const GridCell& a : grid.cells) {
      for (const GridCell& b : grid.cells) {
        if (a.per == b.per && a.min_rec == b.min_rec &&
            a.min_ps_frac < b.min_ps_frac &&
            a.pattern_count < b.pattern_count) {
          ++violations;
        }
        if (a.per == b.per && a.min_ps_frac == b.min_ps_frac &&
            a.min_rec < b.min_rec && a.pattern_count < b.pattern_count) {
          ++violations;
        }
      }
    }
  }
  std::printf("\nmonotonicity violations (minPS up or minRec up but count "
              "up): %zu (expected 0)\n",
              violations);

  // Sec. 5.2 observation 3: at minRec = 1, increasing per only merges
  // aperiodic gaps into runs, so counts must not decrease.
  size_t per_violations = 0;
  for (const DatasetGrid& grid : grids) {
    for (const GridCell& a : grid.cells) {
      for (const GridCell& b : grid.cells) {
        if (a.min_rec == 1 && b.min_rec == 1 &&
            a.min_ps_frac == b.min_ps_frac && a.per < b.per &&
            a.pattern_count > b.pattern_count) {
          ++per_violations;
        }
      }
    }
  }
  std::printf("per-monotonicity violations at minRec=1 (per up but count "
              "down): %zu (expected 0)\n",
              per_violations);
  return 0;
}
