// Table 7: runtime of RP-growth at different per, minPS and minRec
// threshold values (seconds; includes RP-list, tree construction and
// mining — the paper's figure likewise covers transformation + mining).
//
// Expected shape: runtime falls as minPS/minRec rise (fewer candidates,
// smaller trees) and rises with per (longer runs -> more candidates).

#include <iostream>

#include "bench_util.h"
#include "grid_runner.h"
#include "rpm/common/string_util.h"

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Table 7 — RP-growth runtime (seconds)",
              "Kiran et al., EDBT 2015, Table 7");
  std::printf("scale=%.2f (set RPM_BENCH_SCALE to change)\n\n", scale);

  rpm::TransactionDatabase quest = rpm::gen::MakeT10I4D100K(scale);
  PrintDataset("T10I4D100K", quest);
  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  PrintDataset("Shop-14", shop.db);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);
  std::printf("\n");

  std::vector<DatasetGrid> grids;
  grids.push_back(RunGrid("T10I4D100K", quest, QuestShopMinPsFractions()));
  grids.push_back(RunGrid("Shop-14", shop.db, QuestShopMinPsFractions()));
  grids.push_back(RunGrid("Twitter", twitter.db, TwitterMinPsFractions()));

  PrintGrid(grids,
            [](const GridCell& cell) {
              return rpm::FormatDouble(cell.seconds, 3);
            },
            &std::cout);

  // Shape check: for each dataset, the cheapest cell should be at the
  // strictest thresholds and the most expensive at the loosest.
  for (const DatasetGrid& grid : grids) {
    const GridCell* loosest = nullptr;
    const GridCell* strictest = nullptr;
    for (const GridCell& cell : grid.cells) {
      if (cell.per == 1440 && cell.min_rec == 1 &&
          (loosest == nullptr || cell.min_ps_frac < loosest->min_ps_frac)) {
        loosest = &cell;
      }
      if (cell.per == 360 && cell.min_rec == 3 &&
          (strictest == nullptr ||
           cell.min_ps_frac > strictest->min_ps_frac)) {
        strictest = &cell;
      }
    }
    if (loosest != nullptr && strictest != nullptr) {
      std::printf("%s: loosest cell %.3fs vs strictest %.3fs (paper shape: "
                  "loosest >= strictest)\n",
                  grid.dataset.c_str(), loosest->seconds,
                  strictest->seconds);
    }
  }
  return 0;
}
