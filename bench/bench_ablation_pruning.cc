// Ablation: the value of the Erec pruning technique (Sec. 4.1).
//
// Compares, on all three datasets at the loosest Table 4 thresholds:
//   1. RP-growth with the Erec candidate bound (the paper's algorithm);
//   2. RP-growth gated only by the trivial Sup >= minPS*minRec bound
//      (what a naive adaptation would use — recurring patterns themselves
//      are not anti-monotone, so *some* gate is required for soundness);
//   3. the vertical (tid-list intersection) miner with and without Erec,
//      reporting lattice nodes explored.
//
// All four produce identical pattern sets; the deltas are search-space and
// wall-clock.

#include <cstdio>

#include "bench_util.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/brute_force.h"
#include "rpm/core/rp_growth.h"

namespace {

void RunDataset(const char* name, const rpm::TransactionDatabase& db,
                double min_ps_frac, uint64_t min_rec) {
  rpm::Result<rpm::RpParams> params = rpm::MakeParamsWithMinPsFraction(
      1440, min_ps_frac, min_rec, db.size());
  std::printf("\n%s (%s)\n", name, params->ToString().c_str());

  rpm::RpGrowthOptions with_erec;
  rpm::RpGrowthOptions without_erec;
  without_erec.pruning = rpm::PruningMode::kSupportOnly;

  auto erec_run = rpm::MineRecurringPatterns(db, *params, with_erec);
  std::printf("  rp-growth + Erec prune : %8.3fs  %zu candidates, "
              "%zu tree nodes, %zu cond trees, %zu patterns\n",
              erec_run.stats.total_seconds,
              erec_run.stats.num_candidate_items,
              erec_run.stats.initial_tree_nodes,
              erec_run.stats.conditional_trees, erec_run.patterns.size());

  auto naive_run = rpm::MineRecurringPatterns(db, *params, without_erec);
  std::printf("  rp-growth support-only : %8.3fs  %zu candidates, "
              "%zu tree nodes, %zu cond trees, %zu patterns\n",
              naive_run.stats.total_seconds,
              naive_run.stats.num_candidate_items,
              naive_run.stats.initial_tree_nodes,
              naive_run.stats.conditional_trees, naive_run.patterns.size());

  rpm::VerticalMinerOptions v_with;
  rpm::VerticalMinerOptions v_without;
  v_without.use_candidate_pruning = false;
  rpm::Stopwatch sw;
  auto v_erec = rpm::MineVertical(db, *params, v_with);
  double v_erec_s = sw.ElapsedSeconds();
  sw.Restart();
  auto v_naive = rpm::MineVertical(db, *params, v_without);
  double v_naive_s = sw.ElapsedSeconds();
  std::printf("  vertical + Erec prune  : %8.3fs  %zu lattice nodes, "
              "%zu patterns\n",
              v_erec_s, v_erec.nodes_explored, v_erec.patterns.size());
  std::printf("  vertical support-only  : %8.3fs  %zu lattice nodes, "
              "%zu patterns\n",
              v_naive_s, v_naive.nodes_explored, v_naive.patterns.size());

  const bool same =
      rpm::SamePatternSets(erec_run.patterns, naive_run.patterns) &&
      rpm::SamePatternSets(erec_run.patterns, v_erec.patterns) &&
      rpm::SamePatternSets(erec_run.patterns, v_naive.patterns);
  std::printf("  all four agree: %s;  node reduction from Erec: %.1f%%\n",
              same ? "yes" : "NO (bug!)",
              v_naive.nodes_explored == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(v_erec.nodes_explored) /
                                       static_cast<double>(
                                           v_naive.nodes_explored)));
}

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation — Erec pruning (Sec. 4.1) on/off",
              "design-choice ablation; complements Tables 5/7");
  std::printf("scale=%.2f\n", scale);

  rpm::TransactionDatabase quest = rpm::gen::MakeT10I4D100K(scale);
  RunDataset("T10I4D100K", quest, 0.001, 2);
  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  RunDataset("Shop-14", shop.db, 0.001, 2);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  RunDataset("Twitter", twitter.db, 0.02, 2);
  return 0;
}
