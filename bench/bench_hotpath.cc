// Hot-path benchmark for the merge-based ts-list kernel and the columnar
// SIMD gate: mines one mining-heavy Table-4 cell on each Table-7 dataset
// plus a dense-synthetic burst workload, at 1 and 8 worker threads, and
// reports wall seconds, phase split, the merge-kernel counters (merges /
// runs / timestamps / scratch), and the gate-scan counters (lists / gaps /
// SIMD lane utilization). Emits BENCH_hotpath.json (bench_util.h
// JsonRecords; the document header records the active SIMD level —
// RPM_FORCE_SCALAR=1 measures the scalar fallback on the same binary).
//
// The dense-synthetic workload is the kernel's target regime: a small
// hashtag universe dominated by long planted burst events, so transaction
// shapes repeat for stretches and tree tail-lists carry long sorted runs
// (avg run length ~48 at scale 1, vs ~3 on Twitter). The Table-7 datasets
// bound the other end — heavily fragmented runs, where the kernel must
// match (not beat) the concat+sort path it replaced.
//
// Pre-change comparison: export RPM_BENCH_BASELINE="name:mine_s,..."
// (mine-phase seconds of the pre-kernel binary at the same scale and
// threads=1) and each record gains baseline_mine_seconds / speedup fields.
// EXPERIMENTS.md records the numbers used.
//
// The bench aborts (exit 1) if any dataset's pattern count differs across
// thread counts, or if the schedule-invariant merge counters do.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/hashtag_generator.h"

namespace {

struct Workload {
  const char* dataset;
  const rpm::TransactionDatabase* db;
  double min_ps_frac;
  rpm::Timestamp per;
  uint64_t min_rec;
};

/// Dense burst stream: 50 tags, minimal background traffic, scaled count
/// of 2-6 day events firing at 0.9 — the classic "dense" shape (few
/// distinct transaction shapes, each recurring for long stretches).
rpm::gen::GeneratedHashtagStream MakeDenseSynth(double scale) {
  rpm::gen::HashtagParams p;
  p.num_minutes = static_cast<size_t>(40000 * scale);
  p.num_hashtags = 50;
  p.background_rate = 1.0;
  p.daily_dropout_base = 0.0;
  p.daily_dropout_slope = 0.0;
  // Event count scales with the stream so event overlap (and with it the
  // frequent-itemset lattice) keeps the same shape at every scale.
  p.num_random_events = static_cast<size_t>(16 * scale) + 1;
  p.min_event_tags = 2;
  p.max_event_tags = 4;
  p.min_event_windows = 1;
  p.max_event_windows = 2;
  p.min_event_minutes = 2 * 1440;
  p.max_event_minutes = 6 * 1440;
  p.event_fire_prob = 0.9;
  p.seed = 4242;
  return rpm::gen::GenerateHashtagStream(p);
}

/// Parses RPM_BENCH_BASELINE ("name:seconds,name:seconds"); returns < 0
/// when no baseline is recorded for `dataset`.
double BaselineMineSeconds(const char* dataset) {
  const char* env = std::getenv("RPM_BENCH_BASELINE");
  if (env == nullptr) return -1.0;
  const size_t name_len = std::strlen(dataset);
  for (const char* p = env; *p != '\0';) {
    const char* colon = std::strchr(p, ':');
    if (colon == nullptr) break;
    const char* end = std::strchr(colon, ',');
    if (static_cast<size_t>(colon - p) == name_len &&
        std::strncmp(p, dataset, name_len) == 0) {
      return std::atof(colon + 1);
    }
    if (end == nullptr) break;
    p = end + 1;
  }
  return -1.0;
}

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Hot-path kernel — run-aware merging on Table-7 + dense burst",
              "this repo's merge kernel (not in the paper); Table 7 datasets");
  std::printf("scale=%.2f (set RPM_BENCH_SCALE to change)\n\n", scale);

  rpm::TransactionDatabase quest = rpm::gen::MakeT10I4D100K(scale);
  PrintDataset("T10I4D100K", quest);
  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  PrintDataset("Shop-14", shop.db);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);
  rpm::gen::GeneratedHashtagStream dense = MakeDenseSynth(scale);
  PrintDataset("dense-synth", dense.db);
  std::printf("\n");

  const std::vector<Workload> workloads = {
      {"T10I4D100K", &quest, QuestShopMinPsFractions().front(), 1440, 1},
      {"Shop-14", &shop.db, QuestShopMinPsFractions().front(), 1440, 1},
      {"Twitter", &twitter.db, TwitterMinPsFractions().front(), 1440, 1},
      // Dense data takes the classic high relative threshold (cf. mushroom
      // / chess in the FIMI literature) to keep the lattice bounded.
      {"dense-synth", &dense.db, 0.05, 360, 2},
  };
  const std::vector<size_t> thread_counts = {1, 8};

  JsonRecords json("hotpath", scale);
  int violations = 0;
  std::printf("simd dispatch: %s\n\n",
              rpm::SimdLevelName(rpm::ActiveSimdLevel()));
  std::printf("%-12s %-8s %8s %9s %9s %11s %12s %12s %11s %9s %12s %7s\n",
              "dataset", "threads", "patterns", "wall_s", "mine_s", "merges",
              "runs", "timestamps", "scratch_B", "run_len", "gate_gaps",
              "simd%");
  for (const Workload& w : workloads) {
    rpm::Result<rpm::RpParams> params = rpm::MakeParamsWithMinPsFraction(
        w.per, w.min_ps_frac, w.min_rec, w.db->size());
    const double baseline_mine = BaselineMineSeconds(w.dataset);
    size_t base_patterns = 0;
    size_t base_merges = 0, base_runs = 0, base_timestamps = 0;
    size_t base_gate_lists = 0, base_gate_gaps = 0, base_gate_simd = 0;
    for (size_t threads : thread_counts) {
      rpm::RpGrowthOptions options;
      options.num_threads = threads;
      options.store_patterns = false;  // Time mining, not result storage.
      rpm::RpGrowthResult result =
          rpm::MineRecurringPatterns(*w.db, *params, options);
      const rpm::RpGrowthStats& s = result.stats;
      if (threads == thread_counts.front()) {
        base_patterns = s.patterns_emitted;
        base_merges = s.merge_invocations;
        base_runs = s.runs_merged;
        base_timestamps = s.timestamps_merged;
        base_gate_lists = s.gate_lists_scanned;
        base_gate_gaps = s.gate_gaps_scanned;
        base_gate_simd = s.gate_gaps_simd;
      } else if (s.patterns_emitted != base_patterns ||
                 s.merge_invocations != base_merges ||
                 s.runs_merged != base_runs ||
                 s.timestamps_merged != base_timestamps ||
                 s.gate_lists_scanned != base_gate_lists ||
                 s.gate_gaps_scanned != base_gate_gaps ||
                 s.gate_gaps_simd != base_gate_simd) {
        ++violations;
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s at %zu threads: patterns "
                     "%zu/%zu merges %zu/%zu runs %zu/%zu ts %zu/%zu gate "
                     "%zu/%zu gaps %zu/%zu simd %zu/%zu\n",
                     w.dataset, threads, s.patterns_emitted, base_patterns,
                     s.merge_invocations, base_merges, s.runs_merged,
                     base_runs, s.timestamps_merged, base_timestamps,
                     s.gate_lists_scanned, base_gate_lists,
                     s.gate_gaps_scanned, base_gate_gaps, s.gate_gaps_simd,
                     base_gate_simd);
      }
      const double avg_run_len =
          s.runs_merged > 0
              ? static_cast<double>(s.timestamps_merged) / s.runs_merged
              : 0.0;
      const double simd_util =
          s.gate_gaps_scanned > 0
              ? 100.0 * static_cast<double>(s.gate_gaps_simd) /
                    static_cast<double>(s.gate_gaps_scanned)
              : 0.0;
      std::printf("%-12s %-8zu %8zu %9.3f %9.3f %11zu %12zu %12zu %11zu "
                  "%9.2f %12zu %6.1f%%\n",
                  w.dataset, threads, s.patterns_emitted, s.total_seconds,
                  s.mine_seconds, s.merge_invocations, s.runs_merged,
                  s.timestamps_merged, s.scratch_bytes_peak, avg_run_len,
                  s.gate_gaps_scanned, simd_util);
      std::fflush(stdout);

      json.BeginRecord();
      json.Add("dataset", w.dataset);
      json.Add("per", static_cast<uint64_t>(w.per));
      json.Add("min_ps_frac", w.min_ps_frac);
      json.Add("min_rec", w.min_rec);
      json.Add("threads", threads);
      json.Add("patterns_emitted", s.patterns_emitted);
      json.Add("wall_seconds", s.total_seconds);
      json.Add("mine_seconds", s.mine_seconds);
      json.Add("list_seconds", s.list_seconds);
      json.Add("tree_seconds", s.tree_seconds);
      json.Add("merge_invocations", s.merge_invocations);
      json.Add("runs_merged", s.runs_merged);
      json.Add("timestamps_merged", s.timestamps_merged);
      json.Add("scratch_bytes_peak", s.scratch_bytes_peak);
      json.Add("scratch_bytes_total", s.scratch_bytes_total);
      json.Add("avg_run_length", avg_run_len);
      json.Add("gate_lists_scanned", s.gate_lists_scanned);
      json.Add("gate_gaps_scanned", s.gate_gaps_scanned);
      json.Add("gate_gaps_simd", s.gate_gaps_simd);
      json.Add("simd_lane_utilization", simd_util / 100.0);
      json.Add("tree_build_threads", s.tree_build_threads);
      json.Add("tree_partials_merged", s.tree_partials_merged);
      json.Add("tree_merge_seconds", s.tree_merge_seconds);
      if (baseline_mine > 0.0 && threads == 1) {
        json.Add("baseline_mine_seconds", baseline_mine);
        json.Add("speedup_vs_baseline",
                 s.mine_seconds > 0.0 ? baseline_mine / s.mine_seconds : 0.0);
      }
    }
    if (baseline_mine > 0.0) {
      std::printf("%-12s pre-change mine_s=%.3f (threads=1)\n", w.dataset,
                  baseline_mine);
    }
  }

  json.WriteFile(JsonReportPath("BENCH_hotpath.json"));
  if (violations != 0) {
    std::fprintf(stderr, "%d determinism violation(s)\n", violations);
    return 1;
  }
  return 0;
}
