// Table 8: periodic-frequent patterns vs recurring patterns vs p-patterns
// on Shop-14 and Twitter. Columns: I = total patterns, II = length of the
// longest pattern.
//
// Paper settings: per = 1440 (one day); minSup = 0.1% for PF and
// p-patterns; minPS = 0.1% (Shop-14) / 2% (Twitter) for recurring
// patterns; minRec = 1; p-pattern window w = 1.
//
// Expected shape: PF patterns ≪ recurring patterns ≪ p-patterns in count,
// and PF max-length < recurring max-length < p-pattern max-length — the
// complete-cycle constraint admits only short ubiquitous patterns, while
// the unanchored p-pattern model explodes combinatorially.

#include <iostream>

#include "bench_util.h"
#include "rpm/analysis/table_printer.h"
#include "rpm/baselines/pf_growth.h"
#include "rpm/baselines/ppattern.h"
#include "rpm/common/string_util.h"
#include "rpm/core/rp_growth.h"

namespace {

struct ModelRow {
  size_t pf_count = 0, pf_len = 0;
  size_t rp_count = 0, rp_len = 0;
  size_t pp_count = 0, pp_len = 0;
  bool pp_truncated = false;
  double pf_s = 0, rp_s = 0, pp_s = 0;
};

ModelRow CompareModels(const rpm::TransactionDatabase& db,
                       double rp_min_ps_frac) {
  ModelRow row;
  const uint64_t min_sup = std::max<uint64_t>(
      1, static_cast<uint64_t>(0.001 * static_cast<double>(db.size())));

  rpm::baselines::PfParams pf;
  pf.min_sup = min_sup;
  pf.max_per = 1440;
  auto pf_result = rpm::baselines::MinePeriodicFrequentPatterns(db, pf);
  row.pf_count = pf_result.patterns.size();
  for (const auto& p : pf_result.patterns) {
    row.pf_len = std::max(row.pf_len, p.items.size());
  }
  row.pf_s = pf_result.seconds;

  rpm::Result<rpm::RpParams> rp = rpm::MakeParamsWithMinPsFraction(
      1440, rp_min_ps_frac, 1, db.size());
  auto rp_result = rpm::MineRecurringPatterns(db, *rp);
  row.rp_count = rp_result.patterns.size();
  row.rp_len = rpm::MaxPatternLength(rp_result.patterns);
  row.rp_s = rp_result.stats.total_seconds;

  rpm::baselines::PPatternParams pp;
  pp.period = 1440;
  pp.window = 1;
  pp.min_sup = min_sup;
  rpm::baselines::PPatternOptions pp_options;
  pp_options.max_stored_patterns = 1;       // Counts only; save memory.
  // Explosion guard: the unanchored model admits millions of itemsets on
  // the full Twitter stream (an uncapped run found 1,667,285 in ~8 min).
  // 500k is plenty to demonstrate PP >> RP; ">" marks a truncated count.
  pp_options.max_total_patterns = 500000;
  auto pp_result = rpm::baselines::MinePPatterns(db, pp, pp_options);
  row.pp_count = pp_result.total_found;
  row.pp_len = pp_result.max_length;
  row.pp_truncated = pp_result.truncated;
  row.pp_s = pp_result.seconds;
  return row;
}

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Table 8 — PF patterns vs recurring patterns vs p-patterns",
              "Kiran et al., EDBT 2015, Table 8");
  std::printf("scale=%.2f  (per=1440, minSup=0.1%%, w=1; minPS=0.1%% "
              "Shop-14 / 2%% Twitter, minRec=1)\n\n",
              scale);

  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  PrintDataset("Shop-14", shop.db);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);
  std::printf("\n");

  ModelRow shop_row = CompareModels(shop.db, 0.001);
  ModelRow twitter_row = CompareModels(twitter.db, 0.02);

  rpm::analysis::TablePrinter table(
      {"Model", "Shop-14 I", "Shop-14 II", "Twitter I", "Twitter II"});
  table.AddRow({"PF patterns",
                rpm::FormatWithThousands(static_cast<int64_t>(shop_row.pf_count)),
                std::to_string(shop_row.pf_len),
                rpm::FormatWithThousands(static_cast<int64_t>(twitter_row.pf_count)),
                std::to_string(twitter_row.pf_len)});
  table.AddRow({"Recurring patterns",
                rpm::FormatWithThousands(static_cast<int64_t>(shop_row.rp_count)),
                std::to_string(shop_row.rp_len),
                rpm::FormatWithThousands(static_cast<int64_t>(twitter_row.rp_count)),
                std::to_string(twitter_row.rp_len)});
  std::string shop_pp =
      rpm::FormatWithThousands(static_cast<int64_t>(shop_row.pp_count));
  if (shop_row.pp_truncated) shop_pp = ">" + shop_pp;
  std::string twitter_pp =
      rpm::FormatWithThousands(static_cast<int64_t>(twitter_row.pp_count));
  if (twitter_row.pp_truncated) twitter_pp = ">" + twitter_pp;
  table.AddRow({"p-patterns", shop_pp, std::to_string(shop_row.pp_len),
                twitter_pp, std::to_string(twitter_row.pp_len)});
  table.Print(&std::cout);

  std::printf("\nruntimes: Shop-14 pf=%.2fs rp=%.2fs pp=%.2fs | "
              "Twitter pf=%.2fs rp=%.2fs pp=%.2fs\n",
              shop_row.pf_s, shop_row.rp_s, shop_row.pp_s, twitter_row.pf_s,
              twitter_row.rp_s, twitter_row.pp_s);
  std::printf("\nshape checks (paper: PF << RP << p-patterns):\n");
  std::printf("  Shop-14:  PF %zu <= RP %zu <= PP %zu : %s\n",
              shop_row.pf_count, shop_row.rp_count, shop_row.pp_count,
              shop_row.pf_count <= shop_row.rp_count &&
                      shop_row.rp_count <= shop_row.pp_count
                  ? "holds"
                  : "VIOLATED");
  std::printf("  Twitter:  PF %zu <= RP %zu <= PP %zu : %s\n",
              twitter_row.pf_count, twitter_row.rp_count,
              twitter_row.pp_count,
              twitter_row.pf_count <= twitter_row.rp_count &&
                      twitter_row.rp_count <= twitter_row.pp_count
                  ? "holds"
                  : "VIOLATED");
  return 0;
}
