// Micro-benchmarks (google-benchmark): per-component costs backing the
// end-to-end numbers — measure computation, RP-list scan, tree build,
// full mining, generators, and baseline miners on mid-size inputs.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "rpm/baselines/pf_growth.h"
#include "rpm/baselines/ppattern.h"
#include "rpm/common/random.h"
#include "rpm/common/zipf.h"
#include "rpm/core/brute_force.h"
#include "rpm/core/measures.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/rp_tree.h"
#include "rpm/core/ts_block.h"
#include "rpm/core/ts_merge.h"
#include "rpm/gen/hashtag_generator.h"
#include "rpm/gen/quest_generator.h"

namespace {

using namespace rpm;

TimestampList MakeTimestamps(size_t n, uint64_t seed) {
  Rng rng(seed);
  TimestampList ts(n);
  Timestamp cur = 0;
  for (auto& slot : ts) {
    cur += 1 + static_cast<Timestamp>(rng.NextUint64(5));
    slot = cur;
  }
  return ts;
}

const TransactionDatabase& MidQuestDb() {
  static const TransactionDatabase db = [] {
    gen::QuestParams params;
    params.num_transactions = 20000;
    params.num_items = 400;
    params.num_patterns = 400;
    return gen::GenerateQuest(params);
  }();
  return db;
}

const TransactionDatabase& MidTwitterDb() {
  static const TransactionDatabase db = [] {
    gen::HashtagParams params;
    params.num_minutes = 20000;
    params.num_hashtags = 300;
    params.num_random_events = 8;
    return gen::GenerateHashtagStream(params).db;
  }();
  return db;
}

/// `k` sorted runs of `run_len` timestamps each, interleaved over a
/// shared range — the merge kernel's adversarial shape (every run
/// contends at every step).
std::vector<TimestampList> MakeInterleavedRuns(size_t k, size_t run_len,
                                               uint64_t seed) {
  Rng rng(seed);
  std::vector<TimestampList> lists(k);
  for (TimestampList& list : lists) {
    Timestamp cur = static_cast<Timestamp>(rng.NextUint64(16));
    list.reserve(run_len);
    for (size_t i = 0; i < run_len; ++i) {
      cur += 1 + static_cast<Timestamp>(rng.NextUint64(7));
      list.push_back(cur);
    }
  }
  return lists;
}

/// MergeSortedRuns on k interleaved runs (run length = range(0)) against
/// BM_ConcatSortOracle below — the kernel must win as run length grows and
/// match at run length ~2.
void BM_MergeSortedRuns(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t run_len = static_cast<size_t>(state.range(1));
  std::vector<TimestampList> lists = MakeInterleavedRuns(k, run_len, 11);
  std::vector<TsRun> runs;
  for (const TimestampList& list : lists) AppendSortedRuns(list, &runs);
  MergeScratch scratch;
  MergeCounters counters;
  TimestampList out;
  for (auto _ : state) {
    MergeSortedRuns(runs.data(), runs.size(), &out, &scratch, &counters);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * k * run_len);
}
BENCHMARK(BM_MergeSortedRuns)
    ->Args({64, 2})
    ->Args({64, 16})
    ->Args({64, 128})
    ->Args({8, 1024})
    ->Args({512, 16});

/// The computation MergeSortedRuns replaced, on identical inputs.
void BM_ConcatSortOracle(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t run_len = static_cast<size_t>(state.range(1));
  std::vector<TimestampList> lists = MakeInterleavedRuns(k, run_len, 11);
  TimestampList out;
  for (auto _ : state) {
    out.clear();
    for (const TimestampList& list : lists) {
      out.insert(out.end(), list.begin(), list.end());
    }
    std::sort(out.begin(), out.end());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * k * run_len);
}
BENCHMARK(BM_ConcatSortOracle)
    ->Args({64, 2})
    ->Args({64, 16})
    ->Args({64, 128})
    ->Args({8, 1024})
    ->Args({512, 16});

/// Fused gate+intervals vs the two-pass formulation it replaced.
void BM_FusedGateAndIntervals(benchmark::State& state) {
  TimestampList ts = MakeTimestamps(static_cast<size_t>(state.range(0)), 2);
  RpParams params;
  params.period = 4;
  params.min_ps = 3;
  params.min_rec = 2;
  std::vector<PeriodicInterval> intervals;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeGateAndIntervals(ts, params, &intervals).passes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FusedGateAndIntervals)->Range(1 << 5, 1 << 18);

/// The masked (columnar, SIMD-dispatched) gate on the same inputs as
/// BM_FusedGateAndIntervals — the per-scan speedup of the ts_block
/// kernel path. Run with RPM_FORCE_SCALAR=1 to measure the masked scan
/// without vector kernels.
void BM_MaskedGateAndIntervals(benchmark::State& state) {
  TimestampList ts = MakeTimestamps(static_cast<size_t>(state.range(0)), 2);
  RpParams params;
  params.period = 4;
  params.min_ps = 3;
  params.min_rec = 2;
  std::vector<PeriodicInterval> intervals;
  TsBlockScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeGateAndIntervals(ts, params, &intervals, &scratch, nullptr)
            .passes);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaskedGateAndIntervals)->Range(1 << 5, 1 << 18);

/// The break-mask kernel alone (no run bookkeeping): the pure columnar
/// compare throughput at the active dispatch level.
void BM_ComputeBreakMasks(benchmark::State& state) {
  TimestampList ts = MakeTimestamps(static_cast<size_t>(state.range(0)), 2);
  std::vector<uint64_t> masks(TsBlockWords(ts.size()));
  for (auto _ : state) {
    ComputeBreakMasks(ts.data(), ts.size(), 4, masks.data());
    benchmark::DoNotOptimize(masks.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeBreakMasks)->Range(1 << 10, 1 << 18);

void BM_ComputeErec(benchmark::State& state) {
  TimestampList ts = MakeTimestamps(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeErec(ts, 4, 3));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeErec)->Range(1 << 10, 1 << 18);

void BM_FindInterestingIntervals(benchmark::State& state) {
  TimestampList ts = MakeTimestamps(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FindInterestingIntervals(ts, 4, 3));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FindInterestingIntervals)->Range(1 << 10, 1 << 18);

void BM_IntervalDecomposition(benchmark::State& state) {
  TimestampList ts = MakeTimestamps(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposePeriodicIntervals(ts, 4));
  }
}
BENCHMARK(BM_IntervalDecomposition)->Range(1 << 10, 1 << 16);

void BM_RpListScan(benchmark::State& state) {
  const TransactionDatabase& db = MidQuestDb();
  RpParams params;
  params.period = 100;
  params.min_ps = 20;
  params.min_rec = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRpList(db, params));
  }
  state.SetItemsProcessed(state.iterations() * db.TotalItemOccurrences());
}
BENCHMARK(BM_RpListScan);

void BM_TreeBuild(benchmark::State& state) {
  const TransactionDatabase& db = MidQuestDb();
  RpParams params;
  params.period = 100;
  params.min_ps = 20;
  params.min_rec = 2;
  RpList list = BuildRpList(db, params);
  std::vector<ItemId> order;
  for (const RpListEntry& e : list.candidates()) order.push_back(e.item);
  for (auto _ : state) {
    TsPrefixTree tree{std::vector<ItemId>(order)};
    std::vector<uint32_t> ranks;
    for (const Transaction& tr : db.transactions()) {
      ranks.clear();
      for (ItemId item : tr.items) {
        uint32_t rank = list.RankOf(item);
        if (rank != kNotCandidate) ranks.push_back(rank);
      }
      std::sort(ranks.begin(), ranks.end());
      tree.InsertTransaction(ranks, tr.ts);
    }
    benchmark::DoNotOptimize(tree.NodeCount());
  }
}
BENCHMARK(BM_TreeBuild);

void BM_RpGrowthEndToEnd_Quest(benchmark::State& state) {
  const TransactionDatabase& db = MidQuestDb();
  RpParams params;
  params.period = 100;
  params.min_ps = 20;
  params.min_rec = static_cast<uint64_t>(state.range(0));
  size_t patterns = 0;
  for (auto _ : state) {
    auto result = MineRecurringPatterns(db, params);
    patterns = result.patterns.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
}
BENCHMARK(BM_RpGrowthEndToEnd_Quest)->Arg(1)->Arg(2)->Arg(3);

void BM_RpGrowthEndToEnd_Twitter(benchmark::State& state) {
  const TransactionDatabase& db = MidTwitterDb();
  RpParams params;
  params.period = 360;
  params.min_ps = static_cast<uint64_t>(state.range(0));
  params.min_rec = 1;
  size_t patterns = 0;
  for (auto _ : state) {
    auto result = MineRecurringPatterns(db, params);
    patterns = result.patterns.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["patterns"] = static_cast<double>(patterns);
}
BENCHMARK(BM_RpGrowthEndToEnd_Twitter)->Arg(400)->Arg(800)->Arg(1600);

void BM_VerticalMiner(benchmark::State& state) {
  const TransactionDatabase& db = MidTwitterDb();
  RpParams params;
  params.period = 360;
  params.min_ps = 800;
  params.min_rec = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineVertical(db, params));
  }
}
BENCHMARK(BM_VerticalMiner);

void BM_PfGrowth(benchmark::State& state) {
  const TransactionDatabase& db = MidTwitterDb();
  baselines::PfParams params;
  params.min_sup = 200;
  params.max_per = 360;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinePeriodicFrequentPatterns(db, params));
  }
}
BENCHMARK(BM_PfGrowth);

void BM_PPatternMiner(benchmark::State& state) {
  const TransactionDatabase& db = MidTwitterDb();
  baselines::PPatternParams params;
  params.period = 360;
  params.min_sup = 800;
  baselines::PPatternOptions options;
  options.max_stored_patterns = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinePPatterns(db, params, options));
  }
}
BENCHMARK(BM_PPatternMiner);

void BM_QuestGeneration(benchmark::State& state) {
  gen::QuestParams params;
  params.num_transactions = static_cast<size_t>(state.range(0));
  params.num_items = 400;
  params.num_patterns = 400;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::GenerateQuest(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuestGeneration)->Arg(5000)->Arg(20000);

void BM_HashtagGeneration(benchmark::State& state) {
  gen::HashtagParams params;
  params.num_minutes = static_cast<size_t>(state.range(0));
  params.num_hashtags = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::GenerateHashtagStream(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashtagGeneration)->Arg(5000)->Arg(20000);

void BM_ZipfSampling(benchmark::State& state) {
  ZipfSampler sampler(1000, 1.05);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSampling);

void BM_TimestampsOfScan(benchmark::State& state) {
  const TransactionDatabase& db = MidTwitterDb();
  Itemset pattern = {0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.TimestampsOf(pattern));
  }
}
BENCHMARK(BM_TimestampsOfScan);

}  // namespace
