// Figure 7: recurring patterns discovered in the Twitter data as minPS
// sweeps 2%..10%, one series per per in {360, 720, 1440}, one panel per
// minRec in {1, 2, 3}.
//
// Expected shape: each series falls with minPS; larger per lies above
// smaller per at minRec=1.

#include <cstdio>

#include "bench_util.h"
#include "rpm/core/rp_growth.h"

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Figure 7 — Twitter: #recurring patterns vs minPS",
              "Kiran et al., EDBT 2015, Figure 7 (a)-(c)");
  std::printf("scale=%.2f\n\n", scale);

  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);

  for (uint64_t min_rec : PaperMinRecs()) {
    std::printf("\npanel (%c): minRec=%llu\n",
                static_cast<char>('a' + min_rec - 1),
                static_cast<unsigned long long>(min_rec));
    std::printf("%-8s", "minPS");
    for (rpm::Timestamp per : PaperPeriods()) {
      std::printf("  per=%-6lld", static_cast<long long>(per));
    }
    std::printf("\n");
    for (int pct = 2; pct <= 10; ++pct) {
      std::printf("%-7d%%", pct);
      for (rpm::Timestamp per : PaperPeriods()) {
        rpm::Result<rpm::RpParams> params = rpm::MakeParamsWithMinPsFraction(
            per, pct / 100.0, min_rec, twitter.db.size());
        rpm::RpGrowthResult result =
            rpm::MineRecurringPatterns(twitter.db, *params);
        std::printf("  %-10zu", result.patterns.size());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
