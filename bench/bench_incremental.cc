// Incremental sliding-window maintenance cost vs batch re-mining: drives
// a deterministic grouped stream through WindowedMiner at two delta
// granularities, measures steady-state ApplyDelta latency, and
// periodically re-mines the window snapshot from scratch with the batch
// RP-growth miner — both to time the alternative the incremental path
// replaces and to equality-gate the maintained pattern set against it.
// Emits BENCH_incremental.json (bench_util.h JsonRecords).
//
// Stream shape: G item groups firing in round-robin bursts of L
// consecutive timestamps, so each group's items recur in B interesting
// intervals per window (per = 1, window = G*L*B transactions). A
// deterministic per-item dropout punches holes that split intervals and
// drift supports as the window slides — so deltas carry added / removed
// / changed patterns, not just interval shifts — and a rotating
// epoch-scoped item stops occurring for good at each epoch boundary,
// exercising lazy node retirement. Every quantity is a pure function of
// (scale), so counters are comparable across runs and machines. The
// window shape is scale-invariant; scale only lengthens the measured
// steady-state stream.
//
// The bench aborts (exit 1) if any sampled batch re-mine disagrees with
// the maintained pattern set, or if the window-content counters
// (appended / retired / expired timestamps and transactions) differ
// across delta granularities — those are schedule-invariant by
// construction, and drift means the tombstone or expiry logic leaks.
// The headline per-delta vs re-mine speedup is reported (and expected
// to be >= 5x at window/delta = 100) but not gated: tiny smoke scales
// put per-delta latency at microseconds, where timer noise would make a
// hard gate flaky.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/windowed_miner.h"
#include "rpm/timeseries/transaction_database.h"
#include "rpm/timeseries/types.h"

namespace {

constexpr size_t kGroups = 24;
constexpr size_t kItemsPerGroup = 4;
constexpr size_t kBurstLen = 8;        // L: consecutive ts per group burst.
constexpr size_t kBurstsInWindow = 5;  // B: intervals per group per window.
constexpr size_t kWindowTxns = kGroups * kBurstLen * kBurstsInWindow;
constexpr size_t kEpochLen = kWindowTxns;  // Epoch items rotate per window.
constexpr size_t kEpochSlots = 4;

/// Transaction at stream position t: group (t / L) mod G fires with its
/// member items, each dropped when its phase ((t + 31*i) mod 23) hits
/// zero (~4% holes, splitting interesting intervals). During epoch
/// (t / kEpochLen), transactions of group (epoch mod G) additionally
/// carry a rotating epoch item that never occurs again after the epoch
/// ends — once the window slides past it, its tree nodes retire.
rpm::Transaction StreamTransaction(size_t t) {
  rpm::Transaction tr;
  tr.ts = static_cast<rpm::Timestamp>(t);
  const size_t group = (t / kBurstLen) % kGroups;
  for (size_t i = 0; i < kItemsPerGroup; ++i) {
    if ((t + 31 * i) % 23 == 0) continue;
    tr.items.push_back(
        static_cast<rpm::ItemId>(group * kItemsPerGroup + i));
  }
  const size_t epoch = t / kEpochLen;
  if (group == epoch % kGroups) {
    tr.items.push_back(static_cast<rpm::ItemId>(kGroups * kItemsPerGroup +
                                                epoch % kEpochSlots));
  }
  return tr;
}

struct SteadyState {
  uint64_t deltas = 0;
  double apply_seconds_total = 0.0;
  double apply_seconds_max = 0.0;
  double maintain_seconds_total = 0.0;
  double mine_seconds_total = 0.0;
  uint64_t patterns_added = 0;
  uint64_t patterns_removed = 0;
  uint64_t patterns_changed = 0;
  uint64_t remine_samples = 0;
  double remine_seconds_total = 0.0;
  uint64_t remine_mismatches = 0;
};

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Replays the stream: one warm batch filling the window, then
/// steady-state deltas of `delta_txns`, sampling a full batch re-mine of
/// the window snapshot `samples` times for cost + equality.
SteadyState Replay(rpm::WindowedMiner* miner, const rpm::RpParams& params,
                   size_t steady_txns, size_t window_txns, size_t delta_txns,
                   uint64_t samples) {
  SteadyState out;
  std::vector<rpm::Transaction> batch;
  batch.reserve(window_txns);
  for (size_t t = 0; t < window_txns; ++t) {
    batch.push_back(StreamTransaction(t));
  }
  rpm::PatternDelta warm = miner->ApplyDelta(batch);
  if (!warm.applied) {
    std::fprintf(stderr, "warm delta refused: %s\n",
                 warm.status.ToString().c_str());
    std::exit(1);
  }

  const uint64_t steady_deltas =
      static_cast<uint64_t>(steady_txns / delta_txns);
  const uint64_t sample_every =
      std::max<uint64_t>(1, steady_deltas / std::max<uint64_t>(1, samples));
  size_t next = window_txns;
  for (uint64_t d = 0; d < steady_deltas; ++d) {
    batch.clear();
    for (size_t k = 0; k < delta_txns; ++k) {
      batch.push_back(StreamTransaction(next++));
    }
    const auto begin = std::chrono::steady_clock::now();
    rpm::PatternDelta pd = miner->ApplyDelta(batch);
    const double apply_s = Seconds(begin, std::chrono::steady_clock::now());
    if (!pd.applied) {
      std::fprintf(stderr, "delta %llu refused: %s\n",
                   static_cast<unsigned long long>(d),
                   pd.status.ToString().c_str());
      std::exit(1);
    }
    ++out.deltas;
    out.apply_seconds_total += apply_s;
    out.apply_seconds_max = std::max(out.apply_seconds_max, apply_s);
    out.maintain_seconds_total += pd.maintain_seconds;
    out.mine_seconds_total += pd.mine_seconds;
    out.patterns_added += pd.added.size();
    out.patterns_removed += pd.removed.size();
    out.patterns_changed += pd.changed.size();

    if ((d + 1) % sample_every != 0) continue;
    rpm::TransactionDatabase snapshot = miner->WindowSnapshot();
    const auto mine_begin = std::chrono::steady_clock::now();
    rpm::RpGrowthResult batch_result =
        rpm::MineRecurringPatterns(snapshot, params);
    out.remine_seconds_total +=
        Seconds(mine_begin, std::chrono::steady_clock::now());
    ++out.remine_samples;
    std::vector<rpm::RecurringPattern> want =
        std::move(batch_result.patterns);
    rpm::SortPatternsCanonically(&want);
    if (want != miner->patterns()) {
      ++out.remine_mismatches;
      std::fprintf(stderr,
                   "MISMATCH at delta %llu: windowed %zu patterns vs "
                   "batch %zu\n",
                   static_cast<unsigned long long>(d),
                   miner->patterns().size(), want.size());
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader(
      "Incremental windowed mining — per-delta maintenance vs batch re-mine",
      "this repo's windowed backend (not in the paper); synthetic stream");
  std::printf("scale=%.2f (set RPM_BENCH_SCALE to change)\n\n", scale);

  // The window shape is fixed; scale lengthens the steady-state stream
  // (more measured deltas, more epoch turnovers), with a floor that
  // keeps >= 1.5 window-widths of steady state at any scale.
  const size_t window_txns = kWindowTxns;
  const size_t total_txns =
      std::max<size_t>(window_txns + 1440,
                       static_cast<size_t>(20000 * scale));
  rpm::RpParams params;
  params.period = 1;  // Burst timestamps are consecutive.
  params.min_ps = 4;
  params.min_rec = 2;
  std::printf("stream: %zu transactions, %zu groups x %zu items in bursts "
              "of %zu, window %zu transactions\n\n",
              total_txns, kGroups, kItemsPerGroup, kBurstLen, window_txns);

  // Two granularities of the same stream: one burst per delta
  // (window/delta = 120, the acceptance regime) and a coarser
  // window/delta = 20. The steady-state length is clamped to a common
  // multiple of both so each configuration consumes the exact same
  // stream prefix — the precondition for the counter cross-check below.
  const std::vector<size_t> delta_sizes = {kBurstLen, window_txns / 20};
  const size_t delta_lcm = delta_sizes.back();  // 48 is a multiple of 8.
  const size_t steady_txns =
      ((total_txns - window_txns) / delta_lcm) * delta_lcm;

  JsonRecords json("incremental", scale);
  int failures = 0;
  std::printf("%-10s %-8s %9s %12s %12s %12s %9s %10s %9s %8s %7s\n",
              "delta_txns", "deltas", "patterns", "per_delta_us",
              "max_delta_us", "remine_us", "speedup", "appended", "retired",
              "nodes_rt", "compact");

  std::vector<rpm::WindowedCounters> per_config_counters;
  for (size_t delta_txns : delta_sizes) {
    rpm::WindowedMiner miner(params,
                             static_cast<rpm::Timestamp>(window_txns - 1));
    SteadyState s = Replay(&miner, params, steady_txns, window_txns,
                           delta_txns, /*samples=*/8);
    failures += static_cast<int>(s.remine_mismatches);
    const rpm::WindowedCounters& c = miner.counters();
    per_config_counters.push_back(c);

    const double per_delta_s =
        s.deltas > 0 ? s.apply_seconds_total / static_cast<double>(s.deltas)
                     : 0.0;
    const double remine_s =
        s.remine_samples > 0
            ? s.remine_seconds_total / static_cast<double>(s.remine_samples)
            : 0.0;
    const double speedup = per_delta_s > 0.0 ? remine_s / per_delta_s : 0.0;
    std::printf("%-10zu %-8llu %9zu %12.1f %12.1f %12.1f %8.1fx %10llu "
                "%9llu %8llu %7llu\n",
                delta_txns, static_cast<unsigned long long>(s.deltas),
                miner.patterns().size(), per_delta_s * 1e6,
                s.apply_seconds_max * 1e6, remine_s * 1e6, speedup,
                static_cast<unsigned long long>(c.timestamps_appended),
                static_cast<unsigned long long>(c.timestamps_retired),
                static_cast<unsigned long long>(c.nodes_retired),
                static_cast<unsigned long long>(c.compactions));
    std::fflush(stdout);

    json.BeginRecord();
    json.Add("window_txns", window_txns);
    json.Add("delta_txns", delta_txns);
    json.Add("window_over_delta",
             static_cast<uint64_t>(window_txns / delta_txns));
    json.Add("steady_deltas", s.deltas);
    json.Add("patterns_final", miner.patterns().size());
    json.Add("per_delta_seconds", per_delta_s);
    json.Add("per_delta_seconds_max", s.apply_seconds_max);
    json.Add("maintain_seconds_total", s.maintain_seconds_total);
    json.Add("submine_seconds_total", s.mine_seconds_total);
    json.Add("batch_remine_seconds", remine_s);
    json.Add("remine_samples", s.remine_samples);
    json.Add("speedup_vs_remine", speedup);
    json.Add("patterns_added_total", s.patterns_added);
    json.Add("patterns_removed_total", s.patterns_removed);
    json.Add("patterns_changed_total", s.patterns_changed);
    json.Add("timestamps_appended", c.timestamps_appended);
    json.Add("timestamps_retired", c.timestamps_retired);
    json.Add("transactions_expired", c.transactions_expired);
    json.Add("nodes_retired", c.nodes_retired);
    json.Add("runs_retired", c.runs_retired);
    json.Add("compactions", c.compactions);
    json.Add("affected_items_total", c.affected_items);
    json.Add("subproblem_transactions_total", c.subproblem_transactions);
  }

  // Window-content counters are schedule-invariant: the same stream seen
  // through any delta granularity appends, retires, and expires exactly
  // the same events. (nodes_retired / compactions legitimately depend on
  // the schedule — retirement is lazy and compaction threshold-driven.)
  const rpm::WindowedCounters& a = per_config_counters.front();
  const rpm::WindowedCounters& b = per_config_counters.back();
  if (a.timestamps_appended != b.timestamps_appended ||
      a.timestamps_retired != b.timestamps_retired ||
      a.transactions_expired != b.transactions_expired) {
    ++failures;
    std::fprintf(stderr,
                 "SCHEDULE-INVARIANCE VIOLATION: appended %llu/%llu "
                 "retired %llu/%llu expired %llu/%llu\n",
                 static_cast<unsigned long long>(a.timestamps_appended),
                 static_cast<unsigned long long>(b.timestamps_appended),
                 static_cast<unsigned long long>(a.timestamps_retired),
                 static_cast<unsigned long long>(b.timestamps_retired),
                 static_cast<unsigned long long>(a.transactions_expired),
                 static_cast<unsigned long long>(b.transactions_expired));
  }

  json.WriteFile(JsonReportPath("BENCH_incremental.json"));
  if (failures != 0) {
    std::fprintf(stderr, "%d correctness failure(s)\n", failures);
    return 1;
  }
  return 0;
}
