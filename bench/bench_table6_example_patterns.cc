// Table 6: qualitative recurring patterns discovered in the Twitter data at
// per=360, minPS=2%, minRec=1, with their periodic durations rendered as
// calendar dates — including the planted headline events ({yyc,
// uttarakhand}, {nuclear, hibaku} with two durations, {pakvotes,
// nayapakistan}, {oklahoma, tornado, prayforoklahoma}).
//
// Since this reproduction plants the events, the bench also verifies each
// one is recovered, with an interesting interval overlapping the planted
// window — something the paper could only argue anecdotally.

#include <cstdio>

#include "bench_util.h"
#include "rpm/analysis/interval_metrics.h"
#include "rpm/analysis/pattern_report.h"
#include "rpm/common/civil_time.h"
#include "rpm/analysis/pattern_set.h"
#include "rpm/core/rp_growth.h"

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Table 6 — interesting recurring patterns with periodic "
              "durations",
              "Kiran et al., EDBT 2015, Table 6");
  std::printf("scale=%.2f\n\n", scale);

  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);

  rpm::Result<rpm::RpParams> params = rpm::MakeParamsWithMinPsFraction(
      360, 0.02, 1, twitter.db.size());
  rpm::RpGrowthResult result =
      rpm::MineRecurringPatterns(twitter.db, *params);
  std::printf("mined %zu recurring patterns (%s) in %.2f s\n\n",
              result.patterns.size(), params->ToString().c_str(),
              result.stats.total_seconds);

  std::printf("planted events (ground truth) and their recovery:\n");
  size_t shown = 0;
  for (const rpm::gen::ResolvedBurstEvent& event : twitter.events) {
    if (++shown > 4) break;  // The paper's four Table 6 rows.
    std::printf("%zu. %s  tags=%s\n", shown, event.label.c_str(),
                rpm::analysis::FormatItemset(event.tags,
                                             twitter.db.dictionary())
                    .c_str());
    // The pattern as mined, dates rendered like the paper.
    bool found = false;
    for (const rpm::RecurringPattern& p : result.patterns) {
      if (p.items != event.tags) continue;
      found = true;
      std::printf("   mined: sup=%llu rec=%llu\n",
                  static_cast<unsigned long long>(p.support),
                  static_cast<unsigned long long>(p.recurrence()));
      for (const rpm::PeriodicInterval& pi : p.intervals) {
        std::printf("   periodic duration [%s .. %s]  ps=%llu\n",
                    rpm::FormatMinuteOffset(pi.begin,
                                            rpm::gen::TwitterEpochMinutes())
                        .c_str(),
                    rpm::FormatMinuteOffset(pi.end,
                                            rpm::gen::TwitterEpochMinutes())
                        .c_str(),
                    static_cast<unsigned long long>(pi.periodic_support));
      }
    }
    bool overlaps = false;
    for (const auto& [begin, end] : event.windows) {
      overlaps = overlaps || rpm::analysis::RecoversPlantedEvent(
                                 result.patterns, event.tags, begin, end);
    }
    // Quantified recovery (beyond the paper's anecdotal reading): how well
    // do the mined intervals align with the planted windows?
    for (const rpm::RecurringPattern& p : result.patterns) {
      if (p.items != event.tags) continue;
      std::printf("   window recall=%.2f precision=%.2f jaccard=%.2f\n",
                  rpm::analysis::WindowRecall(p.intervals, event.windows),
                  rpm::analysis::IntervalPrecision(p.intervals,
                                                   event.windows),
                  rpm::analysis::SpanJaccard(p.intervals, event.windows));
    }
    std::printf("   -> %s\n\n",
                found && overlaps
                    ? "RECOVERED (interval overlaps planted window)"
                    : found ? "found but window mismatch" : "NOT FOUND");
  }

  // Burst report: multi-item patterns whose periodic durations are short
  // relative to the stream (background cliques span the whole series and
  // are excluded) — this is where the planted, partly-rare events surface.
  std::printf("top bursty multi-tag patterns (interesting duration < 25%% "
              "of the stream):\n");
  const rpm::Timestamp span =
      twitter.db.end_ts() - twitter.db.start_ts() + 1;
  std::vector<rpm::RecurringPattern> bursty;
  for (const rpm::RecurringPattern& p : result.patterns) {
    if (p.items.size() < 2) continue;
    rpm::Timestamp total = 0;
    for (const rpm::PeriodicInterval& pi : p.intervals) {
      total += pi.Duration();
    }
    if (total * 4 < span) bursty.push_back(p);
  }
  rpm::analysis::ReportOptions options;
  options.epoch_minutes = rpm::gen::TwitterEpochMinutes();
  options.top_k = 8;
  for (const std::string& line : rpm::analysis::FormatPatternReport(
           bursty, twitter.db.dictionary(), options)) {
    std::printf("  %s\n", line.c_str());
  }
  return 0;
}
