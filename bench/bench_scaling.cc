// Scalability: RP-growth runtime versus database size and item-universe
// size (not in the paper's tables, but standard for this literature and a
// direct check that the implementation scales linearly enough to support
// the full-size Tables 5/7).

#include <cstdio>

#include "bench_util.h"
#include "rpm/core/rp_growth.h"
#include "rpm/gen/hashtag_generator.h"

int main() {
  using namespace rpmbench;
  PrintHeader("Scaling — runtime vs |TDB| and |I|",
              "supplementary scalability study");

  // Absolute thresholds across the sweep: with a |TDB|-relative minPS the
  // small configurations would dominate the runtime (low absolute bars on
  // dense co-occurrence explode the output), inverting the curve.
  rpm::RpParams mine;
  mine.period = 360;
  mine.min_ps = 300;
  mine.min_rec = 1;
  rpm::RpGrowthOptions count_only;
  count_only.store_patterns = false;  // Runtime, not materialisation.
  // Dense top-of-Zipf co-occurrence makes unrestricted output exponential
  // on short streams (a clique of k always-on tags has 2^k qualifying
  // subsets); the length cap keeps the sweep about data volume.
  count_only.max_pattern_length = 3;

  // The phase breakdown separates the data-volume-linear costs (RP-list
  // scan, tree construction) from mining, whose cost tracks the output.
  std::printf("\nruntime vs transactions (Twitter-like stream, 400 tags, "
              "per=360, minPS=300 abs, len<=3, minRec=1):\n");
  std::printf("%-14s %-14s %-12s %-8s %-8s %-8s %-8s\n", "minutes",
              "transactions", "patterns", "total_s", "list_s", "tree_s",
              "mine_s");
  for (size_t days : {4, 8, 16, 32, 64, 123}) {
    rpm::gen::HashtagParams params;
    params.num_minutes = days * 1440;
    params.num_hashtags = 400;
    params.num_random_events = 12;
    params.seed = 99;
    rpm::gen::GeneratedHashtagStream stream =
        rpm::gen::GenerateHashtagStream(params);
    auto result = rpm::MineRecurringPatterns(stream.db, mine, count_only);
    std::printf("%-14zu %-14zu %-12zu %-8.3f %-8.3f %-8.3f %-8.3f\n",
                params.num_minutes, stream.db.size(),
                result.stats.patterns_emitted, result.stats.total_seconds,
                result.stats.list_seconds, result.stats.tree_seconds,
                result.stats.mine_seconds);
    std::fflush(stdout);
  }

  std::printf("\nruntime vs item universe (16 days, per=360, minPS=300 "
              "abs, len<=3, minRec=1):\n");
  std::printf("%-10s %-12s %-10s\n", "hashtags", "patterns", "seconds");
  for (size_t tags : {100, 200, 400, 800, 1600}) {
    rpm::gen::HashtagParams params;
    params.num_minutes = 16 * 1440;
    params.num_hashtags = tags;
    params.num_random_events = 12;
    params.seed = 99;
    rpm::gen::GeneratedHashtagStream stream =
        rpm::gen::GenerateHashtagStream(params);
    auto result = rpm::MineRecurringPatterns(stream.db, mine, count_only);
    std::printf("%-10zu %-12zu %-10.3f\n", tags,
                result.stats.patterns_emitted, result.stats.total_seconds);
    std::fflush(stdout);
  }
  return 0;
}
