// Runs the full Table 4 parameter grid (per x minPS x minRec) of RP-growth
// over the three evaluation datasets and renders the paper's Table 5/7
// layout: one row per (dataset, minPS), one column per (minRec, per).

#ifndef RPM_BENCH_GRID_RUNNER_H_
#define RPM_BENCH_GRID_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpm/analysis/table_printer.h"
#include "rpm/common/string_util.h"
#include "rpm/core/rp_growth.h"

namespace rpmbench {

struct GridCell {
  double min_ps_frac = 0.0;
  rpm::Timestamp per = 0;
  uint64_t min_rec = 0;
  size_t pattern_count = 0;
  double seconds = 0.0;
};

struct DatasetGrid {
  std::string dataset;
  std::vector<GridCell> cells;
};

inline DatasetGrid RunGrid(const std::string& name,
                           const rpm::TransactionDatabase& db,
                           const std::vector<double>& min_ps_fracs) {
  DatasetGrid grid;
  grid.dataset = name;
  for (double frac : min_ps_fracs) {
    for (uint64_t min_rec : PaperMinRecs()) {
      for (rpm::Timestamp per : PaperPeriods()) {
        rpm::Result<rpm::RpParams> params =
            rpm::MakeParamsWithMinPsFraction(per, frac, min_rec, db.size());
        rpm::RpGrowthResult result =
            rpm::MineRecurringPatterns(db, *params);
        grid.cells.push_back({frac, per, min_rec, result.patterns.size(),
                              result.stats.total_seconds});
        std::fflush(stdout);
      }
    }
  }
  return grid;
}

/// Renders the grid with `value(cell)` in each body cell.
inline void PrintGrid(const std::vector<DatasetGrid>& grids,
                      const std::function<std::string(const GridCell&)>& value,
                      std::ostream* out) {
  std::vector<std::string> header = {"Dataset", "minPS"};
  for (uint64_t min_rec : PaperMinRecs()) {
    for (rpm::Timestamp per : PaperPeriods()) {
      header.push_back("rec" + std::to_string(min_rec) + "/per" +
                       std::to_string(per));
    }
  }
  rpm::analysis::TablePrinter table(std::move(header));
  for (const DatasetGrid& grid : grids) {
    bool first_row = true;
    double current_frac = -1.0;
    std::vector<std::string> row;
    for (const GridCell& cell : grid.cells) {
      if (cell.min_ps_frac != current_frac) {
        if (!row.empty()) table.AddRow(row);
        row.clear();
        current_frac = cell.min_ps_frac;
        row.push_back(first_row ? grid.dataset : "");
        row.push_back(FracLabel(cell.min_ps_frac));
        first_row = false;
      }
      row.push_back(value(cell));
    }
    if (!row.empty()) table.AddRow(row);
    table.AddRule();
  }
  table.Print(out);
}

}  // namespace rpmbench

#endif  // RPM_BENCH_GRID_RUNNER_H_
