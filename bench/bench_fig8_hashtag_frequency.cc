// Figure 8: daily frequencies of the hashtags in the patterns
// {yyc, uttarakhand} and {nuclear, hibaku} across the stream — the paper's
// evidence that (a) #uttarakhand is rare yet discovered, and (b)
// {nuclear, hibaku} genuinely has two separate periodic durations.
//
// Prints one CSV-ish series per tag (day index, count) plus an ASCII
// sparkline, and summarises the rare-vs-frequent support contrast.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "rpm/analysis/frequency_series.h"
#include "rpm/common/civil_time.h"
#include "rpm/timeseries/database_stats.h"

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Figure 8 — daily hashtag frequencies",
              "Kiran et al., EDBT 2015, Figure 8 (a)-(b)");
  std::printf("scale=%.2f\n\n", scale);

  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);
  const rpm::ItemDictionary& dict = twitter.db.dictionary();

  const struct {
    const char* panel;
    std::vector<const char*> tags;
  } panels[] = {
      {"(a) {yyc, uttarakhand}", {"yyc", "uttarakhand"}},
      {"(b) {nuclear, hibaku}", {"nuclear", "hibaku"}},
  };

  for (const auto& panel : panels) {
    std::printf("\npanel %s\n", panel.panel);
    for (const char* name : panel.tags) {
      rpm::Result<rpm::ItemId> tag = dict.Lookup(name);
      if (!tag.ok()) {
        std::printf("  %s: missing\n", name);
        continue;
      }
      std::vector<size_t> daily =
          rpm::analysis::BucketedFrequency(twitter.db, *tag, 1440);
      size_t total = 0, peak = 0, peak_day = 0;
      for (size_t d = 0; d < daily.size(); ++d) {
        total += daily[d];
        if (daily[d] > peak) {
          peak = daily[d];
          peak_day = d;
        }
      }
      std::printf("  %-16s total=%-7zu peak=%zu on %s\n", name, total, peak,
                  rpm::FormatMinuteOffset(
                      static_cast<int64_t>(peak_day) * 1440,
                      rpm::gen::TwitterEpochMinutes())
                      .c_str());
      std::printf("    |%s|\n",
                  rpm::analysis::RenderAsciiSeries(daily, 80).c_str());
      std::printf("    series:");
      for (size_t d = 0; d < daily.size(); ++d) {
        if (daily[d] > 0) std::printf(" %zu:%zu", d, daily[d]);
      }
      std::printf("\n");
    }
  }

  // The Figure 8(a) contrast: as a *background* term (outside its burst
  // window) uttarakhand is rare while yyc is an everyday tag.
  const rpm::ItemId yyc = *dict.Lookup("yyc");
  const rpm::ItemId uttarakhand = *dict.Lookup("uttarakhand");
  const auto& flood_windows = twitter.events[0].windows;
  auto outside_burst_support = [&](rpm::ItemId tag) {
    size_t count = 0;
    for (const rpm::Transaction& tr : twitter.db.transactions()) {
      bool inside = false;
      for (const auto& [begin, end] : flood_windows) {
        inside = inside || (tr.ts >= begin && tr.ts < end);
      }
      if (!inside && std::binary_search(tr.items.begin(), tr.items.end(),
                                        tag)) {
        ++count;
      }
    }
    return count;
  };
  const size_t yyc_bg = outside_burst_support(yyc);
  const size_t utt_bg = outside_burst_support(uttarakhand);
  std::printf("\nbackground support (outside the flood burst): yyc=%zu, "
              "uttarakhand=%zu (paper shape: uttarakhand << yyc)\n",
              yyc_bg, utt_bg);
  return 0;
}
