// Supplementary baseline study: segment-wise partial periodic patterns
// (Han et al., the paper's refs [5,6]) on the paper's datasets.
//
// The paper argues (Sec. 2) that position-based models cannot be compared
// head-to-head because they ignore real timestamps; this bench makes that
// concrete: it mines the position-based model at several period lengths
// and reports how the planted Table 6 events — trivially found by
// RP-growth — fare under it (they straddle segment boundaries and shift
// positions whenever a minute has no transaction, so they rarely emerge
// as crisp segment patterns).

#include <cstdio>

#include "bench_util.h"
#include "rpm/baselines/partial_periodic.h"
#include "rpm/core/rp_growth.h"

int main() {
  using namespace rpmbench;
  const double scale = ScaleFromEnv();
  PrintHeader("Baseline 3 — segment-wise partial periodic patterns",
              "supplementary; contextualises the paper's Sec. 2 critique");
  std::printf("scale=%.2f\n\n", scale);

  rpm::gen::GeneratedClickstream shop = rpm::gen::MakeShop14(scale);
  PrintDataset("Shop-14", shop.db);
  rpm::gen::GeneratedHashtagStream twitter = rpm::gen::MakeTwitter(scale);
  PrintDataset("Twitter", twitter.db);

  // Twitter gets a stricter bar (25% of segments vs 10%): its dense
  // extended-item space otherwise explodes into minutes of enumeration —
  // itself a data point on the model, but not worth the wall-clock here.
  const struct {
    const char* name;
    const rpm::TransactionDatabase* db;
    size_t min_sup_divisor;
  } datasets[] = {{"Shop-14", &shop.db, 10}, {"Twitter", &twitter.db, 4}};

  for (const auto& ds : datasets) {
    std::printf("\n%s (minSup = %zu%% of segments):\n", ds.name,
                100 / ds.min_sup_divisor);
    std::printf("%-10s %-12s %-12s %-10s %-10s\n", "p", "segments",
                "patterns", "max_elems", "seconds");
    for (size_t p : {4, 8, 16, 32}) {
      rpm::baselines::PartialPeriodicParams params;
      params.period_length = p;
      params.min_sup = std::max<uint64_t>(
          1,
          static_cast<uint64_t>(ds.db->size() / p / ds.min_sup_divisor));
      rpm::baselines::PartialPeriodicOptions options;
      options.max_total_patterns = 500000;
      auto result =
          rpm::baselines::MinePartialPeriodicPatterns(*ds.db, params, options);
      size_t max_elems = 0;
      for (const auto& pat : result.patterns) {
        max_elems = std::max(max_elems, pat.elements.size());
      }
      std::printf("%-10zu %-12zu %s%-11zu %-10zu %-10.2f\n", p,
                  result.num_segments, result.truncated ? ">" : "",
                  result.patterns.size(), max_elems, result.seconds);
      std::fflush(stdout);
    }
  }

  // Do the planted Twitter events surface as position-based patterns?
  // Count, for each event, segment-patterns (p = 16) containing all its
  // tags at ANY offsets with support >= 5% of segments.
  std::printf("\nplanted Twitter events under the position-based model "
              "(p=16, minSup=5%% of segments):\n");
  rpm::baselines::PartialPeriodicParams params;
  params.period_length = 16;
  params.min_sup = std::max<uint64_t>(
      1, static_cast<uint64_t>(twitter.db.size() / 16 / 4));
  rpm::baselines::PartialPeriodicOptions options;
  options.max_total_patterns = 500000;
  auto result = rpm::baselines::MinePartialPeriodicPatterns(twitter.db,
                                                            params, options);
  size_t shown = 0;
  for (const auto& event : twitter.events) {
    if (++shown > 4) break;
    size_t hits = 0;
    for (const auto& pat : result.patterns) {
      rpm::Itemset items;
      for (const auto& e : pat.elements) items.push_back(e.item);
      std::sort(items.begin(), items.end());
      items.erase(std::unique(items.begin(), items.end()), items.end());
      if (std::includes(items.begin(), items.end(), event.tags.begin(),
                        event.tags.end())) {
        ++hits;
      }
    }
    std::printf("  %-28s %zu matching segment-patterns\n",
                event.label.c_str(), hits);
  }
  std::printf("(compare: RP-growth recovers all four with exact windows — "
              "bench_table6_example_patterns)\n");
  return 0;
}
