#include "rpm/core/rp_tree.h"

#include <algorithm>

#include "rpm/common/logging.h"

namespace rpm {

TsPrefixTree::TsPrefixTree(std::vector<ItemId> items_by_rank)
    : items_by_rank_(std::move(items_by_rank)),
      heads_(items_by_rank_.size(), nullptr),
      chain_tails_(items_by_rank_.size(), nullptr) {
  arena_.emplace_back();  // Root ("null" label in Algorithm 2).
  root_ = &arena_.front();
}

TsPrefixTree::Node* TsPrefixTree::GetOrCreateChild(Node* parent,
                                                   uint32_t rank) {
  for (Node* c : parent->children) {
    if (c->rank == rank) return c;
  }
  arena_.emplace_back();
  Node* node = &arena_.back();
  node->rank = rank;
  node->parent = parent;
  parent->children.push_back(node);
  // Append to the node-link chain for this rank.
  if (chain_tails_[rank] == nullptr) {
    heads_[rank] = node;
  } else {
    chain_tails_[rank]->next_link = node;
  }
  chain_tails_[rank] = node;
  ++live_nodes_;
  return node;
}

void TsPrefixTree::InsertTransaction(const std::vector<uint32_t>& ranks,
                                     Timestamp ts) {
  if (ranks.empty()) return;
  Node* node = root_;
  for (uint32_t rank : ranks) {
    RPM_DCHECK(rank < num_ranks());
    node = GetOrCreateChild(node, rank);
  }
  node->ts_list.push_back(ts);
}

void TsPrefixTree::InsertPath(const std::vector<uint32_t>& ranks,
                              const TimestampList& ts_list) {
  if (ranks.empty()) return;
  Node* node = root_;
  for (uint32_t rank : ranks) {
    RPM_DCHECK(rank < num_ranks());
    node = GetOrCreateChild(node, rank);
  }
  node->ts_list.insert(node->ts_list.end(), ts_list.begin(), ts_list.end());
}

void TsPrefixTree::PushUpAndRemove(size_t rank) {
  for (Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
    RPM_DCHECK(n->children.empty())
        << "rank " << rank << " removed before deeper ranks";
    Node* parent = n->parent;
    if (parent != root_) {
      if (parent->ts_list.empty()) {
        parent->ts_list = std::move(n->ts_list);
      } else {
        parent->ts_list.insert(parent->ts_list.end(), n->ts_list.begin(),
                               n->ts_list.end());
      }
    }
    n->ts_list.clear();
    n->ts_list.shrink_to_fit();
    auto it = std::find(parent->children.begin(), parent->children.end(), n);
    RPM_DCHECK(it != parent->children.end());
    *it = parent->children.back();
    parent->children.pop_back();
    --live_nodes_;
  }
  heads_[rank] = nullptr;
  chain_tails_[rank] = nullptr;
}

}  // namespace rpm
