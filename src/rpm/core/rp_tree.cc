#include "rpm/core/rp_tree.h"

#include <algorithm>
#include <new>
#include <vector>

#include "rpm/common/failpoint.h"
#include "rpm/common/logging.h"

namespace rpm {

TsPrefixTree::TsPrefixTree(std::vector<ItemId> items_by_rank)
    : items_by_rank_(std::move(items_by_rank)),
      heads_(items_by_rank_.size(), nullptr),
      chain_tails_(items_by_rank_.size(), nullptr) {
  root_ = arena_.Create();  // Root ("null" label in Algorithm 2).
  root_->seq = next_seq_++;
}

TsPrefixTree::Node* TsPrefixTree::GetOrCreateChild(Node* parent,
                                                   uint32_t rank) {
  for (Node* c = parent->first_child; c != nullptr; c = c->next_sibling) {
    if (c->rank == rank) return c;
  }
  // Same failure surface a real arena-chunk exhaustion would have; the
  // engine layer maps it to kResourceExhausted (DESIGN.md §7.4).
  if (FailpointTriggered("rptree.alloc")) throw std::bad_alloc();
  Node* node = arena_.Create();
  node->rank = rank;
  node->seq = next_seq_++;
  node->parent = parent;
  node->next_sibling = parent->first_child;
  parent->first_child = node;
  // Append to the node-link chain for this rank.
  if (chain_tails_[rank] == nullptr) {
    heads_[rank] = node;
  } else {
    chain_tails_[rank]->next_link = node;
  }
  chain_tails_[rank] = node;
  ++live_nodes_;
  return node;
}

void TsPrefixTree::InsertTransaction(const std::vector<uint32_t>& ranks,
                                     Timestamp ts) {
  if (ranks.empty()) return;
  Node* node = root_;
  for (uint32_t rank : ranks) {
    RPM_DCHECK(rank < num_ranks());
    node = GetOrCreateChild(node, rank);
  }
  node->ts_list.push_back(ts);
  ++timestamp_count_;
}

void TsPrefixTree::InsertPath(const std::vector<uint32_t>& ranks,
                              const TimestampList& ts_list) {
  if (ranks.empty()) return;
  Node* node = root_;
  for (uint32_t rank : ranks) {
    RPM_DCHECK(rank < num_ranks());
    node = GetOrCreateChild(node, rank);
  }
  node->ts_list.insert(node->ts_list.end(), ts_list.begin(), ts_list.end());
  timestamp_count_ += ts_list.size();
}

TsPrefixTree TsPrefixTree::Clone() const {
  TsPrefixTree copy(items_by_rank_);
  // Paths carry strictly ascending ranks (InsertTransaction/InsertPath
  // insert sorted rank sequences), so walking the chains in ascending rank
  // order guarantees every node's parent clone already exists. Node::seq
  // gives an exact flat original->clone map (hot path of the query
  // engine's build-once/mine-many reuse; a hash map here once cost more
  // than rebuilding the tree from the database).
  std::vector<Node*> clone_of(next_seq_, nullptr);
  clone_of[root_->seq] = copy.root_;
  for (size_t rank = 0; rank < heads_.size(); ++rank) {
    for (const Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
      Node* parent = clone_of[n->parent->seq];
      if (FailpointTriggered("rptree.alloc")) throw std::bad_alloc();
      Node* node = copy.arena_.Create();
      node->rank = n->rank;
      node->seq = copy.next_seq_++;
      node->parent = parent;
      node->ts_list = n->ts_list;
      node->next_sibling = parent->first_child;
      parent->first_child = node;
      if (copy.chain_tails_[rank] == nullptr) {
        copy.heads_[rank] = node;
      } else {
        copy.chain_tails_[rank]->next_link = node;
      }
      copy.chain_tails_[rank] = node;
      ++copy.live_nodes_;
      clone_of[n->seq] = node;
    }
  }
  // Every live timestamp sits on some chained node (lists whose push-up
  // parent is the root are dropped), so the chain walk copied all of them.
  copy.timestamp_count_ = timestamp_count_;
  return copy;
}

void TsPrefixTree::MergeAppendFrom(TsPrefixTree&& other) {
  RPM_DCHECK(other.items_by_rank_ == items_by_rank_);
  // Same ascending-rank chain walk as Clone(), for the same reason: paths
  // carry strictly ascending ranks, so every node's parent is mapped
  // before the node itself. target_of is the other-seq -> master-node map.
  std::vector<Node*> target_of(other.next_seq_, nullptr);
  target_of[other.root_->seq] = root_;
  for (size_t rank = 0; rank < other.heads_.size(); ++rank) {
    for (Node* n = other.heads_[rank]; n != nullptr; n = n->next_link) {
      Node* node =
          GetOrCreateChild(target_of[n->parent->seq], n->rank);
      target_of[n->seq] = node;
      if (n->ts_list.empty()) continue;
      if (node->ts_list.empty()) {
        node->ts_list = std::move(n->ts_list);
      } else {
        node->ts_list.insert(node->ts_list.end(), n->ts_list.begin(),
                             n->ts_list.end());
      }
      n->ts_list.clear();
    }
  }
  timestamp_count_ += other.timestamp_count_;
  other.timestamp_count_ = 0;
}

TsPrefixTree::RetireStats TsPrefixTree::RetireBefore(Timestamp cutoff) {
  RetireStats stats;
  // Pass 1: filter expired timestamps out of every chained node's list.
  // std::remove_if keeps relative order, so a concatenation of sorted
  // runs stays one (each run just loses a prefix-or-scattered subset that
  // was < cutoff; what survives of any sorted run is still sorted).
  for (size_t rank = 0; rank < heads_.size(); ++rank) {
    for (Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
      if (n->ts_list.empty()) continue;
      const size_t before = n->ts_list.size();
      n->ts_list.erase(
          std::remove_if(n->ts_list.begin(), n->ts_list.end(),
                         [cutoff](Timestamp t) { return t < cutoff; }),
          n->ts_list.end());
      stats.timestamps_retired += before - n->ts_list.size();
    }
  }
  timestamp_count_ -= stats.timestamps_retired;
  // Pass 2: detach empty leaves, deepest ranks first. Children always
  // carry a strictly higher rank than their parent (paths are ascending),
  // so a prefix node whose entire subtree expired is itself a childless
  // empty node by the time its rank is swept. Chains are rebuilt keeping
  // the survivors' original order.
  for (size_t rank = heads_.size(); rank-- > 0;) {
    Node* new_head = nullptr;
    Node* new_tail = nullptr;
    for (Node* n = heads_[rank]; n != nullptr;) {
      Node* next = n->next_link;
      if (n->ts_list.empty() && n->first_child == nullptr) {
        n->ts_list.shrink_to_fit();
        Node** slot = &n->parent->first_child;
        while (*slot != n) {
          RPM_DCHECK(*slot != nullptr);
          slot = &(*slot)->next_sibling;
        }
        *slot = n->next_sibling;
        --live_nodes_;
        ++stats.nodes_retired;
      } else {
        n->next_link = nullptr;
        if (new_tail == nullptr) {
          new_head = n;
        } else {
          new_tail->next_link = n;
        }
        new_tail = n;
      }
      n = next;
    }
    heads_[rank] = new_head;
    chain_tails_[rank] = new_tail;
  }
  return stats;
}

void TsPrefixTree::PushUpAndRemove(size_t rank) {
  for (Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
    RPM_DCHECK(n->first_child == nullptr)
        << "rank " << rank << " removed before deeper ranks";
    Node* parent = n->parent;
    if (parent != root_) {
      if (parent->ts_list.empty()) {
        parent->ts_list = std::move(n->ts_list);
      } else {
        parent->ts_list.insert(parent->ts_list.end(), n->ts_list.begin(),
                               n->ts_list.end());
      }
    } else {
      timestamp_count_ -= n->ts_list.size();  // Root discards its lists.
    }
    n->ts_list.clear();
    n->ts_list.shrink_to_fit();
    // Unlink from the parent's sibling list (the node itself stays in the
    // arena until the tree dies).
    Node** slot = &parent->first_child;
    while (*slot != n) {
      RPM_DCHECK(*slot != nullptr);
      slot = &(*slot)->next_sibling;
    }
    *slot = n->next_sibling;
    --live_nodes_;
  }
  heads_[rank] = nullptr;
  chain_tails_[rank] = nullptr;
}

}  // namespace rpm
