#include "rpm/core/rp_tree.h"

#include <algorithm>

#include "rpm/common/logging.h"

namespace rpm {

TsPrefixTree::TsPrefixTree(std::vector<ItemId> items_by_rank)
    : items_by_rank_(std::move(items_by_rank)),
      heads_(items_by_rank_.size(), nullptr),
      chain_tails_(items_by_rank_.size(), nullptr) {
  root_ = arena_.Create();  // Root ("null" label in Algorithm 2).
}

TsPrefixTree::Node* TsPrefixTree::GetOrCreateChild(Node* parent,
                                                   uint32_t rank) {
  for (Node* c = parent->first_child; c != nullptr; c = c->next_sibling) {
    if (c->rank == rank) return c;
  }
  Node* node = arena_.Create();
  node->rank = rank;
  node->parent = parent;
  node->next_sibling = parent->first_child;
  parent->first_child = node;
  // Append to the node-link chain for this rank.
  if (chain_tails_[rank] == nullptr) {
    heads_[rank] = node;
  } else {
    chain_tails_[rank]->next_link = node;
  }
  chain_tails_[rank] = node;
  ++live_nodes_;
  return node;
}

void TsPrefixTree::InsertTransaction(const std::vector<uint32_t>& ranks,
                                     Timestamp ts) {
  if (ranks.empty()) return;
  Node* node = root_;
  for (uint32_t rank : ranks) {
    RPM_DCHECK(rank < num_ranks());
    node = GetOrCreateChild(node, rank);
  }
  node->ts_list.push_back(ts);
}

void TsPrefixTree::InsertPath(const std::vector<uint32_t>& ranks,
                              const TimestampList& ts_list) {
  if (ranks.empty()) return;
  Node* node = root_;
  for (uint32_t rank : ranks) {
    RPM_DCHECK(rank < num_ranks());
    node = GetOrCreateChild(node, rank);
  }
  node->ts_list.insert(node->ts_list.end(), ts_list.begin(), ts_list.end());
}

void TsPrefixTree::PushUpAndRemove(size_t rank) {
  for (Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
    RPM_DCHECK(n->first_child == nullptr)
        << "rank " << rank << " removed before deeper ranks";
    Node* parent = n->parent;
    if (parent != root_) {
      if (parent->ts_list.empty()) {
        parent->ts_list = std::move(n->ts_list);
      } else {
        parent->ts_list.insert(parent->ts_list.end(), n->ts_list.begin(),
                               n->ts_list.end());
      }
    }
    n->ts_list.clear();
    n->ts_list.shrink_to_fit();
    // Unlink from the parent's sibling list (the node itself stays in the
    // arena until the tree dies).
    Node** slot = &parent->first_child;
    while (*slot != n) {
      RPM_DCHECK(*slot != nullptr);
      slot = &(*slot)->next_sibling;
    }
    *slot = n->next_sibling;
    --live_nodes_;
  }
  heads_[rank] = nullptr;
  chain_tails_[rank] = nullptr;
}

}  // namespace rpm
