#include "rpm/core/ts_block.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace rpm {

namespace {

inline uint64_t UnsignedGap(Timestamp prev, Timestamp cur) {
  // Exact for sorted pairs: matches TimestampGap in core/time_gap.h.
  return static_cast<uint64_t>(cur) - static_cast<uint64_t>(prev);
}

}  // namespace

// --- Scalar reference kernels ----------------------------------------------

void ComputeBreakMasksScalar(const Timestamp* ts, size_t n, uint64_t period,
                             uint64_t* masks) {
  const size_t gaps = n - 1;
  std::memset(masks, 0, TsBlockWords(n) * sizeof(uint64_t));
  for (size_t g = 0; g < gaps; ++g) {
    if (UnsignedGap(ts[g], ts[g + 1]) > period) {
      masks[g >> 6] |= uint64_t{1} << (g & 63);
    }
  }
}

void ComputeDeltasScalar(const Timestamp* ts, size_t n, uint64_t* out) {
  const size_t gaps = n - 1;
  for (size_t g = 0; g < gaps; ++g) {
    out[g] = UnsignedGap(ts[g], ts[g + 1]);
  }
}

#if defined(__x86_64__) || defined(__i386__)

// --- SSE2 -------------------------------------------------------------------
//
// SSE2 has neither a 64-bit compare nor an unsigned one, so the unsigned
// gap > period test is rebuilt from 32-bit pieces: for each qword,
// (hi_a > hi_b) || (hi_a == hi_b && lo_a > lo_b) with the 32-bit halves
// compared unsigned via the sign-bias trick. The subtraction itself is
// native (psubq is SSE2) and is exactly the two's-complement unsigned
// subtraction the scalar path performs.

void ComputeBreakMasksSse2(const Timestamp* ts, size_t n, uint64_t period,
                           uint64_t* masks) {
  const size_t gaps = n - 1;
  std::memset(masks, 0, TsBlockWords(n) * sizeof(uint64_t));
  const __m128i per = _mm_set1_epi64x(static_cast<long long>(period));
  const __m128i bias32 = _mm_set1_epi32(static_cast<int>(0x80000000u));
  size_t g = 0;
  // Loads touch ts[g .. g+2]; g + 2 <= gaps keeps the last index <= n - 1.
  for (; g + 2 <= gaps; g += 2) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + g));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + g + 1));
    const __m128i d = _mm_sub_epi64(b, a);
    // Unsigned 32-bit lane compares of d vs period.
    const __m128i gt32 =
        _mm_cmpgt_epi32(_mm_xor_si128(d, bias32), _mm_xor_si128(per, bias32));
    const __m128i eq32 = _mm_cmpeq_epi32(d, per);
    // Per qword: hi-lane gt, hi-lane eq, lo-lane gt, broadcast to the
    // full qword, then combine.
    const __m128i gt_hi = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128i eq_hi = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128i gt_lo = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(2, 2, 0, 0));
    const __m128i brk = _mm_or_si128(gt_hi, _mm_and_si128(eq_hi, gt_lo));
    const int bits = _mm_movemask_pd(_mm_castsi128_pd(brk));
    masks[g >> 6] |= static_cast<uint64_t>(bits) << (g & 63);
  }
  for (; g < gaps; ++g) {
    if (UnsignedGap(ts[g], ts[g + 1]) > period) {
      masks[g >> 6] |= uint64_t{1} << (g & 63);
    }
  }
}

void ComputeDeltasSse2(const Timestamp* ts, size_t n, uint64_t* out) {
  const size_t gaps = n - 1;
  size_t g = 0;
  for (; g + 2 <= gaps; g += 2) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + g));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + g + 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + g),
                     _mm_sub_epi64(b, a));
  }
  for (; g < gaps; ++g) {
    out[g] = UnsignedGap(ts[g], ts[g + 1]);
  }
}

// --- AVX2 -------------------------------------------------------------------
//
// AVX2 has a signed 64-bit compare (vpcmpgtq); the unsigned gap > period
// test becomes signed by flipping the sign bit of both operands. Compiled
// with a per-function target attribute so the translation unit itself
// stays at the build's baseline ISA.

__attribute__((target("avx2"))) void ComputeBreakMasksAvx2(
    const Timestamp* ts, size_t n, uint64_t period, uint64_t* masks) {
  const size_t gaps = n - 1;
  std::memset(masks, 0, TsBlockWords(n) * sizeof(uint64_t));
  const __m256i bias = _mm256_set1_epi64x(INT64_MIN);
  const __m256i per_biased = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(period)), bias);
  size_t g = 0;
  // Loads touch ts[g .. g+4]; g + 4 <= gaps keeps the last index <= n - 1.
  for (; g + 4 <= gaps; g += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + g));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + g + 1));
    const __m256i d = _mm256_sub_epi64(b, a);
    const __m256i brk =
        _mm256_cmpgt_epi64(_mm256_xor_si256(d, bias), per_biased);
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(brk));
    masks[g >> 6] |= static_cast<uint64_t>(bits) << (g & 63);
  }
  for (; g < gaps; ++g) {
    if (UnsignedGap(ts[g], ts[g + 1]) > period) {
      masks[g >> 6] |= uint64_t{1} << (g & 63);
    }
  }
}

__attribute__((target("avx2"))) void ComputeDeltasAvx2(const Timestamp* ts,
                                                       size_t n,
                                                       uint64_t* out) {
  const size_t gaps = n - 1;
  size_t g = 0;
  for (; g + 4 <= gaps; g += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + g));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ts + g + 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + g),
                        _mm256_sub_epi64(b, a));
  }
  for (; g < gaps; ++g) {
    out[g] = UnsignedGap(ts[g], ts[g + 1]);
  }
}

#else  // Non-x86: keep the exported symbols, forwarding to scalar.

void ComputeBreakMasksSse2(const Timestamp* ts, size_t n, uint64_t period,
                           uint64_t* masks) {
  ComputeBreakMasksScalar(ts, n, period, masks);
}

void ComputeBreakMasksAvx2(const Timestamp* ts, size_t n, uint64_t period,
                           uint64_t* masks) {
  ComputeBreakMasksScalar(ts, n, period, masks);
}

void ComputeDeltasSse2(const Timestamp* ts, size_t n, uint64_t* out) {
  ComputeDeltasScalar(ts, n, out);
}

void ComputeDeltasAvx2(const Timestamp* ts, size_t n, uint64_t* out) {
  ComputeDeltasScalar(ts, n, out);
}

#endif

// --- Dispatch ---------------------------------------------------------------

namespace {

using BreakMasksFn = void (*)(const Timestamp*, size_t, uint64_t, uint64_t*);
using DeltasFn = void (*)(const Timestamp*, size_t, uint64_t*);

BreakMasksFn ResolveBreakMasks() {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return ComputeBreakMasksAvx2;
    case SimdLevel::kSse2:
      return ComputeBreakMasksSse2;
    case SimdLevel::kScalar:
      break;
  }
  return ComputeBreakMasksScalar;
}

DeltasFn ResolveDeltas() {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kAvx2:
      return ComputeDeltasAvx2;
    case SimdLevel::kSse2:
      return ComputeDeltasSse2;
    case SimdLevel::kScalar:
      break;
  }
  return ComputeDeltasScalar;
}

}  // namespace

void ComputeBreakMasks(const Timestamp* ts, size_t n, uint64_t period,
                       uint64_t* masks) {
  static const BreakMasksFn fn = ResolveBreakMasks();
  fn(ts, n, period, masks);
}

void ComputeDeltas(const Timestamp* ts, size_t n, uint64_t* out) {
  static const DeltasFn fn = ResolveDeltas();
  fn(ts, n, out);
}

}  // namespace rpm
