#include "rpm/core/ts_merge.h"

#include <algorithm>

#include "rpm/common/logging.h"

namespace rpm {
namespace {

/// Consecutive single-element wins one side must score before MergeTwo
/// switches to galloping block copies (timsort's MIN_GALLOP). Below the
/// threshold a plain compare-and-copy loop is faster; above it the data is
/// blocky and exponential search skips whole blocks.
constexpr int kMinGallop = 7;

/// k-way merging only beats introsort when runs are long enough that the
/// per-block heap rounds amortize; below this average run length the
/// kernel concatenates and sorts instead (exactly the pre-kernel path).
constexpr size_t kFragmentedAvgRunLen = 8;

/// First index i in [0, n) with data[i] > key, found by exponential probing
/// from the front then binary search inside the located bracket. O(log d)
/// for answers d positions in — the galloping primitive of the kernel.
size_t GallopUpperBound(const Timestamp* data, size_t n, Timestamp key) {
  if (n == 0 || data[0] > key) return 0;
  size_t lo = 0;  // data[lo] <= key.
  size_t hi = 1;
  while (hi < n && data[hi] <= key) {
    lo = hi;
    hi = 2 * hi + 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(std::upper_bound(data + lo, data + hi, key) -
                             data);
}

/// First index i in [0, n) with data[i] >= key, same probing scheme.
size_t GallopLowerBound(const Timestamp* data, size_t n, Timestamp key) {
  if (n == 0 || data[0] >= key) return 0;
  size_t lo = 0;  // data[lo] < key.
  size_t hi = 1;
  while (hi < n && data[hi] < key) {
    lo = hi;
    hi = 2 * hi + 1;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(std::lower_bound(data + lo, data + hi, key) -
                             data);
}

inline Timestamp* CopyBlock(const Timestamp* src, size_t count,
                            Timestamp* dst) {
  return std::copy(src, src + count, dst);
}

/// Two-run adaptive merge into `dst` (which has room for both runs):
/// straight compare-and-copy until one side wins kMinGallop times in a
/// row, then gallop — block-copying to the other side's head. Skewed or
/// blocky runs (one long pushed-up list plus a short fresh one) degrade
/// to O(short * log long) instead of O(long + short); finely interleaved
/// runs never pay more than one compare per element.
Timestamp* MergeTwo(TsRun a, TsRun b, Timestamp* dst) {
  int streak_a = 0;
  int streak_b = 0;
  while (a.size != 0 && b.size != 0) {
    if (a.data[0] <= b.data[0]) {
      if (++streak_a >= kMinGallop) {
        const size_t count = GallopUpperBound(a.data, a.size, b.data[0]);
        dst = CopyBlock(a.data, count, dst);
        a.data += count;
        a.size -= count;
        streak_a = 0;
      } else {
        *dst++ = a.data[0];
        ++a.data;
        --a.size;
      }
      streak_b = 0;
    } else {
      if (++streak_b >= kMinGallop) {
        const size_t count = GallopLowerBound(b.data, b.size, a.data[0]);
        dst = CopyBlock(b.data, count, dst);
        b.data += count;
        b.size -= count;
        streak_b = 0;
      } else {
        *dst++ = b.data[0];
        ++b.data;
        --b.size;
      }
      streak_a = 0;
    }
  }
  if (a.size != 0) dst = CopyBlock(a.data, a.size, dst);
  if (b.size != 0) dst = CopyBlock(b.data, b.size, dst);
  return dst;
}

}  // namespace

void AppendSortedRuns(const TimestampList& ts, std::vector<TsRun>* runs) {
  const Timestamp* data = ts.data();
  const size_t n = ts.size();
  size_t begin = 0;
  while (begin < n) {
    size_t end = begin + 1;
    while (end < n && data[end] >= data[end - 1]) ++end;
    runs->push_back({data + begin, end - begin});
    begin = end;
  }
}

void MergeSortedRuns(const TsRun* runs, size_t num_runs, TimestampList* out,
                     MergeScratch* scratch, MergeCounters* counters) {
  ++counters->merge_invocations;

  // Compact away empty runs and size the output once: every branch below
  // writes exactly `total` elements through a raw cursor.
  std::vector<TsRun>& active = scratch->active;
  active.clear();
  size_t total = 0;
  for (size_t i = 0; i < num_runs; ++i) {
    if (runs[i].size == 0) continue;
    active.push_back(runs[i]);
    total += runs[i].size;
  }
  counters->runs_merged += active.size();
  counters->timestamps_merged += total;
  out->resize(total);
  if (active.empty()) return;
  Timestamp* dst = out->data();

  if (active.size() == 1) {
    CopyBlock(active[0].data, active[0].size, dst);
    return;
  }
  if (active.size() == 2) {
    MergeTwo(active[0], active[1], dst);
    return;
  }

  // Fragmented inputs — many tiny runs (deep conditional levels shred
  // ts-lists into few-element pieces) — interleave too finely for any
  // k-way scheme to beat introsort: concatenate and sort, exactly the
  // pre-kernel path and byte-identical output.
  if (total < active.size() * kFragmentedAvgRunLen) {
    for (const TsRun& run : active) dst = CopyBlock(run.data, run.size, dst);
    std::sort(out->begin(), out->end());
    return;
  }

  // k >= 3 runs: bottom-up natural mergesort. Each round halves the run
  // count with the adaptive two-run merge — ceil(log2 k) linear streaming
  // passes instead of introsort's log2(n), and each pass gallops across
  // whatever block structure the round before it built up. A k-way heap
  // loses here: with finely interleaved runs the heap winner advances
  // ~one element per pop/push round, costing log k indirect compares per
  // element against this loop's one.
  //
  // The first round merges straight out of the caller's runs into `ping`;
  // later rounds ping-pong between the slabs; the final two-run round
  // writes into `out`. `bounds` holds run boundaries and is compacted in
  // place (new bound j = old bound 2j, written only after it is read).
  std::vector<size_t>& bounds = scratch->bounds;
  bounds.clear();
  bounds.push_back(0);
  TimestampList& ping = scratch->ping;
  if (ping.size() < total) ping.resize(total);
  Timestamp* src = ping.data();
  Timestamp* tmp = nullptr;
  {
    Timestamp* cursor = src;
    size_t i = 0;
    for (; i + 1 < active.size(); i += 2) {
      cursor = MergeTwo(active[i], active[i + 1], cursor);
      bounds.push_back(static_cast<size_t>(cursor - src));
    }
    if (i < active.size()) {
      cursor = CopyBlock(active[i].data, active[i].size, cursor);
      bounds.push_back(static_cast<size_t>(cursor - src));
    }
  }
  size_t k = bounds.size() - 1;
  if (k > 2) {
    TimestampList& pong = scratch->pong;
    if (pong.size() < total) pong.resize(total);
    tmp = pong.data();
  }
  while (k > 2) {
    Timestamp* cursor = tmp;
    size_t next = 0;
    size_t i = 0;
    for (; i + 1 < k; i += 2) {
      const TsRun a{src + bounds[i], bounds[i + 1] - bounds[i]};
      const TsRun b{src + bounds[i + 1], bounds[i + 2] - bounds[i + 1]};
      cursor = MergeTwo(a, b, cursor);
      bounds[++next] = static_cast<size_t>(cursor - tmp);
    }
    if (i < k) {  // Odd run out: carried into the next round verbatim.
      cursor = CopyBlock(src + bounds[i], bounds[i + 1] - bounds[i], cursor);
      bounds[++next] = static_cast<size_t>(cursor - tmp);
    }
    k = next;
    std::swap(src, tmp);
  }
  RPM_DCHECK(k == 2);
  MergeTwo({src, bounds[1]}, {src + bounds[1], bounds[2] - bounds[1]}, dst);
}

}  // namespace rpm
