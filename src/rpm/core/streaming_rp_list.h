// Online (streaming) maintenance of the RP-list over an append-only event
// stream — Algorithm 1 as an incremental structure.
//
// A monitoring deployment (the paper's network-administration use case)
// cannot re-scan history on every event. StreamingRpList ingests events in
// timestamp order and maintains, per item: support, the current periodic
// run, accumulated Erec, and the closed interesting intervals so far —
// enough to (a) answer "which items could currently be recurring" without
// a scan, and (b) seed a full RP-growth run over stored history when an
// item becomes interesting.

#ifndef RPM_CORE_STREAMING_RP_LIST_H_
#define RPM_CORE_STREAMING_RP_LIST_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/core/ts_merge.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// Incremental per-item recurrence summary. Events must arrive in
/// non-decreasing timestamp order.
class StreamingRpList {
 public:
  /// `period` > 0, `min_ps` >= 1 (checked).
  StreamingRpList(Timestamp period, uint64_t min_ps);

  /// Ingests one event. InvalidArgument if `ts` precedes the newest
  /// timestamp already observed (the stream contract) or `item` is the
  /// kInvalidItem sentinel. Re-observing an item at its current newest
  /// timestamp is a no-op, so duplicates within a transaction count once —
  /// matching what batch Algorithm 1 sees after TdbBuilder deduplication.
  Status Observe(ItemId item, Timestamp ts);

  /// Ingests all items of one transaction at `ts`. `items` need not be
  /// sorted or duplicate-free (duplicates count once). Validates the whole
  /// transaction up front: on error nothing is ingested.
  Status ObserveTransaction(Timestamp ts, const Itemset& items);

  /// Items observed so far (upper bound on ids + 1).
  size_t ItemUniverseSize() const { return states_.size(); }

  /// Support of `item` so far (0 if unseen).
  uint64_t SupportOf(ItemId item) const;

  /// Erec including the still-open run — identical to what Algorithm 1
  /// would report after its final flush if the stream ended now.
  uint64_t ErecOf(ItemId item) const;

  /// Interesting intervals already *closed* by an over-period gap. The
  /// currently-open run is reported by OpenRunOf.
  const std::vector<PeriodicInterval>& ClosedIntervalsOf(ItemId item) const;

  /// The open run of `item` as an interval (ps counts its appearances);
  /// periodic_support == 0 when the item is unseen.
  PeriodicInterval OpenRunOf(ItemId item) const;

  /// Recurrence so far: closed interesting intervals, plus the open run if
  /// it already qualifies.
  uint64_t RecurrenceOf(ItemId item) const;

  /// Items whose current Erec reaches `min_rec` — the candidate set an
  /// RP-growth run over stored history would use.
  std::vector<ItemId> CandidateItems(uint64_t min_rec) const;

  Timestamp period() const { return period_; }
  uint64_t min_ps() const { return min_ps_; }
  Timestamp last_timestamp() const { return last_ts_; }
  uint64_t events_observed() const { return events_; }

 private:
  struct ItemState {
    uint64_t support = 0;
    uint64_t erec_closed = 0;     // Runs already terminated.
    uint64_t open_ps = 0;         // 0 == unseen.
    Timestamp open_start = 0;
    Timestamp idl = 0;            // Last appearance.
    std::vector<PeriodicInterval> closed_interesting;
  };

  const ItemState* Find(ItemId item) const {
    return item < states_.size() && states_[item].open_ps > 0
               ? &states_[item]
               : nullptr;
  }

  Timestamp period_;
  uint64_t min_ps_;
  Timestamp last_ts_;
  bool any_event_ = false;
  uint64_t events_ = 0;
  std::vector<ItemState> states_;
  std::vector<PeriodicInterval> empty_;
};

/// Maintenance counters for WindowedRpList, cumulative over its lifetime.
/// All are schedule-invariant: a given sequence of Append / ExpireBefore /
/// Compact calls produces identical values on every machine.
struct WindowedRpListCounters {
  uint64_t timestamps_appended = 0;  ///< Events accepted by Append.
  uint64_t timestamps_retired = 0;   ///< Events expired by ExpireBefore.
  uint64_t runs_retired = 0;         ///< Periodic runs fully expired.
  uint64_t compactions = 0;          ///< Compact() calls that reclaimed.
};

/// Per-item ts-list columns over a time-sliding window — the windowed
/// counterpart of StreamingRpList. Supports tail append (amortized O(1)
/// per event; an append extends the item's newest periodic run or opens a
/// new one, exactly the single-run merge of ts_merge.h specialized to one
/// element) *and* head expiry (amortized O(1) per retired event), while
/// keeping support / Erec / interesting intervals exact for the live
/// suffix: after any call sequence the aggregates equal what a batch
/// Algorithm 1 scan over the live window contents would report.
///
/// Expiry is lazy: retired timestamps stay in the column as a tombstoned
/// prefix [0, head) until Compact() reclaims the storage, so ExpireBefore
/// never shifts memory. The live region [head, size) of each column is
/// one sorted duplicate-free run, partitioned into consecutive periodic
/// runs; expiring a prefix of a periodic run leaves a valid (shorter)
/// run, which is why head advancement alone keeps every aggregate exact.
/// LiveTimestamps exposes the live region as a borrowing TsRun for the
/// windowed miner's merge-kernel assembly.
class WindowedRpList {
 public:
  /// `period` > 0, `min_ps` >= 1 (checked).
  WindowedRpList(Timestamp period, uint64_t min_ps);

  /// Appends one event. `ts` must be >= every previously appended
  /// timestamp and >= the current expiry cutoff (the window contract).
  /// Re-appending an item at its newest stored timestamp is a no-op, so
  /// duplicates within a transaction count once — matching batch
  /// TdbBuilder deduplication. InvalidArgument on violations or the
  /// kInvalidItem sentinel; nothing is mutated on error.
  Status Append(ItemId item, Timestamp ts);

  /// Retires every stored event with ts < cutoff across all items.
  /// Cutoffs regress-proof: a cutoff at or below the current one is a
  /// no-op. O(ItemUniverseSize + retired events).
  void ExpireBefore(Timestamp cutoff);

  /// Same, touching only `items`. The caller asserts no *other* item has
  /// a live event below `cutoff` — the windowed miner passes exactly the
  /// items of the expiring transactions, making expiry O(|items| +
  /// retired events) independent of the universe size. Out-of-range ids
  /// are ignored.
  void ExpireBefore(Timestamp cutoff, const std::vector<ItemId>& items);

  /// Items ever observed (upper bound on ids + 1); includes fully
  /// expired items.
  size_t ItemUniverseSize() const { return states_.size(); }

  /// Live-window support of `item` (0 if unseen or fully expired).
  uint64_t SupportOf(ItemId item) const;

  /// Live-window Erec: sum over the live periodic runs of
  /// floor(ps / min_ps) — what Algorithm 1 reports for the live suffix.
  uint64_t ErecOf(ItemId item) const;

  /// Number of live interesting runs (ps >= min_ps).
  uint64_t RecurrenceOf(ItemId item) const;

  /// Live interesting intervals in time order.
  std::vector<PeriodicInterval> InterestingIntervalsOf(ItemId item) const;

  /// Items whose live Erec reaches `min_rec` (ascending id order).
  std::vector<ItemId> CandidateItems(uint64_t min_rec) const;

  /// The live ts-list of `item` as one sorted run borrowing the column's
  /// storage ({nullptr, 0} when empty). Valid until the next mutating
  /// call (Append / ExpireBefore may reallocate or shift, Compact does).
  TsRun LiveTimestamps(ItemId item) const;

  /// live / stored timestamps across all columns (1.0 when nothing is
  /// stored) — the compaction trigger metric.
  double LiveFraction() const;

  /// Erases all tombstoned prefixes, shifting live suffixes to the column
  /// start. Aggregates are unchanged; LiveTimestamps runs are invalidated.
  /// Counted in counters().compactions only when storage was reclaimed.
  void Compact();

  Timestamp period() const { return period_; }
  uint64_t min_ps() const { return min_ps_; }
  /// Current expiry cutoff (inclusive window start); Timestamp minimum
  /// until the first ExpireBefore.
  Timestamp cutoff() const { return cutoff_; }
  Timestamp last_timestamp() const { return last_ts_; }
  size_t live_timestamp_count() const { return live_ts_; }
  size_t stored_timestamp_count() const { return stored_ts_; }
  const WindowedRpListCounters& counters() const { return counters_; }

 private:
  /// One maximal periodic run of the live region: column indices
  /// [first, first + ps), consecutive gaps all <= period.
  struct Run {
    size_t first = 0;
    uint64_t ps = 0;
  };
  struct ItemColumn {
    TimestampList col;         // Sorted unique; prefix [0, head) is dead.
    size_t head = 0;           // First live column index.
    std::deque<Run> runs;      // Live runs, time order; partition the
                               // live region into consecutive ranges.
    uint64_t erec = 0;         // Sum over runs of ps / min_ps_.
    uint64_t interesting = 0;  // Runs with ps >= min_ps_.
  };

  void ExpireColumn(ItemColumn& c, Timestamp cutoff);

  Timestamp period_;
  uint64_t min_ps_;
  Timestamp last_ts_;
  Timestamp cutoff_;
  bool any_event_ = false;
  size_t live_ts_ = 0;
  size_t stored_ts_ = 0;
  std::vector<ItemColumn> states_;
  WindowedRpListCounters counters_;
};

}  // namespace rpm

#endif  // RPM_CORE_STREAMING_RP_LIST_H_
