// Online (streaming) maintenance of the RP-list over an append-only event
// stream — Algorithm 1 as an incremental structure.
//
// A monitoring deployment (the paper's network-administration use case)
// cannot re-scan history on every event. StreamingRpList ingests events in
// timestamp order and maintains, per item: support, the current periodic
// run, accumulated Erec, and the closed interesting intervals so far —
// enough to (a) answer "which items could currently be recurring" without
// a scan, and (b) seed a full RP-growth run over stored history when an
// item becomes interesting.

#ifndef RPM_CORE_STREAMING_RP_LIST_H_
#define RPM_CORE_STREAMING_RP_LIST_H_

#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// Incremental per-item recurrence summary. Events must arrive in
/// non-decreasing timestamp order.
class StreamingRpList {
 public:
  /// `period` > 0, `min_ps` >= 1 (checked).
  StreamingRpList(Timestamp period, uint64_t min_ps);

  /// Ingests one event. InvalidArgument if `ts` precedes the newest
  /// timestamp already observed (the stream contract) or `item` is the
  /// kInvalidItem sentinel. Re-observing an item at its current newest
  /// timestamp is a no-op, so duplicates within a transaction count once —
  /// matching what batch Algorithm 1 sees after TdbBuilder deduplication.
  Status Observe(ItemId item, Timestamp ts);

  /// Ingests all items of one transaction at `ts`. `items` need not be
  /// sorted or duplicate-free (duplicates count once). Validates the whole
  /// transaction up front: on error nothing is ingested.
  Status ObserveTransaction(Timestamp ts, const Itemset& items);

  /// Items observed so far (upper bound on ids + 1).
  size_t ItemUniverseSize() const { return states_.size(); }

  /// Support of `item` so far (0 if unseen).
  uint64_t SupportOf(ItemId item) const;

  /// Erec including the still-open run — identical to what Algorithm 1
  /// would report after its final flush if the stream ended now.
  uint64_t ErecOf(ItemId item) const;

  /// Interesting intervals already *closed* by an over-period gap. The
  /// currently-open run is reported by OpenRunOf.
  const std::vector<PeriodicInterval>& ClosedIntervalsOf(ItemId item) const;

  /// The open run of `item` as an interval (ps counts its appearances);
  /// periodic_support == 0 when the item is unseen.
  PeriodicInterval OpenRunOf(ItemId item) const;

  /// Recurrence so far: closed interesting intervals, plus the open run if
  /// it already qualifies.
  uint64_t RecurrenceOf(ItemId item) const;

  /// Items whose current Erec reaches `min_rec` — the candidate set an
  /// RP-growth run over stored history would use.
  std::vector<ItemId> CandidateItems(uint64_t min_rec) const;

  Timestamp period() const { return period_; }
  uint64_t min_ps() const { return min_ps_; }
  Timestamp last_timestamp() const { return last_ts_; }
  uint64_t events_observed() const { return events_; }

 private:
  struct ItemState {
    uint64_t support = 0;
    uint64_t erec_closed = 0;     // Runs already terminated.
    uint64_t open_ps = 0;         // 0 == unseen.
    Timestamp open_start = 0;
    Timestamp idl = 0;            // Last appearance.
    std::vector<PeriodicInterval> closed_interesting;
  };

  const ItemState* Find(ItemId item) const {
    return item < states_.size() && states_[item].open_ps > 0
               ? &states_[item]
               : nullptr;
  }

  Timestamp period_;
  uint64_t min_ps_;
  Timestamp last_ts_;
  bool any_event_ = false;
  uint64_t events_ = 0;
  std::vector<ItemState> states_;
  std::vector<PeriodicInterval> empty_;
};

}  // namespace rpm

#endif  // RPM_CORE_STREAMING_RP_LIST_H_
