// RP-list: candidate-item discovery in one database scan (Algorithm 1,
// Figure 4).
//
// For every distinct item the scan maintains support `s`, the timestamp of
// the last appearance `idl`, the length of the current periodic run `ps`,
// and the accumulated estimated-maximum-recurrence `erec`
// (+= floor(ps / minPS) each time a run closes, with a final flush).
// Items with erec < minRec cannot participate in any recurring pattern
// (Sec. 4.1) and are pruned; survivors are the candidate items CI, sorted
// by descending support — the item order of the RP-tree.

#ifndef RPM_CORE_RP_LIST_H_
#define RPM_CORE_RP_LIST_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "rpm/core/mining_params.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm {

class QueryBudget;

/// Per-item aggregate after the scan (one row of Figure 4(e)).
struct RpListEntry {
  ItemId item = kInvalidItem;
  uint64_t support = 0;
  uint64_t erec = 0;
};

/// Rank sentinel for non-candidate items.
inline constexpr uint32_t kNotCandidate =
    std::numeric_limits<uint32_t>::max();

/// The populated RP-list: all item aggregates plus the pruned, sorted
/// candidate order.
class RpList {
 public:
  /// All items that occur in the database, in ItemId order.
  const std::vector<RpListEntry>& entries() const { return entries_; }

  /// Candidate items (erec >= minRec), sorted by support descending,
  /// ties broken by ascending ItemId (Figure 4(f)).
  const std::vector<RpListEntry>& candidates() const { return candidates_; }

  /// Rank of `item` in the candidate order (0 = most frequent), or
  /// kNotCandidate.
  uint32_t RankOf(ItemId item) const {
    return item < rank_of_.size() ? rank_of_[item] : kNotCandidate;
  }

  bool IsCandidate(ItemId item) const {
    return RankOf(item) != kNotCandidate;
  }

  size_t num_candidates() const { return candidates_.size(); }

  /// Debug rendering of the candidate list.
  std::string ToString() const;

 private:
  friend RpList BuildRpList(const TransactionDatabase& db,
                            const RpParams& params, QueryBudget* budget);

  std::vector<RpListEntry> entries_;
  std::vector<RpListEntry> candidates_;
  std::vector<uint32_t> rank_of_;
};

/// Runs Algorithm 1 over the database. `params` must validate.
///
/// In the noise-tolerant mode (params.max_gap_violations > 0) the per-item
/// bound is floor(support / minPS) instead of the paper's Erec — see
/// measures.h for why Erec is unsound under gap tolerance.
///
/// `budget` (optional) adds a per-transaction stop checkpoint so a
/// cancelled or expired query abandons the scan within one checkpoint
/// interval; the returned list is then partial and the caller must treat
/// the whole build as aborted (check budget->hard_stopped()).
RpList BuildRpList(const TransactionDatabase& db, const RpParams& params,
                   QueryBudget* budget = nullptr);

}  // namespace rpm

#endif  // RPM_CORE_RP_LIST_H_
