#include "rpm/core/brute_force.h"

#include <algorithm>
#include <iterator>
#include <thread>

#include "rpm/common/logging.h"
#include "rpm/core/measures.h"

namespace rpm {

namespace {

/// Items that occur at least once, ascending.
Itemset PresentItems(const TransactionDatabase& db) {
  std::vector<bool> seen(db.ItemUniverseSize(), false);
  for (const Transaction& tr : db.transactions()) {
    for (ItemId item : tr.items) seen[item] = true;
  }
  Itemset items;
  for (ItemId i = 0; i < seen.size(); ++i) {
    if (seen[i]) items.push_back(i);
  }
  return items;
}

/// Intersection of two sorted timestamp lists.
TimestampList Intersect(const TimestampList& a, const TimestampList& b) {
  TimestampList out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<RecurringPattern> MineByDefinition(const TransactionDatabase& db,
                                               const RpParams& params) {
  RPM_CHECK(params.Validate().ok());
  const Itemset items = PresentItems(db);
  RPM_CHECK(items.size() <= kMaxDefinitionalItems)
      << "MineByDefinition is exponential; got " << items.size()
      << " distinct items";

  std::vector<RecurringPattern> out;
  const uint64_t num_subsets = uint64_t{1} << items.size();
  Itemset pattern;
  for (uint64_t mask = 1; mask < num_subsets; ++mask) {
    pattern.clear();
    for (size_t bit = 0; bit < items.size(); ++bit) {
      if (mask & (uint64_t{1} << bit)) pattern.push_back(items[bit]);
    }
    // Definitions 3-9, applied literally.
    TimestampList ts = db.TimestampsOf(pattern);
    if (ts.empty()) continue;
    std::vector<PeriodicInterval> ipi = FindInterestingIntervals(ts, params);
    if (ipi.size() >= params.min_rec) {
      out.push_back({pattern, ts.size(), std::move(ipi)});
    }
  }
  SortPatternsCanonically(&out);
  return out;
}

namespace {

class VerticalMiner {
 public:
  VerticalMiner(const RpParams& params, const VerticalMinerOptions& options,
                VerticalMinerResult* result)
      : params_(params), options_(options), result_(result) {}

  void Run(const std::vector<std::pair<ItemId, TimestampList>>& columns) {
    Itemset pattern;
    for (size_t i = 0; i < columns.size(); ++i) {
      Extend(columns, i, columns[i].second, &pattern);
    }
  }

  /// Mines only the top-level branches with index % stride == shard.
  void RunShard(const std::vector<std::pair<ItemId, TimestampList>>& columns,
                size_t shard, size_t stride) {
    Itemset pattern;
    for (size_t i = shard; i < columns.size(); i += stride) {
      Extend(columns, i, columns[i].second, &pattern);
    }
  }

 private:
  bool PassesGate(const TimestampList& ts) const {
    if (ts.size() < params_.min_ps * params_.min_rec) return false;
    if (!options_.use_candidate_pruning) return true;
    return ComputeRecurrenceUpperBound(ts, params_) >= params_.min_rec;
  }

  void Extend(const std::vector<std::pair<ItemId, TimestampList>>& columns,
              size_t index, const TimestampList& ts, Itemset* pattern) {
    ++result_->nodes_explored;
    if (!PassesGate(ts)) return;

    pattern->push_back(columns[index].first);
    std::vector<PeriodicInterval> ipi = FindInterestingIntervals(ts, params_);
    if (ipi.size() >= params_.min_rec) {
      result_->patterns.push_back({*pattern, ts.size(), std::move(ipi)});
    }
    const bool depth_ok = options_.max_pattern_length == 0 ||
                          pattern->size() < options_.max_pattern_length;
    if (depth_ok) {
      for (size_t j = index + 1; j < columns.size(); ++j) {
        TimestampList joint = Intersect(ts, columns[j].second);
        if (!joint.empty()) Extend(columns, j, joint, pattern);
      }
    }
    pattern->pop_back();
  }

  const RpParams& params_;
  const VerticalMinerOptions& options_;
  VerticalMinerResult* result_;
};

}  // namespace

VerticalMinerResult MineVertical(const TransactionDatabase& db,
                                 const RpParams& params,
                                 const VerticalMinerOptions& options) {
  RPM_CHECK(params.Validate().ok());

  // Build the vertical representation: per-item sorted timestamp lists.
  std::vector<TimestampList> lists(db.ItemUniverseSize());
  for (const Transaction& tr : db.transactions()) {
    for (ItemId item : tr.items) lists[item].push_back(tr.ts);
  }
  std::vector<std::pair<ItemId, TimestampList>> columns;
  for (ItemId i = 0; i < lists.size(); ++i) {
    if (!lists[i].empty()) columns.emplace_back(i, std::move(lists[i]));
  }

  VerticalMinerResult result;
  if (options.num_threads <= 1 || columns.size() <= 1) {
    VerticalMiner miner(params, options, &result);
    miner.Run(columns);
  } else {
    const size_t workers = std::min(options.num_threads, columns.size());
    std::vector<VerticalMinerResult> partials(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        VerticalMiner miner(params, options, &partials[w]);
        miner.RunShard(columns, w, workers);
      });
    }
    for (std::thread& t : threads) t.join();
    for (VerticalMinerResult& partial : partials) {
      result.nodes_explored += partial.nodes_explored;
      result.patterns.insert(result.patterns.end(),
                             std::make_move_iterator(partial.patterns.begin()),
                             std::make_move_iterator(partial.patterns.end()));
    }
  }
  SortPatternsCanonically(&result.patterns);
  return result;
}

}  // namespace rpm
