#include "rpm/core/windowed_miner.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/time_gap.h"

namespace rpm {

namespace {

/// Canonical result order (pattern.cc): itemsets lexicographically.
bool LessItems(const RecurringPattern& a, const RecurringPattern& b) {
  return std::lexicographical_compare(a.items.begin(), a.items.end(),
                                      b.items.begin(), b.items.end());
}

/// True iff the sorted sets share at least one element.
bool IntersectsSorted(const Itemset& items, const std::vector<ItemId>& set) {
  auto i = items.begin();
  auto s = set.begin();
  while (i != items.end() && s != set.end()) {
    if (*i < *s) {
      ++i;
    } else if (*s < *i) {
      ++s;
    } else {
      return true;
    }
  }
  return false;
}

/// The verdict a refused delta reports. A budget that stopped for the
/// soft pattern-cap reason still refuses — a capped sub-mine would make
/// the committed set wrong — but needs a non-OK status to say so.
Status RefusalStatus(QueryBudget* budget) {
  Status s = budget != nullptr ? budget->status()
                               : Status::Cancelled("delta stopped");
  if (s.ok()) {
    s = Status::ResourceExhausted(
        "max-patterns cap tripped mid-delta; windowed mining requires "
        "uncapped sub-mines");
  }
  return s;
}

}  // namespace

WindowedMiner::WindowedMiner(const RpParams& params, Timestamp window,
                             const WindowedMinerOptions& options)
    : params_(params),
      window_(window),
      options_(options),
      columns_(params.period, params.min_ps),
      cutoff_(std::numeric_limits<Timestamp>::min()) {
  RPM_CHECK(params.Validate().ok());
  RPM_CHECK(params.max_gap_violations == 0);
  RPM_CHECK(window > 0);
  mining_stats_.threads_used = 1;
}

Status WindowedMiner::ValidateBatch(
    const std::vector<Transaction>& batch) const {
  Timestamp prev = now_;
  bool have_prev = any_delta_;
  for (const Transaction& tr : batch) {
    if (have_prev && tr.ts <= prev) {
      return Status::InvalidArgument(
          "delta timestamps must be strictly increasing and newer than "
          "the window: ts " +
          std::to_string(tr.ts) + " after " + std::to_string(prev));
    }
    have_prev = true;
    prev = tr.ts;
    for (size_t i = 0; i < tr.items.size(); ++i) {
      if (tr.items[i] == kInvalidItem) {
        return Status::InvalidArgument(
            "item id " + std::to_string(tr.items[i]) +
            " is the reserved invalid-item sentinel");
      }
      if (i > 0 && tr.items[i] <= tr.items[i - 1]) {
        return Status::InvalidArgument(
            "transaction items must be sorted ascending and "
            "duplicate-free (ts " +
            std::to_string(tr.ts) + ")");
      }
    }
  }
  return Status::OK();
}

PatternDelta WindowedMiner::ApplyDelta(const std::vector<Transaction>& batch,
                                       QueryBudget* budget) {
  PatternDelta d;
  Status vs = ValidateBatch(batch);
  if (!vs.ok()) {
    d.status = std::move(vs);
    return d;
  }
  if (batch.empty() && !any_delta_) {
    // No time base yet: nothing can expire and nothing arrives.
    d.applied = true;
    return d;
  }
  return ApplyDeltaInternal(batch, batch.empty() ? now_ : batch.back().ts,
                            budget);
}

PatternDelta WindowedMiner::AdvanceTo(Timestamp now, QueryBudget* budget) {
  if (any_delta_ && now < now_) {
    PatternDelta d;
    d.status = Status::InvalidArgument(
        "cannot advance the window backwards: now " + std::to_string(now) +
        " precedes " + std::to_string(now_));
    return d;
  }
  return ApplyDeltaInternal({}, now, budget);
}

PatternDelta WindowedMiner::ApplyDeltaInternal(
    const std::vector<Transaction>& batch, Timestamp now,
    QueryBudget* budget) {
  Stopwatch total;
  PatternDelta d;
  d.appended_transactions = batch.size();
  BudgetCheckpointer checkpoint(budget);
  const Timestamp new_cutoff = SaturatingWindowStart(now, window_);

  auto refuse = [&](Status s) {
    d.applied = false;
    d.status = std::move(s);
    d.maintain_seconds = total.ElapsedSeconds() - d.mine_seconds;
    return d;
  };

  // --- Read-only phases: nothing below mutates miner state until the
  // commit marker, so any refusal leaves the previous committed state.

  // A delta boundary is a natural coarse checkpoint: probe the budget
  // directly so an already-expired deadline or pre-cancelled token
  // refuses the delta up front — the per-unit Check() below only reaches
  // the clock and the token every kCheckpointStride steps, which a small
  // delta may never hit.
  if (budget != nullptr && budget->Probe()) {
    return refuse(RefusalStatus(budget));
  }

  // Affected items A: everything entering or leaving the window.
  std::vector<ItemId> affected;
  size_t expire_end = head_;
  while (expire_end < txns_.size() && txns_[expire_end].ts < new_cutoff) {
    const Transaction& tr = txns_[expire_end];
    affected.insert(affected.end(), tr.items.begin(), tr.items.end());
    ++expire_end;
    if (checkpoint.Check()) return refuse(RefusalStatus(budget));
  }
  d.expired_transactions = expire_end - head_;
  for (const Transaction& tr : batch) {
    affected.insert(affected.end(), tr.items.begin(), tr.items.end());
    // A batch spanning more than the window expires its own prefix.
    if (tr.ts < new_cutoff) ++d.expired_transactions;
    if (checkpoint.Check()) return refuse(RefusalStatus(budget));
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  d.affected_items = affected.size();

  std::vector<RecurringPattern> mined_a;
  TsPrefixTree::RetireStats retire;
  if (!affected.empty()) {
    // TS(D_A): union of the A-items' live columns (one sorted run each —
    // the PR 2 kernel's natural input) plus the batch as one more run.
    // Columns still hold this delta's expiring events; they are wanted
    // here so the per-delta tree exercises the lazy-retirement path.
    std::vector<TsRun> runs;
    runs.reserve(affected.size() + 1);
    for (ItemId a : affected) {
      TsRun r = columns_.LiveTimestamps(a);
      if (r.size > 0) runs.push_back(r);
    }
    TimestampList batch_ts;
    batch_ts.reserve(batch.size());
    for (const Transaction& tr : batch) batch_ts.push_back(tr.ts);
    if (!batch_ts.empty()) runs.push_back({batch_ts.data(), batch_ts.size()});
    TimestampList union_ts;
    MergeCounters assembly;
    MergeSortedRuns(runs.data(), runs.size(), &union_ts, &scratch_,
                    &assembly);
    if (checkpoint.Check()) return refuse(RefusalStatus(budget));

    // D_A itself: every union timestamp is the ts of exactly one live
    // window transaction or one batch transaction, and window timestamps
    // all precede batch timestamps.
    std::vector<Transaction> sub;
    size_t wi = head_;
    size_t bi = 0;
    Timestamp prev_ts = 0;
    bool first = true;
    for (Timestamp ts : union_ts) {
      if (!first && ts == prev_ts) continue;  // Shared by several items.
      first = false;
      prev_ts = ts;
      while (wi < txns_.size() && txns_[wi].ts < ts) ++wi;
      if (wi < txns_.size() && txns_[wi].ts == ts) {
        sub.push_back(txns_[wi]);
      } else {
        while (bi < batch.size() && batch[bi].ts < ts) ++bi;
        RPM_DCHECK(bi < batch.size() && batch[bi].ts == ts);
        sub.push_back(batch[bi]);
      }
      if (checkpoint.Check()) return refuse(RefusalStatus(budget));
    }
    d.subproblem_transactions = sub.size();

    // Sub-mine. The tree is built over pre-expiry D_A and then lazily
    // retired to the new cutoff: Erec is monotone non-decreasing under
    // timestamp insertion, so the pre-expiry candidate scan is a
    // superset build and mining the retired tree yields exactly the
    // post-expiry pattern set (the same loose→strict argument the query
    // planner's tree reuse rests on).
    Stopwatch mine_clock;
    TransactionDatabase sub_db{std::move(sub)};
    PreparedMining prep =
        PrepareMining(sub_db, params_, PruningMode::kErec, budget,
                      /*tree_threads=*/1);
    if (budget != nullptr && budget->hard_stopped()) {
      d.mine_seconds = mine_clock.ElapsedSeconds();
      return refuse(RefusalStatus(budget));
    }
    retire = prep.tree.RetireBefore(new_cutoff);
    RpGrowthOptions mopt;
    mopt.max_pattern_length = options_.max_pattern_length;
    mopt.num_threads = 1;
    mopt.budget = budget;
    RpGrowthResult mined =
        MineFromPrepared(prep, std::move(prep.tree), params_, mopt);
    d.mine_seconds = mine_clock.ElapsedSeconds();
    if (!mined.status.ok()) return refuse(mined.status);
    if (mined.truncated) return refuse(RefusalStatus(budget));

    FoldMiningStats(mined.stats);
    mining_stats_.merge_invocations += assembly.merge_invocations;
    mining_stats_.runs_merged += assembly.runs_merged;
    mining_stats_.timestamps_merged += assembly.timestamps_merged;

    // Only A-intersecting patterns carry exact window-wide measures in
    // D_A; the rest are unchanged and carried from the committed set.
    mined_a.reserve(mined.patterns.size());
    for (RecurringPattern& p : mined.patterns) {
      if (IntersectsSorted(p.items, affected)) {
        mined_a.push_back(std::move(p));
      }
    }
  }

  // Diff against the committed set and build its successor. Both inputs
  // are in canonical order; one synchronized walk produces the diff and
  // the merged new set.
  std::vector<RecurringPattern> new_patterns;
  new_patterns.reserve(patterns_.size() + mined_a.size());
  size_t i = 0;
  size_t j = 0;
  while (i < patterns_.size() || j < mined_a.size()) {
    if (j == mined_a.size() ||
        (i < patterns_.size() && LessItems(patterns_[i], mined_a[j]))) {
      if (IntersectsSorted(patterns_[i].items, affected)) {
        d.removed.push_back(patterns_[i]);  // No longer recurring.
      } else {
        new_patterns.push_back(std::move(patterns_[i]));  // Carried.
      }
      ++i;
    } else if (i == patterns_.size() ||
               LessItems(mined_a[j], patterns_[i])) {
      d.added.push_back(mined_a[j]);
      new_patterns.push_back(std::move(mined_a[j]));
      ++j;
    } else {
      if (patterns_[i] != mined_a[j]) d.changed.push_back(mined_a[j]);
      new_patterns.push_back(std::move(mined_a[j]));
      ++i;
      ++j;
    }
  }

  // --- Commit. No refusal below this line: the delta either refused
  // above with state untouched, or lands here in full.
  for (const Transaction& tr : batch) {
    for (ItemId item : tr.items) {
      Status s = columns_.Append(item, tr.ts);
      RPM_CHECK(s.ok());
    }
    txns_.push_back(tr);
  }
  columns_.ExpireBefore(new_cutoff, affected);
  // The dead region of the deque is a contiguous prefix: a batch
  // transaction below the cutoff implies every older live one is too.
  size_t new_head = expire_end;
  while (new_head < txns_.size() && txns_[new_head].ts < new_cutoff) {
    ++new_head;
  }
  head_ = new_head;
  cutoff_ = new_cutoff;
  now_ = now;
  any_delta_ = true;
  patterns_ = std::move(new_patterns);

  ++counters_.deltas_applied;
  counters_.timestamps_appended = columns_.counters().timestamps_appended;
  counters_.timestamps_retired = columns_.counters().timestamps_retired;
  counters_.runs_retired = columns_.counters().runs_retired;
  counters_.transactions_expired += d.expired_transactions;
  counters_.nodes_retired += retire.nodes_retired;
  counters_.affected_items += d.affected_items;
  counters_.subproblem_transactions += d.subproblem_transactions;

  // Reclamation after commit: a budget trip inside leaves tombstones for
  // the next sweep but never touches results.
  MaybeCompact(checkpoint);

  d.applied = true;
  d.status = Status::OK();
  d.maintain_seconds = total.ElapsedSeconds() - d.mine_seconds;
  return d;
}

void WindowedMiner::MaybeCompact(BudgetCheckpointer& checkpoint) {
  if (options_.compact_live_fraction <= 0.0) return;
  const size_t stored = columns_.stored_timestamp_count() + txns_.size();
  if (stored < options_.compact_min_stored) return;
  const size_t live =
      columns_.live_timestamp_count() + (txns_.size() - head_);
  if (live == stored) return;
  if (static_cast<double>(live) >=
      options_.compact_live_fraction * static_cast<double>(stored)) {
    return;
  }
  // Counted at the decision, which depends only on the data and delta
  // schedule — a budget trip below abandons reclamation, not accounting.
  ++counters_.compactions;
  if (checkpoint.Check()) return;
  columns_.Compact();
  if (checkpoint.Check()) return;
  txns_.erase(txns_.begin(), txns_.begin() + static_cast<ptrdiff_t>(head_));
  head_ = 0;
}

void WindowedMiner::FoldMiningStats(const RpGrowthStats& s) {
  mining_stats_.num_items = s.num_items;
  mining_stats_.num_candidate_items = s.num_candidate_items;
  mining_stats_.initial_tree_nodes += s.initial_tree_nodes;
  mining_stats_.conditional_trees += s.conditional_trees;
  mining_stats_.patterns_examined += s.patterns_examined;
  mining_stats_.patterns_emitted += s.patterns_emitted;
  mining_stats_.merge_invocations += s.merge_invocations;
  mining_stats_.runs_merged += s.runs_merged;
  mining_stats_.timestamps_merged += s.timestamps_merged;
  mining_stats_.gate_lists_scanned += s.gate_lists_scanned;
  mining_stats_.gate_gaps_scanned += s.gate_gaps_scanned;
  mining_stats_.gate_gaps_simd += s.gate_gaps_simd;
  mining_stats_.scratch_bytes_peak =
      std::max(mining_stats_.scratch_bytes_peak, s.scratch_bytes_peak);
  mining_stats_.scratch_bytes_total =
      std::max(mining_stats_.scratch_bytes_total, s.scratch_bytes_total);
  mining_stats_.list_seconds += s.list_seconds;
  mining_stats_.tree_seconds += s.tree_seconds;
  mining_stats_.mine_seconds += s.mine_seconds;
  mining_stats_.mine_cpu_seconds += s.mine_cpu_seconds;
  mining_stats_.total_seconds += s.total_seconds;
}

TransactionDatabase WindowedMiner::WindowSnapshot() const {
  std::vector<Transaction> live(txns_.begin() + static_cast<ptrdiff_t>(head_),
                                txns_.end());
  return TransactionDatabase(std::move(live));
}

}  // namespace rpm
