// User-facing mining thresholds (Definition 10): per, minPS, minRec.

#ifndef RPM_CORE_MINING_PARAMS_H_
#define RPM_CORE_MINING_PARAMS_H_

#include <cstdint>
#include <string>

#include "rpm/common/status.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// Resolved absolute thresholds for recurring-pattern mining.
///
/// - `period` ("per"): an inter-arrival time iat <= period is periodic
///   (Definition 4).
/// - `min_ps` ("minPS"): a periodic-interval is interesting when its
///   periodic-support >= min_ps (Definition 7).
/// - `min_rec` ("minRec"): X is recurring when it has >= min_rec
///   interesting periodic-intervals (Definition 9).
/// - `max_gap_violations`: extension (paper Sec. 6 future work, "noisy
///   data"): a periodic interval may absorb up to this many inter-arrival
///   times exceeding `period` before it is split. 0 reproduces the paper's
///   exact model.
struct RpParams {
  Timestamp period = 1;
  uint64_t min_ps = 1;
  uint64_t min_rec = 1;
  uint32_t max_gap_violations = 0;

  /// OK iff period > 0, min_ps >= 1, min_rec >= 1.
  Status Validate() const;

  std::string ToString() const;

  friend bool operator==(const RpParams&, const RpParams&) = default;
};

/// Builds params with minPS given as a fraction of the database size, the
/// way the paper's experiments state it (e.g. "minPS = 0.1%" of
/// |TDB| = 100,000 means min_ps = 100). Rounds up; clamps to >= 1.
Result<RpParams> MakeParamsWithMinPsFraction(Timestamp period,
                                             double min_ps_fraction,
                                             uint64_t min_rec,
                                             size_t database_size,
                                             uint32_t max_gap_violations = 0);

}  // namespace rpm

#endif  // RPM_CORE_MINING_PARAMS_H_
