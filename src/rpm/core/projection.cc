#include "rpm/core/projection.h"

#include <algorithm>

namespace rpm {

std::vector<SuffixProjection> ProjectSuffixItems(TsPrefixTree* tree) {
  std::vector<SuffixProjection> projections;
  for (size_t rank = tree->num_ranks(); rank-- > 0;) {
    if (tree->HeadOfRank(rank) == nullptr) continue;
    SuffixProjection projection;
    projection.rank = static_cast<uint32_t>(rank);
    // Same collection the sequential miner performs for this rank
    // (rp_growth.cc), but into owned storage.
    tree->ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ts.empty() && path.empty()) return;
          projection.paths.push_back({path, ts});
          projection.ts_beta.insert(projection.ts_beta.end(), ts.begin(),
                                    ts.end());
        });
    tree->PushUpAndRemove(rank);
    if (projection.ts_beta.empty()) continue;
    std::sort(projection.ts_beta.begin(), projection.ts_beta.end());
    projections.push_back(std::move(projection));
  }
  return projections;
}

}  // namespace rpm
