#include "rpm/core/projection.h"

namespace rpm {

std::vector<SuffixProjection> ProjectSuffixItems(TsPrefixTree* tree,
                                                 MergeCounters* counters) {
  std::vector<SuffixProjection> projections;
  MergeCounters local_counters;
  if (counters == nullptr) counters = &local_counters;
  MergeScratch merge_scratch;
  std::vector<TsRun> runs;
  for (size_t rank = tree->num_ranks(); rank-- > 0;) {
    if (tree->HeadOfRank(rank) == nullptr) continue;
    SuffixProjection projection;
    projection.rank = static_cast<uint32_t>(rank);
    runs.clear();
    // Same collection the sequential miner performs for this rank
    // (rp_growth.cc), but into owned storage. The runs reference the owned
    // copies: ProjectedPath reallocation moves the vectors, which keeps
    // their heap buffers (and thus the run pointers) stable.
    tree->ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ts.empty() && path.empty()) return;
          projection.paths.push_back({path, ts});
          AppendSortedRuns(projection.paths.back().ts, &runs);
        });
    tree->PushUpAndRemove(rank);
    if (runs.empty()) continue;  // No timestamps at this rank.
    MergeSortedRuns(runs.data(), runs.size(), &projection.ts_beta,
                    &merge_scratch, counters);
    projections.push_back(std::move(projection));
  }
  return projections;
}

}  // namespace rpm
