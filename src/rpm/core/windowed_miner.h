// Incremental mining over a time-sliding window (ROADMAP item 2).
//
// A monitoring deployment keeps only the last W time units of the stream
// alive and wants the recurring-pattern set of that window refreshed on
// every delta of newly arrived transactions — without paying a full
// re-mine of the window per delta. WindowedMiner maintains the window
// [now - W, now] incrementally, in the spirit of the sliding-window
// local-interval-frequency evaluation of arXiv 2604.24122 (PAPERS.md)
// mapped onto this repo's periodic-interval decomposition:
//
//   * Tail appends land in per-item ts-list columns (WindowedRpList) in
//     amortized O(1) per event — an append is the degenerate single-run
//     case of the PR 2 run-aware merge kernel: it either extends the
//     item's newest periodic run or opens a new one.
//   * Expiry is lazy. Columns tombstone their dead prefix ([0, head));
//     the per-delta RP-tree drops expired timestamps and childless nodes
//     through TsPrefixTree::RetireBefore; storage is reclaimed by a
//     periodic compaction that fires when the live fraction of the
//     window drops below WindowedMinerOptions::compact_live_fraction.
//   * The output of every delta is a pattern-set *diff* (added / removed
//     / changed), so dashboards consume deltas instead of full sets.
//
// Correctness of the delta algorithm (the verify harness cross-checks it
// case-by-case; DESIGN.md §9 has the full argument):
//
//   Let A be the union of the item sets of the transactions appended or
//   expired by a delta. A pattern X with X ∩ A = ∅ has TS^X unchanged —
//   no transaction entering or leaving the window contains all of X — so
//   its committed measures carry over verbatim. For X with X ∩ A ≠ ∅,
//   every live window transaction containing X contains some a ∈ A, so
//   it belongs to D_A, the sub-database of live transactions containing
//   at least one A-item. Mining D_A under the same params therefore
//   reproduces the exact window-wide measures of every A-intersecting
//   pattern, and the new committed set is
//       (old set minus A-intersecting) ∪ (mined A-intersecting).
//   D_A is assembled with MergeSortedRuns over the A-items' live columns
//   (each column is one sorted run) plus the batch as one more run.
//
// Budget governance is transactional: a delta stages nothing into the
// miner until its sub-mine has succeeded, so a hard budget stop
// (deadline / memory / cancellation) anywhere inside a delta leaves the
// miner exactly at the previous committed state — the results a stream
// reports are always the prefix of deltas that completed, deterministic
// for a given stream and delta schedule. Compaction runs after commit
// and is pure storage reclamation: a budget trip inside it stops the
// sweep early without affecting any result.
//
// Model restrictions: exact model only (params.max_gap_violations == 0)
// and no pattern cap (a capped sub-mine would make diffs meaningless);
// the engine's windowed executor rejects such queries up front.

#ifndef RPM_CORE_WINDOWED_MINER_H_
#define RPM_CORE_WINDOWED_MINER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/cancellation.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/core/rp_growth.h"
#include "rpm/core/streaming_rp_list.h"
#include "rpm/core/ts_merge.h"
#include "rpm/timeseries/transaction_database.h"
#include "rpm/timeseries/types.h"

namespace rpm {

struct WindowedMinerOptions {
  /// Compact tombstoned storage (columns + the window deque) when the
  /// live fraction drops below this. <= 0 disables compaction.
  double compact_live_fraction = 0.5;
  /// Only consider compaction once this many slots are stored (avoids
  /// churn on tiny windows).
  size_t compact_min_stored = 64;
  /// Forwarded to every per-delta sub-mine (0 = unlimited).
  size_t max_pattern_length = 0;
};

/// Cumulative maintenance counters. All schedule-invariant: a given
/// stream and delta schedule produce identical values on every machine
/// (sub-mines run single-threaded), which is what lets bench_compare
/// treat any drift as correctness drift.
struct WindowedCounters {
  uint64_t deltas_applied = 0;
  uint64_t timestamps_appended = 0;    ///< Column events accepted.
  uint64_t timestamps_retired = 0;     ///< Column events expired.
  uint64_t transactions_expired = 0;   ///< Window transactions expired.
  uint64_t nodes_retired = 0;          ///< RP-tree nodes retired.
  uint64_t runs_retired = 0;           ///< Column periodic runs expired.
  uint64_t compactions = 0;            ///< Compaction sweeps that fired.
  uint64_t affected_items = 0;         ///< Cumulative |A| over deltas.
  uint64_t subproblem_transactions = 0;  ///< Cumulative |D_A| over deltas.
};

/// Pattern-set diff of one delta, against the previously committed set.
/// `added`, `removed` and `changed` are each in canonical itemset order
/// and mutually disjoint; `removed` carries the last committed value,
/// `changed` the new one. Reconstructing (committed_before − removed −
/// changed-old + changed-new + added) yields exactly patterns() after
/// the call — the verify harness checks this identity per delta.
struct PatternDelta {
  std::vector<RecurringPattern> added;
  std::vector<RecurringPattern> removed;
  std::vector<RecurringPattern> changed;
  /// False when the delta was refused (invalid batch or hard budget
  /// stop): the miner state is untouched and the diff vectors are empty.
  bool applied = false;
  /// OK for an applied delta (even when compaction was cut short by the
  /// budget — reclamation never affects results); the refusal verdict
  /// otherwise.
  Status status;
  // Per-delta observability:
  uint64_t appended_transactions = 0;
  uint64_t expired_transactions = 0;
  uint64_t affected_items = 0;       ///< |A|.
  uint64_t subproblem_transactions = 0;  ///< |D_A|.
  double maintain_seconds = 0.0;  ///< Delta time outside the sub-mine.
  double mine_seconds = 0.0;      ///< Sub-mine (prepare + mine) time.
};

/// Incremental miner over the sliding window [now - W, now]. Not
/// thread-safe; one instance per stream.
class WindowedMiner {
 public:
  /// `params` must validate with max_gap_violations == 0; `window` > 0.
  /// Violations are programmer errors (checked).
  WindowedMiner(const RpParams& params, Timestamp window,
                const WindowedMinerOptions& options = {});

  /// Applies one delta: appends `batch` (timestamps strictly increasing,
  /// all greater than every previously appended timestamp; items sorted,
  /// duplicate-free, no kInvalidItem) and slides the window to
  /// [max_ts - window, max_ts]. A batch transaction older than the new
  /// cutoff (possible when the batch spans more than the window) is
  /// counted as appended and immediately expired. An empty batch is a
  /// no-op delta. Transactional under `budget` (may be null): see the
  /// file comment.
  PatternDelta ApplyDelta(const std::vector<Transaction>& batch,
                          QueryBudget* budget = nullptr);

  /// Pure window slide: advances now to `now` (>= the current now,
  /// InvalidArgument otherwise) without appending, expiring what falls
  /// out. Equivalent to ApplyDelta({}) except that it moves time forward.
  PatternDelta AdvanceTo(Timestamp now, QueryBudget* budget = nullptr);

  /// The committed pattern set of the live window, canonical itemset
  /// order. Identical to MineRecurringPatterns over WindowSnapshot() —
  /// the differential harness' windowed ≡ batch check.
  const std::vector<RecurringPattern>& patterns() const { return patterns_; }

  /// The live window contents as a database (verification / debugging;
  /// copies the live transactions).
  TransactionDatabase WindowSnapshot() const;

  const WindowedCounters& counters() const { return counters_; }

  /// Aggregated stats of every committed sub-mine plus the assembly
  /// merge-kernel counters; all counter fields are schedule-invariant.
  const RpGrowthStats& mining_stats() const { return mining_stats_; }

  const RpParams& params() const { return params_; }
  Timestamp window() const { return window_; }
  /// Inclusive window start (Timestamp minimum before the first delta).
  Timestamp low_watermark() const { return cutoff_; }
  /// Current now (meaningful once a delta was applied).
  Timestamp now() const { return now_; }
  size_t live_transactions() const { return txns_.size() - head_; }

 private:
  PatternDelta ApplyDeltaInternal(const std::vector<Transaction>& batch,
                                  Timestamp now, QueryBudget* budget);
  Status ValidateBatch(const std::vector<Transaction>& batch) const;
  void MaybeCompact(BudgetCheckpointer& checkpoint);
  void FoldMiningStats(const RpGrowthStats& stats);

  RpParams params_;
  Timestamp window_;
  WindowedMinerOptions options_;

  std::vector<Transaction> txns_;  // Window deque; [head_, size) live.
  size_t head_ = 0;
  WindowedRpList columns_;
  std::vector<RecurringPattern> patterns_;

  Timestamp now_ = 0;
  Timestamp cutoff_;
  bool any_delta_ = false;

  WindowedCounters counters_;
  RpGrowthStats mining_stats_;
  MergeScratch scratch_;
};

}  // namespace rpm

#endif  // RPM_CORE_WINDOWED_MINER_H_
