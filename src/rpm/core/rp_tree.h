// RP-tree: a prefix tree over rank-ordered items whose nodes carry
// timestamp lists (ts-lists) at the deepest node of each inserted
// transaction (Sec. 4.2.1, Figures 3 and 5).
//
// Unlike an FP-tree there is no per-node support count; all frequency *and*
// periodicity information lives in the ts-lists (the paper's tail nodes).
// Mining proceeds bottom-up: after the lowest-ranked item is processed its
// ts-lists are pushed up to the parents (Lemma 3), which makes the next
// item's nodes complete in turn.
//
// The structure is shared by RP-growth and the PF-growth++ baseline; the
// two differ only in the measures/pruning applied to collected ts-lists.

#ifndef RPM_CORE_RP_TREE_H_
#define RPM_CORE_RP_TREE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "rpm/core/arena.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// Prefix tree keyed by item *rank* (0 = first item of the tree's order).
/// Owns its nodes via an arena (bump-allocated, bulk-freed with the tree);
/// not copyable (mining mutates it in place) — repeated mining over one
/// build goes through Clone().
class TsPrefixTree {
 public:
  struct Node {
    uint32_t rank = 0;
    /// Dense per-tree creation index (root = 0). Lets Clone() map
    /// original nodes to copies through a flat vector instead of a hash
    /// map; lives in the padding after `rank`, so it costs no space.
    uint32_t seq = 0;
    Node* parent = nullptr;
    Node* next_link = nullptr;  // Chain of nodes with the same rank.
    /// Children as an intrusive singly-linked sibling list (no per-node
    /// child vector to allocate).
    Node* first_child = nullptr;
    Node* next_sibling = nullptr;
    /// Timestamps of transactions whose deepest item is this node
    /// (plus any lists pushed up from removed descendants). Not globally
    /// sorted after push-up, but always a concatenation of sorted runs:
    /// transactions insert in ascending timestamp order and push-up /
    /// InsertPath only append whole lists, so consumers recover the
    /// sorted union with the run-aware merge kernel (ts_merge.h) instead
    /// of re-sorting.
    TimestampList ts_list;
  };

  /// `items_by_rank[r]` is the ItemId occupying rank r.
  explicit TsPrefixTree(std::vector<ItemId> items_by_rank);

  TsPrefixTree(const TsPrefixTree&) = delete;
  TsPrefixTree& operator=(const TsPrefixTree&) = delete;
  TsPrefixTree(TsPrefixTree&&) = default;
  TsPrefixTree& operator=(TsPrefixTree&&) = default;

  size_t num_ranks() const { return items_by_rank_.size(); }
  ItemId ItemAtRank(size_t rank) const { return items_by_rank_[rank]; }
  const std::vector<ItemId>& items_by_rank() const { return items_by_rank_; }

  /// Inserts one transaction: `ranks` sorted ascending, duplicate-free.
  /// Appends `ts` to the ts-list of the deepest node (Algorithm 3).
  /// No-op for an empty rank set.
  void InsertTransaction(const std::vector<uint32_t>& ranks, Timestamp ts);

  /// Inserts a whole prefix path carrying an accumulated ts-list
  /// (conditional-tree construction). Lists of coinciding paths merge.
  void InsertPath(const std::vector<uint32_t>& ranks,
                  const TimestampList& ts_list);

  /// Head of the node-link chain for `rank` (nullptr when absent).
  const Node* HeadOfRank(size_t rank) const { return heads_[rank]; }

  /// Visits every node of `rank`: fn(path, ts_list) where `path` holds the
  /// ancestor ranks in ascending order (root side first), excluding `rank`
  /// itself. The ts_list reference stays valid until the next mutation.
  /// `path` is ONE buffer reused across callbacks — callers that keep
  /// paths must copy the contents (miners append them to a flat slab
  /// rather than cloning a vector per node).
  template <typename Fn>
  void ForEachNodeOfRank(size_t rank, Fn&& fn) const {
    std::vector<uint32_t> path;
    for (const Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
      path.clear();
      for (const Node* a = n->parent; a != root_; a = a->parent) {
        path.push_back(a->rank);
      }
      std::reverse(path.begin(), path.end());
      fn(path, n->ts_list);
    }
  }

  /// ForEachNodeOfRank with early exit: fn returns false to stop the walk
  /// (budget-governed miners abandon a rank mid-walk instead of paying for
  /// the full node chain after a stop request).
  template <typename Fn>
  void ForEachNodeOfRankWhile(size_t rank, Fn&& fn) const {
    std::vector<uint32_t> path;
    for (const Node* n = heads_[rank]; n != nullptr; n = n->next_link) {
      path.clear();
      for (const Node* a = n->parent; a != root_; a = a->parent) {
        path.push_back(a->rank);
      }
      std::reverse(path.begin(), path.end());
      if (!fn(path, n->ts_list)) return;
    }
  }

  /// Pushes every ts-list of `rank` to the respective parent and detaches
  /// the nodes (Algorithm 4 line 9 / Lemma 3). After this, HeadOfRank(rank)
  /// is nullptr. Precondition: all deeper ranks were already removed.
  void PushUpAndRemove(size_t rank);

  /// Deep copy into a fresh arena. Node-link chains are reproduced in the
  /// original chain order, so mining the clone collects every conditional
  /// pattern base in exactly the order the original would — outputs AND
  /// schedule-invariant counters are bit-identical. O(nodes + timestamps);
  /// much cheaper than re-scanning the database, which is what makes a
  /// build-once/mine-many query engine pay off. Safe to call concurrently
  /// from several threads on the same (unmutated) tree.
  TsPrefixTree Clone() const;

  /// Folds `other` (same rank order, consumed) into this tree: every node
  /// of `other` maps onto this tree's node with the same root path
  /// (created when absent, via the same chain-appending GetOrCreateChild
  /// the builders use) and its ts-list is appended — moved when the target
  /// list is empty. The parallel tree build absorbs partition-local
  /// partial tries with this, in partition order; because chains only grow
  /// at node creation, the master's chain order after all folds equals the
  /// sequential build's first-touch order, and each node's ts-list is the
  /// identical database-order concatenation. Like the builders, may throw
  /// under the "rptree.alloc" failpoint; `other` is unusable afterwards
  /// either way.
  void MergeAppendFrom(TsPrefixTree&& other);

  /// Outcome of a RetireBefore sweep.
  struct RetireStats {
    size_t timestamps_retired = 0;
    size_t nodes_retired = 0;
  };

  /// Retires every timestamp < `cutoff` from all ts-lists, then detaches
  /// nodes left with no timestamps and no live children — the lazy
  /// expiry sweep of the windowed miner (DESIGN.md §9). Filtering keeps
  /// relative order, so each surviving list is still a concatenation of
  /// sorted runs and node-link chains keep their original order (the
  /// determinism contract of Clone/MergeAppendFrom). Like PushUpAndRemove,
  /// retired nodes stay in the arena until the tree dies; the windowed
  /// miner's per-delta trees are transient, so the slabs are reclaimed at
  /// the end of every delta, and long-lived trees are rebuilt by its
  /// compaction policy instead of being retired in place forever.
  RetireStats RetireBefore(Timestamp cutoff);

  /// Number of live nodes, excluding the root (Lemma 2's size measure).
  size_t NodeCount() const { return live_nodes_; }

  /// Timestamps currently stored across all ts-lists.
  size_t TimestampCount() const { return timestamp_count_; }

  /// Approximate live footprint in bytes: nodes plus stored timestamps,
  /// maintained by O(1) counters. This is what query memory budgets
  /// account against (transient per-path buffers are excluded — see
  /// DESIGN.md §7.2).
  size_t ApproxBytes() const {
    return live_nodes_ * sizeof(Node) + timestamp_count_ * sizeof(Timestamp);
  }

  bool empty() const { return live_nodes_ == 0; }

 private:
  Node* GetOrCreateChild(Node* parent, uint32_t rank);

  std::vector<ItemId> items_by_rank_;
  Arena<Node> arena_;  // Stable addresses; owns root_ and all nodes.
  Node* root_ = nullptr;
  std::vector<Node*> heads_;
  std::vector<Node*> chain_tails_;  // O(1) chain append.
  size_t live_nodes_ = 0;
  size_t timestamp_count_ = 0;  // Timestamps across all live ts-lists.
  uint32_t next_seq_ = 0;  // Next Node::seq (never reused after push-up).
};

}  // namespace rpm

#endif  // RPM_CORE_RP_TREE_H_
