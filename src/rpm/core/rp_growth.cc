#include "rpm/core/rp_growth.h"

#include <algorithm>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/measures.h"
#include "rpm/core/rp_tree.h"

namespace rpm {
namespace {

/// One (prefix path, ts-list) element of a conditional pattern base.
struct PathRef {
  std::vector<uint32_t> ranks;  // Ancestor ranks, ascending.
  const TimestampList* ts;      // Owned by the tree; valid until push-up.
};

class Miner {
 public:
  Miner(const RpParams& params, const RpGrowthOptions& options,
        RpGrowthResult* result)
      : params_(params), options_(options), result_(result) {}

  /// Algorithm 4 over one (possibly conditional) tree. `suffix` holds the
  /// items of alpha; the tree is consumed (ts-lists pushed up, nodes
  /// detached) in the process.
  void MineTree(TsPrefixTree* tree, Itemset* suffix) {
    for (size_t rank = tree->num_ranks(); rank-- > 0;) {
      if (tree->HeadOfRank(rank) != nullptr) {
        ProcessRank(tree, rank, suffix);
        tree->PushUpAndRemove(rank);
      }
    }
  }

 private:
  /// True when beta (with the given full TS^beta) may still lead to
  /// recurring patterns — the paper's candidate test, or the weaker
  /// support-only gate in the ablation mode.
  bool PassesGate(const TimestampList& sorted_ts) const {
    if (options_.pruning == PruningMode::kSupportOnly) {
      return sorted_ts.size() >= params_.min_ps * params_.min_rec;
    }
    return ComputeRecurrenceUpperBound(sorted_ts, params_) >=
           params_.min_rec;
  }

  void ProcessRank(TsPrefixTree* tree, size_t rank, Itemset* suffix) {
    // Collect the conditional pattern base of ai and TS^beta in one walk.
    std::vector<PathRef> paths;
    TimestampList ts_beta;
    tree->ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ts.empty() && path.empty()) return;
          paths.push_back({path, &ts});
          ts_beta.insert(ts_beta.end(), ts.begin(), ts.end());
        });
    if (ts_beta.empty()) return;
    std::sort(ts_beta.begin(), ts_beta.end());

    ++result_->stats.patterns_examined;
    if (!PassesGate(ts_beta)) return;

    suffix->push_back(tree->ItemAtRank(rank));

    // getRecurrence (Algorithm 5): is beta itself recurring?
    std::vector<PeriodicInterval> intervals =
        FindInterestingIntervals(ts_beta, params_);
    if (intervals.size() >= params_.min_rec) {
      RecurringPattern pattern;
      pattern.items = *suffix;
      std::sort(pattern.items.begin(), pattern.items.end());
      pattern.support = ts_beta.size();
      pattern.intervals = std::move(intervals);
      ++result_->stats.patterns_emitted;
      if (options_.sink) options_.sink(pattern);
      if (options_.store_patterns) {
        result_->patterns.push_back(std::move(pattern));
      }
    }

    const bool depth_ok = options_.max_pattern_length == 0 ||
                          suffix->size() < options_.max_pattern_length;
    if (depth_ok) BuildConditionalAndRecurse(tree, paths, suffix);
    suffix->pop_back();
  }

  void BuildConditionalAndRecurse(TsPrefixTree* tree,
                                  const std::vector<PathRef>& paths,
                                  Itemset* suffix) {
    const size_t nranks = tree->num_ranks();

    // Map every node's ts-list onto all items of its path ("temporary
    // array, one for each item" in Sec. 4.2.3): acc[r] becomes
    // TS^{beta + item_at_rank_r}.
    std::vector<TimestampList> acc(nranks);
    std::vector<uint32_t> touched;
    for (const PathRef& pr : paths) {
      for (uint32_t r : pr.ranks) {
        if (acc[r].empty()) touched.push_back(r);
        acc[r].insert(acc[r].end(), pr.ts->begin(), pr.ts->end());
      }
    }
    if (touched.empty()) return;

    // Keep items that can still extend beta (conditional Erec gate).
    std::vector<uint32_t> kept;
    for (uint32_t r : touched) {
      std::sort(acc[r].begin(), acc[r].end());
      if (PassesGate(acc[r])) kept.push_back(r);
    }
    if (kept.empty()) return;

    // Conditional item order: support-descending, ties by parent order.
    std::sort(kept.begin(), kept.end(), [&](uint32_t a, uint32_t b) {
      return acc[a].size() != acc[b].size() ? acc[a].size() > acc[b].size()
                                            : a < b;
    });
    std::vector<uint32_t> new_rank_of(nranks, kNotCandidate);
    std::vector<ItemId> items_by_rank(kept.size());
    for (uint32_t nr = 0; nr < kept.size(); ++nr) {
      new_rank_of[kept[nr]] = nr;
      items_by_rank[nr] = tree->ItemAtRank(kept[nr]);
    }

    TsPrefixTree cond(std::move(items_by_rank));
    std::vector<uint32_t> mapped;
    for (const PathRef& pr : paths) {
      mapped.clear();
      for (uint32_t r : pr.ranks) {
        if (new_rank_of[r] != kNotCandidate) mapped.push_back(new_rank_of[r]);
      }
      if (mapped.empty()) continue;
      std::sort(mapped.begin(), mapped.end());
      cond.InsertPath(mapped, *pr.ts);
    }
    ++result_->stats.conditional_trees;
    if (!cond.empty()) MineTree(&cond, suffix);
  }

  const RpParams& params_;
  const RpGrowthOptions& options_;
  RpGrowthResult* result_;
};

}  // namespace

RpGrowthResult MineRecurringPatterns(const TransactionDatabase& db,
                                     const RpParams& params,
                                     const RpGrowthOptions& options) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  RpGrowthResult result;
  Stopwatch total;

  // Pass 1: RP-list (Algorithm 1).
  Stopwatch phase;
  RpList list = BuildRpList(db, params);
  result.stats.num_items = list.entries().size();
  result.stats.list_seconds = phase.ElapsedSeconds();

  // Candidate item order per pruning mode.
  std::vector<ItemId> items_by_rank;
  std::vector<uint32_t> rank_of(db.ItemUniverseSize(), kNotCandidate);
  if (options.pruning == PruningMode::kErec) {
    items_by_rank.reserve(list.candidates().size());
    for (const RpListEntry& e : list.candidates()) {
      items_by_rank.push_back(e.item);
    }
  } else {
    std::vector<RpListEntry> entries = list.entries();
    const uint64_t min_support = params.min_ps * params.min_rec;
    std::erase_if(entries, [&](const RpListEntry& e) {
      return e.support < min_support;
    });
    std::sort(entries.begin(), entries.end(),
              [](const RpListEntry& a, const RpListEntry& b) {
                return a.support != b.support ? a.support > b.support
                                              : a.item < b.item;
              });
    items_by_rank.reserve(entries.size());
    for (const RpListEntry& e : entries) items_by_rank.push_back(e.item);
  }
  for (uint32_t rank = 0; rank < items_by_rank.size(); ++rank) {
    rank_of[items_by_rank[rank]] = rank;
  }
  result.stats.num_candidate_items = items_by_rank.size();

  // Pass 2: RP-tree (Algorithms 2-3).
  phase.Restart();
  TsPrefixTree tree(std::move(items_by_rank));
  std::vector<uint32_t> ranks;
  for (const Transaction& tr : db.transactions()) {
    ranks.clear();
    for (ItemId item : tr.items) {
      if (rank_of[item] != kNotCandidate) ranks.push_back(rank_of[item]);
    }
    std::sort(ranks.begin(), ranks.end());
    tree.InsertTransaction(ranks, tr.ts);
  }
  result.stats.initial_tree_nodes = tree.NodeCount();
  result.stats.tree_seconds = phase.ElapsedSeconds();

  // Bottom-up mining (Algorithm 4).
  phase.Restart();
  Itemset suffix;
  Miner miner(params, options, &result);
  miner.MineTree(&tree, &suffix);
  result.stats.mine_seconds = phase.ElapsedSeconds();

  SortPatternsCanonically(&result.patterns);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace rpm
