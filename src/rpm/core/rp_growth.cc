#include "rpm/core/rp_growth.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/measures.h"
#include "rpm/core/projection.h"
#include "rpm/core/rp_tree.h"
#include "rpm/core/thread_pool.h"
#include "rpm/core/ts_merge.h"

namespace rpm {
namespace {

/// One (prefix path, ts-list) element of a conditional pattern base. The
/// ancestor ranks live in the owning frame's flat rank storage (no
/// per-path heap allocation); the ts-list is owned by the tree or a
/// projection and is a concatenation of sorted runs.
struct PathRef {
  uint32_t ranks_begin = 0;  // Offset into the frame's rank storage.
  uint32_t ranks_len = 0;
  const TimestampList* ts = nullptr;
};

/// Per-recursion-level scratch. Frames are pooled by depth and reused
/// across every subproblem mined at that depth, so after warm-up a whole
/// mining run performs no per-level allocations. A frame's buffers stay
/// live while deeper levels recurse (paths/rank_storage/ts_beta are read
/// by the level's own MineCollected tail), which is why frames are pooled
/// per depth rather than shared.
struct Frame {
  // Conditional-pattern-base collection (ProcessRank / MineProjection):
  std::vector<PathRef> paths;
  std::vector<uint32_t> rank_storage;   ///< Flat ancestor-rank slab.
  std::vector<TsRun> beta_runs;         ///< Run descriptors for TS^beta.
  TimestampList ts_beta;                ///< Merged TS^beta slab.
  std::vector<PeriodicInterval> intervals;  ///< Fused-gate output.
  // Conditional-tree construction (BuildConditionalAndRecurse); acc and
  // runs_by_rank are indexed by parent rank and grow-only, with only the
  // touched entries cleared after use.
  std::vector<TimestampList> acc;           ///< Merged TS^{beta+item}.
  std::vector<std::vector<TsRun>> runs_by_rank;
  std::vector<TsRun> path_runs;         ///< One path's run split.
  std::vector<uint32_t> touched;
  std::vector<uint32_t> kept;
  std::vector<uint32_t> new_rank_of;
  std::vector<uint32_t> mapped;

  size_t ByteFootprint() const {
    size_t bytes = paths.capacity() * sizeof(PathRef) +
                   rank_storage.capacity() * sizeof(uint32_t) +
                   beta_runs.capacity() * sizeof(TsRun) +
                   ts_beta.capacity() * sizeof(Timestamp) +
                   intervals.capacity() * sizeof(PeriodicInterval) +
                   path_runs.capacity() * sizeof(TsRun) +
                   (touched.capacity() + kept.capacity() +
                    new_rank_of.capacity() + mapped.capacity()) *
                       sizeof(uint32_t);
    bytes += acc.capacity() * sizeof(TimestampList);
    for (const TimestampList& slab : acc) {
      bytes += slab.capacity() * sizeof(Timestamp);
    }
    bytes += runs_by_rank.capacity() * sizeof(std::vector<TsRun>);
    for (const std::vector<TsRun>& runs : runs_by_rank) {
      bytes += runs.capacity() * sizeof(TsRun);
    }
    return bytes;
  }
};

/// Reusable per-miner (per-worker) scratch pool: one frame per recursion
/// depth plus the shared merge-kernel buffers and counters. Not
/// thread-safe — the parallel path allocates one pool per worker.
class MinerScratch {
 public:
  /// Frame for recursion depth `depth`; stable address across later calls
  /// (frames are held by unique_ptr so growing the pool never moves them).
  Frame& FrameAt(size_t depth) {
    while (frames_.size() <= depth) {
      frames_.push_back(std::make_unique<Frame>());
    }
    return *frames_[depth];
  }

  /// Bytes currently retained across all frames and merge buffers. Scratch
  /// capacities only grow during a run, so sampling after mining yields
  /// the run's peak.
  size_t ByteFootprint() const {
    size_t bytes = merge.ByteFootprint();
    for (const std::unique_ptr<Frame>& frame : frames_) {
      bytes += frame->ByteFootprint();
    }
    return bytes;
  }

  MergeScratch merge;
  MergeCounters counters;

 private:
  std::vector<std::unique_ptr<Frame>> frames_;
};

class Miner {
 public:
  Miner(const RpParams& params, const RpGrowthOptions& options,
        RpGrowthResult* result, MinerScratch* scratch)
      : params_(params),
        options_(options),
        result_(result),
        scratch_(scratch) {}

  /// Algorithm 4 over one (possibly conditional) tree. `suffix` holds the
  /// items of alpha; the tree is consumed (ts-lists pushed up, nodes
  /// detached) in the process.
  void MineTree(TsPrefixTree* tree, Itemset* suffix) {
    for (size_t rank = tree->num_ranks(); rank-- > 0;) {
      if (tree->HeadOfRank(rank) != nullptr) {
        ProcessRank(tree, rank, suffix);
        tree->PushUpAndRemove(rank);
      }
    }
  }

  /// Mines one top-level projection: the independent subproblem of a
  /// single suffix item, pre-collected by ProjectSuffixItems (which also
  /// merged ts_beta, so no merge happens here).
  void MineProjection(const std::vector<ItemId>& items_by_rank,
                      SuffixProjection* projection) {
    Frame& frame = scratch_->FrameAt(depth_);
    frame.paths.clear();
    frame.rank_storage.clear();
    for (const ProjectedPath& p : projection->paths) {
      frame.paths.push_back({static_cast<uint32_t>(frame.rank_storage.size()),
                             static_cast<uint32_t>(p.ranks.size()), &p.ts});
      frame.rank_storage.insert(frame.rank_storage.end(), p.ranks.begin(),
                                p.ranks.end());
    }
    Itemset suffix;
    MineCollected(items_by_rank, frame, projection->ts_beta,
                  items_by_rank[projection->rank], &suffix);
  }

 private:
  /// True when beta (with the given full TS^beta) may still lead to
  /// recurring patterns — the paper's candidate test, or the weaker
  /// support-only gate in the ablation mode.
  bool PassesGate(const TimestampList& sorted_ts) const {
    if (options_.pruning == PruningMode::kSupportOnly) {
      return sorted_ts.size() >= params_.min_ps * params_.min_rec;
    }
    return ComputeRecurrenceUpperBound(sorted_ts, params_) >=
           params_.min_rec;
  }

  void ProcessRank(TsPrefixTree* tree, size_t rank, Itemset* suffix) {
    // Collect the conditional pattern base of ai and TS^beta's sorted runs
    // in one walk. Ancestor ranks go into the frame's flat slab (the
    // node-link walk reuses one path buffer; copying it into the slab is
    // the only per-node cost — no per-path vector is allocated).
    Frame& frame = scratch_->FrameAt(depth_);
    frame.paths.clear();
    frame.rank_storage.clear();
    frame.beta_runs.clear();
    tree->ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ts.empty() && path.empty()) return;
          frame.paths.push_back(
              {static_cast<uint32_t>(frame.rank_storage.size()),
               static_cast<uint32_t>(path.size()), &ts});
          frame.rank_storage.insert(frame.rank_storage.end(), path.begin(),
                                    path.end());
          AppendSortedRuns(ts, &frame.beta_runs);
        });
    if (frame.beta_runs.empty()) return;  // No timestamps at this rank.
    MergeSortedRuns(frame.beta_runs.data(), frame.beta_runs.size(),
                    &frame.ts_beta, &scratch_->merge, &scratch_->counters);
    MineCollected(tree->items_by_rank(), frame, frame.ts_beta,
                  tree->ItemAtRank(rank), suffix);
  }

  /// Common tail of ProcessRank / MineProjection: the fused gate +
  /// getRecurrence (Algorithm 5) and the conditional recursion for suffix
  /// item `item`. `frame` is this depth's frame holding the conditional
  /// pattern base; `ts_beta` is sorted and nonempty.
  void MineCollected(const std::vector<ItemId>& items_by_rank, Frame& frame,
                     const TimestampList& ts_beta, ItemId item,
                     Itemset* suffix) {
    ++result_->stats.patterns_examined;

    // One scan decides the gate AND yields IPI^beta for getRecurrence —
    // previously the Erec gate scanned ts_beta and FindInterestingIntervals
    // rescanned every surviving list.
    bool gate_passed;
    if (options_.pruning == PruningMode::kSupportOnly) {
      gate_passed = ts_beta.size() >= params_.min_ps * params_.min_rec;
      if (gate_passed) {
        FindInterestingIntervalsInto(ts_beta, params_, &frame.intervals);
      }
    } else {
      gate_passed =
          ComputeGateAndIntervals(ts_beta, params_, &frame.intervals).passes;
    }
    if (!gate_passed) return;

    suffix->push_back(item);

    // getRecurrence (Algorithm 5): is beta itself recurring?
    if (frame.intervals.size() >= params_.min_rec) {
      RecurringPattern pattern;
      pattern.items = *suffix;
      std::sort(pattern.items.begin(), pattern.items.end());
      pattern.support = ts_beta.size();
      pattern.intervals.assign(frame.intervals.begin(),
                               frame.intervals.end());
      ++result_->stats.patterns_emitted;
      if (options_.sink) options_.sink(pattern);
      if (options_.store_patterns) {
        result_->patterns.push_back(std::move(pattern));
      }
    }

    const bool depth_ok = options_.max_pattern_length == 0 ||
                          suffix->size() < options_.max_pattern_length;
    if (depth_ok) BuildConditionalAndRecurse(items_by_rank, frame, suffix);
    suffix->pop_back();
  }

  void BuildConditionalAndRecurse(const std::vector<ItemId>& items_by_rank,
                                  Frame& frame, Itemset* suffix) {
    const size_t nranks = items_by_rank.size();
    if (frame.acc.size() < nranks) frame.acc.resize(nranks);
    if (frame.runs_by_rank.size() < nranks) frame.runs_by_rank.resize(nranks);

    // Map every node's ts-list onto all items of its path ("temporary
    // array, one for each item" in Sec. 4.2.3) — as run descriptors, split
    // once per path and shared by all of the path's ranks, so
    // runs_by_rank[r] describes TS^{beta + item_at_rank_r}.
    frame.touched.clear();
    for (const PathRef& pr : frame.paths) {
      if (pr.ts->empty()) continue;
      frame.path_runs.clear();
      AppendSortedRuns(*pr.ts, &frame.path_runs);
      const uint32_t* path_ranks = frame.rank_storage.data() + pr.ranks_begin;
      for (uint32_t k = 0; k < pr.ranks_len; ++k) {
        const uint32_t r = path_ranks[k];
        if (frame.runs_by_rank[r].empty()) frame.touched.push_back(r);
        frame.runs_by_rank[r].insert(frame.runs_by_rank[r].end(),
                                     frame.path_runs.begin(),
                                     frame.path_runs.end());
      }
    }
    if (frame.touched.empty()) return;

    // Merge each touched item's runs and keep items that can still extend
    // beta (conditional Erec gate).
    frame.kept.clear();
    for (uint32_t r : frame.touched) {
      MergeSortedRuns(frame.runs_by_rank[r].data(),
                      frame.runs_by_rank[r].size(), &frame.acc[r],
                      &scratch_->merge, &scratch_->counters);
      frame.runs_by_rank[r].clear();
      if (PassesGate(frame.acc[r])) frame.kept.push_back(r);
    }
    if (frame.kept.empty()) {
      for (uint32_t r : frame.touched) frame.acc[r].clear();
      return;
    }

    // Conditional item order: support-descending, ties by parent order.
    std::sort(frame.kept.begin(), frame.kept.end(),
              [&frame](uint32_t a, uint32_t b) {
                return frame.acc[a].size() != frame.acc[b].size()
                           ? frame.acc[a].size() > frame.acc[b].size()
                           : a < b;
              });
    frame.new_rank_of.assign(nranks, kNotCandidate);
    std::vector<ItemId> cond_items_by_rank(frame.kept.size());
    for (uint32_t nr = 0; nr < frame.kept.size(); ++nr) {
      frame.new_rank_of[frame.kept[nr]] = nr;
      cond_items_by_rank[nr] = items_by_rank[frame.kept[nr]];
    }
    // The merged accumulators are fully consumed (gate + ordering); release
    // their contents so the slabs only pin their high-water capacity.
    for (uint32_t r : frame.touched) frame.acc[r].clear();

    TsPrefixTree cond(std::move(cond_items_by_rank));
    for (const PathRef& pr : frame.paths) {
      frame.mapped.clear();
      const uint32_t* path_ranks = frame.rank_storage.data() + pr.ranks_begin;
      for (uint32_t k = 0; k < pr.ranks_len; ++k) {
        const uint32_t nr = frame.new_rank_of[path_ranks[k]];
        if (nr != kNotCandidate) frame.mapped.push_back(nr);
      }
      if (frame.mapped.empty()) continue;
      std::sort(frame.mapped.begin(), frame.mapped.end());
      cond.InsertPath(frame.mapped, *pr.ts);
    }
    ++result_->stats.conditional_trees;
    if (!cond.empty()) {
      ++depth_;
      MineTree(&cond, suffix);
      --depth_;
    }
  }

  const RpParams& params_;
  const RpGrowthOptions& options_;
  RpGrowthResult* result_;
  MinerScratch* scratch_;
  size_t depth_ = 0;  ///< Current recursion depth == frame index.
};

/// Folds a scratch pool's kernel counters into the run's stats.
/// scratch_bytes_peak takes the max: pools are per worker, so the peak is
/// the largest single pool, not their sum.
void FoldScratchStats(const MinerScratch& scratch, RpGrowthStats* stats) {
  stats->merge_invocations += scratch.counters.merge_invocations;
  stats->runs_merged += scratch.counters.runs_merged;
  stats->timestamps_merged += scratch.counters.timestamps_merged;
  stats->scratch_bytes_peak =
      std::max(stats->scratch_bytes_peak, scratch.ByteFootprint());
}

/// Parallel mining phase: decompose the tree into per-suffix-item
/// projections and mine them on `threads` workers with thread-local
/// results, then merge. Counters sum to exactly the sequential values
/// because every subproblem is counted once, on whichever worker runs it
/// (ts_beta merges are counted during projection, where they happen).
void MineParallel(TsPrefixTree* tree, const RpParams& params,
                  const RpGrowthOptions& options, size_t threads,
                  RpGrowthResult* result) {
  MergeCounters projection_counters;
  std::vector<SuffixProjection> projections =
      ProjectSuffixItems(tree, &projection_counters);
  result->stats.merge_invocations += projection_counters.merge_invocations;
  result->stats.runs_merged += projection_counters.runs_merged;
  result->stats.timestamps_merged += projection_counters.timestamps_merged;

  // Heaviest projections first (LPT scheduling): with dynamic work
  // pulling this bounds the makespan tail by the single largest
  // subproblem. |TS^beta| is the cost proxy; ties keep bottom-up order,
  // so the schedule is deterministic.
  std::vector<size_t> order(projections.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return projections[a].ts_beta.size() > projections[b].ts_beta.size();
  });

  // Workers share one serialized sink; discovery order across workers is
  // nondeterministic, but calls never overlap.
  RpGrowthOptions worker_options = options;
  std::mutex sink_mutex;
  if (options.sink) {
    worker_options.sink = [&](const RecurringPattern& pattern) {
      std::lock_guard<std::mutex> lock(sink_mutex);
      options.sink(pattern);
    };
  }

  const size_t workers = std::min(threads, projections.size());
  std::vector<RpGrowthResult> locals(std::max<size_t>(workers, 1));
  std::vector<MinerScratch> scratches(locals.size());
  std::vector<double> busy_seconds(locals.size(), 0.0);
  const std::vector<ItemId>& items_by_rank = tree->items_by_rank();
  ParallelFor(projections.size(), workers, [&](size_t worker, size_t i) {
    Stopwatch stopwatch;
    SuffixProjection& projection = projections[order[i]];
    Miner miner(params, worker_options, &locals[worker], &scratches[worker]);
    miner.MineProjection(items_by_rank, &projection);
    projection = SuffixProjection();  // Release the snapshot eagerly.
    busy_seconds[worker] += stopwatch.ElapsedSeconds();
  });

  for (size_t w = 0; w < locals.size(); ++w) {
    RpGrowthStats& partial = locals[w].stats;
    result->stats.conditional_trees += partial.conditional_trees;
    result->stats.patterns_examined += partial.patterns_examined;
    result->stats.patterns_emitted += partial.patterns_emitted;
    result->stats.mine_cpu_seconds += busy_seconds[w];
    FoldScratchStats(scratches[w], &result->stats);
    result->patterns.insert(
        result->patterns.end(),
        std::make_move_iterator(locals[w].patterns.begin()),
        std::make_move_iterator(locals[w].patterns.end()));
  }
  result->stats.threads_used = std::max<size_t>(workers, 1);
}

}  // namespace

PreparedMining PrepareMining(const TransactionDatabase& db,
                             const RpParams& params, PruningMode pruning) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  PreparedMining prepared;
  prepared.params = params;
  prepared.pruning = pruning;

  // Pass 1: RP-list (Algorithm 1).
  Stopwatch phase;
  prepared.list = BuildRpList(db, params);
  prepared.num_items = prepared.list.entries().size();
  prepared.list_seconds = phase.ElapsedSeconds();

  // Candidate item order per pruning mode.
  if (pruning == PruningMode::kErec) {
    prepared.items_by_rank.reserve(prepared.list.candidates().size());
    for (const RpListEntry& e : prepared.list.candidates()) {
      prepared.items_by_rank.push_back(e.item);
    }
  } else {
    std::vector<RpListEntry> entries = prepared.list.entries();
    const uint64_t min_support = params.min_ps * params.min_rec;
    std::erase_if(entries, [&](const RpListEntry& e) {
      return e.support < min_support;
    });
    std::sort(entries.begin(), entries.end(),
              [](const RpListEntry& a, const RpListEntry& b) {
                return a.support != b.support ? a.support > b.support
                                              : a.item < b.item;
              });
    prepared.items_by_rank.reserve(entries.size());
    for (const RpListEntry& e : entries) {
      prepared.items_by_rank.push_back(e.item);
    }
  }
  prepared.num_candidate_items = prepared.items_by_rank.size();

  // Pass 2: RP-tree (Algorithms 2-3).
  phase.Restart();
  prepared.tree = BuildRankedTree(db, prepared.items_by_rank);
  prepared.initial_tree_nodes = prepared.tree.NodeCount();
  prepared.tree_seconds = phase.ElapsedSeconds();
  return prepared;
}

TsPrefixTree BuildRankedTree(const TransactionDatabase& db,
                             const std::vector<ItemId>& items_by_rank) {
  std::vector<uint32_t> rank_of(db.ItemUniverseSize(), kNotCandidate);
  for (uint32_t rank = 0; rank < items_by_rank.size(); ++rank) {
    RPM_CHECK(items_by_rank[rank] < rank_of.size() &&
              rank_of[items_by_rank[rank]] == kNotCandidate)
        << "invalid candidate order";
    rank_of[items_by_rank[rank]] = rank;
  }
  TsPrefixTree tree(items_by_rank);
  std::vector<uint32_t> ranks;
  for (const Transaction& tr : db.transactions()) {
    ranks.clear();
    for (ItemId item : tr.items) {
      if (rank_of[item] != kNotCandidate) ranks.push_back(rank_of[item]);
    }
    std::sort(ranks.begin(), ranks.end());
    tree.InsertTransaction(ranks, tr.ts);
  }
  return tree;
}

RpGrowthResult MineFromPrepared(const PreparedMining& prepared,
                                TsPrefixTree tree, const RpParams& params,
                                const RpGrowthOptions& options) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  RPM_CHECK(params.period == prepared.params.period &&
            params.max_gap_violations == prepared.params.max_gap_violations &&
            params.min_ps >= prepared.params.min_ps &&
            params.min_rec >= prepared.params.min_rec &&
            options.pruning == prepared.pruning)
      << "query params looser than the prepared build: " << params.ToString()
      << " vs " << prepared.params.ToString();
  RpGrowthResult result;
  Stopwatch total;
  result.stats.num_items = prepared.num_items;
  result.stats.num_candidate_items = prepared.num_candidate_items;
  result.stats.initial_tree_nodes = prepared.initial_tree_nodes;
  result.stats.list_seconds = prepared.list_seconds;
  result.stats.tree_seconds = prepared.tree_seconds;

  // Bottom-up mining (Algorithm 4): sequentially on this thread, or over
  // per-suffix-item projections on a worker pool.
  Stopwatch phase;
  const size_t threads = ResolveThreadCount(options.num_threads);
  if (threads <= 1) {
    Itemset suffix;
    MinerScratch scratch;
    Miner miner(params, options, &result, &scratch);
    miner.MineTree(&tree, &suffix);
    FoldScratchStats(scratch, &result.stats);
    result.stats.mine_seconds = phase.ElapsedSeconds();
    result.stats.mine_cpu_seconds = result.stats.mine_seconds;
    result.stats.threads_used = 1;
  } else {
    MineParallel(&tree, params, options, threads, &result);
    result.stats.mine_seconds = phase.ElapsedSeconds();
  }

  SortPatternsCanonically(&result.patterns);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

RpGrowthResult MineRecurringPatterns(const TransactionDatabase& db,
                                     const RpParams& params,
                                     const RpGrowthOptions& options) {
  Stopwatch total;
  PreparedMining prepared = PrepareMining(db, params, options.pruning);
  RpGrowthResult result = MineFromPrepared(
      prepared, std::move(prepared.tree), params, options);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace rpm
