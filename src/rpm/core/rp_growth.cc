#include "rpm/core/rp_growth.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <utility>

#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/measures.h"
#include "rpm/core/projection.h"
#include "rpm/core/rp_tree.h"
#include "rpm/core/thread_pool.h"

namespace rpm {
namespace {

/// One (prefix path, ts-list) element of a conditional pattern base.
struct PathRef {
  std::vector<uint32_t> ranks;  // Ancestor ranks, ascending.
  const TimestampList* ts;      // Owned by the tree or a projection.
};

class Miner {
 public:
  Miner(const RpParams& params, const RpGrowthOptions& options,
        RpGrowthResult* result)
      : params_(params), options_(options), result_(result) {}

  /// Algorithm 4 over one (possibly conditional) tree. `suffix` holds the
  /// items of alpha; the tree is consumed (ts-lists pushed up, nodes
  /// detached) in the process.
  void MineTree(TsPrefixTree* tree, Itemset* suffix) {
    for (size_t rank = tree->num_ranks(); rank-- > 0;) {
      if (tree->HeadOfRank(rank) != nullptr) {
        ProcessRank(tree, rank, suffix);
        tree->PushUpAndRemove(rank);
      }
    }
  }

  /// Mines one top-level projection: the independent subproblem of a
  /// single suffix item, pre-collected by ProjectSuffixItems. Consumes the
  /// projection's path ranks (moved into local PathRefs).
  void MineProjection(const std::vector<ItemId>& items_by_rank,
                      SuffixProjection* projection) {
    std::vector<PathRef> paths;
    paths.reserve(projection->paths.size());
    for (ProjectedPath& p : projection->paths) {
      paths.push_back({std::move(p.ranks), &p.ts});
    }
    Itemset suffix;
    MineCollected(items_by_rank, paths, projection->ts_beta,
                  items_by_rank[projection->rank], &suffix);
  }

 private:
  /// True when beta (with the given full TS^beta) may still lead to
  /// recurring patterns — the paper's candidate test, or the weaker
  /// support-only gate in the ablation mode.
  bool PassesGate(const TimestampList& sorted_ts) const {
    if (options_.pruning == PruningMode::kSupportOnly) {
      return sorted_ts.size() >= params_.min_ps * params_.min_rec;
    }
    return ComputeRecurrenceUpperBound(sorted_ts, params_) >=
           params_.min_rec;
  }

  void ProcessRank(TsPrefixTree* tree, size_t rank, Itemset* suffix) {
    // Collect the conditional pattern base of ai and TS^beta in one walk.
    std::vector<PathRef> paths;
    TimestampList ts_beta;
    tree->ForEachNodeOfRank(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ts.empty() && path.empty()) return;
          paths.push_back({path, &ts});
          ts_beta.insert(ts_beta.end(), ts.begin(), ts.end());
        });
    if (ts_beta.empty()) return;
    std::sort(ts_beta.begin(), ts_beta.end());
    MineCollected(tree->items_by_rank(), paths, ts_beta,
                  tree->ItemAtRank(rank), suffix);
  }

  /// Common tail of ProcessRank / MineProjection: the gate, getRecurrence
  /// (Algorithm 5) and the conditional recursion for suffix item `item`,
  /// given its conditional pattern base `paths` (rank space
  /// `items_by_rank`) and sorted, nonempty TS^beta.
  void MineCollected(const std::vector<ItemId>& items_by_rank,
                     const std::vector<PathRef>& paths,
                     const TimestampList& ts_beta, ItemId item,
                     Itemset* suffix) {
    ++result_->stats.patterns_examined;
    if (!PassesGate(ts_beta)) return;

    suffix->push_back(item);

    // getRecurrence (Algorithm 5): is beta itself recurring?
    std::vector<PeriodicInterval> intervals =
        FindInterestingIntervals(ts_beta, params_);
    if (intervals.size() >= params_.min_rec) {
      RecurringPattern pattern;
      pattern.items = *suffix;
      std::sort(pattern.items.begin(), pattern.items.end());
      pattern.support = ts_beta.size();
      pattern.intervals = std::move(intervals);
      ++result_->stats.patterns_emitted;
      if (options_.sink) options_.sink(pattern);
      if (options_.store_patterns) {
        result_->patterns.push_back(std::move(pattern));
      }
    }

    const bool depth_ok = options_.max_pattern_length == 0 ||
                          suffix->size() < options_.max_pattern_length;
    if (depth_ok) BuildConditionalAndRecurse(items_by_rank, paths, suffix);
    suffix->pop_back();
  }

  void BuildConditionalAndRecurse(const std::vector<ItemId>& items_by_rank,
                                  const std::vector<PathRef>& paths,
                                  Itemset* suffix) {
    const size_t nranks = items_by_rank.size();

    // Map every node's ts-list onto all items of its path ("temporary
    // array, one for each item" in Sec. 4.2.3): acc[r] becomes
    // TS^{beta + item_at_rank_r}.
    std::vector<TimestampList> acc(nranks);
    std::vector<uint32_t> touched;
    for (const PathRef& pr : paths) {
      for (uint32_t r : pr.ranks) {
        if (acc[r].empty()) touched.push_back(r);
        acc[r].insert(acc[r].end(), pr.ts->begin(), pr.ts->end());
      }
    }
    if (touched.empty()) return;

    // Keep items that can still extend beta (conditional Erec gate).
    std::vector<uint32_t> kept;
    for (uint32_t r : touched) {
      std::sort(acc[r].begin(), acc[r].end());
      if (PassesGate(acc[r])) kept.push_back(r);
    }
    if (kept.empty()) return;

    // Conditional item order: support-descending, ties by parent order.
    std::sort(kept.begin(), kept.end(), [&](uint32_t a, uint32_t b) {
      return acc[a].size() != acc[b].size() ? acc[a].size() > acc[b].size()
                                            : a < b;
    });
    std::vector<uint32_t> new_rank_of(nranks, kNotCandidate);
    std::vector<ItemId> cond_items_by_rank(kept.size());
    for (uint32_t nr = 0; nr < kept.size(); ++nr) {
      new_rank_of[kept[nr]] = nr;
      cond_items_by_rank[nr] = items_by_rank[kept[nr]];
    }

    TsPrefixTree cond(std::move(cond_items_by_rank));
    std::vector<uint32_t> mapped;
    for (const PathRef& pr : paths) {
      mapped.clear();
      for (uint32_t r : pr.ranks) {
        if (new_rank_of[r] != kNotCandidate) mapped.push_back(new_rank_of[r]);
      }
      if (mapped.empty()) continue;
      std::sort(mapped.begin(), mapped.end());
      cond.InsertPath(mapped, *pr.ts);
    }
    ++result_->stats.conditional_trees;
    if (!cond.empty()) MineTree(&cond, suffix);
  }

  const RpParams& params_;
  const RpGrowthOptions& options_;
  RpGrowthResult* result_;
};

/// Parallel mining phase: decompose the tree into per-suffix-item
/// projections and mine them on `threads` workers with thread-local
/// results, then merge. Counters sum to exactly the sequential values
/// because every subproblem is counted once, on whichever worker runs it.
void MineParallel(TsPrefixTree* tree, const RpParams& params,
                  const RpGrowthOptions& options, size_t threads,
                  RpGrowthResult* result) {
  std::vector<SuffixProjection> projections = ProjectSuffixItems(tree);

  // Heaviest projections first (LPT scheduling): with dynamic work
  // pulling this bounds the makespan tail by the single largest
  // subproblem. |TS^beta| is the cost proxy; ties keep bottom-up order,
  // so the schedule is deterministic.
  std::vector<size_t> order(projections.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return projections[a].ts_beta.size() > projections[b].ts_beta.size();
  });

  // Workers share one serialized sink; discovery order across workers is
  // nondeterministic, but calls never overlap.
  RpGrowthOptions worker_options = options;
  std::mutex sink_mutex;
  if (options.sink) {
    worker_options.sink = [&](const RecurringPattern& pattern) {
      std::lock_guard<std::mutex> lock(sink_mutex);
      options.sink(pattern);
    };
  }

  const size_t workers = std::min(threads, projections.size());
  std::vector<RpGrowthResult> locals(std::max<size_t>(workers, 1));
  std::vector<double> busy_seconds(locals.size(), 0.0);
  const std::vector<ItemId>& items_by_rank = tree->items_by_rank();
  ParallelFor(projections.size(), workers, [&](size_t worker, size_t i) {
    Stopwatch stopwatch;
    SuffixProjection& projection = projections[order[i]];
    Miner miner(params, worker_options, &locals[worker]);
    miner.MineProjection(items_by_rank, &projection);
    projection = SuffixProjection();  // Release the snapshot eagerly.
    busy_seconds[worker] += stopwatch.ElapsedSeconds();
  });

  for (size_t w = 0; w < locals.size(); ++w) {
    RpGrowthStats& partial = locals[w].stats;
    result->stats.conditional_trees += partial.conditional_trees;
    result->stats.patterns_examined += partial.patterns_examined;
    result->stats.patterns_emitted += partial.patterns_emitted;
    result->stats.mine_cpu_seconds += busy_seconds[w];
    result->patterns.insert(
        result->patterns.end(),
        std::make_move_iterator(locals[w].patterns.begin()),
        std::make_move_iterator(locals[w].patterns.end()));
  }
  result->stats.threads_used = std::max<size_t>(workers, 1);
}

}  // namespace

RpGrowthResult MineRecurringPatterns(const TransactionDatabase& db,
                                     const RpParams& params,
                                     const RpGrowthOptions& options) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  RpGrowthResult result;
  Stopwatch total;

  // Pass 1: RP-list (Algorithm 1).
  Stopwatch phase;
  RpList list = BuildRpList(db, params);
  result.stats.num_items = list.entries().size();
  result.stats.list_seconds = phase.ElapsedSeconds();

  // Candidate item order per pruning mode.
  std::vector<ItemId> items_by_rank;
  std::vector<uint32_t> rank_of(db.ItemUniverseSize(), kNotCandidate);
  if (options.pruning == PruningMode::kErec) {
    items_by_rank.reserve(list.candidates().size());
    for (const RpListEntry& e : list.candidates()) {
      items_by_rank.push_back(e.item);
    }
  } else {
    std::vector<RpListEntry> entries = list.entries();
    const uint64_t min_support = params.min_ps * params.min_rec;
    std::erase_if(entries, [&](const RpListEntry& e) {
      return e.support < min_support;
    });
    std::sort(entries.begin(), entries.end(),
              [](const RpListEntry& a, const RpListEntry& b) {
                return a.support != b.support ? a.support > b.support
                                              : a.item < b.item;
              });
    items_by_rank.reserve(entries.size());
    for (const RpListEntry& e : entries) items_by_rank.push_back(e.item);
  }
  for (uint32_t rank = 0; rank < items_by_rank.size(); ++rank) {
    rank_of[items_by_rank[rank]] = rank;
  }
  result.stats.num_candidate_items = items_by_rank.size();

  // Pass 2: RP-tree (Algorithms 2-3).
  phase.Restart();
  TsPrefixTree tree(std::move(items_by_rank));
  std::vector<uint32_t> ranks;
  for (const Transaction& tr : db.transactions()) {
    ranks.clear();
    for (ItemId item : tr.items) {
      if (rank_of[item] != kNotCandidate) ranks.push_back(rank_of[item]);
    }
    std::sort(ranks.begin(), ranks.end());
    tree.InsertTransaction(ranks, tr.ts);
  }
  result.stats.initial_tree_nodes = tree.NodeCount();
  result.stats.tree_seconds = phase.ElapsedSeconds();

  // Bottom-up mining (Algorithm 4): sequentially on this thread, or over
  // per-suffix-item projections on a worker pool.
  phase.Restart();
  const size_t threads = ResolveThreadCount(options.num_threads);
  if (threads <= 1) {
    Itemset suffix;
    Miner miner(params, options, &result);
    miner.MineTree(&tree, &suffix);
    result.stats.mine_seconds = phase.ElapsedSeconds();
    result.stats.mine_cpu_seconds = result.stats.mine_seconds;
    result.stats.threads_used = 1;
  } else {
    MineParallel(&tree, params, options, threads, &result);
    result.stats.mine_seconds = phase.ElapsedSeconds();
  }

  SortPatternsCanonically(&result.patterns);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace rpm
