#include "rpm/core/rp_growth.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "rpm/common/failpoint.h"
#include "rpm/common/logging.h"
#include "rpm/common/stopwatch.h"
#include "rpm/core/measures.h"
#include "rpm/core/projection.h"
#include "rpm/core/rp_tree.h"
#include "rpm/core/thread_pool.h"
#include "rpm/core/ts_merge.h"

namespace rpm {
namespace {

/// One (prefix path, ts-list) element of a conditional pattern base. The
/// ancestor ranks live in the owning frame's flat rank storage (no
/// per-path heap allocation); the ts-list is owned by the tree or a
/// projection and is a concatenation of sorted runs.
struct PathRef {
  uint32_t ranks_begin = 0;  // Offset into the frame's rank storage.
  uint32_t ranks_len = 0;
  const TimestampList* ts = nullptr;
};

/// Per-recursion-level scratch. Frames are pooled by depth and reused
/// across every subproblem mined at that depth, so after warm-up a whole
/// mining run performs no per-level allocations. A frame's buffers stay
/// live while deeper levels recurse (paths/rank_storage/ts_beta are read
/// by the level's own MineCollected tail), which is why frames are pooled
/// per depth rather than shared.
struct Frame {
  // Conditional-pattern-base collection (ProcessRank / MineProjection):
  std::vector<PathRef> paths;
  std::vector<uint32_t> rank_storage;   ///< Flat ancestor-rank slab.
  std::vector<TsRun> beta_runs;         ///< Run descriptors for TS^beta.
  TimestampList ts_beta;                ///< Merged TS^beta slab.
  std::vector<PeriodicInterval> intervals;  ///< Fused-gate output.
  // Conditional-tree construction (BuildConditionalAndRecurse); acc and
  // runs_by_rank are indexed by parent rank and grow-only, with only the
  // touched entries cleared after use.
  std::vector<TimestampList> acc;           ///< Merged TS^{beta+item}.
  std::vector<std::vector<TsRun>> runs_by_rank;
  std::vector<TsRun> path_runs;         ///< One path's run split.
  std::vector<uint32_t> touched;
  std::vector<uint32_t> kept;
  std::vector<uint32_t> new_rank_of;
  std::vector<uint32_t> mapped;

  size_t ByteFootprint() const {
    size_t bytes = paths.capacity() * sizeof(PathRef) +
                   rank_storage.capacity() * sizeof(uint32_t) +
                   beta_runs.capacity() * sizeof(TsRun) +
                   ts_beta.capacity() * sizeof(Timestamp) +
                   intervals.capacity() * sizeof(PeriodicInterval) +
                   path_runs.capacity() * sizeof(TsRun) +
                   (touched.capacity() + kept.capacity() +
                    new_rank_of.capacity() + mapped.capacity()) *
                       sizeof(uint32_t);
    bytes += acc.capacity() * sizeof(TimestampList);
    for (const TimestampList& slab : acc) {
      bytes += slab.capacity() * sizeof(Timestamp);
    }
    bytes += runs_by_rank.capacity() * sizeof(std::vector<TsRun>);
    for (const std::vector<TsRun>& runs : runs_by_rank) {
      bytes += runs.capacity() * sizeof(TsRun);
    }
    return bytes;
  }
};

/// Reusable per-miner (per-worker) scratch pool: one frame per recursion
/// depth plus the shared merge-kernel buffers and counters. Not
/// thread-safe — the parallel path allocates one pool per worker.
class MinerScratch {
 public:
  /// Frame for recursion depth `depth`; stable address across later calls
  /// (frames are held by unique_ptr so growing the pool never moves them).
  Frame& FrameAt(size_t depth) {
    while (frames_.size() <= depth) {
      frames_.push_back(std::make_unique<Frame>());
    }
    return *frames_[depth];
  }

  /// Bytes currently retained across all frames, merge buffers and the
  /// mask column. Scratch capacities only grow during a run, so sampling
  /// after mining yields the run's peak.
  size_t ByteFootprint() const {
    size_t bytes = merge.ByteFootprint() + ts_block.ByteFootprint();
    for (const std::unique_ptr<Frame>& frame : frames_) {
      bytes += frame->ByteFootprint();
    }
    return bytes;
  }

  MergeScratch merge;
  MergeCounters counters;
  TsBlockScratch ts_block;  ///< Break-mask column (core/ts_block.h).
  GateCounters gate;        ///< Gate-scan volume accumulated here.

 private:
  std::vector<std::unique_ptr<Frame>> frames_;
};

class Miner {
 public:
  Miner(const RpParams& params, const RpGrowthOptions& options,
        RpGrowthResult* result, MinerScratch* scratch)
      : params_(params),
        options_(options),
        result_(result),
        scratch_(scratch),
        checkpoint_(options.budget) {}

  /// How one governed top-level subproblem ended. Truncation is
  /// all-or-nothing per subproblem: anything but kComplete means the
  /// subproblem's patterns must be dropped from the committed result.
  enum class Outcome {
    kComplete,  ///< Mined fully; eligible to commit.
    kOverflow,  ///< Emitted more patterns than the cap headroom allows.
    kHardStop,  ///< Deadline / memory / cancellation checkpoint fired.
  };

  /// Mines the top-level subproblem of `rank` (one iteration of
  /// Algorithm 4's outer loop, minus the push-up — the driver pushes up
  /// only after a commit). `cap_headroom` is how many patterns this
  /// subproblem may emit before it is doomed to be dropped by the
  /// max-patterns cut; UINT64_MAX = unlimited.
  Outcome MineTopRank(TsPrefixTree* tree, size_t rank, Itemset* suffix,
                      uint64_t cap_headroom) {
    BeginSubproblem(cap_headroom);
    ProcessRank(tree, rank, suffix);
    return CurrentOutcome();
  }

  /// Mines one top-level projection: the independent subproblem of a
  /// single suffix item, pre-collected by ProjectSuffixItems (which also
  /// merged ts_beta, so no merge happens here).
  Outcome MineProjection(const std::vector<ItemId>& items_by_rank,
                         SuffixProjection* projection,
                         uint64_t cap_headroom) {
    BeginSubproblem(cap_headroom);
    Frame& frame = scratch_->FrameAt(depth_);
    frame.paths.clear();
    frame.rank_storage.clear();
    for (const ProjectedPath& p : projection->paths) {
      if (ShouldStop()) return CurrentOutcome();
      frame.paths.push_back({static_cast<uint32_t>(frame.rank_storage.size()),
                             static_cast<uint32_t>(p.ranks.size()), &p.ts});
      frame.rank_storage.insert(frame.rank_storage.end(), p.ranks.begin(),
                                p.ranks.end());
    }
    Itemset suffix;
    MineCollected(items_by_rank, frame, projection->ts_beta,
                  items_by_rank[projection->rank], &suffix);
    return CurrentOutcome();
  }

  /// Patterns emitted by the most recently mined subproblem (the commit
  /// delta the drivers use for the max-patterns arithmetic).
  uint64_t subproblem_emitted() const { return subproblem_emitted_; }

 private:
  void BeginSubproblem(uint64_t cap_headroom) {
    aborted_ = false;
    overflowed_ = false;
    subproblem_emitted_ = 0;
    cap_headroom_ = cap_headroom;
  }

  Outcome CurrentOutcome() const {
    if (aborted_) return Outcome::kHardStop;
    if (overflowed_) return Outcome::kOverflow;
    return Outcome::kComplete;
  }

  /// Budget checkpoint; sticky per subproblem. True = unwind now.
  bool ShouldStop() {
    if (aborted_ || overflowed_) return true;
    if (checkpoint_.Check()) {
      aborted_ = true;
      return true;
    }
    return false;
  }

  /// Algorithm 4 over one conditional tree. `suffix` holds the items of
  /// alpha; the tree is consumed (ts-lists pushed up, nodes detached) in
  /// the process.
  void MineTree(TsPrefixTree* tree, Itemset* suffix) {
    for (size_t rank = tree->num_ranks(); rank-- > 0;) {
      if (ShouldStop()) return;
      if (tree->HeadOfRank(rank) != nullptr) {
        ProcessRank(tree, rank, suffix);
        tree->PushUpAndRemove(rank);
      }
    }
  }
  /// True when beta (with the given full TS^beta) may still lead to
  /// recurring patterns — the paper's candidate test, or the weaker
  /// support-only gate in the ablation mode.
  bool PassesGate(const TimestampList& sorted_ts) const {
    if (options_.pruning == PruningMode::kSupportOnly) {
      return sorted_ts.size() >= params_.min_ps * params_.min_rec;
    }
    return ComputeRecurrenceUpperBound(sorted_ts, params_,
                                       &scratch_->ts_block,
                                       &scratch_->gate) >= params_.min_rec;
  }

  void ProcessRank(TsPrefixTree* tree, size_t rank, Itemset* suffix) {
    // Collect the conditional pattern base of ai and TS^beta's sorted runs
    // in one walk. Ancestor ranks go into the frame's flat slab (the
    // node-link walk reuses one path buffer; copying it into the slab is
    // the only per-node cost — no per-path vector is allocated).
    Frame& frame = scratch_->FrameAt(depth_);
    frame.paths.clear();
    frame.rank_storage.clear();
    frame.beta_runs.clear();
    tree->ForEachNodeOfRankWhile(
        rank, [&](const std::vector<uint32_t>& path, const TimestampList& ts) {
          if (ShouldStop()) return false;
          if (ts.empty() && path.empty()) return true;
          frame.paths.push_back(
              {static_cast<uint32_t>(frame.rank_storage.size()),
               static_cast<uint32_t>(path.size()), &ts});
          frame.rank_storage.insert(frame.rank_storage.end(), path.begin(),
                                    path.end());
          AppendSortedRuns(ts, &frame.beta_runs);
          return true;
        });
    if (aborted_ || overflowed_) return;  // Abandoned mid-walk.
    if (frame.beta_runs.empty()) return;  // No timestamps at this rank.
    MergeSortedRuns(frame.beta_runs.data(), frame.beta_runs.size(),
                    &frame.ts_beta, &scratch_->merge, &scratch_->counters);
    MineCollected(tree->items_by_rank(), frame, frame.ts_beta,
                  tree->ItemAtRank(rank), suffix);
  }

  /// Common tail of ProcessRank / MineProjection: the fused gate +
  /// getRecurrence (Algorithm 5) and the conditional recursion for suffix
  /// item `item`. `frame` is this depth's frame holding the conditional
  /// pattern base; `ts_beta` is sorted and nonempty.
  void MineCollected(const std::vector<ItemId>& items_by_rank, Frame& frame,
                     const TimestampList& ts_beta, ItemId item,
                     Itemset* suffix) {
    if (ShouldStop()) return;
    ++result_->stats.patterns_examined;

    // One scan decides the gate AND yields IPI^beta for getRecurrence —
    // previously the Erec gate scanned ts_beta and FindInterestingIntervals
    // rescanned every surviving list.
    bool gate_passed;
    if (options_.pruning == PruningMode::kSupportOnly) {
      gate_passed = ts_beta.size() >= params_.min_ps * params_.min_rec;
      if (gate_passed) {
        FindInterestingIntervalsInto(ts_beta, params_, &frame.intervals);
      }
    } else {
      gate_passed = ComputeGateAndIntervals(ts_beta, params_,
                                            &frame.intervals,
                                            &scratch_->ts_block,
                                            &scratch_->gate)
                        .passes;
    }
    if (!gate_passed) return;

    suffix->push_back(item);

    // getRecurrence (Algorithm 5): is beta itself recurring?
    if (frame.intervals.size() >= params_.min_rec) {
      RecurringPattern pattern;
      pattern.items = *suffix;
      std::sort(pattern.items.begin(), pattern.items.end());
      pattern.support = ts_beta.size();
      pattern.intervals.assign(frame.intervals.begin(),
                               frame.intervals.end());
      ++result_->stats.patterns_emitted;
      ++subproblem_emitted_;
      // Past the cap headroom this subproblem is dropped no matter what
      // else it finds — stop paying for it.
      if (subproblem_emitted_ > cap_headroom_) overflowed_ = true;
      if (options_.sink) options_.sink(pattern);
      if (options_.store_patterns) {
        result_->patterns.push_back(std::move(pattern));
      }
    }

    const bool depth_ok = options_.max_pattern_length == 0 ||
                          suffix->size() < options_.max_pattern_length;
    if (depth_ok && !overflowed_) {
      BuildConditionalAndRecurse(items_by_rank, frame, suffix);
    }
    suffix->pop_back();
  }

  void BuildConditionalAndRecurse(const std::vector<ItemId>& items_by_rank,
                                  Frame& frame, Itemset* suffix) {
    if (ShouldStop()) return;
    const size_t nranks = items_by_rank.size();
    if (frame.acc.size() < nranks) frame.acc.resize(nranks);
    if (frame.runs_by_rank.size() < nranks) frame.runs_by_rank.resize(nranks);

    // Map every node's ts-list onto all items of its path ("temporary
    // array, one for each item" in Sec. 4.2.3) — as run descriptors, split
    // once per path and shared by all of the path's ranks, so
    // runs_by_rank[r] describes TS^{beta + item_at_rank_r}.
    frame.touched.clear();
    for (const PathRef& pr : frame.paths) {
      if (pr.ts->empty()) continue;
      frame.path_runs.clear();
      AppendSortedRuns(*pr.ts, &frame.path_runs);
      const uint32_t* path_ranks = frame.rank_storage.data() + pr.ranks_begin;
      for (uint32_t k = 0; k < pr.ranks_len; ++k) {
        const uint32_t r = path_ranks[k];
        if (frame.runs_by_rank[r].empty()) frame.touched.push_back(r);
        frame.runs_by_rank[r].insert(frame.runs_by_rank[r].end(),
                                     frame.path_runs.begin(),
                                     frame.path_runs.end());
      }
    }
    if (frame.touched.empty()) return;

    // Merge each touched item's runs and keep items that can still extend
    // beta (conditional Erec gate). On a stop, the remaining touched
    // entries still need their runs cleared — the grow-only scratch
    // invariant ("runs_by_rank[r] empty between subproblems") must hold
    // for whatever this worker mines next.
    frame.kept.clear();
    bool stopped = false;
    for (uint32_t r : frame.touched) {
      if (!stopped && ShouldStop()) stopped = true;
      if (stopped) {
        frame.runs_by_rank[r].clear();
        continue;
      }
      MergeSortedRuns(frame.runs_by_rank[r].data(),
                      frame.runs_by_rank[r].size(), &frame.acc[r],
                      &scratch_->merge, &scratch_->counters);
      frame.runs_by_rank[r].clear();
      if (PassesGate(frame.acc[r])) frame.kept.push_back(r);
    }
    if (stopped || frame.kept.empty()) {
      for (uint32_t r : frame.touched) frame.acc[r].clear();
      return;
    }

    // Conditional item order: support-descending, ties by parent order.
    std::sort(frame.kept.begin(), frame.kept.end(),
              [&frame](uint32_t a, uint32_t b) {
                return frame.acc[a].size() != frame.acc[b].size()
                           ? frame.acc[a].size() > frame.acc[b].size()
                           : a < b;
              });
    frame.new_rank_of.assign(nranks, kNotCandidate);
    std::vector<ItemId> cond_items_by_rank(frame.kept.size());
    for (uint32_t nr = 0; nr < frame.kept.size(); ++nr) {
      frame.new_rank_of[frame.kept[nr]] = nr;
      cond_items_by_rank[nr] = items_by_rank[frame.kept[nr]];
    }
    // The merged accumulators are fully consumed (gate + ordering); release
    // their contents so the slabs only pin their high-water capacity.
    for (uint32_t r : frame.touched) frame.acc[r].clear();

    TsPrefixTree cond(std::move(cond_items_by_rank));
    for (const PathRef& pr : frame.paths) {
      frame.mapped.clear();
      const uint32_t* path_ranks = frame.rank_storage.data() + pr.ranks_begin;
      for (uint32_t k = 0; k < pr.ranks_len; ++k) {
        const uint32_t nr = frame.new_rank_of[path_ranks[k]];
        if (nr != kNotCandidate) frame.mapped.push_back(nr);
      }
      if (frame.mapped.empty()) continue;
      std::sort(frame.mapped.begin(), frame.mapped.end());
      cond.InsertPath(frame.mapped, *pr.ts);
    }
    ++result_->stats.conditional_trees;
    QueryBudget* budget = checkpoint_.budget();
    const size_t cond_bytes = budget != nullptr ? cond.ApproxBytes() : 0;
    if (budget != nullptr) {
      budget->AddNodes(cond.NodeCount());
      budget->AddTrackedBytes(cond_bytes);  // May trip the memory stop.
    }
    if (!cond.empty()) {
      ++depth_;
      MineTree(&cond, suffix);
      --depth_;
    }
    if (budget != nullptr) budget->ReleaseTrackedBytes(cond_bytes);
  }

  const RpParams& params_;
  const RpGrowthOptions& options_;
  RpGrowthResult* result_;
  MinerScratch* scratch_;
  BudgetCheckpointer checkpoint_;
  size_t depth_ = 0;  ///< Current recursion depth == frame index.
  // Per-subproblem governance state (reset by BeginSubproblem):
  bool aborted_ = false;     ///< A hard budget stop fired.
  bool overflowed_ = false;  ///< Emitted past the cap headroom.
  uint64_t subproblem_emitted_ = 0;
  uint64_t cap_headroom_ = std::numeric_limits<uint64_t>::max();
};

/// Folds a scratch pool's kernel counters into the run's stats.
/// scratch_bytes_peak takes the max (pools are per worker, so the peak is
/// the largest single pool); scratch_bytes_total sums the pools, which is
/// the figure comparable across thread counts.
void FoldScratchStats(const MinerScratch& scratch, RpGrowthStats* stats) {
  stats->merge_invocations += scratch.counters.merge_invocations;
  stats->runs_merged += scratch.counters.runs_merged;
  stats->timestamps_merged += scratch.counters.timestamps_merged;
  stats->gate_lists_scanned += scratch.gate.lists_scanned;
  stats->gate_gaps_scanned += scratch.gate.gaps_scanned;
  stats->gate_gaps_simd += scratch.gate.gaps_simd;
  const size_t bytes = scratch.ByteFootprint();
  stats->scratch_bytes_total += bytes;
  stats->scratch_bytes_peak = std::max(stats->scratch_bytes_peak, bytes);
}

/// Sequential top-level loop (Algorithm 4's outer loop) with per-
/// subproblem commit/rollback: a subproblem the budget hard-stops — or
/// that would push the committed total past the max-patterns cap — is
/// rolled out of the result wholesale and mining ends, so the result is
/// always the complete patterns of a contiguous bottom-up prefix of
/// suffix subproblems. Without a budget this degenerates to the plain
/// loop (headroom infinite, checkpoints a single branch).
void MineSequentialTopLevel(TsPrefixTree* tree, Miner* miner,
                            QueryBudget* budget, RpGrowthResult* result) {
  const uint64_t cap = budget != nullptr ? budget->limits().max_patterns : 0;
  uint64_t committed = 0;
  Itemset suffix;
  for (size_t rank = tree->num_ranks(); rank-- > 0;) {
    if (tree->HeadOfRank(rank) == nullptr) continue;
    const size_t patterns_mark = result->patterns.size();
    const size_t emitted_mark = result->stats.patterns_emitted;
    const uint64_t headroom =
        cap == 0 ? std::numeric_limits<uint64_t>::max() : cap - committed;
    const Miner::Outcome outcome =
        miner->MineTopRank(tree, rank, &suffix, headroom);
    if (outcome == Miner::Outcome::kComplete) {
      committed += miner->subproblem_emitted();
      tree->PushUpAndRemove(rank);
      continue;
    }
    // Drop the subproblem: roll its patterns out of the result. The
    // exploration counters intentionally keep the attempted work.
    result->patterns.resize(patterns_mark);
    result->stats.patterns_emitted = emitted_mark;
    result->truncated = true;
    if (outcome == Miner::Outcome::kOverflow && budget != nullptr) {
      budget->RequestStop(StopReason::kPatternCap);
    }
    break;
  }
  if (budget != nullptr) budget->AddPatterns(committed);
}

/// Parallel mining phase: decompose the tree into per-suffix-item
/// projections and mine them on `threads` workers with per-projection
/// results, then commit. Counters sum to exactly the sequential values
/// because every subproblem is counted once, on whichever worker runs it
/// (ts_beta merges are counted during projection, where they happen).
///
/// Budget governance commits the longest prefix (in bottom-up order —
/// the order ProjectSuffixItems returns) of subproblems that completed
/// and fit under the max-patterns cap; everything at and after the first
/// incomplete or cap-crossing subproblem is dropped, including
/// completed-but-later subproblems, so a max_patterns cut lands on the
/// identical subproblem the sequential path cuts at.
void MineParallel(TsPrefixTree* tree, const RpParams& params,
                  const RpGrowthOptions& options, size_t threads,
                  RpGrowthResult* result) {
  MergeCounters projection_counters;
  std::vector<SuffixProjection> projections =
      ProjectSuffixItems(tree, &projection_counters);
  result->stats.merge_invocations += projection_counters.merge_invocations;
  result->stats.runs_merged += projection_counters.runs_merged;
  result->stats.timestamps_merged += projection_counters.timestamps_merged;

  // Heaviest projections first (LPT scheduling): with dynamic work
  // pulling this bounds the makespan tail by the single largest
  // subproblem. |TS^beta| is the cost proxy; ties keep bottom-up order,
  // so the schedule is deterministic.
  std::vector<size_t> order(projections.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return projections[a].ts_beta.size() > projections[b].ts_beta.size();
  });

  // Workers share one serialized sink; discovery order across workers is
  // nondeterministic, but calls never overlap.
  RpGrowthOptions worker_options = options;
  std::mutex sink_mutex;
  if (options.sink) {
    worker_options.sink = [&](const RecurringPattern& pattern) {
      std::lock_guard<std::mutex> lock(sink_mutex);
      options.sink(pattern);
    };
  }

  QueryBudget* budget = options.budget;
  const uint64_t cap = budget != nullptr ? budget->limits().max_patterns : 0;
  // A worker cannot know the committed total while mining out of order,
  // but a subproblem whose own count exceeds the whole cap is doomed
  // regardless of it — that is the only early-abort the cap allows
  // without perturbing the deterministic cut.
  const uint64_t worker_headroom =
      cap == 0 ? std::numeric_limits<uint64_t>::max() : cap;

  /// Per-projection (not per-worker) result so the commit walk below can
  /// keep the exact bottom-up prefix of completed subproblems.
  struct Subproblem {
    RpGrowthResult local;
    Miner::Outcome outcome = Miner::Outcome::kHardStop;  // = not dispatched.
    uint64_t emitted = 0;
  };
  std::vector<Subproblem> subs(projections.size());

  const size_t workers = std::min(threads, projections.size());
  std::vector<MinerScratch> scratches(std::max<size_t>(workers, 1));
  std::vector<double> busy_seconds(scratches.size(), 0.0);
  const std::vector<ItemId>& items_by_rank = tree->items_by_rank();
  std::function<bool()> should_stop;
  if (budget != nullptr) {
    should_stop = [budget] { return budget->stop_requested(); };
  }
  const size_t participants = ParallelFor(
      projections.size(), workers,
      [&](size_t worker, size_t i) {
        if (FailpointTriggered("worker.task")) {
          throw std::runtime_error("injected worker-task fault");
        }
        Stopwatch stopwatch;
        SuffixProjection& projection = projections[order[i]];
        Subproblem& sub = subs[order[i]];
        Miner miner(params, worker_options, &sub.local, &scratches[worker]);
        sub.outcome =
            miner.MineProjection(items_by_rank, &projection, worker_headroom);
        sub.emitted = miner.subproblem_emitted();
        projection = SuffixProjection();  // Release the snapshot eagerly.
        busy_seconds[worker] += stopwatch.ElapsedSeconds();
      },
      should_stop);

  // Commit walk: keep subproblems in bottom-up order until the first one
  // that is incomplete or would cross the max-patterns cap.
  uint64_t committed = 0;
  size_t cut = subs.size();
  bool cap_cut = false;
  for (size_t p = 0; p < subs.size(); ++p) {
    const Subproblem& sub = subs[p];
    if (sub.outcome == Miner::Outcome::kHardStop) {
      cut = p;
      break;
    }
    if (sub.outcome == Miner::Outcome::kOverflow ||
        (cap != 0 && committed + sub.emitted > cap)) {
      cut = p;
      cap_cut = true;
      break;
    }
    committed += sub.emitted;
  }
  for (size_t p = 0; p < cut; ++p) {
    result->stats.patterns_emitted += subs[p].local.stats.patterns_emitted;
    result->patterns.insert(
        result->patterns.end(),
        std::make_move_iterator(subs[p].local.patterns.begin()),
        std::make_move_iterator(subs[p].local.patterns.end()));
  }
  if (cut < subs.size()) {
    result->truncated = true;
    if (cap_cut && budget != nullptr && !budget->hard_stopped()) {
      budget->RequestStop(StopReason::kPatternCap);
    }
  }
  // Exploration counters keep every attempted subproblem, committed or
  // dropped — they account work done, not results kept.
  for (const Subproblem& sub : subs) {
    result->stats.conditional_trees += sub.local.stats.conditional_trees;
    result->stats.patterns_examined += sub.local.stats.patterns_examined;
  }
  for (size_t w = 0; w < scratches.size(); ++w) {
    result->stats.mine_cpu_seconds += busy_seconds[w];
    FoldScratchStats(scratches[w], &result->stats);
  }
  if (budget != nullptr) budget->AddPatterns(committed);
  result->stats.threads_used = std::max<size_t>(participants, size_t{1});
}

}  // namespace

PreparedMining PrepareMining(const TransactionDatabase& db,
                             const RpParams& params, PruningMode pruning,
                             QueryBudget* budget, size_t tree_threads) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  PreparedMining prepared;
  prepared.params = params;
  prepared.pruning = pruning;

  // Pass 1: RP-list (Algorithm 1).
  Stopwatch phase;
  prepared.list = BuildRpList(db, params, budget);
  prepared.num_items = prepared.list.entries().size();
  prepared.list_seconds = phase.ElapsedSeconds();
  if (budget != nullptr && budget->hard_stopped()) {
    return prepared;  // Aborted mid-scan; the caller must discard.
  }

  // Candidate item order per pruning mode.
  if (pruning == PruningMode::kErec) {
    prepared.items_by_rank.reserve(prepared.list.candidates().size());
    for (const RpListEntry& e : prepared.list.candidates()) {
      prepared.items_by_rank.push_back(e.item);
    }
  } else {
    std::vector<RpListEntry> entries = prepared.list.entries();
    const uint64_t min_support = params.min_ps * params.min_rec;
    std::erase_if(entries, [&](const RpListEntry& e) {
      return e.support < min_support;
    });
    std::sort(entries.begin(), entries.end(),
              [](const RpListEntry& a, const RpListEntry& b) {
                return a.support != b.support ? a.support > b.support
                                              : a.item < b.item;
              });
    prepared.items_by_rank.reserve(entries.size());
    for (const RpListEntry& e : entries) {
      prepared.items_by_rank.push_back(e.item);
    }
  }
  prepared.num_candidate_items = prepared.items_by_rank.size();

  // Pass 2: RP-tree (Algorithms 2-3).
  phase.Restart();
  prepared.tree = BuildRankedTree(db, prepared.items_by_rank, budget,
                                  tree_threads, &prepared.tree_build);
  prepared.initial_tree_nodes = prepared.tree.NodeCount();
  prepared.tree_seconds = phase.ElapsedSeconds();
  return prepared;
}

namespace {

/// Don't split the build below this many transactions per partition: a
/// tiny partial trie costs more to fold than its build saves. Chosen so
/// the parallel path engages on the test corpora (>= 1024 transactions at
/// two workers) while toy databases stay on the sequential reference.
constexpr size_t kMinTransactionsPerBuildPartition = 256;

/// Inserts transactions [begin, end) of `db` into `tree`, checkpointing
/// the budget per transaction and reporting the tree's byte growth.
/// Returns the bytes reported (the caller releases them when the build's
/// accounting nets out).
size_t InsertTransactionRange(const TransactionDatabase& db,
                              const std::vector<uint32_t>& rank_of,
                              size_t begin, size_t end, QueryBudget* budget,
                              TsPrefixTree* tree) {
  BudgetCheckpointer checkpoint(budget);
  size_t reported_bytes = 0;
  std::vector<uint32_t> ranks;
  for (size_t i = begin; i < end; ++i) {
    if (checkpoint.Check()) break;  // Partial build; the caller discards.
    const Transaction& tr = db.transactions()[i];
    ranks.clear();
    for (ItemId item : tr.items) {
      if (rank_of[item] != kNotCandidate) ranks.push_back(rank_of[item]);
    }
    std::sort(ranks.begin(), ranks.end());
    tree->InsertTransaction(ranks, tr.ts);
    if (budget != nullptr) {
      const size_t now = tree->ApproxBytes();
      if (now > reported_bytes) {
        budget->AddTrackedBytes(now - reported_bytes);  // May trip memory.
        reported_bytes = now;
      }
    }
  }
  return reported_bytes;
}

}  // namespace

TsPrefixTree BuildRankedTree(const TransactionDatabase& db,
                             const std::vector<ItemId>& items_by_rank,
                             QueryBudget* budget, size_t num_threads,
                             TreeBuildStats* stats) {
  std::vector<uint32_t> rank_of(db.ItemUniverseSize(), kNotCandidate);
  for (uint32_t rank = 0; rank < items_by_rank.size(); ++rank) {
    RPM_CHECK(items_by_rank[rank] < rank_of.size() &&
              rank_of[items_by_rank[rank]] == kNotCandidate)
        << "invalid candidate order";
    rank_of[items_by_rank[rank]] = rank;
  }
  if (stats != nullptr) *stats = TreeBuildStats{};
  const size_t num_transactions = db.transactions().size();
  const size_t partitions = std::min(
      ResolveThreadCount(num_threads),
      std::max<size_t>(1, num_transactions / kMinTransactionsPerBuildPartition));

  if (partitions <= 1) {
    // Sequential reference path.
    TsPrefixTree tree(items_by_rank);
    const size_t reported =
        InsertTransactionRange(db, rank_of, 0, num_transactions, budget,
                               &tree);
    // Net the build-time accounting back out (the peak was captured); the
    // caller re-tracks the finished tree for its mining phase.
    if (budget != nullptr) budget->ReleaseTrackedBytes(reported);
    return tree;
  }

  // Parallel path: one partial trie per contiguous transaction range.
  // Partition boundaries are index arithmetic, so the decomposition is
  // deterministic for a given (db, partitions).
  std::vector<TsPrefixTree> partials;
  partials.reserve(partitions);
  for (size_t p = 0; p < partitions; ++p) partials.emplace_back(items_by_rank);
  std::vector<size_t> reported(partitions, 0);
  const auto partition_begin = [&](size_t p) {
    return num_transactions * p / partitions;
  };
  std::function<bool()> should_stop;
  if (budget != nullptr) {
    should_stop = [budget] { return budget->stop_requested(); };
  }
  const size_t participants = ParallelFor(
      partitions, partitions,
      [&](size_t, size_t p) {
        reported[p] =
            InsertTransactionRange(db, rank_of, partition_begin(p),
                                   partition_begin(p + 1), budget,
                                   &partials[p]);
      },
      should_stop);
  if (stats != nullptr) {
    stats->threads_used = std::max<size_t>(participants, 1);
  }

  // Fold the partials into partition 0's trie, in partition order (the
  // correctness argument lives in rp_tree.h / DESIGN.md §8.3). The master
  // grows by the duplicated interior nodes and the moved ts-lists; report
  // that growth against the budget too — during the fold both the master
  // and the not-yet-absorbed partials are genuinely live. Checkpoint per
  // fold step: a build stopped mid-fold is partial and gets discarded by
  // the caller, exactly like one stopped mid-scan.
  Stopwatch merge_watch;
  BudgetCheckpointer checkpoint(budget);
  TsPrefixTree tree = std::move(partials[0]);
  size_t merge_reported = 0;
  size_t folded = 0;
  size_t folded_nodes = 0;
  for (size_t p = 1; p < partitions; ++p) {
    if (checkpoint.Check()) break;  // Partial build; the caller discards.
    folded_nodes += partials[p].NodeCount();
    const size_t before = tree.ApproxBytes();
    tree.MergeAppendFrom(std::move(partials[p]));
    ++folded;
    if (budget != nullptr) {
      const size_t after = tree.ApproxBytes();
      if (after > before) {
        budget->AddTrackedBytes(after - before);  // May trip memory.
        merge_reported += after - before;
      }
    }
  }
  if (budget != nullptr) {
    size_t total = merge_reported;
    for (size_t bytes : reported) total += bytes;
    budget->ReleaseTrackedBytes(total);
  }
  if (stats != nullptr) {
    stats->partials_merged = folded;
    stats->merged_nodes = folded_nodes;
    stats->merge_seconds = merge_watch.ElapsedSeconds();
  }
  return tree;
}

RpGrowthResult MineFromPrepared(const PreparedMining& prepared,
                                TsPrefixTree tree, const RpParams& params,
                                const RpGrowthOptions& options) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();
  RPM_CHECK(params.period == prepared.params.period &&
            params.max_gap_violations == prepared.params.max_gap_violations &&
            params.min_ps >= prepared.params.min_ps &&
            params.min_rec >= prepared.params.min_rec &&
            options.pruning == prepared.pruning)
      << "query params looser than the prepared build: " << params.ToString()
      << " vs " << prepared.params.ToString();
  RpGrowthResult result;
  Stopwatch total;
  result.stats.num_items = prepared.num_items;
  result.stats.num_candidate_items = prepared.num_candidate_items;
  result.stats.initial_tree_nodes = prepared.initial_tree_nodes;
  result.stats.list_seconds = prepared.list_seconds;
  result.stats.tree_seconds = prepared.tree_seconds;
  result.stats.tree_build_threads = prepared.tree_build.threads_used;
  result.stats.tree_partials_merged = prepared.tree_build.partials_merged;
  result.stats.tree_merge_seconds = prepared.tree_build.merge_seconds;

  QueryBudget* budget = options.budget;
  const size_t tree_bytes = budget != nullptr ? tree.ApproxBytes() : 0;
  if (budget != nullptr) {
    budget->AddNodes(tree.NodeCount());
    budget->AddTrackedBytes(tree_bytes);  // May trip the memory stop.
  }

  // Bottom-up mining (Algorithm 4): sequentially on this thread, or over
  // per-suffix-item projections on a worker pool.
  Stopwatch phase;
  const size_t threads = ResolveThreadCount(options.num_threads);
  if (threads <= 1) {
    MinerScratch scratch;
    Miner miner(params, options, &result, &scratch);
    MineSequentialTopLevel(&tree, &miner, budget, &result);
    FoldScratchStats(scratch, &result.stats);
    result.stats.mine_seconds = phase.ElapsedSeconds();
    result.stats.mine_cpu_seconds = result.stats.mine_seconds;
    result.stats.threads_used = 1;
  } else {
    MineParallel(&tree, params, options, threads, &result);
    result.stats.mine_seconds = phase.ElapsedSeconds();
  }

  if (budget != nullptr) {
    budget->ReleaseTrackedBytes(tree_bytes);
    result.status = budget->status();
  }
  SortPatternsCanonically(&result.patterns);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

RpGrowthResult MineRecurringPatterns(const TransactionDatabase& db,
                                     const RpParams& params,
                                     const RpGrowthOptions& options) {
  Stopwatch total;
  // The tree build parallelizes with the same knob as the mining phase.
  PreparedMining prepared = PrepareMining(db, params, options.pruning,
                                          options.budget,
                                          options.num_threads);
  if (options.budget != nullptr && options.budget->hard_stopped()) {
    // The build itself was stopped; a partial tree must never be mined
    // (its ts-lists are incomplete, not a subproblem prefix).
    RpGrowthResult result;
    result.stats.num_items = prepared.num_items;
    result.stats.num_candidate_items = prepared.num_candidate_items;
    result.stats.initial_tree_nodes = prepared.initial_tree_nodes;
    result.stats.list_seconds = prepared.list_seconds;
    result.stats.tree_seconds = prepared.tree_seconds;
    result.stats.tree_build_threads = prepared.tree_build.threads_used;
    result.stats.tree_partials_merged = prepared.tree_build.partials_merged;
    result.stats.tree_merge_seconds = prepared.tree_build.merge_seconds;
    result.status = options.budget->status();
    result.truncated = true;
    result.stats.total_seconds = total.ElapsedSeconds();
    return result;
  }
  RpGrowthResult result = MineFromPrepared(
      prepared, std::move(prepared.tree), params, options);
  result.stats.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace rpm
