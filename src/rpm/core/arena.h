// Chunked bump allocator for tree nodes.
//
// Mining builds and tears down thousands of conditional RP-trees; a
// general-purpose allocator pays per-node malloc/free plus pointer-chasing
// over scattered nodes. The arena hands out objects from large contiguous
// chunks (one pointer bump per allocation) and releases everything in one
// sweep when the owning tree dies. Addresses are stable for the arena's
// lifetime, which the RP-tree relies on for parent/child/node-link
// pointers.

#ifndef RPM_CORE_ARENA_H_
#define RPM_CORE_ARENA_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace rpm {

/// Bump-allocates objects of type T in chunks of `ChunkCapacity`. Objects
/// are destroyed (in allocation order, chunk by chunk) only when the arena
/// itself is destroyed or Reset(); there is no per-object free.
/// Move-only, like the trees built on top of it.
template <typename T, size_t ChunkCapacity = 256>
class Arena {
  static_assert(ChunkCapacity > 0);

 public:
  Arena() = default;
  ~Arena() { Reset(); }

  Arena(Arena&& other) noexcept
      : chunks_(std::move(other.chunks_)), used_in_last_(other.used_in_last_) {
    other.chunks_.clear();
    other.used_in_last_ = ChunkCapacity;
  }
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      Reset();
      chunks_ = std::move(other.chunks_);
      used_in_last_ = other.used_in_last_;
      other.chunks_.clear();
      other.used_in_last_ = ChunkCapacity;
    }
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Constructs a T in place and returns its (stable) address.
  template <typename... Args>
  T* Create(Args&&... args) {
    if (used_in_last_ == ChunkCapacity) {
      chunks_.push_back(std::make_unique<Chunk>());
      used_in_last_ = 0;
    }
    T* slot =
        reinterpret_cast<T*>(chunks_.back()->storage) + used_in_last_;
    ++used_in_last_;
    return ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
  }

  /// Destroys every allocated object and frees all chunks.
  void Reset() {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const size_t count =
          (c + 1 == chunks_.size()) ? used_in_last_ : ChunkCapacity;
      T* objects = reinterpret_cast<T*>(chunks_[c]->storage);
      for (size_t i = 0; i < count; ++i) objects[i].~T();
    }
    chunks_.clear();
    used_in_last_ = ChunkCapacity;
  }

  size_t size() const {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * ChunkCapacity + used_in_last_;
  }

 private:
  struct Chunk {
    alignas(T) std::byte storage[sizeof(T) * ChunkCapacity];
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  /// Slots used in chunks_.back(); ChunkCapacity forces a fresh chunk on
  /// the next Create (also the empty-arena state).
  size_t used_in_last_ = ChunkCapacity;
};

}  // namespace rpm

#endif  // RPM_CORE_ARENA_H_
