// Run-aware ts-list merge kernel for the RP-growth hot path.
//
// RP-growth spends most of its time assembling TS^beta lists: at every
// conditional level the miner unions the ts-lists of a rank's nodes. Those
// lists are never random — each one is a concatenation of sorted runs
// (transactions arrive in timestamp order, and push-up / InsertPath only
// ever append whole sorted lists), so sorting the concatenation with
// std::sort discards structure the RP-tree maintained all along. This
// kernel exploits it: split every contribution into its maximal sorted
// runs (AppendSortedRuns — O(n), one run for an already-sorted list) and
// merge the runs (MergeSortedRuns — adaptive two-run fast path, bottom-up
// natural mergesort over ping-pong buffers for k runs, introsort fallback
// when runs degenerate to a few elements each). The output is the sorted
// union, element-for-element identical to concat + std::sort, in
// O(n log k) instead of O(n log n) — and O(n) straight block copies when
// the runs barely interleave.
//
// All scratch lives in caller-owned MergeScratch so steady-state merging
// performs no heap allocation; MergeCounters feeds the hot-path
// instrumentation surfaced through RpGrowthStats.

#ifndef RPM_CORE_TS_MERGE_H_
#define RPM_CORE_TS_MERGE_H_

#include <cstddef>
#include <vector>

#include "rpm/timeseries/types.h"

namespace rpm {

/// One sorted (non-decreasing) run: the half-open range
/// [data, data + size). Does not own its storage; the referenced
/// timestamps must outlive every kernel call using the run.
struct TsRun {
  const Timestamp* data = nullptr;
  size_t size = 0;
};

/// Hot-path counters, aggregated into RpGrowthStats by the miners.
struct MergeCounters {
  size_t merge_invocations = 0;  ///< MergeSortedRuns calls.
  size_t runs_merged = 0;        ///< Non-empty input runs consumed.
  size_t timestamps_merged = 0;  ///< Timestamps written to merge outputs.
};

/// Reusable kernel-internal buffers (run cursors + the ping-pong merge
/// slabs of the natural-mergesort rounds). One per miner / worker; a
/// MergeScratch must not be shared by concurrent merges.
struct MergeScratch {
  std::vector<TsRun> active;  ///< Run cursors of the ongoing merge.
  std::vector<size_t> bounds;  ///< Run boundaries between merge rounds.
  TimestampList ping;          ///< Round source slab.
  TimestampList pong;          ///< Round destination slab.

  /// Bytes retained by the scratch buffers (for scratch_bytes_peak).
  size_t ByteFootprint() const {
    return active.capacity() * sizeof(TsRun) +
           bounds.capacity() * sizeof(size_t) +
           (ping.capacity() + pong.capacity()) * sizeof(Timestamp);
  }
};

/// Splits `ts` into its maximal non-decreasing runs and appends one TsRun
/// per run to *runs. A sorted list contributes exactly one run; an empty
/// list contributes none. The runs alias `ts`'s storage.
void AppendSortedRuns(const TimestampList& ts, std::vector<TsRun>* runs);

/// Merges `num_runs` sorted runs into *out, replacing its contents. The
/// result is exactly what concatenating the runs and std::sort-ing would
/// produce (duplicates kept). Empty runs are permitted and skipped.
/// *out must not alias any input run's storage.
void MergeSortedRuns(const TsRun* runs, size_t num_runs, TimestampList* out,
                     MergeScratch* scratch, MergeCounters* counters);

}  // namespace rpm

#endif  // RPM_CORE_TS_MERGE_H_
