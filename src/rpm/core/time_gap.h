// Overflow-safe gap arithmetic on ordered timestamps.
//
// Every periodicity test in the system is some flavour of
// "cur - prev <= period" over a sorted timestamp list. The naive signed
// subtraction is undefined behaviour once prev and cur straddle more than
// half the int64 range (e.g. prev near INT64_MIN, cur near INT64_MAX —
// legal inputs: timestamps are unit-agnostic int64s and readers accept the
// full range). The helpers below compute the true non-negative gap in
// uint64, which is exact for any ordered int64 pair: the mathematical
// difference lies in [0, 2^64) and two's-complement unsigned subtraction
// yields it without overflow.
//
// Shared by the batch measures (measures.cc), the RP-list scan
// (rp_list.cc) and the streaming RP-list (streaming_rp_list.cc) so all
// three agree bit-for-bit on boundary cases — a precondition of the
// differential harness in src/rpm/verify/.

#ifndef RPM_CORE_TIME_GAP_H_
#define RPM_CORE_TIME_GAP_H_

#include <cstdint>
#include <limits>

#include "rpm/timeseries/types.h"

namespace rpm {

/// The exact gap cur - prev of two ordered timestamps (prev <= cur).
inline uint64_t TimestampGap(Timestamp prev, Timestamp cur) {
  return static_cast<uint64_t>(cur) - static_cast<uint64_t>(prev);
}

/// cur - prev <= period, without signed overflow. Preconditions:
/// prev <= cur, period > 0.
inline bool GapWithinPeriod(Timestamp prev, Timestamp cur,
                            Timestamp period) {
  return TimestampGap(prev, cur) <= static_cast<uint64_t>(period);
}

/// The gap clamped into Timestamp's range, for APIs that report
/// inter-arrival times as Timestamp values. A gap wider than int64 can
/// only arise from timestamps straddling most of the int64 range; such a
/// gap exceeds every valid period, so saturation never changes a
/// periodicity decision.
inline Timestamp SaturatingGap(Timestamp prev, Timestamp cur) {
  const uint64_t gap = TimestampGap(prev, cur);
  const uint64_t cap =
      static_cast<uint64_t>(std::numeric_limits<Timestamp>::max());
  return gap > cap ? std::numeric_limits<Timestamp>::max()
                   : static_cast<Timestamp>(gap);
}

/// The inclusive start of the sliding window [now - window, now],
/// saturating at the Timestamp minimum. Precondition: window >= 0. The
/// naive `now - window` is undefined behaviour when `now` sits near
/// INT64_MIN; saturation gives the only sensible reading — a window wider
/// than the remaining timestamp range retires nothing, i.e. behaves as
/// unbounded. Shared by WindowedRpList, WindowedMiner and the engine's
/// windowed executor so every layer agrees on the cutoff bit-for-bit.
inline Timestamp SaturatingWindowStart(Timestamp now, Timestamp window) {
  if (TimestampGap(std::numeric_limits<Timestamp>::min(), now) <
      static_cast<uint64_t>(window)) {
    return std::numeric_limits<Timestamp>::min();
  }
  return static_cast<Timestamp>(static_cast<uint64_t>(now) -
                                static_cast<uint64_t>(window));
}

}  // namespace rpm

#endif  // RPM_CORE_TIME_GAP_H_
