// The paper's interestingness measures over point sequences:
// inter-arrival times (Definition 4), periodic-interval decomposition
// (Definitions 5-6), interesting intervals (Definition 7, Algorithm 5),
// recurrence (Definition 8) and the Erec pruning bound (Sec. 4.1).
//
// Everything here operates on a sorted, duplicate-free TimestampList TS^X;
// miners obtain those lists from their tree structures, tests and the
// brute-force miner from TransactionDatabase::TimestampsOf().

#ifndef RPM_CORE_MEASURES_H_
#define RPM_CORE_MEASURES_H_

#include <cstdint>
#include <vector>

#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/core/ts_block.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// IAT^X = {ts_{k+1} - ts_k}: one element per consecutive pair
/// (Definition 4, Example 4). Empty when |ts| < 2.
std::vector<Timestamp> InterArrivalTimes(const TimestampList& ts);

/// Decomposes TS^X into all maximal periodic-intervals: maximal runs of
/// consecutive timestamps whose gaps are <= period, each annotated with its
/// periodic-support (Definitions 5-6, Example 5). A single isolated
/// timestamp forms an interval [t, t] with ps = 1.
std::vector<PeriodicInterval> DecomposePeriodicIntervals(
    const TimestampList& ts, Timestamp period);

/// Keeps the interesting intervals: ps >= min_ps (Definition 7).
std::vector<PeriodicInterval> SelectInterestingIntervals(
    const std::vector<PeriodicInterval>& intervals, uint64_t min_ps);

/// Single pass producing IPI^X directly (the paper's Algorithm 5,
/// getRecurrence, returning the intervals rather than only the boolean).
std::vector<PeriodicInterval> FindInterestingIntervals(
    const TimestampList& ts, Timestamp period, uint64_t min_ps);

/// Allocation-free variant: clears *out and fills it with IPI^X. The
/// miner's hot path routes through this so one scratch vector is reused
/// across every gate evaluation.
void FindInterestingIntervalsInto(const TimestampList& ts, Timestamp period,
                                  uint64_t min_ps,
                                  std::vector<PeriodicInterval>* out);

/// Rec(X) = |IPI^X| (Definition 8).
uint64_t ComputeRecurrence(const TimestampList& ts, Timestamp period,
                           uint64_t min_ps);

/// Estimated maximum recurrence Erec(X) = sum_i floor(ps_i / min_ps) over
/// *all* periodic-intervals (Sec. 4.1). Upper-bounds Rec(Y) for every
/// Y >= X (Properties 1-2); computed in one pass without materialising the
/// decomposition.
uint64_t ComputeErec(const TimestampList& ts, Timestamp period,
                     uint64_t min_ps);

// --- Noise-tolerant extension (paper Sec. 6 future work) -------------------

/// Like FindInterestingIntervals, but an interval may absorb up to
/// `max_violations` inter-arrival times exceeding `period` before being
/// split. Timestamps bridged by a violated gap still count toward the
/// interval's periodic-support. With max_violations == 0 this is exactly
/// the paper's model.
std::vector<PeriodicInterval> FindInterestingIntervalsTolerant(
    const TimestampList& ts, Timestamp period, uint64_t min_ps,
    uint32_t max_violations);

/// Allocation-free variant of FindInterestingIntervalsTolerant.
void FindInterestingIntervalsTolerantInto(const TimestampList& ts,
                                          Timestamp period, uint64_t min_ps,
                                          uint32_t max_violations,
                                          std::vector<PeriodicInterval>* out);

/// Anti-monotone recurrence upper bound valid under gap tolerance:
/// floor(|TS^X| / min_ps). (The paper's Erec is *not* a valid bound once
/// intervals may merge across violated gaps, because splitting a merged
/// run loses floor mass; each interesting interval still consumes at least
/// min_ps distinct timestamps, so the support quotient is safe.)
uint64_t ComputeTolerantRecurrenceBound(size_t support, uint64_t min_ps);

// --- Parameter-dispatched entry points used by the miners ------------------

/// FindInterestingIntervals / ...Tolerant according to params.
std::vector<PeriodicInterval> FindInterestingIntervals(
    const TimestampList& ts, const RpParams& params);

/// Allocation-free variant of the params-dispatched
/// FindInterestingIntervals: clears *out, then fills it with IPI^X.
void FindInterestingIntervalsInto(const TimestampList& ts,
                                  const RpParams& params,
                                  std::vector<PeriodicInterval>* out);

/// Erec (exact model) or the tolerant support bound, per params.
uint64_t ComputeRecurrenceUpperBound(const TimestampList& ts,
                                     const RpParams& params);

/// Fused gate + getRecurrence (Sec. 4.1 + Algorithm 5 in one scan).
struct GateOutcome {
  /// The recurrence upper bound under `params`: Erec in the exact model,
  /// the support quotient under gap tolerance.
  uint64_t recurrence_upper_bound = 0;
  /// recurrence_upper_bound >= params.min_rec.
  bool passes = false;
};

/// Computes the recurrence upper bound AND the interesting intervals of a
/// sorted `ts` in a single pass. *intervals is cleared first; on return it
/// holds IPI^X exactly when the gate passes (left empty otherwise), so a
/// surviving ts-list is scanned once instead of once for the gate and
/// again for the intervals. Under gap tolerance the bound is O(1) and the
/// list is scanned only when the gate passes — the previous
/// gate-then-rescan pair collapses the same way.
GateOutcome ComputeGateAndIntervals(const TimestampList& ts,
                                    const RpParams& params,
                                    std::vector<PeriodicInterval>* intervals);

// --- Columnar (SIMD) hot-path overloads ------------------------------------
//
// Identical results to the scratch-free entry points — the miners route
// through these so long ts-lists use the core/ts_block.h break-mask
// kernels (one vectorized compare pass, then a bit-walk that rebuilds the
// exact run segmentation). Lists below the crossover length stay on the
// scalar loops; either way the outcome is bit-identical, so callers never
// need to know which path ran. `scratch` is the reusable mask buffer (one
// per worker); `counters`, when non-null, accumulates scan volume for the
// stats plumbing. Passing scratch == nullptr degrades to the scalar path.

/// Scratch-backed fused gate + Algorithm-5 scan.
GateOutcome ComputeGateAndIntervals(const TimestampList& ts,
                                    const RpParams& params,
                                    std::vector<PeriodicInterval>* intervals,
                                    TsBlockScratch* scratch,
                                    GateCounters* counters);

/// Scratch-backed recurrence upper bound (Erec in the exact model; the
/// O(1) support quotient under gap tolerance, which never scans).
uint64_t ComputeRecurrenceUpperBound(const TimestampList& ts,
                                     const RpParams& params,
                                     TsBlockScratch* scratch,
                                     GateCounters* counters);

}  // namespace rpm

#endif  // RPM_CORE_MEASURES_H_
