// Condensed representations of recurring-pattern result sets.
//
// Low thresholds can yield tens of thousands of patterns (Table 5), most
// of which are redundant sub-patterns of each other. Two standard
// reductions from the frequent-pattern literature apply directly:
//
//  * closed    — keep X only if no proper superset occurs in exactly the
//                same transactions (computed against the database, so the
//                result is exact regardless of what was mined);
//  * maximal   — keep X only if no proper superset is itself in the result
//                set (relative to the mined set; the stronger reduction).

#ifndef RPM_CORE_PATTERN_FILTERS_H_
#define RPM_CORE_PATTERN_FILTERS_H_

#include <vector>

#include "rpm/core/pattern.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm {

/// The closure of `pattern`: the intersection of all transactions
/// containing it (= the unique largest superset with identical TS^X).
/// Precondition: pattern occurs at least once. An absent pattern returns
/// itself.
Itemset ClosureOf(const TransactionDatabase& db, const Itemset& pattern);

/// Keeps exactly the closed patterns: X with ClosureOf(X) == X.
/// Order-preserving.
std::vector<RecurringPattern> FilterClosed(
    const TransactionDatabase& db, std::vector<RecurringPattern> patterns);

/// Keeps the maximal patterns: those with no proper superset in
/// `patterns`. Order-preserving.
std::vector<RecurringPattern> FilterMaximal(
    std::vector<RecurringPattern> patterns);

}  // namespace rpm

#endif  // RPM_CORE_PATTERN_FILTERS_H_
