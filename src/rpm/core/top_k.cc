#include "rpm/core/top_k.h"

#include <algorithm>

#include "rpm/common/logging.h"
#include "rpm/core/rp_list.h"

namespace rpm {

namespace {

/// Optimistic starting threshold: the k-th largest per-item Erec. No
/// pattern can out-recur every one of its items (Property 1-2), so a
/// database with fewer than k items at Erec >= r cannot have k patterns
/// with Rec >= r... for single items; supersets only shrink Erec. It is
/// still a heuristic for multi-item results, hence the descent loop.
uint64_t InitialMinRec(const TransactionDatabase& db, Timestamp period,
                       uint64_t min_ps, size_t k, uint64_t floor_min_rec) {
  RpParams params;
  params.period = period;
  params.min_ps = min_ps;
  params.min_rec = 1;
  RpList list = BuildRpList(db, params);
  std::vector<uint64_t> erecs;
  erecs.reserve(list.entries().size());
  for (const RpListEntry& e : list.entries()) erecs.push_back(e.erec);
  if (erecs.size() < k) return floor_min_rec;
  std::nth_element(erecs.begin(), erecs.begin() + (k - 1), erecs.end(),
                   std::greater<uint64_t>());
  return std::max(floor_min_rec, erecs[k - 1]);
}

}  // namespace

TopKResult MineTopKByRecurrence(const TransactionDatabase& db,
                                Timestamp period, uint64_t min_ps, size_t k,
                                const TopKOptions& options) {
  RPM_CHECK(k >= 1);
  RPM_CHECK(options.floor_min_rec >= 1);

  TopKResult result;
  if (db.empty()) return result;

  RpGrowthOptions growth_options;
  growth_options.max_pattern_length = options.max_pattern_length;

  uint64_t min_rec = InitialMinRec(db, period, min_ps, k,
                                   options.floor_min_rec);
  for (;;) {
    RpParams params;
    params.period = period;
    params.min_ps = min_ps;
    params.min_rec = min_rec;
    params.max_gap_violations = options.max_gap_violations;
    RpGrowthResult mined =
        MineRecurringPatterns(db, params, growth_options);
    ++result.rounds;
    result.final_min_rec = min_rec;
    result.patterns = std::move(mined.patterns);
    if (result.patterns.size() >= k || min_rec <= options.floor_min_rec) {
      break;
    }
    min_rec = std::max<uint64_t>(options.floor_min_rec, min_rec / 2);
  }

  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const RecurringPattern& a, const RecurringPattern& b) {
              if (a.recurrence() != b.recurrence()) {
                return a.recurrence() > b.recurrence();
              }
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  if (result.patterns.size() > k) result.patterns.resize(k);
  return result;
}

}  // namespace rpm
