#include "rpm/core/top_k.h"

#include <algorithm>
#include <utility>

#include "rpm/common/logging.h"
#include "rpm/core/rp_list.h"

namespace rpm {

uint64_t TopKInitialMinRec(std::vector<uint64_t> item_recurrence_bounds,
                           size_t k, uint64_t floor_min_rec) {
  // No pattern can out-recur every one of its items (Property 1-2), so a
  // database with fewer than k items at Erec >= r cannot have k
  // single-item patterns with Rec >= r; supersets only shrink Erec. Still
  // a heuristic for multi-item results, hence the descent loop.
  if (item_recurrence_bounds.size() < k) return floor_min_rec;
  std::nth_element(item_recurrence_bounds.begin(),
                   item_recurrence_bounds.begin() + (k - 1),
                   item_recurrence_bounds.end(), std::greater<uint64_t>());
  return std::max(floor_min_rec, item_recurrence_bounds[k - 1]);
}

TopKResult MineTopKWithRounds(Timestamp period, uint64_t min_ps, size_t k,
                              uint64_t initial_min_rec,
                              const TopKOptions& options,
                              const TopKMiningRound& round) {
  RPM_CHECK(k >= 1);
  RPM_CHECK(options.floor_min_rec >= 1);
  TopKResult result;
  uint64_t min_rec = std::max(initial_min_rec, options.floor_min_rec);
  for (;;) {
    RpParams params;
    params.period = period;
    params.min_ps = min_ps;
    params.min_rec = min_rec;
    params.max_gap_violations = options.max_gap_violations;
    RpGrowthResult mined = round(params);
    ++result.rounds;
    result.final_min_rec = min_rec;
    result.patterns = std::move(mined.patterns);
    if (result.patterns.size() >= k || min_rec <= options.floor_min_rec) {
      break;
    }
    min_rec = std::max<uint64_t>(options.floor_min_rec, min_rec / 2);
  }

  std::sort(result.patterns.begin(), result.patterns.end(),
            [](const RecurringPattern& a, const RecurringPattern& b) {
              if (a.recurrence() != b.recurrence()) {
                return a.recurrence() > b.recurrence();
              }
              if (a.support != b.support) return a.support > b.support;
              return a.items < b.items;
            });
  if (result.patterns.size() > k) result.patterns.resize(k);
  return result;
}

TopKResult MineTopKByRecurrence(const TransactionDatabase& db,
                                Timestamp period, uint64_t min_ps, size_t k,
                                const TopKOptions& options) {
  RPM_CHECK(k >= 1);
  if (db.empty()) return {};

  RpParams probe;
  probe.period = period;
  probe.min_ps = min_ps;
  probe.min_rec = 1;
  RpList list = BuildRpList(db, probe);
  std::vector<uint64_t> erecs;
  erecs.reserve(list.entries().size());
  for (const RpListEntry& e : list.entries()) erecs.push_back(e.erec);

  RpGrowthOptions growth_options;
  growth_options.max_pattern_length = options.max_pattern_length;
  return MineTopKWithRounds(
      period, min_ps, k,
      TopKInitialMinRec(std::move(erecs), k, options.floor_min_rec), options,
      [&](const RpParams& params) {
        return MineRecurringPatterns(db, params, growth_options);
      });
}

}  // namespace rpm
