#include "rpm/core/streaming_rp_list.h"

#include "rpm/common/logging.h"
#include "rpm/core/time_gap.h"

namespace rpm {

StreamingRpList::StreamingRpList(Timestamp period, uint64_t min_ps)
    : period_(period), min_ps_(min_ps), last_ts_(0) {
  RPM_CHECK(period > 0);
  RPM_CHECK(min_ps >= 1);
}

Status StreamingRpList::Observe(ItemId item, Timestamp ts) {
  if (item == kInvalidItem) {
    // The sentinel is not a real item; without this guard the resize
    // below would wrap (item + 1 == 0 in 32 bits) and the state access
    // would run off the end of states_.
    return Status::InvalidArgument("item id " + std::to_string(item) +
                                   " is the reserved invalid-item sentinel");
  }
  if (any_event_ && ts < last_ts_) {
    return Status::InvalidArgument(
        "out-of-order event: ts " + std::to_string(ts) + " after " +
        std::to_string(last_ts_));
  }
  any_event_ = true;
  last_ts_ = ts;
  ++events_;
  if (item >= states_.size()) states_.resize(static_cast<size_t>(item) + 1);

  ItemState& s = states_[item];
  if (s.open_ps == 0) {
    // First occurrence.
    s.support = 1;
    s.open_ps = 1;
    s.open_start = ts;
    s.idl = ts;
    return Status::OK();
  }
  if (ts == s.idl) return Status::OK();  // Duplicate within a transaction.
  ++s.support;
  if (GapWithinPeriod(s.idl, ts, period_)) {
    ++s.open_ps;
  } else {
    // Close the run (Algorithm 1 lines 10-11, plus interval bookkeeping).
    s.erec_closed += s.open_ps / min_ps_;
    if (s.open_ps >= min_ps_) {
      s.closed_interesting.push_back({s.open_start, s.idl, s.open_ps});
    }
    s.open_ps = 1;
    s.open_start = ts;
  }
  s.idl = ts;
  return Status::OK();
}

Status StreamingRpList::ObserveTransaction(Timestamp ts,
                                           const Itemset& items) {
  // Validate before mutating anything so a rejected transaction leaves no
  // partial state behind (Observe can only fail on these two checks).
  for (ItemId item : items) {
    if (item == kInvalidItem) {
      return Status::InvalidArgument(
          "item id " + std::to_string(item) +
          " is the reserved invalid-item sentinel");
    }
  }
  if (any_event_ && ts < last_ts_) {
    return Status::InvalidArgument(
        "out-of-order event: ts " + std::to_string(ts) + " after " +
        std::to_string(last_ts_));
  }
  for (ItemId item : items) {
    RPM_RETURN_NOT_OK(Observe(item, ts));
  }
  return Status::OK();
}

uint64_t StreamingRpList::SupportOf(ItemId item) const {
  const ItemState* s = Find(item);
  return s != nullptr ? s->support : 0;
}

uint64_t StreamingRpList::ErecOf(ItemId item) const {
  const ItemState* s = Find(item);
  if (s == nullptr) return 0;
  return s->erec_closed + s->open_ps / min_ps_;
}

const std::vector<PeriodicInterval>& StreamingRpList::ClosedIntervalsOf(
    ItemId item) const {
  const ItemState* s = Find(item);
  return s != nullptr ? s->closed_interesting : empty_;
}

PeriodicInterval StreamingRpList::OpenRunOf(ItemId item) const {
  const ItemState* s = Find(item);
  if (s == nullptr) return {0, 0, 0};
  return {s->open_start, s->idl, s->open_ps};
}

uint64_t StreamingRpList::RecurrenceOf(ItemId item) const {
  const ItemState* s = Find(item);
  if (s == nullptr) return 0;
  return s->closed_interesting.size() + (s->open_ps >= min_ps_ ? 1 : 0);
}

std::vector<ItemId> StreamingRpList::CandidateItems(
    uint64_t min_rec) const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < states_.size(); ++item) {
    if (states_[item].open_ps > 0 && ErecOf(item) >= min_rec) {
      out.push_back(item);
    }
  }
  return out;
}

}  // namespace rpm
