#include "rpm/core/streaming_rp_list.h"

#include <algorithm>
#include <limits>

#include "rpm/common/logging.h"
#include "rpm/core/time_gap.h"

namespace rpm {

StreamingRpList::StreamingRpList(Timestamp period, uint64_t min_ps)
    : period_(period), min_ps_(min_ps), last_ts_(0) {
  RPM_CHECK(period > 0);
  RPM_CHECK(min_ps >= 1);
}

Status StreamingRpList::Observe(ItemId item, Timestamp ts) {
  if (item == kInvalidItem) {
    // The sentinel is not a real item; without this guard the resize
    // below would wrap (item + 1 == 0 in 32 bits) and the state access
    // would run off the end of states_.
    return Status::InvalidArgument("item id " + std::to_string(item) +
                                   " is the reserved invalid-item sentinel");
  }
  if (any_event_ && ts < last_ts_) {
    return Status::InvalidArgument(
        "out-of-order event: ts " + std::to_string(ts) + " after " +
        std::to_string(last_ts_));
  }
  any_event_ = true;
  last_ts_ = ts;
  ++events_;
  if (item >= states_.size()) states_.resize(static_cast<size_t>(item) + 1);

  ItemState& s = states_[item];
  if (s.open_ps == 0) {
    // First occurrence.
    s.support = 1;
    s.open_ps = 1;
    s.open_start = ts;
    s.idl = ts;
    return Status::OK();
  }
  if (ts == s.idl) return Status::OK();  // Duplicate within a transaction.
  ++s.support;
  if (GapWithinPeriod(s.idl, ts, period_)) {
    ++s.open_ps;
  } else {
    // Close the run (Algorithm 1 lines 10-11, plus interval bookkeeping).
    s.erec_closed += s.open_ps / min_ps_;
    if (s.open_ps >= min_ps_) {
      s.closed_interesting.push_back({s.open_start, s.idl, s.open_ps});
    }
    s.open_ps = 1;
    s.open_start = ts;
  }
  s.idl = ts;
  return Status::OK();
}

Status StreamingRpList::ObserveTransaction(Timestamp ts,
                                           const Itemset& items) {
  // Validate before mutating anything so a rejected transaction leaves no
  // partial state behind (Observe can only fail on these two checks).
  for (ItemId item : items) {
    if (item == kInvalidItem) {
      return Status::InvalidArgument(
          "item id " + std::to_string(item) +
          " is the reserved invalid-item sentinel");
    }
  }
  if (any_event_ && ts < last_ts_) {
    return Status::InvalidArgument(
        "out-of-order event: ts " + std::to_string(ts) + " after " +
        std::to_string(last_ts_));
  }
  for (ItemId item : items) {
    RPM_RETURN_NOT_OK(Observe(item, ts));
  }
  return Status::OK();
}

uint64_t StreamingRpList::SupportOf(ItemId item) const {
  const ItemState* s = Find(item);
  return s != nullptr ? s->support : 0;
}

uint64_t StreamingRpList::ErecOf(ItemId item) const {
  const ItemState* s = Find(item);
  if (s == nullptr) return 0;
  return s->erec_closed + s->open_ps / min_ps_;
}

const std::vector<PeriodicInterval>& StreamingRpList::ClosedIntervalsOf(
    ItemId item) const {
  const ItemState* s = Find(item);
  return s != nullptr ? s->closed_interesting : empty_;
}

PeriodicInterval StreamingRpList::OpenRunOf(ItemId item) const {
  const ItemState* s = Find(item);
  if (s == nullptr) return {0, 0, 0};
  return {s->open_start, s->idl, s->open_ps};
}

uint64_t StreamingRpList::RecurrenceOf(ItemId item) const {
  const ItemState* s = Find(item);
  if (s == nullptr) return 0;
  return s->closed_interesting.size() + (s->open_ps >= min_ps_ ? 1 : 0);
}

std::vector<ItemId> StreamingRpList::CandidateItems(
    uint64_t min_rec) const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < states_.size(); ++item) {
    if (states_[item].open_ps > 0 && ErecOf(item) >= min_rec) {
      out.push_back(item);
    }
  }
  return out;
}

WindowedRpList::WindowedRpList(Timestamp period, uint64_t min_ps)
    : period_(period),
      min_ps_(min_ps),
      last_ts_(0),
      cutoff_(std::numeric_limits<Timestamp>::min()) {
  RPM_CHECK(period > 0);
  RPM_CHECK(min_ps >= 1);
}

Status WindowedRpList::Append(ItemId item, Timestamp ts) {
  if (item == kInvalidItem) {
    return Status::InvalidArgument("item id " + std::to_string(item) +
                                   " is the reserved invalid-item sentinel");
  }
  if (any_event_ && ts < last_ts_) {
    return Status::InvalidArgument(
        "out-of-order event: ts " + std::to_string(ts) + " after " +
        std::to_string(last_ts_));
  }
  if (ts < cutoff_) {
    return Status::InvalidArgument(
        "event at ts " + std::to_string(ts) +
        " precedes the window cutoff " + std::to_string(cutoff_));
  }
  any_event_ = true;
  last_ts_ = ts;
  if (item >= states_.size()) states_.resize(static_cast<size_t>(item) + 1);

  ItemColumn& c = states_[item];
  // Duplicate within a transaction. Equality implies the stored newest is
  // live: a dead newest would satisfy col.back() < cutoff_ <= ts.
  if (!c.col.empty() && c.col.back() == ts) return Status::OK();

  ++counters_.timestamps_appended;
  ++live_ts_;
  ++stored_ts_;
  const bool extend =
      c.head < c.col.size() && GapWithinPeriod(c.col.back(), ts, period_);
  const size_t idx = c.col.size();
  c.col.push_back(ts);
  if (extend) {
    Run& r = c.runs.back();
    c.erec += (r.ps + 1) / min_ps_ - r.ps / min_ps_;
    if (r.ps + 1 >= min_ps_ && r.ps < min_ps_) ++c.interesting;
    ++r.ps;
  } else {
    c.runs.push_back({idx, 1});
    if (min_ps_ == 1) {
      ++c.erec;
      ++c.interesting;
    }
  }
  return Status::OK();
}

void WindowedRpList::ExpireColumn(ItemColumn& c, Timestamp cutoff) {
  while (c.head < c.col.size() && c.col[c.head] < cutoff) {
    Run& r = c.runs.front();
    // Runs partition the live region, so the front run starts at head.
    const auto begin = c.col.begin() + static_cast<ptrdiff_t>(r.first);
    const auto end = begin + static_cast<ptrdiff_t>(r.ps);
    const size_t n =
        static_cast<size_t>(std::lower_bound(begin, end, cutoff) - begin);
    counters_.timestamps_retired += n;
    live_ts_ -= n;
    c.head += n;
    if (n == r.ps) {
      c.erec -= r.ps / min_ps_;
      if (r.ps >= min_ps_) --c.interesting;
      c.runs.pop_front();
      ++counters_.runs_retired;
    } else {
      // Removing a prefix of a periodic run leaves a valid shorter run:
      // the surviving gaps are a subset of the original run's gaps.
      c.erec -= r.ps / min_ps_ - (r.ps - n) / min_ps_;
      if (r.ps >= min_ps_ && r.ps - n < min_ps_) --c.interesting;
      r.first += n;
      r.ps -= n;
    }
  }
}

void WindowedRpList::ExpireBefore(Timestamp cutoff) {
  if (cutoff <= cutoff_) return;
  cutoff_ = cutoff;
  for (ItemColumn& c : states_) ExpireColumn(c, cutoff);
}

void WindowedRpList::ExpireBefore(Timestamp cutoff,
                                  const std::vector<ItemId>& items) {
  if (cutoff <= cutoff_) return;
  cutoff_ = cutoff;
  for (ItemId item : items) {
    if (item < states_.size()) ExpireColumn(states_[item], cutoff);
  }
}

uint64_t WindowedRpList::SupportOf(ItemId item) const {
  if (item >= states_.size()) return 0;
  const ItemColumn& c = states_[item];
  return c.col.size() - c.head;
}

uint64_t WindowedRpList::ErecOf(ItemId item) const {
  return item < states_.size() ? states_[item].erec : 0;
}

uint64_t WindowedRpList::RecurrenceOf(ItemId item) const {
  return item < states_.size() ? states_[item].interesting : 0;
}

std::vector<PeriodicInterval> WindowedRpList::InterestingIntervalsOf(
    ItemId item) const {
  std::vector<PeriodicInterval> out;
  if (item >= states_.size()) return out;
  const ItemColumn& c = states_[item];
  for (const Run& r : c.runs) {
    if (r.ps >= min_ps_) {
      out.push_back({c.col[r.first],
                     c.col[r.first + static_cast<size_t>(r.ps) - 1], r.ps});
    }
  }
  return out;
}

std::vector<ItemId> WindowedRpList::CandidateItems(uint64_t min_rec) const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < states_.size(); ++item) {
    if (SupportOf(item) > 0 && states_[item].erec >= min_rec) {
      out.push_back(item);
    }
  }
  return out;
}

TsRun WindowedRpList::LiveTimestamps(ItemId item) const {
  if (item >= states_.size()) return {nullptr, 0};
  const ItemColumn& c = states_[item];
  if (c.head == c.col.size()) return {nullptr, 0};
  return {c.col.data() + c.head, c.col.size() - c.head};
}

double WindowedRpList::LiveFraction() const {
  if (stored_ts_ == 0) return 1.0;
  return static_cast<double>(live_ts_) / static_cast<double>(stored_ts_);
}

void WindowedRpList::Compact() {
  bool reclaimed = false;
  for (ItemColumn& c : states_) {
    if (c.head == 0) continue;
    c.col.erase(c.col.begin(), c.col.begin() + static_cast<ptrdiff_t>(c.head));
    for (Run& r : c.runs) r.first -= c.head;
    stored_ts_ -= c.head;
    c.head = 0;
    reclaimed = true;
  }
  if (reclaimed) ++counters_.compactions;
}

}  // namespace rpm
