#include "rpm/core/pattern_filters.h"

#include <algorithm>

namespace rpm {

Itemset ClosureOf(const TransactionDatabase& db, const Itemset& pattern) {
  Itemset closure;
  bool first = true;
  for (const Transaction& tr : db.transactions()) {
    if (!ContainsAll(tr.items, pattern)) continue;
    if (first) {
      closure = tr.items;
      first = false;
    } else {
      Itemset next;
      next.reserve(closure.size());
      std::set_intersection(closure.begin(), closure.end(),
                            tr.items.begin(), tr.items.end(),
                            std::back_inserter(next));
      closure = std::move(next);
    }
    if (closure.size() == pattern.size()) break;  // Cannot shrink further.
  }
  return first ? pattern : closure;
}

std::vector<RecurringPattern> FilterClosed(
    const TransactionDatabase& db, std::vector<RecurringPattern> patterns) {
  std::erase_if(patterns, [&db](const RecurringPattern& p) {
    return ClosureOf(db, p.items) != p.items;
  });
  return patterns;
}

std::vector<RecurringPattern> FilterMaximal(
    std::vector<RecurringPattern> patterns) {
  // Snapshot the itemsets sorted by length descending so only longer
  // patterns are tested as supersets (erase_if relocates elements, so the
  // snapshot must own its data).
  std::vector<Itemset> by_length_desc;
  by_length_desc.reserve(patterns.size());
  for (const RecurringPattern& p : patterns) by_length_desc.push_back(p.items);
  std::sort(by_length_desc.begin(), by_length_desc.end(),
            [](const Itemset& a, const Itemset& b) {
              return a.size() > b.size();
            });
  std::erase_if(patterns, [&](const RecurringPattern& p) {
    for (const Itemset& candidate : by_length_desc) {
      if (candidate.size() <= p.items.size()) break;  // Sorted by length.
      if (ContainsAll(candidate, p.items)) return true;
    }
    return false;
  });
  return patterns;
}

}  // namespace rpm
