// Minimal worker pool for projection-level mining parallelism.
//
// The miner's unit of work is one suffix-item projection; projections vary
// wildly in cost (the heaviest conditional subtree can dominate the run),
// so work is pulled from a shared atomic index rather than pre-sharded —
// a finished worker immediately takes the next projection instead of
// idling behind a static partition.

#ifndef RPM_CORE_THREAD_POOL_H_
#define RPM_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "rpm/common/failpoint.h"

namespace rpm {

/// Resolves a user-facing thread-count knob: 0 means "use the hardware",
/// anything else is taken literally. Never returns 0.
inline size_t ResolveThreadCount(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Runs fn(worker_id, item_index) for every item_index in [0, num_items),
/// distributing indices dynamically over min(num_workers, num_items)
/// threads. worker_id is in [0, num_workers) and lets callers keep
/// per-worker accumulators without locking. Blocks until all items are
/// done. With num_workers <= 1 everything runs on the calling thread (no
/// threads are spawned).
///
/// fn should not throw — the library itself never does — but an exception
/// escaping a task is contained rather than fatal: work distribution
/// stops, every worker is joined, and the first captured exception is
/// rethrown on the calling thread (previously it escaped a worker and
/// terminated the process mid-join). Items already dispatched may or may
/// not have run; callers treat a throwing ParallelFor as failed wholesale.
///
/// `should_stop` (optional) is a cooperative cancellation probe, polled
/// between items on every worker: once it returns true, no further items
/// are dispatched (in-flight items finish) and the call returns normally —
/// cancellation is the caller's state, not an error. Callers that need to
/// know which items ran must track that themselves (governed miners record
/// per-item completion).
///
/// Thread spawning degrades instead of failing: if std::thread creation
/// throws (resource exhaustion, simulated by the `threadpool.spawn`
/// failpoint), the pool proceeds with however many workers exist — the
/// calling thread always participates, so the floor is a plain sequential
/// loop. Returns the number of workers that actually ran (0 when
/// num_items == 0).
inline size_t ParallelFor(size_t num_items, size_t num_workers,
                          const std::function<void(size_t, size_t)>& fn,
                          const std::function<bool()>& should_stop = nullptr) {
  if (num_items == 0) return 0;
  const size_t workers = std::min(ResolveThreadCount(num_workers), num_items);
  if (workers <= 1) {
    for (size_t i = 0; i < num_items; ++i) {
      if (should_stop && should_stop()) break;
      fn(0, i);
    }
    return 1;
  }
  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto drain = [&](size_t worker_id) {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < num_items; i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (should_stop && should_stop()) {
        next.store(num_items, std::memory_order_relaxed);
        return;
      }
      try {
        fn(worker_id, i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Park the shared index past the end so every worker, including
        // this one, drains out at its next fetch.
        next.store(num_items, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    if (FailpointTriggered("threadpool.spawn")) break;
    try {
      threads.emplace_back(drain, w);
    } catch (const std::system_error&) {
      break;  // Degrade to the workers spawned so far (possibly none).
    }
  }
  drain(0);  // The calling thread is worker 0.
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return threads.size() + 1;
}

}  // namespace rpm

#endif  // RPM_CORE_THREAD_POOL_H_
