// Reference miners used as correctness oracles and ablation comparators.
//
// MineByDefinition enumerates *every* non-empty itemset over the items
// present in the database and applies Definitions 3-9 verbatim via
// TransactionDatabase::TimestampsOf — no shared code with RP-growth, which
// is what makes it a trustworthy oracle. Exponential: test-sized inputs
// only (item universe <= kMaxDefinitionalItems).
//
// MineVertical is a straightforward depth-first miner over per-item
// timestamp lists with set intersection, optionally using the paper's
// candidate (Erec) prune. It scales to mid-sized data and serves as the
// "no tree, no push-up" comparison point in the pruning ablation bench.

#ifndef RPM_CORE_BRUTE_FORCE_H_
#define RPM_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm {

/// Largest item universe MineByDefinition accepts (2^n subsets!).
inline constexpr uint32_t kMaxDefinitionalItems = 20;

/// Exhaustive definitional mining. Precondition: the number of distinct
/// items in `db` is <= kMaxDefinitionalItems (checked). Results are in
/// canonical itemset order.
std::vector<RecurringPattern> MineByDefinition(const TransactionDatabase& db,
                                               const RpParams& params);

struct VerticalMinerOptions {
  /// Apply the Erec candidate prune (true) or only the trivial
  /// Sup >= minPS*minRec gate (false).
  bool use_candidate_pruning = true;
  size_t max_pattern_length = 0;  ///< 0 = unlimited.
  /// Worker threads. Top-level suffix branches are independent in a
  /// vertical DFS, so they parallelise embarrassingly: branches are dealt
  /// round-robin to workers, results merged and canonicalised. 0 or 1 =
  /// sequential. Results are identical to the sequential run.
  size_t num_threads = 1;
};

struct VerticalMinerResult {
  std::vector<RecurringPattern> patterns;
  /// Itemsets whose timestamp list was materialised — the search-space
  /// size the pruning ablation reports.
  size_t nodes_explored = 0;
};

/// DFS miner over vertical timestamp lists. Results are in canonical
/// itemset order.
VerticalMinerResult MineVertical(const TransactionDatabase& db,
                                 const RpParams& params,
                                 const VerticalMinerOptions& options = {});

}  // namespace rpm

#endif  // RPM_CORE_BRUTE_FORCE_H_
