#include "rpm/core/pattern.h"

#include <algorithm>

namespace rpm {

std::string RecurringPattern::ToString(const ItemDictionary* dict) const {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ' ';
    out += dict != nullptr ? dict->NameOf(items[i])
                           : std::to_string(items[i]);
  }
  out += " [support=" + std::to_string(support) +
         ", recurrence=" + std::to_string(recurrence()) + ", {";
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (i > 0) out += ", ";
    const PeriodicInterval& pi = intervals[i];
    out += "{[" + std::to_string(pi.begin) + "," + std::to_string(pi.end) +
           "]:" + std::to_string(pi.periodic_support) + "}";
  }
  out += "}]";
  return out;
}

void SortPatternsCanonically(std::vector<RecurringPattern>* patterns) {
  std::sort(patterns->begin(), patterns->end(),
            [](const RecurringPattern& a, const RecurringPattern& b) {
              return a.items < b.items;
            });
}

bool SamePatternSets(std::vector<RecurringPattern> a,
                     std::vector<RecurringPattern> b) {
  if (a.size() != b.size()) return false;
  SortPatternsCanonically(&a);
  SortPatternsCanonically(&b);
  return a == b;
}

size_t MaxPatternLength(const std::vector<RecurringPattern>& patterns) {
  size_t max_len = 0;
  for (const RecurringPattern& p : patterns) {
    max_len = std::max(max_len, p.items.size());
  }
  return max_len;
}

}  // namespace rpm
