// Columnar (structure-of-arrays) ts-list kernels for the mining hot path.
//
// Every periodicity measure reduces to one question per consecutive
// timestamp pair: is the delta ts[g+1] - ts[g] within the period? The
// miner's scalar loops interleave that comparison with run bookkeeping,
// which serializes a pure data-parallel pass. These kernels split the work
// into columns over 64-gap blocks:
//
//   delta column:  d[g]   = u64(ts[g+1]) - u64(ts[g])   (exact, unsigned)
//   break column:  bit g of masks[g/64] = (d[g] > period)
//
// The break column is the one the gate consumes: ComputeBreakMasks fuses
// the delta and the threshold compare into one streaming pass (no delta
// store), emitting one bit per gap. Run segmentation then walks set bits
// with countr_zero instead of branching per element — the measures layer
// (measures.cc) rebuilds Erec / Algorithm-5 intervals from the masks with
// results bit-identical to the scalar loops, because both evaluate exactly
// the same unsigned comparison per gap (see core/time_gap.h for why
// unsigned subtraction is exact for ordered int64 pairs; vector psubq IS
// that unsigned subtraction).
//
// Each kernel exists in scalar, SSE2 and AVX2 variants; the unqualified
// entry points dispatch once per process on CPUID (common/cpu_features.h,
// RPM_FORCE_SCALAR=1 pins scalar). The per-level variants stay exported so
// property tests can diff every compiled arm against scalar on one
// machine. Vector loads never read past ts[n-1]: tails fall back to the
// scalar loop, keeping the kernels ASan-clean by construction.

#ifndef RPM_CORE_TS_BLOCK_H_
#define RPM_CORE_TS_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rpm/common/cpu_features.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// Gaps per break-mask word (the block granule of the columnar layout).
inline constexpr size_t kTsBlockGaps = 64;

/// Mask words needed for a list of `n` timestamps (n - 1 gaps).
inline constexpr size_t TsBlockWords(size_t n) {
  return n < 2 ? 0 : (n - 1 + kTsBlockGaps - 1) / kTsBlockGaps;
}

/// Reusable per-miner buffer for the break-mask column. Grow-only, like
/// the other miner scratch slabs; one per worker, never shared across
/// concurrent scans.
struct TsBlockScratch {
  std::vector<uint64_t> break_masks;

  /// Bytes retained (feeds scratch_bytes accounting).
  size_t ByteFootprint() const {
    return break_masks.capacity() * sizeof(uint64_t);
  }
};

/// Hot-path instrumentation for the vectorized gate, aggregated into
/// RpGrowthStats by the miners. All three are schedule-invariant (they
/// depend only on which ts-lists get scanned, which is identical across
/// sequential and parallel runs on the same machine).
struct GateCounters {
  size_t lists_scanned = 0;  ///< Gate / interval scans performed.
  size_t gaps_scanned = 0;   ///< Total timestamp gaps evaluated.
  /// Gaps evaluated at full vector width (the rest ran in the scalar
  /// tail or the short-list fallback). gaps_simd / gaps_scanned is the
  /// SIMD lane-utilization figure the benches report.
  size_t gaps_simd = 0;
};

// --- Break-mask column ------------------------------------------------------

/// Fills masks[0 .. TsBlockWords(n)) for the sorted list ts[0..n): bit
/// (g % 64) of masks[g / 64] is set iff u64(ts[g+1]) - u64(ts[g]) >
/// period. Bits past the last gap are zero. Requires n >= 2 and ts sorted
/// ascending (duplicates allowed: a zero delta is never a break since
/// period >= 1). Dispatches to the best level once per process.
void ComputeBreakMasks(const Timestamp* ts, size_t n, uint64_t period,
                       uint64_t* masks);

/// Per-level variants (identical contract). Sse2/Avx2 must only be called
/// when HardwareSimdLevel() admits them; off x86 they are compiled as
/// forwarding stubs to the scalar kernel so tests link everywhere.
void ComputeBreakMasksScalar(const Timestamp* ts, size_t n, uint64_t period,
                             uint64_t* masks);
void ComputeBreakMasksSse2(const Timestamp* ts, size_t n, uint64_t period,
                           uint64_t* masks);
void ComputeBreakMasksAvx2(const Timestamp* ts, size_t n, uint64_t period,
                           uint64_t* masks);

// --- Delta column -----------------------------------------------------------

/// Fills out[0 .. n-1) with the exact unsigned deltas
/// u64(ts[g+1]) - u64(ts[g]). Requires n >= 2 and ts sorted ascending.
/// Consumers that need Timestamp-typed inter-arrival times clamp with
/// SaturatingGap semantics (see measures.cc InterArrivalTimes).
void ComputeDeltas(const Timestamp* ts, size_t n, uint64_t* out);

void ComputeDeltasScalar(const Timestamp* ts, size_t n, uint64_t* out);
void ComputeDeltasSse2(const Timestamp* ts, size_t n, uint64_t* out);
void ComputeDeltasAvx2(const Timestamp* ts, size_t n, uint64_t* out);

}  // namespace rpm

#endif  // RPM_CORE_TS_BLOCK_H_
