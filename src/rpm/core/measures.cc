#include "rpm/core/measures.h"

#include <bit>

#include "rpm/common/logging.h"
#include "rpm/core/time_gap.h"

namespace rpm {

std::vector<Timestamp> InterArrivalTimes(const TimestampList& ts) {
  std::vector<Timestamp> iats;
  if (ts.size() < 2) return iats;
  iats.reserve(ts.size() - 1);
  for (size_t i = 1; i < ts.size(); ++i) {
    RPM_DCHECK(ts[i - 1] < ts[i]);
    iats.push_back(SaturatingGap(ts[i - 1], ts[i]));
  }
  return iats;
}

std::vector<PeriodicInterval> DecomposePeriodicIntervals(
    const TimestampList& ts, Timestamp period) {
  RPM_DCHECK(period > 0);
  std::vector<PeriodicInterval> out;
  if (ts.empty()) return out;
  Timestamp run_start = ts[0];
  uint64_t run_count = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (GapWithinPeriod(ts[i - 1], ts[i], period)) {
      ++run_count;
    } else {
      out.push_back({run_start, ts[i - 1], run_count});
      run_start = ts[i];
      run_count = 1;
    }
  }
  out.push_back({run_start, ts.back(), run_count});
  return out;
}

std::vector<PeriodicInterval> SelectInterestingIntervals(
    const std::vector<PeriodicInterval>& intervals, uint64_t min_ps) {
  std::vector<PeriodicInterval> out;
  for (const PeriodicInterval& pi : intervals) {
    if (pi.periodic_support >= min_ps) out.push_back(pi);
  }
  return out;
}

void FindInterestingIntervalsInto(const TimestampList& ts, Timestamp period,
                                  uint64_t min_ps,
                                  std::vector<PeriodicInterval>* out) {
  // Algorithm 5 (getRecurrence), kept as one pass: track the current run's
  // start and size; flush it as interesting when a gap > period (or the
  // end of the list) closes a run of size >= min_ps.
  RPM_DCHECK(period > 0);
  RPM_DCHECK(min_ps >= 1);
  out->clear();
  if (ts.empty()) return;
  Timestamp start_ts = ts[0];
  Timestamp idl = ts[0];
  uint64_t current_ps = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    const Timestamp cur = ts[i];
    if (GapWithinPeriod(idl, cur, period)) {
      ++current_ps;
    } else {
      if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
      current_ps = 1;
      start_ts = cur;
    }
    idl = cur;
  }
  if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
}

std::vector<PeriodicInterval> FindInterestingIntervals(
    const TimestampList& ts, Timestamp period, uint64_t min_ps) {
  std::vector<PeriodicInterval> out;
  FindInterestingIntervalsInto(ts, period, min_ps, &out);
  return out;
}

uint64_t ComputeRecurrence(const TimestampList& ts, Timestamp period,
                           uint64_t min_ps) {
  return FindInterestingIntervals(ts, period, min_ps).size();
}

uint64_t ComputeErec(const TimestampList& ts, Timestamp period,
                     uint64_t min_ps) {
  RPM_DCHECK(period > 0);
  RPM_DCHECK(min_ps >= 1);
  if (ts.empty()) return 0;
  uint64_t erec = 0;
  uint64_t current_ps = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (GapWithinPeriod(ts[i - 1], ts[i], period)) {
      ++current_ps;
    } else {
      erec += current_ps / min_ps;
      current_ps = 1;
    }
  }
  erec += current_ps / min_ps;
  return erec;
}

void FindInterestingIntervalsTolerantInto(
    const TimestampList& ts, Timestamp period, uint64_t min_ps,
    uint32_t max_violations, std::vector<PeriodicInterval>* out) {
  if (max_violations == 0) {
    FindInterestingIntervalsInto(ts, period, min_ps, out);
    return;
  }
  RPM_DCHECK(period > 0);
  out->clear();
  if (ts.empty()) return;
  Timestamp start_ts = ts[0];
  Timestamp idl = ts[0];
  uint64_t current_ps = 1;
  uint32_t violations = 0;
  for (size_t i = 1; i < ts.size(); ++i) {
    const Timestamp cur = ts[i];
    if (GapWithinPeriod(idl, cur, period)) {
      ++current_ps;
    } else if (violations < max_violations) {
      // Absorb the over-period gap: the run continues, the bridged
      // timestamp still counts.
      ++violations;
      ++current_ps;
    } else {
      if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
      current_ps = 1;
      violations = 0;
      start_ts = cur;
    }
    idl = cur;
  }
  if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
}

std::vector<PeriodicInterval> FindInterestingIntervalsTolerant(
    const TimestampList& ts, Timestamp period, uint64_t min_ps,
    uint32_t max_violations) {
  std::vector<PeriodicInterval> out;
  FindInterestingIntervalsTolerantInto(ts, period, min_ps, max_violations,
                                       &out);
  return out;
}

uint64_t ComputeTolerantRecurrenceBound(size_t support, uint64_t min_ps) {
  RPM_DCHECK(min_ps >= 1);
  return static_cast<uint64_t>(support) / min_ps;
}

std::vector<PeriodicInterval> FindInterestingIntervals(
    const TimestampList& ts, const RpParams& params) {
  return FindInterestingIntervalsTolerant(ts, params.period, params.min_ps,
                                          params.max_gap_violations);
}

void FindInterestingIntervalsInto(const TimestampList& ts,
                                  const RpParams& params,
                                  std::vector<PeriodicInterval>* out) {
  FindInterestingIntervalsTolerantInto(ts, params.period, params.min_ps,
                                       params.max_gap_violations, out);
}

uint64_t ComputeRecurrenceUpperBound(const TimestampList& ts,
                                     const RpParams& params) {
  if (params.max_gap_violations > 0) {
    return ComputeTolerantRecurrenceBound(ts.size(), params.min_ps);
  }
  return ComputeErec(ts, params.period, params.min_ps);
}

GateOutcome ComputeGateAndIntervals(const TimestampList& ts,
                                    const RpParams& params,
                                    std::vector<PeriodicInterval>* intervals) {
  GateOutcome outcome;
  intervals->clear();

  if (params.max_gap_violations > 0) {
    // Tolerant model: the bound is O(1) in the support, so gate first and
    // scan only survivors (exactly once).
    outcome.recurrence_upper_bound =
        ComputeTolerantRecurrenceBound(ts.size(), params.min_ps);
    outcome.passes = outcome.recurrence_upper_bound >= params.min_rec;
    if (outcome.passes) {
      FindInterestingIntervalsTolerantInto(ts, params.period, params.min_ps,
                                           params.max_gap_violations,
                                           intervals);
    }
    return outcome;
  }

  // Exact model: Erec and Algorithm 5 walk the same maximal runs, so one
  // scan produces both. Erec >= |IPI| always (each interesting interval
  // contributes at least floor(ps/min_ps) >= 1), so a gated-out list
  // collected at most min_rec - 1 intervals — discarding them is cheap.
  RPM_DCHECK(params.period > 0);
  RPM_DCHECK(params.min_ps >= 1);
  if (ts.empty()) return outcome;
  uint64_t erec = 0;
  Timestamp start_ts = ts[0];
  uint64_t current_ps = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (GapWithinPeriod(ts[i - 1], ts[i], params.period)) {
      ++current_ps;
    } else {
      erec += current_ps / params.min_ps;
      if (current_ps >= params.min_ps) {
        intervals->push_back({start_ts, ts[i - 1], current_ps});
      }
      current_ps = 1;
      start_ts = ts[i];
    }
  }
  erec += current_ps / params.min_ps;
  if (current_ps >= params.min_ps) {
    intervals->push_back({start_ts, ts.back(), current_ps});
  }
  outcome.recurrence_upper_bound = erec;
  outcome.passes = erec >= params.min_rec;
  if (!outcome.passes) intervals->clear();
  return outcome;
}

// --- Columnar (SIMD) hot-path overloads ------------------------------------

namespace {

/// Crossover below which the scalar loops win: the mask pass streams the
/// list once and the bit-walk touches it again, so the fixed cost (mask
/// memset, dispatch, resize) only amortizes once the compare stream
/// dominates. BM_MaskedGateAndIntervals vs BM_FusedGateAndIntervals puts
/// the break-dense break-even near 256 gaps (sparse lists win earlier);
/// 128 keeps short conditional-level lists on the branch-predicted scalar
/// loop. Correctness is identical either side.
constexpr size_t kMaskedScanMinGaps = 128;

/// Gaps the dispatched kernel evaluates at full vector width for a list
/// with `gaps` gaps (the rest run in its scalar tail). Zero when the
/// active level is scalar — this feeds the lane-utilization counter, and
/// a scalar "vector" of one lane utilizes nothing.
size_t VectorizedGapCount(size_t gaps) {
  const size_t lanes =
      static_cast<size_t>(SimdGapLanes(ActiveSimdLevel()));
  return lanes <= 1 ? 0 : gaps / lanes * lanes;
}

/// Invokes fn(g) for every break gap g (set bit) in ascending order.
template <typename Fn>
void ForEachBreak(const uint64_t* masks, size_t words, Fn&& fn) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = masks[w];
    while (m != 0) {
      fn((w << 6) + static_cast<size_t>(std::countr_zero(m)));
      m &= m - 1;
    }
  }
}

/// Computes the break-mask column for `ts` into *scratch and accounts the
/// scan. Returns the mask pointer.
const uint64_t* ScanBreakMasks(const TimestampList& ts, Timestamp period,
                               TsBlockScratch* scratch,
                               GateCounters* counters) {
  const size_t gaps = ts.size() - 1;
  scratch->break_masks.resize(TsBlockWords(ts.size()));
  ComputeBreakMasks(ts.data(), ts.size(), static_cast<uint64_t>(period),
                    scratch->break_masks.data());
  if (counters != nullptr) {
    ++counters->lists_scanned;
    counters->gaps_scanned += gaps;
    counters->gaps_simd += VectorizedGapCount(gaps);
  }
  return scratch->break_masks.data();
}

/// Mask-driven FindInterestingIntervalsTolerantInto (max_violations >= 1).
/// Runs absorb up to max_violations break gaps before splitting; every
/// timestamp between run start and close is contiguous in index space, so
/// the periodic support of a run [s .. e] is e - s + 1 — identical to the
/// scalar counter.
void TolerantIntervalsFromMasks(const TimestampList& ts,
                                const uint64_t* masks, uint64_t min_ps,
                                uint32_t max_violations,
                                std::vector<PeriodicInterval>* out) {
  const size_t n = ts.size();
  size_t run_start = 0;
  uint32_t violations = 0;
  ForEachBreak(masks, TsBlockWords(n), [&](size_t g) {
    if (violations < max_violations) {
      ++violations;
      return;
    }
    const uint64_t ps = g - run_start + 1;
    if (ps >= min_ps) out->push_back({ts[run_start], ts[g], ps});
    run_start = g + 1;
    violations = 0;
  });
  const uint64_t ps = n - run_start;
  if (ps >= min_ps) out->push_back({ts[run_start], ts[n - 1], ps});
}

}  // namespace

GateOutcome ComputeGateAndIntervals(const TimestampList& ts,
                                    const RpParams& params,
                                    std::vector<PeriodicInterval>* intervals,
                                    TsBlockScratch* scratch,
                                    GateCounters* counters) {
  const size_t n = ts.size();
  const size_t gaps = n < 2 ? 0 : n - 1;
  if (scratch == nullptr || gaps < kMaskedScanMinGaps) {
    // Short list (or no scratch): the scalar fused scan. Still account
    // the volume so the counters describe every gate evaluation.
    if (counters != nullptr && n != 0 &&
        (params.max_gap_violations == 0 ||
         ComputeTolerantRecurrenceBound(n, params.min_ps) >= params.min_rec)) {
      ++counters->lists_scanned;
      counters->gaps_scanned += gaps;
    }
    return ComputeGateAndIntervals(ts, params, intervals);
  }

  GateOutcome outcome;
  intervals->clear();

  if (params.max_gap_violations > 0) {
    // Tolerant model: gate O(1) on support, scan survivors via masks.
    outcome.recurrence_upper_bound =
        ComputeTolerantRecurrenceBound(n, params.min_ps);
    outcome.passes = outcome.recurrence_upper_bound >= params.min_rec;
    if (outcome.passes) {
      const uint64_t* masks =
          ScanBreakMasks(ts, params.period, scratch, counters);
      TolerantIntervalsFromMasks(ts, masks, params.min_ps,
                                 params.max_gap_violations, intervals);
    }
    return outcome;
  }

  // Exact model: every maximal run is delimited by break gaps, so the
  // fused Erec + Algorithm-5 bookkeeping collapses to a walk over set
  // bits. A run closing at break gap g spans ts[run_start .. g]; its
  // periodic support is the index span, exactly the scalar counter.
  RPM_DCHECK(params.period > 0);
  RPM_DCHECK(params.min_ps >= 1);
  const uint64_t* masks = ScanBreakMasks(ts, params.period, scratch, counters);
  uint64_t erec = 0;
  size_t run_start = 0;
  ForEachBreak(masks, TsBlockWords(n), [&](size_t g) {
    const uint64_t ps = g - run_start + 1;
    erec += ps / params.min_ps;
    if (ps >= params.min_ps) intervals->push_back({ts[run_start], ts[g], ps});
    run_start = g + 1;
  });
  const uint64_t ps = n - run_start;
  erec += ps / params.min_ps;
  if (ps >= params.min_ps) {
    intervals->push_back({ts[run_start], ts[n - 1], ps});
  }
  outcome.recurrence_upper_bound = erec;
  outcome.passes = erec >= params.min_rec;
  if (!outcome.passes) intervals->clear();
  return outcome;
}

uint64_t ComputeRecurrenceUpperBound(const TimestampList& ts,
                                     const RpParams& params,
                                     TsBlockScratch* scratch,
                                     GateCounters* counters) {
  if (params.max_gap_violations > 0) {
    // O(1): no scan happens, so nothing to vectorize or count.
    return ComputeTolerantRecurrenceBound(ts.size(), params.min_ps);
  }
  const size_t n = ts.size();
  const size_t gaps = n < 2 ? 0 : n - 1;
  if (scratch == nullptr || gaps < kMaskedScanMinGaps) {
    if (counters != nullptr && n != 0) {
      ++counters->lists_scanned;
      counters->gaps_scanned += gaps;
    }
    return ComputeErec(ts, params.period, params.min_ps);
  }
  RPM_DCHECK(params.period > 0);
  RPM_DCHECK(params.min_ps >= 1);
  const uint64_t* masks = ScanBreakMasks(ts, params.period, scratch, counters);
  uint64_t erec = 0;
  size_t run_start = 0;
  ForEachBreak(masks, TsBlockWords(n), [&](size_t g) {
    erec += (g - run_start + 1) / params.min_ps;
    run_start = g + 1;
  });
  erec += (n - run_start) / params.min_ps;
  return erec;
}

}  // namespace rpm
