#include "rpm/core/measures.h"

#include "rpm/common/logging.h"
#include "rpm/core/time_gap.h"

namespace rpm {

std::vector<Timestamp> InterArrivalTimes(const TimestampList& ts) {
  std::vector<Timestamp> iats;
  if (ts.size() < 2) return iats;
  iats.reserve(ts.size() - 1);
  for (size_t i = 1; i < ts.size(); ++i) {
    RPM_DCHECK(ts[i - 1] < ts[i]);
    iats.push_back(SaturatingGap(ts[i - 1], ts[i]));
  }
  return iats;
}

std::vector<PeriodicInterval> DecomposePeriodicIntervals(
    const TimestampList& ts, Timestamp period) {
  RPM_DCHECK(period > 0);
  std::vector<PeriodicInterval> out;
  if (ts.empty()) return out;
  Timestamp run_start = ts[0];
  uint64_t run_count = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (GapWithinPeriod(ts[i - 1], ts[i], period)) {
      ++run_count;
    } else {
      out.push_back({run_start, ts[i - 1], run_count});
      run_start = ts[i];
      run_count = 1;
    }
  }
  out.push_back({run_start, ts.back(), run_count});
  return out;
}

std::vector<PeriodicInterval> SelectInterestingIntervals(
    const std::vector<PeriodicInterval>& intervals, uint64_t min_ps) {
  std::vector<PeriodicInterval> out;
  for (const PeriodicInterval& pi : intervals) {
    if (pi.periodic_support >= min_ps) out.push_back(pi);
  }
  return out;
}

void FindInterestingIntervalsInto(const TimestampList& ts, Timestamp period,
                                  uint64_t min_ps,
                                  std::vector<PeriodicInterval>* out) {
  // Algorithm 5 (getRecurrence), kept as one pass: track the current run's
  // start and size; flush it as interesting when a gap > period (or the
  // end of the list) closes a run of size >= min_ps.
  RPM_DCHECK(period > 0);
  RPM_DCHECK(min_ps >= 1);
  out->clear();
  if (ts.empty()) return;
  Timestamp start_ts = ts[0];
  Timestamp idl = ts[0];
  uint64_t current_ps = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    const Timestamp cur = ts[i];
    if (GapWithinPeriod(idl, cur, period)) {
      ++current_ps;
    } else {
      if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
      current_ps = 1;
      start_ts = cur;
    }
    idl = cur;
  }
  if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
}

std::vector<PeriodicInterval> FindInterestingIntervals(
    const TimestampList& ts, Timestamp period, uint64_t min_ps) {
  std::vector<PeriodicInterval> out;
  FindInterestingIntervalsInto(ts, period, min_ps, &out);
  return out;
}

uint64_t ComputeRecurrence(const TimestampList& ts, Timestamp period,
                           uint64_t min_ps) {
  return FindInterestingIntervals(ts, period, min_ps).size();
}

uint64_t ComputeErec(const TimestampList& ts, Timestamp period,
                     uint64_t min_ps) {
  RPM_DCHECK(period > 0);
  RPM_DCHECK(min_ps >= 1);
  if (ts.empty()) return 0;
  uint64_t erec = 0;
  uint64_t current_ps = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (GapWithinPeriod(ts[i - 1], ts[i], period)) {
      ++current_ps;
    } else {
      erec += current_ps / min_ps;
      current_ps = 1;
    }
  }
  erec += current_ps / min_ps;
  return erec;
}

void FindInterestingIntervalsTolerantInto(
    const TimestampList& ts, Timestamp period, uint64_t min_ps,
    uint32_t max_violations, std::vector<PeriodicInterval>* out) {
  if (max_violations == 0) {
    FindInterestingIntervalsInto(ts, period, min_ps, out);
    return;
  }
  RPM_DCHECK(period > 0);
  out->clear();
  if (ts.empty()) return;
  Timestamp start_ts = ts[0];
  Timestamp idl = ts[0];
  uint64_t current_ps = 1;
  uint32_t violations = 0;
  for (size_t i = 1; i < ts.size(); ++i) {
    const Timestamp cur = ts[i];
    if (GapWithinPeriod(idl, cur, period)) {
      ++current_ps;
    } else if (violations < max_violations) {
      // Absorb the over-period gap: the run continues, the bridged
      // timestamp still counts.
      ++violations;
      ++current_ps;
    } else {
      if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
      current_ps = 1;
      violations = 0;
      start_ts = cur;
    }
    idl = cur;
  }
  if (current_ps >= min_ps) out->push_back({start_ts, idl, current_ps});
}

std::vector<PeriodicInterval> FindInterestingIntervalsTolerant(
    const TimestampList& ts, Timestamp period, uint64_t min_ps,
    uint32_t max_violations) {
  std::vector<PeriodicInterval> out;
  FindInterestingIntervalsTolerantInto(ts, period, min_ps, max_violations,
                                       &out);
  return out;
}

uint64_t ComputeTolerantRecurrenceBound(size_t support, uint64_t min_ps) {
  RPM_DCHECK(min_ps >= 1);
  return static_cast<uint64_t>(support) / min_ps;
}

std::vector<PeriodicInterval> FindInterestingIntervals(
    const TimestampList& ts, const RpParams& params) {
  return FindInterestingIntervalsTolerant(ts, params.period, params.min_ps,
                                          params.max_gap_violations);
}

void FindInterestingIntervalsInto(const TimestampList& ts,
                                  const RpParams& params,
                                  std::vector<PeriodicInterval>* out) {
  FindInterestingIntervalsTolerantInto(ts, params.period, params.min_ps,
                                       params.max_gap_violations, out);
}

uint64_t ComputeRecurrenceUpperBound(const TimestampList& ts,
                                     const RpParams& params) {
  if (params.max_gap_violations > 0) {
    return ComputeTolerantRecurrenceBound(ts.size(), params.min_ps);
  }
  return ComputeErec(ts, params.period, params.min_ps);
}

GateOutcome ComputeGateAndIntervals(const TimestampList& ts,
                                    const RpParams& params,
                                    std::vector<PeriodicInterval>* intervals) {
  GateOutcome outcome;
  intervals->clear();

  if (params.max_gap_violations > 0) {
    // Tolerant model: the bound is O(1) in the support, so gate first and
    // scan only survivors (exactly once).
    outcome.recurrence_upper_bound =
        ComputeTolerantRecurrenceBound(ts.size(), params.min_ps);
    outcome.passes = outcome.recurrence_upper_bound >= params.min_rec;
    if (outcome.passes) {
      FindInterestingIntervalsTolerantInto(ts, params.period, params.min_ps,
                                           params.max_gap_violations,
                                           intervals);
    }
    return outcome;
  }

  // Exact model: Erec and Algorithm 5 walk the same maximal runs, so one
  // scan produces both. Erec >= |IPI| always (each interesting interval
  // contributes at least floor(ps/min_ps) >= 1), so a gated-out list
  // collected at most min_rec - 1 intervals — discarding them is cheap.
  RPM_DCHECK(params.period > 0);
  RPM_DCHECK(params.min_ps >= 1);
  if (ts.empty()) return outcome;
  uint64_t erec = 0;
  Timestamp start_ts = ts[0];
  uint64_t current_ps = 1;
  for (size_t i = 1; i < ts.size(); ++i) {
    if (GapWithinPeriod(ts[i - 1], ts[i], params.period)) {
      ++current_ps;
    } else {
      erec += current_ps / params.min_ps;
      if (current_ps >= params.min_ps) {
        intervals->push_back({start_ts, ts[i - 1], current_ps});
      }
      current_ps = 1;
      start_ts = ts[i];
    }
  }
  erec += current_ps / params.min_ps;
  if (current_ps >= params.min_ps) {
    intervals->push_back({start_ts, ts.back(), current_ps});
  }
  outcome.recurrence_upper_bound = erec;
  outcome.passes = erec >= params.min_rec;
  if (!outcome.passes) intervals->clear();
  return outcome;
}

}  // namespace rpm
