#include "rpm/core/rp_list.h"

#include <algorithm>

#include "rpm/common/logging.h"
#include "rpm/core/cancellation.h"
#include "rpm/core/time_gap.h"

namespace rpm {

RpList BuildRpList(const TransactionDatabase& db, const RpParams& params,
                   QueryBudget* budget) {
  RPM_CHECK(params.Validate().ok()) << params.ToString();

  // Dense per-item scan state (Algorithm 1's idl / ps arrays).
  struct ScanState {
    uint64_t support = 0;
    uint64_t erec = 0;
    Timestamp idl = 0;
    uint64_t ps = 0;  // 0 means "not seen yet".
  };
  std::vector<ScanState> state(db.ItemUniverseSize());

  BudgetCheckpointer checkpoint(budget);
  for (const Transaction& tr : db.transactions()) {
    if (checkpoint.Check()) break;  // Abandon the scan; caller discards.
    for (ItemId item : tr.items) {
      ScanState& s = state[item];
      if (s.ps == 0) {
        // First occurrence (lines 3-5).
        s.support = 1;
        s.erec = 0;
        s.idl = tr.ts;
        s.ps = 1;
      } else if (GapWithinPeriod(s.idl, tr.ts, params.period)) {
        // Periodic reappearance (lines 7-8).
        ++s.support;
        ++s.ps;
        s.idl = tr.ts;
      } else {
        // Run closed; start a new subset of the database (lines 10-11).
        s.erec += s.ps / params.min_ps;
        ++s.support;
        s.ps = 1;
        s.idl = tr.ts;
      }
    }
  }

  RpList list;
  list.rank_of_.assign(db.ItemUniverseSize(), kNotCandidate);
  for (ItemId item = 0; item < state.size(); ++item) {
    ScanState& s = state[item];
    if (s.ps == 0) continue;  // Item absent from the database.
    s.erec += s.ps / params.min_ps;  // Final flush (line 15).
    uint64_t bound =
        params.max_gap_violations > 0 ? s.support / params.min_ps : s.erec;
    list.entries_.push_back({item, s.support, bound});
  }

  list.candidates_ = list.entries_;
  std::erase_if(list.candidates_, [&](const RpListEntry& e) {
    return e.erec < params.min_rec;
  });
  std::sort(list.candidates_.begin(), list.candidates_.end(),
            [](const RpListEntry& a, const RpListEntry& b) {
              return a.support != b.support ? a.support > b.support
                                            : a.item < b.item;
            });
  for (uint32_t rank = 0; rank < list.candidates_.size(); ++rank) {
    list.rank_of_[list.candidates_[rank].item] = rank;
  }
  return list;
}

std::string RpList::ToString() const {
  std::string out = "RP-list[";
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(candidates_[i].item) + "(s=" +
           std::to_string(candidates_[i].support) +
           ",erec=" + std::to_string(candidates_[i].erec) + ")";
  }
  out += "]";
  return out;
}

}  // namespace rpm
