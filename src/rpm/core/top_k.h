// Top-k recurring pattern mining by threshold descent.
//
// Picking minRec a priori is hard on unfamiliar data (the paper itself
// reports that almost nothing survives minRec > 3 on its datasets). The
// top-k interface asks instead for "the k most recurring patterns at this
// per / minPS": mining starts from an optimistic minRec derived from the
// per-item Erec distribution and halves it until at least k patterns
// qualify, then returns the k best by (recurrence, support) — the standard
// threshold-descent scheme from top-k frequent-pattern mining, reusing
// RP-growth (and therefore the Erec prune) at every round.

#ifndef RPM_CORE_TOP_K_H_
#define RPM_CORE_TOP_K_H_

#include <cstddef>
#include <functional>

#include "rpm/core/rp_growth.h"

namespace rpm {

struct TopKOptions {
  /// Never mine below this recurrence (1 = exhaustive fallback).
  uint64_t floor_min_rec = 1;
  /// Forwarded to RP-growth.
  size_t max_pattern_length = 0;
  uint32_t max_gap_violations = 0;
};

struct TopKResult {
  /// At most k patterns, ordered by recurrence desc, then support desc,
  /// then canonical itemset order. Fewer than k when the database cannot
  /// produce k patterns even at the floor threshold.
  std::vector<RecurringPattern> patterns;
  /// The minRec of the final mining round.
  uint64_t final_min_rec = 0;
  /// Mining rounds executed (each one full RP-growth run).
  size_t rounds = 0;
};

/// Finds (up to) the k most-recurring patterns. `period` and `min_ps` are
/// as in RpParams and must be valid; k >= 1.
TopKResult MineTopKByRecurrence(const TransactionDatabase& db,
                                Timestamp period, uint64_t min_ps, size_t k,
                                const TopKOptions& options = {});

/// One full mining round at the given params; must behave exactly like
/// MineRecurringPatterns (the query engine injects planner-cached rounds
/// that clone a prebuilt tree instead of re-scanning the database).
using TopKMiningRound = std::function<RpGrowthResult(const RpParams&)>;

/// Optimistic starting threshold: the k-th largest value of
/// `item_recurrence_bounds` (the per-item Erec column of the RP-list),
/// clamped to >= floor_min_rec. Fewer than k items falls back to the floor.
uint64_t TopKInitialMinRec(std::vector<uint64_t> item_recurrence_bounds,
                           size_t k, uint64_t floor_min_rec);

/// Threshold-descent core shared by the database entry point above and the
/// query engine: mines at `initial_min_rec`, halves toward
/// `options.floor_min_rec` until k patterns qualify, returns the k best by
/// (recurrence, support, canonical order). `round` is invoked once per
/// descent step with params (period, min_ps, round_min_rec, tolerance).
TopKResult MineTopKWithRounds(Timestamp period, uint64_t min_ps, size_t k,
                              uint64_t initial_min_rec,
                              const TopKOptions& options,
                              const TopKMiningRound& round);

}  // namespace rpm

#endif  // RPM_CORE_TOP_K_H_
