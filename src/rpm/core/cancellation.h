// Cooperative cancellation and per-query resource budgets (DESIGN.md §7).
//
// A QueryBudget is the single stop-authority for one query execution. It
// folds four independent stop sources into one sticky decision:
//
//   - wall-clock deadline        → kDeadlineExceeded  (hard stop)
//   - tracked-memory budget      → kResourceExhausted (hard stop)
//   - external CancellationToken → kCancelled         (hard stop)
//   - max-patterns cap           → OK + truncated     (soft stop)
//
// Hot loops never consult the clock directly. They hold a per-thread
// BudgetCheckpointer whose Check() is, on the fast path, one relaxed
// atomic load of the shared stop flag; every kCheckpointStride calls it
// additionally runs Probe(), which reads the clock and the cancellation
// token. An over-budget query therefore stops within one checkpoint
// interval of the limit being crossed, on every participating thread.
//
// Memory accounting is cooperative too: structure builders report their
// approximate footprint via AddTrackedBytes/ReleaseTrackedBytes (RP-tree
// nodes + ts-list timestamps — transient per-thread scratch is excluded,
// see DESIGN.md §7.2), and the budget trips when the live total crosses
// the limit.

#ifndef RPM_CORE_CANCELLATION_H_
#define RPM_CORE_CANCELLATION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "rpm/common/deadline.h"
#include "rpm/common/status.h"

namespace rpm {

/// One-way external cancellation signal (e.g. a client disconnect).
/// Cancel() may be called from any thread, any number of times.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query limits. Zero means unlimited for every field.
struct ResourceLimits {
  /// Wall-clock budget for the whole query (plan + execute).
  int64_t timeout_ms = 0;
  /// Budget for live tracked structures (RP-tree nodes + ts-list
  /// timestamps across all threads), in bytes.
  uint64_t memory_budget_bytes = 0;
  /// Soft cap on emitted patterns; crossing it truncates the result but
  /// keeps status OK.
  uint64_t max_patterns = 0;

  bool unlimited() const {
    return timeout_ms == 0 && memory_budget_bytes == 0 && max_patterns == 0;
  }
};

/// Accounting filled in by the budget during execution and surfaced on
/// QueryResult (even for queries that finish within budget).
struct ResourceUsage {
  /// Clock/cancellation probes actually taken (not fast-path checks).
  uint64_t checkpoints = 0;
  /// RP-tree nodes constructed across all trees and threads.
  uint64_t nodes_built = 0;
  /// High-water mark of live tracked bytes.
  uint64_t tracked_bytes_peak = 0;
  /// Patterns counted against max_patterns.
  uint64_t patterns_emitted = 0;
};

/// Why a budget asked the query to stop. kPatternCap is the only soft
/// reason: it truncates the result without making the status non-OK.
enum class StopReason : uint8_t {
  kNone = 0,
  kPatternCap = 1,
  kCancelled = 2,
  kDeadline = 3,
  kMemory = 4,
};

/// Shared stop-authority for one query execution. Thread-safe: workers
/// poll stop_requested() and report usage concurrently. The first reason
/// to fire wins and is sticky for the lifetime of the budget.
class QueryBudget {
 public:
  /// Fast-path stop checks happen on every Check(); a full Probe()
  /// (clock + token) every this-many checks per thread.
  static constexpr uint32_t kCheckpointStride = 256;

  /// `cancel` may be null; it is not owned and must outlive the budget.
  QueryBudget(const ResourceLimits& limits, const CancellationToken* cancel);

  QueryBudget(const QueryBudget&) = delete;
  QueryBudget& operator=(const QueryBudget&) = delete;

  const ResourceLimits& limits() const { return limits_; }

  /// True once any stop source fired. One relaxed load — safe for the
  /// innermost mining loops.
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Full checkpoint: consults the deadline and the cancellation token
  /// (and the clock.skip failpoint). Called by BudgetCheckpointer every
  /// kCheckpointStride checks; callers with natural coarse boundaries
  /// (per transaction, per suffix item) may call it directly.
  /// Returns stop_requested() after the probe.
  bool Probe();

  /// Reports bytes of a newly live tracked structure; trips the memory
  /// stop when the live total crosses the budget.
  void AddTrackedBytes(uint64_t bytes);
  /// Reports that a tracked structure was released.
  void ReleaseTrackedBytes(uint64_t bytes);

  void AddNodes(uint64_t n) {
    nodes_built_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Counts `n` committed patterns (pure accounting). The max_patterns cap
  /// itself is enforced by the mining drivers at subproblem-commit
  /// boundaries — arithmetic on per-subproblem counts, never on this
  /// racy global — so sequential and parallel runs cut at the identical
  /// subproblem; a driver that cuts records it via
  /// RequestStop(StopReason::kPatternCap).
  void AddPatterns(uint64_t n) {
    patterns_.fetch_add(n, std::memory_order_relaxed);
  }

  StopReason stop_reason() const {
    return reason_.load(std::memory_order_acquire);
  }

  /// True when the budget stopped the query for a hard reason (deadline,
  /// memory, cancellation) — i.e. status() would be non-OK.
  bool hard_stopped() const {
    StopReason r = stop_reason();
    return r != StopReason::kNone && r != StopReason::kPatternCap;
  }

  /// The Status a query governed by this budget should return:
  /// OK for kNone and kPatternCap (the latter with a truncated result),
  /// kDeadlineExceeded / kResourceExhausted / kCancelled otherwise.
  Status status() const;

  /// Snapshot of the accounting so far. Safe to call while workers run,
  /// though mid-flight values are approximate.
  ResourceUsage usage() const;

  /// Forces a stop for an external reason (used by tests and the fault
  /// campaign). First reason still wins.
  void RequestStop(StopReason reason) { TripStop(reason); }

 private:
  /// First-wins: installs `reason` and raises the stop flag unless a
  /// reason is already set.
  void TripStop(StopReason reason);

  const ResourceLimits limits_;
  const CancellationToken* cancel_;
  const Deadline deadline_;

  std::atomic<bool> stop_{false};
  std::atomic<StopReason> reason_{StopReason::kNone};

  std::atomic<uint64_t> tracked_bytes_{0};
  std::atomic<uint64_t> tracked_bytes_peak_{0};
  std::atomic<uint64_t> nodes_built_{0};
  std::atomic<uint64_t> patterns_{0};
  std::atomic<uint64_t> checkpoints_{0};
};

/// Per-thread checkpoint helper for hot loops. Holds the countdown to the
/// next full Probe() so the shared budget is touched with one relaxed
/// load per Check() on the fast path. A null budget disables everything
/// at the cost of a single branch.
class BudgetCheckpointer {
 public:
  explicit BudgetCheckpointer(QueryBudget* budget) : budget_(budget) {}

  /// True when the query should stop. Call once per unit of work
  /// (pattern examined, transaction ingested, merge step).
  bool Check() {
    if (budget_ == nullptr) return false;
    if (budget_->stop_requested()) return true;
    if (--countdown_ == 0) {
      countdown_ = QueryBudget::kCheckpointStride;
      return budget_->Probe();
    }
    return false;
  }

  QueryBudget* budget() const { return budget_; }

 private:
  QueryBudget* budget_;
  uint32_t countdown_ = QueryBudget::kCheckpointStride;
};

}  // namespace rpm

#endif  // RPM_CORE_CANCELLATION_H_
