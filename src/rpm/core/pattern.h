// Recurring patterns and their periodic intervals (Definitions 5-9, Eq. 1).

#ifndef RPM_CORE_PATTERN_H_
#define RPM_CORE_PATTERN_H_

#include <string>
#include <vector>

#include "rpm/timeseries/item_dictionary.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// One periodic-interval pi = [begin, end] together with its
/// periodic-support ps (Definitions 5-6; one-to-one relationship).
struct PeriodicInterval {
  Timestamp begin = 0;
  Timestamp end = 0;
  uint64_t periodic_support = 0;

  /// Length of the window in time units.
  Timestamp Duration() const { return end - begin; }

  friend bool operator==(const PeriodicInterval&,
                         const PeriodicInterval&) = default;
};

/// A discovered recurring pattern in the paper's output form (Eq. 1):
///   X [Sup(X), Rec(X), {{pi_k : ps_k} | pi_k in IPI^X}]
struct RecurringPattern {
  /// Items sorted ascending.
  Itemset items;
  /// Sup(X) = |TS^X| over the whole database (Definition 3).
  uint64_t support = 0;
  /// The *interesting* periodic-intervals IPI^X, ordered by begin time.
  std::vector<PeriodicInterval> intervals;

  /// Rec(X) = |IPI^X| (Definition 8).
  uint64_t recurrence() const { return intervals.size(); }

  /// Eq. 1 rendering, e.g.
  ///   "ab [support=7, recurrence=2, {{[1,4]:3}, {[11,14]:3}}]".
  /// Items print as names when `dict` is given, else as ids.
  std::string ToString(const ItemDictionary* dict = nullptr) const;

  friend bool operator==(const RecurringPattern&,
                         const RecurringPattern&) = default;
};

/// Canonical order for result comparison: by itemset, lexicographically
/// (shorter prefix first).
void SortPatternsCanonically(std::vector<RecurringPattern>* patterns);

/// True iff both sets contain the same patterns with identical supports
/// and interval lists (order-insensitive). Used by equivalence tests.
bool SamePatternSets(std::vector<RecurringPattern> a,
                     std::vector<RecurringPattern> b);

/// Length of the longest pattern; 0 for an empty set (Table 8 column II).
size_t MaxPatternLength(const std::vector<RecurringPattern>& patterns);

}  // namespace rpm

#endif  // RPM_CORE_PATTERN_H_
