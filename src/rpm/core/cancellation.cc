#include "rpm/core/cancellation.h"

#include "rpm/common/failpoint.h"

namespace rpm {

QueryBudget::QueryBudget(const ResourceLimits& limits,
                         const CancellationToken* cancel)
    : limits_(limits),
      cancel_(cancel),
      deadline_(limits.timeout_ms > 0 ? Deadline::AfterMillis(limits.timeout_ms)
                                      : Deadline::Infinite()) {}

bool QueryBudget::Probe() {
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  if (cancel_ != nullptr && cancel_->cancelled()) {
    TripStop(StopReason::kCancelled);
  } else if (deadline_.Expired() ||
             (!deadline_.infinite() && FailpointTriggered("clock.skip"))) {
    // clock.skip simulates a scheduler stall / clock jump past the
    // deadline; it only fires for queries that actually have one.
    TripStop(StopReason::kDeadline);
  }
  return stop_requested();
}

void QueryBudget::AddTrackedBytes(uint64_t bytes) {
  uint64_t live =
      tracked_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = tracked_bytes_peak_.load(std::memory_order_relaxed);
  while (live > peak && !tracked_bytes_peak_.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
  if (limits_.memory_budget_bytes > 0 && live > limits_.memory_budget_bytes) {
    TripStop(StopReason::kMemory);
  }
}

void QueryBudget::ReleaseTrackedBytes(uint64_t bytes) {
  tracked_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

void QueryBudget::TripStop(StopReason reason) {
  StopReason expected = StopReason::kNone;
  if (reason_.compare_exchange_strong(expected, reason,
                                      std::memory_order_acq_rel)) {
    stop_.store(true, std::memory_order_release);
  }
}

Status QueryBudget::status() const {
  switch (stop_reason()) {
    case StopReason::kNone:
    case StopReason::kPatternCap:
      return Status::OK();
    case StopReason::kCancelled:
      return Status::Cancelled("query cancelled");
    case StopReason::kDeadline:
      return Status::DeadlineExceeded("query deadline exceeded");
    case StopReason::kMemory:
      return Status::ResourceExhausted("query memory budget exceeded");
  }
  return Status::Unknown("invalid stop reason");
}

ResourceUsage QueryBudget::usage() const {
  ResourceUsage u;
  u.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  u.nodes_built = nodes_built_.load(std::memory_order_relaxed);
  u.tracked_bytes_peak = tracked_bytes_peak_.load(std::memory_order_relaxed);
  u.patterns_emitted = patterns_.load(std::memory_order_relaxed);
  return u;
}

}  // namespace rpm
