#include "rpm/core/mining_params.h"

#include <cmath>

namespace rpm {

Status RpParams::Validate() const {
  if (period <= 0) {
    return Status::InvalidArgument("period must be > 0, got " +
                                   std::to_string(period));
  }
  if (min_ps < 1) {
    return Status::InvalidArgument("min_ps must be >= 1");
  }
  if (min_rec < 1) {
    return Status::InvalidArgument("min_rec must be >= 1");
  }
  return Status::OK();
}

std::string RpParams::ToString() const {
  std::string out = "per=" + std::to_string(period) +
                    ", minPS=" + std::to_string(min_ps) +
                    ", minRec=" + std::to_string(min_rec);
  if (max_gap_violations > 0) {
    out += ", maxViolations=" + std::to_string(max_gap_violations);
  }
  return out;
}

Result<RpParams> MakeParamsWithMinPsFraction(Timestamp period,
                                             double min_ps_fraction,
                                             uint64_t min_rec,
                                             size_t database_size,
                                             uint32_t max_gap_violations) {
  if (min_ps_fraction < 0.0 || min_ps_fraction > 1.0) {
    return Status::InvalidArgument("min_ps_fraction must be in [0, 1]");
  }
  RpParams params;
  params.period = period;
  params.min_ps = static_cast<uint64_t>(
      std::ceil(min_ps_fraction * static_cast<double>(database_size)));
  if (params.min_ps == 0) params.min_ps = 1;
  params.min_rec = min_rec;
  params.max_gap_violations = max_gap_violations;
  RPM_RETURN_NOT_OK(params.Validate());
  return params;
}

}  // namespace rpm
