// Suffix-item projections: the unit of parallelism of RP-growth.
//
// After the RP-tree is built, the mining work for each candidate suffix
// item ai is fully determined by ai's conditional pattern base — the
// prefix paths of ai's nodes together with the accumulated ts-lists of
// their subtrees (what sequential mining materializes incrementally via
// ts-list push-up, Lemma 3). ProjectSuffixItems runs one bottom-up
// collect-and-push-up sweep over the tree and snapshots each rank's base
// into a self-contained SuffixProjection. Projections share no storage
// with the tree or each other, so they can be mined on worker threads
// with no synchronization; mining each projection with the standard
// push-up recursion yields exactly the patterns the sequential miner
// finds for that suffix item.

#ifndef RPM_CORE_PROJECTION_H_
#define RPM_CORE_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "rpm/core/rp_tree.h"
#include "rpm/core/ts_merge.h"
#include "rpm/timeseries/types.h"

namespace rpm {

/// One element of a conditional pattern base, with owned storage.
struct ProjectedPath {
  /// Ancestor ranks in the parent tree's order, ascending (root side
  /// first), excluding the suffix rank itself.
  std::vector<uint32_t> ranks;
  /// Accumulated ts-list of the node's subtree: a concatenation of sorted
  /// runs (not globally sorted).
  TimestampList ts;
};

/// The independent mining subproblem of one suffix item.
struct SuffixProjection {
  /// Rank of the suffix item in the parent tree's order.
  uint32_t rank = 0;
  /// Conditional pattern base of the suffix item.
  std::vector<ProjectedPath> paths;
  /// TS^{item}: sorted union of all path ts-lists.
  TimestampList ts_beta;
};

/// Decomposes `tree` into one projection per suffix rank that has nodes,
/// in bottom-up (descending-rank) order — the sequential processing order.
/// Consumes the tree exactly like sequential mining does (ts-lists pushed
/// up, nodes detached); only the tree's rank->item mapping remains usable
/// afterwards. Each ts_beta is assembled with the run-aware merge kernel
/// (the same merges the sequential miner performs per top-level rank);
/// when `counters` is non-null the kernel's work is accumulated there.
std::vector<SuffixProjection> ProjectSuffixItems(
    TsPrefixTree* tree, MergeCounters* counters = nullptr);

}  // namespace rpm

#endif  // RPM_CORE_PROJECTION_H_
