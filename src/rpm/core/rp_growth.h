// RP-growth: pattern-growth mining of recurring patterns (Sec. 4,
// Algorithms 1-5).
//
// Pipeline:
//   1. One database scan builds the RP-list and prunes non-candidate items
//      by the Erec bound (Algorithm 1).
//   2. A second scan builds the RP-tree over candidate items in
//      support-descending order (Algorithms 2-3).
//   3. Bottom-up mining with ts-list push-up: for each suffix item collect
//      TS^beta, gate on Erec(beta) >= minRec, test the pattern with
//      getRecurrence (Algorithm 5), build the conditional tree from items
//      passing the conditional Erec gate, recurse (Algorithm 4).

#ifndef RPM_CORE_RP_GROWTH_H_
#define RPM_CORE_RP_GROWTH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/cancellation.h"
#include "rpm/core/mining_params.h"
#include "rpm/core/pattern.h"
#include "rpm/core/rp_list.h"
#include "rpm/core/rp_tree.h"
#include "rpm/timeseries/transaction_database.h"

namespace rpm {

/// Search-space gate used while growing patterns.
enum class PruningMode {
  /// The paper's Erec bound (Sec. 4.1) — default.
  kErec,
  /// Ablation baseline: only the trivial anti-monotone gate
  /// Sup(X) >= minPS * minRec (every recurring pattern needs that many
  /// timestamps). This is what a naive adaptation without the paper's
  /// contribution would use.
  kSupportOnly,
};

struct RpGrowthOptions {
  PruningMode pruning = PruningMode::kErec;
  /// 0 = unlimited. Patterns longer than this are neither emitted nor
  /// explored (useful to bound ablation runs).
  size_t max_pattern_length = 0;
  /// Invoked once per discovered pattern, in discovery (not canonical)
  /// order. Lets callers stream results to disk / aggregate counts without
  /// materialising the full set.
  std::function<void(const RecurringPattern&)> sink;
  /// When false, discovered patterns are only delivered to `sink` (and
  /// counted in stats) — RpGrowthResult::patterns stays empty. Low
  /// thresholds can produce 10^4-10^5 patterns (Table 5); combined with a
  /// sink this caps memory at O(tree).
  bool store_patterns = true;
  /// Worker threads: 1 = the sequential reference path, 0 = one per
  /// hardware thread, N = exactly N. The RP-list scan is always
  /// sequential; the initial RP-tree build partitions the transactions
  /// across this many workers (see BuildRankedTree), and with N > 1 each
  /// suffix item's conditional database is projected out of the tree and
  /// the projections are mined concurrently. The pattern set, its
  /// canonical order and all stats counters are identical for every
  /// value. `sink` callbacks are serialized (never concurrent), but their
  /// *order* is only deterministic at num_threads == 1.
  size_t num_threads = 1;
  /// Resource governance (DESIGN.md §7): deadline / memory / cancellation
  /// checkpoints plus the max-patterns cap. Not owned; null = ungoverned
  /// (zero overhead beyond one branch per checkpoint site). Truncation is
  /// all-or-nothing per top-level suffix subproblem: the result holds the
  /// complete patterns of a contiguous prefix of the bottom-up
  /// (descending-rank) subproblem order, so a max_patterns cut is
  /// bit-identical across sequential and parallel runs. Under an active
  /// budget, `sink` is best-effort — it may observe patterns from
  /// subproblems that are later dropped from the committed result.
  QueryBudget* budget = nullptr;
};

/// Instrumentation for the performance study and the pruning ablation.
struct RpGrowthStats {
  size_t num_items = 0;             ///< Distinct items in the database.
  size_t num_candidate_items = 0;   ///< Items surviving the RP-list gate.
  size_t initial_tree_nodes = 0;    ///< RP-tree size after construction.
  size_t conditional_trees = 0;     ///< Trees built during mining.
  size_t patterns_examined = 0;     ///< Suffix growths whose gate was run.
  size_t patterns_emitted = 0;      ///< Recurring patterns found.
  size_t threads_used = 1;          ///< Mining-phase worker count.
  // Ts-list merge-kernel counters (src/rpm/core/ts_merge.h). All three are
  // schedule-invariant: parallel runs report exactly the sequential values.
  size_t merge_invocations = 0;     ///< Run-merge kernel calls.
  size_t runs_merged = 0;           ///< Sorted runs consumed by the kernel.
  size_t timestamps_merged = 0;     ///< Timestamps written by the kernel.
  // Gate-scan (columnar kernel, core/ts_block.h) counters. Also
  // schedule-invariant: which ts-lists get gate-scanned depends only on
  // the data and params, never on the worker schedule. gaps_simd /
  // gaps_scanned is the SIMD lane utilization of the mining run (0 under
  // RPM_FORCE_SCALAR or off x86).
  size_t gate_lists_scanned = 0;    ///< Gate / interval scans performed.
  size_t gate_gaps_scanned = 0;     ///< Timestamp gaps evaluated in scans.
  size_t gate_gaps_simd = 0;        ///< Gaps evaluated at full vector width.
  /// Peak bytes retained by the miner scratch pools (frames, run
  /// descriptors, merge and mask buffers). Sequential: the single pool's
  /// high-water mark; parallel: the largest per-worker pool.
  size_t scratch_bytes_peak = 0;
  /// Bytes retained across ALL scratch pools together — the number
  /// comparable between thread counts (equals scratch_bytes_peak when
  /// sequential; the sum over per-worker pools when parallel).
  size_t scratch_bytes_total = 0;
  // RP-tree construction (see TreeBuildStats):
  size_t tree_build_threads = 1;    ///< Workers that built partial tries.
  size_t tree_partials_merged = 0;  ///< Partials folded in (0 = sequential).
  double tree_merge_seconds = 0.0;  ///< Wall clock of the partial-trie fold.
  double list_seconds = 0.0;        ///< Wall clock of the RP-list scan.
  double tree_seconds = 0.0;        ///< Wall clock of RP-tree construction.
  /// Wall clock of the mining phase (projection + workers when parallel).
  double mine_seconds = 0.0;
  /// Mining time summed across workers. Equals mine_seconds on one
  /// thread; exceeds it under parallelism (the ratio is the effective
  /// mining-phase speedup).
  double mine_cpu_seconds = 0.0;
  /// End-to-end wall clock, measured on its own stopwatch — NOT the sum
  /// of the phase timers, so parallel speedup stays visible even if
  /// phases ever overlap.
  double total_seconds = 0.0;
};

struct RpGrowthResult {
  std::vector<RecurringPattern> patterns;
  RpGrowthStats stats;
  /// Budget verdict: OK when the run completed (or was only cut by the
  /// soft max-patterns cap); kDeadlineExceeded / kResourceExhausted /
  /// kCancelled when a hard stop ended it early. Always OK without a
  /// budget.
  Status status;
  /// True when one or more subproblems were dropped — `patterns` then
  /// holds the committed bottom-up prefix. A non-OK status with
  /// truncated == false means the budget tripped only after mining had
  /// already completed (result is whole). Under truncation,
  /// stats.patterns_emitted counts committed patterns only, while the
  /// exploration counters (patterns_examined, conditional_trees, merge_*)
  /// keep counting the work actually performed.
  bool truncated = false;
};

/// Mines the complete set of recurring patterns of `db` under `params`.
/// `params` must validate (checked; invalid params are a caller bug).
/// Deterministic: patterns are returned in canonical itemset order.
///
/// Output size caution: like all itemset mining, the result can be
/// exponential in the longest transaction when thresholds are loose
/// (minPS * minRec close to 1). Use realistic thresholds, and
/// options.max_pattern_length / options.store_patterns=false to bound
/// exploration and memory when probing unknown data.
RpGrowthResult MineRecurringPatterns(const TransactionDatabase& db,
                                     const RpParams& params,
                                     const RpGrowthOptions& options = {});

// --- Phase-split API (query engine) ----------------------------------------
//
// Passes 1-2 (RP-list scan, candidate ordering, RP-tree construction) are
// query-independent given (period, tolerance, pruning mode): tightening
// minPS/minRec only *shrinks* the candidate set, so a tree built at looser
// thresholds is a superset of the stricter tree and mining it under the
// stricter params yields the identical pattern set (the Erec bound is
// anti-monotone and every per-pattern test is evaluated exactly from
// TS^beta). The engine's planner builds once via PrepareMining and mines
// many times via MineFromPrepared over tree Clone()s.

/// Instrumentation of one RP-tree construction, folded into the tree_*
/// fields of RpGrowthStats.
struct TreeBuildStats {
  size_t threads_used = 1;   ///< Workers that actually built partial tries.
  /// Partition-local tries folded into the master (0 for a sequential
  /// build, which constructs the master directly).
  size_t partials_merged = 0;
  /// Nodes visited by the fold — the sum of the absorbed partials' node
  /// counts, duplicates included (the fold's cost measure; the master's
  /// final NodeCount() is what PreparedMining::initial_tree_nodes holds).
  size_t merged_nodes = 0;
  double merge_seconds = 0.0;  ///< Wall clock of the fold phase.
};

/// Query-independent mining state: the RP-list and the built (unmined)
/// RP-tree, plus the build-phase stats that an end-to-end run would report.
struct PreparedMining {
  /// Params the tree was built at (the loosest params this build serves).
  RpParams params;
  PruningMode pruning = PruningMode::kErec;
  /// Full per-item aggregates (supports top-k threshold seeding).
  RpList list;
  /// Candidate order of the tree (rank r holds items_by_rank[r]).
  std::vector<ItemId> items_by_rank;
  /// The built tree. Mining consumes a tree, so repeated runs mine
  /// tree.Clone() and leave this master copy untouched.
  TsPrefixTree tree{std::vector<ItemId>{}};
  // Build-phase stats, folded into every MineFromPrepared result:
  size_t num_items = 0;
  size_t num_candidate_items = 0;
  size_t initial_tree_nodes = 0;
  double list_seconds = 0.0;
  double tree_seconds = 0.0;
  TreeBuildStats tree_build;
};

/// Runs passes 1-2 over `db` at `params` (which must validate). `budget`
/// (optional) checkpoints both scans and accounts tree bytes while
/// building; on a hard stop the returned build is partial and must be
/// discarded, never cached (check budget->hard_stopped()).
/// `tree_threads` parallelizes pass 2 (see BuildRankedTree); 1 is the
/// sequential reference, 0 = one worker per hardware thread. The built
/// tree is observably identical for every value.
PreparedMining PrepareMining(const TransactionDatabase& db,
                             const RpParams& params,
                             PruningMode pruning = PruningMode::kErec,
                             QueryBudget* budget = nullptr,
                             size_t tree_threads = 1);

/// Pass 2 only: builds the RP-tree of `db` over an externally supplied
/// candidate order (every id in `items_by_rank` distinct and <
/// db.ItemUniverseSize()). The streaming backend derives the order from
/// StreamingRpList candidate maintenance instead of the batch RP-list.
/// With a budget, the build checkpoints per transaction and reports the
/// growing tree's bytes (released again before returning — the caller
/// re-tracks the finished tree for the mining phase); a stopped build
/// returns a partial tree the caller must discard.
///
/// `num_threads` > 1 (0 = hardware) partitions the transactions into
/// contiguous ranges, builds one partial trie per range on the worker
/// pool, and folds the partials into the first partition's trie in
/// partition order. The result is observably identical to the sequential
/// build: node-link chains reproduce the sequential first-touch order and
/// every node's ts-list is the same database-order concatenation (only
/// internal Node::seq values and sibling-list order differ; nothing reads
/// either — see DESIGN.md §8.3). Budget checkpoints cover every partial
/// and every fold step, and each worker reports its partial's growth, so
/// governance semantics carry over. `stats`, when non-null, receives the
/// build's instrumentation.
TsPrefixTree BuildRankedTree(const TransactionDatabase& db,
                             const std::vector<ItemId>& items_by_rank,
                             QueryBudget* budget = nullptr,
                             size_t num_threads = 1,
                             TreeBuildStats* stats = nullptr);

/// Pass 3 (bottom-up mining) over `tree`, consumed in the process. `tree`
/// must come from `prepared` (the master or a Clone()), and `params` must
/// be no looser than prepared.params: same period and max_gap_violations,
/// params.min_ps >= prepared.params.min_ps, params.min_rec >=
/// prepared.params.min_rec (checked). options.pruning must equal
/// prepared.pruning. With equal params the result — patterns, stats
/// counters, canonical order — is bit-identical to MineRecurringPatterns;
/// with stricter params the pattern set is still exactly the stricter
/// run's, while tree/exploration counters reflect the looser build.
/// stats.total_seconds covers only this call (build time is in the folded
/// list_seconds/tree_seconds).
RpGrowthResult MineFromPrepared(const PreparedMining& prepared,
                                TsPrefixTree tree, const RpParams& params,
                                const RpGrowthOptions& options = {});

}  // namespace rpm

#endif  // RPM_CORE_RP_GROWTH_H_
