// Small string helpers shared by I/O, report formatting and benches.

#ifndef RPM_COMMON_STRING_UTIL_H_
#define RPM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rpm/common/status.h"

namespace rpm {

/// Splits on a single character; adjacent delimiters yield empty fields.
std::vector<std::string_view> Split(std::string_view text, char delim);

/// Splits on any run of ASCII whitespace; never yields empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strict integer parse of the whole field (no trailing junk, no overflow).
Result<int64_t> ParseInt64(std::string_view text);
Result<uint32_t> ParseUint32(std::string_view text);
Result<double> ParseDouble(std::string_view text);

/// Joins elements with `sep` using operator<< formatting.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep);

/// "1234567" -> "1,234,567" (for table output).
std::string FormatWithThousands(int64_t value);

/// Fixed-precision double ("12.34").
std::string FormatDouble(double value, int precision);

// --- implementation details below ---

template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    first = false;
    if constexpr (std::is_convertible_v<decltype(p), std::string_view>) {
      out += std::string_view(p);
    } else {
      out += std::to_string(p);
    }
  }
  return out;
}

}  // namespace rpm

#endif  // RPM_COMMON_STRING_UTIL_H_
