#include "rpm/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace rpm {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= static_cast<int>(g_min_level)) {
  if (enabled_) {
    // Strip directories for brevity.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace rpm
