#include "rpm/common/civil_time.h"

#include <cstdio>

namespace rpm {

int64_t DaysFromCivil(int32_t year, uint32_t month, uint32_t day) {
  // Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  int64_t y = year;
  y -= month <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);          // [0,399]
  const uint32_t doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;        // [0,365]
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

int64_t MinutesFromCivil(const CivilMinute& cm) {
  return DaysFromCivil(cm.year, cm.month, cm.day) * 1440 +
         static_cast<int64_t>(cm.hour) * 60 + cm.minute;
}

CivilMinute CivilFromMinutes(int64_t minutes_since_epoch) {
  int64_t days = minutes_since_epoch / 1440;
  int64_t rem = minutes_since_epoch % 1440;
  if (rem < 0) {
    rem += 1440;
    --days;
  }
  // Hinnant's civil_from_days.
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(days - era * 146097);
  const uint32_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint32_t mp = (5 * doy + 2) / 153;
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint32_t m = mp + (mp < 10 ? 3 : static_cast<uint32_t>(-9));

  CivilMinute cm;
  cm.year = static_cast<int32_t>(y + (m <= 2));
  cm.month = m;
  cm.day = d;
  cm.hour = static_cast<uint32_t>(rem / 60);
  cm.minute = static_cast<uint32_t>(rem % 60);
  return cm;
}

std::string FormatCivilMinute(const CivilMinute& cm) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02u:%02u", cm.year,
                cm.month, cm.day, cm.hour, cm.minute);
  return buf;
}

std::string FormatMinuteOffset(int64_t offset_minutes,
                               int64_t epoch_minutes) {
  return FormatCivilMinute(CivilFromMinutes(epoch_minutes + offset_minutes));
}

Result<CivilMinute> ParseCivilMinute(std::string_view text) {
  CivilMinute cm;
  int year = 0;
  unsigned month = 0, day = 0, hour = 0, minute = 0;
  int date_chars = 0;
  std::string owned(text);
  int fields = std::sscanf(owned.c_str(), "%d-%u-%u%n", &year, &month, &day,
                           &date_chars);
  if (fields != 3) {
    return Status::InvalidArgument("expected YYYY-MM-DD[ HH:MM], got '" +
                                   owned + "'");
  }
  const char* rest = owned.c_str() + date_chars;
  if (*rest != '\0') {
    int time_chars = 0;
    if (std::sscanf(rest, " %u:%u%n", &hour, &minute, &time_chars) != 2 ||
        rest[time_chars] != '\0') {
      return Status::InvalidArgument("malformed time in '" + owned + "'");
    }
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59) {
    return Status::InvalidArgument("date/time field out of range in '" +
                                   owned + "'");
  }
  cm.year = year;
  cm.month = month;
  cm.day = day;
  cm.hour = hour;
  cm.minute = minute;
  return cm;
}

}  // namespace rpm
