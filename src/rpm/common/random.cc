#include "rpm/common/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace rpm {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  RPM_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  RPM_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full-range request wrapped to zero.
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint32_t Rng::NextPoisson(double mean) {
  RPM_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    double g = NextGaussian(mean, std::sqrt(mean));
    if (g < 0.0) return 0;
    return static_cast<uint32_t>(std::llround(g));
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  uint32_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= NextDouble();
  }
  return n;
}

double Rng::NextExponential(double lambda) {
  RPM_DCHECK(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::NextGaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  RPM_DCHECK(stddev >= 0.0);
  return mean + stddev * NextGaussian();
}

uint64_t Rng::NextGeometric(double p) {
  RPM_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  RPM_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RPM_DCHECK(w >= 0.0);
    total += w;
  }
  RPM_DCHECK(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Numerical slack: land on the last bucket.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  RPM_DCHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions.
  std::vector<size_t> chosen;
  chosen.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextUint64(j + 1));
    bool seen = false;
    for (size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  RPM_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RPM_CHECK(w >= 0.0);
    total += w;
  }
  RPM_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t rest : large) prob_[rest] = 1.0;
  for (uint32_t rest : small) prob_[rest] = 1.0;
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  RPM_DCHECK(rng != nullptr);
  size_t i = static_cast<size_t>(rng->NextUint64(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace rpm
