// Wall-clock timing for benchmark harnesses (Tables 7, Fig. 9, ablations).

#ifndef RPM_COMMON_STOPWATCH_H_
#define RPM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rpm {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rpm

#endif  // RPM_COMMON_STOPWATCH_H_
