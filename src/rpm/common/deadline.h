// Monotonic wall-clock deadlines for resource-governed queries.
//
// A Deadline is a point on std::chrono::steady_clock (immune to system
// clock adjustments). The default-constructed deadline is infinite, so
// "no timeout" costs one comparison and never consults the clock.

#ifndef RPM_COMMON_DEADLINE_H_
#define RPM_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace rpm {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// The infinite deadline (never expires).
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. ms <= 0 is already expired.
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return infinite_; }

  /// True when the deadline has passed. Infinite deadlines never expire
  /// and never read the clock.
  bool Expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Milliseconds until expiry (negative when already expired).
  /// Precondition: !infinite().
  int64_t RemainingMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(when_ -
                                                                 Clock::now())
        .count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point when_{};
};

}  // namespace rpm

#endif  // RPM_COMMON_DEADLINE_H_
