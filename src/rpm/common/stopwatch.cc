#include "rpm/common/stopwatch.h"

// Header-only; this translation unit exists so the target has a stable
// archive member and the header gets compiled standalone at least once.
