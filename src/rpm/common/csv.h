// Minimal CSV reading/writing (RFC-4180 subset: quoted fields with embedded
// commas/quotes/newlines are supported; no multi-character delimiters).
//
// Used by the timestamped-transaction reader and by benches that dump series
// for external plotting.

#ifndef RPM_COMMON_CSV_H_
#define RPM_COMMON_CSV_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "rpm/common/status.h"

namespace rpm {

/// One parsed CSV record (row) as owned strings.
using CsvRow = std::vector<std::string>;

/// Incremental CSV parser over an input stream.
class CsvReader {
 public:
  /// The stream must outlive the reader.
  explicit CsvReader(std::istream* in, char delim = ',')
      : in_(in), delim_(delim) {}

  /// Reads the next record into *row. Returns:
  ///  - OK with *done == false when a record was produced,
  ///  - OK with *done == true at clean end-of-input,
  ///  - Corruption for malformed quoting.
  Status Next(CsvRow* row, bool* done);

  /// Line number of the most recently returned record (1-based).
  size_t line_number() const { return line_; }

  /// Byte offset (0-based, from the start of the stream) where the most
  /// recently returned record began. Error diagnostics combine it with
  /// line_number() so a failure is addressable with `head -c` as well as
  /// an editor.
  uint64_t record_byte_offset() const { return record_offset_; }

 private:
  std::istream* in_;
  char delim_;
  size_t line_ = 0;
  uint64_t consumed_ = 0;
  uint64_t record_offset_ = 0;
};

/// Streaming CSV writer; quotes fields only when necessary.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out, char delim = ',')
      : out_(out), delim_(delim) {}

  void WriteRow(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
  char delim_;
};

/// Convenience: parse an entire stream.
Result<std::vector<CsvRow>> ReadAllCsv(std::istream* in, char delim = ',');

}  // namespace rpm

#endif  // RPM_COMMON_CSV_H_
