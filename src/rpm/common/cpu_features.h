// Runtime CPU-feature detection for the SIMD kernel dispatch.
//
// The columnar ts-list kernels (core/ts_block.h) exist in scalar, SSE2 and
// AVX2 variants that are bit-identical by construction; which one runs is
// decided once per process from CPUID, never per call. Setting
// RPM_FORCE_SCALAR=1 in the environment pins the scalar path — CI uses it
// to exercise the fallback arm on AVX2 hardware, and it is the escape
// hatch if a vector unit ever misbehaves in production.

#ifndef RPM_COMMON_CPU_FEATURES_H_
#define RPM_COMMON_CPU_FEATURES_H_

namespace rpm {

/// Vector instruction tiers the kernels are compiled for, in strictly
/// increasing capability order (comparable with <).
enum class SimdLevel {
  kScalar = 0,  ///< Portable C++ loop; every platform.
  kSse2 = 1,    ///< 2 x 64-bit lanes (baseline on x86-64).
  kAvx2 = 2,    ///< 4 x 64-bit lanes.
};

/// Best level the hardware supports (CPUID probe; kScalar off x86).
/// Ignores RPM_FORCE_SCALAR — use it to ask "could we run AVX2 here?"
/// (tests comparing explicit kernel variants gate on this).
SimdLevel HardwareSimdLevel();

/// The level the dispatched kernels actually use: HardwareSimdLevel()
/// unless RPM_FORCE_SCALAR=1 was set when first called (the decision is
/// latched process-wide on first use).
SimdLevel ActiveSimdLevel();

/// "scalar" / "sse2" / "avx2" — stable strings for stats and bench JSON.
const char* SimdLevelName(SimdLevel level);

/// 64-bit lanes processed per vector at `level` (1 for scalar). The
/// gate-counter lane-utilization accounting uses this.
inline int SimdGapLanes(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return 4;
    case SimdLevel::kSse2:
      return 2;
    case SimdLevel::kScalar:
      break;
  }
  return 1;
}

}  // namespace rpm

#endif  // RPM_COMMON_CPU_FEATURES_H_
