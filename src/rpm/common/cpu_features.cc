#include "rpm/common/cpu_features.h"

#include <cstdlib>

namespace rpm {

SimdLevel HardwareSimdLevel() {
#if defined(__x86_64__)
  // __builtin_cpu_supports reads CPUID once and caches inside libgcc.
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kSse2;  // Architectural baseline on x86-64.
#elif defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = [] {
    const char* force = std::getenv("RPM_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1' && force[1] == '\0') {
      return SimdLevel::kScalar;
    }
    return HardwareSimdLevel();
  }();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace rpm
