// Minimal declarative command-line flag parsing for the CLI tools.
//
//   FlagParser parser("rpminer mine", "Mine recurring patterns");
//   int64_t per = 0;
//   parser.AddInt64("per", 1, "period threshold", &per);
//   RPM_RETURN_NOT_OK(parser.Parse(argc, argv));
//
// Accepts --name=value, --name value, and --flag for booleans. Unknown
// flags are errors; everything after "--" or not starting with "--" is
// positional.

#ifndef RPM_COMMON_FLAGS_H_
#define RPM_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rpm/common/status.h"

namespace rpm {

/// Declarative flag registry + parser. Not thread-safe; build, Parse once.
class FlagParser {
 public:
  FlagParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Registration: `out` receives the default now and the parsed value on
  /// Parse(). Pointers must outlive Parse().
  void AddString(std::string name, std::string default_value,
                 std::string help, std::string* out);
  void AddInt64(std::string name, int64_t default_value, std::string help,
                int64_t* out);
  void AddUint64(std::string name, uint64_t default_value, std::string help,
                 uint64_t* out);
  void AddDouble(std::string name, double default_value, std::string help,
                 double* out);
  /// Boolean flags: `--name` sets true, `--name=false` sets false.
  void AddBool(std::string name, bool default_value, std::string help,
               bool* out);

  /// Parses argv[1..); returns InvalidArgument on unknown flags or
  /// malformed values. Idempotent defaults: call order-independent.
  Status Parse(int argc, const char* const* argv);

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing every registered flag with default and help.
  std::string Help() const;

 private:
  enum class Type { kString, kInt64, kUint64, kDouble, kBool };
  struct Flag {
    std::string name;
    Type type;
    std::string help;
    std::string default_repr;
    void* out;
    bool seen = false;
  };

  Flag* Find(const std::string& name);
  Status Assign(Flag* flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rpm

#endif  // RPM_COMMON_FLAGS_H_
