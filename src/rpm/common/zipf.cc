#include "rpm/common/zipf.h"

#include <cmath>

#include "rpm/common/logging.h"

namespace rpm {

std::vector<double> ZipfWeights(size_t n, double exponent) {
  RPM_CHECK(n > 0);
  RPM_CHECK(exponent >= 0.0);
  std::vector<double> w(n);
  for (size_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), exponent);
  }
  return w;
}

namespace {
std::vector<double> NormalisedZipf(size_t n, double exponent) {
  std::vector<double> w = ZipfWeights(n, exponent);
  double total = 0.0;
  for (double x : w) total += x;
  for (double& x : w) x /= total;
  return w;
}
}  // namespace

ZipfSampler::ZipfSampler(size_t n, double exponent)
    : pmf_(NormalisedZipf(n, exponent)), sampler_(pmf_) {}

double ZipfSampler::ProbabilityOf(size_t rank) const {
  RPM_DCHECK(rank < pmf_.size());
  return pmf_[rank];
}

}  // namespace rpm
