// Minimal proleptic-Gregorian calendar arithmetic (Howard Hinnant's
// civil-days algorithms). Used to render minute-granularity timestamps as
// dates in reports, the way the paper's Table 6 prints periodic durations
// ("2013-06-21 01:08").

#ifndef RPM_COMMON_CIVIL_TIME_H_
#define RPM_COMMON_CIVIL_TIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "rpm/common/status.h"

namespace rpm {

/// A wall-clock minute in the proleptic Gregorian calendar (UTC-agnostic).
struct CivilMinute {
  int32_t year = 1970;
  uint32_t month = 1;  ///< 1-12
  uint32_t day = 1;    ///< 1-31
  uint32_t hour = 0;   ///< 0-23
  uint32_t minute = 0; ///< 0-59

  friend bool operator==(const CivilMinute&, const CivilMinute&) = default;
};

/// Days since 1970-01-01 for the given civil date (valid for all
/// Gregorian dates; negative before the epoch).
int64_t DaysFromCivil(int32_t year, uint32_t month, uint32_t day);

/// Minutes since 1970-01-01 00:00.
int64_t MinutesFromCivil(const CivilMinute& cm);

/// Inverse of MinutesFromCivil.
CivilMinute CivilFromMinutes(int64_t minutes_since_epoch);

/// "YYYY-MM-DD HH:MM".
std::string FormatCivilMinute(const CivilMinute& cm);

/// Convenience: formats `offset_minutes` past `epoch_minutes` (both in
/// minutes since 1970).
std::string FormatMinuteOffset(int64_t offset_minutes,
                               int64_t epoch_minutes);

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM" (time defaults to 00:00).
/// Validates field ranges (month 1-12, day 1-31, hour 0-23, minute 0-59).
Result<CivilMinute> ParseCivilMinute(std::string_view text);

}  // namespace rpm

#endif  // RPM_COMMON_CIVIL_TIME_H_
