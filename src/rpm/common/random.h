// Deterministic, seedable random number generation.
//
// All synthetic data generators in this project take an explicit seed and
// route every draw through Rng so that datasets (and therefore every table
// and figure in EXPERIMENTS.md) are reproducible bit-for-bit across runs.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded via splitmix64.

#ifndef RPM_COMMON_RANDOM_H_
#define RPM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "rpm/common/logging.h"

namespace rpm {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** pseudo-random generator with convenience samplers.
///
/// Not thread-safe; use one Rng per thread / generator instance.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via splitmix64. Any seed is valid.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform on [0, 2^64).
  uint64_t NextUint64();

  /// Uniform on [0, bound). Precondition: bound > 0. Unbiased (rejection).
  uint64_t NextUint64(uint64_t bound);

  /// Uniform on [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform on [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Poisson-distributed count with the given mean (mean >= 0).
  /// Uses Knuth's method for small means and a normal approximation
  /// (rounded, clamped at 0) for mean > 64.
  uint32_t NextPoisson(double mean);

  /// Exponential with the given rate lambda > 0.
  double NextExponential(double lambda);

  /// Standard normal via Box-Muller (no cached spare; stateless per call).
  double NextGaussian();

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double NextGaussian(double mean, double stddev);

  /// Geometric: number of failures before the first success, p in (0, 1].
  uint64_t NextGeometric(double p);

  /// Samples an index according to non-negative `weights` (at least one
  /// strictly positive). O(n) per draw; for repeated draws from the same
  /// distribution use DiscreteSampler below.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    RPM_DCHECK(values != nullptr);
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), ascending order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
};

/// O(1)-per-draw sampling from a fixed discrete distribution
/// (Walker/Vose alias method). Build once, draw many times.
class DiscreteSampler {
 public:
  /// Precondition: weights non-empty, all >= 0, sum > 0.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Returns an index in [0, size()) with probability proportional to its
  /// weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace rpm

#endif  // RPM_COMMON_RANDOM_H_
