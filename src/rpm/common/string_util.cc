#include "rpm/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace rpm {

std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t b = 0;
  while (b < text.size() &&
         std::isspace(static_cast<unsigned char>(text[b]))) {
    ++b;
  }
  size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
    --e;
  }
  return text.substr(b, e - b);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) {
    return Status::InvalidArgument("not an int64: '" + std::string(text) +
                                   "'");
  }
  return value;
}

Result<uint32_t> ParseUint32(std::string_view text) {
  uint32_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) {
    return Status::InvalidArgument("not a uint32: '" + std::string(text) +
                                   "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || text.empty()) {
    return Status::InvalidArgument("not a double: '" + std::string(text) +
                                   "'");
  }
  return value;
}

std::string FormatWithThousands(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  if (value < 0) out += '-';
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  out += digits.substr(0, lead);
  for (size_t i = lead; i < digits.size(); i += 3) {
    out += ',';
    out += digits.substr(i, 3);
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace rpm
