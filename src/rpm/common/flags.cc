#include "rpm/common/flags.h"

#include "rpm/common/string_util.h"

namespace rpm {

void FlagParser::AddString(std::string name, std::string default_value,
                           std::string help, std::string* out) {
  *out = default_value;
  flags_.push_back({std::move(name), Type::kString, std::move(help),
                    std::move(default_value), out});
}

void FlagParser::AddInt64(std::string name, int64_t default_value,
                          std::string help, int64_t* out) {
  *out = default_value;
  flags_.push_back({std::move(name), Type::kInt64, std::move(help),
                    std::to_string(default_value), out});
}

void FlagParser::AddUint64(std::string name, uint64_t default_value,
                           std::string help, uint64_t* out) {
  *out = default_value;
  flags_.push_back({std::move(name), Type::kUint64, std::move(help),
                    std::to_string(default_value), out});
}

void FlagParser::AddDouble(std::string name, double default_value,
                           std::string help, double* out) {
  *out = default_value;
  flags_.push_back({std::move(name), Type::kDouble, std::move(help),
                    FormatDouble(default_value, 4), out});
}

void FlagParser::AddBool(std::string name, bool default_value,
                         std::string help, bool* out) {
  *out = default_value;
  flags_.push_back({std::move(name), Type::kBool, std::move(help),
                    default_value ? "true" : "false", out});
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagParser::Assign(Flag* flag, const std::string& value) {
  switch (flag->type) {
    case Type::kString:
      *static_cast<std::string*>(flag->out) = value;
      return Status::OK();
    case Type::kInt64: {
      RPM_ASSIGN_OR_RETURN(*static_cast<int64_t*>(flag->out),
                           ParseInt64(value));
      return Status::OK();
    }
    case Type::kUint64: {
      Result<int64_t> parsed = ParseInt64(value);
      if (!parsed.ok() || *parsed < 0) {
        return Status::InvalidArgument("--" + flag->name +
                                       " expects a non-negative integer");
      }
      *static_cast<uint64_t*>(flag->out) = static_cast<uint64_t>(*parsed);
      return Status::OK();
    }
    case Type::kDouble: {
      RPM_ASSIGN_OR_RETURN(*static_cast<double*>(flag->out),
                           ParseDouble(value));
      return Status::OK();
    }
    case Type::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag->out) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag->out) = false;
      } else {
        return Status::InvalidArgument("--" + flag->name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      return Status::OK();
    }
  }
  return Status::Unknown("unhandled flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  bool only_positional = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (only_positional || !StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      only_positional = true;
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (size_t eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    Flag* flag = Find(body);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + body + "\n" +
                                     Help());
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("--" + body + " needs a value");
      }
    }
    RPM_RETURN_NOT_OK(Assign(flag, value));
    flag->seen = true;
  }
  return Status::OK();
}

std::string FlagParser::Help() const {
  std::string out = program_ + " — " + description_ + "\nflags:\n";
  for (const Flag& flag : flags_) {
    out += "  --" + flag.name + " (default " + flag.default_repr + "): " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace rpm
