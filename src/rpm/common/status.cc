#include "rpm/common/status.h"

namespace rpm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace rpm
