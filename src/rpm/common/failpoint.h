// Process-wide failpoint hook — the low-level half of the fault-injection
// framework (DESIGN.md §7.4).
//
// Library code marks the operations that can fail in production (node
// allocation, reader I/O, worker spawn, clock reads) with a named
// RPM_FAULT_POINT site. In normal operation the hook is null and a site
// costs one relaxed atomic load; when the seeded injector
// (rpm/verify/fault_injection.h) is armed, the hook decides per hit
// whether the site should simulate its failure.
//
// The hook lives in common/ (not verify/) so every layer can host sites
// without a dependency cycle; only the CLI/harness layer links the
// injector that installs a handler.

#ifndef RPM_COMMON_FAILPOINT_H_
#define RPM_COMMON_FAILPOINT_H_

#include <atomic>

namespace rpm {

/// Handler invoked per failpoint hit while armed. Returns true when the
/// site should simulate its failure. Must be thread-safe: sites fire from
/// worker threads.
using FailpointHandler = bool (*)(const char* site);

namespace internal {
/// The installed handler (null = disarmed). Defined in failpoint.cc.
extern std::atomic<FailpointHandler> g_failpoint_handler;
}  // namespace internal

/// Installs (or, with nullptr, removes) the process-wide handler.
void SetFailpointHandler(FailpointHandler handler);

/// True when the named site should simulate a failure now. The disarmed
/// fast path is a single relaxed atomic load — cheap enough for hot loops.
inline bool FailpointTriggered(const char* site) {
  FailpointHandler handler =
      internal::g_failpoint_handler.load(std::memory_order_acquire);
  return handler != nullptr && handler(site);
}

}  // namespace rpm

#endif  // RPM_COMMON_FAILPOINT_H_
