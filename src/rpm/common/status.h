// Status / Result error-handling primitives (RocksDB / Arrow idiom).
//
// Library code that can fail for data-dependent reasons (I/O, parsing,
// invalid user parameters) returns a Status or a Result<T> instead of
// throwing. Logic errors (violated preconditions on in-memory structures)
// are guarded with RPM_DCHECK and are bugs, not Statuses.

#ifndef RPM_COMMON_STATUS_H_
#define RPM_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace rpm {

/// Machine-readable category of a failure.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kNotFound = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kAlreadyExists = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
  kCancelled = 9,
  kUnknown = 255,
};

/// Returns a stable human-readable name for a StatusCode ("OK", "IOError"...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation); the message is only
/// populated on failure. All factory functions are static:
///
///   Status s = Status::InvalidArgument("per must be > 0");
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status explaining why there is none.
///
///   Result<TransactionDatabase> r = ReadSpmf(path);
///   if (!r.ok()) return r.status();
///   TransactionDatabase db = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return my_db;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: `return Status::IOError(...);`.
  /// Constructing from an OK status is a bug (there would be no value).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Unknown("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status::OK() when a value is held; the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  T& ValueOrDie() & { return std::get<T>(repr_); }
  T&& ValueOrDie() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates a non-OK status out of the current function.
#define RPM_RETURN_NOT_OK(expr)        \
  do {                                 \
    ::rpm::Status _s = (expr);         \
    if (!_s.ok()) return _s;           \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration.
#define RPM_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  RPM_ASSIGN_OR_RETURN_IMPL(                               \
      RPM_STATUS_CONCAT_(_rpm_result_, __LINE__), lhs, rexpr)

#define RPM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()

#define RPM_STATUS_CONCAT_(a, b) RPM_STATUS_CONCAT_IMPL_(a, b)
#define RPM_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace rpm

#endif  // RPM_COMMON_STATUS_H_
