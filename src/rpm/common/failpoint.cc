#include "rpm/common/failpoint.h"

namespace rpm {

namespace internal {
std::atomic<FailpointHandler> g_failpoint_handler{nullptr};
}  // namespace internal

void SetFailpointHandler(FailpointHandler handler) {
  internal::g_failpoint_handler.store(handler, std::memory_order_release);
}

}  // namespace rpm
