// Zipf-distributed sampling over ranks 0..n-1.
//
// Item popularity in real transaction streams (retail categories, hashtags)
// is heavy-tailed; the Shop-14-like and Twitter-like dataset generators use
// this sampler for the background traffic so that frequent and rare items
// coexist — the setting in which the paper's "rare item problem" discussion
// (Sec. 2 and 5.2) is meaningful.

#ifndef RPM_COMMON_ZIPF_H_
#define RPM_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "rpm/common/random.h"

namespace rpm {

/// Samples ranks with P(rank = k) proportional to 1 / (k + 1)^exponent.
/// Built once (O(n)), then O(1) per draw via the alias method.
class ZipfSampler {
 public:
  /// Precondition: n > 0, exponent >= 0 (0 degenerates to uniform).
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng* rng) const { return sampler_.Sample(rng); }
  size_t size() const { return sampler_.size(); }

  /// Probability mass of a single rank (for tests and analytics).
  double ProbabilityOf(size_t rank) const;

 private:
  std::vector<double> pmf_;
  DiscreteSampler sampler_;
};

/// Raw Zipf weights 1/(k+1)^exponent for ranks 0..n-1 (unnormalised).
std::vector<double> ZipfWeights(size_t n, double exponent);

}  // namespace rpm

#endif  // RPM_COMMON_ZIPF_H_
