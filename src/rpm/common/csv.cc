#include "rpm/common/csv.h"

namespace rpm {

Status CsvReader::Next(CsvRow* row, bool* done) {
  row->clear();
  *done = false;

  int first = in_->peek();
  if (first == std::char_traits<char>::eof()) {
    *done = true;
    return Status::OK();
  }
  ++line_;
  record_offset_ = consumed_;

  std::string field;
  bool in_quotes = false;
  bool any_char = false;
  for (;;) {
    int ci = in_->get();
    if (ci != std::char_traits<char>::eof()) ++consumed_;
    if (ci == std::char_traits<char>::eof()) {
      if (in_quotes) {
        return Status::Corruption("unterminated quoted field at line " +
                                  std::to_string(line_));
      }
      row->push_back(std::move(field));
      return Status::OK();
    }
    char c = static_cast<char>(ci);
    any_char = true;
    if (in_quotes) {
      if (c == '"') {
        if (in_->peek() == '"') {
          in_->get();
          ++consumed_;
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delim_) {
      row->push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      if (!field.empty() && field.back() == '\r') field.pop_back();
      row->push_back(std::move(field));
      return Status::OK();
    } else {
      field += c;
    }
  }
  (void)any_char;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  bool first = true;
  for (const std::string& f : fields) {
    if (!first) *out_ << delim_;
    first = false;
    bool needs_quote = f.find_first_of("\"\n\r") != std::string::npos ||
                       f.find(delim_) != std::string::npos;
    if (!needs_quote) {
      *out_ << f;
      continue;
    }
    *out_ << '"';
    for (char c : f) {
      if (c == '"') *out_ << '"';
      *out_ << c;
    }
    *out_ << '"';
  }
  *out_ << '\n';
}

Result<std::vector<CsvRow>> ReadAllCsv(std::istream* in, char delim) {
  CsvReader reader(in, delim);
  std::vector<CsvRow> rows;
  for (;;) {
    CsvRow row;
    bool done = false;
    RPM_RETURN_NOT_OK(reader.Next(&row, &done));
    if (done) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace rpm
