// Minimal leveled logging and check macros.
//
// RPM_LOG(INFO) << "built tree with " << n << " nodes";
// RPM_CHECK(x > 0) << "x must be positive, got " << x;   // aborts on failure
// RPM_DCHECK(...) is compiled out in NDEBUG builds.

#ifndef RPM_COMMON_LOGGING_H_
#define RPM_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace rpm {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and flushes it (to stderr) on destruction.
/// kFatal messages abort the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a check passes / logging disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define RPM_LOG(level)                                              \
  ::rpm::internal::LogMessage(::rpm::LogLevel::k##level, __FILE__,  \
                              __LINE__)

// The while-loop form lets callers chain extra context:
//   RPM_CHECK(x > 0) << "got " << x;
// LogMessage at kFatal aborts, so the loop body runs at most once.
#define RPM_CHECK(cond)                                           \
  while (!(cond))                                                 \
  ::rpm::internal::LogMessage(::rpm::LogLevel::kFatal, __FILE__,  \
                              __LINE__)                           \
      << "Check failed: " #cond " "

#ifdef NDEBUG
#define RPM_DCHECK(cond) \
  while (false) RPM_CHECK(cond)
#else
#define RPM_DCHECK(cond) RPM_CHECK(cond)
#endif

}  // namespace rpm

#endif  // RPM_COMMON_LOGGING_H_
