#include "rpm/serve/wire.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rpm::serve {

namespace {

/// Cursor over the input with position-annotated errors.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    RPM_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.size() - pos_ < word.size()) return false;
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    // A container at depth d holds values at depth d+1, so rejecting
    // depth >= kMaxJsonDepth caps total nesting at exactly kMaxJsonDepth.
    if (depth >= kMaxJsonDepth) {
      return Error("nesting deeper than " + std::to_string(kMaxJsonDepth));
    }
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of input");
    const char c = Peek();
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error(std::string("unexpected character '") + c + "'");
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected member name");
      std::string key;
      RPM_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after member name");
      JsonValue value;
      RPM_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      RPM_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (text_.size() - pos_ < 4) return Error("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes are not supported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(std::string("unknown escape '\\") + esc + "'");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("malformed number");
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(d)) {
      return Error("number out of range: '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = d;
    if (integral) {
      errno = 0;
      const long long i = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        out->integer = static_cast<int64_t>(i);
        out->is_integer = true;
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status WrongKind(std::string_view field, const char* expected) {
  return Status::InvalidArgument("field '" + std::string(field) +
                                 "' must be " + expected);
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<std::string> JsonValue::GetString(std::string_view field) const {
  if (kind != Kind::kString) return WrongKind(field, "a string");
  return string_value;
}

Result<int64_t> JsonValue::GetInt64(std::string_view field) const {
  if (kind != Kind::kNumber || !is_integer) {
    return WrongKind(field, "an integer");
  }
  return integer;
}

Result<uint64_t> JsonValue::GetUint64(std::string_view field) const {
  if (kind != Kind::kNumber || !is_integer || integer < 0) {
    return WrongKind(field, "a non-negative integer");
  }
  return static_cast<uint64_t>(integer);
}

Result<double> JsonValue::GetDouble(std::string_view field) const {
  if (kind != Kind::kNumber) return WrongKind(field, "a number");
  return number;
}

Result<bool> JsonValue::GetBool(std::string_view field) const {
  if (kind != Kind::kBool) return WrongKind(field, "a boolean");
  return bool_value;
}

Result<JsonValue> ParseJson(std::string_view text) {
  if (text.size() > kMaxJsonBytes) {
    return Status::InvalidArgument(
        "JSON input exceeds " + std::to_string(kMaxJsonBytes) + " bytes");
  }
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rpm::serve
