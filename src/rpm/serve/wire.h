// Minimal JSON for the serve wire protocol (DESIGN.md §10).
//
// The server speaks line-delimited JSON over TCP: one request object per
// line in, one response object per line out. This header is the parsing
// half — a small, strict, depth-limited recursive-descent parser returning
// an owned JsonValue tree — plus the escaping helper the serializers use.
// It exists so the serve layer has no external dependencies and so
// malformed client input is a Status, never an exception or a crash
// (robustness is the point: every byte of a request is attacker-shaped).
//
// Limits (all return InvalidArgument, never UB):
//   - nesting depth  <= kMaxJsonDepth
//   - input size     <= kMaxJsonBytes
//   - numbers must fit double (and int64 when integral)
//   - strings must be valid \-escapes; \uXXXX accepted for the BMP
//     (surrogate pairs rejected — item names and flags are ASCII).

#ifndef RPM_SERVE_WIRE_H_
#define RPM_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rpm/common/status.h"

namespace rpm::serve {

/// Nesting bound for ParseJson; requests are flat, so 16 is generous.
inline constexpr int kMaxJsonDepth = 16;
/// Input-size bound for ParseJson (also the server's line-length cap).
inline constexpr size_t kMaxJsonBytes = 1 << 20;

/// One parsed JSON value. Object member order is preserved (responses are
/// serialized field-by-field, so order only matters for test readability).
struct JsonValue {
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  /// Numbers keep both views: `number` always holds the parsed double;
  /// `integer` is valid iff `is_integer` (no '.', 'e', fits int64).
  double number = 0.0;
  int64_t integer = 0;
  bool is_integer = false;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// First member with `key`, or nullptr. Linear scan — request objects
  /// have ~a dozen members.
  const JsonValue* Find(std::string_view key) const;

  /// Typed accessors for request fields: wrong kind (or out-of-range
  /// number) is InvalidArgument naming `field` so protocol errors read
  /// well on the wire.
  Result<std::string> GetString(std::string_view field) const;
  Result<int64_t> GetInt64(std::string_view field) const;
  Result<uint64_t> GetUint64(std::string_view field) const;
  Result<double> GetDouble(std::string_view field) const;
  Result<bool> GetBool(std::string_view field) const;
};

/// Parses exactly one JSON value; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

/// JSON string escaping for the response serializers (quotes, backslash,
/// control characters; everything else passes through byte-for-byte).
std::string JsonEscape(std::string_view text);

}  // namespace rpm::serve

#endif  // RPM_SERVE_WIRE_H_
