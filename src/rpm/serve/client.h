// Minimal blocking line-protocol client for the query server — the test
// half of the wire contract. Used by tests/serve_server_test.cc and the
// serve arm of the fault campaign (verify/fault_injection.cc); scripts
// speak the same protocol from Python (scripts/server_soak.py).
//
// Every read carries a timeout: a campaign client must distinguish "the
// server closed on me" (an injected connection fault — recoverable, retry
// on a fresh connection) from "the server hung" (a campaign failure).

#ifndef RPM_SERVE_CLIENT_H_
#define RPM_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "rpm/common/status.h"

namespace rpm::serve {

class LineClient {
 public:
  LineClient() = default;
  LineClient(LineClient&& other) noexcept { *this = std::move(other); }
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  ~LineClient() { Close(); }

  /// Connects to 127.0.0.1:port. IOError on refusal.
  static Result<LineClient> Connect(uint16_t port);

  /// Sends `line` + '\n'. IOError when the connection is gone.
  Status SendLine(const std::string& line);

  /// Reads one '\n'-terminated line (without the terminator).
  /// IOError("connection closed...") on server EOF; DeadlineExceeded
  /// after `timeout_ms` with no complete line.
  Result<std::string> ReadLine(int64_t timeout_ms = 5000);

  /// SendLine + ReadLine.
  Result<std::string> Call(const std::string& line,
                           int64_t timeout_ms = 5000);

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_CLIENT_H_
