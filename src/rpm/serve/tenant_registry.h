// Per-tenant resource quotas for the serve admission controller
// (DESIGN.md §10). A tenant is a client-declared name on each request;
// quotas bound what any one name can take from the shared process so a
// hot tenant can never starve the rest.
//
// Quotas derive from the PR 5 ResourceLimits vocabulary: the per-query
// deadline / memory / max-patterns limits a tenant requests are CLAMPED to
// its quota ceilings (a request can always ask for less, never more), and
// concurrency is bounded by (max_concurrent, max_queued) enforced in
// serve/admission.h.

#ifndef RPM_SERVE_TENANT_REGISTRY_H_
#define RPM_SERVE_TENANT_REGISTRY_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/core/cancellation.h"

namespace rpm::serve {

/// Ceilings for one tenant. Defaults are the serve defaults for any
/// tenant absent from the config (pinned in tests/serve_flags_test.cc).
struct TenantQuotas {
  /// Queries of this tenant executing at once.
  uint64_t max_concurrent = 2;
  /// Admission-queue depth beyond the concurrent cap; a request arriving
  /// with the queue full is rejected OVERLOADED immediately.
  uint64_t max_queued = 8;
  /// Ceiling on a query's wall-clock deadline; requests with no deadline
  /// get exactly this. 0 = unlimited (no ceiling imposed).
  uint64_t deadline_ceiling_ms = 30000;
  /// Ceiling on a query's tracked-memory budget, in MiB. 0 = unlimited.
  uint64_t memory_ceiling_mb = 256;
  /// Ceiling on a query's max-patterns cap. 0 = unlimited.
  uint64_t max_patterns = 0;

  /// Requested per-query limits clamped to these ceilings: a zero
  /// (unlimited) request takes the ceiling; a nonzero request is capped
  /// at it.
  ResourceLimits ClampLimits(const ResourceLimits& requested) const;
};

/// Tenant-name -> quotas, with a default for unknown tenants. Immutable
/// after LoadConfig; safe to read from any number of session threads.
class TenantRegistry {
 public:
  /// Registry where every tenant gets `defaults`.
  explicit TenantRegistry(TenantQuotas defaults = {})
      : defaults_(defaults) {}

  /// Parses a line-delimited JSON config: one object per line,
  ///   {"tenant": "alice", "max_concurrent": 4, "max_queued": 16,
  ///    "deadline_ceiling_ms": 5000, "memory_ceiling_mb": 128,
  ///    "max_patterns": 10000}
  /// Omitted fields keep the default value; the reserved tenant name
  /// "default" overrides the defaults themselves (and applies to tenants
  /// configured on LATER lines only if they omit the field — defaults are
  /// resolved at parse time). Blank lines and '#' comments are skipped.
  /// Unknown fields and duplicate tenants are errors.
  Status LoadConfig(std::istream& config);

  /// Quotas for `tenant` (the configured entry or the defaults).
  const TenantQuotas& QuotasFor(const std::string& tenant) const;

  const TenantQuotas& defaults() const { return defaults_; }

  /// Configured tenant names, sorted (for `stats` and logs).
  std::vector<std::string> ConfiguredTenants() const;

 private:
  TenantQuotas defaults_;
  std::map<std::string, TenantQuotas> tenants_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_TENANT_REGISTRY_H_
