#include "rpm/serve/protocol.h"

#include <sstream>

#include "rpm/analysis/export.h"
#include "rpm/serve/wire.h"

namespace rpm::serve {

namespace {

Status ApplyQueryField(const std::string& key, const JsonValue& value,
                       Request* request) {
  engine::Query& q = request->query;
  if (key == "per") {
    RPM_ASSIGN_OR_RETURN(q.params.period, value.GetInt64(key));
  } else if (key == "min_ps") {
    RPM_ASSIGN_OR_RETURN(q.params.min_ps, value.GetUint64(key));
  } else if (key == "min_rec") {
    RPM_ASSIGN_OR_RETURN(q.params.min_rec, value.GetUint64(key));
  } else if (key == "tolerance") {
    uint64_t tolerance = 0;
    RPM_ASSIGN_OR_RETURN(tolerance, value.GetUint64(key));
    q.params.max_gap_violations = static_cast<uint32_t>(tolerance);
  } else if (key == "top_k") {
    RPM_ASSIGN_OR_RETURN(q.top_k, value.GetUint64(key));
  } else if (key == "max_length") {
    RPM_ASSIGN_OR_RETURN(q.max_pattern_length, value.GetUint64(key));
  } else if (key == "closed") {
    RPM_ASSIGN_OR_RETURN(q.closed, value.GetBool(key));
  } else if (key == "maximal") {
    RPM_ASSIGN_OR_RETURN(q.maximal, value.GetBool(key));
  } else if (key == "timeout_ms") {
    uint64_t timeout_ms = 0;
    RPM_ASSIGN_OR_RETURN(timeout_ms, value.GetUint64(key));
    q.limits.timeout_ms = static_cast<int64_t>(timeout_ms);
  } else if (key == "max_memory_mb") {
    uint64_t mb = 0;
    RPM_ASSIGN_OR_RETURN(mb, value.GetUint64(key));
    q.limits.memory_budget_bytes = mb * 1024ull * 1024ull;
  } else if (key == "max_patterns") {
    RPM_ASSIGN_OR_RETURN(q.limits.max_patterns, value.GetUint64(key));
  } else if (key == "window") {
    RPM_ASSIGN_OR_RETURN(q.window, value.GetInt64(key));
  } else if (key == "delta") {
    RPM_ASSIGN_OR_RETURN(q.delta, value.GetUint64(key));
  } else if (key == "backend") {
    std::string name;
    RPM_ASSIGN_OR_RETURN(name, value.GetString(key));
    RPM_ASSIGN_OR_RETURN(request->backend, engine::ParseBackend(name));
  } else if (key == "threads") {
    RPM_ASSIGN_OR_RETURN(request->threads, value.GetUint64(key));
  } else if (key == "meta") {
    RPM_ASSIGN_OR_RETURN(request->want_meta, value.GetBool(key));
  } else {
    return Status::InvalidArgument("unknown request field '" + key + "'");
  }
  return Status::OK();
}

}  // namespace

const char* WireStatusName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnknown:
      return "UNKNOWN";
  }
  return "UNKNOWN";
}

Result<Request> ParseRequest(const std::string& line) {
  RPM_ASSIGN_OR_RETURN(JsonValue root, ParseJson(line));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  for (const auto& [key, value] : root.members) {
    if (key == "op") {
      RPM_ASSIGN_OR_RETURN(request.op, value.GetString(key));
    } else if (key == "id") {
      RPM_ASSIGN_OR_RETURN(request.id, value.GetString(key));
    } else if (key == "tenant") {
      RPM_ASSIGN_OR_RETURN(request.tenant, value.GetString(key));
      if (request.tenant.empty()) {
        return Status::InvalidArgument("tenant name must be non-empty");
      }
    } else if (key == "dataset") {
      RPM_ASSIGN_OR_RETURN(request.dataset, value.GetString(key));
    } else if (key == "path") {
      RPM_ASSIGN_OR_RETURN(request.path, value.GetString(key));
    } else if (key == "format") {
      RPM_ASSIGN_OR_RETURN(request.format, value.GetString(key));
    } else {
      RPM_RETURN_NOT_OK(ApplyQueryField(key, value, &request));
    }
  }

  if (request.op == "ping" || request.op == "list" || request.op == "stats") {
    return request;
  }
  if (request.op == "query") {
    if (request.dataset.empty()) {
      return Status::InvalidArgument("query requires a \"dataset\" name");
    }
    // Mirror the CLI's minPS resolution: zero means "at least once".
    if (request.query.params.min_ps == 0) request.query.params.min_ps = 1;
    RPM_RETURN_NOT_OK(request.query.Validate());
    return request;
  }
  if (request.op == "swap") {
    if (request.dataset.empty()) {
      return Status::InvalidArgument("swap requires a \"dataset\" name");
    }
    if (request.path.empty()) {
      return Status::InvalidArgument("swap requires a \"path\"");
    }
    return request;
  }
  if (request.op.empty()) {
    return Status::InvalidArgument("request is missing \"op\"");
  }
  return Status::InvalidArgument(
      "unknown op '" + request.op +
      "' (expected ping|list|query|swap|stats)");
}

std::string CacheKey(const std::string& dataset, uint64_t epoch,
                     const engine::Query& query) {
  std::ostringstream key;
  key << dataset << '\x1f' << epoch << '\x1f' << query.params.period << '|'
      << query.params.min_ps << '|' << query.params.min_rec << '|'
      << query.params.max_gap_violations << '|' << query.max_pattern_length
      << '|' << query.top_k << '|' << query.closed << '|' << query.maximal
      << '|' << query.window << '|' << query.delta;
  return key.str();
}

Result<std::string> QueryPayload(const engine::QueryResult& result,
                                 const ItemDictionary& dict) {
  std::ostringstream patterns;
  RPM_RETURN_NOT_OK(
      analysis::WritePatternsJson(result.patterns, dict, &patterns));
  std::ostringstream payload;
  payload << "\"status\":\"" << WireStatusName(result.status.code())
          << "\",\"truncated\":" << (result.truncated ? "true" : "false")
          << ",\"pattern_count\":" << result.patterns.size()
          << ",\"patterns_json\":\"" << JsonEscape(patterns.str()) << '"';
  if (!result.status.ok()) {
    payload << ",\"error\":\"" << JsonEscape(result.status.message())
            << '"';
  }
  return payload.str();
}

std::string WrapResponse(const std::string& id, const std::string& payload,
                         const std::string& meta) {
  std::string line = "{\"id\":\"" + JsonEscape(id) + "\"," + payload;
  if (!meta.empty()) line += ",\"meta\":{" + meta + "}";
  line += "}";
  return line;
}

std::string ErrorResponse(const std::string& id, const std::string& status,
                          const std::string& message) {
  return "{\"id\":\"" + JsonEscape(id) + "\",\"status\":\"" + status +
         "\",\"error\":\"" + JsonEscape(message) + "\"}";
}

std::string OverloadedResponse(const std::string& id,
                               int64_t retry_after_ms,
                               const std::string& rejected_by) {
  return "{\"id\":\"" + JsonEscape(id) + "\",\"status\":\"" +
         kStatusOverloaded +
         "\",\"error\":\"admission queue full (" + rejected_by +
         " limit)\",\"retry_after_ms\":" + std::to_string(retry_after_ms) +
         ",\"rejected_by\":\"" + rejected_by + "\"}";
}

}  // namespace rpm::serve
