#include "rpm/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "rpm/common/deadline.h"
#include "rpm/common/failpoint.h"
#include "rpm/serve/protocol.h"
#include "rpm/serve/wire.h"

namespace rpm::serve {

namespace {

constexpr int kPollMillis = 50;

/// Sends `line` + '\n' whole, riding out partial writes and EINTR.
/// MSG_NOSIGNAL: a vanished client must surface as a return value here,
/// never as a process-killing SIGPIPE.
bool WriteLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(QueryService* service, const Options& options)
    : service_(service), options_(options) {}

Server::~Server() {
  if (listen_fd_ >= 0) Drain();
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::IOError("bind 127.0.0.1:" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, kPollMillis);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      ReapLocked();
    }
    if (rc <= 0) continue;  // Timeout, EINTR: re-check stopping_.

    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (FailpointTriggered("serve.accept")) {
      ::close(client);  // Injected accept failure: drop this one client.
      continue;
    }

    std::lock_guard<std::mutex> lock(sessions_mutex_);
    if (sessions_.size() >= options_.max_sessions) {
      WriteLine(client, ErrorResponse("", kStatusUnavailable,
                                      "session limit reached (" +
                                          std::to_string(
                                              options_.max_sessions) +
                                          ")"));
      ::close(client);
      continue;
    }
    auto slot = std::make_unique<SessionSlot>();
    slot->fd = client;
    SessionSlot* raw = slot.get();
    sessions_.push_back(std::move(slot));
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::SessionLoop(SessionSlot* slot) {
  const int fd = slot->fd;
  if (FailpointTriggered("serve.session.alloc")) {
    WriteLine(fd, ErrorResponse("", kStatusUnavailable,
                                "session setup failed"));
    ::close(fd);
    slot->done.store(true, std::memory_order_release);
    return;
  }

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    pollfd pfd{fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, kPollMillis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      // Idle tick: during drain an idle session closes (its last
      // response is already flushed — responses are written inline).
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // Client EOF.
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (FailpointTriggered("serve.read")) break;  // Injected read failure.
    buffer.append(chunk, static_cast<size_t>(n));

    size_t pos;
    while (open && (pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response = service_->HandleLine(line);
      if (FailpointTriggered("serve.write")) {
        open = false;  // Injected write failure: close, don't abort.
        break;
      }
      if (!WriteLine(fd, response)) {
        open = false;
        break;
      }
    }
    if (open && buffer.size() > kMaxJsonBytes) {
      WriteLine(fd, ErrorResponse(
                        "", WireStatusName(StatusCode::kInvalidArgument),
                        "request line exceeds " +
                            std::to_string(kMaxJsonBytes) + " bytes"));
      open = false;
    }
  }
  ::close(fd);
  slot->done.store(true, std::memory_order_release);
}

size_t Server::Drain() {
  if (drained_.exchange(true)) return 0;
  // Order matters: QueryService first (new queries -> UNAVAILABLE, queued
  // admissions wake, in-flight queries see cancellation), THEN stop
  // accepting, THEN give sessions the grace window to flush.
  service_->BeginDrain();
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();

  const Deadline deadline = Deadline::AfterMillis(options_.drain_deadline_ms);
  for (;;) {
    bool all_done = true;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (const auto& slot : sessions_) {
        if (!slot->done.load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done || deadline.Expired()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  size_t forced = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& slot : sessions_) {
      if (!slot->done.load(std::memory_order_acquire)) {
        // Grace expired: sever the socket; the session loop's next recv
        // returns and the thread exits (its query is already cancelled).
        ::shutdown(slot->fd, SHUT_RDWR);
        ++forced;
      }
    }
    for (const auto& slot : sessions_) {
      if (slot->thread.joinable()) slot->thread.join();
    }
    sessions_.clear();
  }
  return forced;
}

size_t Server::active_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  size_t open = 0;
  for (const auto& slot : sessions_) {
    if (!slot->done.load(std::memory_order_acquire)) ++open;
  }
  return open;
}

void Server::ReapLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rpm::serve
