#include "rpm/serve/tenant_registry.h"

#include <algorithm>
#include <istream>

#include "rpm/serve/wire.h"

namespace rpm::serve {

namespace {

uint64_t ClampOne(uint64_t requested, uint64_t ceiling) {
  if (ceiling == 0) return requested;             // No ceiling.
  if (requested == 0) return ceiling;             // Unlimited -> ceiling.
  return std::min(requested, ceiling);
}

/// Applies one config object onto `quotas`; rejects unknown fields so
/// typos fail loudly at startup instead of silently granting defaults.
Status ApplyConfigObject(const JsonValue& object, TenantQuotas* quotas,
                         std::string* tenant_out) {
  for (const auto& [key, value] : object.members) {
    if (key == "tenant") {
      RPM_ASSIGN_OR_RETURN(*tenant_out, value.GetString(key));
    } else if (key == "max_concurrent") {
      RPM_ASSIGN_OR_RETURN(quotas->max_concurrent, value.GetUint64(key));
      if (quotas->max_concurrent == 0) {
        return Status::InvalidArgument(
            "max_concurrent must be >= 1 (0 would deny the tenant "
            "entirely; omit the tenant from the config instead)");
      }
    } else if (key == "max_queued") {
      RPM_ASSIGN_OR_RETURN(quotas->max_queued, value.GetUint64(key));
    } else if (key == "deadline_ceiling_ms") {
      RPM_ASSIGN_OR_RETURN(quotas->deadline_ceiling_ms,
                           value.GetUint64(key));
    } else if (key == "memory_ceiling_mb") {
      RPM_ASSIGN_OR_RETURN(quotas->memory_ceiling_mb, value.GetUint64(key));
    } else if (key == "max_patterns") {
      RPM_ASSIGN_OR_RETURN(quotas->max_patterns, value.GetUint64(key));
    } else {
      return Status::InvalidArgument("unknown tenant-config field '" + key +
                                     "'");
    }
  }
  if (tenant_out->empty()) {
    return Status::InvalidArgument(
        "tenant-config object is missing the \"tenant\" field");
  }
  return Status::OK();
}

}  // namespace

ResourceLimits TenantQuotas::ClampLimits(
    const ResourceLimits& requested) const {
  ResourceLimits clamped;
  clamped.timeout_ms = static_cast<int64_t>(
      ClampOne(static_cast<uint64_t>(requested.timeout_ms),
               deadline_ceiling_ms));
  clamped.memory_budget_bytes =
      ClampOne(requested.memory_budget_bytes,
               memory_ceiling_mb * 1024ull * 1024ull);
  clamped.max_patterns = ClampOne(requested.max_patterns, max_patterns);
  return clamped;
}

Status TenantRegistry::LoadConfig(std::istream& config) {
  std::string line;
  for (size_t line_number = 1; std::getline(config, line); ++line_number) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    Result<JsonValue> parsed = ParseJson(line);
    const std::string line_tag =
        "tenant config line " + std::to_string(line_number) + ": ";
    if (!parsed.ok()) {
      return Status::InvalidArgument(line_tag + parsed.status().message());
    }
    if (parsed->kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument(line_tag + "expected a JSON object");
    }
    TenantQuotas quotas = defaults_;
    std::string tenant;
    if (Status s = ApplyConfigObject(*parsed, &quotas, &tenant); !s.ok()) {
      return Status::InvalidArgument(line_tag + s.message());
    }
    if (tenant == "default") {
      defaults_ = quotas;
      continue;
    }
    if (!tenants_.emplace(tenant, quotas).second) {
      return Status::InvalidArgument(line_tag + "duplicate tenant '" +
                                     tenant + "'");
    }
  }
  return Status::OK();
}

const TenantQuotas& TenantRegistry::QuotasFor(
    const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? defaults_ : it->second;
}

std::vector<std::string> TenantRegistry::ConfiguredTenants() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, quotas] : tenants_) names.push_back(name);
  return names;  // std::map iterates sorted.
}

}  // namespace rpm::serve
