#include "rpm/serve/admission.h"

#include <chrono>
#include <utility>

namespace rpm::serve {

AdmissionController::Ticket& AdmissionController::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    controller_ = other.controller_;
    tenant_ = std::move(other.tenant_);
    other.controller_ = nullptr;
  }
  return *this;
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release(tenant_);
  controller_ = nullptr;
}

AdmissionController::AdmissionController(const Options& options,
                                         const TenantRegistry* tenants)
    : options_(options), tenants_(tenants) {}

AdmissionController::Decision AdmissionController::Admit(
    const std::string& tenant) {
  const TenantQuotas& quotas = tenants_->QuotasFor(tenant);
  std::unique_lock<std::mutex> lock(mutex_);

  Decision decision;
  if (shutdown_) {
    decision.outcome = Outcome::kShutdown;
    return decision;
  }

  TenantState& state = per_tenant_[tenant];
  auto slot_free = [&] {
    return state.running < quotas.max_concurrent &&
           global_running_ < options_.global_max_concurrent;
  };

  if (!slot_free()) {
    // Invariant A2: queue only when both queues have room; otherwise
    // reject right now with a load-proportional retry hint.
    if (state.queued >= quotas.max_queued) {
      decision.outcome = Outcome::kRejected;
      decision.rejected_by = "tenant";
      decision.retry_after_ms =
          options_.retry_after_base_ms *
          static_cast<int64_t>(1 + state.running + state.queued);
      ++stats_.rejected_tenant;
      MaybeErase(tenant);
      return decision;
    }
    if (global_queued_ >= options_.global_max_queued) {
      decision.outcome = Outcome::kRejected;
      decision.rejected_by = "global";
      decision.retry_after_ms =
          options_.retry_after_base_ms *
          static_cast<int64_t>(1 + global_running_ + global_queued_);
      ++stats_.rejected_global;
      MaybeErase(tenant);
      return decision;
    }

    ++state.queued;
    ++global_queued_;
    ++stats_.queued_total;
    // Bounded 50ms waits keep the loop responsive to Shutdown() even if a
    // notify is missed; correctness rests on re-checking the predicate.
    while (!shutdown_ && !slot_free()) {
      wake_.wait_for(lock, std::chrono::milliseconds(50));
    }
    --state.queued;
    --global_queued_;
    if (shutdown_) {
      decision.outcome = Outcome::kShutdown;
      MaybeErase(tenant);
      wake_.notify_all();  // Let sibling waiters observe shutdown too.
      return decision;
    }
  }

  ++state.running;
  ++global_running_;
  ++stats_.admitted;
  decision.outcome = Outcome::kAdmitted;
  decision.ticket = Ticket(this, tenant);
  return decision;
}

void AdmissionController::Release(const std::string& tenant) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = per_tenant_.find(tenant);
    if (it != per_tenant_.end() && it->second.running > 0) {
      --it->second.running;
      MaybeErase(tenant);
    }
    if (global_running_ > 0) --global_running_;
  }
  wake_.notify_all();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
}

void AdmissionController::MaybeErase(const std::string& tenant) {
  auto it = per_tenant_.find(tenant);
  if (it != per_tenant_.end() && it->second.running == 0 &&
      it->second.queued == 0) {
    per_tenant_.erase(it);
  }
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

uint64_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_running_;
}

}  // namespace rpm::serve
