// TCP front end of the query server (DESIGN.md §10): a loopback listener,
// one thread per client session, line-delimited JSON in both directions.
//
// This layer is deliberately thin — sockets, threads, and the four
// serve.* failpoints; every decision (parsing, admission, caching, drain
// semantics) lives in QueryService. All socket loops poll with 50ms
// timeouts so drain is observed promptly without any async-signal-unsafe
// wakeup machinery.
//
// Lifecycle: Start() binds and spawns the accept loop; Drain() is the
// one-way shutdown — stop accepting, let QueryService reject/cancel,
// give open sessions up to drain_deadline_ms to flush their last
// response, then force-close stragglers and join every thread. A drained
// server cannot be restarted (drain ends in process exit).
//
// Failpoint sites (verify/fault_injection.h campaign):
//   serve.accept        a just-accepted connection is dropped
//   serve.read          a session's read path fails; connection closes
//   serve.write         a response write fails; connection closes
//   serve.session.alloc session setup fails; UNAVAILABLE is sent, then
//                       the connection closes
// Faults only ever close ONE connection — the listener and every other
// session keep running, and the process never aborts.

#ifndef RPM_SERVE_SERVER_H_
#define RPM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "rpm/common/status.h"
#include "rpm/serve/service.h"

namespace rpm::serve {

class Server {
 public:
  struct Options {
    /// Loopback TCP port; 0 binds an ephemeral port (read it back from
    /// port() — the CLI prints it so scripts can connect).
    uint16_t port = 0;
    /// Concurrent client connections; excess connects get a structured
    /// UNAVAILABLE line, then close.
    size_t max_sessions = 64;
    /// Grace period for open sessions to flush during Drain() before
    /// their sockets are force-closed. 0 = force-close immediately.
    int64_t drain_deadline_ms = 5000;
  };

  Server(QueryService* service, const Options& options);
  ~Server();

  /// Binds 127.0.0.1:port, starts listening and spawns the accept loop.
  /// IOError when the port is taken.
  Status Start();

  /// The bound port (valid after Start(); resolves port 0).
  uint16_t port() const { return port_; }

  /// One-way graceful shutdown; idempotent. Returns the number of
  /// sessions that had to be force-closed at the drain deadline.
  size_t Drain();

  /// Sessions currently open (monitoring/tests).
  size_t active_sessions() const;

 private:
  struct SessionSlot {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void SessionLoop(SessionSlot* slot);
  /// Joins and erases finished sessions. Requires sessions_mutex_ held.
  void ReapLocked();

  QueryService* service_;
  const Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> drained_{false};
  std::thread accept_thread_;
  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<SessionSlot>> sessions_;
};

}  // namespace rpm::serve

#endif  // RPM_SERVE_SERVER_H_
