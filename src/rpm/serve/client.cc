#include "rpm/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "rpm/common/deadline.h"

namespace rpm::serve {

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Result<LineClient> LineClient::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError("connect 127.0.0.1:" +
                                    std::to_string(port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  LineClient client;
  client.fd_ = fd;
  return client;
}

Status LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> LineClient::ReadLine(int64_t timeout_ms) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  const Deadline deadline = Deadline::AfterMillis(timeout_ms);
  for (;;) {
    size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      return line;
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("no response line within " +
                                      std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 50);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> LineClient::Call(const std::string& line,
                                     int64_t timeout_ms) {
  RPM_RETURN_NOT_OK(SendLine(line));
  return ReadLine(timeout_ms);
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace rpm::serve
